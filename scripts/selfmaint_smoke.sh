#!/usr/bin/env bash
# Self-maintenance smoke test: run the two-process whipsnode fleet with the
# warehouse site black-holing EVERY source query (-stall-queries) and the
# manager site on auxiliary-relation maintenance (-self-maintain). A
# query-based manager would hang forever; the self-maintaining fleet must
# finish with complete MVC, and its /metrics must show zero source queries
# and a nonzero count of locally computed deltas. Used by CI; runnable
# locally from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:7656}
DEBUG=${DEBUG:-127.0.0.1:8082}
UPDATES=${UPDATES:-60}
SEED=${SEED:-11}
BIN=$(mktemp -d)/whipsnode
WH_LOG=$(mktemp)

cleanup() {
    kill "${WH_PID:-}" "${MG_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/whipsnode

echo "== warehouse site: every source query black-holed =="
"$BIN" -role warehouse -addr "$ADDR" -updates "$UPDATES" -seed "$SEED" \
    -stall-queries >"$WH_LOG" 2>&1 &
WH_PID=$!
sleep 0.5
echo "== manager site: auxiliary-relation maintenance =="
"$BIN" -role managers -addr "$ADDR" -self-maintain -debug "$DEBUG" &
MG_PID=$!

if ! wait "$WH_PID"; then
    echo "FAIL: warehouse run exited nonzero (did a manager query the stalled source?)" >&2
    cat "$WH_LOG" >&2
    exit 1
fi

echo "== verdict =="
if ! grep -q 'complete=true' "$WH_LOG" || ! grep -q '^OK$' "$WH_LOG"; then
    echo "FAIL: run under a fully stalled source did not verify complete MVC" >&2
    cat "$WH_LOG" >&2
    exit 1
fi

METRICS=$(curl -fsS "http://$DEBUG/metrics")
if grep -E '^vm_source_queries_total\{[^}]*\} [1-9]' <<<"$METRICS"; then
    echo "FAIL: self-maintaining managers issued source queries" >&2
    exit 1
fi
if ! grep -Eq '^vm_local_deltas_total\{[^}]*\} [1-9]' <<<"$METRICS"; then
    echo "FAIL: vm_local_deltas_total never became nonzero" >&2
    grep -E '^vm_' <<<"$METRICS" >&2 || true
    exit 1
fi
if ! grep -Eq '^vm_aux_bytes\{[^}]*\} [1-9]' <<<"$METRICS"; then
    echo "FAIL: vm_aux_bytes gauge is zero — auxiliaries not resident" >&2
    grep -E '^vm_' <<<"$METRICS" >&2 || true
    exit 1
fi

echo "== /metrics.json parses =="
curl -fsS "http://$DEBUG/metrics.json" | head -c 200
echo

grep -E 'recovered|^V1: |complete=' "$WH_LOG" || true
grep -E '^(vm_source_queries_total|vm_local_deltas_total|vm_aux_bytes)' <<<"$METRICS"
echo "selfmaint smoke OK"
