#!/usr/bin/env bash
# Causal-tracing + audit smoke test: run the whipsnode fleet (warehouse,
# managers, one follower) with -trace on every node and the always-on MVC
# audit on the follower, then assert that
#   1. each node's /trace endpoint serves its stage events,
#   2. cmd/mvcstat assembles complete end-to-end span chains across the
#      fleet, every one extended through the follower's repl_apply,
#   3. the audit ran (audit_checks_total > 0) and found nothing
#      (audit_violations_total == 0).
# Used by CI; runnable locally from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:7667}
RADDR=${RADDR:-127.0.0.1:7668}
WH_DBG=${WH_DBG:-127.0.0.1:8667}
MG_DBG=${MG_DBG:-127.0.0.1:8668}
F1_DBG=${F1_DBG:-127.0.0.1:8669}
UPDATES=${UPDATES:-40}
SEED=${SEED:-7}
BINDIR=$(mktemp -d)
WH_LOG=$(mktemp)
F1_LOG=$(mktemp)
SPANS=$(mktemp)

cleanup() {
    kill "${WH_PID:-}" "${MG_PID:-}" "${F1_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BINDIR/whipsnode" ./cmd/whipsnode
go build -o "$BINDIR/mvcstat" ./cmd/mvcstat

wait_http() { # url substring tries
    local url=$1 want=$2 tries=${3:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS "$url" 2>/dev/null | grep -q "$want"; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: $url never matched '$want'" >&2
    return 1
}

echo "== start traced warehouse, managers, and auditing follower =="
"$BINDIR/whipsnode" -role warehouse -addr "$ADDR" -repl-addr "$RADDR" \
    -updates "$UPDATES" -seed "$SEED" -pace 5ms -debug "$WH_DBG" -trace \
    -linger 60s >"$WH_LOG" 2>&1 &
WH_PID=$!
sleep 0.3
"$BINDIR/whipsnode" -role managers -addr "$ADDR" -debug "$MG_DBG" -trace &
MG_PID=$!
"$BINDIR/whipsnode" -role follower -follow "$RADDR" -name f1 -debug "$F1_DBG" \
    -seed "$SEED" -trace -stale-after 30s \
    -audit-primary "$WH_DBG" -audit-interval 200ms >"$F1_LOG" 2>&1 &
F1_PID=$!

echo "== wait for the workload to finish and the follower to converge =="
for _ in $(seq 300); do
    grep -q '^OK$' "$WH_LOG" && break
    sleep 0.1
done
grep -q '^OK$' "$WH_LOG" || { echo "FAIL: primary run did not finish" >&2; cat "$WH_LOG" >&2; exit 1; }
wait_http "http://$F1_DBG/healthz" '"ok": *true' || { cat "$F1_LOG" >&2; exit 1; }
wait_http "http://$F1_DBG/metrics" "repl_epochs_applied_total{follower=\"f1\"} $UPDATES" 200 || {
    echo "FAIL: follower never applied all $UPDATES epochs" >&2; cat "$F1_LOG" >&2; exit 1; }

echo "== every node serves its trace ring =="
wait_http "http://$WH_DBG/trace" '"stage":"repl_pub"'
wait_http "http://$WH_DBG/trace" '"stage":"commit"'
wait_http "http://$WH_DBG/trace" '"stage":"submit"'
wait_http "http://$MG_DBG/trace" '"stage":"al"'
wait_http "http://$F1_DBG/trace" '"stage":"repl_apply"'

echo "== mvcstat assembles complete cross-process span chains =="
"$BINDIR/mvcstat" -nodes "wh=$WH_DBG,mg=$MG_DBG,f1=$F1_DBG" -once -json >"$SPANS"
COMPLETE=$(grep -o '"complete": *true' "$SPANS" | wc -l || true)
APPLIED=$(grep -o '"repl_applied": *true' "$SPANS" | wc -l || true)
echo "spans: $COMPLETE complete, $APPLIED replica-applied (want $UPDATES each)"
if [ "$COMPLETE" -ne "$UPDATES" ] || [ "$APPLIED" -ne "$UPDATES" ]; then
    echo "FAIL: span chains incomplete" >&2
    head -c 2000 "$SPANS" >&2
    exit 1
fi

echo "== the MVC audit ran and found nothing =="
wait_http "http://$F1_DBG/metrics" 'audit_checks_total [1-9]' 100 || {
    echo "FAIL: audit never ran a check" >&2; cat "$F1_LOG" >&2; exit 1; }
VIOLATIONS=$(curl -fsS "http://$F1_DBG/metrics" | grep '^audit_violations_total' | grep -o '[0-9]*$')
if [ "$VIOLATIONS" != "0" ]; then
    echo "FAIL: audit_violations_total = $VIOLATIONS" >&2
    grep -i 'violation' "$F1_LOG" >&2 || true
    exit 1
fi
echo "audit: checks ran, zero violations"
echo "trace smoke OK"
