#!/usr/bin/env bash
# Failover smoke test: run a three-process replication chain
# primary → relay → leaf, kill -9 the primary mid-linger, and verify the
# relay's coordinator promotes it to a term-2 primary while the leaf keeps
# streaming — with /query on both survivors byte-identical to the state the
# primary committed before dying (no epoch lost, none rewritten). Used by
# CI; runnable locally from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:7671}
RADDR=${RADDR:-127.0.0.1:7672}       # root's replication feed
RELAY_FEED=${RELAY_FEED:-127.0.0.1:7673}
WH_DBG=${WH_DBG:-127.0.0.1:8671}
RELAY_DBG=${RELAY_DBG:-127.0.0.1:8672}
LEAF_DBG=${LEAF_DBG:-127.0.0.1:8673}
UPDATES=${UPDATES:-40}
SEED=${SEED:-7}
BIN=$(mktemp -d)/whipsnode
WH_LOG=$(mktemp)
RELAY_LOG=$(mktemp)
LEAF_LOG=$(mktemp)

cleanup() {
    kill "${WH_PID:-}" "${MG_PID:-}" "${RELAY_PID:-}" "${LEAF_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/whipsnode

wait_http() { # url substring tries
    local url=$1 want=$2 tries=${3:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS "$url" 2>/dev/null | grep -q "$want"; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: $url never matched '$want'" >&2
    return 1
}

query_epoch() { # debug addr
    curl -fsS "http://$1/query?view=V1" 2>/dev/null | grep '"epoch"' | grep -o '[0-9]*' || echo -1
}

# /query output modulo the "cached" flag (an engine-local detail nodes
# legitimately differ on) — everything else must be byte-identical.
query_state() { # debug addr, view
    curl -fsS "http://$1/query?view=$2" | grep -v '"cached"'
}

echo "== start primary ($RADDR), managers, relay ($RELAY_FEED), leaf =="
"$BIN" -role warehouse -addr "$ADDR" -repl-addr "$RADDR" -updates "$UPDATES" \
    -seed "$SEED" -pace 5ms -debug "$WH_DBG" -linger 120s >"$WH_LOG" 2>&1 &
WH_PID=$!
sleep 0.3
"$BIN" -role managers -addr "$ADDR" &
MG_PID=$!
"$BIN" -role follower -follow "$RADDR" -repl-addr "$RELAY_FEED" -name relay \
    -debug "$RELAY_DBG" -seed "$SEED" -failover-after 1s \
    -peers "leaf=$LEAF_DBG" >"$RELAY_LOG" 2>&1 &
RELAY_PID=$!
"$BIN" -role follower -follow "$RELAY_FEED" -name leaf -debug "$LEAF_DBG" \
    -seed "$SEED" >"$LEAF_LOG" 2>&1 &
LEAF_PID=$!

echo "== wait for the workload to finish and the chain to converge =="
for _ in $(seq 300); do
    grep -q '^OK$' "$WH_LOG" && break
    sleep 0.1
done
grep -q '^OK$' "$WH_LOG" || { echo "FAIL: primary run did not finish" >&2; cat "$WH_LOG" >&2; exit 1; }
PRIMARY_EPOCH=$(query_epoch "$WH_DBG")
echo "primary finished at epoch $PRIMARY_EPOCH"

wait_http "http://$RELAY_DBG/healthz" '"ok": *true' || { cat "$RELAY_LOG" >&2; exit 1; }
wait_http "http://$LEAF_DBG/healthz" '"ok": *true' || { cat "$LEAF_LOG" >&2; exit 1; }
for dbg in "$RELAY_DBG" "$LEAF_DBG"; do
    for _ in $(seq 100); do
        [ "$(query_epoch "$dbg")" = "$PRIMARY_EPOCH" ] && break
        sleep 0.1
    done
    if [ "$(query_epoch "$dbg")" != "$PRIMARY_EPOCH" ]; then
        echo "FAIL: node on $dbg stuck at epoch $(query_epoch "$dbg"), primary at $PRIMARY_EPOCH" >&2
        exit 1
    fi
done
wait_http "http://$RELAY_DBG/replstatus" '"role": *"relay"' || { cat "$RELAY_LOG" >&2; exit 1; }

echo "== snapshot the committed state, then kill -9 the primary =="
V1_STATE=$(query_state "$WH_DBG" V1)
V2_STATE=$(query_state "$WH_DBG" V2)
kill -9 "$WH_PID"
wait "$WH_PID" 2>/dev/null || true

echo "== wait for the relay to promote itself =="
wait_http "http://$RELAY_DBG/replstatus" '"role": *"primary"' 150 || {
    echo "-- relay log --" >&2; cat "$RELAY_LOG" >&2; exit 1; }
wait_http "http://$RELAY_DBG/replstatus" '"term": *2' || { cat "$RELAY_LOG" >&2; exit 1; }
echo "relay promoted to primary at term 2"

echo "== verify both survivors still serve the committed state byte-identically =="
for dbg in "$RELAY_DBG" "$LEAF_DBG"; do
    if [ "$(query_epoch "$dbg")" != "$PRIMARY_EPOCH" ]; then
        echo "FAIL: survivor on $dbg lost epochs: at $(query_epoch "$dbg"), committed $PRIMARY_EPOCH" >&2
        exit 1
    fi
    if [ "$(query_state "$dbg" V1)" != "$V1_STATE" ]; then
        echo "FAIL: survivor on $dbg diverged from the committed V1" >&2
        diff <(echo "$V1_STATE") <(query_state "$dbg" V1) >&2 || true
        exit 1
    fi
    if [ "$(query_state "$dbg" V2)" != "$V2_STATE" ]; then
        echo "FAIL: survivor on $dbg diverged from the committed V2" >&2
        exit 1
    fi
done
echo "survivors byte-identical at epoch $PRIMARY_EPOCH after failover"

echo "== verify the failover metrics are exported =="
for metric in repl_term repl_promotions_total repl_failover_ms; do
    if ! curl -fsS "http://$RELAY_DBG/metrics" | grep -q "$metric"; then
        echo "FAIL: relay does not export $metric" >&2
        exit 1
    fi
done
if ! curl -fsS "http://$RELAY_DBG/metrics" | grep -q 'repl_promotions_total  *1'; then
    echo "FAIL: relay reports no promotion" >&2
    curl -fsS "http://$RELAY_DBG/metrics" | grep repl_ >&2 || true
    exit 1
fi
echo "failover smoke OK"
