#!/usr/bin/env bash
# Observability smoke test: run the two-process whipsnode demo with the
# debug server enabled, then assert the endpoints answer and the metrics
# show real pipeline activity. Used by CI; runnable locally from anywhere
# inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:7654}
DEBUG=${DEBUG:-127.0.0.1:8080}
BIN=$(mktemp -d)/whipsnode

cleanup() {
    kill "${WH_PID:-}" "${MG_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/whipsnode

"$BIN" -role warehouse -addr "$ADDR" -updates 30 -debug "$DEBUG" -linger 60s &
WH_PID=$!
sleep 1
"$BIN" -role managers -addr "$ADDR" &
MG_PID=$!

# The debug server comes up before the run; wait for it, then for the run
# to finish (merge_vut_rows_total reaches a nonzero value).
for _ in $(seq 1 50); do
    curl -fsS "http://$DEBUG/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
echo "== /healthz =="
curl -fsS "http://$DEBUG/healthz"
echo

METRICS=
for _ in $(seq 1 100); do
    METRICS=$(curl -fsS "http://$DEBUG/metrics" || true)
    grep -Eq '^merge_vut_rows_total\{[^}]*\} [1-9]' <<<"$METRICS" && break
    METRICS=
    sleep 0.3
done
if [ -z "$METRICS" ]; then
    echo "FAIL: merge_vut_rows_total never became nonzero" >&2
    curl -fsS "http://$DEBUG/metrics" >&2 || true
    exit 1
fi

echo "== /metrics (pipeline excerpts) =="
for want in merge_vut_rows_total merge_prompt_gap_ns wh_freshness_ns rt_msgs_total wire_connects_total; do
    if ! grep -q "$want" <<<"$METRICS"; then
        echo "FAIL: /metrics missing $want" >&2
        exit 1
    fi
done
grep -E '^(merge_vut_rows_total|merge_txns_total|wh_txns_total|rt_msgs_total)' <<<"$METRICS"

echo "== /debug/vut =="
curl -fsS "http://$DEBUG/debug/vut"
echo

echo "== /metrics.json parses =="
JSON=$(curl -fsS "http://$DEBUG/metrics.json")
printf '%.200s\n' "$JSON"
echo "obs smoke OK"
