#!/usr/bin/env bash
# Crash-recovery smoke test: run the two-process whipsnode fleet twice with
# the same workload — once uninterrupted (the baseline) and once with the
# warehouse site kill -9'd mid-run and restarted from its WAL + snapshots.
# The recovered run must report complete MVC and finish with exactly the
# baseline's views. Used by CI; runnable locally from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:7655}
UPDATES=${UPDATES:-80}
SEED=${SEED:-7}
BIN=$(mktemp -d)/whipsnode
DATA=$(mktemp -d)/wh-data
BASE_LOG=$(mktemp)
FAULT_LOG=$(mktemp)

cleanup() {
    kill "${WH_PID:-}" "${MG_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/whipsnode

run_managers() {
    "$BIN" -role managers -addr "$ADDR" &
    MG_PID=$!
}

echo "== baseline: no faults, no durability =="
"$BIN" -role warehouse -addr "$ADDR" -updates "$UPDATES" -seed "$SEED" >"$BASE_LOG" 2>&1 &
WH_PID=$!
sleep 0.5
run_managers
wait "$WH_PID"
kill "$MG_PID" 2>/dev/null || true
wait "$MG_PID" 2>/dev/null || true
BASELINE=$(grep '^V1: ' "$BASE_LOG")
echo "baseline views: $BASELINE"

echo "== fault run: durable warehouse, kill -9 mid-stream =="
start_warehouse() {
    "$BIN" -role warehouse -addr "$ADDR" -updates "$UPDATES" -seed "$SEED" \
        -pace 5ms -data-dir "$DATA" -snapshot-every 7 >>"$FAULT_LOG" 2>&1 &
    WH_PID=$!
}
start_warehouse
sleep 0.1
run_managers
sleep 0.15
if kill -0 "$WH_PID" 2>/dev/null; then
    kill -9 "$WH_PID"
    wait "$WH_PID" 2>/dev/null || true
    echo "warehouse site killed; restarting from $DATA"
    start_warehouse
fi
if ! wait "$WH_PID"; then
    echo "FAIL: recovered warehouse run exited nonzero" >&2
    cat "$FAULT_LOG" >&2
    exit 1
fi

echo "== verdict =="
if ! grep -q 'recovered to seq ' "$FAULT_LOG"; then
    echo "FAIL: restarted warehouse did not recover from the WAL" >&2
    cat "$FAULT_LOG" >&2
    exit 1
fi
if ! grep -q 'complete=true' "$FAULT_LOG" || ! grep -q '^OK$' "$FAULT_LOG"; then
    echo "FAIL: recovered run did not verify complete MVC" >&2
    cat "$FAULT_LOG" >&2
    exit 1
fi
RECOVERED=$(grep '^V1: ' "$FAULT_LOG")
if [ "$RECOVERED" != "$BASELINE" ]; then
    echo "FAIL: views diverged from baseline" >&2
    echo "  baseline:  $BASELINE" >&2
    echo "  recovered: $RECOVERED" >&2
    cat "$FAULT_LOG" >&2
    exit 1
fi
grep -E 'recovered to seq |^V1: |complete=' "$FAULT_LOG"
echo "crash smoke OK"
