#!/usr/bin/env bash
# Replication smoke test: run the two-process whipsnode fleet with the
# warehouse site serving its epoch replication feed, attach two follower
# replicas, and verify both converge to the primary's final epoch with
# byte-identical /query output. Then kill -9 one follower and restart it:
# it must re-subscribe, catch up, and converge again. Used by CI; runnable
# locally from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:7657}
RADDR=${RADDR:-127.0.0.1:7658}
WH_DBG=${WH_DBG:-127.0.0.1:8657}
F1_DBG=${F1_DBG:-127.0.0.1:8658}
F2_DBG=${F2_DBG:-127.0.0.1:8659}
UPDATES=${UPDATES:-60}
SEED=${SEED:-7}
BIN=$(mktemp -d)/whipsnode
WH_LOG=$(mktemp)
F1_LOG=$(mktemp)
F2_LOG=$(mktemp)

cleanup() {
    kill "${WH_PID:-}" "${MG_PID:-}" "${F1_PID:-}" "${F2_PID:-}" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/whipsnode

wait_http() { # url substring tries
    local url=$1 want=$2 tries=${3:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS "$url" 2>/dev/null | grep -q "$want"; then
            return 0
        fi
        sleep 0.1
    done
    echo "FAIL: $url never matched '$want'" >&2
    return 1
}

query_epoch() { # debug addr
    curl -fsS "http://$1/query?view=V1" 2>/dev/null | grep '"epoch"' | grep -o '[0-9]*' || echo -1
}

# /query output modulo the "cached" flag (an engine-local detail followers
# legitimately differ on) — everything else must be byte-identical.
query_state() { # debug addr, view
    curl -fsS "http://$1/query?view=$2" | grep -v '"cached"'
}

echo "== start primary (repl feed on $RADDR), managers, two followers =="
"$BIN" -role warehouse -addr "$ADDR" -repl-addr "$RADDR" -updates "$UPDATES" \
    -seed "$SEED" -pace 5ms -debug "$WH_DBG" -linger 60s >"$WH_LOG" 2>&1 &
WH_PID=$!
sleep 0.3
"$BIN" -role managers -addr "$ADDR" &
MG_PID=$!

start_follower() { # name debug logfile
    "$BIN" -role follower -follow "$RADDR" -name "$1" -debug "$2" -seed "$SEED" >"$3" 2>&1 &
}
start_follower f1 "$F1_DBG" "$F1_LOG"; F1_PID=$!
start_follower f2 "$F2_DBG" "$F2_LOG"; F2_PID=$!

echo "== wait for the workload to finish and followers to converge =="
for _ in $(seq 300); do
    grep -q '^OK$' "$WH_LOG" && break
    sleep 0.1
done
grep -q '^OK$' "$WH_LOG" || { echo "FAIL: primary run did not finish" >&2; cat "$WH_LOG" >&2; exit 1; }
PRIMARY_EPOCH=$(query_epoch "$WH_DBG")
echo "primary finished at epoch $PRIMARY_EPOCH"

wait_http "http://$F1_DBG/healthz" '"ok": *true' || { cat "$F1_LOG" >&2; exit 1; }
wait_http "http://$F2_DBG/healthz" '"ok": *true' || { cat "$F2_LOG" >&2; exit 1; }
for dbg in "$F1_DBG" "$F2_DBG"; do
    for _ in $(seq 100); do
        [ "$(query_epoch "$dbg")" = "$PRIMARY_EPOCH" ] && break
        sleep 0.1
    done
    if [ "$(query_epoch "$dbg")" != "$PRIMARY_EPOCH" ]; then
        echo "FAIL: follower on $dbg stuck at epoch $(query_epoch "$dbg"), primary at $PRIMARY_EPOCH" >&2
        exit 1
    fi
done

echo "== verify byte-identical views on both followers =="
for view in V1 V2; do
    PRIMARY_STATE=$(query_state "$WH_DBG" "$view")
    for dbg in "$F1_DBG" "$F2_DBG"; do
        if [ "$(query_state "$dbg" "$view")" != "$PRIMARY_STATE" ]; then
            echo "FAIL: follower on $dbg diverged from primary on $view" >&2
            diff <(echo "$PRIMARY_STATE") <(query_state "$dbg" "$view") >&2 || true
            exit 1
        fi
    done
done
echo "both followers byte-identical at epoch $PRIMARY_EPOCH"

echo "== kill -9 follower f1 and restart it =="
kill -9 "$F1_PID"
wait "$F1_PID" 2>/dev/null || true
start_follower f1 "$F1_DBG" "$F1_LOG"; F1_PID=$!
wait_http "http://$F1_DBG/healthz" '"ok": *true' || { cat "$F1_LOG" >&2; exit 1; }
for _ in $(seq 100); do
    [ "$(query_epoch "$F1_DBG")" = "$PRIMARY_EPOCH" ] && break
    sleep 0.1
done
for view in V1 V2; do
    if [ "$(query_state "$F1_DBG" "$view")" != "$(query_state "$WH_DBG" "$view")" ]; then
        echo "FAIL: restarted follower diverged on $view" >&2
        exit 1
    fi
done
echo "restarted follower reconverged byte-identical at epoch $(query_epoch "$F1_DBG")"

echo "== verify follower staleness metric is exported =="
if ! curl -fsS "http://$F1_DBG/metrics" | grep -q 'repl_epoch_lag'; then
    echo "FAIL: follower does not export repl_epoch_lag" >&2
    exit 1
fi
echo "replication smoke OK"
