package whips

import (
	"whips/internal/durable"
	"whips/internal/expr"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/query"
	"whips/internal/relation"
	"whips/internal/system"
	"whips/internal/warehouse"
)

// Re-exported identifier types.
type (
	// ViewID names a warehouse view.
	ViewID = msg.ViewID
	// SourceID names a data source.
	SourceID = msg.SourceID
	// UpdateID is a global source-update sequence number.
	UpdateID = msg.UpdateID
	// Write is one base-relation change inside a transaction.
	Write = msg.Write
	// Level is a view manager's consistency level.
	Level = msg.Level
)

// Re-exported relational substrate.
type (
	// Schema is an ordered list of typed attributes.
	Schema = relation.Schema
	// Attr is one schema attribute.
	Attr = relation.Attr
	// Tuple is an ordered list of values.
	Tuple = relation.Tuple
	// Value is a typed attribute value.
	Value = relation.Value
	// Relation is a bag-semantics relation instance.
	Relation = relation.Relation
	// Delta is a signed counted multiset of tuple changes.
	Delta = relation.Delta
)

// Re-exported view algebra.
type (
	// Expr is a view-definition expression.
	Expr = expr.Expr
	// Pred is a selection predicate.
	Pred = expr.Pred
	// AggSpec declares one aggregate output column.
	AggSpec = expr.AggSpec
	// Database resolves base relation names for ad-hoc evaluation.
	Database = expr.Database
)

// Re-exported read-serving layer.
type (
	// QuerySpec is an ad-hoc query over one view: selection, projection,
	// or grouped aggregation.
	QuerySpec = query.Spec
	// QueryResult is a query answer; its relation is frozen (immutable).
	QueryResult = query.Result
	// WarehouseSnapshot is one immutable published warehouse epoch.
	WarehouseSnapshot = warehouse.Snapshot
)

// Re-exported configuration types.
type (
	// SourceDef declares a source and its initial relations.
	SourceDef = system.SourceDef
	// ViewDef declares a materialized view and its manager.
	ViewDef = system.ViewDef
	// ManagerKind selects a view-manager implementation.
	ManagerKind = system.ManagerKind
	// CommitKind selects a §4.3 commit strategy.
	CommitKind = system.CommitKind
	// Algorithm is a merge coordination algorithm.
	Algorithm = merge.Algorithm
)

// View manager kinds (§3.3, §6.3).
const (
	Complete        = system.Complete
	CompleteQuery   = system.CompleteQuery
	Batching        = system.Batching
	QueryBatching   = system.QueryBatching
	Refresh         = system.Refresh
	CompleteN       = system.CompleteN
	Convergent      = system.Convergent
	SelfMaintaining = system.SelfMaintaining
)

// Commit strategies (§4.3).
const (
	Sequential = system.Sequential
	Dependency = system.Dependency
	Batched    = system.Batched
)

// FsyncPolicy controls when durable appends reach stable storage.
type FsyncPolicy = durable.FsyncPolicy

// Fsync policies for Config.Durable.
const (
	// FsyncAlways syncs every WAL append (no committed update is lost).
	FsyncAlways = durable.FsyncAlways
	// FsyncBatch syncs at checkpoints only; a crash may lose the tail.
	FsyncBatch = durable.FsyncBatch
	// FsyncNever leaves syncing to the OS (tests and benchmarks).
	FsyncNever = durable.FsyncNever
)

// ParseFsyncPolicy parses "always", "batch", or "never".
var ParseFsyncPolicy = durable.ParseFsyncPolicy

// Merge algorithms.
const (
	// SPA is the Simple Painting Algorithm (§4): complete MVC.
	SPA = merge.SPA
	// PA is the Painting Algorithm (§5): strongly consistent MVC.
	PA = merge.PA
	// ForwardMerge passes action lists through uncoordinated (§6.3).
	ForwardMerge = merge.Forward
)

// Schema and tuple construction.
var (
	// NewSchema builds a schema from attributes.
	NewSchema = relation.NewSchema
	// MustSchema builds a schema from "name:type" strings.
	MustSchema = relation.MustSchema
	// T builds a tuple from Go literals.
	T = relation.T
	// V builds a value from a Go literal.
	V = relation.V
	// NewRelation returns an empty relation.
	NewRelation = relation.New
	// FromTuples builds a relation from tuples.
	FromTuples = relation.FromTuples
	// NewDelta returns an empty delta.
	NewDelta = relation.NewDelta
	// InsertDelta builds an all-insert delta.
	InsertDelta = relation.InsertDelta
	// DeleteDelta builds an all-delete delta.
	DeleteDelta = relation.DeleteDelta
)

// View algebra construction.
var (
	// Scan reads a named base relation.
	Scan = expr.Scan
	// SelectWhere returns σ_pred(child), or an error.
	SelectWhere = expr.Select
	// MustSelect is SelectWhere that panics on error.
	MustSelect = expr.MustSelect
	// Project returns π_attrs(child), or an error.
	Project = expr.Project
	// MustProject is Project that panics on error.
	MustProject = expr.MustProject
	// Join returns the natural join, or an error.
	Join = expr.Join
	// MustJoin is Join that panics on error.
	MustJoin = expr.MustJoin
	// JoinAll folds MustJoin over several expressions.
	JoinAll = expr.JoinAll
	// Rename returns ρ_mapping(child), or an error.
	Rename = expr.Rename
	// MustRename is Rename that panics on error.
	MustRename = expr.MustRename
	// UnionAll returns the bag union, or an error.
	UnionAll = expr.UnionAll
	// MustUnionAll is UnionAll that panics on error.
	MustUnionAll = expr.MustUnionAll
	// Except returns bag difference (EXCEPT ALL), or an error.
	Except = expr.Except
	// MustExcept is Except that panics on error.
	MustExcept = expr.MustExcept
	// Intersect returns bag intersection, or an error.
	Intersect = expr.Intersect
	// MustIntersect is Intersect that panics on error.
	MustIntersect = expr.MustIntersect
	// Aggregate returns a group-by aggregation, or an error.
	Aggregate = expr.Aggregate
	// MustAggregate is Aggregate that panics on error.
	MustAggregate = expr.MustAggregate
	// EvalView evaluates a view expression against a database.
	EvalView = expr.Eval
	// OptimizeExpr rewrites a view expression (selection pushdown, column
	// pruning) into an equivalent cheaper-to-maintain form.
	OptimizeExpr = expr.Optimize
)

// Predicate construction.
var (
	// Cmp compares an attribute with a constant.
	Cmp = expr.Cmp
	// CmpAttrs compares two attributes.
	CmpAttrs = expr.CmpAttrs
	// And is conjunction.
	And = expr.And
	// Or is disjunction.
	Or = expr.Or
	// Not is negation.
	Not = expr.Not
	// True always holds.
	True = expr.True
)

// Comparison operators.
const (
	Eq = expr.Eq
	Ne = expr.Ne
	Lt = expr.Lt
	Le = expr.Le
	Gt = expr.Gt
	Ge = expr.Ge
)

// Aggregate operators.
const (
	Count = expr.Count
	Sum   = expr.Sum
	Min   = expr.Min
	Max   = expr.Max
	Avg   = expr.Avg
)

// Consistency levels (§2).
const (
	LevelConvergent = msg.Convergent
	LevelStrong     = msg.Strong
	LevelComplete   = msg.Complete
)
