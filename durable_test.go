package whips_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"whips"
)

// durableConfig builds a two-relation join system with durability rooted
// at dir.
func durableConfig(dir string, snapshotEvery int) whips.Config {
	rs := whips.MustSchema("A:int", "B:int")
	ss := whips.MustSchema("B:int", "C:int")
	return whips.Config{
		Sources: []whips.SourceDef{{ID: "src", Relations: map[string]*whips.Relation{
			"R": whips.FromTuples(rs, whips.T(1, 10)),
			"S": whips.NewRelation(ss),
		}}},
		Views: []whips.ViewDef{
			{ID: "V1", Expr: whips.MustJoin(whips.Scan("R", rs), whips.Scan("S", ss)), Manager: whips.Complete},
			{ID: "V2", Expr: whips.Scan("S", ss), Manager: whips.Batching},
		},
		LogStates: true,
		Durable:   &whips.DurableOptions{Dir: dir, Fsync: whips.FsyncNever, SnapshotEvery: snapshotEvery},
	}
}

func durableDrive(t *testing.T, sys *whips.System, from, to int) {
	t.Helper()
	rs := whips.MustSchema("A:int", "B:int")
	ss := whips.MustSchema("B:int", "C:int")
	for i := from; i < to; i++ {
		var err error
		if i%3 == 0 {
			_, err = sys.Execute("src", whips.Insert("R", rs, whips.T(i, i%5)))
		} else {
			_, err = sys.Execute("src", whips.Insert("S", ss, whips.T(i%5, i)))
		}
		if err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
	}
	if !sys.WaitFresh(10 * time.Second) {
		t.Fatalf("system did not become fresh")
	}
}

// TestDurableRecovery drives updates through a durable system, reopens
// the data directory, and checks the recovered warehouse matches: same
// views, consistent state sequence, and the pipeline still works.
func TestDurableRecovery(t *testing.T) {
	dir := t.TempDir()

	sys, err := whips.New(durableConfig(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	durableDrive(t, sys, 2, 30)
	want := sys.ReadAll()
	sys.Stop()

	// Reopen: snapshot restore + WAL-suffix replay happens inside New.
	sys2, err := whips.New(durableConfig(dir, 0))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer sys2.Stop()
	got := sys2.ReadAll()
	for v, r := range want {
		if !r.Equal(got[v]) {
			t.Fatalf("view %s after recovery:\n got %v\nwant %v", v, got[v], r)
		}
	}
	rep, err := sys2.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("recovered run not consistent: %+v", rep)
	}

	// The recovered system keeps working.
	sys2.Start()
	durableDrive(t, sys2, 30, 40)
	rep, err = sys2.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("post-recovery run not consistent: %+v", rep)
	}
}

// TestDurableReplayDeterministic recovers the same data directory twice
// and requires byte-identical marshaled state.
func TestDurableReplayDeterministic(t *testing.T) {
	dir := t.TempDir()

	sys, err := whips.New(durableConfig(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	durableDrive(t, sys, 2, 25)
	sys.Stop()

	recover := func() []byte {
		s, err := whips.New(durableConfig(dir, 0))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer s.Stop()
		b, err := s.StateBytes()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := recover()
	b := recover()
	if !bytes.Equal(a, b) {
		t.Fatalf("two recoveries differ: %d vs %d bytes", len(a), len(b))
	}
}

// BenchmarkDurableRecovery measures recovery time (whips.New on an
// existing data directory: snapshot restore + WAL-suffix replay) as a
// function of WAL suffix length — the D1 table in EXPERIMENTS.md. The
// data directory is prepared once per WAL length with checkpoints
// disabled, so every record is in the replay suffix.
func BenchmarkDurableRecovery(b *testing.B) {
	rs := whips.MustSchema("A:int", "B:int")
	ss := whips.MustSchema("B:int", "C:int")
	for _, walLen := range []int{25, 100, 400} {
		b.Run(fmt.Sprintf("wal=%d", walLen), func(b *testing.B) {
			dir := b.TempDir()
			sys, err := whips.New(durableConfig(dir, 0))
			if err != nil {
				b.Fatal(err)
			}
			sys.Start()
			for i := 2; i < 2+walLen; i++ {
				if i%3 == 0 {
					_, err = sys.Execute("src", whips.Insert("R", rs, whips.T(i, i%5)))
				} else {
					_, err = sys.Execute("src", whips.Insert("S", ss, whips.T(i%5, i)))
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			if !sys.WaitFresh(10 * time.Second) {
				b.Fatal("system did not become fresh")
			}
			sys.Stop()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := whips.New(durableConfig(dir, 0))
				if err != nil {
					b.Fatal(err)
				}
				s.Stop()
			}
		})
	}
}

// TestDurableRejectsUnsupported checks the configurations durability
// cannot honor are refused up front.
func TestDurableRejectsUnsupported(t *testing.T) {
	cfg := durableConfig(t.TempDir(), 0)
	cfg.Workers = 2
	if _, err := whips.New(cfg); err == nil {
		t.Fatal("expected error for Workers > 0")
	}
}

// TestDurableRecoveryQueryManagers is the kill-9 coverage for the managers
// that used to be rejected by durability: CompleteQuery, QueryBatching,
// and SelfMaintaining all checkpoint their backlog/QID bookkeeping (and
// auxiliary relations), so a process that dies between checkpoints comes
// back via snapshot restore + WAL-suffix replay with any in-flight source
// query round abandoned and restarted by the replayed update.
func TestDurableRecoveryQueryManagers(t *testing.T) {
	rs := whips.MustSchema("A:int", "B:int")
	ss := whips.MustSchema("B:int", "C:int")
	mk := func(dir string, snapshotEvery int) whips.Config {
		return whips.Config{
			Sources: []whips.SourceDef{{ID: "src", Relations: map[string]*whips.Relation{
				"R": whips.FromTuples(rs, whips.T(1, 10)),
				"S": whips.NewRelation(ss),
			}}},
			Views: []whips.ViewDef{
				{ID: "V1", Expr: whips.MustJoin(whips.Scan("R", rs), whips.Scan("S", ss)), Manager: whips.CompleteQuery},
				{ID: "V2", Expr: whips.Scan("S", ss), Manager: whips.QueryBatching},
				{ID: "V3", Expr: whips.MustJoin(whips.Scan("R", rs), whips.Scan("S", ss)), Manager: whips.SelfMaintaining},
			},
			LogStates: true,
			Durable:   &whips.DurableOptions{Dir: dir, Fsync: whips.FsyncNever, SnapshotEvery: snapshotEvery},
		}
	}
	dir := t.TempDir()
	sys, err := whips.New(mk(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	durableDrive(t, sys, 2, 30)
	want := sys.ReadAll()
	sys.Stop()

	sys2, err := whips.New(mk(dir, 0))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer sys2.Stop()
	got := sys2.ReadAll()
	for v, r := range want {
		if !r.Equal(got[v]) {
			t.Fatalf("view %s after recovery:\n got %v\nwant %v", v, got[v], r)
		}
	}
	rep, err := sys2.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Fatalf("recovered run not consistent: %+v", rep)
	}

	// The recovered managers keep working — including fresh source query
	// rounds under post-restore QIDs.
	sys2.Start()
	durableDrive(t, sys2, 30, 40)
	rep, err = sys2.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Fatalf("post-recovery run not consistent: %+v", rep)
	}
}
