package whips_test

import (
	"fmt"
	"time"

	"whips"
)

// Example reproduces the paper's Table 1: one source update affecting two
// views lands at the warehouse atomically.
func Example() {
	rs := whips.MustSchema("A:int", "B:int")
	ss := whips.MustSchema("B:int", "C:int")
	ts := whips.MustSchema("C:int", "D:int")

	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{
			{ID: "src1", Relations: map[string]*whips.Relation{
				"R": whips.FromTuples(rs, whips.T(1, 2)),
				"S": whips.NewRelation(ss),
			}},
			{ID: "src2", Relations: map[string]*whips.Relation{
				"T": whips.FromTuples(ts, whips.T(3, 4)),
			}},
		},
		Views: []whips.ViewDef{
			{ID: "V1", Expr: whips.MustJoin(whips.Scan("R", rs), whips.Scan("S", ss)), Manager: whips.Complete},
			{ID: "V2", Expr: whips.MustJoin(whips.Scan("S", ss), whips.Scan("T", ts)), Manager: whips.Complete},
		},
	})
	if err != nil {
		panic(err)
	}
	sys.Start()
	defer sys.Stop()

	if _, err := sys.Execute("src1", whips.Insert("S", ss, whips.T(2, 3))); err != nil {
		panic(err)
	}
	sys.WaitFresh(5 * time.Second)

	views, _ := sys.Read("V1", "V2")
	fmt.Println("V1 =", views["V1"])
	fmt.Println("V2 =", views["V2"])
	// Output:
	// V1 = {[1 2 3]}
	// V2 = {[2 3 4]}
}

// ExampleMustJoin shows evaluating a view expression directly against an
// ad-hoc database, outside any running system.
func ExampleMustJoin() {
	rs := whips.MustSchema("A:int", "B:int")
	ss := whips.MustSchema("B:int", "C:int")
	v := whips.MustJoin(whips.Scan("R", rs), whips.Scan("S", ss))

	db := adHoc{
		"R": whips.FromTuples(rs, whips.T(1, 2), whips.T(9, 9)),
		"S": whips.FromTuples(ss, whips.T(2, 3)),
	}
	out, err := whips.EvalView(v, db)
	if err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: {[1 2 3]}
}

type adHoc map[string]*whips.Relation

func (d adHoc) Relation(name string) (*whips.Relation, error) {
	r, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("no relation %q", name)
	}
	return r, nil
}

// ExampleMustAggregate builds an aggregate view with group-by and shows
// its schema.
func ExampleMustAggregate() {
	sales := whips.MustSchema("Region:string", "Amount:int")
	v := whips.MustAggregate(whips.Scan("Sales", sales), []string{"Region"}, []whips.AggSpec{
		{Op: whips.Count, As: "N"},
		{Op: whips.Sum, Attr: "Amount", As: "Total"},
	})
	fmt.Println(v.Schema())
	// Output: (Region:string, N:int, Total:int)
}

// ExampleSystem_Consistency judges a finished run against the paper's §2
// definitions.
func ExampleSystem_Consistency() {
	ss := whips.MustSchema("B:int", "C:int")
	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{{ID: "src", Relations: map[string]*whips.Relation{
			"S": whips.NewRelation(ss),
		}}},
		Views: []whips.ViewDef{
			{ID: "Copy", Expr: whips.Scan("S", ss), Manager: whips.Complete},
		},
		LogStates: true,
	})
	if err != nil {
		panic(err)
	}
	sys.Start()
	defer sys.Stop()
	for i := 0; i < 3; i++ {
		if _, err := sys.Execute("src", whips.Insert("S", ss, whips.T(i, i))); err != nil {
			panic(err)
		}
	}
	sys.WaitFresh(5 * time.Second)
	rep, err := sys.Consistency()
	if err != nil {
		panic(err)
	}
	fmt.Printf("convergent=%v strong=%v complete=%v\n", rep.Convergent, rep.Strong, rep.Complete)
	// Output: convergent=true strong=true complete=true
}

// ExampleCmp shows building selection predicates.
func ExampleCmp() {
	rs := whips.MustSchema("A:int", "B:int")
	v := whips.MustSelect(whips.Scan("R", rs),
		whips.And(whips.Cmp("A", whips.Ge, 10), whips.Not(whips.Cmp("B", whips.Eq, 0))))
	fmt.Println(v)
	// Output: select[(A>=10 and not(B=0))](R)
}
