// Command vuttrace replays the paper's worked examples against the merge
// process and prints the ViewUpdateTable after every event, reproducing
// the tables of §4 and §5 step by step.
//
// Usage:
//
//	vuttrace -example 2|3|4|5|6
package main

import (
	"flag"
	"fmt"
	"os"

	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/relation"
)

var alSchema = relation.MustSchema("X:int")

// feed sends one message, labelled, to the merge process.
func feed(m *merge.Merge, label string, x any) {
	fmt.Printf(">> %s\n", label)
	m.Handle(x, 0)
}

func al(view msg.ViewID, from, upto msg.UpdateID) msg.ActionList {
	return msg.ActionList{View: view, From: from, Upto: upto,
		Delta: relation.InsertDelta(alSchema, relation.T(int(upto)))}
}

func rel(seq msg.UpdateID, views ...msg.ViewID) msg.RelevantSet {
	return msg.RelevantSet{Seq: seq, Views: views}
}

// submissions counts warehouse transactions handed over by the merge.
var submissions int

func onTxn(t msg.WarehouseTxn) {
	submissions++
	fmt.Printf("   => warehouse transaction %d: rows %v, %d view writes\n", submissions, t.Rows, len(t.Writes))
}

func tracer() merge.Option {
	return merge.WithTrace(func(e merge.TraceEvent) {
		switch e.Kind {
		case "rel":
			fmt.Printf("   REL%d received\n", e.Seq)
		case "al":
			fmt.Printf("   AL for U%d / %s recorded\n", e.Seq, e.View)
		case "apply":
			fmt.Printf("   rows %v applied\n", e.Rows)
		case "purge":
			fmt.Printf("   row %d purged\n", e.Seq)
		}
		if e.VUT == "" {
			fmt.Println("   VUT: (empty)")
		} else {
			fmt.Printf("   VUT:\n%s", indent(e.VUT))
		}
	})
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "     " + s[start:i+1]
			start = i + 1
		}
	}
	return out
}

func main() {
	example := flag.Int("example", 3, "paper example to replay: 2, 3, 4 or 5; 6 shows §3.2 relayed-REL arrival orders")
	flag.Parse()

	switch *example {
	case 2:
		fmt.Println("Example 2 (§4.1): building the ViewUpdateTable under SPA")
		fmt.Println("views: V1=R⋈S V2=S⋈T⋈Q V3=Q; updates: U1 on S, U2 on Q")
		m := merge.New(0, merge.SPA, merge.NewCallback(onTxn), tracer())
		feed(m, "REL1={V1,V2}", rel(1, "V1", "V2"))
		feed(m, "REL2={V2,V3}", rel(2, "V2", "V3"))
		feed(m, "AL^2_1 from VM2", al("V2", 1, 1))
		feed(m, "AL^1_1 from VM1", al("V1", 1, 1))
	case 3:
		fmt.Println("Example 3 (§4.2): the Simple Painting Algorithm")
		fmt.Println("views: V1=R⋈S V2=S⋈T V3=Q; updates: U1 on S, U2 on Q, U3 on T")
		m := merge.New(0, merge.SPA, merge.NewCallback(onTxn), tracer())
		feed(m, "REL1={V1,V2}", rel(1, "V1", "V2"))
		feed(m, "AL^2_1", al("V2", 1, 1))
		feed(m, "REL2={V3}", rel(2, "V3"))
		feed(m, "REL3={V2}", rel(3, "V2"))
		feed(m, "AL^3_2 (t4: row 2 applies before row 1 — promptness)", al("V3", 2, 2))
		feed(m, "AL^2_3 (t7: row 3 must wait behind row 1 in V2's column)", al("V2", 3, 3))
		feed(m, "AL^1_1 (t8: row 1 applies, then row 3)", al("V1", 1, 1))
	case 4:
		fmt.Println("Example 4 (§5): intertwined batch that breaks SPA, handled by PA")
		fmt.Println("views: V1=R⋈S V2=S⋈T⋈Q V3=Q; updates: U1 on S, U2 on Q, U3 on S")
		m := merge.New(0, merge.PA, merge.NewCallback(onTxn), tracer())
		feed(m, "REL1={V1,V2}", rel(1, "V1", "V2"))
		feed(m, "REL2={V2,V3}", rel(2, "V2", "V3"))
		feed(m, "REL3={V1,V2}", rel(3, "V1", "V2"))
		feed(m, "AL^1_1..3 (batch covering U1 and U3)", al("V1", 1, 3))
		feed(m, "AL^2_1", al("V2", 1, 1))
		feed(m, "AL^2_2", al("V2", 2, 2))
		feed(m, "AL^3_2 (SPA would now wrongly apply rows 1,2)", al("V3", 2, 2))
		feed(m, "AL^2_3 (now rows 1-3 apply as ONE transaction)", al("V2", 3, 3))
	case 5:
		fmt.Println("Example 5 (§5): the Painting Algorithm")
		fmt.Println("views: V1=R⋈S V2=S⋈T⋈Q V3=Q; updates: U1 on S, U2 on Q, U3 on Q")
		m := merge.New(0, merge.PA, merge.NewCallback(onTxn), tracer())
		feed(m, "REL1={V1,V2}", rel(1, "V1", "V2"))
		feed(m, "REL2={V2,V3}", rel(2, "V2", "V3"))
		feed(m, "REL3={V2,V3}", rel(3, "V2", "V3"))
		feed(m, "AL^2_1 (t1)", al("V2", 1, 1))
		feed(m, "AL^2_2..3 (t2: covers U2 and U3, state=3)", al("V2", 2, 3))
		feed(m, "AL^3_2 (t3: ProcessRow(2)→ProcessRow(1) fails, V1 white)", al("V3", 2, 2))
		feed(m, "AL^1_1 (t4/t5: row 1 applies alone)", al("V1", 1, 1))
		feed(m, "AL^3_3 (t6/t7: rows 2,3 apply together)", al("V3", 3, 3))
	case 6:
		fmt.Println("§3.2 alternative routing: RELs relayed via view managers")
		fmt.Println("views: V1, V2 over S; REL1's relayer lags behind V1's lists")
		m := merge.New(0, merge.PA, merge.NewCallback(onTxn), tracer(), merge.WithRelayedRELs())
		feed(m, "AL^V1_1 arrives with REL1 still in flight (buffered)", al("V1", 1, 1))
		feed(m, "REL2={V1,V2} (relayed by V2, overtook REL1)", rel(2, "V1", "V2"))
		feed(m, "AL^V1_2 (queues behind the buffered AL^V1_1)", al("V1", 2, 2))
		feed(m, "AL^V2_2 (row 2 all-red, but the REL frontier is 0)", al("V2", 2, 2))
		feed(m, "REL1={V1} lands: frontier 0→2, everything applies in order", rel(1, "V1"))
	default:
		fmt.Fprintf(os.Stderr, "unknown example %d (use 2, 3, 4, 5 or 6)\n", *example)
		os.Exit(2)
	}
}
