// Command mvcexplore runs the deterministic schedule explorer against the
// paper's theorem fleets: complete view managers under SPA (Thm 4.1 —
// complete MVC) or batching managers under PA (Thm 5.1 — strong MVC).
// Every terminal interleaving is checked against the theorem's consistency
// level and the §5 invariants (column order, atomic VUT-row commit, purge
// safety, promptness).
//
// On a violation it prints the minimal failing schedule plus the seed that
// replays it, and exits 1:
//
//	mvcexplore -algo spa -seeds 1000
//	mvcexplore -algo pa -seeds 1000 -faults 0.05
//	mvcexplore -algo spa -dfs -schedules 5000
//
// The -flip-edge hook deliberately violates FIFO once on the named edge —
// a planted ordering bug that demonstrates the harness catching it:
//
//	mvcexplore -algo spa -flip-edge 'vm:V1→merge:0'
package main

import (
	"flag"
	"fmt"
	"os"

	"whips/internal/obs"
	"whips/internal/sched"
	"whips/internal/viewmgr"
)

func main() {
	algo := flag.String("algo", "spa", "fleet under test: spa (complete MVC) or pa (strong MVC)")
	seeds := flag.Int("seeds", 1000, "randomized schedules to explore (random mode)")
	dfs := flag.Bool("dfs", false, "systematically enumerate interleavings instead of sampling")
	schedules := flag.Int("schedules", 2000, "DFS schedule budget")
	updates := flag.Int("updates", 4, "source transactions per schedule")
	seed := flag.Int64("seed", 1, "base schedule seed (schedule s runs with seed+s)")
	dataSeed := flag.Int64("data-seed", 1, "workload generator seed")
	faults := flag.Float64("faults", 0, "per-step fault probability (crash/restart, stalls, delay spikes)")
	flipEdge := flag.String("flip-edge", "", "deliberate-bug hook: violate FIFO once on this edge (e.g. 'vm:V1→merge:0')")
	maxSteps := flag.Int("max-steps", 0, "per-schedule delivery bound (0 = default)")
	workers := flag.Int("workers", 0, "view-manager worker pool size shared across schedules (0/1 = serial); the pool stays in deterministic scatter-gather mode, so schedules replay identically")
	trace := flag.String("trace", "", "write per-stage JSONL trace events here (\"-\" for stderr) and print end-to-end freshness (virtual time) at exit")
	replicate := flag.Bool("replicate", false, "attach an in-process read replica per schedule so explored traces include repl_pub/repl_apply spans")
	sharedPlans := flag.Bool("shared-plans", false, "maintain views through the shared maintenance-plan DAG (common subexpressions computed once at the integrator) instead of per-view trees")
	selfMaintain := flag.Bool("self-maintain", false, "run the spa fleet's managers on auxiliary-relation maintenance (zero source queries on the covered path) instead of full replicas")
	maxAuxRows := flag.Int("max-aux-rows", 0, "bound each self-maintaining auxiliary relation, forcing the degraded/repair fallback onto explored schedules (0 = unbounded)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	// -trace: every explored schedule streams its stage events to the JSONL
	// sink, separated by "schedule" marker records. Update sequence numbers
	// restart at 1 each schedule, so end-to-end spans are computed per
	// schedule (the factory wrapper cuts the event stream at each rebuild)
	// and summarized together at exit. Timestamps are virtual simulator
	// time, not wall clock.
	var spans []obs.Span
	var mem *obs.MemorySink
	var pipe *obs.Pipeline
	var jsonl func(obs.Event)
	var schedule int64
	if *trace != "" {
		out := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mvcexplore: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			out = f
		}
		jsonl = obs.JSONLSink(out)
		pipe = obs.NewPipeline()
	}

	var pool *viewmgr.Pool
	if *workers > 1 {
		pool = viewmgr.NewPool(*workers)
		defer pool.Close()
	}
	factory := sched.Fleet(sched.FleetConfig{
		Algo:         *algo,
		Updates:      *updates,
		Seed:         *dataSeed,
		Crashable:    *faults > 0,
		Pool:         pool,
		Obs:          pipe,
		Replicate:    *replicate,
		SharedPlans:  *sharedPlans,
		SelfMaintain: *selfMaintain,
		MaxAuxRows:   *maxAuxRows,
	})
	if pipe != nil {
		inner := factory
		factory = func() (*sched.Harness, error) {
			if mem != nil {
				spans = append(spans, obs.EndToEnd(mem.Events())...)
			}
			schedule++
			mem = &obs.MemorySink{}
			pipe.Tracer = obs.NewTracer(jsonl, mem.Sink())
			jsonl(obs.Event{Node: "explorer", Stage: "schedule", N: schedule})
			return inner()
		}
	}
	opts := sched.Options{
		Seed:         *seed,
		Seeds:        *seeds,
		DFS:          *dfs,
		MaxSchedules: *schedules,
		MaxSteps:     *maxSteps,
		FaultRate:    *faults,
		FlipEdge:     *flipEdge,
	}
	if !*quiet {
		total := *seeds
		if *dfs {
			total = *schedules
		}
		step := total / 10
		if step < 1 {
			step = 1
		}
		opts.Progress = func(done int) {
			if done%step == 0 {
				fmt.Fprintf(os.Stderr, "... %d/%d schedules\n", done, total)
			}
		}
	}

	res, err := sched.Explore(factory, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mvcexplore: %v\n", err)
		os.Exit(2)
	}
	mode := fmt.Sprintf("random (base seed %d)", *seed)
	if *dfs {
		mode = "DFS enumeration"
	}
	fmt.Printf("explored %d schedules (%d deliveries) of the %s fleet, %d updates, %s\n",
		res.Schedules, res.Deliveries, *algo, *updates, mode)
	if mem != nil {
		spans = append(spans, obs.EndToEnd(mem.Events())...)
		fmt.Printf("%s (virtual time)\n", obs.Summarize(spans))
	}
	if res.Violation != nil {
		fmt.Println(res.Violation.String())
		os.Exit(1)
	}
	fmt.Println("no invariant violations")
}
