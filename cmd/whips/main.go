// Command whips runs a configurable warehouse scenario end-to-end on the
// paper's R/S/T schema: it executes a random update workload against the
// sources, maintains V1 = R⋈S and V2 = S⋈T with the selected view-manager
// kind and commit strategy, then reports warehouse contents, merge
// statistics, and the achieved consistency level.
//
// Usage:
//
//	whips [-managers complete|query|batching|querybatch|refresh|completeN|convergent]
//	      [-commit sequential|dependency|batched] [-updates N] [-seed N]
//	      [-distributed] [-filter] [-batch N] [-jitter duration] [-trace file]
//
// -trace writes one JSONL trace event per pipeline stage each update
// passes through (commit → route → al → rel → submit → wh_commit) to the
// given file ("-" for stderr) and prints an end-to-end freshness summary
// at exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"whips"
	"whips/internal/obs"
	"whips/internal/workload"
)

func main() {
	managers := flag.String("managers", "complete", "view manager kind: complete, query, batching, querybatch, refresh, completeN, convergent")
	commit := flag.String("commit", "sequential", "commit strategy: sequential, dependency, batched")
	updates := flag.Int("updates", 50, "number of source transactions")
	seed := flag.Int64("seed", 1, "workload seed")
	distributed := flag.Bool("distributed", false, "partition views over multiple merge processes (§6.1)")
	filter := flag.Bool("filter", false, "enable irrelevant-update filtering (ref [7])")
	relay := flag.Bool("relay", false, "relay RELi via view managers (§3.2 alternative)")
	batch := flag.Int("batch", 4, "batch size for -commit batched")
	jitter := flag.Duration("jitter", 200*time.Microsecond, "random per-edge message delay")
	param := flag.Int("param", 2, "N for completeN / period for refresh")
	trace := flag.String("trace", "", "write per-stage JSONL trace events here (\"-\" for stderr) and print end-to-end freshness at exit")
	replicate := flag.Bool("replicate", false, "attach an in-process read replica so traced spans extend through repl_pub/repl_apply")
	flag.Parse()

	kind, ok := map[string]whips.ManagerKind{
		"complete":   whips.Complete,
		"query":      whips.CompleteQuery,
		"batching":   whips.Batching,
		"querybatch": whips.QueryBatching,
		"refresh":    whips.Refresh,
		"completeN":  whips.CompleteN,
		"convergent": whips.Convergent,
	}[*managers]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown manager kind %q\n", *managers)
		os.Exit(2)
	}
	ckind, ok := map[string]whips.CommitKind{
		"sequential": whips.Sequential,
		"dependency": whips.Dependency,
		"batched":    whips.Batched,
	}[*commit]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown commit strategy %q\n", *commit)
		os.Exit(2)
	}

	// Observability: metrics always collect (they are cheap); the tracer
	// and its end-of-run freshness summary only exist under -trace.
	pipe := obs.NewPipeline()
	var mem *obs.MemorySink
	if *trace != "" {
		out := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		mem = &obs.MemorySink{}
		pipe.Tracer = obs.NewTracer(obs.JSONLSink(out), mem.Sink())
	}

	views := workload.PaperViews(kind)
	for i := range views {
		views[i].Param = *param
		views[i].ComputeDelay = func(int) int64 { return int64(100 * time.Microsecond) }
	}
	sys, err := whips.New(whips.Config{
		Sources:           workload.PaperSources(),
		Views:             views,
		Commit:            ckind,
		BatchSize:         *batch,
		DistributedMerge:  *distributed,
		RelevanceFilter:   *filter,
		RelayRelevantSets: *relay,
		LogStates:         true,
		Jitter:            *jitter,
		Seed:              *seed,
		Obs:               pipe,
		Replicate:         *replicate,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	fmt.Printf("views: V1 = R⋈S, V2 = S⋈T  managers: %s  merge: %v  commit: %s\n",
		*managers, sys.Algorithm(), *commit)

	gen := workload.NewGenerator(*seed, workload.PaperSources())
	start := time.Now()
	for i := 0; i < *updates; i++ {
		src, writes := gen.Txn()
		if _, err := sys.Execute(src, writes...); err != nil {
			log.Fatal(err)
		}
	}
	if !sys.WaitFresh(30 * time.Second) {
		log.Fatal("warehouse did not become fresh within 30s")
	}
	elapsed := time.Since(start)

	views2 := sys.ReadAll()
	fmt.Printf("\nafter %d updates (%.1fms wall):\n", *updates, float64(elapsed.Microseconds())/1000)
	fmt.Printf("  V1 (%d rows): %v\n", views2["V1"].Cardinality(), views2["V1"])
	fmt.Printf("  V2 (%d rows): %v\n", views2["V2"].Cardinality(), views2["V2"])
	fmt.Printf("  warehouse transactions: %d\n", sys.Warehouse().Applied())
	for g, st := range sys.MergeStats() {
		fmt.Printf("  merge %d: RELs=%d ALs=%d txns=%d maxVUT=%d\n",
			g, st.RELsReceived, st.ALsReceived, st.TxnsSubmitted, st.MaxRowsLive)
	}

	rep, err := sys.Consistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistency (§2): convergent=%v strong=%v complete=%v\n",
		rep.Convergent, rep.Strong, rep.Complete)
	if rep.Violation != "" {
		fmt.Printf("  violation: %s\n", rep.Violation)
	}
	for id, v := range rep.PerView {
		fmt.Printf("  %s: convergent=%v strong=%v complete=%v\n", id, v.Convergent, v.Strong, v.Complete)
	}

	if *replicate {
		fmt.Printf("\nread replica: epoch %d (warehouse %d)\n", sys.Replica().Epoch(), sys.Epoch())
	}
	if mem != nil {
		spans := obs.EndToEnd(mem.Events())
		fmt.Printf("\n%s\n", obs.Summarize(spans))
		if *replicate {
			applied := 0
			for _, sp := range spans {
				if sp.ReplApplied {
					applied++
				}
			}
			fmt.Printf("replica-applied spans: %d/%d\n", applied, len(spans))
		}
	}
}
