// Command mvcstat is the fleet observability console: it polls the debug
// endpoints (/metrics.json, /trace) of every node in a whips deployment —
// warehouse site, manager site, any number of followers — and renders live
// pipeline state plus causally assembled end-to-end spans.
//
//	mvcstat -nodes wh=127.0.0.1:8657,mgr=127.0.0.1:8659,f1=127.0.0.1:8658
//
// Each refresh shows per-stage throughput (source commits, integrator
// fan-out, action lists, merge submits, warehouse commits, replica
// applies), VUT depth, freshness and replication-lag percentiles, wire
// reconnect churn, and the audit counters. Trace events are polled
// incrementally (cursor per node) and joined across processes by the causal
// trace context each wire frame carries, so one source update shows up as a
// single span: commit → route → al → rel/al_recv → submit → wh_commit →
// repl_pub → repl_apply.
//
// With -collect the console also runs a trace collector: nodes started with
// -trace-collector stream events here directly, which survives node
// restarts (a restarted node's ring starts over; the collector's copy does
// not).
//
//	mvcstat -nodes ... -collect 127.0.0.1:9500
//
// -once renders a single snapshot and exits (scripts); -json dumps the
// assembled spans as JSON instead of the console view.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"whips/internal/obs"
	"whips/internal/repl"
)

type node struct {
	name string
	base string // http://host:port

	cursor int64 // /trace incremental cursor
	err    error

	snap     obs.Snapshot
	prev     obs.Snapshot
	prevAt   time.Time
	snapAt   time.Time
	hasSnaps bool

	// repl is the node's /replstatus, nil when the node does not serve one
	// (manager sites, older binaries).
	repl *repl.PeerStatus
}

func main() {
	nodesFlag := flag.String("nodes", "", "comma-separated debug addresses to poll: name=host:port or host:port")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "render one snapshot and exit")
	collect := flag.String("collect", "", "also run a trace collector on this host:port (nodes stream via -trace-collector)")
	spansN := flag.Int("spans", 8, "newest spans to display")
	jsonOut := flag.Bool("json", false, "with -once: dump assembled spans as JSON")
	flag.Parse()

	nodes := parseNodes(*nodesFlag)
	if len(nodes) == 0 && *collect == "" {
		fmt.Fprintln(os.Stderr, "mvcstat: need -nodes and/or -collect")
		os.Exit(2)
	}

	// Collected events land in a large ring shared with the polled ones.
	var collector *obs.Collector
	collected := obs.NewRingSink(1 << 16)
	if *collect != "" {
		c, err := obs.NewCollector(*collect, collected.Sink())
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvcstat: collector: %v\n", err)
			os.Exit(1)
		}
		collector = c
		defer collector.Close()
	}

	// events accumulates every trace event seen (polled or collected) for
	// span assembly; bounded by keeping only the newest maxEvents.
	const maxEvents = 1 << 17
	var events []obs.Event
	var collectCursor int64

	client := &http.Client{Timeout: 3 * time.Second}
	refresh := func() {
		for _, n := range nodes {
			n.poll(client)
			evs, next, err := fetchTrace(client, n.base, n.cursor)
			if err == nil {
				n.cursor = next
				events = append(events, evs...)
			}
		}
		if collector != nil {
			evs, next := collected.Since(collectCursor)
			collectCursor = next
			events = append(events, evs...)
		}
		if len(events) > maxEvents {
			events = append([]obs.Event(nil), events[len(events)-maxEvents:]...)
		}
	}

	if *once {
		refresh()
		if *jsonOut {
			spans := obs.EndToEnd(events)
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(spans)
			return
		}
		render(nodes, events, collector, *spansN)
		return
	}
	for {
		refresh()
		fmt.Print("\033[2J\033[H") // clear screen, home cursor
		render(nodes, events, collector, *spansN)
		time.Sleep(*interval)
	}
}

func parseNodes(s string) []*node {
	var out []*node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok {
			name, addr = part, part
		}
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		out = append(out, &node{name: name, base: addr})
	}
	return out
}

func (n *node) poll(client *http.Client) {
	resp, err := client.Get(n.base + "/metrics.json")
	if err != nil {
		n.err = err
		return
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		n.err = err
		return
	}
	n.err = nil
	n.prev, n.prevAt = n.snap, n.snapAt
	n.snap, n.snapAt = snap, time.Now()
	n.hasSnaps = !n.prevAt.IsZero()
	n.repl = fetchReplStatus(client, n.base)
}

// fetchReplStatus polls /replstatus; nil when the node does not serve it.
func fetchReplStatus(client *http.Client, base string) *repl.PeerStatus {
	resp, err := client.Get(base + "/replstatus")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st repl.PeerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return &st
}

func fetchTrace(client *http.Client, base string, since int64) ([]obs.Event, int64, error) {
	resp, err := client.Get(fmt.Sprintf("%s/trace?since=%d", base, since))
	if err != nil {
		return nil, since, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, since, fmt.Errorf("trace: %s", resp.Status)
	}
	var body struct {
		Events []obs.Event `json:"events"`
		Next   int64       `json:"next"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, since, err
	}
	return body.Events, body.Next, nil
}

// famTotal sums every labeled series of a metric family in a name->value
// map ("repl_epoch_lag{follower=\"f1\"}" counts toward "repl_epoch_lag").
func famTotal(m map[string]int64, family string) (int64, bool) {
	var sum int64
	found := false
	for k, v := range m {
		if k == family || strings.HasPrefix(k, family+"{") {
			sum += v
			found = true
		}
	}
	return sum, found
}

// famHist merges every labeled series of a histogram family (identical
// bounds by construction).
func famHist(m map[string]obs.HistogramSnapshot, family string) (obs.HistogramSnapshot, bool) {
	var out obs.HistogramSnapshot
	found := false
	for k, h := range m {
		if k != family && !strings.HasPrefix(k, family+"{") {
			continue
		}
		if !found {
			out = obs.HistogramSnapshot{
				Bounds: h.Bounds,
				Counts: append([]int64(nil), h.Counts...),
				Sum:    h.Sum, Count: h.Count, Max: h.Max,
			}
			found = true
			continue
		}
		for i := range h.Counts {
			if i < len(out.Counts) {
				out.Counts[i] += h.Counts[i]
			}
		}
		out.Sum += h.Sum
		out.Count += h.Count
		if h.Max > out.Max {
			out.Max = h.Max
		}
	}
	return out, found
}

// stageRow is one line of the per-stage throughput table.
type stageRow struct {
	label  string
	family string
}

var stageRows = []stageRow{
	{"source commit", "source_txns_total"},
	{"integrator route", "integrator_updates_total"},
	{"vm action lists", "vm_als_total"},
	{"merge rels", "merge_rels_total"},
	{"merge submits", "merge_txns_total"},
	{"wh commits", "wh_txns_total"},
	{"repl applies", "repl_epochs_applied_total"},
}

func render(nodes []*node, events []obs.Event, collector *obs.Collector, spansN int) {
	now := time.Now().Format("15:04:05")
	fmt.Printf("mvcstat %s — %d node(s)", now, len(nodes))
	if collector != nil {
		fmt.Printf(", collector %s (%d events)", collector.Addr(), collector.Received())
	}
	fmt.Println()

	// Node status line.
	for _, n := range nodes {
		if n.err != nil {
			fmt.Printf("  %-10s %s UNREACHABLE: %v\n", n.name, n.base, n.err)
		}
	}

	renderTopology(nodes)

	// Per-stage throughput: totals and rates summed across the fleet.
	fmt.Println("\npipeline throughput")
	for _, row := range stageRows {
		var total int64
		var rate float64
		seen := false
		for _, n := range nodes {
			if n.err != nil {
				continue
			}
			v, ok := famTotal(n.snap.Counters, row.family)
			if !ok {
				continue
			}
			seen = true
			total += v
			if n.hasSnaps {
				pv, _ := famTotal(n.prev.Counters, row.family)
				dt := n.snapAt.Sub(n.prevAt).Seconds()
				if dt > 0 {
					rate += float64(v-pv) / dt
				}
			}
		}
		if !seen {
			continue
		}
		fmt.Printf("  %-18s %10d total  %8.1f/s\n", row.label, total, rate)
	}

	// Depth / lag / churn gauges.
	fmt.Println("\ndepth & lag")
	gaugeLine(nodes, "merge_vut_live", "VUT live rows", "")
	gaugeLine(nodes, "merge_held_als", "held ALs", "")
	gaugeLine(nodes, "wh_pending_txns", "wh pending txns", "")
	gaugeLine(nodes, "repl_epoch_lag", "repl epoch lag", "")
	gaugeLine(nodes, "repl_last_apply_age_ms", "last apply age", "ms")
	gaugeLine(nodes, "audit_promptness_gap_max_ms", "promptness gap", "ms")
	histLine(nodes, "wh_freshness_ns", "freshness")
	histLine(nodes, "merge_prompt_gap_ns", "merge prompt gap")
	histLine(nodes, "merge_al_transport_ns", "al transport")

	fmt.Println("\nchurn & audit")
	counterLine(nodes, "wire_connects_total", "wire connects")
	counterLine(nodes, "wire_dial_failures_total", "dial failures")
	counterLine(nodes, "wire_retransmits_total", "retransmits")
	counterLine(nodes, "repl_resubscribes_total", "repl resubscribes")
	counterLine(nodes, "audit_checks_total", "audit checks")
	counterLine(nodes, "audit_violations_total", "audit VIOLATIONS")
	counterLine(nodes, "audit_skips_total", "audit skips")

	// Assembled spans.
	spans := obs.EndToEnd(events)
	fmt.Println()
	if len(spans) == 0 {
		fmt.Println("spans: none traced yet (start nodes with -trace)")
		return
	}
	fmt.Println(obs.Summarize(spans))
	applied := 0
	for _, sp := range spans {
		if sp.ReplApplied {
			applied++
		}
	}
	fmt.Printf("  replica-applied: %d/%d\n", applied, len(spans))
	start := len(spans) - spansN
	if start < 0 {
		start = 0
	}
	for _, sp := range spans[start:] {
		state := "partial"
		switch {
		case sp.Complete && sp.ReplApplied:
			state = "complete+repl"
		case sp.Complete:
			state = "complete"
		}
		fmt.Printf("  seq %-6d %-13s hops=%-2d freshness=%s\n",
			sp.Seq, state, sp.MaxHop, dur(sp.Freshness))
	}
}

// renderTopology draws the replica tree from each node's /replstatus:
// children hang under the node whose feed address matches their upstream,
// with role, term, epoch, lag, and apply age per node.
func renderTopology(nodes []*node) {
	var have []*node
	byAddr := map[string]string{} // feed address -> reported node name
	for _, n := range nodes {
		if n.err != nil || n.repl == nil {
			continue
		}
		have = append(have, n)
		if n.repl.Addr != "" {
			byAddr[n.repl.Addr] = n.repl.Name
		}
	}
	if len(have) == 0 {
		return
	}
	sort.Slice(have, func(i, j int) bool { return have[i].repl.Name < have[j].repl.Name })
	children := map[string][]*node{}
	var roots []*node
	for _, n := range have {
		if parent, ok := byAddr[n.repl.Upstream]; ok && n.repl.Upstream != "" {
			children[parent] = append(children[parent], n)
		} else {
			// A true root, or an upstream outside the polled set.
			roots = append(roots, n)
		}
	}
	fmt.Println("\nreplica topology")
	seen := map[string]bool{}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		st := n.repl
		if seen[st.Name] {
			return
		}
		seen[st.Name] = true
		detail := fmt.Sprintf("role=%-8s term=%d epoch=%d", st.Role, st.Term, st.Epoch)
		if st.Upstream != "" {
			detail += " upstream=" + st.Upstream
		}
		if st.Role != "primary" {
			detail += fmt.Sprintf(" lag=%d", st.Lag)
			if st.ApplyAgeMs >= 0 {
				detail += fmt.Sprintf(" apply_age=%dms", st.ApplyAgeMs)
			}
		}
		fmt.Printf("  %-*s %s\n", 16+2*depth, strings.Repeat("  ", depth)+st.Name, detail)
		for _, k := range children[st.Name] {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

func gaugeLine(nodes []*node, family, label, unit string) {
	var parts []string
	for _, n := range nodes {
		if n.err != nil {
			continue
		}
		if v, ok := famTotal(n.snap.Gauges, family); ok {
			parts = append(parts, fmt.Sprintf("%s=%d%s", n.name, v, unit))
		}
	}
	if len(parts) == 0 {
		return
	}
	sort.Strings(parts)
	fmt.Printf("  %-18s %s\n", label, strings.Join(parts, "  "))
}

func counterLine(nodes []*node, family, label string) {
	var total int64
	found := false
	for _, n := range nodes {
		if n.err != nil {
			continue
		}
		if v, ok := famTotal(n.snap.Counters, family); ok {
			total += v
			found = true
		}
	}
	if !found {
		return
	}
	fmt.Printf("  %-18s %10d\n", label, total)
}

func histLine(nodes []*node, family, label string) {
	var merged obs.HistogramSnapshot
	found := false
	for _, n := range nodes {
		if n.err != nil {
			continue
		}
		h, ok := famHist(n.snap.Histograms, family)
		if !ok || h.Count == 0 {
			continue
		}
		if !found {
			merged, found = h, true
			continue
		}
		for i := range h.Counts {
			if i < len(merged.Counts) {
				merged.Counts[i] += h.Counts[i]
			}
		}
		merged.Sum += h.Sum
		merged.Count += h.Count
		if h.Max > merged.Max {
			merged.Max = h.Max
		}
	}
	if !found {
		return
	}
	fmt.Printf("  %-18s p50=%s p95=%s max=%s (n=%d)\n",
		label, dur(merged.Quantile(0.5)), dur(merged.Quantile(0.95)), dur(merged.Max), merged.Count)
}

func dur(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
