package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"whips/internal/msg"
	"whips/internal/query"
	"whips/internal/relation"
	"whips/internal/warehouse"
)

// queryResp mirrors serveQuery's JSON body.
type queryResp struct {
	View    string   `json:"view"`
	Epoch   int64    `json:"epoch"`
	Cached  bool     `json:"cached"`
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

func getQuery(t *testing.T, site *warehouseSite, target string) (int, queryResp, string) {
	t.Helper()
	req := httptest.NewRequest("GET", target, nil)
	rec := httptest.NewRecorder()
	site.serveQuery(rec, req)
	var body queryResp
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec.Code, body, rec.Body.String()
}

// TestServeQuery drives the /query debug handler directly against a
// warehouseSite, covering the not-ready, current-epoch, historical, and
// bad-parameter paths.
func TestServeQuery(t *testing.T) {
	site := &warehouseSite{}

	// Before any attempt stores a warehouse, /query must 503.
	if code, _, _ := getQuery(t, site, "/query?view=V1"); code != 503 {
		t.Fatalf("not-ready code = %d, want 503", code)
	}

	sch := relation.MustSchema("A:int", "B:int")
	wh := warehouse.New(map[msg.ViewID]*relation.Relation{
		"V1": relation.FromTuples(sch, relation.T(1, 2), relation.T(3, 4)),
	}, warehouse.WithStateLog())
	site.wh.Store(wh)
	site.qe.Store(query.New(wh))

	code, body, raw := getQuery(t, site, "/query?view=V1&where=A>=3")
	if code != 200 {
		t.Fatalf("code = %d: %s", code, raw)
	}
	if body.View != "V1" || body.Epoch != 0 || body.Cached {
		t.Fatalf("body = %+v", body)
	}
	if len(body.Rows) != 1 || body.Rows[0][0] != float64(3) {
		t.Fatalf("rows = %v", body.Rows)
	}

	// Second identical request is answered from the epoch cache.
	if _, body, _ := getQuery(t, site, "/query?view=V1&where=A>=3"); !body.Cached {
		t.Fatal("repeat query not served from cache")
	}

	// A commit advances the epoch; state=0 pins the historical snapshot.
	wh.Handle(msg.SubmitTxn{Txn: msg.WarehouseTxn{
		ID:     1,
		Rows:   []msg.UpdateID{1},
		Writes: []msg.ViewWrite{{View: "V1", Upto: 1, Delta: relation.InsertDelta(sch, relation.T(5, 6))}},
	}}, 1)
	if _, body, _ := getQuery(t, site, "/query?view=V1"); body.Epoch != 1 || len(body.Rows) != 3 {
		t.Fatalf("current body = %+v", body)
	}
	if _, body, _ := getQuery(t, site, "/query?view=V1&state=0"); body.Epoch != 0 || len(body.Rows) != 2 {
		t.Fatalf("historical body = %+v", body)
	}

	// Aggregation through the URL surface.
	code, body, raw = getQuery(t, site, "/query?view=V1&agg=count,sum(A)")
	if code != 200 || len(body.Rows) != 1 {
		t.Fatalf("agg code=%d body=%+v raw=%s", code, body, raw)
	}
	if body.Rows[0][0] != float64(3) || body.Rows[0][1] != float64(9) {
		t.Fatalf("agg rows = %v", body.Rows)
	}

	// Bad parameters are 400s, not panics.
	for _, target := range []string{
		"/query",                       // missing view
		"/query?view=ghost",            // unknown view
		"/query?view=V1&where=Z=1",     // unknown attribute
		"/query?view=V1&state=nope",    // unparsable state
		"/query?view=V1&state=99",      // out-of-range state
		"/query?view=V1&agg=median(A)", // unknown aggregate
	} {
		if code, _, raw := getQuery(t, site, target); code != 400 {
			t.Errorf("%s code = %d (%s), want 400", target, code, raw)
		}
	}
}
