// Command whipsnode runs the warehouse architecture split across two OS
// processes — the paper's "view managers may reside on different machines"
// made literal. The warehouse site hosts the sources, integrator, merge
// process and warehouse; the manager site hosts the view managers. The two
// talk the resumable gob wire protocol over TCP: connections reconnect
// with exponential backoff, and sequence-numbered per-channel streams let
// either process be killed and restarted mid-run without losing messages
// or violating FIFO-per-channel.
//
// Terminal 1:
//
//	whipsnode -role warehouse -addr 127.0.0.1:7654 -updates 50 -seed 1
//
// Terminal 2 (kill and restart freely; the run still finishes):
//
//	whipsnode -role managers -addr 127.0.0.1:7654
//
// With -repl-addr the warehouse site also serves the epoch replication
// feed, and any number of read replicas can stream from it:
//
//	whipsnode -role follower -follow 127.0.0.1:7700 -name f1 -debug :8801
//
// A follower subscribes at whatever epoch it holds, catches up via epoch
// deltas (or a full checkpoint when it is too far behind), then applies
// every commit live and serves /query locally from the same immutable
// snapshots the primary publishes. Its /healthz answers 503 "catching up"
// until the first replicated epoch lands, and /metrics exports the
// follower's staleness as repl_epoch_lag.
//
// A follower given -repl-addr is a relay: it re-exports every applied
// epoch as its own replication feed, so replicas form a tree and the root
// primary's egress stays O(1) regardless of fleet size:
//
//	whipsnode -role follower -follow 127.0.0.1:7700 -repl-addr 127.0.0.1:7701 -name relay
//	whipsnode -role follower -follow 127.0.0.1:7701 -name leaf
//
// With -failover-after the follower also runs the promotion coordinator:
// when its upstream connection has been dead past the threshold it polls
// the -peers list (name=debugaddr pairs) over /replstatus, and the
// candidate holding the newest durable epoch promotes itself — seeding a
// fresh warehouse from its replica's exact committed snapshot, bumping the
// feed term so every stale-term frame from the old primary is fenced off,
// and resuming the feed for its subtree — while everyone else retargets
// their stream at the winner. -data-dir on a follower adds a replication
// WAL so the epochs it acknowledged survive kill -9 and an election never
// crowns state that only lived in memory.
//
// With -data-dir the warehouse site is durable: every input (locally
// executed update or frame received from the manager site) is written to a
// write-ahead log before it takes effect, and -snapshot-every updates a
// checkpoint captures the full site state — cluster, integrator, merge,
// warehouse, and wire-session resume state. kill -9 the warehouse site and
// restart it with the same flags: it recovers from the newest snapshot,
// replays the WAL suffix deterministically, and finishes the run with the
// exact same views. -fsync picks the append sync policy, -supervise
// restarts the site in-process after a crash, and -crash-after injects one
// for testing.
//
// Either role takes -debug host:port to serve live observability over
// HTTP: /metrics (Prometheus text), /metrics.json, /debug/vars (expvar),
// /healthz (503 "recovering" during WAL replay), /debug/vut (the live View
// Update Table as JSON, warehouse role), and /debug/pprof. The warehouse
// role's -linger keeps the process (and its debug server) alive after the
// run completes, so scripts can scrape final metrics.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"whips/internal/audit"
	"whips/internal/consistency"
	"whips/internal/durable"
	"whips/internal/expr"
	"whips/internal/integrator"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/query"
	"whips/internal/relation"
	"whips/internal/repl"
	"whips/internal/runtime"
	"whips/internal/source"
	"whips/internal/viewmgr"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
)

func views() map[msg.ViewID]expr.Expr {
	return map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)),
		"V2": expr.MustProject(expr.Scan("S", sSchema), "C"),
	}
}

type warehouseOpts struct {
	addr       string
	replAddr   string
	updates    int
	seed       int64
	pace       time.Duration
	debug      string
	linger     time.Duration
	verbose    bool
	dataDir    string
	fsync      durable.FsyncPolicy
	snapEvery  int
	crashAfter int
	supervise  bool
	trace      bool
	collector  string
	// stallQueries black-holes every source QueryRequest: the injected
	// source stall for the self-maintenance smoke. Query-based managers
	// would hang; self-maintaining ones never ask.
	stallQueries bool
}

// traceOpts carries the tracing flags shared by every role.
type traceOpts struct {
	trace     bool
	collector string
}

// setupTrace wires causal tracing into a pipeline: a ring buffer served at
// /trace and, when collector is set, a background JSONL stream to a trace
// collector (cmd/mvcstat -collect). Returns the ring for the debug server
// (nil when tracing is off) and a cleanup func.
func setupTrace(pipe *obs.Pipeline, o traceOpts) (*obs.RingSink, func()) {
	if !o.trace && o.collector == "" {
		return nil, func() {}
	}
	ring := obs.NewRingSink(8192)
	sinks := []func(obs.Event){ring.Sink()}
	cleanup := func() {}
	if o.collector != "" {
		rs := obs.NewRemoteSink(o.collector, 1024)
		sinks = append(sinks, rs.Sink())
		cleanup = func() { rs.Close() }
	}
	pipe.Tracer = obs.NewTracer(sinks...)
	return ring, cleanup
}

func main() {
	role := flag.String("role", "", "warehouse, managers, or follower")
	addr := flag.String("addr", "127.0.0.1:7654", "listen (warehouse) / dial (managers) address")
	replAddr := flag.String("repl-addr", "", "serve the epoch replication feed to followers on this host:port (warehouse role)")
	follow := flag.String("follow", "", "primary replication address to stream epochs from (follower role)")
	name := flag.String("name", "follower", "follower name, used in channel and metric labels (follower role)")
	updates := flag.Int("updates", 50, "updates to run (warehouse role)")
	seed := flag.Int64("seed", 1, "seed for the workload and all connection jitter")
	pace := flag.Duration("pace", 0, "delay between injected updates (warehouse role)")
	debug := flag.String("debug", "", "serve /metrics, /healthz, /debug/vut and pprof on this host:port")
	linger := flag.Duration("linger", 0, "keep running (and serving -debug) this long after the run completes (warehouse role)")
	verbose := flag.Bool("v", false, "log connection lifecycle events")
	dataDir := flag.String("data-dir", "", "enable durability: WAL + snapshots in this directory (warehouse role)")
	fsyncStr := flag.String("fsync", "always", "WAL sync policy: always, batch, or never (with -data-dir)")
	snapEvery := flag.Int("snapshot-every", 10, "checkpoint after this many updates (with -data-dir; 0 = never)")
	crashAfter := flag.Int("crash-after", 0, "crash after executing this many updates (testing; 0 = never)")
	supervise := flag.Bool("supervise", false, "restart the warehouse site in-process after a crash (with -data-dir)")
	trace := flag.Bool("trace", false, "enable causal tracing: retain events in a ring served at /trace")
	collector := flag.String("trace-collector", "", "also stream trace events to this collector address (implies -trace)")
	staleAfter := flag.Duration("stale-after", 0, "follower /healthz degrades when no frame applied for this long (0 = disabled)")
	auditPrimary := flag.String("audit-primary", "", "run the MVC audit against the primary's debug address (follower role)")
	auditInterval := flag.Duration("audit-interval", 2*time.Second, "audit tick interval (with -audit-primary)")
	auditHistory := flag.Int64("audit-history", 16, "audit samples one of this many epochs behind head per tick (with -audit-primary)")
	peers := flag.String("peers", "", "comma-separated name=debugaddr peer list for failover elections (follower role)")
	failoverAfter := flag.Duration("failover-after", 0, "run an election when the upstream feed has been dead this long (follower role; 0 = no failover)")
	selfMaintain := flag.Bool("self-maintain", false, "run the view managers on auxiliary-relation maintenance — deltas computed locally, zero source queries (managers role)")
	stallQueries := flag.Bool("stall-queries", false, "black-hole every source query: injected source stall for the self-maintenance smoke (warehouse role)")
	flag.Parse()

	fsync, err := durable.ParseFsyncPolicy(*fsyncStr)
	if err != nil {
		log.Fatal(err)
	}
	tr := traceOpts{trace: *trace, collector: *collector}
	switch *role {
	case "warehouse":
		runWarehouseSite(warehouseOpts{
			addr: *addr, replAddr: *replAddr, updates: *updates, seed: *seed, pace: *pace,
			debug: *debug, linger: *linger, verbose: *verbose,
			dataDir: *dataDir, fsync: fsync, snapEvery: *snapEvery,
			crashAfter: *crashAfter, supervise: *supervise,
			trace: tr.trace, collector: tr.collector,
			stallQueries: *stallQueries,
		})
	case "managers":
		runManagerSite(*addr, *seed, *debug, *verbose, tr, *selfMaintain)
	case "follower":
		if *follow == "" {
			log.Fatal("follower role requires -follow <primary repl address>")
		}
		runFollowerSite(followerOpts{
			name: *name, follow: *follow, debug: *debug, seed: *seed, verbose: *verbose,
			tr: tr, staleAfter: *staleAfter,
			auditPrimary: *auditPrimary, auditInterval: *auditInterval, auditHistory: *auditHistory,
			replAddr: *replAddr, peers: *peers, failoverAfter: *failoverAfter,
			dataDir: *dataDir, fsync: fsync,
		})
	default:
		log.Fatalf("unknown -role %q (use warehouse, managers, or follower)", *role)
	}
}

func sessionLogf(verbose bool) func(string, ...any) {
	if !verbose {
		return nil
	}
	return log.Printf
}

// warehouseSite is the per-process state shared across in-process restart
// attempts: the listener, pipeline, and debug server live here; each
// attempt rebuilds everything else from the data directory.
type warehouseSite struct {
	opts warehouseOpts
	pipe *obs.Pipeline
	sess atomic.Pointer[wire.Session]
	host atomic.Pointer[durable.Host]
	mp   atomic.Pointer[merge.Merge]
	wh   atomic.Pointer[warehouse.Warehouse]
	qe   atomic.Pointer[query.Engine]
	prim atomic.Pointer[repl.Primary]
}

// serveQuery handles GET /query?view=...&where=...&cols=...&group=...&agg=...
// (&state=N for historical epochs), evaluating against the current
// attempt's warehouse snapshots via the epoch-cached query engine.
func (site *warehouseSite) serveQuery(w http.ResponseWriter, r *http.Request) {
	qe, wh := site.qe.Load(), site.wh.Load()
	if qe == nil || wh == nil {
		http.Error(w, "warehouse not ready", http.StatusServiceUnavailable)
		return
	}
	p := r.URL.Query()
	snap := wh.Snapshot()
	historical := p.Get("state") != ""
	if historical {
		n, err := strconv.Atoi(p.Get("state"))
		if err != nil {
			http.Error(w, "bad state parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		if snap, err = wh.SnapshotAt(n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	spec, err := query.ParseSpec(p.Get("view"), p.Get("where"), p.Get("cols"), p.Get("group"), p.Get("agg"), snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var res query.Result
	if historical {
		res, err = qe.RunAt(snap, spec)
	} else {
		res, err = qe.Run(spec)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cols, rows := query.Rows(res.Rel)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"view":    res.View,
		"epoch":   res.Epoch,
		"cached":  res.Cached,
		"columns": cols,
		"rows":    rows,
	})
}

func runWarehouseSite(o warehouseOpts) {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("warehouse site listening on %s (seed %d)\n", o.addr, o.seed)

	site := &warehouseSite{opts: o, pipe: obs.NewPipeline()}
	ring, traceCleanup := setupTrace(site.pipe, traceOpts{trace: o.trace, collector: o.collector})
	defer traceCleanup()
	dbg, err := obs.ServeDebug(o.debug, obs.DebugServer{
		Reg:  site.pipe.Reg(),
		Role: "warehouse",
		VUT: func() any {
			if mp := site.mp.Load(); mp != nil {
				return []merge.VUTSnapshot{mp.SnapshotVUT()}
			}
			return []merge.VUTSnapshot{}
		},
		Health: func() (string, bool) {
			if h := site.host.Load(); h != nil && h.Recovering() {
				return "recovering", false
			}
			return "serving", true
		},
		Query: site.serveQuery,
		Trace: ring,
		Fingerprint: audit.FingerprintHandler(
			func() *warehouse.Snapshot {
				if wh := site.wh.Load(); wh != nil {
					return wh.Snapshot()
				}
				return nil
			},
			func(epoch int64) (*warehouse.Snapshot, error) {
				wh := site.wh.Load()
				if wh == nil {
					return nil, errors.New("warehouse not ready")
				}
				return wh.SnapshotAt(int(epoch))
			}),
		ReplStatus: func(w http.ResponseWriter, r *http.Request) {
			st := repl.PeerStatus{Name: "warehouse", Role: "primary", Addr: o.replAddr, Debug: o.debug}
			if p := site.prim.Load(); p != nil {
				st.Term, st.Leader = p.Term(), p.Leader()
			}
			if wh := site.wh.Load(); wh != nil {
				if s := wh.Snapshot(); s != nil {
					st.Epoch = s.Epoch
				}
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(st)
		},
	})
	must(err)
	if dbg != nil {
		fmt.Printf("debug server on http://%s (metrics, healthz, query, debug/vut, debug/pprof)\n", o.debug)
		defer dbg.Close()
	}

	// Replication accept loop: each follower connection is handed to the
	// current attempt's primary; during an in-process restart the follower's
	// backoff redial finds the next attempt's primary and re-subscribes.
	if o.replAddr != "" {
		rln, rerr := net.Listen("tcp", o.replAddr)
		must(rerr)
		defer rln.Close()
		fmt.Printf("replication feed on %s\n", o.replAddr)
		go func() {
			for {
				conn, err := rln.Accept()
				if err != nil {
					return
				}
				p := site.prim.Load()
				if p == nil {
					conn.Close()
					continue
				}
				if o.verbose {
					log.Printf("follower connected from %s", conn.RemoteAddr())
				}
				p.Handle(conn)
			}
		}()
	}

	// Accept loop: each (re)connecting manager site attaches to the current
	// attempt's session; connections racing an in-process restart are
	// closed and the peer's backoff redial finds the new session.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s := site.sess.Load()
			if s == nil {
				conn.Close()
				continue
			}
			if o.verbose {
				log.Printf("manager site connected from %s", conn.RemoteAddr())
			}
			s.Attach(conn)
		}
	}()

	for {
		err := site.attempt()
		if err == nil {
			break
		}
		if !o.supervise || o.dataDir == "" {
			log.Fatalf("warehouse site: %v", err)
		}
		log.Printf("warehouse site crashed: %v; recovering from %s", err, o.dataDir)
	}
	if o.linger > 0 {
		fmt.Printf("lingering %v for metric scrapes\n", o.linger)
		time.Sleep(o.linger)
	}
	if p := site.prim.Swap(nil); p != nil {
		p.Close()
	}
}

// attempt builds and runs the warehouse site once. A durable attempt
// recovers from the data directory first; a crash (injected or panic)
// returns an error so the supervisor can run another attempt.
func (site *warehouseSite) attempt() (err error) {
	o := site.opts
	pipe := site.pipe
	defer func() {
		site.sess.Store(nil)
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()

	cluster := source.NewCluster(func() int64 { return time.Now().UnixNano() })
	cluster.SetObs(pipe)
	cluster.AddSource("src1")
	must(cluster.LoadRelation("src1", "R", relation.FromTuples(rSchema, relation.T(1, 2))))
	must(cluster.CreateRelation("src1", "S", sSchema))

	vs := views()
	integ := integrator.New([]integrator.ViewInfo{
		{ID: "V1", Expr: vs["V1"]},
		{ID: "V2", Expr: vs["V2"]},
	}, integrator.WithObs(pipe))
	initial := map[msg.ViewID]*relation.Relation{}
	for id, e := range vs {
		v, err := expr.Eval(e, cluster.DatabaseAt(0))
		must(err)
		initial[id] = v
	}
	whOpts := []warehouse.Option{warehouse.WithStateLog(), warehouse.WithObs(pipe)}
	if o.replAddr != "" {
		// The feed closure indirects through the site pointer: recovery
		// replay commits before this attempt's primary exists, and those
		// epochs are (correctly) served to followers as a checkpoint.
		whOpts = append(whOpts, warehouse.WithReplFeed(0, func(e msg.ReplEpoch) {
			if p := site.prim.Load(); p != nil {
				p.OnCommit(e)
			}
		}))
	}
	wh := warehouse.New(initial, whOpts...)
	site.wh.Store(wh)
	if o.replAddr != "" {
		// The primary outlives the attempt on purpose: a completed run keeps
		// serving followers through -linger. Only a superseding attempt (the
		// supervised-crash path) tears the previous one down, severing its
		// follower streams exactly like a process restart would; the final
		// close happens after linger in runWarehouseSite.
		prim := repl.NewPrimary(repl.PrimaryConfig{Source: wh, Logf: sessionLogf(o.verbose), Obs: pipe})
		if old := site.prim.Swap(prim); old != nil {
			old.Close()
		}
	}
	site.qe.Store(query.New(wh,
		query.WithClock(func() int64 { return time.Now().UnixNano() }),
		query.WithObs(pipe)))
	mp := merge.New(0, merge.SPA, merge.NewSequential(msg.NodeMerge(0), 0), merge.WithObs(pipe))
	site.mp.Store(mp)

	// The store opens before the session so that teardown (LIFO defers)
	// closes the session first: a late frame racing the unwind then hits a
	// live store or — once the store is closed — a benign ErrClosed drop,
	// never a write on a closed file.
	var store *durable.Store
	if o.dataDir != "" {
		st, serr := durable.Open(durable.StoreConfig{Dir: o.dataDir, Fsync: o.fsync, Logf: log.Printf, Obs: pipe})
		must(serr)
		store = st
		defer store.Close()
	}

	var rtnet *runtime.Network
	var host *durable.Host
	scfg := wire.SessionConfig{Name: "warehouse-site", Logf: sessionLogf(o.verbose), Obs: pipe}
	var sess *wire.Session
	if o.dataDir != "" {
		// Durable receive path: WAL-append the frame, then advance the
		// session watermark and inject — all inside the host's ingestion
		// lock, so checkpoints and durable acks are exact.
		scfg.DeliverSeq = func(from, to string, seq uint64, m any) {
			ierr := host.IngestFrame(from, to, seq, m, func() {
				sess.SetLastRecv(from, to, seq)
				rtnet.Inject(to, m)
			})
			switch {
			case ierr == nil:
			case errors.Is(ierr, durable.ErrClosed):
				// This attempt is tearing down; the frame was not logged
				// and the watermark did not advance, so the peer will
				// resend it to the next attempt's session.
				if o.verbose {
					log.Printf("durable: dropped frame %s→%s %d during teardown", from, to, seq)
				}
			default:
				log.Fatalf("durable: frame %s→%s %d: %v", from, to, seq, ierr)
			}
		}
	} else {
		scfg.Deliver = func(from, to string, m any) { rtnet.Inject(to, m) }
	}
	sess = wire.NewSession(scfg)
	defer sess.Close()
	var srcNode msg.Node = source.NewNode(cluster)
	if o.stallQueries {
		srcNode = stalledSource{inner: srcNode}
	}
	nodes := []msg.Node{srcNode, integ, mp, wh}
	rtnet = runtime.New(nodes,
		runtime.WithRemoteFrom(func(from, to string, m any) {
			if err := sess.Send(from, to, m); err != nil {
				log.Printf("send: %v", err)
			}
		}),
		runtime.WithObs(pipe),
	)

	if o.dataDir != "" {
		nodeMap := map[string]msg.Node{}
		for _, n := range nodes {
			nodeMap[n.ID()] = n
		}
		host = durable.NewHost(durable.HostConfig{
			Store: store,
			Nodes: nodeMap,
			Parts: map[string]durable.Durable{
				msg.NodeCluster:    cluster,
				msg.NodeIntegrator: integ,
				msg.NodeWarehouse:  wh,
				msg.NodeMerge(0):   mp,
				"session":          sess,
			},
			Remote: func(from, to string, m any) {
				if err := sess.Send(from, to, m); err != nil {
					log.Printf("replay send: %v", err)
				}
			},
			OnExec:          func(u msg.Update) error { return cluster.Replay(u) },
			OnFrame:         sess.SetLastRecv,
			AfterCheckpoint: sess.AckDurable,
			Logf:            log.Printf,
			Obs:             pipe,
		})
		site.host.Store(host)
		must(host.Recover())
		if seq := cluster.Seq(); seq > 0 {
			fmt.Printf("recovered to seq %d from %s\n", seq, o.dataDir)
		}
	}

	rtnet.Start()
	defer rtnet.Stop()
	site.sess.Store(sess)

	rng := rand.New(rand.NewSource(o.seed))
	start := 0
	if o.dataDir != "" {
		// Resume the workload where the recovered schedule ends; the rng
		// draws two values per update, so fast-forward it in lockstep.
		start = int(cluster.Seq())
		for i := 0; i < start; i++ {
			rng.Intn(6)
			rng.Intn(6)
		}
	}
	for i := start; i < o.updates; i++ {
		exec := func() (msg.Update, error) {
			return cluster.Execute("src1", msg.Write{
				Relation: "S",
				Delta:    relation.InsertDelta(sSchema, relation.T(rng.Intn(6), rng.Intn(6))),
			})
		}
		if host != nil {
			_, err := host.IngestExec(msg.NodeIntegrator, exec, func(u msg.Update) {
				rtnet.Inject(msg.NodeIntegrator, u)
			})
			must(err)
			if o.snapEvery > 0 && (i+1)%o.snapEvery == 0 {
				if cerr := host.Checkpoint(func() bool { return rtnet.Drain(10 * time.Second) }); cerr != nil {
					log.Printf("checkpoint at %d: %v", i+1, cerr)
				} else if o.verbose {
					log.Printf("checkpoint at %d", i+1)
				}
			}
		} else {
			u, err := exec()
			must(err)
			rtnet.Inject(msg.NodeIntegrator, u)
		}
		if o.crashAfter > 0 && i+1 == o.crashAfter {
			if o.supervise {
				panic(fmt.Sprintf("injected crash after %d updates", i+1))
			}
			log.Printf("crash-after %d: hard exit", o.crashAfter)
			os.Exit(3)
		}
		if o.pace > 0 {
			time.Sleep(o.pace)
		}
	}
	if !runtime.WaitUntil(60*time.Second, func() bool {
		up := wh.Upto()
		return up["V1"] >= msg.UpdateID(o.updates) && up["V2"] >= msg.UpdateID(o.updates)
	}) {
		log.Fatalf("remote managers did not drain: %v (seed %d)", wh.Upto(), o.seed)
	}
	rep, cerr := consistency.Check(cluster, vs, wh.Log())
	must(cerr)
	all := wh.ReadAll()
	fmt.Printf("%d updates maintained by REMOTE view managers\n", o.updates)
	fmt.Printf("V1: %d rows  V2: %d rows\n", all["V1"].Cardinality(), all["V2"].Cardinality())
	fmt.Printf("MVC: convergent=%v strong=%v complete=%v\n", rep.Convergent, rep.Strong, rep.Complete)
	if !rep.Complete {
		log.Fatalf("expected complete MVC (seed %d)", o.seed)
	}
	fmt.Println("OK")
	return nil
}

// stalledSource wraps the source-cluster node and black-holes every
// QueryRequest (-stall-queries): the request is swallowed, no response ever
// arrives, so any manager depending on source round-trips hangs — while a
// self-maintaining fleet finishes because it never asks.
type stalledSource struct{ inner msg.Node }

// ID implements msg.Node.
func (s stalledSource) ID() string { return s.inner.ID() }

// Handle implements msg.Node.
func (s stalledSource) Handle(m any, now int64) []msg.Outbound {
	if _, ok := m.(msg.QueryRequest); ok {
		return nil
	}
	return s.inner.Handle(m, now)
}

func runManagerSite(addr string, seed int64, debug string, verbose bool, tr traceOpts, selfMaintain bool) {
	fmt.Printf("manager site hosting view managers V1, V2; dialing %s\n", addr)

	pipe := obs.NewPipeline()
	ring, traceCleanup := setupTrace(pipe, tr)
	defer traceCleanup()
	dbg, err := obs.ServeDebug(debug, obs.DebugServer{Reg: pipe.Reg(), Role: "managers", Trace: ring})
	must(err)
	if dbg != nil {
		fmt.Printf("debug server on http://%s (metrics, healthz, debug/pprof)\n", debug)
		defer dbg.Close()
	}

	vs := views()
	// Replicas seed from the warehouse site's initial contents, which this
	// demo fixes statically (R = {[1 2]}, S = ∅). A restarted manager site
	// rebuilds from the same state and is replayed the full update stream
	// by the warehouse site's session, regenerating identical action lists
	// (deduplicated on the far side by sequence number).
	init := expr.MapDB{
		"R": relation.FromTuples(rSchema, relation.T(1, 2)),
		"S": relation.New(sSchema),
	}
	newVM := func(id msg.ViewID) (viewmgr.Manager, error) {
		mc := viewmgr.Config{View: id, Expr: vs[id], Merge: msg.NodeMerge(0), Obs: pipe}
		if selfMaintain {
			return viewmgr.NewSelfMaintaining(mc, init)
		}
		return viewmgr.NewComplete(mc, init)
	}
	if selfMaintain {
		fmt.Println("self-maintaining managers: auxiliary relations, zero source queries")
	}
	vm1, err := newVM("V1")
	must(err)
	vm2, err := newVM("V2")
	must(err)

	var rtnet *runtime.Network
	sess := wire.NewSession(wire.SessionConfig{
		Name:    "manager-site",
		Deliver: func(from, to string, m any) { rtnet.Inject(to, m) },
		Dial: func() (io.ReadWriteCloser, error) {
			return net.Dial("tcp", addr)
		},
		Backoff: wire.Backoff{Base: 20 * time.Millisecond, Max: time.Second, Seed: seed},
		Logf:    sessionLogf(verbose),
		Obs:     pipe,
	})
	defer sess.Close()
	rtnet = runtime.New(
		[]msg.Node{vm1, vm2},
		runtime.WithRemoteFrom(func(from, to string, m any) {
			if err := sess.Send(from, to, m); err != nil {
				log.Printf("send: %v", err)
			}
		}),
		runtime.WithObs(pipe),
	)
	rtnet.Start()
	defer rtnet.Stop()
	fmt.Println("maintaining views; ctrl-c to stop")
	select {}
}

// followerSite serves local queries from a replicated epoch stream. After
// a promotion its serving source atomically becomes the freshly seeded
// warehouse instead of the replica, so /query continues from the exact
// committed epoch across the handover.
type followerSite struct {
	name      string
	debug     string
	relayAddr string
	relay     *repl.Primary // non-nil when -repl-addr re-exports the feed

	rep *warehouse.Replica
	qe  atomic.Pointer[query.Engine]
	wh  atomic.Pointer[warehouse.Warehouse] // non-nil once promoted
	fol atomic.Pointer[repl.Follower]

	upstream      atomic.Value // string: current upstream feed address
	upstreamDebug atomic.Value // string: current upstream debug address
}

// status reports this node's replication position — what /replstatus
// serves and what elections compare.
func (site *followerSite) status() repl.PeerStatus {
	st := repl.PeerStatus{
		Name:     site.name,
		Role:     "follower",
		Addr:     site.relayAddr,
		Debug:    site.debug,
		Upstream: site.upstream.Load().(string),
	}
	if site.relay != nil {
		st.Role = "relay"
	}
	if wh := site.wh.Load(); wh != nil {
		st.Role = "primary"
		st.Upstream = ""
		if s := wh.Snapshot(); s != nil {
			st.Epoch = s.Epoch
		}
		if site.relay != nil {
			st.Term, st.Leader = site.relay.Term(), site.relay.Leader()
		}
		return st
	}
	st.Term, st.Leader = site.rep.Term(), site.rep.Leader()
	st.Epoch = site.rep.Epoch()
	if f := site.fol.Load(); f != nil {
		st.Lag = f.Lag()
		st.ApplyAgeMs = -1
		if age := f.LastApplyAge(); age >= 0 {
			st.ApplyAgeMs = age.Milliseconds()
		}
	}
	return st
}

func (site *followerSite) ready() bool {
	return site.wh.Load() != nil || site.rep.Ready()
}

// snapshot is the currently served head state: the promoted warehouse's
// when this node is primary, the replica's otherwise.
func (site *followerSite) snapshot() *warehouse.Snapshot {
	if wh := site.wh.Load(); wh != nil {
		return wh.Snapshot()
	}
	return site.rep.Snapshot()
}

// snapshotAt serves historical epochs across the promotion boundary:
// pre-promotion epochs from the replica's retained ring, post-promotion
// epochs from the promoted warehouse's state log.
func (site *followerSite) snapshotAt(epoch int64) (*warehouse.Snapshot, error) {
	if cur := site.snapshot(); cur != nil && cur.Epoch == epoch {
		return cur, nil
	}
	if snap, err := site.rep.SnapshotAt(epoch); err == nil {
		return snap, nil
	}
	if wh := site.wh.Load(); wh != nil {
		return wh.SnapshotAt(int(epoch))
	}
	return site.rep.SnapshotAt(epoch)
}

// serveQuery mirrors the warehouse site's /query handler over the replica:
// current-epoch queries run through the epoch-cached engine, and &state=N
// pins a historical epoch from the replica's retained ring. Until the
// first replicated epoch publishes there is nothing to serve — 503, same
// signal as /healthz.
func (site *followerSite) serveQuery(w http.ResponseWriter, r *http.Request) {
	if !site.ready() {
		http.Error(w, "catching up", http.StatusServiceUnavailable)
		return
	}
	p := r.URL.Query()
	snap := site.snapshot()
	historical := p.Get("state") != ""
	if historical {
		n, err := strconv.ParseInt(p.Get("state"), 10, 64)
		if err != nil {
			http.Error(w, "bad state parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		if snap, err = site.snapshotAt(n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	spec, err := query.ParseSpec(p.Get("view"), p.Get("where"), p.Get("cols"), p.Get("group"), p.Get("agg"), snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	qe := site.qe.Load()
	var res query.Result
	if historical {
		res, err = qe.RunAt(snap, spec)
	} else {
		res, err = qe.Run(spec)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cols, rows := query.Rows(res.Rel)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"view":    res.View,
		"epoch":   res.Epoch,
		"cached":  res.Cached,
		"columns": cols,
		"rows":    rows,
	})
}

// parsePeers parses the -peers flag: comma-separated name=debugaddr pairs.
func parsePeers(s string) (map[string]string, error) {
	out := map[string]string{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=debugaddr)", part)
		}
		out[name] = addr
	}
	return out, nil
}

// fetchReplStatus polls a peer's /replstatus.
func fetchReplStatus(client *http.Client, base string) (repl.PeerStatus, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := client.Get(base + "/replstatus")
	if err != nil {
		return repl.PeerStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return repl.PeerStatus{}, fmt.Errorf("replstatus: %s", resp.Status)
	}
	var st repl.PeerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return repl.PeerStatus{}, err
	}
	return st, nil
}

// followerOpts configures runFollowerSite.
type followerOpts struct {
	name, follow, debug string
	seed                int64
	verbose             bool
	tr                  traceOpts
	staleAfter          time.Duration
	auditPrimary        string
	auditInterval       time.Duration
	auditHistory        int64
	replAddr            string        // relay: re-export the feed here
	peers               string        // name=debugaddr election peers
	failoverAfter       time.Duration // 0 = never promote
	dataDir             string        // replication WAL directory
	fsync               durable.FsyncPolicy
}

func runFollowerSite(o followerOpts) {
	fmt.Printf("follower %q streaming epochs from %s\n", o.name, o.follow)
	peerAddrs, err := parsePeers(o.peers)
	must(err)

	pipe := obs.NewPipeline()
	ring, traceCleanup := setupTrace(pipe, o.tr)
	defer traceCleanup()

	repOpts := []warehouse.ReplicaOption{warehouse.WithReplicaObs(pipe)}
	if o.replAddr != "" {
		// A relay retains applied deltas so downstream subscribers catch up
		// from the ring instead of forcing a full checkpoint each time.
		repOpts = append(repOpts, warehouse.WithReplicaFeed(1024))
	}
	rep := warehouse.NewReplica(repOpts...)
	site := &followerSite{name: o.name, debug: o.debug, relayAddr: o.replAddr, rep: rep}
	site.qe.Store(query.New(rep,
		query.WithClock(func() int64 { return time.Now().UnixNano() }),
		query.WithObs(pipe)))
	site.upstream.Store(o.follow)
	site.upstreamDebug.Store(o.auditPrimary)

	// Relay mode: serve our own replication feed, sourced from the replica's
	// retained ring, re-stamped with whatever term we last applied under.
	if o.replAddr != "" {
		site.relay = repl.NewPrimary(repl.PrimaryConfig{
			Source: rep,
			Relay:  true,
			Logf:   sessionLogf(o.verbose),
			Obs:    pipe,
		})
		rln, rerr := net.Listen("tcp", o.replAddr)
		must(rerr)
		defer rln.Close()
		fmt.Printf("relaying the epoch feed on %s\n", o.replAddr)
		go func() {
			for {
				conn, err := rln.Accept()
				if err != nil {
					return
				}
				if o.verbose {
					log.Printf("downstream follower connected from %s", conn.RemoteAddr())
				}
				site.relay.Handle(conn)
			}
		}()
	}

	// Replication WAL: recover whatever this node durably acknowledged
	// before the crash, so elections compare real on-disk positions.
	var dlog *repl.DurableLog
	if o.dataDir != "" {
		dlog, err = repl.OpenDurableLog(repl.DurableLogConfig{
			Dir:   o.dataDir,
			Fsync: o.fsync,
			State: func() (msg.ReplSnapshot, bool) {
				s := rep.Snapshot()
				if s == nil {
					return msg.ReplSnapshot{}, false
				}
				m := s.ReplMsg(s.Epoch)
				m.Term, m.Leader = rep.Term(), rep.Leader()
				return m, true
			},
			Logf: log.Printf,
			Obs:  pipe,
		})
		must(err)
		defer dlog.Close()
		epoch, rerr := dlog.Recover(rep)
		must(rerr)
		if epoch >= 0 {
			fmt.Printf("recovered replica to epoch %d from %s\n", epoch, o.dataDir)
		}
	}

	dbg, err := obs.ServeDebug(o.debug, obs.DebugServer{
		Reg:  pipe.Reg(),
		Role: "follower",
		Health: func() (string, bool) {
			if site.wh.Load() != nil {
				return "serving (promoted primary)", true
			}
			f := site.fol.Load()
			if f == nil {
				return "catching up", false
			}
			return f.Healthy(o.staleAfter)
		},
		Query:       site.serveQuery,
		Trace:       ring,
		Fingerprint: audit.FingerprintHandler(site.snapshot, site.snapshotAt),
		ReplStatus: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(site.status())
		},
	})
	must(err)
	if dbg != nil {
		fmt.Printf("debug server on http://%s (metrics, healthz, query, trace, fingerprint, replstatus, debug/pprof)\n", o.debug)
		defer dbg.Close()
	}

	fol := repl.NewFollower(repl.FollowerConfig{
		Name: o.name,
		Dial: func() (io.ReadWriteCloser, error) {
			return net.Dial("tcp", o.follow)
		},
		Replica: rep,
		Relay:   site.relay,
		Log:     dlog,
		Backoff: wire.Backoff{Base: 20 * time.Millisecond, Max: time.Second, Seed: o.seed},
		Logf:    sessionLogf(o.verbose),
		Obs:     pipe,
	})
	site.fol.Store(fol)
	defer fol.Close()

	if o.failoverAfter > 0 {
		client := &http.Client{Timeout: time.Second}
		probes := map[string]func() (repl.PeerStatus, error){}
		for pname, paddr := range peerAddrs {
			if pname == o.name {
				continue
			}
			addr := paddr
			probes[pname] = func() (repl.PeerStatus, error) { return fetchReplStatus(client, addr) }
		}
		// Promotion seeds a fresh warehouse from the replica's exact
		// committed snapshot and swaps the relay's source to it; the relay
		// re-announces the bumped term to every subscriber, fencing off any
		// frame the old primary might still emit. Only relays promote —
		// a leaf exports no feed for a subtree to follow.
		var promote func(term int64) error
		if site.relay != nil {
			promote = func(term int64) error {
				snap := rep.Snapshot()
				if snap == nil {
					return errors.New("nothing replicated yet; cannot promote")
				}
				wh := warehouse.NewFromSnapshot(snap,
					warehouse.WithStateLog(), warehouse.WithStateLogCap(256),
					warehouse.WithObs(pipe),
					warehouse.WithReplFeed(0, func(e msg.ReplEpoch) { site.relay.OnCommit(e) }))
				site.relay.Promote(wh, term, o.name)
				site.wh.Store(wh)
				site.qe.Store(query.New(wh,
					query.WithClock(func() int64 { return time.Now().UnixNano() }),
					query.WithObs(pipe)))
				site.upstream.Store("")
				site.upstreamDebug.Store(o.debug) // audit now runs against ourselves
				fol.Close()                       // stop redialing the dead upstream
				log.Printf("repl: %s: promoted to primary at epoch %d term %d", o.name, snap.Epoch, term)
				return nil
			}
		}
		interval := o.failoverAfter / 5
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		if interval > 250*time.Millisecond {
			interval = 250 * time.Millisecond
		}
		coord := repl.NewCoordinator(repl.CoordinatorConfig{
			Self:  site.status,
			Peers: probes,
			Suspect: func() time.Duration {
				if site.wh.Load() != nil {
					return 0 // we are the primary; nothing to suspect
				}
				return fol.DisconnectedFor()
			},
			SuspectAfter: o.failoverAfter,
			Interval:     interval,
			Promote:      promote,
			Follow: func(p repl.PeerStatus) error {
				if p.Addr == "" {
					return fmt.Errorf("winner %q exports no feed", p.Name)
				}
				addr := p.Addr
				fol.Retarget(func() (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) })
				site.upstream.Store(addr)
				if p.Debug != "" {
					site.upstreamDebug.Store(p.Debug)
				}
				log.Printf("repl: %s: retargeted stream at %q (%s)", o.name, p.Name, addr)
				return nil
			},
			Logf: log.Printf,
			Obs:  pipe,
		})
		defer coord.Close()
		fmt.Printf("failover coordinator armed (suspect after %v, %d peers)\n", o.failoverAfter, len(probes))
	}

	if o.auditPrimary != "" {
		var events func() []obs.Event
		if ring != nil {
			events = func() []obs.Event { evs, _ := ring.Since(0); return evs }
		}
		aud := audit.New(audit.Config{
			Interval: o.auditInterval,
			Head: func() int64 {
				if s := site.snapshot(); s != nil {
					return s.Epoch
				}
				return -1
			},
			Local: func(epoch int64) (audit.FP, bool) {
				snap, err := site.snapshotAt(epoch)
				if err != nil || snap == nil {
					return audit.FP{}, false
				}
				return audit.SnapshotFP(snap), true
			},
			Remote: audit.HTTPRemoteResolver(func() string {
				v, _ := site.upstreamDebug.Load().(string)
				return v
			}),
			History: o.auditHistory,
			Seed:    o.seed,
			Events:  events,
			Obs:     pipe,
			Logf:    log.Printf,
		})
		defer aud.Close()
		fmt.Printf("auditing served epochs against %s every %v\n", o.auditPrimary, o.auditInterval)
	}
	fmt.Println("serving replicated epochs; ctrl-c to stop")
	select {}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
