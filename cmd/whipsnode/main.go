// Command whipsnode runs the warehouse architecture split across two OS
// processes — the paper's "view managers may reside on different machines"
// made literal. The warehouse site hosts the sources, integrator, merge
// process and warehouse; the manager site hosts the view managers. The two
// talk the resumable gob wire protocol over TCP: connections reconnect
// with exponential backoff, and sequence-numbered per-channel streams let
// either process be killed and restarted mid-run without losing messages
// or violating FIFO-per-channel.
//
// Terminal 1:
//
//	whipsnode -role warehouse -addr 127.0.0.1:7654 -updates 50 -seed 1
//
// Terminal 2 (kill and restart freely; the run still finishes):
//
//	whipsnode -role managers -addr 127.0.0.1:7654
//
// Either role takes -debug host:port to serve live observability over
// HTTP: /metrics (Prometheus text), /metrics.json, /debug/vars (expvar),
// /healthz, /debug/vut (the live View Update Table as JSON, warehouse
// role), and /debug/pprof. The warehouse role's -linger keeps the process
// (and its debug server) alive after the run completes, so scripts can
// scrape final metrics.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"time"

	"whips/internal/consistency"
	"whips/internal/expr"
	"whips/internal/integrator"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/relation"
	"whips/internal/runtime"
	"whips/internal/source"
	"whips/internal/viewmgr"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
)

func views() map[msg.ViewID]expr.Expr {
	return map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)),
		"V2": expr.MustProject(expr.Scan("S", sSchema), "C"),
	}
}

func main() {
	role := flag.String("role", "", "warehouse or managers")
	addr := flag.String("addr", "127.0.0.1:7654", "listen (warehouse) / dial (managers) address")
	updates := flag.Int("updates", 50, "updates to run (warehouse role)")
	seed := flag.Int64("seed", 1, "seed for the workload and all connection jitter")
	pace := flag.Duration("pace", 0, "delay between injected updates (warehouse role)")
	debug := flag.String("debug", "", "serve /metrics, /healthz, /debug/vut and pprof on this host:port")
	linger := flag.Duration("linger", 0, "keep running (and serving -debug) this long after the run completes (warehouse role)")
	verbose := flag.Bool("v", false, "log connection lifecycle events")
	flag.Parse()

	switch *role {
	case "warehouse":
		runWarehouseSite(*addr, *updates, *seed, *pace, *debug, *linger, *verbose)
	case "managers":
		runManagerSite(*addr, *seed, *debug, *verbose)
	default:
		log.Fatalf("unknown -role %q (use warehouse or managers)", *role)
	}
}

func sessionLogf(verbose bool) func(string, ...any) {
	if !verbose {
		return nil
	}
	return log.Printf
}

func runWarehouseSite(addr string, updates int, seed int64, pace time.Duration, debug string, linger time.Duration, verbose bool) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("warehouse site listening on %s (seed %d)\n", addr, seed)

	pipe := obs.NewPipeline()

	cluster := source.NewCluster(func() int64 { return time.Now().UnixNano() })
	cluster.SetObs(pipe)
	cluster.AddSource("src1")
	must(cluster.LoadRelation("src1", "R", relation.FromTuples(rSchema, relation.T(1, 2))))
	must(cluster.CreateRelation("src1", "S", sSchema))

	vs := views()
	integ := integrator.New([]integrator.ViewInfo{
		{ID: "V1", Expr: vs["V1"]},
		{ID: "V2", Expr: vs["V2"]},
	}, integrator.WithObs(pipe))
	initial := map[msg.ViewID]*relation.Relation{}
	for id, e := range vs {
		v, err := expr.Eval(e, cluster.DatabaseAt(0))
		must(err)
		initial[id] = v
	}
	wh := warehouse.New(initial, warehouse.WithStateLog(), warehouse.WithObs(pipe))
	mp := merge.New(0, merge.SPA, merge.NewSequential(msg.NodeMerge(0), 0), merge.WithObs(pipe))

	dbg, err := obs.ServeDebug(debug, obs.DebugServer{
		Reg:  pipe.Reg(),
		Role: "warehouse",
		VUT:  func() any { return []merge.VUTSnapshot{mp.SnapshotVUT()} },
	})
	must(err)
	if dbg != nil {
		fmt.Printf("debug server on http://%s (metrics, healthz, debug/vut, debug/pprof)\n", debug)
		defer dbg.Close()
	}

	var rtnet *runtime.Network
	sess := wire.NewSession(wire.SessionConfig{
		Name:    "warehouse-site",
		Deliver: func(from, to string, m any) { rtnet.Inject(to, m) },
		Logf:    sessionLogf(verbose),
		Obs:     pipe,
	})
	defer sess.Close()
	rtnet = runtime.New(
		[]msg.Node{source.NewNode(cluster), integ, mp, wh},
		runtime.WithRemoteFrom(func(from, to string, m any) {
			if err := sess.Send(from, to, m); err != nil {
				log.Printf("send: %v", err)
			}
		}),
		runtime.WithObs(pipe),
	)
	rtnet.Start()
	defer rtnet.Stop()
	// Accept loop: each (re)connecting manager site replaces the previous
	// connection; the session's Hello exchange resumes both directions.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if verbose {
				log.Printf("manager site connected from %s", conn.RemoteAddr())
			}
			sess.Attach(conn)
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < updates; i++ {
		u, err := cluster.Execute("src1", msg.Write{
			Relation: "S",
			Delta:    relation.InsertDelta(sSchema, relation.T(rng.Intn(6), rng.Intn(6))),
		})
		must(err)
		rtnet.Inject(msg.NodeIntegrator, u)
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	if !runtime.WaitUntil(60*time.Second, func() bool {
		up := wh.Upto()
		return up["V1"] >= msg.UpdateID(updates) && up["V2"] >= msg.UpdateID(updates)
	}) {
		log.Fatalf("remote managers did not drain: %v (seed %d)", wh.Upto(), seed)
	}
	rep, err := consistency.Check(cluster, vs, wh.Log())
	must(err)
	all := wh.ReadAll()
	fmt.Printf("%d updates maintained by REMOTE view managers\n", updates)
	fmt.Printf("V1: %d rows  V2: %d rows\n", all["V1"].Cardinality(), all["V2"].Cardinality())
	fmt.Printf("MVC: convergent=%v strong=%v complete=%v\n", rep.Convergent, rep.Strong, rep.Complete)
	if !rep.Complete {
		log.Fatalf("expected complete MVC (seed %d)", seed)
	}
	fmt.Println("OK")
	if linger > 0 {
		fmt.Printf("lingering %v for metric scrapes\n", linger)
		time.Sleep(linger)
	}
}

func runManagerSite(addr string, seed int64, debug string, verbose bool) {
	fmt.Printf("manager site hosting view managers V1, V2; dialing %s\n", addr)

	pipe := obs.NewPipeline()
	dbg, err := obs.ServeDebug(debug, obs.DebugServer{Reg: pipe.Reg(), Role: "managers"})
	must(err)
	if dbg != nil {
		fmt.Printf("debug server on http://%s (metrics, healthz, debug/pprof)\n", debug)
		defer dbg.Close()
	}

	vs := views()
	// Replicas seed from the warehouse site's initial contents, which this
	// demo fixes statically (R = {[1 2]}, S = ∅). A restarted manager site
	// rebuilds from the same state and is replayed the full update stream
	// by the warehouse site's session, regenerating identical action lists
	// (deduplicated on the far side by sequence number).
	init := expr.MapDB{
		"R": relation.FromTuples(rSchema, relation.T(1, 2)),
		"S": relation.New(sSchema),
	}
	vm1, err := viewmgr.NewComplete(viewmgr.Config{View: "V1", Expr: vs["V1"], Merge: msg.NodeMerge(0), Obs: pipe}, init)
	must(err)
	vm2, err := viewmgr.NewComplete(viewmgr.Config{View: "V2", Expr: vs["V2"], Merge: msg.NodeMerge(0), Obs: pipe}, init)
	must(err)

	var rtnet *runtime.Network
	sess := wire.NewSession(wire.SessionConfig{
		Name:    "manager-site",
		Deliver: func(from, to string, m any) { rtnet.Inject(to, m) },
		Dial: func() (io.ReadWriteCloser, error) {
			return net.Dial("tcp", addr)
		},
		Backoff: wire.Backoff{Base: 20 * time.Millisecond, Max: time.Second, Seed: seed},
		Logf:    sessionLogf(verbose),
		Obs:     pipe,
	})
	defer sess.Close()
	rtnet = runtime.New(
		[]msg.Node{vm1, vm2},
		runtime.WithRemoteFrom(func(from, to string, m any) {
			if err := sess.Send(from, to, m); err != nil {
				log.Printf("send: %v", err)
			}
		}),
		runtime.WithObs(pipe),
	)
	rtnet.Start()
	defer rtnet.Stop()
	fmt.Println("maintaining views; ctrl-c to stop")
	select {}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
