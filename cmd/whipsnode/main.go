// Command whipsnode runs the warehouse architecture split across two OS
// processes — the paper's "view managers may reside on different machines"
// made literal. The warehouse site hosts the sources, integrator, merge
// process and warehouse; the manager site hosts the view managers. The two
// talk the gob wire protocol over TCP.
//
// Terminal 1:
//
//	whipsnode -role warehouse -addr 127.0.0.1:7654 -updates 50
//
// Terminal 2:
//
//	whipsnode -role managers -addr 127.0.0.1:7654
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"whips/internal/consistency"
	"whips/internal/expr"
	"whips/internal/integrator"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/runtime"
	"whips/internal/source"
	"whips/internal/viewmgr"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
)

func views() map[msg.ViewID]expr.Expr {
	return map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)),
		"V2": expr.MustProject(expr.Scan("S", sSchema), "C"),
	}
}

func main() {
	role := flag.String("role", "", "warehouse or managers")
	addr := flag.String("addr", "127.0.0.1:7654", "listen (warehouse) / dial (managers) address")
	updates := flag.Int("updates", 50, "updates to run (warehouse role)")
	flag.Parse()

	switch *role {
	case "warehouse":
		runWarehouseSite(*addr, *updates)
	case "managers":
		runManagerSite(*addr)
	default:
		log.Fatalf("unknown -role %q (use warehouse or managers)", *role)
	}
}

func runWarehouseSite(addr string, updates int) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("warehouse site listening on %s; waiting for the manager site...\n", addr)
	conn, err := ln.Accept()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manager site connected from %s\n", conn.RemoteAddr())

	cluster := source.NewCluster(func() int64 { return time.Now().UnixNano() })
	cluster.AddSource("src1")
	must(cluster.LoadRelation("src1", "R", relation.FromTuples(rSchema, relation.T(1, 2))))
	must(cluster.CreateRelation("src1", "S", sSchema))

	vs := views()
	integ := integrator.New([]integrator.ViewInfo{
		{ID: "V1", Expr: vs["V1"]},
		{ID: "V2", Expr: vs["V2"]},
	})
	initial := map[msg.ViewID]*relation.Relation{}
	for id, e := range vs {
		v, err := expr.Eval(e, cluster.DatabaseAt(0))
		must(err)
		initial[id] = v
	}
	wh := warehouse.New(initial, warehouse.WithStateLog())
	mp := merge.New(0, merge.SPA, merge.NewSequential(msg.NodeMerge(0), 0))

	bridge := wire.NewBridge(conn)
	net := runtime.New(
		[]msg.Node{source.NewNode(cluster), integ, mp, wh},
		runtime.WithRemote(func(to string, m any) {
			if err := bridge.Send(to, m); err != nil {
				log.Printf("send: %v", err)
			}
		}),
	)
	net.Start()
	defer net.Stop()
	go bridge.Pump(func(to string, m any) { net.Inject(to, m) })

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := 0; i < updates; i++ {
		u, err := cluster.Execute("src1", msg.Write{
			Relation: "S",
			Delta:    relation.InsertDelta(sSchema, relation.T(rng.Intn(6), rng.Intn(6))),
		})
		must(err)
		net.Inject(msg.NodeIntegrator, u)
	}
	if !runtime.WaitUntil(30*time.Second, func() bool {
		up := wh.Upto()
		return up["V1"] >= msg.UpdateID(updates) && up["V2"] >= msg.UpdateID(updates)
	}) {
		log.Fatalf("remote managers did not drain: %v", wh.Upto())
	}
	rep, err := consistency.Check(cluster, vs, wh.Log())
	must(err)
	all := wh.ReadAll()
	fmt.Printf("%d updates maintained by REMOTE view managers\n", updates)
	fmt.Printf("V1: %d rows  V2: %d rows\n", all["V1"].Cardinality(), all["V2"].Cardinality())
	fmt.Printf("MVC: convergent=%v strong=%v complete=%v\n", rep.Convergent, rep.Strong, rep.Complete)
	if !rep.Complete {
		log.Fatal("expected complete MVC")
	}
	fmt.Println("OK")
}

func runManagerSite(addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manager site connected to %s; hosting view managers V1, V2\n", addr)

	vs := views()
	// Replicas seed from the warehouse site's initial contents, which this
	// demo fixes statically (R = {[1 2]}, S = ∅).
	init := expr.MapDB{
		"R": relation.FromTuples(rSchema, relation.T(1, 2)),
		"S": relation.New(sSchema),
	}
	vm1, err := viewmgr.NewComplete(viewmgr.Config{View: "V1", Expr: vs["V1"], Merge: msg.NodeMerge(0)}, init)
	must(err)
	vm2, err := viewmgr.NewComplete(viewmgr.Config{View: "V2", Expr: vs["V2"], Merge: msg.NodeMerge(0)}, init)
	must(err)

	bridge := wire.NewBridge(conn)
	net := runtime.New(
		[]msg.Node{vm1, vm2},
		runtime.WithRemote(func(to string, m any) {
			if err := bridge.Send(to, m); err != nil {
				log.Printf("send: %v", err)
			}
		}),
	)
	net.Start()
	defer net.Stop()
	fmt.Println("maintaining views; ctrl-c to stop")
	if err := bridge.Pump(func(to string, m any) { net.Inject(to, m) }); err != nil {
		log.Printf("pump: %v", err)
	}
	fmt.Println("warehouse site disconnected; shutting down")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
