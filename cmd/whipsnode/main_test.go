package main

import (
	"bytes"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort grabs an ephemeral localhost port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "whipsnode")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestKillRestartManagerSite is the acceptance scenario: the manager-site
// process is SIGKILLed mid-run and restarted from scratch. The wire
// session's reconnect + full-stream replay must still deliver a
// consistency-checker-verified (complete MVC) warehouse state.
func TestKillRestartManagerSite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addr := freePort(t)

	var whOut bytes.Buffer
	wh := exec.Command(bin,
		"-role", "warehouse", "-addr", addr,
		"-updates", "60", "-seed", "7", "-pace", "3ms")
	wh.Stdout = &whOut
	wh.Stderr = &whOut
	if err := wh.Start(); err != nil {
		t.Fatal(err)
	}
	defer wh.Process.Kill()

	startManager := func() *exec.Cmd {
		m := exec.Command(bin, "-role", "managers", "-addr", addr, "-seed", "3")
		m.Stdout = os.Stderr
		m.Stderr = os.Stderr
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	mgr := startManager()
	// Let the run get properly underway, then kill -9 the manager site.
	time.Sleep(80 * time.Millisecond)
	if err := mgr.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	mgr.Wait()
	t.Log("manager site killed; restarting")

	mgr2 := startManager()
	defer func() {
		mgr2.Process.Kill()
		mgr2.Wait()
	}()

	done := make(chan error, 1)
	go func() { done <- wh.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("warehouse site failed: %v\n%s", err, whOut.String())
		}
	case <-time.After(90 * time.Second):
		wh.Process.Kill()
		t.Fatalf("warehouse site did not finish\n%s", whOut.String())
	}

	out := whOut.String()
	if !strings.Contains(out, "complete=true") || !strings.Contains(out, "\nOK\n") {
		t.Fatalf("warehouse did not verify complete MVC:\n%s", out)
	}
	t.Logf("warehouse output:\n%s", out)
}

// TestCleanRunNoFaults is the same two-process run without any kill — the
// baseline the fault run is measured against.
func TestCleanRunNoFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addr := freePort(t)

	var whOut bytes.Buffer
	wh := exec.Command(bin, "-role", "warehouse", "-addr", addr, "-updates", "30", "-seed", "5")
	wh.Stdout = &whOut
	wh.Stderr = &whOut
	if err := wh.Start(); err != nil {
		t.Fatal(err)
	}
	defer wh.Process.Kill()

	mgr := exec.Command(bin, "-role", "managers", "-addr", addr)
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		mgr.Process.Kill()
		mgr.Wait()
	}()

	done := make(chan error, 1)
	go func() { done <- wh.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("warehouse site failed: %v\n%s", err, whOut.String())
		}
	case <-time.After(60 * time.Second):
		wh.Process.Kill()
		t.Fatalf("warehouse site did not finish\n%s", whOut.String())
	}
	if !strings.Contains(whOut.String(), "complete=true") {
		t.Fatalf("expected complete MVC:\n%s", whOut.String())
	}
}
