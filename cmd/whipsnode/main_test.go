package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort grabs an ephemeral localhost port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "whipsnode")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestKillRestartManagerSite is the acceptance scenario: the manager-site
// process is SIGKILLed mid-run and restarted from scratch. The wire
// session's reconnect + full-stream replay must still deliver a
// consistency-checker-verified (complete MVC) warehouse state.
func TestKillRestartManagerSite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addr := freePort(t)

	var whOut bytes.Buffer
	wh := exec.Command(bin,
		"-role", "warehouse", "-addr", addr,
		"-updates", "60", "-seed", "7", "-pace", "3ms")
	wh.Stdout = &whOut
	wh.Stderr = &whOut
	if err := wh.Start(); err != nil {
		t.Fatal(err)
	}
	defer wh.Process.Kill()

	startManager := func() *exec.Cmd {
		m := exec.Command(bin, "-role", "managers", "-addr", addr, "-seed", "3")
		m.Stdout = os.Stderr
		m.Stderr = os.Stderr
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	mgr := startManager()
	// Let the run get properly underway, then kill -9 the manager site.
	time.Sleep(80 * time.Millisecond)
	if err := mgr.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	mgr.Wait()
	t.Log("manager site killed; restarting")

	mgr2 := startManager()
	defer func() {
		mgr2.Process.Kill()
		mgr2.Wait()
	}()

	done := make(chan error, 1)
	go func() { done <- wh.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("warehouse site failed: %v\n%s", err, whOut.String())
		}
	case <-time.After(90 * time.Second):
		wh.Process.Kill()
		t.Fatalf("warehouse site did not finish\n%s", whOut.String())
	}

	out := whOut.String()
	if !strings.Contains(out, "complete=true") || !strings.Contains(out, "\nOK\n") {
		t.Fatalf("warehouse did not verify complete MVC:\n%s", out)
	}
	t.Logf("warehouse output:\n%s", out)
}

// waitFinish waits for a warehouse process to exit cleanly, failing with
// its output otherwise.
func waitFinish(t *testing.T, wh *exec.Cmd, out *bytes.Buffer, timeout time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- wh.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("warehouse site failed: %v\n%s", err, out.String())
		}
	case <-time.After(timeout):
		wh.Process.Kill()
		t.Fatalf("warehouse site did not finish\n%s", out.String())
	}
}

// viewLine extracts the final "V1: n rows  V2: m rows" line.
func viewLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "V1: ") {
			return line
		}
	}
	t.Fatalf("no view summary in output:\n%s", out)
	return ""
}

// TestKillRestartWarehouseSiteDurable is the durability acceptance
// scenario: the warehouse site runs with -data-dir, is SIGKILLed
// mid-stream twice, and is restarted from its WAL + snapshots each time.
// The finished run must report complete MVC and the exact views of an
// uninterrupted baseline, and the manager site's retained-frame buffer
// must have been shrunk by the checkpoint acks.
func TestKillRestartWarehouseSiteDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	const updates, seed = 80, 7

	// Baseline: same workload, no durability, no faults.
	baseAddr := freePort(t)
	var baseOut bytes.Buffer
	base := exec.Command(bin, "-role", "warehouse", "-addr", baseAddr,
		"-updates", fmt.Sprint(updates), "-seed", fmt.Sprint(seed))
	base.Stdout, base.Stderr = &baseOut, &baseOut
	if err := base.Start(); err != nil {
		t.Fatal(err)
	}
	defer base.Process.Kill()
	baseMgr := exec.Command(bin, "-role", "managers", "-addr", baseAddr)
	if err := baseMgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { baseMgr.Process.Kill(); baseMgr.Wait() }()
	waitFinish(t, base, &baseOut, 60*time.Second)
	baseline := viewLine(t, baseOut.String())

	// Fault run: durable warehouse, killed and restarted twice.
	addr := freePort(t)
	mgrDebug := freePort(t)
	dataDir := filepath.Join(t.TempDir(), "wh-data")
	startWarehouse := func() (*exec.Cmd, *bytes.Buffer) {
		var out bytes.Buffer
		wh := exec.Command(bin, "-role", "warehouse", "-addr", addr,
			"-updates", fmt.Sprint(updates), "-seed", fmt.Sprint(seed),
			"-pace", "4ms", "-data-dir", dataDir, "-snapshot-every", "7")
		wh.Stdout, wh.Stderr = &out, &out
		if err := wh.Start(); err != nil {
			t.Fatal(err)
		}
		return wh, &out
	}

	wh, whOut := startWarehouse()
	defer wh.Process.Kill()
	mgr := exec.Command(bin, "-role", "managers", "-addr", addr, "-debug", mgrDebug)
	mgr.Stdout, mgr.Stderr = os.Stderr, os.Stderr
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { mgr.Process.Kill(); mgr.Wait() }()

	for round := 0; round < 2; round++ {
		time.Sleep(time.Duration(90+round*40) * time.Millisecond)
		if wh.ProcessState != nil {
			break // finished before we could kill it; still verifies below
		}
		if err := wh.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatal(err)
		}
		wh.Wait()
		t.Logf("warehouse site killed (round %d); output so far:\n%s", round+1, whOut.String())
		wh, whOut = startWarehouse()
		defer wh.Process.Kill()
	}

	waitFinish(t, wh, whOut, 90*time.Second)
	out := whOut.String()
	if !strings.Contains(out, "recovered to seq ") {
		t.Fatalf("restarted warehouse did not recover from WAL:\n%s", out)
	}
	if !strings.Contains(out, "complete=true") || !strings.Contains(out, "\nOK\n") {
		t.Fatalf("durable run did not verify complete MVC:\n%s", out)
	}
	if got := viewLine(t, out); got != baseline {
		t.Fatalf("views diverged from no-crash baseline:\n got %q\nwant %q", got, baseline)
	}

	// Checkpoint acks must have pruned the manager site's retained frames:
	// full retention would hold 2 frames per update (one action list per
	// view); durable acks cut it to roughly the suffix after the last
	// checkpoint.
	retained := scrapeGauge(t, mgrDebug, "wire_retained_frames")
	if retained >= updates {
		t.Fatalf("manager retained %d frames; checkpoint acks should keep it well under %d", retained, updates)
	}
	t.Logf("manager retained frames after run: %d (full retention would be %d)", retained, 2*updates)
}

// scrapeGauge reads one metric value from a debug server's Prometheus
// endpoint, tolerating label sets.
func scrapeGauge(t *testing.T, addr, name string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + name + `(?:\{[^}]*\})? (\d+)`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSupervisedCrashRestart exercises the in-process restart loop: an
// injected crash mid-run is recovered without process replacement.
func TestSupervisedCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addr := freePort(t)
	dataDir := filepath.Join(t.TempDir(), "wh-data")

	var whOut bytes.Buffer
	wh := exec.Command(bin, "-role", "warehouse", "-addr", addr,
		"-updates", "40", "-seed", "11",
		"-data-dir", dataDir, "-snapshot-every", "6",
		"-crash-after", "17", "-supervise")
	wh.Stdout, wh.Stderr = &whOut, &whOut
	if err := wh.Start(); err != nil {
		t.Fatal(err)
	}
	defer wh.Process.Kill()

	mgr := exec.Command(bin, "-role", "managers", "-addr", addr)
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { mgr.Process.Kill(); mgr.Wait() }()

	waitFinish(t, wh, &whOut, 90*time.Second)
	out := whOut.String()
	if !strings.Contains(out, "injected crash after 17 updates") {
		t.Fatalf("crash was not injected:\n%s", out)
	}
	if !strings.Contains(out, "recovered to seq ") {
		t.Fatalf("supervisor did not recover:\n%s", out)
	}
	if !strings.Contains(out, "complete=true") || !strings.Contains(out, "\nOK\n") {
		t.Fatalf("supervised run did not verify complete MVC:\n%s", out)
	}
}

// TestCleanRunNoFaults is the same two-process run without any kill — the
// baseline the fault run is measured against.
func TestCleanRunNoFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	bin := buildBinary(t)
	addr := freePort(t)

	var whOut bytes.Buffer
	wh := exec.Command(bin, "-role", "warehouse", "-addr", addr, "-updates", "30", "-seed", "5")
	wh.Stdout = &whOut
	wh.Stderr = &whOut
	if err := wh.Start(); err != nil {
		t.Fatal(err)
	}
	defer wh.Process.Kill()

	mgr := exec.Command(bin, "-role", "managers", "-addr", addr)
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		mgr.Process.Kill()
		mgr.Wait()
	}()

	done := make(chan error, 1)
	go func() { done <- wh.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("warehouse site failed: %v\n%s", err, whOut.String())
		}
	case <-time.After(60 * time.Second):
		wh.Process.Kill()
		t.Fatalf("warehouse site did not finish\n%s", whOut.String())
	}
	if !strings.Contains(whOut.String(), "complete=true") {
		t.Fatalf("expected complete MVC:\n%s", whOut.String())
	}
}
