package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/query"
	"whips/internal/relation"
	"whips/internal/repl"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestFollowerHealthCatchingUp pins the follower health semantics: until
// the first replicated epoch publishes, /healthz answers 503 "catching up"
// and /query answers 503; once the stream lands both serve, and /query
// returns the replicated rows (current and historical epochs).
func TestFollowerHealthCatchingUp(t *testing.T) {
	rep := warehouse.NewReplica()
	site := &followerSite{rep: rep}
	site.qe.Store(query.New(rep))
	// The debug tree exactly as runFollowerSite wires it.
	srv := httptest.NewServer(obs.NewDebugMux(obs.DebugServer{
		Reg:  obs.NewPipeline().Reg(),
		Role: "follower",
		Health: func() (string, bool) {
			if !site.rep.Ready() {
				return "catching up", false
			}
			return "serving", true
		},
		Query: site.serveQuery,
	}))
	defer srv.Close()

	// No epoch replicated yet: the follower must advertise that it cannot
	// serve, on both endpoints.
	code, body := httpGet(t, srv.URL+"/healthz")
	if code != 503 || !strings.Contains(body, "catching up") {
		t.Fatalf("healthz before catch-up = %d (%s), want 503 catching up", code, body)
	}
	if code, body = httpGet(t, srv.URL+"/query?view=V1"); code != 503 || !strings.Contains(body, "catching up") {
		t.Fatalf("query before catch-up = %d (%s), want 503 catching up", code, body)
	}

	// Bring up a real primary, commit one epoch, and stream it across.
	sch := relation.MustSchema("A:int", "B:int")
	var prim *repl.Primary
	wh := warehouse.New(map[msg.ViewID]*relation.Relation{
		"V1": relation.FromTuples(sch, relation.T(1, 2)),
	}, warehouse.WithStateLog(), warehouse.WithReplFeed(8, func(e msg.ReplEpoch) { prim.OnCommit(e) }))
	prim = repl.NewPrimary(repl.PrimaryConfig{Source: wh})
	defer prim.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go prim.Serve(ln)
	wh.Handle(msg.SubmitTxn{
		Txn: msg.WarehouseTxn{ID: 1, Rows: []msg.UpdateID{1}, Writes: []msg.ViewWrite{
			{View: "V1", Upto: 1, Delta: relation.InsertDelta(sch, relation.T(3, 4))},
		}},
		From: "merge:0",
	}, 10)

	fol := repl.NewFollower(repl.FollowerConfig{
		Name:    "f-test",
		Dial:    func() (io.ReadWriteCloser, error) { return net.Dial("tcp", ln.Addr().String()) },
		Replica: rep,
		Backoff: wire.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Seed: 1},
	})
	defer fol.Close()

	deadline := time.Now().Add(5 * time.Second)
	for !rep.Ready() || rep.Epoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up (epoch %d)", rep.Epoch())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, body = httpGet(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "serving") {
		t.Fatalf("healthz after catch-up = %d (%s), want 200 serving", code, body)
	}
	code, body = httpGet(t, srv.URL+"/query?view=V1")
	if code != 200 || !strings.Contains(body, `"epoch": 1`) {
		t.Fatalf("query after catch-up = %d (%s)", code, body)
	}
	if !strings.Contains(body, "3") || !strings.Contains(body, "4") {
		t.Fatalf("query body missing replicated row [3 4]: %s", body)
	}
	// &state=N pins historical epochs from the replica's retained ring:
	// stream one more epoch, then read the previous one back.
	wh.Handle(msg.SubmitTxn{
		Txn: msg.WarehouseTxn{ID: 2, Rows: []msg.UpdateID{2}, Writes: []msg.ViewWrite{
			{View: "V1", Upto: 2, Delta: relation.InsertDelta(sch, relation.T(5, 6))},
		}},
		From: "merge:0",
	}, 20)
	for rep.Epoch() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("second epoch never replicated (epoch %d)", rep.Epoch())
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, body = httpGet(t, srv.URL+"/query?view=V1&state=1")
	if code != 200 || !strings.Contains(body, `"epoch": 1`) || strings.Contains(body, "5") {
		t.Fatalf("historical query = %d (%s), want epoch 1 without row [5 6]", code, body)
	}
	// Epochs outside the retained window (0 predates the checkpoint
	// install; 99 is the future) are explicit errors, not stale data.
	if code, _ = httpGet(t, srv.URL+"/query?view=V1&state=0"); code != 400 {
		t.Fatalf("pre-checkpoint historical query = %d, want 400", code)
	}
	if code, _ = httpGet(t, srv.URL+"/query?view=V1&state=99"); code != 400 {
		t.Fatalf("out-of-window historical query = %d, want 400", code)
	}
}
