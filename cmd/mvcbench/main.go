// Command mvcbench runs the performance study the paper proposes in §7 —
// view freshness under the merge process and merge-bottleneck behaviour —
// plus the §4.3 commit-strategy and §6.1 distributed-merge sweeps. All
// experiments run on the deterministic discrete-event simulator, so the
// printed numbers are exactly reproducible for a given seed.
//
// Usage:
//
//	mvcbench [-exp all|freshness|bottleneck|straggler|commit|distributed|
//	          promptness|overhead|filter|relay|staged|managers|selfmaint|
//	          throughput|mqo|readload|replication|failover]
//	         [-updates N] [-seed N] [-csv] [-json]
//
// Most experiments run on the simulator; throughput, mqo, readload,
// replication, and failover run the goroutine runtime and measure wall
// clock (view-manager worker pool, shared maintenance plans, warehouse
// read paths, read replicas streaming epochs over loopback TCP, and crash
// failover on a primary→relay→leaf chain, respectively).
//
// -json writes the selected experiment's tables to BENCH_<exp>.json
// (seed, updates, and every row) instead of rendering to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"whips/internal/harness"
)

// experiment names one runnable -exp value. The ordered slice below is the
// single source of truth for the usage string and the unknown-flag listing.
type experiment struct {
	name string
	run  func(seed int64, updates int) []harness.Table
}

func one(f func(int64, int) harness.Table) func(int64, int) []harness.Table {
	return func(seed int64, updates int) []harness.Table {
		return []harness.Table{f(seed, updates)}
	}
}

var experiments = []experiment{
	{"all", harness.AllExperiments},
	{"freshness", one(harness.FreshnessVsLoad)},
	{"bottleneck", one(harness.MergeBottleneck)},
	{"straggler", one(harness.StragglerVUT)},
	{"commit", one(harness.CommitStrategies)},
	{"distributed", one(harness.DistributedMergeScaling)},
	{"promptness", one(harness.Promptness)},
	{"overhead", one(harness.AlgorithmOverhead)},
	{"filter", one(harness.FilterAblation)},
	{"relay", one(harness.RelayAblation)},
	{"staged", one(harness.StagedTransfer)},
	{"managers", one(harness.ManagerComparison)},
	{"selfmaint", one(harness.SelfMaint)},
	{"throughput", one(harness.Throughput)},
	{"mqo", one(harness.MQO)},
	{"readload", one(harness.ReadLoad)},
	{"replication", one(harness.Replication)},
	{"failover", one(harness.Failover)},
}

func names() []string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.name
	}
	return out
}

// benchJSON is the -json output shape: enough to regenerate or diff a run.
type benchJSON struct {
	Experiment string       `json:"experiment"`
	Seed       int64        `json:"seed"`
	Updates    int          `json:"updates"`
	Tables     []benchTable `json:"tables"`
}

type benchTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   string     `json:"notes,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: "+strings.Join(names(), ", "))
	updates := flag.Int("updates", 200, "source transactions per run")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	jsonOut := flag.Bool("json", false, "write results to BENCH_<exp>.json instead of stdout")
	seed := flag.Int64("seed", 1, "workload and latency seed")
	flag.Parse()

	var tables []harness.Table
	found := false
	for _, e := range experiments {
		if e.name == *exp {
			tables = e.run(*seed, *updates)
			found = true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available experiments:\n", *exp)
		for _, n := range names() {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
		os.Exit(2)
	}

	if *jsonOut {
		out := benchJSON{Experiment: *exp, Seed: *seed, Updates: *updates}
		for _, t := range tables {
			out.Tables = append(out.Tables, benchTable{
				ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
			})
		}
		path := fmt.Sprintf("BENCH_%s.json", *exp)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mvcbench: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "mvcbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mvcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d tables)\n", path, len(out.Tables))
		return
	}

	if !*csv {
		fmt.Printf("WHIPS MVC performance study (seed=%d, updates=%d, virtual time)\n\n", *seed, *updates)
	}
	for _, t := range tables {
		if *csv {
			fmt.Println(t.RenderCSV())
		} else {
			fmt.Println(t.Render())
		}
	}
}
