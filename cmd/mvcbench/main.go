// Command mvcbench runs the performance study the paper proposes in §7 —
// view freshness under the merge process and merge-bottleneck behaviour —
// plus the §4.3 commit-strategy and §6.1 distributed-merge sweeps. All
// experiments run on the deterministic discrete-event simulator, so the
// printed numbers are exactly reproducible for a given seed.
//
// Usage:
//
//	mvcbench [-exp all|freshness|bottleneck|commit|distributed|promptness|overhead]
//	         [-updates N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"whips/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, freshness, bottleneck, straggler, commit, distributed, promptness, overhead, filter, relay, staged, managers")
	updates := flag.Int("updates", 200, "source transactions per run")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	seed := flag.Int64("seed", 1, "workload and latency seed")
	flag.Parse()

	var tables []harness.Table
	switch *exp {
	case "all":
		tables = harness.AllExperiments(*seed, *updates)
	case "freshness":
		tables = []harness.Table{harness.FreshnessVsLoad(*seed, *updates)}
	case "bottleneck":
		tables = []harness.Table{harness.MergeBottleneck(*seed, *updates)}
	case "commit":
		tables = []harness.Table{harness.CommitStrategies(*seed, *updates)}
	case "distributed":
		tables = []harness.Table{harness.DistributedMergeScaling(*seed, *updates)}
	case "promptness":
		tables = []harness.Table{harness.Promptness(*seed, *updates)}
	case "straggler":
		tables = []harness.Table{harness.StragglerVUT(*seed, *updates)}
	case "overhead":
		tables = []harness.Table{harness.AlgorithmOverhead(*seed, *updates)}
	case "filter":
		tables = []harness.Table{harness.FilterAblation(*seed, *updates)}
	case "relay":
		tables = []harness.Table{harness.RelayAblation(*seed, *updates)}
	case "staged":
		tables = []harness.Table{harness.StagedTransfer(*seed, *updates)}
	case "managers":
		tables = []harness.Table{harness.ManagerComparison(*seed, *updates)}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if !*csv {
		fmt.Printf("WHIPS MVC performance study (seed=%d, updates=%d, virtual time)\n\n", *seed, *updates)
	}
	for _, t := range tables {
		if *csv {
			fmt.Println(t.RenderCSV())
		} else {
			fmt.Println(t.Render())
		}
	}
}
