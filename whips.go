// Package whips is a Go reproduction of the WHIPS multiple-view-consistency
// system from "Multiple View Consistency for Data Warehousing" (Zhuge,
// Wiener, Garcia-Molina; ICDE 1997).
//
// A System wires together the paper's Figure 1 architecture — autonomous
// sources, an integrator, one concurrent view manager per materialized
// view, one or more merge processes running the Simple Painting Algorithm
// (complete MVC) or the Painting Algorithm (strongly consistent MVC), and
// the warehouse — with every process running as its own goroutine.
//
// Quickstart:
//
//	rs := whips.MustSchema("A:int", "B:int")
//	ss := whips.MustSchema("B:int", "C:int")
//	sys, _ := whips.New(whips.Config{
//		Sources: []whips.SourceDef{{ID: "src", Relations: map[string]*whips.Relation{
//			"R": whips.FromTuples(rs, whips.T(1, 2)),
//			"S": whips.NewRelation(ss),
//		}}},
//		Views: []whips.ViewDef{
//			{ID: "V1", Expr: whips.MustJoin(whips.Scan("R", rs), whips.Scan("S", ss)), Manager: whips.Complete},
//		},
//	})
//	sys.Start()
//	defer sys.Stop()
//	sys.Execute("src", whips.Insert("S", ss, whips.T(2, 3)))
//	sys.WaitFresh(time.Second)
//	views, _ := sys.Read("V1")
package whips

import (
	"fmt"
	"sync"
	"time"

	"whips/internal/consistency"
	"whips/internal/durable"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/query"
	"whips/internal/relation"
	"whips/internal/runtime"
	"whips/internal/source"
	"whips/internal/system"
	"whips/internal/warehouse"
)

// Config configures a warehouse system. The zero value of every optional
// field is usable; Sources and Views are required.
type Config struct {
	// Sources declares the autonomous sources and their initial relations.
	Sources []SourceDef
	// Views declares the materialized views and their managers.
	Views []ViewDef
	// Commit selects the §4.3 commit strategy (default Sequential).
	Commit CommitKind
	// BatchSize and FlushAfter parameterize the Batched strategy.
	BatchSize  int
	FlushAfter time.Duration
	// DistributedMerge partitions views over multiple merge processes
	// (§6.1); views in different groups must share no base relations.
	DistributedMerge bool
	// RelevanceFilter discards provably irrelevant updates per view.
	RelevanceFilter bool
	// RelayRelevantSets routes RELᵢ through a designated view manager
	// instead of a direct integrator→merge message (§3.2 alternative),
	// saving one message per update per merge group.
	RelayRelevantSets bool
	// OptimizeViews rewrites view definitions (selection pushdown, column
	// pruning) before building managers; semantics are unchanged.
	OptimizeViews bool
	// SharedPlans maintains overlapping views through a shared
	// maintenance-plan DAG (internal/plan): subexpressions common to
	// several views are canonicalized and evaluated once per update at
	// the integrator, and each manager receives its precomputed delta.
	// Action-list contents — and so every consistency guarantee — are
	// unchanged; only where the deltas are computed moves. Incompatible
	// with query-based manager kinds.
	SharedPlans bool
	// SelfMaintain converts every Complete and CompleteQuery view to a
	// self-maintaining manager: auxiliary relations derived from the view
	// definition (join-key projections and pushed-down filters of each
	// base occurrence) are maintained incrementally from the update stream
	// itself, so deltas are computed with zero source queries. The emitted
	// action-list stream — and so every consistency guarantee — is
	// unchanged. Incompatible with SharedPlans.
	SelfMaintain bool
	// MaxAuxRows bounds each auxiliary relation a self-maintaining manager
	// keeps: an auxiliary growing past the bound is dropped and repaired
	// with a bounded source query when next needed. 0 means unbounded.
	MaxAuxRows int
	// Workers sizes the view managers' shared worker pool. 0 (default)
	// keeps the pure-latency model: ComputeDelay busy periods are timers
	// and overlap freely. N >= 1 models N compute units — delta
	// computations (including their modeled busy period) run on the pool,
	// so at most N views make compute progress at once; worker count then
	// governs how much compute latency the views can overlap. Either way
	// every view's action-list stream — and so every consistency
	// guarantee — is unchanged.
	Workers int
	// LogStates records the warehouse state sequence so Consistency()
	// can judge the run. Costs a deep view clone per transaction.
	LogStates bool
	// Jitter randomly delays message edges (chaos testing); zero disables.
	Jitter time.Duration
	// Seed seeds the jitter source.
	Seed int64
	// Algorithm forces a merge algorithm; nil selects automatically from
	// the weakest manager level (§6.3).
	Algorithm *Algorithm
	// Obs attaches an observability pipeline: every process records its
	// metrics in the pipeline's registry, and when a tracer is attached
	// each update's journey through the pipeline is emitted as trace
	// events (see internal/obs).
	Obs *obs.Pipeline
	// Replicate attaches an in-process read replica fed from the
	// warehouse's replication feed, extending traced spans through
	// repl_pub and repl_apply exactly like a live follower deployment.
	Replicate bool
	// Durable enables crash recovery: every executed update is written to
	// a write-ahead log before it enters the pipeline, and Checkpoint (or
	// SnapshotEvery) persists full system snapshots. A fresh New against
	// the same directory restores the snapshot and replays the WAL suffix.
	// Requires Workers == 0 and disables source-history garbage
	// collection. Every built-in manager kind snapshots, including the
	// query-based ones (their QID bookkeeping and backlog persist; a
	// query round in flight at a checkpoint is abandoned and restarted).
	Durable *DurableOptions
}

// DurableOptions configures Config.Durable.
type DurableOptions struct {
	// Dir is the data directory holding WAL segments and snapshots.
	Dir string
	// Fsync selects when appends reach stable storage (default FsyncAlways).
	Fsync FsyncPolicy
	// SnapshotEvery checkpoints automatically after that many executed
	// updates; 0 means only explicit Checkpoint calls snapshot. Automatic
	// checkpoints quiesce the pipeline (best effort, bounded wait).
	SnapshotEvery int
}

// System is a running WHIPS warehouse.
type System struct {
	sys *system.System
	net *runtime.Network
	qe  *query.Engine

	mu        sync.Mutex
	started   bool
	stopped   bool
	sinceGC   int
	gcEnabled bool

	host      *durable.Host
	store     *durable.Store
	snapEvery int
	sinceSnap int
}

// New assembles a system. Call Start to launch its processes.
func New(cfg Config) (*System, error) {
	scfg := system.Config{
		Sources:           cfg.Sources,
		Views:             cfg.Views,
		Commit:            cfg.Commit,
		BatchSize:         cfg.BatchSize,
		FlushAfter:        int64(cfg.FlushAfter),
		DistributedMerge:  cfg.DistributedMerge,
		RelevanceFilter:   cfg.RelevanceFilter,
		RelayRelevantSets: cfg.RelayRelevantSets,
		OptimizeViews:     cfg.OptimizeViews,
		SharedPlans:       cfg.SharedPlans,
		SelfMaintain:      cfg.SelfMaintain,
		MaxAuxRows:        cfg.MaxAuxRows,
		LogStates:         cfg.LogStates,
		Clock:             func() int64 { return time.Now().UnixNano() },
		Algorithm:         cfg.Algorithm,
		Workers:           cfg.Workers,
		Obs:               cfg.Obs,
		Replicate:         cfg.Replicate,
	}
	sys, err := system.Build(scfg)
	if err != nil {
		return nil, err
	}
	s := &System{sys: sys, gcEnabled: !cfg.LogStates && cfg.Durable == nil}
	qopts := []query.Option{query.WithClock(scfg.Clock)}
	if cfg.Obs != nil {
		qopts = append(qopts, query.WithObs(cfg.Obs))
	}
	s.qe = query.New(sys.Warehouse, qopts...)
	if cfg.Durable != nil {
		if cfg.Workers > 0 {
			return nil, fmt.Errorf("whips: durable mode requires Workers == 0 — worker pools break replay determinism")
		}
		parts, missing := sys.DurableNodes()
		if len(missing) > 0 {
			return nil, fmt.Errorf("whips: durable mode cannot snapshot managers without state capture %v", missing)
		}
		store, err := durable.Open(durable.StoreConfig{Dir: cfg.Durable.Dir, Fsync: cfg.Durable.Fsync, Obs: cfg.Obs})
		if err != nil {
			return nil, err
		}
		nodes := make(map[string]msg.Node)
		for _, n := range sys.Nodes() {
			nodes[n.ID()] = n
		}
		dparts := make(map[string]durable.Durable, len(parts))
		for name, p := range parts {
			dparts[name] = p
		}
		s.store = store
		s.snapEvery = cfg.Durable.SnapshotEvery
		s.host = durable.NewHost(durable.HostConfig{
			Store: store,
			Nodes: nodes,
			Parts: dparts,
			OnExec: func(u msg.Update) error {
				if err := sys.Cluster.Replay(u); err != nil {
					return err
				}
				sys.TrackUpdate(u)
				return nil
			},
			Obs: cfg.Obs,
		})
		// Replay before the runtime launches: the pump drives the same node
		// objects the network will own, single-threaded and virtually timed.
		if err := s.host.Recover(); err != nil {
			store.Close()
			return nil, err
		}
	}
	var opts []runtime.Option
	if cfg.Jitter > 0 {
		opts = append(opts, runtime.WithSeededJitter(cfg.Seed, cfg.Jitter))
	}
	if cfg.Obs != nil {
		opts = append(opts, runtime.WithObs(cfg.Obs))
	}
	s.net = runtime.New(sys.Nodes(), opts...)
	// Bind the worker pool to the runtime so busy periods run on workers
	// and their results come back as ordinary messages, with the network's
	// in-flight accounting covering the gap.
	sys.Pool.Bind(s.net.Inject, s.net.Reserve)
	// Source version history is needed by the consistency checker; without
	// state logging it can be garbage collected as views catch up. Durable
	// runs keep it too: trim timing is not reproduced by WAL replay.
	return s, nil
}

// Start launches every process goroutine.
func (s *System) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.net.Start()
}

// Stop terminates the system. In-flight maintenance work is dropped.
func (s *System) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	s.net.Stop()
	s.sys.Close()
	if s.store != nil {
		s.store.Close()
	}
}

// Execute runs a transaction on one source (§2.1's single-source updates)
// and reports it into the maintenance pipeline. It returns the update's
// global sequence number.
func (s *System) Execute(src SourceID, writes ...Write) (UpdateID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execLocked(func() (msg.Update, error) { return s.sys.Cluster.Execute(src, writes...) })
}

// execLocked commits one source transaction and feeds it to the
// integrator. Under durability the commit, the WAL append, and the
// injection happen atomically with respect to checkpoints.
func (s *System) execLocked(execute func() (msg.Update, error)) (UpdateID, error) {
	if !s.started || s.stopped {
		return 0, fmt.Errorf("whips: system is not running")
	}
	deliver := func(u msg.Update) {
		s.sys.TrackUpdate(u)
		s.net.Inject(msg.NodeIntegrator, u)
	}
	if s.host != nil {
		u, err := s.host.IngestExec(msg.NodeIntegrator, execute, deliver)
		if err != nil {
			return 0, err
		}
		s.maybeSnapshotLocked()
		return u.Seq, nil
	}
	u, err := execute()
	if err != nil {
		return 0, err
	}
	deliver(u)
	s.maybeTrimLocked()
	return u.Seq, nil
}

// maybeSnapshotLocked checkpoints after every Config.Durable.SnapshotEvery
// executed updates. Best effort: if the pipeline does not quiesce within
// the bounded wait the snapshot is skipped and retried a period later.
func (s *System) maybeSnapshotLocked() {
	if s.snapEvery <= 0 {
		return
	}
	s.sinceSnap++
	if s.sinceSnap < s.snapEvery {
		return
	}
	s.sinceSnap = 0
	_ = s.host.Checkpoint(func() bool { return s.net.Drain(5 * time.Second) })
}

// Checkpoint quiesces the pipeline (bounded by timeout) and writes a
// durable snapshot; the WAL prefix it covers is pruned and subsequent
// recovery starts from it. Requires Config.Durable.
func (s *System) Checkpoint(timeout time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.host == nil {
		return fmt.Errorf("whips: durability is not enabled")
	}
	return s.host.Checkpoint(func() bool { return s.net.Drain(timeout) })
}

// StateBytes marshals the full durable state without persisting it.
// Recovery-determinism tests compare two recoveries byte for byte.
// Requires Config.Durable.
func (s *System) StateBytes() ([]byte, error) {
	if s.host == nil {
		return nil, fmt.Errorf("whips: durability is not enabled")
	}
	return s.host.StateBytes()
}

// maybeTrimLocked periodically releases source version history below the
// warehouse's freshness low-water mark. Every view manager has processed
// (and will only ever query at or above) the states its view has reached,
// so states below MinUpto can never be read again — unless the run is
// recording states for the consistency checker, which replays from state 0.
func (s *System) maybeTrimLocked() {
	if s.gcEnabled {
		s.sinceGC++
		if s.sinceGC >= 64 {
			s.sinceGC = 0
			m, ok := s.sys.Warehouse.MinUpto()
			if !ok {
				// No materialized views: the warehouse is vacuously caught
				// up, so all source history below the current frontier is
				// releasable (the old zero-value MinUpto pinned it forever).
				m = s.sys.Cluster.Seq()
			}
			s.sys.Cluster.TruncateBefore(m)
		}
	}
}

// ExecuteGlobal runs a transaction that may span sources (§6.2).
func (s *System) ExecuteGlobal(writes ...Write) (UpdateID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execLocked(func() (msg.Update, error) { return s.sys.Cluster.ExecuteGlobal(writes...) })
}

// Settle blocks until no message is in flight anywhere in the system —
// every inbox empty, every handler returned, no timers pending — or the
// timeout elapses. Unlike WaitFresh it says nothing about batching
// boundaries; it is the right barrier before tearing a system down.
func (s *System) Settle(timeout time.Duration) bool {
	return s.net.Drain(timeout)
}

// WaitFresh blocks until every view reflects the newest update it is
// expected to reach (batching boundaries such as complete-N are honoured),
// or the timeout elapses. It reports whether freshness was reached.
func (s *System) WaitFresh(timeout time.Duration) bool {
	return runtime.WaitUntil(timeout, s.sys.Fresh)
}

// Read returns a mutually consistent view of the named relations, served
// lock-free from the warehouse's current epoch snapshot, so the result can
// never expose a half-applied maintenance transaction and never blocks
// maintenance. The relations are frozen (immutable); Clone one to mutate.
func (s *System) Read(views ...ViewID) (map[ViewID]*Relation, error) {
	return s.sys.Warehouse.Read(views...)
}

// ReadAll returns every view, lock-free from the current epoch snapshot.
// The relations are frozen (immutable); Clone one to mutate.
func (s *System) ReadAll() map[ViewID]*Relation { return s.sys.Warehouse.ReadAll() }

// ReadAt returns the named views as of recorded warehouse state index
// (0 = initial) — historical queries over the state log. Requires
// Config.LogStates.
func (s *System) ReadAt(state int, views ...ViewID) (map[ViewID]*Relation, error) {
	return s.sys.Warehouse.ReadAt(state, views...)
}

// States reports how many warehouse states have been recorded.
func (s *System) States() int { return s.sys.Warehouse.States() }

// Query evaluates an ad-hoc selection/projection/aggregation over one view
// against the current epoch snapshot, with an epoch-invalidated LRU result
// cache. The answer's relation is frozen; Clone it to mutate.
func (s *System) Query(spec QuerySpec) (QueryResult, error) { return s.qe.Run(spec) }

// QueryAt evaluates spec against recorded warehouse state index (0 =
// initial), bypassing the result cache. Requires Config.LogStates; same
// window semantics as ReadAt.
func (s *System) QueryAt(state int, spec QuerySpec) (QueryResult, error) {
	snap, err := s.sys.Warehouse.SnapshotAt(state)
	if err != nil {
		return QueryResult{}, err
	}
	return s.qe.RunAt(snap, spec)
}

// Epoch returns the warehouse's current published epoch (the number of
// committed maintenance transactions), lock-free.
func (s *System) Epoch() int64 { return s.sys.Warehouse.Snapshot().Epoch }

// Consistency judges the run against the §2 definitions. It requires
// Config.LogStates.
func (s *System) Consistency() (consistency.Report, error) {
	return consistency.Check(s.sys.Cluster, s.sys.Views, s.sys.Warehouse.Log())
}

// Algorithm returns the merge algorithm in use.
func (s *System) Algorithm() Algorithm { return s.sys.Algorithm }

// MergeGroups returns the view→merge-group assignment (§6.1).
func (s *System) MergeGroups() map[ViewID]int {
	out := make(map[ViewID]int, len(s.sys.Groups))
	for k, v := range s.sys.Groups {
		out[k] = v
	}
	return out
}

// SystemStats is a consolidated observability snapshot.
type SystemStats struct {
	// SourceSeq is the newest committed source transaction.
	SourceSeq UpdateID
	// UpdatesRouted counts updates the integrator processed.
	UpdatesRouted int64
	// TxnsApplied counts committed warehouse transactions; TxnsPending are
	// submitted but blocked (dependencies or staged data).
	TxnsApplied int64
	TxnsPending int
	// Merges holds each merge process's counters.
	Merges []merge.Stats
	// Upto is each view's freshness frontier.
	Upto map[ViewID]UpdateID
}

// Stats returns a consolidated snapshot of the running system.
func (s *System) Stats() SystemStats {
	return SystemStats{
		SourceSeq:     s.sys.Cluster.Seq(),
		UpdatesRouted: s.sys.Integrator.Received(),
		TxnsApplied:   s.sys.Warehouse.Applied(),
		TxnsPending:   s.sys.Warehouse.PendingCount(),
		Merges:        s.MergeStats(),
		Upto:          s.sys.Warehouse.Upto(),
	}
}

// MergeStats returns each merge process's counters.
func (s *System) MergeStats() []merge.Stats {
	out := make([]merge.Stats, len(s.sys.Merges))
	for i, m := range s.sys.Merges {
		out[i] = m.Stats()
	}
	return out
}

// Warehouse exposes the warehouse substrate (reads, state log, counters).
func (s *System) Warehouse() *warehouse.Warehouse { return s.sys.Warehouse }

// Replica exposes the in-process read replica (Config.Replicate), or nil.
func (s *System) Replica() *warehouse.Replica { return s.sys.Replica }

// Cluster exposes the source cluster (current/versioned reads, history).
func (s *System) Cluster() *source.Cluster { return s.sys.Cluster }

// SourceSeq returns the sequence number of the newest committed source
// transaction.
func (s *System) SourceSeq() UpdateID { return s.sys.Cluster.Seq() }

// Insert builds a single-tuple insert write.
func Insert(relName string, schema *Schema, tuples ...Tuple) Write {
	return Write{Relation: relName, Delta: relation.InsertDelta(schema, tuples...)}
}

// Delete builds a single-tuple delete write.
func Delete(relName string, schema *Schema, tuples ...Tuple) Write {
	return Write{Relation: relName, Delta: relation.DeleteDelta(schema, tuples...)}
}

// Modify builds a write replacing oldT with newT.
func Modify(relName string, schema *Schema, oldT, newT Tuple) Write {
	return Write{Relation: relName, Delta: relation.ModifyDelta(schema, oldT, newT)}
}
