package whips

// Benchmark suite: one benchmark per reproduced artifact.
//
//   - BenchmarkExampleN…     regenerate the paper's worked examples
//     (Table 1 / Examples 1–5) through the real pipeline or merge process.
//   - BenchmarkS1…S6         regenerate the §7 performance-study tables on
//     the deterministic simulator (virtual-time results are printed once
//     with -v; wall-clock numbers measure harness cost).
//   - BenchmarkMicro…        micro-benchmarks of the load-bearing pieces:
//     incremental delta computation, SPA/PA row processing, warehouse
//     transactions.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"whips/internal/expr"
	"whips/internal/harness"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/system"
	"whips/internal/workload"
)

// --- Paper examples ---------------------------------------------------------

// BenchmarkExample1Table1 runs the full Table 1 scenario end-to-end (real
// goroutines): one source update, two views, one coordinated warehouse
// transaction.
func BenchmarkExample1Table1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := New(Config{
			Sources: []SourceDef{
				{ID: "src1", Relations: map[string]*Relation{
					"R": FromTuples(rSchema, T(1, 2)),
					"S": NewRelation(sSchema),
				}},
				{ID: "src2", Relations: map[string]*Relation{
					"T": FromTuples(tSchema, T(3, 4)),
				}},
			},
			Views: []ViewDef{
				{ID: "V1", Expr: MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Manager: Complete},
				{ID: "V2", Expr: MustJoin(Scan("S", sSchema), Scan("T", tSchema)), Manager: Complete},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Start()
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(2, 3))); err != nil {
			b.Fatal(err)
		}
		if !sys.WaitFresh(10 * time.Second) {
			b.Fatal("not fresh")
		}
		sys.Stop()
	}
}

// benchMergeTrace replays a scripted merge-process message sequence.
func benchMergeTrace(b *testing.B, alg merge.Algorithm, script func(m *merge.Merge)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := merge.New(0, alg, merge.NewCallback(func(msg.WarehouseTxn) {}))
		script(m)
	}
}

var benchALSchema = relation.MustSchema("X:int")

func benchAL(view msg.ViewID, from, upto msg.UpdateID) msg.ActionList {
	return msg.ActionList{View: view, From: from, Upto: upto,
		Delta: relation.InsertDelta(benchALSchema, relation.T(int(upto)))}
}

// BenchmarkExample3SPA replays the paper's Example 3 message sequence.
func BenchmarkExample3SPA(b *testing.B) {
	benchMergeTrace(b, merge.SPA, func(m *merge.Merge) {
		m.Handle(msg.RelevantSet{Seq: 1, Views: []msg.ViewID{"V1", "V2"}}, 0)
		m.Handle(benchAL("V2", 1, 1), 0)
		m.Handle(msg.RelevantSet{Seq: 2, Views: []msg.ViewID{"V3"}}, 0)
		m.Handle(msg.RelevantSet{Seq: 3, Views: []msg.ViewID{"V2"}}, 0)
		m.Handle(benchAL("V3", 2, 2), 0)
		m.Handle(benchAL("V2", 3, 3), 0)
		m.Handle(benchAL("V1", 1, 1), 0)
	})
}

// BenchmarkExample5PA replays the paper's Example 5 message sequence.
func BenchmarkExample5PA(b *testing.B) {
	benchMergeTrace(b, merge.PA, func(m *merge.Merge) {
		m.Handle(msg.RelevantSet{Seq: 1, Views: []msg.ViewID{"V1", "V2"}}, 0)
		m.Handle(msg.RelevantSet{Seq: 2, Views: []msg.ViewID{"V2", "V3"}}, 0)
		m.Handle(msg.RelevantSet{Seq: 3, Views: []msg.ViewID{"V2", "V3"}}, 0)
		m.Handle(benchAL("V2", 1, 1), 0)
		m.Handle(benchAL("V2", 2, 3), 0)
		m.Handle(benchAL("V3", 2, 2), 0)
		m.Handle(benchAL("V1", 1, 1), 0)
		m.Handle(benchAL("V3", 3, 3), 0)
	})
}

// --- §7 performance study (simulator) ---------------------------------------

// benchExperiment regenerates one study table per benchmark run; with -v
// the first iteration prints the table, so `go test -bench S1 -v`
// reproduces EXPERIMENTS.md.
func benchExperiment(b *testing.B, gen func(seed int64, updates int) harness.Table) {
	for i := 0; i < b.N; i++ {
		t := gen(1, 100)
		if i == 0 {
			b.Log("\n" + t.Render())
		}
	}
}

// BenchmarkS1Freshness regenerates table S1 (freshness vs update rate).
func BenchmarkS1Freshness(b *testing.B) { benchExperiment(b, harness.FreshnessVsLoad) }

// BenchmarkS2Bottleneck regenerates table S2 (merge/warehouse saturation).
func BenchmarkS2Bottleneck(b *testing.B) { benchExperiment(b, harness.MergeBottleneck) }

// BenchmarkS2bStragglerVUT regenerates table S2b (VUT growth behind a
// straggler view manager).
func BenchmarkS2bStragglerVUT(b *testing.B) { benchExperiment(b, harness.StragglerVUT) }

// BenchmarkS3CommitStrategies regenerates table S3 (§4.3 strategies).
func BenchmarkS3CommitStrategies(b *testing.B) { benchExperiment(b, harness.CommitStrategies) }

// BenchmarkS4DistributedMerge regenerates table S4 (§6.1 scaling).
func BenchmarkS4DistributedMerge(b *testing.B) { benchExperiment(b, harness.DistributedMergeScaling) }

// BenchmarkS5Promptness regenerates table S5 (§4.4 promptness).
func BenchmarkS5Promptness(b *testing.B) { benchExperiment(b, harness.Promptness) }

// BenchmarkS6AlgorithmOverhead regenerates table S6 (coordination cost).
func BenchmarkS6AlgorithmOverhead(b *testing.B) { benchExperiment(b, harness.AlgorithmOverhead) }

// BenchmarkS7FilterAblation regenerates table S7 (ref-[7] irrelevant-update
// filtering).
func BenchmarkS7FilterAblation(b *testing.B) { benchExperiment(b, harness.FilterAblation) }

// BenchmarkS8RelayAblation regenerates table S8 (§3.2 alternative REL
// routing).
func BenchmarkS8RelayAblation(b *testing.B) { benchExperiment(b, harness.RelayAblation) }

// BenchmarkS9StagedTransfer regenerates table S9 (§6.3 coordinate-commit-
// only data transfer).
func BenchmarkS9StagedTransfer(b *testing.B) { benchExperiment(b, harness.StagedTransfer) }

// BenchmarkS10ManagerComparison regenerates table S10 (§6.3 manager menu).
func BenchmarkS10ManagerComparison(b *testing.B) { benchExperiment(b, harness.ManagerComparison) }

// --- micro-benchmarks --------------------------------------------------------

// BenchmarkMicroJoinDelta measures one incremental join-delta computation
// against a 1000-tuple base relation.
func BenchmarkMicroJoinDelta(b *testing.B) {
	db := map[string]*Relation{
		"R": NewRelation(rSchema),
		"S": NewRelation(sSchema),
	}
	for i := 0; i < 1000; i++ {
		_ = db["R"].Insert(T(i, i%100), 1)
		_ = db["S"].Insert(T(i%100, i), 1)
	}
	v := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	d := InsertDelta(sSchema, T(50, 5000))
	mdb := expr.MapDB(db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Delta(v, "S", d, mdb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSPAThroughput measures merge-process message handling on a
// long independent-row workload.
func BenchmarkMicroSPAThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := merge.New(0, merge.SPA, merge.NewCallback(func(msg.WarehouseTxn) {}))
		for seq := msg.UpdateID(1); seq <= 1000; seq++ {
			view := msg.ViewID(fmt.Sprintf("V%d", seq%8))
			m.Handle(msg.RelevantSet{Seq: seq, Views: []msg.ViewID{view}}, 0)
			m.Handle(benchAL(view, seq, seq), 0)
		}
	}
}

// BenchmarkMicroPABatches measures PA on batched action lists.
func BenchmarkMicroPABatches(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := merge.New(0, merge.PA, merge.NewCallback(func(msg.WarehouseTxn) {}))
		for seq := msg.UpdateID(1); seq <= 1000; seq++ {
			m.Handle(msg.RelevantSet{Seq: seq, Views: []msg.ViewID{"V1", "V2"}}, 0)
			m.Handle(benchAL("V1", seq, seq), 0)
			if seq%4 == 0 {
				m.Handle(benchAL("V2", seq-3, seq), 0)
			}
		}
	}
}

// BenchmarkMicroWarehouseTxn measures atomic multi-view application.
func BenchmarkMicroWarehouseTxn(b *testing.B) {
	sys, err := system.Build(system.Config{
		Sources: workload.PaperSources(),
		Views:   workload.PaperViews(system.Complete),
	})
	if err != nil {
		b.Fatal(err)
	}
	wh := sys.Warehouse
	d := InsertDelta(MustSchema("A:int", "B:int", "C:int"), T(1, 2, 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txn := msg.WarehouseTxn{
			ID:   msg.TxnID(i + 1),
			Rows: []msg.UpdateID{msg.UpdateID(i + 1)},
			Writes: []msg.ViewWrite{
				{View: "V1", Upto: msg.UpdateID(i + 1), Delta: d},
			},
		}
		wh.Handle(msg.SubmitTxn{Txn: txn}, 0)
	}
}

// BenchmarkMicroEndToEndSim measures the whole simulated pipeline per
// update (build + 500 updates through SPA).
func BenchmarkMicroEndToEndSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(harness.Params{
			Name:     "micro",
			Sources:  workload.PaperSources(),
			Views:    workload.PaperViews(system.Complete),
			Updates:  500,
			Interval: 1000,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Txns == 0 {
			b.Fatal("no transactions")
		}
	}
}

// BenchmarkMicroJoinDeltaUnindexed is the ablation partner of
// BenchmarkMicroJoinDelta: the same join delta computed through the
// generic path (the scanned side wrapped in a Const, which defeats the
// persistent-index probe). The gap is what the index buys per-update
// incremental maintenance.
func BenchmarkMicroJoinDeltaUnindexed(b *testing.B) {
	db := map[string]*Relation{
		"R": NewRelation(rSchema),
		"S": NewRelation(sSchema),
	}
	for i := 0; i < 1000; i++ {
		_ = db["R"].Insert(T(i, i%100), 1)
		_ = db["S"].Insert(T(i%100, i), 1)
	}
	// Wrap R in a Const holding its contents: semantically identical, but
	// not a Scan, so the join cannot probe an index.
	v := MustJoin(expr.NewConst(rSchema, db["R"].AsDelta()), Scan("S", sSchema))
	d := InsertDelta(sSchema, T(50, 5000))
	mdb := expr.MapDB(db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Delta(v, "S", d, mdb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroOptimizedDelta measures the incremental-maintenance cost
// of a selective join view with and without the optimizer's selection
// pushdown — the ablation for Config.OptimizeViews.
func BenchmarkMicroOptimizedDelta(b *testing.B) {
	db := map[string]*Relation{
		"R": NewRelation(rSchema),
		"S": NewRelation(sSchema),
	}
	for i := 0; i < 2000; i++ {
		_ = db["R"].Insert(T(i, i%200), 1)
		_ = db["S"].Insert(T(i%200, i), 1)
	}
	// σ_{C=7}(R ⋈ S): without pushdown every R delta joins against all of
	// S before the filter; with pushdown it probes σ_{C=7}(S) only.
	base := MustSelect(MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Cmp("C", Eq, 7))
	d := InsertDelta(rSchema, T(5000, 7))
	mdb := expr.MapDB(db)
	for _, cfg := range []struct {
		name string
		v    Expr
	}{
		{"original", base},
		{"optimized", OptimizeExpr(base)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expr.Delta(cfg.v, "R", d, mdb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
