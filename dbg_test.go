package whips

import (
	"testing"
	"time"
)

func TestDebugQM(t *testing.T) {
	cfg := paperConfig(CompleteQuery)
	cfg.Jitter = 200 * time.Microsecond
	cfg.Seed = 7
	sys := startSystem(t, cfg)
	runWorkload(t, sys, 7, 25)
	if !sys.WaitFresh(5 * time.Second) {
		t.Fatal("not fresh")
	}
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("report: %+v", rep)
		for _, u := range sys.Cluster().Log() {
			t.Logf("U%d: %s %v", u.Seq, u.Writes[0].Relation, u.Writes[0].Delta)
		}
		for i, rec := range sys.Warehouse().Log() {
			t.Logf("ws%d rows=%v: V1=%v V2=%v", i, rec.Rows, rec.Views["V1"], rec.Views["V2"])
		}
	}
}
