// Quickstart reproduces the paper's running example (Table 1, Example 1).
//
// Two views are materialized at the warehouse: V1 = R ⋈ S and V2 = S ⋈ T.
// A single source update — inserting [2 3] into S — affects both views.
// Without coordination the warehouse passes through the paper's time-t2
// state, where V1 reflects the new S but V2 does not. With the merge
// process running the Simple Painting Algorithm, both views advance in one
// warehouse transaction and every reader snapshot is mutually consistent.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"whips"
)

func main() {
	rSchema := whips.MustSchema("A:int", "B:int")
	sSchema := whips.MustSchema("B:int", "C:int")
	tSchema := whips.MustSchema("C:int", "D:int")

	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{
			{ID: "src1", Relations: map[string]*whips.Relation{
				"R": whips.FromTuples(rSchema, whips.T(1, 2)),
				"S": whips.NewRelation(sSchema),
			}},
			{ID: "src2", Relations: map[string]*whips.Relation{
				"T": whips.FromTuples(tSchema, whips.T(3, 4)),
			}},
		},
		Views: []whips.ViewDef{
			{ID: "V1", Expr: whips.MustJoin(whips.Scan("R", rSchema), whips.Scan("S", sSchema)), Manager: whips.Complete},
			{ID: "V2", Expr: whips.MustJoin(whips.Scan("S", sSchema), whips.Scan("T", tSchema)), Manager: whips.Complete},
		},
		LogStates: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	fmt.Printf("merge algorithm: %v (complete view managers)\n", sys.Algorithm())

	// Time t0 of Table 1: S is empty, so both views are empty.
	views, err := sys.Read("V1", "V2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t0: V1=%v V2=%v\n", views["V1"], views["V2"])

	// Time t1: the source inserts [2 3] into S.
	seq, err := sys.Execute("src1", whips.Insert("S", sSchema, whips.T(2, 3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t1: source committed U%d: insert [2 3] into S\n", seq)

	// The merge process holds V1's actions until V2's arrive, then applies
	// both in a single warehouse transaction — no reader can observe the
	// paper's inconsistent t2 state.
	if !sys.WaitFresh(5 * time.Second) {
		log.Fatal("warehouse did not become fresh")
	}
	views, err = sys.Read("V1", "V2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t3: V1=%v V2=%v (both updated in %d warehouse transaction)\n",
		views["V1"], views["V2"], sys.Warehouse().Applied())

	rep, err := sys.Consistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistency: convergent=%v strong=%v complete=%v\n",
		rep.Convergent, rep.Strong, rep.Complete)
	if !rep.Complete {
		log.Fatalf("expected complete MVC, got %+v", rep)
	}
	fmt.Println("OK: multiple view consistency preserved")
}
