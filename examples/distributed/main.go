// Distributed demonstrates §6.1: splitting the merge process. Views are
// partitioned into groups with disjoint base relations; each group gets
// its own merge process, so coordination work scales out while each
// group's views stay mutually consistent.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"whips"
)

func main() {
	rSchema := whips.MustSchema("A:int", "B:int")
	sSchema := whips.MustSchema("B:int", "C:int")
	qSchema := whips.MustSchema("E:int", "F:int")

	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{
			{ID: "srcA", Relations: map[string]*whips.Relation{
				"R": whips.NewRelation(rSchema),
				"S": whips.NewRelation(sSchema),
			}},
			{ID: "srcB", Relations: map[string]*whips.Relation{
				"Q": whips.NewRelation(qSchema),
			}},
		},
		Views: []whips.ViewDef{
			// Group 0: V1 and V2 share S and must be coordinated together.
			{ID: "V1", Expr: whips.MustJoin(whips.Scan("R", rSchema), whips.Scan("S", sSchema)), Manager: whips.Complete},
			{ID: "V2", Expr: whips.MustProject(whips.Scan("S", sSchema), "C"), Manager: whips.Complete},
			// Group 1: V3 reads only Q — its own merge process.
			{ID: "V3", Expr: whips.MustSelect(whips.Scan("Q", qSchema), whips.Cmp("F", whips.Ge, 0)), Manager: whips.Complete},
		},
		DistributedMerge: true,
		LogStates:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	groups := sys.MergeGroups()
	fmt.Printf("partition (§6.1): V1→MP%d V2→MP%d V3→MP%d\n", groups["V1"], groups["V2"], groups["V3"])
	if groups["V1"] != groups["V2"] || groups["V3"] == groups["V1"] {
		log.Fatalf("unexpected partition: %v", groups)
	}

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		switch rng.Intn(3) {
		case 0:
			_, err = sys.Execute("srcA", whips.Insert("R", rSchema, whips.T(rng.Intn(5), rng.Intn(5))))
		case 1:
			_, err = sys.Execute("srcA", whips.Insert("S", sSchema, whips.T(rng.Intn(5), rng.Intn(5))))
		default:
			_, err = sys.Execute("srcB", whips.Insert("Q", qSchema, whips.T(rng.Intn(5), rng.Intn(5))))
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if !sys.WaitFresh(10 * time.Second) {
		log.Fatal("warehouse did not become fresh")
	}

	for g, st := range sys.MergeStats() {
		fmt.Printf("MP%d: RELs=%d ALs=%d txns=%d maxVUT=%d\n",
			g, st.RELsReceived, st.ALsReceived, st.TxnsSubmitted, st.MaxRowsLive)
	}

	rep, err := sys.Consistency()
	if err != nil {
		log.Fatal(err)
	}
	// Groups are individually complete; the global vector interleaves
	// independent groups, which the equivalent-schedule semantics accepts.
	fmt.Printf("global MVC: convergent=%v strong=%v complete=%v\n",
		rep.Convergent, rep.Strong, rep.Complete)
	for id, v := range rep.PerView {
		fmt.Printf("  %s: complete=%v\n", id, v.Complete)
		if !v.Complete {
			log.Fatalf("view %s lost consistency: %+v", id, v)
		}
	}
	if !rep.Strong {
		log.Fatalf("expected at least strong global consistency, got %+v", rep)
	}
	fmt.Println("OK: per-group coordination preserved consistency with two merge processes")
}
