// Package examples_test builds and runs every example binary end to end,
// asserting each exits 0 and prints its expected final-state line — the
// examples double as integration tests of the whole maintenance pipeline.
package examples_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// finalLines maps each example directory to the line its successful run
// ends with.
var finalLines = map[string]string{
	"quickstart":  "OK: multiple view consistency preserved",
	"bank":        "OK: every customer snapshot balanced",
	"dashboard":   "OK: aggregates, filtered detail, and staged refresh stayed mutually consistent",
	"distributed": "OK: per-group coordination preserved consistency with two merge processes",
	"multisource": "OK: cross-source transactions applied atomically at the warehouse",
	"promotion":   "OK",
}

func TestExamplesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs OS processes")
	}
	for dir, want := range finalLines {
		dir, want := dir, want
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(t.TempDir(), dir)
			build := exec.Command("go", "build", "-o", bin, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", dir, err, out)
			}
			cmd := exec.Command(bin)
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				defer close(done)
				out, runErr = cmd.CombinedOutput()
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				<-done
				t.Fatalf("%s did not finish:\n%s", dir, out)
			}
			if runErr != nil {
				t.Fatalf("%s exited nonzero: %v\n%s", dir, runErr, out)
			}
			lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
			last := lines[len(lines)-1]
			if last != want {
				t.Fatalf("%s final line = %q, want %q\nfull output:\n%s", dir, last, want, out)
			}
		})
	}
}
