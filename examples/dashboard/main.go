// Dashboard exercises the warehouse-analytics side of the system: an
// aggregate view maintained incrementally, a detail view kept by a
// periodic-refresh manager whose (large) diffs ship out-of-band (§6.3
// coordinate-commit-only mode), and the ref-[7] irrelevance filter. A
// dashboard reader repeatedly takes consistent snapshots and checks that
// the aggregates always sum the detail rows exactly — the kind of
// cross-view arithmetic that silently breaks without MVC.
//
// Run with:
//
//	go run ./examples/dashboard
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"whips"
)

func main() {
	orders := whips.MustSchema("Region:string", "Order:int", "Amount:int")

	// VBig: only large orders (the filter discards small-order updates for
	// this view entirely).
	vBig := whips.MustSelect(whips.Scan("Orders", orders), whips.Cmp("Amount", whips.Ge, 500))
	// VTotals: per-region count and revenue, maintained incrementally.
	vTotals := whips.MustAggregate(whips.Scan("Orders", orders), []string{"Region"}, []whips.AggSpec{
		{Op: whips.Count, As: "N"},
		{Op: whips.Sum, Attr: "Amount", As: "Revenue"},
	})
	// VDetail: the full fact table, refreshed every 8 updates with staged
	// (out-of-band) diffs — the merge process coordinates tokens only.
	vDetail := whips.Scan("Orders", orders)

	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{{ID: "oltp", Relations: map[string]*whips.Relation{
			"Orders": whips.NewRelation(orders),
		}}},
		Views: []whips.ViewDef{
			{ID: "VBig", Expr: vBig, Manager: whips.Complete},
			{ID: "VTotals", Expr: vTotals, Manager: whips.Complete},
			{ID: "VDetail", Expr: vDetail, Manager: whips.Refresh, Param: 8, StageData: true},
		},
		RelevanceFilter: true,
		LogStates:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	// The dashboard: every snapshot's aggregates must match its own detail
	// rows (both views in ONE consistent read).
	stop := make(chan struct{})
	bad := make(chan string, 1)
	snapshots := 0
	go func() {
		defer close(bad)
		for {
			select {
			case <-stop:
				return
			default:
			}
			views, err := sys.Read("VTotals", "VBig")
			if err != nil {
				bad <- err.Error()
				return
			}
			snapshots++
			// Every big order's region must exist in the totals with revenue
			// at least the big order's amount.
			okAll := true
			views["VBig"].Each(func(t whips.Tuple, n int64) bool {
				region, amount := t[0], t[2].Int()
				found := false
				views["VTotals"].Each(func(tot whips.Tuple, _ int64) bool {
					if tot[0].Equal(region) && tot[2].Int() >= amount {
						found = true
						return false
					}
					return true
				})
				if !found {
					okAll = false
					return false
				}
				return true
			})
			if !okAll {
				bad <- "a big order is missing from the regional totals — views skewed"
				return
			}
		}
	}()

	regions := []string{"east", "west", "north"}
	rng := rand.New(rand.NewSource(99))
	const orderCount = 64
	for i := 1; i <= orderCount; i++ {
		amount := 50 + rng.Intn(1000)
		if _, err := sys.Execute("oltp", whips.Insert("Orders", orders,
			whips.T(regions[rng.Intn(len(regions))], i, amount))); err != nil {
			log.Fatal(err)
		}
	}
	if !sys.WaitFresh(10 * time.Second) {
		log.Fatal("warehouse did not become fresh")
	}
	close(stop)
	if v, open := <-bad; open && v != "" {
		log.Fatalf("INCONSISTENT DASHBOARD: %s", v)
	}

	views, _ := sys.Read("VTotals", "VBig", "VDetail")
	fmt.Printf("%d orders ingested, %d consistent dashboard snapshots\n", orderCount, snapshots)
	fmt.Printf("regional totals: %v\n", views["VTotals"])
	fmt.Printf("big orders: %d  detail rows: %d\n",
		views["VBig"].Cardinality(), views["VDetail"].Cardinality())

	// The detail view's data never passed through the merge process.
	var mergeTuples int64
	for _, st := range sys.MergeStats() {
		mergeTuples += st.DeltaTuples
	}
	fmt.Printf("delta tuples through merge: %d (detail view staged out-of-band)\n", mergeTuples)

	rep, err := sys.Consistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MVC: convergent=%v strong=%v\n", rep.Convergent, rep.Strong)
	if !rep.Strong {
		log.Fatalf("expected strong MVC, got %+v (%s)", rep, rep.Violation)
	}
	fmt.Println("OK: aggregates, filtered detail, and staged refresh stayed mutually consistent")
}
