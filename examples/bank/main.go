// Bank demonstrates the paper's §1.1 motivation for MVC: "when the
// customer calls with a question, we would like to be able to read her
// data consistently: her checking account record, for instance, should
// match with her linked savings account record."
//
// A bank source holds Checking(Cust, Bal) and Savings(Cust, Bal). Every
// transaction transfers money between a customer's two accounts — one
// source transaction with two writes — so the invariant
//
//	checking + savings = const  (per customer)
//
// holds at every source state. The warehouse materializes one view per
// account kind plus an aggregate total. A customer-service reader snapshots
// the views concurrently with a stream of transfers and verifies the
// invariant on every read: a violation would mean a reader observed a
// transfer half-applied across views.
//
// Run with:
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"whips"
)

const (
	customers      = 4
	initialBalance = 1000
	transfers      = 60
)

func main() {
	acct := whips.MustSchema("Cust:int", "Bal:int")

	checking := whips.NewRelation(acct)
	savings := whips.NewRelation(acct)
	for c := 0; c < customers; c++ {
		if err := checking.Insert(whips.T(c, initialBalance), 1); err != nil {
			log.Fatal(err)
		}
		if err := savings.Insert(whips.T(c, initialBalance), 1); err != nil {
			log.Fatal(err)
		}
	}

	totalView := whips.MustAggregate(
		whips.MustUnionAll(whips.Scan("Checking", acct), whips.Scan("Savings", acct)),
		[]string{"Cust"},
		[]whips.AggSpec{{Op: whips.Sum, Attr: "Bal", As: "Total"}},
	)

	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{{ID: "bank", Relations: map[string]*whips.Relation{
			"Checking": checking,
			"Savings":  savings,
		}}},
		Views: []whips.ViewDef{
			{ID: "VChecking", Expr: whips.Scan("Checking", acct), Manager: whips.Complete},
			{ID: "VSavings", Expr: whips.Scan("Savings", acct), Manager: whips.Complete},
			{ID: "VTotal", Expr: totalView, Manager: whips.Complete},
		},
		LogStates: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	// The customer-service desk: concurrent consistent reads.
	stop := make(chan struct{})
	violations := make(chan string, 1)
	reads := 0
	go func() {
		defer close(violations)
		for {
			select {
			case <-stop:
				return
			default:
			}
			views, err := sys.Read("VChecking", "VSavings", "VTotal")
			if err != nil {
				violations <- err.Error()
				return
			}
			reads++
			for c := 0; c < customers; c++ {
				chk := balance(views["VChecking"], c)
				sav := balance(views["VSavings"], c)
				if chk+sav != 2*initialBalance {
					violations <- fmt.Sprintf(
						"customer %d: checking %d + savings %d != %d — reader saw a half-applied transfer",
						c, chk, sav, 2*initialBalance)
					return
				}
				if tot := totalOf(views["VTotal"], c); tot != 2*initialBalance {
					violations <- fmt.Sprintf("customer %d: aggregate total %d drifted", c, tot)
					return
				}
			}
		}
	}()

	// The teller: a stream of transfers between each customer's accounts.
	rng := rand.New(rand.NewSource(7))
	balC := make([]int, customers)
	balS := make([]int, customers)
	for c := range balC {
		balC[c], balS[c] = initialBalance, initialBalance
	}
	for i := 0; i < transfers; i++ {
		c := rng.Intn(customers)
		amount := 1 + rng.Intn(100)
		fromC := rng.Intn(2) == 0
		if fromC && balC[c] < amount {
			fromC = false
		}
		if !fromC && balS[c] < amount {
			fromC = true
		}
		var w1, w2 whips.Write
		if fromC {
			w1 = whips.Modify("Checking", acct, whips.T(c, balC[c]), whips.T(c, balC[c]-amount))
			w2 = whips.Modify("Savings", acct, whips.T(c, balS[c]), whips.T(c, balS[c]+amount))
			balC[c] -= amount
			balS[c] += amount
		} else {
			w1 = whips.Modify("Savings", acct, whips.T(c, balS[c]), whips.T(c, balS[c]-amount))
			w2 = whips.Modify("Checking", acct, whips.T(c, balC[c]), whips.T(c, balC[c]+amount))
			balS[c] -= amount
			balC[c] += amount
		}
		if _, err := sys.Execute("bank", w1, w2); err != nil {
			log.Fatal(err)
		}
	}

	if !sys.WaitFresh(10 * time.Second) {
		log.Fatal("warehouse did not become fresh")
	}
	close(stop)
	if v, bad := <-violations; bad && v != "" {
		log.Fatalf("INCONSISTENT READ: %s", v)
	}

	rep, err := sys.Consistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d transfers committed, %d concurrent reads, every snapshot consistent\n", transfers, reads)
	fmt.Printf("warehouse transactions: %d; MVC level: convergent=%v strong=%v complete=%v\n",
		sys.Warehouse().Applied(), rep.Convergent, rep.Strong, rep.Complete)
	views, _ := sys.Read("VChecking", "VSavings")
	for c := 0; c < customers; c++ {
		fmt.Printf("customer %d: checking=%d savings=%d\n",
			c, balance(views["VChecking"], c), balance(views["VSavings"], c))
	}
	if !rep.Complete {
		log.Fatalf("expected complete MVC, got %+v", rep)
	}
	fmt.Println("OK: every customer snapshot balanced")
}

// balance extracts a customer's balance from an account view.
func balance(r *whips.Relation, cust int) int {
	var out int
	r.Each(func(t whips.Tuple, n int64) bool {
		if t[0].Int() == int64(cust) {
			out = int(t[1].Int())
			return false
		}
		return true
	})
	return out
}

// totalOf extracts a customer's aggregate total.
func totalOf(r *whips.Relation, cust int) int {
	var out int
	r.Each(func(t whips.Tuple, n int64) bool {
		if t[0].Int() == int64(cust) {
			out = int(t[1].Int())
			return false
		}
		return true
	})
	return out
}
