// Promotion demonstrates the paper's second §1.1 motivation and the
// auxiliary-view argument of refs [12, 8]: "in order to maintain
// V = R ⋈ S ⋈ T, the algorithm might choose to materialize relations
// R ⋈ S and S ⋈ T and compute V from them. The two sub-views must be
// consistent with each other whenever V is computed."
//
// The warehouse stores the two auxiliary views A1 = Cust ⋈ Orders and
// A2 = Orders ⋈ Items. A marketing application selects customers for a
// promotion by joining A1 and A2 *at the warehouse* (client-side). Because
// the merge process keeps A1 and A2 mutually consistent, the client-side
// join always equals evaluating Cust ⋈ Orders ⋈ Items directly at some
// source state — the "correct customers" of the paper.
//
// Run with:
//
//	go run ./examples/promotion
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"whips"
)

func main() {
	custSchema := whips.MustSchema("Cust:int", "Region:string")
	orderSchema := whips.MustSchema("Cust:int", "Order:int")
	itemSchema := whips.MustSchema("Order:int", "Spend:int")

	a1 := whips.MustJoin(whips.Scan("Cust", custSchema), whips.Scan("Orders", orderSchema))
	a2 := whips.MustJoin(whips.Scan("Orders", orderSchema), whips.Scan("Items", itemSchema))

	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{{ID: "oltp", Relations: map[string]*whips.Relation{
			"Cust":   whips.NewRelation(custSchema),
			"Orders": whips.NewRelation(orderSchema),
			"Items":  whips.NewRelation(itemSchema),
		}}},
		Views: []whips.ViewDef{
			{ID: "A1", Expr: a1, Manager: whips.Complete},
			{ID: "A2", Expr: a2, Manager: whips.Complete},
		},
		LogStates: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	// A reader that continuously recomputes the promotion list from the
	// auxiliary views. MVC guarantees each snapshot joins coherently: an
	// order present in A2's join feed is never missing from A1's, so no
	// customer is ever mis-selected because of maintenance skew.
	stop := make(chan struct{})
	bad := make(chan string, 1)
	selections := 0
	go func() {
		defer close(bad)
		for {
			select {
			case <-stop:
				return
			default:
			}
			views, err := sys.Read("A1", "A2")
			if err != nil {
				bad <- err.Error()
				return
			}
			selections++
			// Client-side join of the two materialized sub-views: the
			// promotion view V = A1 ⋈ A2 (naturally joining on Cust,Order).
			v := joinAux(views["A1"], views["A2"])
			// Cross-check: every selected (Cust, Order) pair must be
			// supported by BOTH views — mutual consistency means the join
			// is never dangling.
			for _, t := range v.Tuples() {
				pair := whips.T(t[0].Int(), t[2].Int()) // (Cust, Order)
				// A1 is (Cust, Region, Order): match positions 0 and 2.
				// A2 is (Cust, Order, Spend): the order id is position 1.
				if !contains(views["A1"], 0, 2, pair) || !contains(views["A2"], 1, 0, whips.T(t[2].Int())) {
					bad <- fmt.Sprintf("dangling joined row %v", t)
					return
				}
			}
		}
	}()

	// OLTP workload: customers sign up, place orders, order items.
	rng := rand.New(rand.NewSource(11))
	regions := []string{"east", "west"}
	nextOrder := 0
	var orders []int
	for i := 0; i < 40; i++ {
		switch rng.Intn(3) {
		case 0:
			cust := rng.Intn(6)
			_, err = sys.Execute("oltp", whips.Insert("Cust", custSchema,
				whips.T(cust, regions[cust%2])))
		case 1:
			nextOrder++
			orders = append(orders, nextOrder)
			_, err = sys.Execute("oltp", whips.Insert("Orders", orderSchema,
				whips.T(rng.Intn(6), nextOrder)))
		default:
			if len(orders) == 0 {
				continue
			}
			o := orders[rng.Intn(len(orders))]
			_, err = sys.Execute("oltp", whips.Insert("Items", itemSchema,
				whips.T(o, 10+rng.Intn(90))))
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	if !sys.WaitFresh(10 * time.Second) {
		log.Fatal("warehouse did not become fresh")
	}
	close(stop)
	if v, open := <-bad; open && v != "" {
		log.Fatalf("INCONSISTENT SELECTION: %s", v)
	}

	// Final check: the client-side join equals the three-way join at the
	// final source state.
	views, err := sys.Read("A1", "A2")
	if err != nil {
		log.Fatal(err)
	}
	got := joinAux(views["A1"], views["A2"])
	full := whips.JoinAll(whips.Scan("Cust", custSchema), whips.Scan("Orders", orderSchema), whips.Scan("Items", itemSchema))
	want, err := whips.EvalView(full, sys.Cluster().DatabaseAt(sys.SourceSeq()))
	if err != nil {
		log.Fatal(err)
	}
	if !got.Equal(want) {
		log.Fatalf("promotion list diverged:\n got %v\nwant %v", got, want)
	}

	rep, err := sys.Consistency()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d promotion recomputations from auxiliary views, all coherent\n", selections)
	fmt.Printf("final promotion list (%d rows) matches Cust⋈Orders⋈Items exactly\n", got.Cardinality())
	fmt.Printf("MVC level: convergent=%v strong=%v complete=%v\n", rep.Convergent, rep.Strong, rep.Complete)
	if !rep.Complete {
		log.Fatalf("expected complete MVC, got %+v", rep)
	}
	fmt.Println("OK")
}

// joinAux natural-joins the two auxiliary view snapshots client-side.
func joinAux(a1, a2 *whips.Relation) *whips.Relation {
	e := whips.MustJoin(
		whips.Scan("A1", a1.Schema()),
		whips.Scan("A2", a2.Schema()),
	)
	out, err := whips.EvalView(e, dbOf(map[string]*whips.Relation{"A1": a1, "A2": a2}))
	if err != nil {
		log.Fatal(err)
	}
	return out
}

type dbOf map[string]*whips.Relation

func (d dbOf) Relation(name string) (*whips.Relation, error) {
	r, ok := d[name]
	if !ok {
		return nil, fmt.Errorf("no relation %q", name)
	}
	return r, nil
}

// contains reports whether view r has a tuple whose columns [i..j] match
// key (j exclusive semantics simplified: compares positions i and i+1 when
// key has two values, position i when one).
func contains(r *whips.Relation, i, j int, key whips.Tuple) bool {
	found := false
	r.Each(func(t whips.Tuple, n int64) bool {
		if len(key) == 1 {
			if t[i].Equal(key[0]) {
				found = true
				return false
			}
			return true
		}
		if t[i].Equal(key[0]) && t[j].Equal(key[1]) {
			found = true
			return false
		}
		return true
	})
	return found
}
