// Multisource demonstrates §6.2: transactions spanning sources. "If we
// have V1 = R and V2 = S, and a source transaction inserts one tuple into
// R and one tuple into S, then the new tuples should appear in both views
// at the same time." Even though V1 and V2 share no base data, the
// transaction couples them: its updates must reach the warehouse as one
// atomic unit.
//
// The example models a supply chain where a shipment atomically decrements
// warehouse stock (source A) and increments store inventory (source B).
// Readers verify that total goods are conserved in every snapshot.
//
// Run with:
//
//	go run ./examples/multisource
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"whips"
)

const (
	items        = 3
	initialStock = 500
	shipments    = 40
)

func main() {
	stockSchema := whips.MustSchema("Item:int", "Qty:int")

	stock := whips.NewRelation(stockSchema)
	store := whips.NewRelation(stockSchema)
	for i := 0; i < items; i++ {
		if err := stock.Insert(whips.T(i, initialStock), 1); err != nil {
			log.Fatal(err)
		}
		if err := store.Insert(whips.T(i, 0), 1); err != nil {
			log.Fatal(err)
		}
	}

	sys, err := whips.New(whips.Config{
		Sources: []whips.SourceDef{
			{ID: "depot", Relations: map[string]*whips.Relation{"Stock": stock}},
			{ID: "store", Relations: map[string]*whips.Relation{"Store": store}},
		},
		Views: []whips.ViewDef{
			{ID: "VStock", Expr: whips.Scan("Stock", stockSchema), Manager: whips.Complete},
			{ID: "VStore", Expr: whips.Scan("Store", stockSchema), Manager: whips.Complete},
		},
		LogStates: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	stop := make(chan struct{})
	bad := make(chan string, 1)
	reads := 0
	go func() {
		defer close(bad)
		for {
			select {
			case <-stop:
				return
			default:
			}
			views, err := sys.Read("VStock", "VStore")
			if err != nil {
				bad <- err.Error()
				return
			}
			reads++
			for i := 0; i < items; i++ {
				total := qty(views["VStock"], i) + qty(views["VStore"], i)
				if total != initialStock {
					bad <- fmt.Sprintf("item %d: stock+store = %d, want %d — shipment observed half-applied",
						i, total, initialStock)
					return
				}
			}
		}
	}()

	rng := rand.New(rand.NewSource(13))
	depotQty := make([]int, items)
	storeQty := make([]int, items)
	for i := range depotQty {
		depotQty[i] = initialStock
	}
	for s := 0; s < shipments; s++ {
		i := rng.Intn(items)
		n := 1 + rng.Intn(20)
		if depotQty[i] < n {
			continue
		}
		// One global transaction touching both sources (§6.2): the update
		// report carries both writes under one sequence number, the
		// integrator builds one RELᵢ covering both views, and the merge
		// process applies both action lists in one warehouse transaction.
		_, err := sys.ExecuteGlobal(
			whips.Modify("Stock", stockSchema, whips.T(i, depotQty[i]), whips.T(i, depotQty[i]-n)),
			whips.Modify("Store", stockSchema, whips.T(i, storeQty[i]), whips.T(i, storeQty[i]+n)),
		)
		if err != nil {
			log.Fatal(err)
		}
		depotQty[i] -= n
		storeQty[i] += n
	}

	if !sys.WaitFresh(10 * time.Second) {
		log.Fatal("warehouse did not become fresh")
	}
	close(stop)
	if v, open := <-bad; open && v != "" {
		log.Fatalf("INCONSISTENT READ: %s", v)
	}

	rep, err := sys.Consistency()
	if err != nil {
		log.Fatal(err)
	}
	views, _ := sys.Read("VStock", "VStore")
	fmt.Printf("%d cross-source shipments, %d concurrent reads, all conserved\n", shipments, reads)
	for i := 0; i < items; i++ {
		fmt.Printf("item %d: depot=%d store=%d\n", i, qty(views["VStock"], i), qty(views["VStore"], i))
	}
	fmt.Printf("MVC: convergent=%v strong=%v complete=%v\n", rep.Convergent, rep.Strong, rep.Complete)
	if !rep.Complete {
		log.Fatalf("expected complete MVC, got %+v", rep)
	}
	fmt.Println("OK: cross-source transactions applied atomically at the warehouse")
}

func qty(r *whips.Relation, item int) int {
	var out int
	r.Each(func(t whips.Tuple, n int64) bool {
		if t[0].Int() == int64(item) {
			out = int(t[1].Int())
			return false
		}
		return true
	})
	return out
}
