module whips

go 1.22
