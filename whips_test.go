package whips

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"whips/internal/consistency"
	"whips/internal/expr"
	"whips/internal/msg"
)

var (
	rSchema = MustSchema("A:int", "B:int")
	sSchema = MustSchema("B:int", "C:int")
	tSchema = MustSchema("C:int", "D:int")
	qSchema = MustSchema("E:int")
)

// paperConfig wires the paper's running example: sources holding R, S, T
// and views V1 = R⋈S and V2 = S⋈T.
func paperConfig(kind ManagerKind) Config {
	return Config{
		Sources: []SourceDef{
			{ID: "src1", Relations: map[string]*Relation{
				"R": FromTuples(rSchema, T(1, 2)),
				"S": NewRelation(sSchema),
			}},
			{ID: "src2", Relations: map[string]*Relation{
				"T": FromTuples(tSchema, T(3, 4)),
			}},
		},
		Views: []ViewDef{
			{ID: "V1", Expr: MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Manager: kind},
			{ID: "V2", Expr: MustJoin(Scan("S", sSchema), Scan("T", tSchema)), Manager: kind},
		},
		LogStates: true,
	}
}

func startSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func waitFresh(t *testing.T, sys *System) {
	t.Helper()
	if !sys.WaitFresh(10 * time.Second) {
		t.Fatalf("system did not reach freshness; upto=%v targets=%v",
			sys.Warehouse().Upto(), map[ViewID]UpdateID{})
	}
}

// TestExample1Table1 reproduces the paper's Table 1 end state: after
// inserting [2 3] into S, V1 = {[1 2 3]} and V2 = {[2 3 4]}, applied to the
// warehouse in a single transaction so no reader ever sees the t2
// inconsistency window.
func TestExample1Table1(t *testing.T) {
	sys := startSystem(t, paperConfig(Complete))
	if sys.Algorithm() != SPA {
		t.Fatalf("complete managers should select SPA, got %v", sys.Algorithm())
	}
	if _, err := sys.Execute("src1", Insert("S", sSchema, T(2, 3))); err != nil {
		t.Fatal(err)
	}
	waitFresh(t, sys)
	views, err := sys.Read("V1", "V2")
	if err != nil {
		t.Fatal(err)
	}
	wantV1 := FromTuples(MustSchema("A:int", "B:int", "C:int"), T(1, 2, 3))
	wantV2 := FromTuples(MustSchema("B:int", "C:int", "D:int"), T(2, 3, 4))
	if !views["V1"].Equal(wantV1) {
		t.Errorf("V1 = %v, want %v", views["V1"], wantV1)
	}
	if !views["V2"].Equal(wantV2) {
		t.Errorf("V2 = %v, want %v", views["V2"], wantV2)
	}
	// Both views advanced in one warehouse transaction: exactly one commit.
	if got := sys.Warehouse().Applied(); got != 1 {
		t.Errorf("transactions applied = %d, want 1", got)
	}
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("run should be complete under MVC: %+v", rep)
	}
}

// TestExample1WithoutCoordination shows the problem the paper opens with:
// forwarding action lists uncoordinated (Forward merge) lets the warehouse
// reflect U1 in V1 before V2 — the checker sees per-view consistency but
// the t2-style joint state may appear. (Because each AL is its own
// transaction, a run with one update always exposes the window.)
func TestExample1WithoutCoordination(t *testing.T) {
	cfg := paperConfig(Complete)
	alg := ForwardMerge
	cfg.Algorithm = &alg
	sys := startSystem(t, cfg)
	if _, err := sys.Execute("src1", Insert("S", sSchema, T(2, 3))); err != nil {
		t.Fatal(err)
	}
	waitFresh(t, sys)
	if got := sys.Warehouse().Applied(); got != 2 {
		t.Fatalf("forward mode should apply 2 separate txns, got %d", got)
	}
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	// Each view alone is perfectly maintained...
	for id, v := range rep.PerView {
		if !v.Complete {
			t.Errorf("view %s should be complete in isolation: %+v", id, v)
		}
	}
	// ...but the vector passes through a state matching no source state.
	if rep.Complete || rep.Strong {
		t.Errorf("uncoordinated run must not be MVC-consistent: %+v", rep)
	}
	if !rep.Convergent {
		t.Errorf("uncoordinated run must still converge: %+v", rep)
	}
}

// runWorkload executes n random updates against R, S, T.
func runWorkload(t *testing.T, sys *System, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Track source contents so deletes always hit existing tuples.
	type key struct {
		rel string
		t   string
	}
	live := map[key]Tuple{}
	rels := []struct {
		name   string
		schema *Schema
		src    SourceID
	}{
		{"R", rSchema, "src1"}, {"S", sSchema, "src1"}, {"T", tSchema, "src2"},
	}
	for i := 0; i < n; i++ {
		r := rels[rng.Intn(len(rels))]
		tu := T(rng.Intn(4), rng.Intn(4))
		k := key{r.name, tu.Key()}
		var w Write
		if _, ok := live[k]; ok && rng.Intn(2) == 0 {
			w = Delete(r.name, r.schema, tu)
			delete(live, k)
		} else if _, ok := live[k]; !ok {
			w = Insert(r.name, r.schema, tu)
			live[k] = tu
		} else {
			continue
		}
		if _, err := sys.Execute(r.src, w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomWorkloadCompleteManagersSPA(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := paperConfig(Complete)
			cfg.Jitter = 300 * time.Microsecond
			cfg.Seed = seed
			sys := startSystem(t, cfg)
			runWorkload(t, sys, seed, 40)
			waitFresh(t, sys)
			rep, err := sys.Consistency()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Complete {
				t.Errorf("SPA with complete managers must be complete: %+v", rep)
			}
		})
	}
}

func TestRandomWorkloadBatchingManagersPA(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := paperConfig(Batching)
			// A real compute delay makes updates intertwine into batches.
			for i := range cfg.Views {
				cfg.Views[i].ComputeDelay = func(n int) int64 { return int64(200_000) } // 0.2ms
			}
			cfg.Jitter = 200 * time.Microsecond
			cfg.Seed = seed
			sys := startSystem(t, cfg)
			if sys.Algorithm() != PA {
				t.Fatalf("batching managers should select PA, got %v", sys.Algorithm())
			}
			runWorkload(t, sys, seed, 40)
			waitFresh(t, sys)
			rep, err := sys.Consistency()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Strong {
				t.Errorf("PA with batching managers must be strongly consistent: %+v (violation: %s)",
					rep, rep.Violation)
			}
		})
	}
}

func TestRandomWorkloadQueryManagers(t *testing.T) {
	cfg := paperConfig(CompleteQuery)
	cfg.Jitter = 200 * time.Microsecond
	cfg.Seed = 7
	sys := startSystem(t, cfg)
	runWorkload(t, sys, 7, 25)
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("query-based complete managers must be complete: %+v", rep)
	}
}

func TestRandomWorkloadQueryBatchingManagers(t *testing.T) {
	cfg := paperConfig(QueryBatching)
	cfg.Jitter = 200 * time.Microsecond
	cfg.Seed = 11
	sys := startSystem(t, cfg)
	runWorkload(t, sys, 11, 30)
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Errorf("query-batching managers must be strongly consistent: %+v", rep)
	}
}

func TestRandomWorkloadConvergentManagers(t *testing.T) {
	cfg := paperConfig(Convergent)
	for i := range cfg.Views {
		cfg.Views[i].ComputeDelay = func(n int) int64 { return 300_000 }
	}
	cfg.Jitter = 200 * time.Microsecond
	cfg.Seed = 13
	sys := startSystem(t, cfg)
	if sys.Algorithm() != ForwardMerge {
		t.Fatalf("convergent managers should select forward merge, got %v", sys.Algorithm())
	}
	runWorkload(t, sys, 13, 30)
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Convergent {
		t.Errorf("convergent run must converge: %+v", rep)
	}
}

func TestMixedManagersUsePA(t *testing.T) {
	cfg := paperConfig(Complete)
	cfg.Views[1].Manager = Batching // mixed fleet → weakest is strong → PA
	sys := startSystem(t, cfg)
	if sys.Algorithm() != PA {
		t.Errorf("mixed complete+strong should use PA, got %v", sys.Algorithm())
	}
	runWorkload(t, sys, 17, 25)
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Errorf("mixed fleet must be strongly consistent: %+v", rep)
	}
}

func TestCompleteNAndRefreshManagers(t *testing.T) {
	cfg := paperConfig(CompleteN)
	cfg.Views[0].Param = 2
	cfg.Views[1].Manager = Refresh
	cfg.Views[1].Param = 3
	sys := startSystem(t, cfg)
	// Drive 12 updates on S (relevant to both views): multiples of 2 and 3.
	for i := 0; i < 12; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(i, i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Errorf("complete-N + refresh must be strongly consistent: %+v (%s)", rep, rep.Violation)
	}
	upto := sys.Warehouse().Upto()
	if upto["V1"] != 12 || upto["V2"] != 12 {
		t.Errorf("upto = %v, want both views at 12", upto)
	}
}

func TestMultiSourceTransactions(t *testing.T) {
	// §6.2: one transaction updates S (src1) and T (src2); both views must
	// advance in one warehouse transaction.
	sys := startSystem(t, paperConfig(Complete))
	if _, err := sys.ExecuteGlobal(
		Insert("S", sSchema, T(2, 3)),
		Insert("T", tSchema, T(3, 9)),
	); err != nil {
		t.Fatal(err)
	}
	waitFresh(t, sys)
	if got := sys.Warehouse().Applied(); got != 1 {
		t.Errorf("global txn should be one warehouse txn, got %d", got)
	}
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("multi-source run should be complete: %+v", rep)
	}
	views, _ := sys.Read("V2")
	if !views["V2"].Contains(T(2, 3, 4)) || !views["V2"].Contains(T(2, 3, 9)) {
		t.Errorf("V2 = %v", views["V2"])
	}
}

func TestDistributedMerge(t *testing.T) {
	// §6.1: V1 = R⋈S and V2 = S⋈T share S (one group); V3 = Q is disjoint
	// (its own group and merge process).
	cfg := paperConfig(Complete)
	cfg.Sources = append(cfg.Sources, SourceDef{ID: "src3", Relations: map[string]*Relation{
		"Q": NewRelation(qSchema),
	}})
	cfg.Views = append(cfg.Views, ViewDef{ID: "V3", Expr: Scan("Q", qSchema), Manager: Complete})
	cfg.DistributedMerge = true
	sys := startSystem(t, cfg)
	groups := sys.MergeGroups()
	if groups["V1"] != groups["V2"] || groups["V3"] == groups["V1"] {
		t.Fatalf("partition = %v", groups)
	}
	runWorkload(t, sys, 23, 30)
	for i := 0; i < 5; i++ {
		if _, err := sys.Execute("src3", Insert("Q", qSchema, T(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	// Each group is complete in isolation.
	repA, err := consistency.Check(sys.Cluster(),
		map[msg.ViewID]expr.Expr{"V1": sys.sys.Views["V1"], "V2": sys.sys.Views["V2"]},
		sys.Warehouse().Log())
	if err != nil {
		t.Fatal(err)
	}
	if !repA.Complete {
		t.Errorf("group {V1,V2} must be complete: %+v (%s)", repA, repA.Violation)
	}
	repB, err := consistency.Check(sys.Cluster(),
		map[msg.ViewID]expr.Expr{"V3": sys.sys.Views["V3"]},
		sys.Warehouse().Log())
	if err != nil {
		t.Fatal(err)
	}
	if !repB.Complete {
		t.Errorf("group {V3} must be complete: %+v (%s)", repB, repB.Violation)
	}
}

func TestCommitStrategies(t *testing.T) {
	for _, kind := range []CommitKind{Sequential, Dependency, Batched} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := paperConfig(Complete)
			cfg.Commit = kind
			cfg.BatchSize = 3
			cfg.FlushAfter = 500 * time.Microsecond
			sys := startSystem(t, cfg)
			runWorkload(t, sys, 31, 30)
			waitFresh(t, sys)
			rep, err := sys.Consistency()
			if err != nil {
				t.Fatal(err)
			}
			if kind == Batched {
				// §4.3: batching yields strong, not complete, consistency.
				if !rep.Strong {
					t.Errorf("batched commits must stay strong: %+v (%s)", rep, rep.Violation)
				}
			} else if !rep.Complete {
				t.Errorf("%v commits must preserve completeness: %+v (%s)", kind, rep, rep.Violation)
			}
		})
	}
}

func TestRelevanceFilter(t *testing.T) {
	// V1 = σ_{A=1}(R) ⋈ S: updates to R with A≠1 are provably irrelevant
	// and must not reach the view manager or the merge process.
	cfg := Config{
		Sources: []SourceDef{{ID: "src1", Relations: map[string]*Relation{
			"R": NewRelation(rSchema),
			"S": FromTuples(sSchema, T(2, 3)),
		}}},
		Views: []ViewDef{{
			ID:      "V1",
			Expr:    MustJoin(MustSelect(Scan("R", rSchema), Cmp("A", Eq, 1)), Scan("S", sSchema)),
			Manager: Complete,
		}},
		RelevanceFilter: true,
		LogStates:       true,
	}
	sys := startSystem(t, cfg)
	if _, err := sys.Execute("src1", Insert("R", rSchema, T(9, 2))); err != nil { // irrelevant
		t.Fatal(err)
	}
	if _, err := sys.Execute("src1", Insert("R", rSchema, T(1, 2))); err != nil { // relevant
		t.Fatal(err)
	}
	waitFresh(t, sys)
	if got := sys.Warehouse().Applied(); got != 1 {
		t.Errorf("only the relevant update should reach the warehouse, got %d txns", got)
	}
	views, _ := sys.Read("V1")
	if !views["V1"].Contains(T(1, 2, 3)) || views["V1"].Cardinality() != 1 {
		t.Errorf("V1 = %v", views["V1"])
	}
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("filtered run should still be complete: %+v", rep)
	}
}

func TestAggregateView(t *testing.T) {
	sales := MustSchema("Region:string", "Amount:int")
	cfg := Config{
		Sources: []SourceDef{{ID: "src", Relations: map[string]*Relation{
			"Sales": NewRelation(sales),
		}}},
		Views: []ViewDef{{
			ID: "ByRegion",
			Expr: MustAggregate(Scan("Sales", sales), []string{"Region"},
				[]AggSpec{{Op: Count, As: "N"}, {Op: Sum, Attr: "Amount", As: "Total"}}),
			Manager: Complete,
		}},
		LogStates: true,
	}
	sys := startSystem(t, cfg)
	for i, amt := range []int{10, 20, 5} {
		region := "east"
		if i == 2 {
			region = "west"
		}
		if _, err := sys.Execute("src", Insert("Sales", sales, T(region, amt))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Execute("src", Delete("Sales", sales, T("east", 10))); err != nil {
		t.Fatal(err)
	}
	waitFresh(t, sys)
	views, _ := sys.Read("ByRegion")
	if !views["ByRegion"].Contains(T("east", 1, 20)) || !views["ByRegion"].Contains(T("west", 1, 5)) {
		t.Errorf("ByRegion = %v", views["ByRegion"])
	}
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("aggregate view run should be complete: %+v", rep)
	}
}

func TestExecuteErrors(t *testing.T) {
	sys, err := New(paperConfig(Complete))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute("src1", Insert("S", sSchema, T(1, 1))); err == nil {
		t.Error("Execute before Start must fail")
	}
	sys.Start()
	defer sys.Stop()
	if _, err := sys.Execute("nope", Insert("S", sSchema, T(1, 1))); err == nil {
		t.Error("unknown source must fail")
	}
	if _, err := sys.Execute("src1", Delete("S", sSchema, T(9, 9))); err == nil {
		t.Error("invalid delete must fail")
	}
	if _, err := sys.Read("ghost"); err == nil {
		t.Error("reading unknown view must fail")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	cfg := paperConfig(Complete)
	cfg.Views = append(cfg.Views, cfg.Views[0]) // duplicate id
	if _, err := New(cfg); err == nil {
		t.Error("duplicate view must fail")
	}
	cfg = paperConfig(Complete)
	cfg.Views[0].Expr = Scan("Ghost", rSchema)
	if _, err := New(cfg); err == nil {
		t.Error("view over unknown relation must fail")
	}
}

func TestReadSnapshotAlwaysMutuallyConsistent(t *testing.T) {
	// Concurrent readers during a workload must always see a view vector
	// matching some source state (the §1.1 customer-inquiry property).
	cfg := paperConfig(Complete)
	sys := startSystem(t, cfg)
	done := make(chan struct{})
	var bad error
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			views, err := sys.Read("V1", "V2")
			if err != nil {
				bad = err
				return
			}
			// V1 and V2 must agree on S: project both onto (B,C).
			p1, _ := expr.Eval(expr.MustProject(expr.NewConst(views["V1"].Schema(), views["V1"].AsDelta()), "B", "C"), nil)
			p2, _ := expr.Eval(expr.MustProject(expr.NewConst(views["V2"].Schema(), views["V2"].AsDelta()), "B", "C"), nil)
			_ = p1
			_ = p2
		}
	}()
	runWorkload(t, sys, 41, 30)
	<-done
	if bad != nil {
		t.Fatal(bad)
	}
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("run should be complete: %+v", rep)
	}
}

// TestHistoryGarbageCollection: without state logging, source version
// history is trimmed as views catch up, so long-running systems do not
// accumulate unbounded version chains.
func TestHistoryGarbageCollection(t *testing.T) {
	cfg := paperConfig(Complete)
	cfg.LogStates = false // enables GC
	sys := startSystem(t, cfg)
	for i := 0; i < 300; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(i, i%5))); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			sys.WaitFresh(5 * time.Second) // let views catch up periodically
		}
	}
	waitFresh(t, sys)
	// One more batch pushes another GC cycle past the high-water mark.
	for i := 0; i < 70; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(1000+i, i%5))); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	if hs := sys.Cluster().HistorySize(); hs >= 370 {
		t.Errorf("history not trimmed: %d entries", hs)
	}
	// The final contents are still correct.
	views, _ := sys.Read("V1", "V2")
	want, err := EvalView(MustJoin(Scan("R", rSchema), Scan("S", sSchema)),
		sys.Cluster().DatabaseAt(sys.SourceSeq()))
	if err != nil {
		t.Fatal(err)
	}
	if !views["V1"].Equal(want) {
		t.Errorf("V1 diverged after GC")
	}
}

// TestRelayedRelevantSets runs the §3.2 alternative REL routing end-to-end
// under chaos jitter for both SPA and PA fleets: consistency levels must be
// identical to direct routing.
func TestRelayedRelevantSets(t *testing.T) {
	for _, kind := range []ManagerKind{Complete, Batching, CompleteQuery, QueryBatching} {
		kind := kind
		t.Run(fmt.Sprintf("%v", kind), func(t *testing.T) {
			cfg := paperConfig(kind)
			cfg.RelayRelevantSets = true
			cfg.Jitter = 300 * time.Microsecond
			cfg.Seed = 21
			if kind == Batching {
				for i := range cfg.Views {
					cfg.Views[i].ComputeDelay = func(int) int64 { return 200_000 }
				}
			}
			sys := startSystem(t, cfg)
			runWorkload(t, sys, 21, 35)
			waitFresh(t, sys)
			rep, err := sys.Consistency()
			if err != nil {
				t.Fatal(err)
			}
			want := LevelStrong
			if kind == Complete || kind == CompleteQuery {
				want = LevelComplete
			}
			if rep.Level() < want {
				t.Errorf("relayed %v: level %v, want ≥ %v (%s)", kind, rep.Level(), want, rep.Violation)
			}
		})
	}
}

// TestRelayedCompleteNFlushesRELs: complete-N managers hold updates below
// the boundary, so their carried RELs must flush immediately or other
// views would starve.
func TestRelayedCompleteNFlushesRELs(t *testing.T) {
	cfg := paperConfig(CompleteN)
	cfg.Views[0].Param = 3
	cfg.Views[1].Manager = Complete // must not starve behind V1's held RELs
	cfg.RelayRelevantSets = true
	sys := startSystem(t, cfg)
	// Updates relevant to both views; V1 (carrier, first alphabetically)
	// holds them below its boundary of 3.
	for i := 0; i < 7; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(i, i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Errorf("complete-N relay run must stay strong: %+v (%s)", rep, rep.Violation)
	}
	// Updates 1-6 flow (two complete-3 boundaries); update 7 is correctly
	// held below V1's boundary — and because it is relevant to BOTH views,
	// MVC holds it back from V2 too rather than splitting the atomic unit.
	upto := sys.Warehouse().Upto()
	if upto["V1"] != 6 || upto["V2"] != 6 {
		t.Errorf("upto = %v, want both views coordinated at 6", upto)
	}
}

// TestStagedRefreshEndToEnd exercises §6.3's coordinate-commit-only mode:
// a refresh view ships its (potentially large) diffs straight to the
// warehouse while the merge process coordinates tokens; consistency is
// unchanged and the merge handles zero delta tuples for that view.
func TestStagedRefreshEndToEnd(t *testing.T) {
	cfg := paperConfig(Refresh)
	cfg.Views[0].Param = 2
	cfg.Views[0].StageData = true
	cfg.Views[1].Param = 2
	sys := startSystem(t, cfg)
	for i := 0; i < 10; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(i, i%4))); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Errorf("staged refresh run must stay strong: %+v (%s)", rep, rep.Violation)
	}
	// V2's (inline) deltas flow through the merge; V1's (staged) do not —
	// the merge saw strictly fewer delta tuples than the warehouse applied.
	var mergeTuples int64
	for _, st := range sys.MergeStats() {
		mergeTuples += st.DeltaTuples
	}
	if mergeTuples == 0 {
		t.Error("inline view's deltas should pass through the merge")
	}
	// Final contents still correct despite the out-of-band path.
	ok, err := consistency.FinalMatches(sys.Cluster(), sys.sys.Views, sys.ReadAll())
	if err != nil || !ok {
		t.Errorf("final contents diverged: ok=%v err=%v", ok, err)
	}
}

// TestKitchenSink combines every feature at once: a mixed manager fleet
// (complete + batching + refresh-with-staging), relevance filtering,
// relayed RELs, dependency commits, multi-source transactions, chaos
// jitter, and concurrent readers — then demands strong MVC.
func TestKitchenSink(t *testing.T) {
	agg := MustAggregate(Scan("S", sSchema), []string{"B"}, []AggSpec{
		{Op: Count, As: "N"}, {Op: Sum, Attr: "C", As: "Sum"},
	})
	cfg := Config{
		Sources: []SourceDef{
			{ID: "src1", Relations: map[string]*Relation{
				"R": FromTuples(rSchema, T(1, 2)),
				"S": NewRelation(sSchema),
			}},
			{ID: "src2", Relations: map[string]*Relation{
				"T": FromTuples(tSchema, T(3, 4)),
			}},
		},
		Views: []ViewDef{
			{ID: "V1", Expr: MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Manager: Complete},
			{ID: "V2", Expr: MustJoin(Scan("S", sSchema), Scan("T", tSchema)), Manager: Batching,
				ComputeDelay: func(int) int64 { return 150_000 }},
			{ID: "V3", Expr: agg, Manager: Batching,
				ComputeDelay: func(int) int64 { return 100_000 }, StageData: true},
			{ID: "V4", Expr: MustSelect(Scan("S", sSchema), Cmp("C", Ge, 2)), Manager: Complete},
		},
		Commit:            Dependency,
		RelevanceFilter:   true,
		RelayRelevantSets: true,
		LogStates:         true,
		Jitter:            250 * time.Microsecond,
		Seed:              77,
	}
	sys := startSystem(t, cfg)

	stop := make(chan struct{})
	var readErr error
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Read("V1", "V2", "V3", "V4"); err != nil {
				readErr = err
				return
			}
		}
	}()

	runWorkload(t, sys, 77, 50)
	// Sprinkle in multi-source transactions (§6.2).
	for i := 0; i < 5; i++ {
		if _, err := sys.ExecuteGlobal(
			Insert("S", sSchema, T(10+i, 3)),
			Insert("T", tSchema, T(3, 100+i)),
		); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	close(stop)
	if readErr != nil {
		t.Fatal(readErr)
	}
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Errorf("kitchen sink must be strongly consistent: %+v (%s)", rep, rep.Violation)
	}
	ok, err := consistency.FinalMatches(sys.Cluster(), sys.sys.Views, sys.ReadAll())
	if err != nil || !ok {
		t.Errorf("final contents diverged: ok=%v err=%v", ok, err)
	}
}

// TestOptimizeViewsEndToEnd runs the same workload with and without view
// optimization; contents and consistency level must be identical.
func TestOptimizeViewsEndToEnd(t *testing.T) {
	run := func(optimize bool) (map[ViewID]*Relation, bool) {
		cfg := Config{
			Sources: []SourceDef{{ID: "src1", Relations: map[string]*Relation{
				"R": NewRelation(rSchema),
				"S": NewRelation(sSchema),
			}}},
			Views: []ViewDef{{
				ID: "V",
				Expr: MustProject(
					MustSelect(MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Cmp("C", Ge, 2)),
					"A", "C"),
				Manager: Complete,
			}},
			OptimizeViews: optimize,
			LogStates:     true,
		}
		sys := startSystem(t, cfg)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 30; i++ {
			var w Write
			if rng.Intn(2) == 0 {
				w = Insert("R", rSchema, T(rng.Intn(5), rng.Intn(5)))
			} else {
				w = Insert("S", sSchema, T(rng.Intn(5), rng.Intn(5)))
			}
			if _, err := sys.Execute("src1", w); err != nil {
				t.Fatal(err)
			}
		}
		waitFresh(t, sys)
		rep, err := sys.Consistency()
		if err != nil {
			t.Fatal(err)
		}
		return sys.ReadAll(), rep.Complete
	}
	plain, okPlain := run(false)
	opt, okOpt := run(true)
	if !okPlain || !okOpt {
		t.Errorf("completeness: plain=%v optimized=%v", okPlain, okOpt)
	}
	if !plain["V"].Equal(opt["V"]) {
		t.Errorf("optimized run diverged:\n  %v\n  %v", plain["V"], opt["V"])
	}
}

// TestHistoricalReads exercises time-travel queries over the warehouse
// state log: every recorded state is itself a consistent vector.
func TestHistoricalReads(t *testing.T) {
	sys := startSystem(t, paperConfig(Complete))
	for i := 0; i < 5; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(i, 3))); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	if sys.States() != 6 {
		t.Fatalf("states = %d, want 6 (initial + 5 txns)", sys.States())
	}
	// V2 grows by one row per state (every S tuple joins T's [3 4]).
	for i := 0; i < sys.States(); i++ {
		views, err := sys.ReadAt(i, "V2")
		if err != nil {
			t.Fatal(err)
		}
		if got := views["V2"].Cardinality(); got != int64(i) {
			t.Errorf("state %d: V2 has %d rows, want %d", i, got, i)
		}
	}
	if _, err := sys.ReadAt(99, "V2"); err == nil {
		t.Error("out-of-range state must fail")
	}
}

// TestSettle: message quiescence through the facade.
func TestSettle(t *testing.T) {
	sys := startSystem(t, paperConfig(Complete))
	for i := 0; i < 10; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(i, 3))); err != nil {
			t.Fatal(err)
		}
	}
	if !sys.Settle(10 * time.Second) {
		t.Fatal("system did not settle")
	}
	// Settled ⇒ fresh for per-update managers.
	upto := sys.Warehouse().Upto()
	if upto["V1"] != 10 || upto["V2"] != 10 {
		t.Errorf("after settle: upto = %v", upto)
	}
}

// TestSetOpView maintains an EXCEPT ALL view end-to-end: "S rows whose C
// does not appear in T's C column" — a non-linear view the counting
// algorithm alone cannot handle, exercising the affected-tuple delta path
// through the whole pipeline.
func TestSetOpView(t *testing.T) {
	projS := MustProject(Scan("S", sSchema), "C")
	projT := MustProject(Scan("T", tSchema), "C")
	cfg := Config{
		Sources: []SourceDef{
			{ID: "src1", Relations: map[string]*Relation{"S": NewRelation(sSchema)}},
			{ID: "src2", Relations: map[string]*Relation{"T": NewRelation(tSchema)}},
		},
		Views: []ViewDef{
			{ID: "Uncovered", Expr: MustExcept(projS, projT), Manager: Complete},
			{ID: "Covered", Expr: MustIntersect(projS, projT), Manager: Complete},
		},
		LogStates: true,
	}
	sys := startSystem(t, cfg)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		if rng.Intn(2) == 0 {
			if _, err := sys.Execute("src1", Insert("S", sSchema, T(rng.Intn(4), rng.Intn(4)))); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := sys.Execute("src2", Insert("T", tSchema, T(rng.Intn(4), rng.Intn(4)))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFresh(t, sys)
	rep, err := sys.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("set-op views must stay complete: %+v (%s)", rep, rep.Violation)
	}
	ok, err := consistency.FinalMatches(sys.Cluster(), sys.sys.Views, sys.ReadAll())
	if err != nil || !ok {
		t.Errorf("final contents diverged: ok=%v err=%v", ok, err)
	}
}

func TestSystemStats(t *testing.T) {
	sys := startSystem(t, paperConfig(Complete))
	for i := 0; i < 5; i++ {
		if _, err := sys.Execute("src1", Insert("S", sSchema, T(i, 3))); err != nil {
			t.Fatal(err)
		}
	}
	waitFresh(t, sys)
	st := sys.Stats()
	if st.SourceSeq != 5 || st.UpdatesRouted != 5 || st.TxnsApplied != 5 || st.TxnsPending != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Merges) != 1 || st.Merges[0].TxnsSubmitted != 5 {
		t.Errorf("merge stats = %+v", st.Merges)
	}
	if st.Upto["V1"] != 5 || st.Upto["V2"] != 5 {
		t.Errorf("upto = %v", st.Upto)
	}
}

// TestRandomWorkloadWithWorkerPool runs the paper workloads with a bound
// worker pool (Config.Workers > 0), so view-manager busy periods execute
// on pool workers and re-enter the network as injected messages. The
// consistency guarantees must be exactly those of the serial runs: the
// pool only relocates where the order-independent delta work executes.
func TestRandomWorkloadWithWorkerPool(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("batching-PA-workers=%d", workers), func(t *testing.T) {
			cfg := paperConfig(Batching)
			for i := range cfg.Views {
				cfg.Views[i].ComputeDelay = func(n int) int64 { return 200_000 } // 0.2ms
			}
			cfg.Jitter = 200 * time.Microsecond
			cfg.Seed = int64(workers)
			cfg.Workers = workers
			sys := startSystem(t, cfg)
			runWorkload(t, sys, int64(workers), 40)
			waitFresh(t, sys)
			rep, err := sys.Consistency()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Strong {
				t.Errorf("PA with a %d-worker pool must stay strongly consistent: %+v (violation: %s)",
					workers, rep, rep.Violation)
			}
		})
		t.Run(fmt.Sprintf("complete-SPA-workers=%d", workers), func(t *testing.T) {
			cfg := paperConfig(Complete)
			for i := range cfg.Views {
				cfg.Views[i].ComputeDelay = func(n int) int64 { return 100_000 }
			}
			cfg.Seed = int64(workers)
			cfg.Workers = workers
			sys := startSystem(t, cfg)
			runWorkload(t, sys, int64(workers)+10, 30)
			waitFresh(t, sys)
			rep, err := sys.Consistency()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Complete {
				t.Errorf("SPA with a %d-worker pool must stay complete: %+v (violation: %s)",
					workers, rep, rep.Violation)
			}
		})
	}
}
