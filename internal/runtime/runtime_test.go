package runtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"whips/internal/msg"
)

// sink records deliveries thread-safely.
type sink struct {
	id string
	mu sync.Mutex
	ms []string
}

func (s *sink) ID() string { return s.id }

func (s *sink) Handle(m any, now int64) []msg.Outbound {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ms = append(s.ms, fmt.Sprint(m))
	return nil
}

func (s *sink) got() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.ms...)
}

// relay forwards every message to a target, optionally with a delay.
type relay struct {
	id     string
	to     string
	delay  int64
	prefix string
}

func (r *relay) ID() string { return r.id }

func (r *relay) Handle(m any, now int64) []msg.Outbound {
	return []msg.Outbound{{To: r.to, Msg: r.prefix + fmt.Sprint(m), Delay: r.delay}}
}

func TestNetworkDeliversAndStops(t *testing.T) {
	s := &sink{id: "sink"}
	r := &relay{id: "relay", to: "sink"}
	n := New([]msg.Node{s, r})
	n.Start()
	defer n.Stop()
	for i := 0; i < 10; i++ {
		n.Inject("relay", i)
	}
	if !WaitUntil(2*time.Second, func() bool { return len(s.got()) == 10 }) {
		t.Fatalf("delivered %d", len(s.got()))
	}
}

func TestNetworkFIFOPerSender(t *testing.T) {
	s := &sink{id: "sink"}
	r := &relay{id: "relay", to: "sink"}
	n := New([]msg.Node{s, r})
	n.Start()
	defer n.Stop()
	for i := 0; i < 200; i++ {
		n.Inject("relay", fmt.Sprintf("%04d", i))
	}
	if !WaitUntil(2*time.Second, func() bool { return len(s.got()) == 200 }) {
		t.Fatalf("delivered %d", len(s.got()))
	}
	got := s.got()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("reordered: %s before %s", got[i-1], got[i])
		}
	}
}

func TestNetworkFIFOUnderJitter(t *testing.T) {
	s := &sink{id: "sink"}
	r := &relay{id: "relay", to: "sink"}
	n := New([]msg.Node{s, r}, WithSeededJitter(3, 200*time.Microsecond))
	n.Start()
	defer n.Stop()
	for i := 0; i < 100; i++ {
		n.Inject("relay", fmt.Sprintf("%04d", i))
	}
	if !WaitUntil(5*time.Second, func() bool { return len(s.got()) == 100 }) {
		t.Fatalf("delivered %d", len(s.got()))
	}
	got := s.got()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("jitter reordered an edge: %s before %s", got[i-1], got[i])
		}
	}
}

func TestNetworkDelayedSelfMessages(t *testing.T) {
	s := &sink{id: "sink"}
	r := &relay{id: "relay", to: "sink", delay: int64(2 * time.Millisecond)}
	n := New([]msg.Node{s, r})
	n.Start()
	defer n.Stop()
	start := time.Now()
	n.Inject("relay", "x")
	if !WaitUntil(2*time.Second, func() bool { return len(s.got()) == 1 }) {
		t.Fatal("not delivered")
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Error("delay not honoured")
	}
}

func TestNetworkStopIsIdempotent(t *testing.T) {
	s := &sink{id: "sink"}
	n := New([]msg.Node{s})
	n.Start()
	n.Stop()
	n.Stop()
}

func TestNetworkPanicsOnDuplicateAndUnknown(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate node must panic")
			}
		}()
		New([]msg.Node{&sink{id: "a"}, &sink{id: "a"}})
	}()
	n := New([]msg.Node{&sink{id: "a"}})
	n.Start()
	defer n.Stop()
	defer func() {
		if recover() == nil {
			t.Error("unknown destination must panic")
		}
	}()
	n.Inject("ghost", "x")
}

func TestNetworkDoubleStartPanics(t *testing.T) {
	n := New([]msg.Node{&sink{id: "a"}})
	n.Start()
	defer n.Stop()
	defer func() {
		if recover() == nil {
			t.Error("double start must panic")
		}
	}()
	n.Start()
}

func TestWaitUntilTimesOut(t *testing.T) {
	start := time.Now()
	if WaitUntil(5*time.Millisecond, func() bool { return false }) {
		t.Error("should time out")
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("returned early")
	}
	if !WaitUntil(time.Second, func() bool { return true }) {
		t.Error("immediate condition should succeed")
	}
}

func TestNetworkDrain(t *testing.T) {
	s := &sink{id: "sink"}
	slow := &relay{id: "relay", to: "sink", delay: int64(2 * time.Millisecond)}
	n := New([]msg.Node{s, slow})
	n.Start()
	defer n.Stop()
	for i := 0; i < 5; i++ {
		n.Inject("relay", i)
	}
	if !n.Drain(2 * time.Second) {
		t.Fatal("network did not drain")
	}
	// Quiescence implies every message (including the delayed relays)
	// reached the sink.
	if got := len(s.got()); got != 5 {
		t.Errorf("after drain: delivered %d", got)
	}
	// An idle network drains immediately.
	if !n.Drain(time.Millisecond) {
		t.Error("idle network should report drained")
	}
}

func TestNetworkReserveBlocksDrain(t *testing.T) {
	s := &sink{id: "sink"}
	n := New([]msg.Node{s})
	n.Start()
	defer n.Stop()

	release := n.Reserve()
	// A reservation counts as in-flight work: Drain must not report
	// quiescence while it is held.
	if n.Drain(20 * time.Millisecond) {
		t.Fatal("drained while a reservation was outstanding")
	}
	release()
	if !n.Drain(2 * time.Second) {
		t.Fatal("did not drain after release")
	}
	// Releases are idempotent: calling again must not push the in-flight
	// count negative (which would let Drain lie about later work).
	release()
	release()
	n.Inject("sink", "x")
	if !n.Drain(2 * time.Second) {
		t.Fatal("did not drain after injection")
	}
	if got := len(s.got()); got != 1 {
		t.Errorf("delivered %d, want 1", got)
	}
}

// TestNetworkReserveCoversWorkerHandoff models the pool's use of Reserve:
// a node hands work to an outside goroutine, which injects the result and
// only then releases. Drain must wait for the whole handoff.
func TestNetworkReserveCoversWorkerHandoff(t *testing.T) {
	s := &sink{id: "sink"}
	n := New([]msg.Node{s})
	n.Start()
	defer n.Stop()

	release := n.Reserve()
	go func() {
		time.Sleep(5 * time.Millisecond)
		n.Inject("sink", "result")
		release()
	}()
	if !n.Drain(2 * time.Second) {
		t.Fatal("network did not drain")
	}
	if got := len(s.got()); got != 1 {
		t.Errorf("after drain: delivered %d, want the worker's result", got)
	}
}

// TestNetworkBatchedDrainDeliversAll floods a node's inbox so the batched
// drain loop takes multiple messages per wakeup, and checks nothing is
// lost or reordered.
func TestNetworkBatchedDrainDeliversAll(t *testing.T) {
	s := &sink{id: "sink"}
	r := &relay{id: "relay", to: "sink"}
	n := New([]msg.Node{s, r})
	n.Start()
	defer n.Stop()
	const total = 500
	for i := 0; i < total; i++ {
		n.Inject("relay", fmt.Sprintf("%04d", i))
	}
	if !n.Drain(5 * time.Second) {
		t.Fatal("network did not drain")
	}
	got := s.got()
	if len(got) != total {
		t.Fatalf("delivered %d of %d", len(got), total)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("batched drain reordered: %s before %s", got[i-1], got[i])
		}
	}
}
