// Package runtime executes the warehouse architecture with real
// concurrency: every process (cluster, integrator, view managers, merge
// process(es), warehouse) runs as its own goroutine, exactly the
// "separate concurrent process" design of the paper's Figure 1.
//
// Message channels guarantee FIFO per sender→receiver edge and nothing
// else — the delivery model the paper's algorithms assume (§4: "messages
// from the same process must arrive in the order sent"). An optional
// per-edge jitter delays whole edges by random amounts, shaking out
// cross-edge orderings without ever violating per-edge FIFO.
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"whips/internal/msg"
	"whips/internal/obs"
)

type envelope struct {
	to string
	m  any
}

// Network runs a set of nodes as goroutines.
type Network struct {
	nodes   map[string]msg.Node
	inboxes map[string]chan envelope

	mu         sync.Mutex
	edges      map[string]chan envelope
	jitter     func(from, to string) time.Duration
	remote     func(to string, m any)
	remoteFrom func(from, to string, m any)

	wg      sync.WaitGroup
	edgeWG  sync.WaitGroup
	timerWG sync.WaitGroup
	stop    chan struct{}
	started bool
	stopped bool

	// inFlight counts messages that have been accepted for delivery but
	// whose handling (including enqueueing the handler's own outputs) has
	// not finished — the quiescence measure Drain waits on.
	inFlight atomic.Int64

	buffer int

	msgs       *obs.Counter
	remoteMsgs *obs.Counter
	inFlightG  *obs.Gauge
	queueDepth *obs.Histogram
	drainBatch *obs.Histogram
}

// Option configures the network.
type Option func(*Network)

// WithJitter delays each sender→receiver edge by a per-message random
// duration drawn from fn. Order within an edge is preserved (the delay
// applies to the head of the edge queue), so the paper's delivery model
// still holds.
func WithJitter(fn func(from, to string) time.Duration) Option {
	return func(n *Network) { n.jitter = fn }
}

// WithSeededJitter is WithJitter with a uniform 0..max duration from a
// seeded source. Handy for reproducible-ish chaos tests.
func WithSeededJitter(seed int64, max time.Duration) Option {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return WithJitter(func(string, string) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		if max <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(max)))
	})
}

// WithBuffer sets the inbox buffer size (default 1024).
func WithBuffer(n int) Option { return func(net *Network) { net.buffer = n } }

// WithRemote routes messages addressed to nodes this network does not host
// through send — the hook the wire bridge plugs into so processes can span
// machines. Without it, an unknown destination panics.
func WithRemote(send func(to string, m any)) Option {
	return func(net *Network) { net.remote = send }
}

// WithRemoteFrom is WithRemote with the sending node's id included — the
// hook wire sessions need, since their FIFO-and-resume unit is the
// sender→receiver channel, not the connection. Takes precedence over
// WithRemote when both are set.
func WithRemoteFrom(send func(from, to string, m any)) Option {
	return func(net *Network) { net.remoteFrom = send }
}

// WithObs attaches transport metrics: messages delivered, messages handed
// to the remote hook, the in-flight count and per-delivery inbox depth.
func WithObs(p *obs.Pipeline) Option {
	return func(net *Network) {
		r := p.Reg()
		net.msgs = r.Counter("rt_msgs_total")
		net.remoteMsgs = r.Counter("rt_remote_msgs_total")
		net.inFlightG = r.Gauge("rt_inflight")
		net.queueDepth = r.Histogram("rt_queue_depth", obs.SizeBuckets())
		net.drainBatch = r.Histogram("rt_drain_batch", obs.SizeBuckets())
	}
}

// New builds a network over the given nodes.
func New(nodes []msg.Node, opts ...Option) *Network {
	n := &Network{
		nodes:   make(map[string]msg.Node, len(nodes)),
		inboxes: make(map[string]chan envelope, len(nodes)),
		edges:   make(map[string]chan envelope),
		stop:    make(chan struct{}),
		buffer:  1024,
	}
	for _, node := range nodes {
		if _, dup := n.nodes[node.ID()]; dup {
			panic(fmt.Sprintf("runtime: duplicate node id %q", node.ID()))
		}
		n.nodes[node.ID()] = node
	}
	for _, o := range opts {
		o(n)
	}
	for id := range n.nodes {
		n.inboxes[id] = make(chan envelope, n.buffer)
	}
	return n
}

// Start launches one goroutine per node. Each node loop blocks for one
// message, then drains whatever else its inbox already holds without going
// back through the scheduler — batched draining keeps a hot node's cache
// warm and collapses per-message wakeups under load. Every message is still
// handled one at a time, outputs routed before its in-flight count is
// released, so the quiescence invariant is untouched.
func (n *Network) Start() {
	if n.started {
		panic("runtime: Start called twice")
	}
	n.started = true
	for id, node := range n.nodes {
		inbox := n.inboxes[id]
		node := node
		from := id
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			handle := func(env envelope) {
				outs := node.Handle(env.m, time.Now().UnixNano())
				n.route(from, outs)
				// The outputs are counted before this message is
				// released, so the in-flight count can never dip to
				// zero mid-cascade.
				n.inFlight.Add(-1)
			}
			for {
				select {
				case <-n.stop:
					return
				case env := <-inbox:
					handle(env)
					batch := int64(1)
				drain:
					for {
						select {
						case <-n.stop:
							return
						case env := <-inbox:
							handle(env)
							batch++
						default:
							break drain
						}
					}
					n.drainBatch.Observe(batch)
				}
			}
		}()
	}
}

// Inject delivers a message from the outside (the driver) to a node.
func (n *Network) Inject(to string, m any) {
	n.inFlight.Add(1)
	n.deliver("driver", to, m)
}

// Reserve marks one unit of out-of-band work (e.g. a view-manager pool
// computation) as in flight, so Drain cannot observe quiescence while it
// runs. The returned release is idempotent. Call Reserve synchronously
// inside the handler that schedules the work and release only after its
// result has been re-injected, and the never-dip-to-zero invariant carries
// over to pool work.
func (n *Network) Reserve() func() {
	n.inFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() { n.inFlight.Add(-1) })
	}
}

func (n *Network) route(from string, outs []msg.Outbound) {
	for _, o := range outs {
		n.inFlight.Add(1)
		if o.Delay > 0 {
			o := o
			n.timerWG.Add(1)
			timer := time.AfterFunc(time.Duration(o.Delay), func() {
				defer n.timerWG.Done()
				select {
				case <-n.stop:
					n.inFlight.Add(-1)
				default:
					n.deliver(from, o.To, o.Msg)
				}
			})
			_ = timer
			continue
		}
		n.deliver(from, o.To, o.Msg)
	}
}

func (n *Network) deliver(from, to string, m any) {
	n.inFlightG.Set(n.inFlight.Load())
	inbox, ok := n.inboxes[to]
	if !ok {
		if n.remoteFrom != nil {
			n.remoteMsgs.Inc()
			n.remoteFrom(from, to, m)
			n.inFlight.Add(-1)
			return
		}
		if n.remote != nil {
			// Hand off to the remote transport; this network's in-flight
			// accounting ends here.
			n.remoteMsgs.Inc()
			n.remote(to, m)
			n.inFlight.Add(-1)
			return
		}
		panic(fmt.Sprintf("runtime: message from %q to unknown node %q: %T", from, to, m))
	}
	n.msgs.Inc()
	n.queueDepth.Observe(int64(len(inbox)))
	if n.jitter == nil {
		select {
		case inbox <- envelope{to: to, m: m}:
		case <-n.stop:
		}
		return
	}
	// Per-edge sequencer: a single goroutine drains the edge in order,
	// sleeping the jitter before each delivery.
	edge := n.edge(from, to, inbox)
	select {
	case edge <- envelope{to: to, m: m}:
	case <-n.stop:
	}
}

func (n *Network) edge(from, to string, inbox chan envelope) chan envelope {
	key := from + "→" + to
	n.mu.Lock()
	defer n.mu.Unlock()
	if ch, ok := n.edges[key]; ok {
		return ch
	}
	ch := make(chan envelope, n.buffer)
	n.edges[key] = ch
	n.edgeWG.Add(1)
	go func() {
		defer n.edgeWG.Done()
		for {
			select {
			case <-n.stop:
				return
			case env := <-ch:
				d := n.jitter(from, to)
				if d > 0 {
					select {
					case <-time.After(d):
					case <-n.stop:
						return
					}
				}
				select {
				case inbox <- env:
				case <-n.stop:
					return
				}
			}
		}
	}()
	return ch
}

// Drain blocks until no message is in flight anywhere in the network (all
// inboxes empty, all handlers returned, no timers pending) or the timeout
// elapses; it reports whether quiescence was reached. Note that quiescence
// is about MESSAGES: a view manager holding updates below a batching
// boundary is quiescent yet not fresh.
func (n *Network) Drain(timeout time.Duration) bool {
	return WaitUntil(timeout, func() bool { return n.inFlight.Load() == 0 })
}

// Stop terminates all goroutines. Pending messages are dropped.
func (n *Network) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	close(n.stop)
	n.wg.Wait()
	n.edgeWG.Wait()
	n.timerWG.Wait()
}

// WaitUntil polls cond until it holds or the timeout elapses; it reports
// whether the condition held. Drivers use it to wait for quiescence (e.g.
// the warehouse reaching a sequence number).
func WaitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}
