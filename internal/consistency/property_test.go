package consistency

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/source"
	"whips/internal/warehouse"
)

// Metamorphic tests of the checker itself: runs that are correct by
// construction must be judged complete; systematically corrupted variants
// must lose the corresponding level.

type runScript struct {
	cluster *source.Cluster
	views   map[msg.ViewID]expr.Expr
	// perUpdate[i] = view writes (exact deltas) for update i+1.
	perUpdate [][]msg.ViewWrite
}

// buildRun executes a random update history and computes each update's
// exact per-view deltas.
func buildRun(t testing.TB, seed int64, n int) *runScript {
	rng := rand.New(rand.NewSource(seed))
	c := source.NewCluster(nil)
	c.AddSource("s1")
	c.AddSource("s2")
	if err := c.LoadRelation("s1", "R", relation.FromTuples(rSchema, relation.T(1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateRelation("s1", "S", sSchema); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadRelation("s2", "T", relation.FromTuples(tSchema, relation.T(3, 4))); err != nil {
		t.Fatal(err)
	}
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)),
		"V2": expr.MustJoin(expr.Scan("S", sSchema), expr.Scan("T", tSchema)),
	}
	rs := &runScript{cluster: c, views: views}
	live := map[string]*relation.Relation{
		"R": relation.FromTuples(rSchema, relation.T(1, 2)),
		"S": relation.New(sSchema),
		"T": relation.FromTuples(tSchema, relation.T(3, 4)),
	}
	schemas := map[string]*relation.Schema{"R": rSchema, "S": sSchema, "T": tSchema}
	owners := map[string]msg.SourceID{"R": "s1", "S": "s1", "T": "s2"}
	names := []string{"R", "S", "T"}
	for i := 0; i < n; i++ {
		name := names[rng.Intn(3)]
		var d *relation.Delta
		if !live[name].Empty() && rng.Intn(3) == 0 {
			ts := live[name].Tuples()
			d = relation.DeleteDelta(schemas[name], ts[rng.Intn(len(ts))])
		} else {
			d = relation.InsertDelta(schemas[name], relation.T(rng.Intn(4), rng.Intn(4)))
		}
		if err := live[name].Apply(d); err != nil {
			t.Fatal(err)
		}
		pre := c.Seq()
		var writes []msg.ViewWrite
		for id, e := range views {
			has := false
			for _, b := range e.BaseRelations() {
				if b == name {
					has = true
				}
			}
			if !has {
				continue
			}
			vd, err := expr.Delta(e, name, d, c.DatabaseAt(pre))
			if err != nil {
				t.Fatal(err)
			}
			writes = append(writes, msg.ViewWrite{View: id, Upto: pre + 1, Delta: vd})
		}
		if _, err := c.Execute(owners[name], msg.Write{Relation: name, Delta: d}); err != nil {
			t.Fatal(err)
		}
		rs.perUpdate = append(rs.perUpdate, writes)
	}
	return rs
}

// freshWarehouse materializes the initial views.
func (rs *runScript) freshWarehouse(t testing.TB) *warehouse.Warehouse {
	initial := map[msg.ViewID]*relation.Relation{}
	for id, e := range rs.views {
		v, err := expr.Eval(e, rs.cluster.DatabaseAt(0))
		if err != nil {
			t.Fatal(err)
		}
		initial[id] = v
	}
	return warehouse.New(initial, warehouse.WithStateLog())
}

func applyTxn(w *warehouse.Warehouse, id msg.TxnID, writes []msg.ViewWrite) {
	w.Handle(msg.SubmitTxn{Txn: msg.WarehouseTxn{ID: id, Writes: writes}}, 0)
}

func TestCheckerAcceptsPerUpdateRuns(t *testing.T) {
	f := func(seed int64) bool {
		rs := buildRun(t, seed, 12)
		w := rs.freshWarehouse(t)
		for i, writes := range rs.perUpdate {
			applyTxn(w, msg.TxnID(i+1), writes)
		}
		rep, err := Check(rs.cluster, rs.views, w.Log())
		if err != nil {
			t.Error(err)
			return false
		}
		if !rep.Complete {
			t.Errorf("per-update run must be complete: %+v (%s)", rep, rep.Violation)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCheckerAcceptsBatchedRunsAsStrong(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		rs := buildRun(t, seed, 12)
		w := rs.freshWarehouse(t)
		// Merge random runs of consecutive updates into single txns.
		i := 0
		txn := msg.TxnID(0)
		batched := 0
		for i < len(rs.perUpdate) {
			size := 1 + rng.Intn(3)
			if i+size > len(rs.perUpdate) {
				size = len(rs.perUpdate) - i
			}
			if size > 1 {
				batched++
			}
			var writes []msg.ViewWrite
			merged := map[msg.ViewID]*relation.Delta{}
			var order []msg.ViewID
			upto := map[msg.ViewID]msg.UpdateID{}
			for k := i; k < i+size; k++ {
				for _, vw := range rs.perUpdate[k] {
					if merged[vw.View] == nil {
						merged[vw.View] = relation.NewDelta(vw.Delta.Schema())
						order = append(order, vw.View)
					}
					_ = merged[vw.View].Merge(vw.Delta)
					upto[vw.View] = vw.Upto
				}
			}
			for _, id := range order {
				writes = append(writes, msg.ViewWrite{View: id, Upto: upto[id], Delta: merged[id]})
			}
			txn++
			applyTxn(w, txn, writes)
			i += size
		}
		rep, err := Check(rs.cluster, rs.views, w.Log())
		if err != nil {
			t.Error(err)
			return false
		}
		if !rep.Strong {
			t.Errorf("batched run must be strong: %+v (%s)", rep, rep.Violation)
			return false
		}
		if batched > 0 && rep.Complete {
			// Batching may still be complete when every batch happens to
			// change contents only at its boundary, but with real batches
			// of joint changes that is rare; don't assert, just note.
			_ = batched
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCheckerRejectsSplitAtomicUnits(t *testing.T) {
	// Split every update's multi-view writes across two transactions: any
	// update genuinely affecting both views breaks MVC.
	f := func(seed int64) bool {
		rs := buildRun(t, seed, 12)
		split := false
		w := rs.freshWarehouse(t)
		txn := msg.TxnID(0)
		for _, writes := range rs.perUpdate {
			changing := 0
			for _, vw := range writes {
				if !vw.Delta.Empty() {
					changing++
				}
			}
			if changing > 1 {
				split = true
				for _, vw := range writes {
					txn++
					applyTxn(w, txn, []msg.ViewWrite{vw})
				}
				continue
			}
			txn++
			applyTxn(w, txn, writes)
		}
		if !split {
			return true // nothing to violate on this seed
		}
		rep, err := Check(rs.cluster, rs.views, w.Log())
		if err != nil {
			t.Error(err)
			return false
		}
		if rep.Strong {
			t.Errorf("split atomic units must not be strong: %+v", rep)
			return false
		}
		if !rep.Convergent {
			t.Errorf("split run still converges: %+v", rep)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCheckerRejectsDroppedTransaction(t *testing.T) {
	rs := buildRun(t, 7, 10)
	w := rs.freshWarehouse(t)
	dropped := false
	for i, writes := range rs.perUpdate {
		// Drop the first non-empty transaction.
		if !dropped {
			empty := true
			for _, vw := range writes {
				if !vw.Delta.Empty() {
					empty = false
				}
			}
			if !empty {
				dropped = true
				continue
			}
		}
		applyTxn(w, msg.TxnID(i+1), writes)
	}
	if !dropped {
		t.Skip("seed produced no droppable txn")
	}
	// Applying later deltas after a dropped one generally panics (counts
	// underflow) or, if it applies, must fail convergence.
	defer func() { recover() }()
	rep, err := Check(rs.cluster, rs.views, w.Log())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Convergent {
		t.Errorf("dropped transaction must break convergence: %+v", rep)
	}
}
