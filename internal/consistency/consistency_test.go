package consistency

import (
	"testing"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/source"
	"whips/internal/warehouse"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
	tSchema = relation.MustSchema("C:int", "D:int")
)

// fixture builds the paper's running example (Table 1 initial state) plus
// a scripted update history, and returns everything a Check needs.
type fixture struct {
	cluster *source.Cluster
	views   map[msg.ViewID]expr.Expr
	// viewVals[i] = contents of every view at source state i.
	wh *warehouse.Warehouse
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	c := source.NewCluster(nil)
	c.AddSource("s1")
	c.AddSource("s2")
	if err := c.LoadRelation("s1", "R", relation.FromTuples(rSchema, relation.T(1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateRelation("s1", "S", sSchema); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadRelation("s2", "T", relation.FromTuples(tSchema, relation.T(3, 4))); err != nil {
		t.Fatal(err)
	}
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)),
		"V2": expr.MustJoin(expr.Scan("S", sSchema), expr.Scan("T", tSchema)),
	}
	initial := map[msg.ViewID]*relation.Relation{}
	for id, e := range views {
		v, err := expr.Eval(e, c.DatabaseAt(0))
		if err != nil {
			t.Fatal(err)
		}
		initial[id] = v
	}
	return &fixture{
		cluster: c,
		views:   views,
		wh:      warehouse.New(initial, warehouse.WithStateLog()),
	}
}

func (f *fixture) exec(t *testing.T, rel string, d *relation.Delta) msg.UpdateID {
	t.Helper()
	owner, _ := f.cluster.Owner(rel)
	u, err := f.cluster.Execute(owner, msg.Write{Relation: rel, Delta: d})
	if err != nil {
		t.Fatal(err)
	}
	return u.Seq
}

// applyTxn applies view writes to the warehouse as one transaction.
func (f *fixture) applyTxn(t *testing.T, id msg.TxnID, writes ...msg.ViewWrite) {
	t.Helper()
	f.wh.Handle(msg.SubmitTxn{Txn: msg.WarehouseTxn{ID: id, Writes: writes}, From: ""}, 0)
}

// viewDelta computes a view's exact delta for a base update at a state.
func (f *fixture) viewDelta(t *testing.T, view msg.ViewID, base string, d *relation.Delta, pre msg.UpdateID) *relation.Delta {
	t.Helper()
	vd, err := expr.Delta(f.views[view], base, d, f.cluster.DatabaseAt(pre))
	if err != nil {
		t.Fatal(err)
	}
	return vd
}

func TestCheckCompleteRun(t *testing.T) {
	f := newFixture(t)
	ins := relation.InsertDelta(sSchema, relation.T(2, 3))
	d1 := f.viewDelta(t, "V1", "S", ins, 0)
	d2 := f.viewDelta(t, "V2", "S", ins, 0)
	f.exec(t, "S", ins)
	// One atomic warehouse transaction covering both views: MVC preserved.
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 1, Delta: d1},
		msg.ViewWrite{View: "V2", Upto: 1, Delta: d2})
	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || !rep.Strong || !rep.Convergent {
		t.Errorf("report = %+v", rep)
	}
	if rep.Level() != msg.Complete {
		t.Errorf("level = %v", rep.Level())
	}
	for id, v := range rep.PerView {
		if !v.Complete {
			t.Errorf("view %s = %+v", id, v)
		}
	}
}

func TestCheckDetectsTable1Inconsistency(t *testing.T) {
	// The paper's t2 state: V1 updated, V2 not — split across two txns.
	f := newFixture(t)
	ins := relation.InsertDelta(sSchema, relation.T(2, 3))
	d1 := f.viewDelta(t, "V1", "S", ins, 0)
	d2 := f.viewDelta(t, "V2", "S", ins, 0)
	f.exec(t, "S", ins)
	f.applyTxn(t, 1, msg.ViewWrite{View: "V1", Upto: 1, Delta: d1})
	f.applyTxn(t, 2, msg.ViewWrite{View: "V2", Upto: 1, Delta: d2})
	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strong || rep.Complete {
		t.Errorf("split transaction must break MVC: %+v", rep)
	}
	if !rep.Convergent {
		t.Errorf("run still converges: %+v", rep)
	}
	// Each view alone is perfectly consistent — MVC is the extra layer.
	for id, v := range rep.PerView {
		if !v.Complete {
			t.Errorf("view %s should be complete in isolation: %+v", id, v)
		}
	}
	if rep.Level() != msg.Convergent {
		t.Errorf("level = %v", rep.Level())
	}
}

func TestCheckAllowsEquivalentScheduleReordering(t *testing.T) {
	// U1 touches V1 only (R), U2 touches V2 only (T). Applying U2's txn
	// first is the SPA prompt behaviour and is consistent with the
	// equivalent schedule U2;U1.
	f := newFixture(t)
	// Make the views non-empty so the updates change content.
	insS := relation.InsertDelta(sSchema, relation.T(2, 3))
	dS1 := f.viewDelta(t, "V1", "S", insS, 0)
	dS2 := f.viewDelta(t, "V2", "S", insS, 0)
	f.exec(t, "S", insS)
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 1, Delta: dS1},
		msg.ViewWrite{View: "V2", Upto: 1, Delta: dS2})

	insR := relation.InsertDelta(rSchema, relation.T(7, 2)) // V1 only
	dR := f.viewDelta(t, "V1", "R", insR, 1)
	f.exec(t, "R", insR)
	insT := relation.InsertDelta(tSchema, relation.T(3, 9)) // V2 only
	dT := f.viewDelta(t, "V2", "T", insT, 2)
	f.exec(t, "T", insT)

	// Apply U3's (T) transaction before U2's (R).
	f.applyTxn(t, 2, msg.ViewWrite{View: "V2", Upto: 3, Delta: dT})
	f.applyTxn(t, 3, msg.ViewWrite{View: "V1", Upto: 2, Delta: dR})

	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("independent reordering must stay complete: %+v (%s)", rep, rep.Violation)
	}
}

func TestCheckRejectsSharedUpdateDisagreement(t *testing.T) {
	// Two S updates; V1 gets both in one txn, V2 gets them in two txns —
	// between those txns the views disagree on a shared update.
	f := newFixture(t)
	ins1 := relation.InsertDelta(sSchema, relation.T(2, 3))
	d11 := f.viewDelta(t, "V1", "S", ins1, 0)
	d21 := f.viewDelta(t, "V2", "S", ins1, 0)
	f.exec(t, "S", ins1)
	// The second update inserts the same tuple again (multiplicity 2), so
	// it changes BOTH views' contents.
	ins2 := relation.InsertDelta(sSchema, relation.T(2, 3))
	d12 := f.viewDelta(t, "V1", "S", ins2, 1)
	d22 := f.viewDelta(t, "V2", "S", ins2, 1)
	f.exec(t, "S", ins2)

	both1 := d11.Clone()
	if err := both1.Merge(d12); err != nil {
		t.Fatal(err)
	}
	// Txn A: V1 jumps to state 2, V2 only to state 1.
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 2, Delta: both1},
		msg.ViewWrite{View: "V2", Upto: 1, Delta: d21})
	// Txn B: V2 catches up.
	f.applyTxn(t, 2, msg.ViewWrite{View: "V2", Upto: 2, Delta: d22})

	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strong {
		t.Errorf("shared-update disagreement must break MVC: %+v", rep)
	}
	if !rep.Convergent {
		t.Errorf("run still converges: %+v", rep)
	}
}

func TestCheckStrongButNotComplete(t *testing.T) {
	// Batch both S updates into one warehouse transaction: the state after
	// U1 is skipped.
	f := newFixture(t)
	ins1 := relation.InsertDelta(sSchema, relation.T(2, 3))
	d11 := f.viewDelta(t, "V1", "S", ins1, 0)
	d21 := f.viewDelta(t, "V2", "S", ins1, 0)
	f.exec(t, "S", ins1)
	ins2 := relation.InsertDelta(sSchema, relation.T(2, 5))
	d12 := f.viewDelta(t, "V1", "S", ins2, 1)
	d22 := f.viewDelta(t, "V2", "S", ins2, 1)
	f.exec(t, "S", ins2)
	dv1 := d11.Clone()
	_ = dv1.Merge(d12)
	dv2 := d21.Clone()
	_ = dv2.Merge(d22)
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 2, Delta: dv1},
		msg.ViewWrite{View: "V2", Upto: 2, Delta: dv2})
	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong || rep.Complete {
		t.Errorf("batched run should be strong but not complete: %+v (%s)", rep, rep.Violation)
	}
	if rep.Level() != msg.Strong {
		t.Errorf("level = %v", rep.Level())
	}
}

func TestCheckNonConvergentRun(t *testing.T) {
	f := newFixture(t)
	f.exec(t, "S", relation.InsertDelta(sSchema, relation.T(2, 3)))
	// Warehouse never applies anything.
	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Convergent || rep.Strong || rep.Complete {
		t.Errorf("stale warehouse must not converge: %+v", rep)
	}
}

func TestCheckWrongContent(t *testing.T) {
	f := newFixture(t)
	f.exec(t, "S", relation.InsertDelta(sSchema, relation.T(2, 3)))
	// Garbage applied to V1: matches no source prefix at all.
	f.applyTxn(t, 1, msg.ViewWrite{View: "V1", Upto: 1,
		Delta: relation.InsertDelta(f.views["V1"].Schema(), relation.T(9, 9, 9))})
	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Convergent || rep.Strong {
		t.Errorf("corrupt content must fail: %+v", rep)
	}
	if rep.Violation == "" {
		t.Error("violation should be reported")
	}
}

func TestCheckRequiresStateLog(t *testing.T) {
	f := newFixture(t)
	if _, err := Check(f.cluster, f.views, nil); err == nil {
		t.Error("empty log must error")
	}
}

func TestCheckNoOpUpdatesAreFree(t *testing.T) {
	// An R tuple that joins nothing changes no view; completeness must not
	// demand a warehouse transaction for it.
	f := newFixture(t)
	f.exec(t, "R", relation.InsertDelta(rSchema, relation.T(9, 9)))
	ins := relation.InsertDelta(sSchema, relation.T(2, 3))
	d1 := f.viewDelta(t, "V1", "S", ins, 1)
	d2 := f.viewDelta(t, "V2", "S", ins, 1)
	f.exec(t, "S", ins)
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 2, Delta: d1},
		msg.ViewWrite{View: "V2", Upto: 2, Delta: d2})
	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("no-op update must be free for completeness: %+v (%s)", rep, rep.Violation)
	}
	if rep.ObservedUpdates != 1 {
		t.Errorf("observed = %d, want 1", rep.ObservedUpdates)
	}
}

func TestFinalMatches(t *testing.T) {
	f := newFixture(t)
	ins := relation.InsertDelta(sSchema, relation.T(2, 3))
	d1 := f.viewDelta(t, "V1", "S", ins, 0)
	d2 := f.viewDelta(t, "V2", "S", ins, 0)
	f.exec(t, "S", ins)
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 1, Delta: d1},
		msg.ViewWrite{View: "V2", Upto: 1, Delta: d2})
	ok, err := FinalMatches(f.cluster, f.views, f.wh.ReadAll())
	if err != nil || !ok {
		t.Errorf("FinalMatches = %v, %v", ok, err)
	}
	// Perturb one view. ReadAll returns frozen snapshot relations, so the
	// perturbation goes through a mutable clone.
	bad := f.wh.ReadAll()
	bad["V1"] = bad["V1"].Clone()
	if err := bad["V1"].Insert(relation.T(5, 5, 5), 1); err != nil {
		t.Fatal(err)
	}
	ok, err = FinalMatches(f.cluster, f.views, bad)
	if err != nil || ok {
		t.Errorf("perturbed FinalMatches = %v, %v", ok, err)
	}
}

func TestCheckWeakButNotStrong(t *testing.T) {
	// The warehouse revisits an EARLIER source state: every state matches
	// some source state (weak, per the four-level taxonomy of [17]) but
	// order is not preserved (not strong).
	f := newFixture(t)
	ins1 := relation.InsertDelta(sSchema, relation.T(1, 3))
	d11 := f.viewDelta(t, "V1", "S", ins1, 0)
	d21 := f.viewDelta(t, "V2", "S", ins1, 0)
	f.exec(t, "S", ins1)
	ins2 := relation.InsertDelta(sSchema, relation.T(2, 3))
	d12 := f.viewDelta(t, "V1", "S", ins2, 1)
	d22 := f.viewDelta(t, "V2", "S", ins2, 1)
	f.exec(t, "S", ins2)

	// Jump straight to state 2...
	both1, both2 := d11.Clone(), d21.Clone()
	_ = both1.Merge(d12)
	_ = both2.Merge(d22)
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 2, Delta: both1},
		msg.ViewWrite{View: "V2", Upto: 2, Delta: both2})
	// ...then roll back to state 1's content...
	f.applyTxn(t, 2,
		msg.ViewWrite{View: "V1", Upto: 2, Delta: d12.Negate()},
		msg.ViewWrite{View: "V2", Upto: 2, Delta: d22.Negate()})
	// ...and forward again.
	f.applyTxn(t, 3,
		msg.ViewWrite{View: "V1", Upto: 2, Delta: d12},
		msg.ViewWrite{View: "V2", Upto: 2, Delta: d22})

	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Convergent || !rep.Weak {
		t.Errorf("backtracking run should be weak: %+v", rep)
	}
	if rep.Strong {
		t.Errorf("backtracking run must not be strong: %+v", rep)
	}
	for id, v := range rep.PerView {
		if !v.Weak || v.Strong {
			t.Errorf("view %s: weak=%v strong=%v", id, v.Weak, v.Strong)
		}
	}
}

func TestWeakImpliedByStrong(t *testing.T) {
	f := newFixture(t)
	ins := relation.InsertDelta(sSchema, relation.T(2, 3))
	d1 := f.viewDelta(t, "V1", "S", ins, 0)
	d2 := f.viewDelta(t, "V2", "S", ins, 0)
	f.exec(t, "S", ins)
	f.applyTxn(t, 1,
		msg.ViewWrite{View: "V1", Upto: 1, Delta: d1},
		msg.ViewWrite{View: "V2", Upto: 1, Delta: d2})
	rep, err := Check(f.cluster, f.views, f.wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Weak || !rep.Strong {
		t.Errorf("strong run must also be weak: %+v", rep)
	}
}
