// Package consistency implements the paper's §2 definitions as executable
// checks. Given the source cluster's committed schedule and the warehouse's
// recorded state sequence ws0..wsq, it decides — per view and for the view
// vector as a whole — whether the run was convergent, strongly consistent,
// or complete.
//
// The definitions quantify over a consistent source state sequence: the
// states of any serial schedule R *equivalent* to the committed schedule S
// (§2.1). Updates on disjoint base relations commute, which is exactly the
// freedom the Simple Painting Algorithm exploits when it applies
// independent rows promptly out of arrival order (paper Example 3 applies
// U2's actions before U1's). The checker therefore searches over
// equivalent schedules instead of insisting on commit order:
//
//   - Each view's content after any equivalent prefix depends only on how
//     many of the view's relevant updates are included (its deltas add).
//   - A warehouse state is MVC-consistent iff per-view prefix counts can
//     be chosen that (a) reproduce each view's content, and (b) agree on
//     every update relevant to two views — then a global equivalent prefix
//     exists.
//   - Strong consistency additionally needs the chosen counts to be
//     monotone across warehouse states and to end at the full schedule;
//     completeness needs the global prefix to grow by exactly one observed
//     update per warehouse transaction, visiting every state.
package consistency

import (
	"fmt"
	"sort"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/source"
	"whips/internal/warehouse"
)

// ViewReport is the single-view verdict (§2.2; the four-level taxonomy of
// the cited Strobe paper [17]: convergence ⊆ weak ⊆ strong ⊆ complete).
type ViewReport struct {
	Convergent bool
	// Weak: every warehouse state reflects some source state and the final
	// states agree, but order need not be preserved.
	Weak      bool
	Strong    bool
	Complete  bool
	Violation string
}

// Report is the multiple-view verdict (§2.3).
type Report struct {
	Convergent bool
	Weak       bool
	Strong     bool
	Complete   bool
	Violation  string
	PerView    map[msg.ViewID]ViewReport
	// ObservedUpdates counts source updates relevant to at least one view;
	// WarehouseStates counts recorded warehouse states.
	ObservedUpdates int
	WarehouseStates int
}

// Level summarizes a report as the strongest level that held.
func (r Report) Level() msg.Level {
	switch {
	case r.Complete:
		return msg.Complete
	case r.Strong:
		return msg.Strong
	default:
		return msg.Convergent
	}
}

// Check evaluates the run. The cluster must retain its full history (no
// truncation) and the warehouse must have been built WithStateLog.
func Check(cluster *source.Cluster, views map[msg.ViewID]expr.Expr, log []warehouse.StateRecord) (Report, error) {
	if len(log) == 0 {
		return Report{}, fmt.Errorf("consistency: warehouse state log is empty; build the warehouse WithStateLog")
	}
	ids := make([]msg.ViewID, 0, len(views))
	for id := range views {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Replay the committed schedule, recording each view's content after
	// each of its relevant updates, and each update's relevant-view set.
	updates := cluster.Log()
	db := make(map[string]*relation.Relation)
	baseOf := make(map[msg.ViewID]map[string]bool, len(ids))
	for _, id := range ids {
		for _, b := range views[id].BaseRelations() {
			baseOf[id] = ensure(baseOf[id])
			baseOf[id][b] = true
			if _, ok := db[b]; !ok {
				r, err := cluster.AsOf(b, 0)
				if err != nil {
					return Report{}, fmt.Errorf("consistency: initial state of %q: %w", b, err)
				}
				db[b] = r
			}
		}
	}
	mdb := expr.MapDB(db)
	contents := make(map[msg.ViewID][]string, len(ids)) // contents[v][k]: after k relevant updates
	relUpd := make(map[msg.ViewID][]int, len(ids))      // indexes into updates
	for _, id := range ids {
		c, err := expr.Eval(views[id], mdb)
		if err != nil {
			return Report{}, err
		}
		contents[id] = append(contents[id], c.String())
	}
	// changing[ui] records whether the update altered any view's content.
	// Updates that change nothing (e.g. those the ref-[7] irrelevance
	// filter discards, or no-op deltas) stay in the relevance structures —
	// their position still constrains pairwise agreement — but they are
	// "free" for the completeness count: two source states with identical
	// view contents are indistinguishable by definition, so no warehouse
	// transaction needs to witness them.
	observed := 0
	relViews := make([][]msg.ViewID, len(updates))
	changing := make([]bool, len(updates))
	for ui, u := range updates {
		for _, w := range u.Writes {
			if r, ok := db[w.Relation]; ok {
				if err := r.Apply(w.Delta); err != nil {
					return Report{}, fmt.Errorf("consistency: replaying update %d: %w", u.Seq, err)
				}
			}
		}
		for _, id := range ids {
			touched := false
			for _, w := range u.Writes {
				if baseOf[id][w.Relation] {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			c, err := expr.Eval(views[id], mdb)
			if err != nil {
				return Report{}, err
			}
			fp := c.String()
			if fp != contents[id][len(contents[id])-1] {
				changing[ui] = true
			}
			relViews[ui] = append(relViews[ui], id)
			relUpd[id] = append(relUpd[id], ui)
			contents[id] = append(contents[id], fp)
		}
		if changing[ui] {
			observed++
		}
	}

	// sharedBelow[v][w][k]: among v's first k relevant updates, how many
	// are also relevant to w.
	sharedBelow := make(map[msg.ViewID]map[msg.ViewID][]int, len(ids))
	for _, v := range ids {
		sharedBelow[v] = make(map[msg.ViewID][]int, len(ids))
		for _, w := range ids {
			if v == w {
				continue
			}
			counts := make([]int, len(relUpd[v])+1)
			for k, ui := range relUpd[v] {
				counts[k+1] = counts[k]
				for _, x := range relViews[ui] {
					if x == w {
						counts[k+1]++
						break
					}
				}
			}
			sharedBelow[v][w] = counts
		}
	}

	// Warehouse fingerprints, collapsed at the vector level: adjacent
	// warehouse states identical over the checked views are one observable
	// state (transactions touching only other views, or no-op deltas).
	whView := make(map[msg.ViewID][]string, len(ids))
	var lastVec string
	for j, rec := range log {
		row := make([]string, len(ids))
		var vec string
		for vi, id := range ids {
			r, ok := rec.Views[id]
			if !ok {
				return Report{}, fmt.Errorf("consistency: warehouse state %d lacks view %s", j, id)
			}
			row[vi] = r.String()
			vec += string(id) + "=" + row[vi] + ";"
		}
		if j > 0 && vec == lastVec {
			continue
		}
		lastVec = vec
		for vi, id := range ids {
			whView[id] = append(whView[id], row[vi])
		}
	}
	nStates := len(whView[ids[0]])

	rep := Report{
		PerView:         make(map[msg.ViewID]ViewReport, len(ids)),
		ObservedUpdates: observed,
		WarehouseStates: nStates,
	}
	for _, id := range ids {
		rep.PerView[id] = judge(collapse(contents[id]), collapse(whView[id]))
	}

	// Candidate per-view prefix counts for each warehouse state.
	cands := make([][][]int, nStates) // cands[j][viewIdx] = valid ks
	for j := 0; j < nStates; j++ {
		cands[j] = make([][]int, len(ids))
		for vi, id := range ids {
			for k, c := range contents[id] {
				if c == whView[id][j] {
					cands[j][vi] = append(cands[j][vi], k)
				}
			}
			if len(cands[j][vi]) == 0 {
				rep.Violation = fmt.Sprintf("warehouse state %d: view %s matches no source prefix", j, id)
			}
		}
	}

	// Convergence: the final warehouse state admits the full-count combo.
	full := make([]int, len(ids))
	for vi, id := range ids {
		full[vi] = len(relUpd[id])
	}
	rep.Convergent = comboAllowed(cands[nStates-1], full)

	// Weak: every state individually matches some equivalent prefix
	// (pairwise-consistent combo exists), with no order requirement.
	rep.Weak = rep.Convergent
	for j := 0; rep.Weak && j < nStates; j++ {
		if !anyCombo(ids, cands[j], sharedBelow) {
			rep.Weak = false
		}
	}

	rep.Strong, rep.Complete = searchMappings(ids, cands, sharedBelow, relUpd, changing, full)
	if !rep.Strong && rep.Violation == "" {
		rep.Violation = "no order-preserving mapping onto an equivalent source schedule exists"
	}
	if rep.Strong && !rep.Convergent {
		rep.Strong, rep.Complete = false, false
		if rep.Violation == "" {
			rep.Violation = "warehouse never reaches the final source state"
		}
	}
	return rep, nil
}

func ensure(m map[string]bool) map[string]bool {
	if m == nil {
		return make(map[string]bool)
	}
	return m
}

func comboAllowed(cand [][]int, combo []int) bool {
	for vi, k := range combo {
		ok := false
		for _, c := range cand[vi] {
			if c == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// anyCombo reports whether a pairwise-consistent per-view prefix choice
// exists for one state's candidate sets.
func anyCombo(ids []msg.ViewID, cand [][]int,
	sharedBelow map[msg.ViewID]map[msg.ViewID][]int) bool {
	cur := make([]int, len(ids))
	var rec func(vi int) bool
	rec = func(vi int) bool {
		if vi == len(ids) {
			return true
		}
		id := ids[vi]
	next:
		for _, k := range cand[vi] {
			for pi := 0; pi < vi; pi++ {
				pid := ids[pi]
				if sharedBelow[id][pid] == nil {
					continue
				}
				if sharedBelow[id][pid][k] != sharedBelow[pid][id][cur[pi]] {
					continue next
				}
			}
			cur[vi] = k
			if rec(vi + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// searchMappings runs the DP over warehouse states: it keeps the set of
// feasible per-view prefix-count combos at each state (content match +
// pairwise shared-update agreement + componentwise monotone from some
// feasible predecessor) and reports whether a path ends at the full
// schedule (strong) and whether a path exists whose global prefix grows by
// exactly one observed update per state (complete).
func searchMappings(ids []msg.ViewID, cands [][][]int,
	sharedBelow map[msg.ViewID]map[msg.ViewID][]int,
	relUpd map[msg.ViewID][]int, changing []bool, full []int) (strong, complete bool) {

	type combo struct {
		ks   []int
		size int // observed updates in the global prefix
	}
	// enumerate feasible combos for one warehouse state.
	feasible := func(j int) []combo {
		var out []combo
		cur := make([]int, len(ids))
		var rec func(vi int)
		rec = func(vi int) {
			if len(out) > 4096 {
				return // state space guard; workloads in tests stay tiny
			}
			if vi == len(ids) {
				// Global prefix size: distinct content-changing updates
				// covered. An update relevant to several views is counted
				// once; agreement guarantees consistency. Updates that
				// change no content are free (no transaction witnesses
				// them).
				seen := make(map[int]bool)
				for i, id := range ids {
					for _, ui := range relUpd[id][:cur[i]] {
						if changing[ui] {
							seen[ui] = true
						}
					}
				}
				out = append(out, combo{ks: append([]int(nil), cur...), size: len(seen)})
				return
			}
			id := ids[vi]
		next:
			for _, k := range cands[j][vi] {
				// pairwise agreement with already-chosen views
				for pi := 0; pi < vi; pi++ {
					pid := ids[pi]
					if sharedBelow[id][pid] == nil {
						continue
					}
					if sharedBelow[id][pid][k] != sharedBelow[pid][id][cur[pi]] {
						continue next
					}
				}
				cur[vi] = k
				rec(vi + 1)
			}
		}
		rec(0)
		return out
	}

	type node struct {
		combo combo
		exact bool // reachable via a path growing +1 per state
	}
	var frontier []node
	for _, c := range feasible(0) {
		frontier = append(frontier, node{combo: c, exact: c.size == 0})
	}
	if len(frontier) == 0 {
		return false, false
	}
	leq := func(a, b []int) bool {
		for i := range a {
			if a[i] > b[i] {
				return false
			}
		}
		return true
	}
	for j := 1; j < len(cands); j++ {
		var next []node
		for _, c := range feasible(j) {
			reachable, exact := false, false
			for _, p := range frontier {
				if !leq(p.combo.ks, c.ks) {
					continue
				}
				reachable = true
				if p.exact && c.size == p.combo.size+1 {
					exact = true
				}
				if reachable && exact {
					break
				}
			}
			if reachable {
				next = append(next, node{combo: c, exact: exact})
			}
		}
		if len(next) == 0 {
			return false, false
		}
		frontier = next
	}
	for _, n := range frontier {
		same := true
		for i := range full {
			if n.combo.ks[i] != full[i] {
				same = false
				break
			}
		}
		if same {
			strong = true
			if n.exact {
				complete = true
			}
		}
	}
	return strong, complete
}

// collapse removes adjacent duplicates: runs of content-identical states
// are one observable state.
func collapse(states []string) []string {
	out := states[:0:0]
	for _, s := range states {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// judge applies the §2 single-view definitions to collapsed fingerprint
// sequences (one view: its relevant updates are totally ordered, so the
// equivalent-schedule freedom collapses to plain subsequence matching).
func judge(src, wh []string) ViewReport {
	var r ViewReport
	if len(src) == 0 || len(wh) == 0 {
		return r
	}
	r.Convergent = wh[len(wh)-1] == src[len(src)-1]

	// Weak: unordered membership.
	r.Weak = r.Convergent
	if r.Weak {
		have := make(map[string]bool, len(src))
		for _, s := range src {
			have[s] = true
		}
		for _, w := range wh {
			if !have[w] {
				r.Weak = false
				break
			}
		}
	}

	r.Strong = true
	si := 0
	for j, w := range wh {
		found := false
		for si < len(src) {
			if src[si] == w {
				found = true
				si++
				break
			}
			si++
		}
		if !found {
			r.Strong = false
			r.Violation = fmt.Sprintf("warehouse state %d matches no remaining source state", j)
			break
		}
	}
	if r.Strong && !r.Convergent {
		r.Strong = false
		r.Violation = "warehouse never reaches the final source state"
	}
	if r.Strong {
		r.Weak = true // strong implies weak
	}

	r.Complete = r.Strong && len(wh) == len(src)
	if r.Complete {
		for i := range wh {
			if wh[i] != src[i] {
				r.Complete = false
				break
			}
		}
	}
	return r
}

// FinalMatches reports whether the final warehouse contents equal the
// views evaluated at the final source state — a convenience for examples.
func FinalMatches(cluster *source.Cluster, views map[msg.ViewID]expr.Expr, final map[msg.ViewID]*relation.Relation) (bool, error) {
	for id, e := range views {
		want, err := expr.Eval(e, cluster.DatabaseAt(cluster.Seq()))
		if err != nil {
			return false, err
		}
		got, ok := final[id]
		if !ok || !got.Equal(want) {
			return false, nil
		}
	}
	return true, nil
}
