// Package system assembles the full warehouse architecture of Figure 1 —
// source cluster, integrator, one view manager per view, one or more merge
// processes, and the warehouse — as a set of msg.Node processes plus the
// bookkeeping drivers need (freshness targets per view).
//
// The same assembly runs under the goroutine runtime (the public whips
// facade) and under the deterministic simulator (the benchmark harness).
package system

import (
	"fmt"
	"sync"

	"whips/internal/expr"
	"whips/internal/integrator"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/plan"
	"whips/internal/relation"
	"whips/internal/source"
	"whips/internal/viewmgr"
	"whips/internal/warehouse"
)

// ManagerKind selects a view-manager implementation (§3.3, §6.3).
type ManagerKind uint8

// Available view manager kinds.
const (
	// Complete: one AL per update from self-maintained replicas.
	Complete ManagerKind = iota
	// CompleteQuery: one AL per update via versioned source queries.
	CompleteQuery
	// Batching: strongly consistent Strobe-style batching of intertwined
	// updates (requires a ComputeDelay to actually batch).
	Batching
	// QueryBatching: strongly consistent diff-shipping via source queries.
	QueryBatching
	// Refresh: §6.3 periodic refresh every Param updates.
	Refresh
	// CompleteN: §6.3 complete-N with N = Param.
	CompleteN
	// Convergent: §6.3 convergence-only.
	Convergent
	// SelfMaintaining: one AL per update from auxiliary relations derived
	// by expr.AnalyzeSelfMaint — zero source queries on the covered path,
	// bounded repair queries when Config.MaxAuxRows drops an auxiliary.
	SelfMaintaining
)

// String names the kind.
func (k ManagerKind) String() string {
	switch k {
	case Complete:
		return "complete"
	case CompleteQuery:
		return "complete-query"
	case Batching:
		return "batching"
	case QueryBatching:
		return "query-batching"
	case Refresh:
		return "refresh"
	case CompleteN:
		return "complete-N"
	case Convergent:
		return "convergent"
	case SelfMaintaining:
		return "self-maintaining"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Level returns the consistency level a kind guarantees.
func (k ManagerKind) Level() msg.Level {
	switch k {
	case Complete, CompleteQuery, SelfMaintaining:
		return msg.Complete
	case Convergent:
		return msg.Convergent
	default:
		return msg.Strong
	}
}

// CommitKind selects a §4.3 commit strategy.
type CommitKind uint8

// Available commit strategies.
const (
	Sequential CommitKind = iota
	Dependency
	Batched
	// Immediate performs no commit-order control: the §4.3 hazard baseline.
	Immediate
)

// String names the commit strategy.
func (k CommitKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Dependency:
		return "dependency"
	case Batched:
		return "batched"
	case Immediate:
		return "immediate"
	}
	return fmt.Sprintf("commit(%d)", uint8(k))
}

// ViewDef declares one warehouse view.
type ViewDef struct {
	ID      msg.ViewID
	Expr    expr.Expr
	Manager ManagerKind
	// Param is the N of CompleteN / period of Refresh.
	Param int
	// ComputeDelay models delta-computation cost for replica-based
	// managers (nanoseconds as a function of batch size).
	ComputeDelay func(updates int) int64
	// StageData enables §6.3 coordinate-commit-only data transfer
	// (honoured by Refresh managers): deltas ship directly to the
	// warehouse and the merge process sees only commit tokens.
	StageData bool
}

// SourceDef declares one source and its initial base relations.
type SourceDef struct {
	ID        msg.SourceID
	Relations map[string]*relation.Relation
}

// Config assembles a system.
type Config struct {
	Sources []SourceDef
	Views   []ViewDef
	// Algorithm overrides the merge algorithm; nil selects by weakest
	// manager level (§6.3).
	Algorithm *merge.Algorithm
	// Commit selects the §4.3 strategy.
	Commit CommitKind
	// BatchSize / FlushAfter parameterize the Batched strategy.
	BatchSize  int
	FlushAfter int64
	// DistributedMerge partitions views into merge groups (§6.1).
	DistributedMerge bool
	// RelevanceFilter enables ref-[7] irrelevant-update filtering.
	RelevanceFilter bool
	// EmptyRelevantSets forwards updates relevant to no view as empty rows.
	EmptyRelevantSets bool
	// RelayRelevantSets enables §3.2's alternative routing: RELᵢ rides
	// with one designated view manager's update copy instead of being sent
	// to the merge process directly.
	RelayRelevantSets bool
	// OptimizeViews rewrites every view definition through expr.Optimize
	// (selection pushdown, column pruning) before managers are built.
	OptimizeViews bool
	// SharedPlans builds a shared maintenance-plan DAG (internal/plan)
	// over the view set: common subexpressions are canonicalized, shared,
	// and maintained once at the integrator, and every replica-based view
	// manager receives its precomputed delta with each update instead of
	// evaluating a private tree. Incompatible with query-based manager
	// kinds (CompleteQuery, QueryBatching), whose deltas come from source
	// queries rather than local evaluation.
	SharedPlans bool
	// SelfMaintain converts every Complete and CompleteQuery view to a
	// SelfMaintaining manager (auxiliary-relation maintenance; see
	// viewmgr.SelfMaintaining). Incompatible with SharedPlans — the DAG
	// already computes every view delta upstream, leaving auxiliary state
	// nothing to do.
	SelfMaintain bool
	// MaxAuxRows bounds each auxiliary relation a SelfMaintaining manager
	// keeps; 0 means unbounded. See viewmgr.Config.MaxAuxRows.
	MaxAuxRows int
	// LogStates records the warehouse state sequence for the checker.
	LogStates bool
	// Clock supplies commit timestamps (defaults to zero; the runtime and
	// simulator install their own).
	Clock func() int64
	// WarehouseExecDelay models warehouse transaction scheduling (§4.3
	// hazard demonstrations).
	WarehouseExecDelay func(msg.WarehouseTxn) int64
	// CommitObserver is invoked on every warehouse commit.
	CommitObserver func(warehouse.CommitInfo)
	// Workers sizes a worker pool shared by all view managers for their
	// delta computations (see viewmgr.Pool). 0 keeps the pure-latency
	// model: busy periods are timers, so every view's modeled compute
	// overlaps freely. N >= 1 models N compute units: at most N busy
	// periods make progress at once. The pool is owned by the System —
	// drivers call Close when done.
	Workers int
	// Pool supplies an existing pool instead, overriding Workers. The
	// System does not own it; the caller closes it. The schedule explorer
	// uses this to share one pool across thousands of rebuilt fleets.
	Pool *viewmgr.Pool
	// Obs attaches an observability pipeline to every process: pipeline
	// metrics land in its registry, and when tracing is enabled each
	// update's journey (commit → route → al → rel → submit → wh_commit)
	// is emitted as trace events keyed by sequence number.
	Obs *obs.Pipeline
	// Replicate attaches an in-process read replica fed synchronously from
	// the warehouse's replication feed. With tracing enabled it emits the
	// same repl_pub / repl_apply / repl_snap events a live follower would,
	// so simulated and explored runs assemble the same span chains as
	// multi-process replicated deployments.
	Replicate bool
}

// System is the assembled set of processes.
type System struct {
	Cluster    *source.Cluster
	Integrator *integrator.Integrator
	Warehouse  *warehouse.Warehouse
	Merges     []*merge.Merge
	Managers   map[msg.ViewID]viewmgr.Manager
	Groups     map[msg.ViewID]int
	Algorithm  merge.Algorithm
	Views      map[msg.ViewID]expr.Expr
	// Replica is the in-process read replica (Config.Replicate), fed by
	// every warehouse commit; nil otherwise.
	Replica *warehouse.Replica
	// Plan is the shared maintenance-plan DAG (Config.SharedPlans); nil
	// in per-view mode. Owned by the integrator once the system runs.
	Plan *plan.DAG
	// Pool is the view managers' shared worker pool (nil when serial).
	Pool *viewmgr.Pool
	// ownedPool marks a pool Build created from Config.Workers, which
	// Close shuts down.
	ownedPool bool

	matcher *integrator.Matcher
	obsp    *obs.Pipeline

	mu sync.Mutex
	// Freshness expectations. An update is expected to reach every view it
	// is relevant to — but a boundary manager (complete-N, refresh) only
	// emits at multiples of its boundary, and MVC then legitimately holds
	// the update back from EVERY relevant view. Such expectations stay
	// dormant until each boundary view involved has crossed the update.
	relevantCount map[msg.ViewID]int
	boundary      map[msg.ViewID]int // emit boundary (complete-N N, refresh period)
	outstanding   []*expectation
	dormant       map[msg.ViewID][]*expectation // keyed by the boundary views holding them
}

// expectation records that update Seq must eventually be reflected by all
// Views; Holds counts boundary views that have not yet crossed it.
type expectation struct {
	Seq   msg.UpdateID
	Views []msg.ViewID
	Holds int
}

// Build assembles the system.
func Build(cfg Config) (*System, error) {
	if len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("system: at least one source is required")
	}
	if len(cfg.Views) == 0 {
		return nil, fmt.Errorf("system: at least one view is required")
	}
	cluster := source.NewCluster(cfg.Clock)
	if cfg.Obs != nil {
		cluster.SetObs(cfg.Obs)
	}
	for _, s := range cfg.Sources {
		cluster.AddSource(s.ID)
		for name, rel := range s.Relations {
			if err := cluster.LoadRelation(s.ID, name, rel); err != nil {
				return nil, err
			}
		}
	}

	if cfg.OptimizeViews {
		optimized := make([]ViewDef, len(cfg.Views))
		copy(optimized, cfg.Views)
		for i := range optimized {
			optimized[i].Expr = expr.Optimize(optimized[i].Expr)
		}
		cfg.Views = optimized
	}
	views := make(map[msg.ViewID]expr.Expr, len(cfg.Views))
	levels := make([]msg.Level, 0, len(cfg.Views))
	for _, v := range cfg.Views {
		if _, dup := views[v.ID]; dup {
			return nil, fmt.Errorf("system: duplicate view id %q", v.ID)
		}
		views[v.ID] = v.Expr
		levels = append(levels, v.Manager.Level())
		for _, rel := range v.Expr.BaseRelations() {
			if _, ok := cluster.Owner(rel); !ok {
				return nil, fmt.Errorf("system: view %s reads unknown base relation %q", v.ID, rel)
			}
		}
	}

	algorithm := merge.ForLevel(levels...)
	if cfg.Algorithm != nil {
		algorithm = *cfg.Algorithm
	}

	groups := make(map[msg.ViewID]int, len(cfg.Views))
	nGroups := 1
	if cfg.DistributedMerge {
		groups = merge.Partition(views)
		if err := merge.CheckPartition(views, groups); err != nil {
			return nil, err
		}
		nGroups = merge.Groups(groups)
	} else {
		for id := range views {
			groups[id] = 0
		}
	}

	infos := make([]integrator.ViewInfo, 0, len(cfg.Views))
	for _, v := range cfg.Views {
		infos = append(infos, integrator.ViewInfo{ID: v.ID, Expr: v.Expr, MergeGroup: groups[v.ID]})
	}
	var iopts []integrator.Option
	if cfg.RelevanceFilter {
		iopts = append(iopts, integrator.WithRelevanceFilter())
	}
	if cfg.EmptyRelevantSets {
		iopts = append(iopts, integrator.WithEmptyRelevantSets())
	}
	if cfg.RelayRelevantSets {
		iopts = append(iopts, integrator.WithRelayedRelevantSets())
	}
	if cfg.Obs != nil {
		iopts = append(iopts, integrator.WithObs(cfg.Obs))
	}
	if cfg.SelfMaintain {
		if cfg.SharedPlans {
			return nil, fmt.Errorf("system: self-maintenance is incompatible with shared plans (the DAG already computes per-view deltas upstream)")
		}
		converted := make([]ViewDef, len(cfg.Views))
		copy(converted, cfg.Views)
		for i := range converted {
			if converted[i].Manager == Complete || converted[i].Manager == CompleteQuery {
				converted[i].Manager = SelfMaintaining
			}
		}
		cfg.Views = converted
	}
	var dag *plan.DAG
	if cfg.SharedPlans {
		pviews := make([]plan.View, 0, len(cfg.Views))
		for _, v := range cfg.Views {
			if v.Manager == CompleteQuery || v.Manager == QueryBatching || v.Manager == SelfMaintaining {
				return nil, fmt.Errorf("system: shared plans are incompatible with query-based manager kind %v (view %s)", v.Manager, v.ID)
			}
			pviews = append(pviews, plan.View{ID: v.ID, Expr: v.Expr})
		}
		var err error
		dag, err = plan.Build(pviews, cluster.DatabaseAt(0))
		if err != nil {
			return nil, err
		}
		iopts = append(iopts, integrator.WithSharedPlans(dag))
	}
	integ := integrator.New(infos, iopts...)

	pool := cfg.Pool
	ownedPool := false
	if pool == nil && cfg.Workers > 0 {
		pool = viewmgr.NewPool(cfg.Workers)
		ownedPool = true
	}
	if cfg.Obs != nil {
		pool.SetObs(cfg.Obs.Reg())
	}

	initDB := cluster.DatabaseAt(0)
	sys := &System{
		Cluster:       cluster,
		Integrator:    integ,
		Managers:      make(map[msg.ViewID]viewmgr.Manager, len(cfg.Views)),
		Groups:        groups,
		Algorithm:     algorithm,
		Views:         views,
		Plan:          dag,
		matcher:       integ.Matcher(),
		Pool:          pool,
		ownedPool:     ownedPool,
		relevantCount: make(map[msg.ViewID]int),
		boundary:      make(map[msg.ViewID]int),
		dormant:       make(map[msg.ViewID][]*expectation),
	}

	initial := make(map[msg.ViewID]*relation.Relation, len(cfg.Views))
	for _, v := range cfg.Views {
		val, err := expr.Eval(v.Expr, initDB)
		if err != nil {
			return nil, fmt.Errorf("system: initializing view %s: %w", v.ID, err)
		}
		initial[v.ID] = val

		mc := viewmgr.Config{
			View:         v.ID,
			Expr:         v.Expr,
			Merge:        msg.NodeMerge(groups[v.ID]),
			ComputeDelay: v.ComputeDelay,
			StageData:    v.StageData,
			Pool:         pool,
			Obs:          cfg.Obs,
			SharedDeltas: cfg.SharedPlans,
			MaxAuxRows:   cfg.MaxAuxRows,
		}
		var mgr viewmgr.Manager
		switch v.Manager {
		case Complete:
			mgr, err = viewmgr.NewComplete(mc, initDB)
		case CompleteQuery:
			mgr = viewmgr.NewCompleteQuery(mc)
		case SelfMaintaining:
			mgr, err = viewmgr.NewSelfMaintaining(mc, initDB)
		case Batching:
			mgr, err = viewmgr.NewBatching(mc, initDB)
		case QueryBatching:
			mgr = viewmgr.NewQueryBatching(mc, val)
		case Refresh:
			mgr, err = viewmgr.NewRefresh(mc, initDB, max(v.Param, 1))
			sys.boundary[v.ID] = max(v.Param, 1)
		case CompleteN:
			mgr, err = viewmgr.NewCompleteN(mc, initDB, max(v.Param, 1))
			sys.boundary[v.ID] = max(v.Param, 1)
		case Convergent:
			mgr, err = viewmgr.NewConvergent(mc, initDB)
		default:
			err = fmt.Errorf("system: unknown manager kind %v", v.Manager)
		}
		if err != nil {
			return nil, err
		}
		sys.Managers[v.ID] = mgr
	}

	var whOpts []warehouse.Option
	if cfg.LogStates {
		whOpts = append(whOpts, warehouse.WithStateLog())
	}
	if cfg.WarehouseExecDelay != nil {
		whOpts = append(whOpts, warehouse.WithExecDelay(cfg.WarehouseExecDelay))
	}
	if cfg.CommitObserver != nil {
		whOpts = append(whOpts, warehouse.WithCommitObserver(cfg.CommitObserver))
	}
	if cfg.Obs != nil {
		whOpts = append(whOpts, warehouse.WithObs(cfg.Obs))
	}
	sys.obsp = cfg.Obs
	if cfg.Replicate {
		sys.Replica = warehouse.NewReplica()
		whOpts = append(whOpts, warehouse.WithReplFeed(64, sys.applyReplica))
	}
	sys.Warehouse = warehouse.New(initial, whOpts...)
	if cfg.Replicate {
		// Seed the replica with the epoch-0 checkpoint so the first live
		// epoch (1) applies densely, exactly like a follower's catch-up.
		snap := sys.Warehouse.Snapshot()
		// Term-0 in-process checkpoints are never fenced; Install cannot fail.
		_ = sys.Replica.Install(snap.ReplMsg(snap.Epoch))
	}

	for g := 0; g < nGroups; g++ {
		var strat merge.Strategy
		self := msg.NodeMerge(g)
		switch cfg.Commit {
		case Sequential:
			strat = merge.NewSequential(self, g)
		case Dependency:
			strat = merge.NewDependency(self, g)
		case Batched:
			flush := cfg.FlushAfter
			if flush == 0 {
				flush = 1_000_000 // 1ms default so partial batches drain
			}
			strat = merge.NewBatched(self, g, max(cfg.BatchSize, 1), flush)
		case Immediate:
			strat = merge.NewImmediate(self, g)
		default:
			return nil, fmt.Errorf("system: unknown commit strategy %v", cfg.Commit)
		}
		var mopts []merge.Option
		if cfg.RelayRelevantSets {
			mopts = append(mopts, merge.WithRelayedRELs())
		}
		if cfg.Obs != nil {
			mopts = append(mopts, merge.WithObs(cfg.Obs))
		}
		sys.Merges = append(sys.Merges, merge.New(g, algorithm, strat, mopts...))
	}
	return sys, nil
}

// ReplicaNode names the in-process replica in trace events.
const ReplicaNode = "replica"

// applyReplica feeds one committed epoch into the in-process replica
// (Config.Replicate). It runs synchronously on the warehouse commit path,
// so timestamps reuse the commit's clock — virtual time under the
// simulator — and the emitted repl_apply events stay deterministic. A gap
// (duplicate epochs are skipped silently) reinstalls from the current
// snapshot, the in-process analogue of a follower's checkpoint repair.
func (s *System) applyReplica(e msg.ReplEpoch) {
	if err := s.Replica.ApplyEpoch(e); err != nil {
		snap := s.Warehouse.Snapshot()
		// Term-0 in-process checkpoints are never fenced; Install cannot fail.
		_ = s.Replica.Install(snap.ReplMsg(snap.Epoch))
		if s.obsp.Tracing() {
			s.obsp.Trace(obs.Event{
				TS: e.CommitAt, Node: ReplicaNode, Stage: obs.StageReplSnap,
				Epoch: snap.Epoch,
			}.Ctx(e.Trace.Next(e.CommitAt)))
		}
		return
	}
	if s.Replica.Epoch() != e.Epoch {
		return // duplicate, skipped by the replica
	}
	if s.obsp.Tracing() {
		rows := make([]int64, len(e.Rows))
		for i, r := range e.Rows {
			rows[i] = int64(r)
		}
		s.obsp.Trace(obs.Event{
			TS: e.CommitAt, Node: ReplicaNode, Stage: obs.StageReplApply,
			Txn: int64(e.Txn), Rows: rows, Epoch: e.Epoch,
		}.Ctx(e.Trace.Next(e.CommitAt)))
	}
}

// StateNode is the durable-state contract (mirrors durable.Durable):
// a process that can snapshot its full state to bytes and restore it.
type StateNode interface {
	MarshalState() ([]byte, error)
	RestoreState([]byte) error
}

// DurableNodes returns every process that supports durable snapshots,
// keyed by its msg node name (the cluster under msg.NodeCluster even
// though the snapshot captures the *source.Cluster behind the node
// wrapper). The second result lists processes that do NOT support
// state capture; every built-in manager kind — including the
// query-based ones, whose QID bookkeeping and backlog now snapshot
// like everything else — implements StateNode, so it is empty unless
// a caller installs a custom manager without MarshalState/RestoreState.
func (s *System) DurableNodes() (map[string]StateNode, []string) {
	parts := make(map[string]StateNode)
	var missing []string
	parts[msg.NodeCluster] = s.Cluster
	parts[msg.NodeIntegrator] = s.Integrator
	parts[msg.NodeWarehouse] = s.Warehouse
	for _, m := range s.Merges {
		parts[m.ID()] = m
	}
	for id, mgr := range s.Managers {
		if sn, ok := mgr.(StateNode); ok {
			parts[msg.NodeViewManager(id)] = sn
		} else {
			missing = append(missing, msg.NodeViewManager(id))
		}
	}
	return parts, missing
}

// Close releases resources the System owns — currently the worker pool
// created from Config.Workers. A pool supplied via Config.Pool is the
// caller's to close. Safe to call on a serial system and safe to call
// twice.
func (s *System) Close() {
	if s.ownedPool {
		s.Pool.Close()
	}
}

// Nodes returns every process of the system.
func (s *System) Nodes() []msg.Node {
	nodes := []msg.Node{source.NewNode(s.Cluster), s.Integrator, s.Warehouse}
	for _, m := range s.Merges {
		nodes = append(nodes, m)
	}
	for _, mgr := range s.Managers {
		nodes = append(nodes, mgr)
	}
	return nodes
}

// TrackUpdate records an executed update for freshness expectations.
// Drivers call it for every update they feed the integrator.
func (s *System) TrackUpdate(u msg.Update) {
	rel := s.matcher.Match(u)
	if len(rel) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]msg.ViewID, 0, len(rel))
	for id := range rel {
		views = append(views, id)
		s.relevantCount[id]++
	}
	// Opportunistically prune satisfied expectations so drivers that never
	// poll Fresh() do not accumulate them without bound.
	if len(s.outstanding) > 0 && len(s.outstanding)%256 == 0 {
		upto := s.Warehouse.Upto()
		live := s.outstanding[:0]
		for _, e := range s.outstanding {
			done := true
			for _, id := range e.Views {
				if upto[id] < e.Seq {
					done = false
					break
				}
			}
			if !done {
				live = append(live, e)
			}
		}
		s.outstanding = live
	}
	e := &expectation{Seq: u.Seq, Views: views}
	var crossed []msg.ViewID
	for _, id := range views {
		b := s.boundary[id]
		if b <= 1 {
			continue
		}
		if s.relevantCount[id]%b == 0 {
			crossed = append(crossed, id)
		} else {
			// This boundary view holds the update until its next boundary.
			e.Holds++
			s.dormant[id] = append(s.dormant[id], e)
		}
	}
	if e.Holds == 0 {
		s.outstanding = append(s.outstanding, e)
	}
	// A boundary view crossing its boundary releases every update it was
	// holding (its covering list reaches u.Seq).
	for _, id := range crossed {
		held := s.dormant[id]
		s.dormant[id] = nil
		for _, d := range held {
			d.Holds--
			if d.Holds == 0 {
				s.outstanding = append(s.outstanding, d)
			}
		}
	}
}

// FreshTargets returns, per view, the newest update the view is expected
// to eventually reflect.
func (s *System) FreshTargets() map[msg.ViewID]msg.UpdateID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[msg.ViewID]msg.UpdateID)
	for _, e := range s.outstanding {
		for _, id := range e.Views {
			if e.Seq > out[id] {
				out[id] = e.Seq
			}
		}
	}
	return out
}

// Fresh reports whether the warehouse has satisfied every active
// expectation; satisfied ones are pruned.
func (s *System) Fresh() bool {
	upto := s.Warehouse.Upto()
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.outstanding[:0]
	for _, e := range s.outstanding {
		done := true
		for _, id := range e.Views {
			if upto[id] < e.Seq {
				done = false
				break
			}
		}
		if !done {
			live = append(live, e)
		}
	}
	s.outstanding = live
	return len(live) == 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
