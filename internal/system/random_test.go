package system_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"whips/internal/consistency"
	"whips/internal/msg"
	"whips/internal/sim"
	"whips/internal/system"
	"whips/internal/workload"
)

// TestRandomSystemConfigurations is the generative end-to-end oracle test:
// a random manager fleet, random optimization flags, random commit
// strategy, random latencies and a random workload — run deterministically
// under the simulator and judged by the §2 checker. The achieved level
// must be at least what the weakest manager guarantees (§6.3), and every
// run must converge.
func TestRandomSystemConfigurations(t *testing.T) {
	kinds := []system.ManagerKind{
		system.Complete, system.CompleteQuery, system.Batching,
		system.QueryBatching, system.Refresh, system.CompleteN, system.Convergent,
	}
	commits := []system.CommitKind{system.Sequential, system.Dependency, system.Batched}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		views := workload.PaperViews(system.Complete)
		weakest := msg.Complete
		boundary := false
		for i := range views {
			k := kinds[rng.Intn(len(kinds))]
			views[i].Manager = k
			views[i].Param = 2 + rng.Intn(3)
			if k == system.Refresh || k == system.CompleteN {
				boundary = true
			}
			if rng.Intn(2) == 0 {
				d := int64(50_000 + rng.Intn(300_000))
				views[i].ComputeDelay = func(int) int64 { return d }
			}
			if rng.Intn(4) == 0 && (k == system.Batching || k == system.Refresh || k == system.Convergent) {
				views[i].StageData = true
			}
			if k.Level() < weakest {
				weakest = k.Level()
			}
		}
		cfg := system.Config{
			Sources:           workload.PaperSources(),
			Views:             views,
			Commit:            commits[rng.Intn(len(commits))],
			BatchSize:         1 + rng.Intn(4),
			FlushAfter:        200_000,
			RelevanceFilter:   rng.Intn(2) == 0,
			RelayRelevantSets: rng.Intn(2) == 0,
			LogStates:         true,
		}
		sys, err := system.Build(cfg)
		if err != nil {
			t.Error(err)
			return false
		}
		s := sim.New(sys.Nodes(), sim.UniformLatency(seed^0x77, 1_000, 60_000))
		gen := workload.NewGenerator(seed, workload.PaperSources())
		n := 20 + rng.Intn(20)
		for i := 0; i < n; i++ {
			src, writes := gen.Txn()
			s.InjectAt(int64(i)*int64(20_000+rng.Intn(200_000)), msg.NodeCluster,
				msg.ExecuteTxn{Source: src, Writes: writes})
		}
		s.Run()

		rep, err := consistency.Check(sys.Cluster, sys.Views, sys.Warehouse.Log())
		if err != nil {
			t.Error(err)
			return false
		}
		// Boundary managers (refresh/complete-N) legitimately hold their
		// tails below the final source state; drive extra aligned updates
		// would complicate the oracle, so only demand convergence of the
		// states that did commit: strongness without convergence is vacuous
		// — instead check the achieved level on the prefix by requiring
		// Strong for strong fleets ONLY when the run converged.
		expectLevel := weakest
		if cfg.Commit == system.Batched && expectLevel > msg.Strong {
			expectLevel = msg.Strong // §4.3: batching forfeits completeness
		}
		if !rep.Convergent && !boundary {
			t.Errorf("seed %d: non-boundary run must converge: %+v (%s)\nconfig: %s",
				seed, rep, rep.Violation, describe(cfg))
			return false
		}
		if rep.Convergent && rep.Level() < expectLevel {
			t.Errorf("seed %d: level %v < expected %v (%s)\nconfig: %s",
				seed, rep.Level(), expectLevel, rep.Violation, describe(cfg))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func describe(cfg system.Config) string {
	out := fmt.Sprintf("commit=%v filter=%v relay=%v batch=%d views=[",
		cfg.Commit, cfg.RelevanceFilter, cfg.RelayRelevantSets, cfg.BatchSize)
	for _, v := range cfg.Views {
		out += fmt.Sprintf("%s:%v(param=%d,staged=%v) ", v.ID, v.Manager, v.Param, v.StageData)
	}
	return out + "]"
}

// TestSoakLargeWorkload pushes 3000 updates through a mixed fleet with
// every optimization enabled, under the deterministic simulator, and
// verifies strong consistency end-to-end. Skipped with -short.
func TestSoakLargeWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	views := workload.PaperViews(system.Complete)
	views[0].Manager = system.Batching
	views[0].ComputeDelay = func(int) int64 { return 150_000 }
	views[1].Manager = system.Batching
	views[1].ComputeDelay = func(int) int64 { return 70_000 }
	views[1].StageData = true
	cfg := system.Config{
		Sources:           workload.PaperSources(),
		Views:             views,
		Commit:            system.Dependency,
		RelevanceFilter:   true,
		RelayRelevantSets: true,
		OptimizeViews:     true,
		LogStates:         true,
	}
	sys, err := system.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(sys.Nodes(), sim.UniformLatency(9, 1_000, 80_000))
	gen := workload.NewGenerator(9, workload.PaperSources())
	const n = 3000
	for i := 0; i < n; i++ {
		src, writes := gen.Txn()
		s.InjectAt(int64(i)*60_000, msg.NodeCluster, msg.ExecuteTxn{Source: src, Writes: writes})
	}
	s.Run()
	rep, err := consistency.Check(sys.Cluster, sys.Views, sys.Warehouse.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Strong {
		t.Errorf("soak run must be strong: convergent=%v weak=%v (%s)",
			rep.Convergent, rep.Weak, rep.Violation)
	}
	if sys.Warehouse.Applied() == 0 || sys.Warehouse.PendingCount() != 0 {
		t.Errorf("warehouse: applied=%d pending=%d",
			sys.Warehouse.Applied(), sys.Warehouse.PendingCount())
	}
	for _, m := range sys.Merges {
		if st := m.Stats(); st.RowsLive != 0 || st.HeldALs != 0 {
			t.Errorf("merge not drained: %+v", st)
		}
	}
}
