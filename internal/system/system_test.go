package system_test

import (
	"testing"

	"whips/internal/consistency"
	"whips/internal/expr"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/sim"
	"whips/internal/system"
	"whips/internal/workload"
)

func buildPaper(t *testing.T, kind system.ManagerKind, mut func(*system.Config)) *system.System {
	t.Helper()
	cfg := system.Config{
		Sources:   workload.PaperSources(),
		Views:     workload.PaperViews(kind),
		LogStates: true,
	}
	if mut != nil {
		mut(&cfg)
	}
	sys, err := system.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// drive runs n generated updates through the system under the simulator
// and drains it.
func drive(t *testing.T, sys *system.System, seed int64, n int, latency sim.Latency) *sim.Sim {
	t.Helper()
	s := sim.New(sys.Nodes(), latency)
	gen := workload.NewGenerator(seed, workload.PaperSources())
	for i := 0; i < n; i++ {
		src, writes := gen.Txn()
		s.InjectAt(int64(i)*50_000, msg.NodeCluster, msg.ExecuteTxn{Source: src, Writes: writes})
	}
	s.Run()
	return s
}

func TestBuildSelectsAlgorithmFromLevels(t *testing.T) {
	if got := buildPaper(t, system.Complete, nil).Algorithm; got != merge.SPA {
		t.Errorf("complete → %v", got)
	}
	if got := buildPaper(t, system.Batching, nil).Algorithm; got != merge.PA {
		t.Errorf("batching → %v", got)
	}
	if got := buildPaper(t, system.Convergent, nil).Algorithm; got != merge.Forward {
		t.Errorf("convergent → %v", got)
	}
	forced := merge.PA
	sys := buildPaper(t, system.Complete, func(c *system.Config) { c.Algorithm = &forced })
	if sys.Algorithm != merge.PA {
		t.Errorf("override ignored: %v", sys.Algorithm)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := system.Build(system.Config{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := system.Build(system.Config{Sources: workload.PaperSources()}); err == nil {
		t.Error("no views must fail")
	}
	cfg := system.Config{Sources: workload.PaperSources(), Views: workload.PaperViews(system.Complete)}
	cfg.Views = append(cfg.Views, cfg.Views[0])
	if _, err := system.Build(cfg); err == nil {
		t.Error("duplicate view must fail")
	}
	cfg = system.Config{Sources: workload.PaperSources(), Views: []system.ViewDef{{
		ID: "V", Expr: expr.Scan("Ghost", workload.RSchema), Manager: system.Complete,
	}}}
	if _, err := system.Build(cfg); err == nil {
		t.Error("unknown base relation must fail")
	}
	cfg = system.Config{Sources: workload.PaperSources(), Views: workload.PaperViews(system.Complete), Commit: system.CommitKind(99)}
	if _, err := system.Build(cfg); err == nil {
		t.Error("unknown commit strategy must fail")
	}
	cfg = system.Config{Sources: workload.PaperSources(), Views: []system.ViewDef{{
		ID: "V", Expr: expr.Scan("R", workload.RSchema), Manager: system.ManagerKind(99),
	}}}
	if _, err := system.Build(cfg); err == nil {
		t.Error("unknown manager kind must fail")
	}
}

func TestKindAndCommitStrings(t *testing.T) {
	kinds := map[system.ManagerKind]string{
		system.Complete: "complete", system.CompleteQuery: "complete-query", system.Batching: "batching",
		system.QueryBatching: "query-batching", system.Refresh: "refresh", system.CompleteN: "complete-N",
		system.Convergent: "convergent",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
	commits := map[system.CommitKind]string{
		system.Sequential: "sequential", system.Dependency: "dependency", system.Batched: "batched", system.Immediate: "immediate",
	}
	for k, want := range commits {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
	if system.ManagerKind(99).String() == "" || system.CommitKind(99).String() == "" {
		t.Error("unknown kinds should render")
	}
}

func TestLevelsOfKinds(t *testing.T) {
	if system.Complete.Level() != msg.Complete || system.CompleteQuery.Level() != msg.Complete {
		t.Error("complete kinds")
	}
	if system.Batching.Level() != msg.Strong || system.Refresh.Level() != msg.Strong ||
		system.CompleteN.Level() != msg.Strong || system.QueryBatching.Level() != msg.Strong {
		t.Error("strong kinds")
	}
	if system.Convergent.Level() != msg.Convergent {
		t.Error("convergent kind")
	}
}

func TestSimulatedRunAllManagerKinds(t *testing.T) {
	for _, kind := range []system.ManagerKind{system.Complete, system.CompleteQuery, system.Batching, system.QueryBatching, system.Convergent} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sys := buildPaper(t, kind, nil)
			drive(t, sys, 5, 30, sim.UniformLatency(5, 1_000, 40_000))
			rep, err := consistency.Check(sys.Cluster, sys.Views, sys.Warehouse.Log())
			if err != nil {
				t.Fatal(err)
			}
			want := kind.Level()
			if rep.Level() < want {
				t.Errorf("level = %v, want ≥ %v (%s)", rep.Level(), want, rep.Violation)
			}
			if !rep.Convergent {
				t.Errorf("must converge: %+v", rep)
			}
		})
	}
}

func TestFreshTargetsTracking(t *testing.T) {
	sys := buildPaper(t, system.CompleteN, func(c *system.Config) {
		c.Views[0].Param = 2 // V1 complete-2
		c.Views[1].Manager = system.Complete
	})
	mk := func(seq msg.UpdateID) msg.Update {
		return msg.Update{Seq: seq, Writes: []msg.Write{{
			Relation: "S",
			Delta:    relation.InsertDelta(workload.SSchema, relation.T(int(seq), int(seq))),
		}}}
	}
	sys.TrackUpdate(mk(1))
	targets := sys.FreshTargets()
	// V1 (complete-2) holds update 1 below its boundary — and MVC then
	// holds it back from V2 as well, so no expectation is active yet.
	if len(targets) != 0 {
		t.Errorf("targets = %v, want none while the boundary view holds", targets)
	}
	if !sys.Fresh() {
		t.Error("no active expectations yet")
	}
	// Update 2 crosses V1's boundary: both updates become expected of both
	// views.
	sys.TrackUpdate(mk(2))
	targets = sys.FreshTargets()
	if targets["V1"] != 2 || targets["V2"] != 2 {
		t.Errorf("targets = %v", targets)
	}
	if sys.Fresh() {
		t.Error("nothing applied yet; must not be fresh")
	}
}

// TestImmediateHazardDeterministic demonstrates §4.3: without commit-order
// control, a warehouse that schedules transactions in its own order can
// commit WT_j before WT_i (j > i, overlapping views) and expose an invalid
// state. The exec-delay model makes the first transaction slow and the
// rest fast, deterministically reordering the commits.
func TestImmediateHazardDeterministic(t *testing.T) {
	run := func(commit system.CommitKind) consistency.Report {
		slowFirst := func(txn msg.WarehouseTxn) int64 {
			if len(txn.Rows) > 0 && txn.Rows[0] == 1 {
				return 1_000_000 // the first update's txn stalls inside the DBMS
			}
			return 1_000
		}
		sys, err := system.Build(system.Config{
			Sources:            workload.PaperSources(),
			Views:              workload.PaperViews(system.Complete),
			Commit:             commit,
			LogStates:          true,
			WarehouseExecDelay: slowFirst,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(sys.Nodes(), nil)
		// Two S updates: both views affected by both updates, so WT2
		// depends on WT1.
		for i := 1; i <= 2; i++ {
			s.InjectAt(int64(i), msg.NodeCluster, msg.ExecuteTxn{Source: "src1", Writes: []msg.Write{{
				Relation: "S",
				Delta:    relation.InsertDelta(workload.SSchema, relation.T(i, 3)),
			}}})
		}
		s.Run()
		rep, err := consistency.Check(sys.Cluster, sys.Views, sys.Warehouse.Log())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// system.Immediate: WT2 commits before WT1 → order violated. (The warehouse
	// still converges because deltas commute.)
	if rep := run(system.Immediate); rep.Strong {
		t.Errorf("immediate strategy under reordering DBMS must violate order: %+v", rep)
	} else if !rep.Convergent {
		t.Errorf("immediate strategy must still converge: %+v", rep)
	}
	// system.Sequential and system.Dependency control commit order and stay complete.
	if rep := run(system.Sequential); !rep.Complete {
		t.Errorf("sequential must stay complete: %+v (%s)", rep, rep.Violation)
	}
	if rep := run(system.Dependency); !rep.Complete {
		t.Errorf("dependency must stay complete: %+v (%s)", rep, rep.Violation)
	}
}

func TestDistributedMergeBuild(t *testing.T) {
	srcs, views := workload.DisjointViews(3, system.Complete, nil)
	sys, err := system.Build(system.Config{Sources: srcs, Views: views, DistributedMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Merges) != 3 {
		t.Errorf("merges = %d", len(sys.Merges))
	}
	// Shared-relation views cannot be split: Partition collapses them into
	// one group, so building still succeeds with a single merge.
	srcs2, views2 := workload.SharedViews(3, system.Complete, nil)
	sys2, err := system.Build(system.Config{Sources: srcs2, Views: views2, DistributedMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys2.Merges) != 1 {
		t.Errorf("shared views should collapse to one merge, got %d", len(sys2.Merges))
	}
}
