// Package sim is a deterministic discrete-event simulator over the same
// msg.Node processes the goroutine runtime executes. Virtual time, seeded
// latency models, and strictly ordered event delivery make performance
// experiments (view freshness, merge bottleneck — the study §7 of the
// paper proposes) exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"whips/internal/msg"
)

// event is one scheduled delivery.
type event struct {
	at   int64
	seq  int64 // tiebreaker: scheduling order
	from string
	to   string
	m    any
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Latency models the message delay on an edge. It must be deterministic
// given its own state (e.g. a seeded RNG captured in the closure).
type Latency func(from, to string) int64

// ConstantLatency returns d for every edge.
func ConstantLatency(d int64) Latency { return func(string, string) int64 { return d } }

// UniformLatency draws uniformly from [min,max) with a seeded source.
func UniformLatency(seed, min, max int64) Latency {
	rng := rand.New(rand.NewSource(seed))
	return func(string, string) int64 {
		if max <= min {
			return min
		}
		return min + rng.Int63n(max-min)
	}
}

// Sim is the simulator.
type Sim struct {
	nodes     map[string]msg.Node
	queue     eventHeap
	seq       int64
	now       int64
	latency   Latency
	delivered int64
	// fifoAt tracks, per edge, the delivery time of the edge's last message
	// so random latencies can never reorder an edge (the model the paper's
	// algorithms assume).
	fifoAt map[string]int64
}

// New builds a simulator over nodes with the given latency model (nil means
// zero latency).
func New(nodes []msg.Node, latency Latency) *Sim {
	if latency == nil {
		latency = ConstantLatency(0)
	}
	s := &Sim{
		nodes:   make(map[string]msg.Node, len(nodes)),
		latency: latency,
		fifoAt:  make(map[string]int64),
	}
	for _, n := range nodes {
		if _, dup := s.nodes[n.ID()]; dup {
			panic(fmt.Sprintf("sim: duplicate node id %q", n.ID()))
		}
		s.nodes[n.ID()] = n
	}
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.now }

// Delivered returns how many messages have been delivered.
func (s *Sim) Delivered() int64 { return s.delivered }

// InjectAt schedules a driver message for virtual time at.
func (s *Sim) InjectAt(at int64, to string, m any) {
	if at < s.now {
		at = s.now
	}
	s.push(&event{at: at, from: "driver", to: to, m: m})
}

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// schedule queues an outbound message with edge latency and FIFO clamping.
func (s *Sim) schedule(from string, o msg.Outbound) {
	at := s.now
	if o.Delay > 0 {
		// Self-timers bypass the latency model.
		at += o.Delay
	} else {
		at += s.latency(from, o.To)
		key := from + "→" + o.To
		if last := s.fifoAt[key]; at < last {
			at = last
		}
		s.fifoAt[key] = at
	}
	s.push(&event{at: at, from: from, to: o.To, m: o.Msg})
}

// Step delivers the next event; it reports false when the queue is empty.
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	node, ok := s.nodes[e.to]
	if !ok {
		panic(fmt.Sprintf("sim: message from %q to unknown node %q: %T", e.from, e.to, e.m))
	}
	s.delivered++
	for _, o := range node.Handle(e.m, s.now) {
		s.schedule(e.to, o)
	}
	return true
}

// Run drains the event queue completely and returns the final virtual time.
func (s *Sim) Run() int64 {
	for s.Step() {
	}
	return s.now
}

// RunUntil delivers events with timestamps ≤ t, then sets the clock to t.
func (s *Sim) RunUntil(t int64) {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// QueueLen returns the number of undelivered events (for liveness checks in
// tests).
func (s *Sim) QueueLen() int { return s.queue.Len() }
