package sim

import (
	"fmt"
	"reflect"
	"testing"

	"whips/internal/msg"
)

// echoNode records deliveries and optionally forwards.
type echoNode struct {
	id       string
	received []string
	times    []int64
	forward  []msg.Outbound
}

func (e *echoNode) ID() string { return e.id }

func (e *echoNode) Handle(m any, now int64) []msg.Outbound {
	e.received = append(e.received, fmt.Sprint(m))
	e.times = append(e.times, now)
	out := e.forward
	e.forward = nil
	return out
}

func TestSimDeliversInTimeOrder(t *testing.T) {
	a := &echoNode{id: "a"}
	s := New([]msg.Node{a}, nil)
	s.InjectAt(30, "a", "late")
	s.InjectAt(10, "a", "early")
	s.InjectAt(20, "a", "middle")
	s.Run()
	if !reflect.DeepEqual(a.received, []string{"early", "middle", "late"}) {
		t.Errorf("order = %v", a.received)
	}
	if !reflect.DeepEqual(a.times, []int64{10, 20, 30}) {
		t.Errorf("times = %v", a.times)
	}
	if s.Now() != 30 || s.Delivered() != 3 {
		t.Errorf("now=%d delivered=%d", s.Now(), s.Delivered())
	}
}

func TestSimTieBreakBySchedulingOrder(t *testing.T) {
	a := &echoNode{id: "a"}
	s := New([]msg.Node{a}, nil)
	s.InjectAt(10, "a", "first")
	s.InjectAt(10, "a", "second")
	s.Run()
	if !reflect.DeepEqual(a.received, []string{"first", "second"}) {
		t.Errorf("tie order = %v", a.received)
	}
}

func TestSimLatencyApplied(t *testing.T) {
	b := &echoNode{id: "b"}
	a := &echoNode{id: "a", forward: []msg.Outbound{msg.Send("b", "hop")}}
	s := New([]msg.Node{a, b}, ConstantLatency(50))
	s.InjectAt(0, "a", "go")
	s.Run()
	if len(b.times) != 1 || b.times[0] != 50 {
		t.Errorf("b.times = %v", b.times)
	}
}

func TestSimSelfDelayBypassesLatency(t *testing.T) {
	a := &echoNode{id: "a"}
	a.forward = []msg.Outbound{{To: "a", Msg: "timer", Delay: 7}}
	s := New([]msg.Node{a}, ConstantLatency(1000))
	s.InjectAt(0, "a", "go")
	s.Run()
	// Injection is immediate (the driver is not an edge); the self-timer
	// fires Delay later, ignoring the 1000-unit latency model.
	if len(a.times) != 2 || a.times[0] != 0 || a.times[1] != 7 {
		t.Errorf("a.times = %v", a.times)
	}
}

func TestSimFIFOPerEdgeUnderRandomLatency(t *testing.T) {
	// A sender emits 50 messages to one receiver; random latency must never
	// reorder them (FIFO clamping).
	b := &echoNode{id: "b"}
	a := &echoNode{id: "a"}
	s := New([]msg.Node{a, b}, UniformLatency(42, 0, 100))
	for i := 0; i < 50; i++ {
		a.forward = append(a.forward, msg.Send("b", fmt.Sprintf("m%02d", i)))
	}
	s.InjectAt(0, "a", "go")
	s.Run()
	if len(b.received) != 50 {
		t.Fatalf("received %d", len(b.received))
	}
	for i := 1; i < len(b.received); i++ {
		if b.received[i] < b.received[i-1] {
			t.Fatalf("edge reordered: %v before %v", b.received[i-1], b.received[i])
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []string {
		b := &echoNode{id: "b"}
		a := &echoNode{id: "a"}
		for i := 0; i < 20; i++ {
			a.forward = append(a.forward, msg.Send("b", fmt.Sprintf("m%d", i)))
		}
		s := New([]msg.Node{a, b}, UniformLatency(7, 1, 50))
		s.InjectAt(0, "a", "go")
		s.Run()
		return append(b.received, fmt.Sprint(s.Now()))
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("non-deterministic: %v vs %v", got, first)
		}
	}
}

func TestSimRunUntil(t *testing.T) {
	a := &echoNode{id: "a"}
	s := New([]msg.Node{a}, nil)
	s.InjectAt(10, "a", "x")
	s.InjectAt(100, "a", "y")
	s.RunUntil(50)
	if len(a.received) != 1 {
		t.Errorf("received = %v", a.received)
	}
	if s.Now() != 50 {
		t.Errorf("now = %d", s.Now())
	}
	if s.QueueLen() != 1 {
		t.Errorf("queue = %d", s.QueueLen())
	}
	s.Run()
	if len(a.received) != 2 || s.Now() != 100 {
		t.Errorf("after drain: %v, now=%d", a.received, s.Now())
	}
}

func TestSimInjectInPast(t *testing.T) {
	a := &echoNode{id: "a"}
	s := New([]msg.Node{a}, nil)
	s.InjectAt(100, "a", "x")
	s.Run()
	s.InjectAt(5, "a", "past") // clamped to now
	s.Run()
	if a.times[1] != 100 {
		t.Errorf("past injection delivered at %d", a.times[1])
	}
}

func TestSimPanicsOnUnknownNode(t *testing.T) {
	s := New(nil, nil)
	s.InjectAt(0, "ghost", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown destination must panic")
		}
	}()
	s.Run()
}

func TestSimPanicsOnDuplicateNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node id must panic")
		}
	}()
	New([]msg.Node{&echoNode{id: "a"}, &echoNode{id: "a"}}, nil)
}
