// Package merge implements the paper's contribution: the merge process that
// coordinates concurrent view managers so warehouse updates never violate
// multiple view consistency (MVC).
//
// The merge process receives RELᵢ sets from the integrator and action lists
// ALˣᵢ from view managers, tracks them in the ViewUpdateTable (VUT), and
// releases them to the warehouse in consistency-preserving transactions:
//
//   - The Simple Painting Algorithm (SPA, §4) assumes complete view
//     managers and yields complete MVC: the warehouse visits every source
//     state, in order.
//   - The Painting Algorithm (PA, §5) assumes strongly consistent view
//     managers (which may batch intertwined updates into one action list)
//     and yields strongly consistent MVC.
//   - Forward (§6.3) performs no coordination and is what a fleet
//     containing convergence-only view managers degrades to.
//
// Both painting algorithms are prompt: an action list is never held once
// every consistency-required predecessor has been applied.
package merge

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"whips/internal/msg"
	"whips/internal/obs"
)

// Algorithm selects the coordination algorithm.
type Algorithm uint8

// Available merge algorithms.
const (
	// SPA is the Simple Painting Algorithm (§4); requires complete view
	// managers and guarantees complete MVC.
	SPA Algorithm = iota
	// PA is the Painting Algorithm (§5); accepts strongly consistent view
	// managers and guarantees strongly consistent MVC.
	PA
	// Forward passes action lists straight through (§6.3 convergent mode).
	Forward
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case SPA:
		return "SPA"
	case PA:
		return "PA"
	case Forward:
		return "forward"
	}
	return fmt.Sprintf("algorithm(%d)", uint8(a))
}

// ForLevel returns the weakest-compatible merge algorithm for a fleet of
// view managers with the given consistency levels (§6.3: "use the merge
// algorithm corresponding to the view manager guaranteeing the weakest
// level of consistency").
func ForLevel(levels ...msg.Level) Algorithm {
	weakest := msg.Complete
	for _, l := range levels {
		if l < weakest {
			weakest = l
		}
	}
	switch weakest {
	case msg.Complete:
		return SPA
	case msg.Strong:
		return PA
	default:
		return Forward
	}
}

// Color is a VUT entry color (§4.1).
type Color uint8

// VUT entry colors. Black is represented by the absence of an entry.
const (
	White Color = iota // waiting for the corresponding action list
	Red                // action list received, waiting to be applied
	Gray               // applied
)

func (c Color) String() string {
	switch c {
	case White:
		return "w"
	case Red:
		return "r"
	case Gray:
		return "g"
	}
	return "?"
}

// entry is one VUT cell for a (update, view) pair that is relevant
// (non-black).
type entry struct {
	color Color
	// state is PA's second field: the state the view jumps to when this
	// row's actions apply (0 until the covering action list arrives).
	state msg.UpdateID
}

// row is one VUT row: one source update (or transaction, §6.2).
type row struct {
	seq      msg.UpdateID
	commitAt int64
	entries  map[msg.ViewID]*entry
	views    []msg.ViewID // sorted, for deterministic iteration
	// wt is WTᵢ: the action lists collected for this row.
	wt []heldAL
	// Promptness bookkeeping (§4.4). createdAt is REL arrival; readyAt is
	// when the last white entry turned red (every needed list present);
	// unblockAt is the newest state change that made the row a dispatch
	// candidate. The promptness gap at submission — time the row sat
	// applicable but unapplied — is now minus the later of the two.
	createdAt int64
	readyAt   int64
	unblockAt int64
	// trace is the causal context carried by this row's RELᵢ (nil when
	// tracing is off upstream); the submit stage forwards the best context
	// covering the transaction.
	trace *obs.TraceCtx
}

type heldAL struct {
	al         msg.ActionList
	receivedAt int64
}

// column tracks per-view-manager bookkeeping: which rows are white
// (awaiting an AL) and which are red (AL received, unapplied), both in
// ascending order. nextRed(i, x) of the paper is nextAfter on the red list.
//
// buffered and covered exist for §3.2's relayed-REL routing, where RELᵢ
// rides with one view manager's traffic and can overtake or trail other
// managers' action lists:
//
//   - waiting queues this manager's action lists that cannot be processed
//     yet because their own RELᵢ (or an earlier list's) has not arrived.
//     Lists from one manager MUST be processed in generation order — a
//     later batched list would otherwise steal white entries belonging to
//     an earlier one — so the queue drains strictly from the front.
//   - covered records the [From,Upto] ranges of processed (batched) action
//     lists, so a row whose RELᵢ arrives after the list that covered it
//     can be painted red (joining the still-live batch row) or gray (the
//     batch already committed, its delta included this row's effect).
type column struct {
	whites  []msg.UpdateID
	reds    []msg.UpdateID
	waiting []heldAL
	covered []coveredRange
}

type coveredRange struct {
	from, upto msg.UpdateID
}

func (c *column) firstRed() (msg.UpdateID, bool) {
	if len(c.reds) == 0 {
		return 0, false
	}
	return c.reds[0], true
}

func (c *column) redsBefore(i msg.UpdateID) []msg.UpdateID {
	n := sort.Search(len(c.reds), func(k int) bool { return c.reds[k] >= i })
	return append([]msg.UpdateID(nil), c.reds[:n]...)
}

func (c *column) nextRedAfter(i msg.UpdateID) msg.UpdateID {
	n := sort.Search(len(c.reds), func(k int) bool { return c.reds[k] > i })
	if n == len(c.reds) {
		return 0
	}
	return c.reds[n]
}

func (c *column) removeRed(i msg.UpdateID) {
	n := sort.Search(len(c.reds), func(k int) bool { return c.reds[k] >= i })
	if n < len(c.reds) && c.reds[n] == i {
		c.reds = append(c.reds[:n], c.reds[n+1:]...)
	}
}

// takeWhitesUpTo removes and returns the white rows ≤ i.
func (c *column) takeWhitesUpTo(i msg.UpdateID) []msg.UpdateID {
	n := sort.Search(len(c.whites), func(k int) bool { return c.whites[k] > i })
	out := append([]msg.UpdateID(nil), c.whites[:n]...)
	c.whites = append(c.whites[:0], c.whites[n:]...)
	return out
}

// addSorted inserts i into an ascending slice (late-REL rows may join the
// red list out of arrival order).
func addSorted(s []msg.UpdateID, i msg.UpdateID) []msg.UpdateID {
	n := sort.Search(len(s), func(k int) bool { return s[k] >= i })
	s = append(s, 0)
	copy(s[n+1:], s[n:])
	s[n] = i
	return s
}

// hasBufferedBefore reports whether an earlier action list from this
// manager is still waiting for its RELᵢ. (With strictly in-order queue
// draining this cannot coexist with a processed later list; the check is
// kept as a defensive invariant.)
func (c *column) hasBufferedBefore(i msg.UpdateID) bool {
	return len(c.waiting) > 0 && c.waiting[0].al.Upto < i
}

// coveredBy returns the processed-list range containing row i, if any.
func (c *column) coveredBy(i msg.UpdateID) (coveredRange, bool) {
	n := sort.Search(len(c.covered), func(k int) bool { return c.covered[k].upto >= i })
	if n < len(c.covered) && c.covered[n].from <= i && i <= c.covered[n].upto {
		return c.covered[n], true
	}
	return coveredRange{}, false
}

// Stats are the merge process's observability counters.
type Stats struct {
	RELsReceived  int64
	ALsReceived   int64
	TxnsSubmitted int64
	RowsApplied   int64
	RowsLive      int   // current VUT occupancy
	MaxRowsLive   int   // high-water mark
	HeldALs       int64 // ALs currently buffered
	// Hold latency: time from AL receipt to its submission to the
	// warehouse, aggregated. This is the promptness measure (§4.4).
	HoldCount int64
	HoldSum   int64
	HoldMax   int64
	// DeltaTuples counts tuple changes flowing through the merge process —
	// zero for §6.3 staged (out-of-band) lists, whose data bypasses it.
	DeltaTuples int64
	// Promptness gap (§4.4): per submitted transaction, the time between
	// the moment its rows became applicable and the submission. The
	// painting algorithms are prompt, so the gap is 0 whenever cascades
	// run synchronously (same Handle call, same clock reading).
	PromptGapCount int64
	PromptGapSum   int64
	PromptGapMax   int64
}

// TraceEvent is emitted (when tracing is enabled) after each state change,
// carrying a rendered VUT. The golden tests for the paper's Examples 2, 3
// and 5 consume these.
type TraceEvent struct {
	Kind string // "rel", "al", "apply", "flush"
	Seq  msg.UpdateID
	View msg.ViewID
	Rows []msg.UpdateID // rows applied (Kind == "apply")
	VUT  string
}

// Merge is the merge process. It implements msg.Node.
type Merge struct {
	// mu makes the public inspection surface (Stats, RenderVUT,
	// VUTSnapshot) safe against the node goroutine running Handle — the
	// debug HTTP server and whips.Stats() read from other goroutines.
	mu sync.Mutex

	group     int
	algorithm Algorithm
	strategy  Strategy

	rows    map[msg.UpdateID]*row
	rowSeqs []msg.UpdateID // live rows, ascending
	cols    map[msg.ViewID]*column

	// applySet/applyList implement PA's ApplyRows.
	applySet  map[msg.UpdateID]bool
	applyList []msg.UpdateID

	// relayMode supports §3.2's alternative REL routing. With RELᵢ riding
	// view-manager channels, they can arrive out of order and trail action
	// lists; the merge then requires gap-free REL numbering (the
	// integrator sends empty RELs for updates relevant to no view of this
	// group) and blocks any application beyond relFrontier — the largest n
	// with RELs 1..n received — because a batched list reaching past the
	// frontier might cover an update whose other affected views are not
	// yet known.
	relayMode   bool
	relSeen     map[msg.UpdateID]bool
	relFrontier msg.UpdateID

	stats Stats
	trace func(TraceEvent)

	obsp *obs.Pipeline
	mo   mergeObs
}

// mergeObs holds the merge process's metric handles, resolved once at
// construction. All fields are nil (no-op) without WithObs.
type mergeObs struct {
	rels, als, txns  *obs.Counter
	rowsTotal        *obs.Counter
	paintWR, paintRG *obs.Counter
	deltaTuples      *obs.Counter
	live, liveMax    *obs.Gauge
	heldALs          *obs.Gauge
	hold, residency  *obs.Histogram
	promptGap        *obs.Histogram
	txnWrites        *obs.Histogram
	alTransport      *obs.Histogram
}

func newMergeObs(p *obs.Pipeline, group int) mergeObs {
	r := p.Reg()
	g := strconv.Itoa(group)
	lat, size := obs.LatencyBuckets(), obs.SizeBuckets()
	return mergeObs{
		rels:        r.Counter("merge_rels_total", "group", g),
		als:         r.Counter("merge_als_total", "group", g),
		txns:        r.Counter("merge_txns_total", "group", g),
		rowsTotal:   r.Counter("merge_vut_rows_total", "group", g),
		paintWR:     r.Counter("merge_paint_white_red_total", "group", g),
		paintRG:     r.Counter("merge_paint_red_gray_total", "group", g),
		deltaTuples: r.Counter("merge_delta_tuples_total", "group", g),
		live:        r.Gauge("merge_vut_live", "group", g),
		liveMax:     r.Gauge("merge_vut_live_max", "group", g),
		heldALs:     r.Gauge("merge_held_als", "group", g),
		hold:        r.Histogram("merge_hold_ns", lat, "group", g),
		residency:   r.Histogram("merge_vut_residency_ns", lat, "group", g),
		promptGap:   r.Histogram("merge_prompt_gap_ns", lat, "group", g),
		txnWrites:   r.Histogram("merge_txn_writes", size, "group", g),
		alTransport: r.Histogram("merge_al_transport_ns", lat, "group", g),
	}
}

// Option configures a Merge.
type Option func(*Merge)

// WithTrace installs a trace callback.
func WithTrace(fn func(TraceEvent)) Option { return func(m *Merge) { m.trace = fn } }

// WithRelayedRELs prepares the merge process for §3.2 relayed REL routing.
func WithRelayedRELs() Option {
	return func(m *Merge) {
		m.relayMode = true
		m.relSeen = make(map[msg.UpdateID]bool)
	}
}

// WithObs attaches the observability pipeline: per-group metrics plus
// per-update trace events keyed by the update sequence number.
func WithObs(p *obs.Pipeline) Option { return func(m *Merge) { m.obsp = p } }

// New builds a merge process for group (0 for single-merge systems) running
// algorithm with the given commit strategy. strategy must not be shared
// between merge processes.
func New(group int, algorithm Algorithm, strategy Strategy, opts ...Option) *Merge {
	m := &Merge{
		group:     group,
		algorithm: algorithm,
		strategy:  strategy,
		rows:      make(map[msg.UpdateID]*row),
		cols:      make(map[msg.ViewID]*column),
		applySet:  make(map[msg.UpdateID]bool),
	}
	for _, o := range opts {
		o(m)
	}
	if m.obsp != nil {
		m.mo = newMergeObs(m.obsp, group)
	}
	return m
}

// ID implements msg.Node.
func (m *Merge) ID() string { return msg.NodeMerge(m.group) }

// Algorithm returns the configured algorithm.
func (m *Merge) Algorithm() Algorithm { return m.algorithm }

// Stats returns a copy of the counters. Safe to call concurrently with
// the node goroutine.
func (m *Merge) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.RowsLive = len(m.rows)
	return s
}

// Handle implements msg.Node.
func (m *Merge) Handle(in any, now int64) []msg.Outbound {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch t := in.(type) {
	case msg.RelevantSet:
		return m.onRelevantSet(t, now)
	case msg.ActionList:
		return m.onActionList(t, now)
	case msg.CommitAck:
		return m.strategy.OnAck(t.ID, now)
	case strategyTimer:
		return m.strategy.OnTimer(t, now)
	default:
		return nil
	}
}

// onRelevantSet allocates a VUT row (SPA/PA step "when the merge process
// receives RELi") and processes any buffered action lists for it.
func (m *Merge) onRelevantSet(rel msg.RelevantSet, now int64) []msg.Outbound {
	m.stats.RELsReceived++
	m.mo.rels.Inc()
	if m.obsp.Tracing() {
		m.obsp.Trace(obs.Event{
			TS: now, Node: m.ID(), Stage: obs.StageREL,
			Seq: int64(rel.Seq), Views: viewNames(rel.Views),
		}.Ctx(rel.Trace.Next(now)))
	}
	if m.algorithm == Forward {
		return nil
	}
	if m.rows[rel.Seq] != nil {
		panic(fmt.Sprintf("merge: duplicate REL%d", rel.Seq))
	}
	frontierAdvanced := false
	if m.relayMode {
		if m.relSeen[rel.Seq] {
			panic(fmt.Sprintf("merge: duplicate REL%d", rel.Seq))
		}
		m.relSeen[rel.Seq] = true
		for m.relSeen[m.relFrontier+1] {
			delete(m.relSeen, m.relFrontier+1) // compact: frontier subsumes it
			m.relFrontier++
			frontierAdvanced = true
		}
	} else {
		// Direct routing delivers RELs in sequence order on one channel:
		// everything at or below the newest REL is known.
		m.relFrontier = rel.Seq
	}
	r := &row{
		seq:       rel.Seq,
		commitAt:  rel.CommitAt,
		entries:   make(map[msg.ViewID]*entry, len(rel.Views)),
		views:     append([]msg.ViewID(nil), rel.Views...),
		createdAt: now,
		unblockAt: now,
		trace:     rel.Trace,
	}
	sort.Slice(r.views, func(i, j int) bool { return r.views[i] < r.views[j] })
	allGray := true
	var joined []msg.UpdateID // live batch rows this late row joins
	for _, v := range r.views {
		col := m.col(v)
		// §3.2 relayed routing: this RELᵢ may arrive after the (batched)
		// action list that covered update i was already processed. The
		// row's effect is inside that list's delta, so the entry starts
		// red (tied to the still-live batch row) or gray (batch already
		// committed) rather than white.
		if rng, ok := col.coveredBy(rel.Seq); ok {
			if m.rows[rng.upto] != nil {
				r.entries[v] = &entry{color: Red, state: rng.upto}
				col.reds = addSorted(col.reds, rel.Seq)
				joined = append(joined, rng.upto)
				allGray = false
				m.mo.paintWR.Inc() // born red: the covering list subsumed white
			} else {
				r.entries[v] = &entry{color: Gray, state: rng.upto}
			}
			continue
		}
		r.entries[v] = &entry{color: White}
		col.whites = addSorted(col.whites, rel.Seq)
		allGray = false
	}
	m.markReady(r, now) // rows born without white entries are ready at once
	m.rows[rel.Seq] = r
	m.insertRowSeq(rel.Seq)
	if len(m.rows) > m.stats.MaxRowsLive {
		m.stats.MaxRowsLive = len(m.rows)
	}
	m.mo.rowsTotal.Inc()
	m.mo.live.Set(int64(len(m.rows)))
	m.mo.liveMax.SetMax(int64(len(m.rows)))
	m.emitTrace("rel", rel.Seq, "", nil)

	// Drain every column's waiting queue: lists process strictly in
	// generation order, so each queue drains from the front while the
	// front's REL has arrived.
	var out []msg.Outbound
	for _, v := range r.views {
		out = append(out, m.drainColumn(m.col(v), now)...)
	}
	switch {
	case len(r.views) == 0:
		// No relevant views (the integrator forwards empty RELs): apply an
		// empty transaction under SPA so the state sequence stays complete.
		out = append(out, m.dispatchRow(rel.Seq, now)...)
	case allGray && m.rows[rel.Seq] != nil:
		// Every entry's list was already applied before this late RELᵢ
		// arrived: nothing further will reference the row.
		m.purgeRow(rel.Seq)
		return out
	}
	// A late row that joined live batch rows may complete their closure.
	seen := make(map[msg.UpdateID]bool, len(joined))
	for _, b := range joined {
		if !seen[b] {
			seen[b] = true
			out = append(out, m.dispatchRow(b, now)...)
		}
	}
	// Advancing the REL frontier may unblock rows that were held only by
	// the frontier guard.
	if frontierAdvanced {
		candidates := make([]msg.UpdateID, 0, len(m.rowSeqs))
		for _, seq := range m.rowSeqs {
			if seq > m.relFrontier {
				break
			}
			candidates = append(candidates, seq)
		}
		for _, seq := range candidates {
			if m.rows[seq] != nil {
				out = append(out, m.dispatchRow(seq, now)...)
			}
		}
	}
	return out
}

// onActionList buffers or processes ALˣᵢ, after unpacking any piggybacked
// RELᵢ sets (§3.2 relayed routing) — those logically precede the list.
func (m *Merge) onActionList(al msg.ActionList, now int64) []msg.Outbound {
	var out []msg.Outbound
	if len(al.Rels) > 0 {
		rels := al.Rels
		al.Rels = nil
		for _, r := range rels {
			out = append(out, m.onRelevantSet(r, now)...)
		}
		return append(out, m.onActionList(al, now)...)
	}
	m.stats.ALsReceived++
	m.mo.als.Inc()
	if al.EmittedAt > 0 && now >= al.EmittedAt {
		m.mo.alTransport.Observe(now - al.EmittedAt)
	}
	if m.obsp.Tracing() {
		m.obsp.Trace(obs.Event{
			TS: now, Node: m.ID(), Stage: obs.StageALRecv,
			Seq: int64(al.Upto), View: string(al.View),
			From: int64(al.From), Upto: int64(al.Upto),
		}.Ctx(al.Trace.Next(now)))
	}
	h := heldAL{al: al, receivedAt: now}
	if m.algorithm == Forward {
		// §6.3: pass along everything; convergence only.
		return m.submitRows(now, []msg.UpdateID{al.Upto}, []heldAL{h}, al.View)
	}
	col := m.col(al.View)
	if len(col.waiting) > 0 || m.rows[al.Upto] == nil {
		// Either this list's own RELᵢ has not arrived (§4: "the merge
		// process may receive a list ALxj without having received RELj"),
		// or an earlier list from the same manager is still waiting —
		// processing out of generation order would mis-cover white rows.
		col.waiting = append(col.waiting, h)
		m.stats.HeldALs++
		m.mo.heldALs.Set(m.stats.HeldALs)
		m.emitTrace("al", al.Upto, al.View, nil)
		return nil
	}
	return m.processAction(h, now)
}

// processAction implements ProcessAction(ALxi) for the configured
// algorithm.
func (m *Merge) processAction(h heldAL, now int64) []msg.Outbound {
	al := h.al
	r := m.rows[al.Upto]
	e := r.entries[al.View]
	if e == nil {
		panic(fmt.Sprintf("merge: %s arrived but view %s is not relevant to update %d",
			al, al.View, al.Upto))
	}
	col := m.col(al.View)
	switch m.algorithm {
	case SPA:
		// A complete view manager sends exactly one AL per relevant update,
		// in order; its earliest white must therefore be this row.
		if e.color != White {
			panic(fmt.Sprintf("merge: duplicate %s", al))
		}
		whites := col.takeWhitesUpTo(al.Upto)
		if len(whites) != 1 || whites[0] != al.Upto {
			panic(fmt.Sprintf("merge: SPA requires complete view managers, but %s skips rows %v", al, whites))
		}
		e.color = Red
		col.reds = addSorted(col.reds, al.Upto)
		m.mo.paintWR.Inc()
		m.markReady(r, now)
	case PA:
		// §5: the list covers every white row ≤ i in this column; they all
		// turn red with state = i. The covered range is remembered so a
		// row whose relayed RELᵢ arrives later (§3.2 alternative routing)
		// can still be tied to this list.
		if e.color != White {
			panic(fmt.Sprintf("merge: duplicate %s", al))
		}
		for _, w := range col.takeWhitesUpTo(al.Upto) {
			wr := m.rows[w]
			we := wr.entries[al.View]
			we.color = Red
			we.state = al.Upto
			col.reds = addSorted(col.reds, w)
			m.mo.paintWR.Inc()
			m.markReady(wr, now)
		}
		col.covered = append(col.covered, coveredRange{from: al.From, upto: al.Upto})
	}
	r.wt = append(r.wt, h)
	m.emitTrace("al", al.Upto, al.View, nil)
	return m.dispatchRow(al.Upto, now)
}

// drainColumn processes the column's waiting action lists, strictly in
// generation order, for as long as the front list's row exists.
func (m *Merge) drainColumn(col *column, now int64) []msg.Outbound {
	var out []msg.Outbound
	for len(col.waiting) > 0 && m.rows[col.waiting[0].al.Upto] != nil {
		h := col.waiting[0]
		col.waiting = col.waiting[1:]
		m.stats.HeldALs--
		m.mo.heldALs.Set(m.stats.HeldALs)
		out = append(out, m.processAction(h, now)...)
	}
	return out
}

// markReady stamps the moment the row's last white entry disappeared —
// from then on only cross-row dependencies can hold it back.
func (m *Merge) markReady(r *row, now int64) {
	if r.readyAt != 0 {
		return
	}
	for _, v := range r.views {
		if r.entries[v].color == White {
			return
		}
	}
	r.readyAt = now
}

// dispatchRow runs the algorithm-specific ProcessRow entry point. The
// per-row unblockAt stamp lives inside spaProcessRow/paTryRow so cascade
// recursion (which bypasses dispatchRow) is stamped too.
func (m *Merge) dispatchRow(i msg.UpdateID, now int64) []msg.Outbound {
	switch m.algorithm {
	case SPA:
		return m.spaProcessRow(i, now)
	case PA:
		out, _ := m.paTryRow(i, now)
		return out
	default:
		return nil
	}
}

func (m *Merge) col(v msg.ViewID) *column {
	c := m.cols[v]
	if c == nil {
		c = &column{}
		m.cols[v] = c
	}
	return c
}

func (m *Merge) insertRowSeq(i msg.UpdateID) {
	n := sort.Search(len(m.rowSeqs), func(k int) bool { return m.rowSeqs[k] >= i })
	m.rowSeqs = append(m.rowSeqs, 0)
	copy(m.rowSeqs[n+1:], m.rowSeqs[n:])
	m.rowSeqs[n] = i
}

func (m *Merge) purgeRow(i msg.UpdateID) {
	delete(m.rows, i)
	n := sort.Search(len(m.rowSeqs), func(k int) bool { return m.rowSeqs[k] >= i })
	if n < len(m.rowSeqs) && m.rowSeqs[n] == i {
		m.rowSeqs = append(m.rowSeqs[:n], m.rowSeqs[n+1:]...)
	}
	m.mo.live.Set(int64(len(m.rows)))
	m.emitTrace("purge", i, "", nil)
}

// submitRows builds one warehouse transaction from the given rows' action
// lists and hands it to the commit strategy. ALs within the transaction are
// ordered by (Upto, view) so dependent actions apply in source order.
func (m *Merge) submitRows(now int64, rows []msg.UpdateID, held []heldAL, _ msg.ViewID) []msg.Outbound {
	sort.Slice(held, func(a, b int) bool {
		if held[a].al.Upto != held[b].al.Upto {
			return held[a].al.Upto < held[b].al.Upto
		}
		return held[a].al.View < held[b].al.View
	})
	var writes []msg.ViewWrite
	for _, h := range held {
		writes = append(writes, msg.ViewWrite{View: h.al.View, Upto: h.al.Upto, Delta: h.al.Delta, Staged: h.al.Staged})
		if !h.al.Staged {
			m.stats.DeltaTuples += h.al.Delta.Size()
			m.mo.deltaTuples.Add(h.al.Delta.Size())
		}
		m.stats.HoldCount++
		lat := now - h.receivedAt
		m.stats.HoldSum += lat
		if lat > m.stats.HoldMax {
			m.stats.HoldMax = lat
		}
		m.mo.hold.Observe(lat)
	}
	// Promptness gap (§4.4): time since the last state change that made
	// this transaction's rows applicable. The painting algorithms cascade
	// synchronously within one Handle call, so the gap is 0 on every
	// conforming trace; a positive gap means eligible work sat in the VUT.
	var eligibleAt int64
	sawRow := false
	for _, i := range rows {
		if r := m.rows[i]; r != nil {
			sawRow = true
			if r.readyAt > eligibleAt {
				eligibleAt = r.readyAt
			}
			if r.unblockAt > eligibleAt {
				eligibleAt = r.unblockAt
			}
			m.mo.residency.Observe(now - r.createdAt)
		}
	}
	if sawRow {
		gap := now - eligibleAt
		m.stats.PromptGapCount++
		m.stats.PromptGapSum += gap
		if gap > m.stats.PromptGapMax {
			m.stats.PromptGapMax = gap
		}
		m.mo.promptGap.Observe(gap)
	}
	m.mo.txns.Inc()
	m.mo.txnWrites.Observe(int64(len(writes)))
	// Forward the best causal context covering the transaction: the newest
	// covered update's, preferring the deepest hop (an action list's context
	// over its REL's). Nil throughout when tracing is off upstream.
	var tbase *obs.TraceCtx
	for _, h := range held {
		tbase = betterCtx(tbase, h.al.Trace)
	}
	for _, i := range rows {
		if r := m.rows[i]; r != nil {
			tbase = betterCtx(tbase, r.trace)
		}
	}
	tctx := tbase.Next(now)
	if m.obsp.Tracing() {
		m.obsp.Trace(obs.Event{
			TS: now, Node: m.ID(), Stage: obs.StageSubmit,
			Rows: seqInts(rows), N: int64(len(writes)),
		}.Ctx(tctx))
	}
	// CommitAt carries the earliest source commit covered, for freshness
	// accounting downstream. The minimum is over the rows still present in
	// the VUT, wherever they sit in the slice: anchoring it to rows[0]
	// would leave CommitAt at 0 whenever the first id was already purged,
	// and the warehouse's CommitAt > 0 guard would drop the sample.
	commitAt := int64(0)
	first := true
	for _, i := range rows {
		if r := m.rows[i]; r != nil && (first || r.commitAt < commitAt) {
			commitAt = r.commitAt
			first = false
		}
	}
	txn := msg.WarehouseTxn{
		Rows:     append([]msg.UpdateID(nil), rows...),
		Writes:   writes,
		CommitAt: commitAt,
		Trace:    tctx,
	}
	m.stats.TxnsSubmitted++
	m.stats.RowsApplied += int64(len(rows))
	m.emitTrace("apply", 0, "", rows)
	return m.strategy.Submit(txn, now)
}

// betterCtx picks the preferred causal context: the one covering the newer
// source update, and at equal updates the deeper hop. Nil-safe.
func betterCtx(a, b *obs.TraceCtx) *obs.TraceCtx {
	switch {
	case b == nil:
		return a
	case a == nil:
		return b
	case b.Seq != a.Seq:
		if b.Seq > a.Seq {
			return b
		}
		return a
	case b.Hop > a.Hop:
		return b
	default:
		return a
	}
}

// mergeDeltas collapses several view writes to the same view into one,
// preserving order. Used by the batched commit strategy. Staged writes
// refer to out-of-band data the merge process never sees, so they are
// kept as standalone entries and break the mergeability of their view.
func mergeDeltas(writes []msg.ViewWrite) []msg.ViewWrite {
	byView := make(map[msg.ViewID]int)
	var out []msg.ViewWrite
	// owned[k] marks out[k].Delta as a private accumulator: the incoming
	// deltas belong to their action lists and must never be mutated, so the
	// first merge into a view clones once and every later write merges into
	// that same clone — not clone-per-write, which is quadratic in batch
	// size.
	var owned []bool
	for _, w := range writes {
		if w.Staged {
			delete(byView, w.View) // later writes must not merge across it
			out = append(out, w)
			owned = append(owned, false)
			continue
		}
		if k, ok := byView[w.View]; ok {
			if !owned[k] {
				out[k].Delta = out[k].Delta.Clone()
				owned[k] = true
			}
			if err := out[k].Delta.Merge(w.Delta); err != nil {
				panic(fmt.Sprintf("merge: batching incompatible deltas for view %s: %v", w.View, err))
			}
			if w.Upto > out[k].Upto {
				out[k].Upto = w.Upto
			}
			continue
		}
		byView[w.View] = len(out)
		out = append(out, w)
		owned = append(owned, false)
	}
	return out
}

// RenderVUT renders the live VUT like the paper's tables: one line per row,
// entries as w/r/g (black shown as b), with PA states as (color,state).
// Safe to call concurrently with the node goroutine.
func (m *Merge) RenderVUT() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.renderVUTLocked()
}

func (m *Merge) renderVUTLocked() string {
	views := make([]msg.ViewID, 0, len(m.cols))
	for v := range m.cols {
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool { return views[i] < views[j] })
	var b strings.Builder
	for _, i := range m.rowSeqs {
		r := m.rows[i]
		fmt.Fprintf(&b, "U%d:", i)
		for _, v := range views {
			e := r.entries[v]
			if e == nil {
				b.WriteString(" b")
				continue
			}
			if m.algorithm == PA {
				fmt.Fprintf(&b, " (%s,%d)", e.color, e.state)
			} else {
				fmt.Fprintf(&b, " %s", e.color)
			}
		}
		nAL := len(r.wt)
		fmt.Fprintf(&b, " |WT|=%d\n", nAL)
	}
	return b.String()
}

func (m *Merge) emitTrace(kind string, seq msg.UpdateID, view msg.ViewID, rows []msg.UpdateID) {
	if m.trace == nil {
		return
	}
	m.trace(TraceEvent{Kind: kind, Seq: seq, View: view, Rows: rows, VUT: m.renderVUTLocked()})
}

// VUTRow is one live VUT row in a VUTSnapshot.
type VUTRow struct {
	Seq       int64             `json:"seq"`
	CommitAt  int64             `json:"commit_at"`
	CreatedAt int64             `json:"created_at"`
	Entries   map[string]string `json:"entries"` // view -> w/r/g (PA: "r@state")
	HeldALs   int               `json:"held_als"`
}

// VUTSnapshot is a point-in-time JSON-friendly copy of the live
// ViewUpdateTable, served by whipsnode's /debug/vut endpoint.
type VUTSnapshot struct {
	Group       int      `json:"group"`
	Algorithm   string   `json:"algorithm"`
	Rows        []VUTRow `json:"rows"`
	WaitingALs  int64    `json:"waiting_als"`
	RELFrontier int64    `json:"rel_frontier"`
}

// SnapshotVUT copies the live VUT. Safe to call concurrently with the
// node goroutine.
func (m *Merge) SnapshotVUT() VUTSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := VUTSnapshot{
		Group:       m.group,
		Algorithm:   m.algorithm.String(),
		Rows:        []VUTRow{},
		WaitingALs:  m.stats.HeldALs,
		RELFrontier: int64(m.relFrontier),
	}
	for _, i := range m.rowSeqs {
		r := m.rows[i]
		vr := VUTRow{
			Seq:       int64(i),
			CommitAt:  r.commitAt,
			CreatedAt: r.createdAt,
			Entries:   make(map[string]string, len(r.entries)),
			HeldALs:   len(r.wt),
		}
		for v, e := range r.entries {
			c := e.color.String()
			if m.algorithm == PA && e.state != 0 {
				c = fmt.Sprintf("%s@%d", c, e.state)
			}
			vr.Entries[string(v)] = c
		}
		s.Rows = append(s.Rows, vr)
	}
	return s
}

func viewNames(vs []msg.ViewID) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return out
}

func seqInts(vs []msg.UpdateID) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out
}
