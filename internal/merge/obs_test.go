package merge

import (
	"reflect"
	"testing"

	"whips/internal/msg"
	"whips/internal/obs"
)

// TestSPAPromptnessGapZero replays the paper's §4 worked example (Example
// 3) with wall-clock time advancing between messages and asserts the
// measured promptness gap is exactly zero for every submitted transaction:
// SPA dispatches and painting cascades run synchronously inside the Handle
// call that completes a row, so no row ever sits applicable-but-unapplied
// across a clock tick (§4.4 promptness).
func TestSPAPromptnessGapZero(t *testing.T) {
	rec := &recorder{}
	pipe := obs.NewPipeline()
	mem := &obs.MemorySink{}
	pipe.Tracer = obs.NewTracer(mem.Sink())
	m := New(0, SPA, rec, WithObs(pipe))

	// Same feed as TestExample3SPATrace, but each message arrives at a
	// strictly later time.
	now := int64(1_000)
	step := func(x any) {
		now += 50_000 // 50µs between arrivals
		m.Handle(x, now)
	}
	step(rel(1, "V1", "V2"))
	step(al("V2", 1, 1))
	step(rel(2, "V3"))
	step(rel(3, "V2"))
	step(al("V3", 2, 2))
	step(al("V2", 3, 3))
	step(al("V1", 1, 1))

	if got := rowsOf(rec); !reflect.DeepEqual(got, [][]msg.UpdateID{{2}, {1}, {3}}) {
		t.Fatalf("apply order = %v, want [[2] [1] [3]]", got)
	}

	st := m.Stats()
	if st.PromptGapCount != 3 {
		t.Errorf("PromptGapCount = %d, want 3", st.PromptGapCount)
	}
	if st.PromptGapSum != 0 || st.PromptGapMax != 0 {
		t.Errorf("promptness gap nonzero: sum=%d max=%d (SPA must apply rows the instant they become applicable)",
			st.PromptGapSum, st.PromptGapMax)
	}

	snap := pipe.Reg().Snapshot()
	hist, ok := snap.Histograms[`merge_prompt_gap_ns{group="0"}`]
	if !ok {
		t.Fatalf("merge_prompt_gap_ns histogram missing; have %v", snap.Histograms)
	}
	if hist.Count != 3 || hist.Sum != 0 || hist.Max != 0 {
		t.Errorf("prompt gap histogram = %+v, want count=3 sum=0 max=0", hist)
	}

	// The trace must carry one rel event per update and submit/wh-bound
	// events whose Rows reconstruct the apply order.
	var rels, submits int
	var submitted [][]int64
	for _, e := range mem.Events() {
		switch e.Stage {
		case obs.StageREL:
			rels++
		case obs.StageSubmit:
			submits++
			submitted = append(submitted, e.Rows)
		}
	}
	if rels != 3 || submits != 3 {
		t.Errorf("trace: rels=%d submits=%d, want 3/3", rels, submits)
	}
	if !reflect.DeepEqual(submitted, [][]int64{{2}, {1}, {3}}) {
		t.Errorf("traced submit rows = %v", submitted)
	}
}

// TestMergeObsCounters sanity-checks the remaining merge metrics on the
// same example: REL/AL totals, paint transitions, and the VUT live gauge
// returning to zero.
func TestMergeObsCounters(t *testing.T) {
	rec := &recorder{}
	pipe := obs.NewPipeline()
	m := New(0, SPA, rec, WithObs(pipe))
	feed(t, m, rel(1, "V1", "V2"))
	feed(t, m, al("V2", 1, 1))
	feed(t, m, al("V1", 1, 1))

	snap := pipe.Reg().Snapshot()
	g := func(kind, name string) int64 {
		key := name + `{group="0"}`
		switch kind {
		case "c":
			return snap.Counters[key]
		case "g":
			return snap.Gauges[key]
		}
		return -1
	}
	if v := g("c", "merge_rels_total"); v != 1 {
		t.Errorf("merge_rels_total = %d", v)
	}
	if v := g("c", "merge_als_total"); v != 2 {
		t.Errorf("merge_als_total = %d", v)
	}
	if v := g("c", "merge_vut_rows_total"); v != 1 {
		t.Errorf("merge_vut_rows_total = %d", v)
	}
	if v := g("c", "merge_paint_white_red_total"); v != 2 {
		t.Errorf("merge_paint_white_red_total = %d", v)
	}
	if v := g("c", "merge_txns_total"); v != 1 {
		t.Errorf("merge_txns_total = %d", v)
	}
	if v := g("g", "merge_vut_live"); v != 0 {
		t.Errorf("merge_vut_live = %d, want 0 after purge", v)
	}
	if v := g("g", "merge_vut_live_max"); v != 1 {
		t.Errorf("merge_vut_live_max = %d", v)
	}
}

// TestSnapshotVUT exercises the structured VUT snapshot the debug server
// serves: live rows with entry colors, then empty after completion.
func TestSnapshotVUT(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	feed(t, m, rel(1, "V1", "V2"), al("V2", 1, 1))

	s := m.SnapshotVUT()
	if s.Group != 0 || s.Algorithm != "SPA" {
		t.Errorf("snapshot header = %+v", s)
	}
	if len(s.Rows) != 1 || s.Rows[0].Seq != 1 {
		t.Fatalf("snapshot rows = %+v", s.Rows)
	}
	ents := s.Rows[0].Entries
	if ents["V1"] != "w" || ents["V2"] != "r" {
		t.Errorf("entries = %v", ents)
	}
	if s.Rows[0].HeldALs != 1 {
		t.Errorf("HeldALs = %d", s.Rows[0].HeldALs)
	}

	feed(t, m, al("V1", 1, 1))
	if s := m.SnapshotVUT(); len(s.Rows) != 0 {
		t.Errorf("VUT should be empty, got %+v", s.Rows)
	}
}
