package merge

import (
	"reflect"
	"testing"

	"whips/internal/msg"
	"whips/internal/relation"
)

func txnFor(views ...msg.ViewID) msg.WarehouseTxn {
	t := msg.WarehouseTxn{}
	for _, v := range views {
		t.Writes = append(t.Writes, msg.ViewWrite{View: v, Upto: 1,
			Delta: relation.InsertDelta(alSchema, relation.T(1))})
	}
	return t
}

func submitted(out []msg.Outbound) []msg.WarehouseTxn {
	var txns []msg.WarehouseTxn
	for _, o := range out {
		if s, ok := o.Msg.(msg.SubmitTxn); ok {
			if o.To != msg.NodeWarehouse {
				panic("submit not addressed to warehouse")
			}
			txns = append(txns, s.Txn)
		}
	}
	return txns
}

func TestSequentialStrategy(t *testing.T) {
	s := NewSequential("merge:0", 0)
	if s.Name() != "sequential" {
		t.Error("name")
	}
	out1 := s.Submit(txnFor("V1"), 0)
	if got := submitted(out1); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("first submit = %+v", got)
	}
	// Second and third queue behind the unacknowledged first.
	if got := submitted(s.Submit(txnFor("V2"), 0)); len(got) != 0 {
		t.Fatalf("second submit should queue, got %v", got)
	}
	if got := submitted(s.Submit(txnFor("V3"), 0)); len(got) != 0 {
		t.Fatal("third submit should queue")
	}
	// One in flight plus two queued: all three are accepted but uncommitted.
	if s.Pending() != 3 {
		t.Errorf("Pending = %d", s.Pending())
	}
	// Each ack releases exactly one.
	if got := submitted(s.OnAck(1, 0)); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after ack: %+v", got)
	}
	if got := submitted(s.OnAck(2, 0)); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("after second ack: %+v", got)
	}
	if got := submitted(s.OnAck(3, 0)); len(got) != 0 {
		t.Fatal("no more queued work expected")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestDependencyStrategy(t *testing.T) {
	d := NewDependency("merge:0", 0)
	if d.Name() != "dependency" {
		t.Error("name")
	}
	// Three txns: 1 touches V1,V2; 2 touches V2,V3 (depends on 1);
	// 3 touches V4 (independent).
	t1 := submitted(d.Submit(txnFor("V1", "V2"), 0))
	t2 := submitted(d.Submit(txnFor("V2", "V3"), 0))
	t3 := submitted(d.Submit(txnFor("V4"), 0))
	if len(t1) != 1 || len(t2) != 1 || len(t3) != 1 {
		t.Fatal("dependency strategy must submit immediately")
	}
	if len(t1[0].DependsOn) != 0 {
		t.Errorf("t1 deps = %v", t1[0].DependsOn)
	}
	if !reflect.DeepEqual(t2[0].DependsOn, []msg.TxnID{t1[0].ID}) {
		t.Errorf("t2 deps = %v", t2[0].DependsOn)
	}
	if len(t3[0].DependsOn) != 0 {
		t.Errorf("t3 deps = %v", t3[0].DependsOn)
	}
	// After t1 commits, a new overlapping txn depends only on t2.
	d.OnAck(t1[0].ID, 0)
	t4 := submitted(d.Submit(txnFor("V2"), 0))
	if !reflect.DeepEqual(t4[0].DependsOn, []msg.TxnID{t2[0].ID}) {
		t.Errorf("t4 deps = %v", t4[0].DependsOn)
	}
}

func TestBatchedStrategySizeFlush(t *testing.T) {
	b := NewBatched("merge:0", 0, 2, 0)
	if b.Name() != "batched" {
		t.Error("name")
	}
	if got := submitted(b.Submit(txnFor("V1"), 0)); len(got) != 0 {
		t.Fatal("first txn should buffer")
	}
	got := submitted(b.Submit(txnFor("V1"), 0))
	if len(got) != 1 {
		t.Fatalf("batch of 2 should flush, got %d", len(got))
	}
	bwt := got[0]
	// Same view twice: deltas merged into one write with max Upto.
	if len(bwt.Writes) != 1 {
		t.Errorf("BWT writes = %+v", bwt.Writes)
	}
	if bwt.Writes[0].Delta.Count(relation.T(1)) != 2 {
		t.Errorf("merged delta = %v", bwt.Writes[0].Delta)
	}
	// Next batch queues behind the unacknowledged BWT.
	b.Submit(txnFor("V2"), 0)
	got = submitted(b.Submit(txnFor("V3"), 0))
	if len(got) != 0 {
		t.Fatal("second BWT must wait for ack")
	}
	if got = submitted(b.OnAck(bwt.ID, 0)); len(got) != 1 {
		t.Fatalf("ack should release second BWT, got %d", len(got))
	}
	if len(got[0].Writes) != 2 {
		t.Errorf("second BWT writes = %+v", got[0].Writes)
	}
}

func TestBatchedStrategyTimerFlush(t *testing.T) {
	b := NewBatched("merge:0", 0, 100, 50)
	out := b.Submit(txnFor("V1"), 0)
	if len(out) != 1 {
		t.Fatalf("expected timer arm, got %v", out)
	}
	timer, ok := out[0].Msg.(strategyTimer)
	if !ok || out[0].To != "merge:0" || out[0].Delay != 50 {
		t.Fatalf("timer outbound = %+v", out[0])
	}
	// A second submit within the window does not re-arm.
	if out := b.Submit(txnFor("V2"), 10); len(out) != 0 {
		t.Fatalf("second submit should not re-arm, got %v", out)
	}
	got := submitted(b.OnTimer(timer, 50))
	if len(got) != 1 || len(got[0].Writes) != 2 {
		t.Fatalf("timer flush = %+v", got)
	}
	// A stale timer generation is ignored.
	if out := b.OnTimer(strategyTimer{gen: 99}, 60); len(out) != 0 {
		t.Error("stale timer must be ignored")
	}
}

func TestBatchedMinSize(t *testing.T) {
	b := NewBatched("merge:0", 0, 0, 0) // clamped to 1
	if got := submitted(b.Submit(txnFor("V1"), 0)); len(got) != 1 {
		t.Fatal("maxSize<1 should clamp to immediate flush")
	}
}

func TestMergeRoutesTimerToStrategy(t *testing.T) {
	b := NewBatched("merge:0", 0, 100, 50)
	m := New(0, SPA, b)
	m.Handle(rel(1, "V1"), 0)
	out := m.Handle(al("V1", 1, 1), 0)
	// The ready WT buffers in the batcher and arms a timer.
	if len(out) != 1 {
		t.Fatalf("expected timer arm via merge, got %+v", out)
	}
	timer := out[0].Msg.(strategyTimer)
	got := submitted(m.Handle(timer, 50))
	if len(got) != 1 {
		t.Fatalf("merge should flush via strategy timer, got %+v", got)
	}
}

func TestTxnIDsDisjointAcrossGroups(t *testing.T) {
	a := NewSequential("merge:0", 0)
	b := NewSequential("merge:1", 1)
	ta := submitted(a.Submit(txnFor("V1"), 0))
	tb := submitted(b.Submit(txnFor("V2"), 0))
	if ta[0].ID == tb[0].ID {
		t.Error("txn ids must not collide across merge groups")
	}
}

func TestImmediateStrategy(t *testing.T) {
	s := NewImmediate("merge:0", 0)
	if s.Name() != "immediate" || s.Pending() != 0 {
		t.Error("immediate basics")
	}
	got := submitted(s.Submit(txnFor("V1"), 0))
	if len(got) != 1 || len(got[0].DependsOn) != 0 {
		t.Fatalf("immediate submit = %+v", got)
	}
	// Two in flight at once: no waiting, no dependencies.
	got2 := submitted(s.Submit(txnFor("V1"), 0))
	if len(got2) != 1 {
		t.Fatal("second submit must also go out immediately")
	}
	if out := s.OnAck(got[0].ID, 0); len(out) != 0 {
		t.Error("acks release nothing")
	}
	if out := s.OnTimer(strategyTimer{}, 0); len(out) != 0 {
		t.Error("timers are ignored")
	}
}

func TestCallbackStrategy(t *testing.T) {
	var seen []msg.WarehouseTxn
	c := NewCallback(func(t msg.WarehouseTxn) { seen = append(seen, t) })
	if c.Name() != "callback" || c.Pending() != 0 {
		t.Error("callback basics")
	}
	if out := c.Submit(txnFor("V1"), 0); len(out) != 0 {
		t.Error("callback sends nothing")
	}
	if len(seen) != 1 || seen[0].ID == 0 {
		t.Errorf("callback saw %+v", seen)
	}
	if out := c.OnAck(1, 0); len(out) != 0 {
		t.Error("acks ignored")
	}
	if out := c.OnTimer(strategyTimer{}, 0); len(out) != 0 {
		t.Error("timers ignored")
	}
}

func TestSequentialAndDependencyTimersIgnored(t *testing.T) {
	if out := NewSequential("m", 0).OnTimer(strategyTimer{}, 0); len(out) != 0 {
		t.Error("sequential timers ignored")
	}
	if out := NewDependency("m", 0).OnTimer(strategyTimer{}, 0); len(out) != 0 {
		t.Error("dependency timers ignored")
	}
	if NewBatched("m", 0, 2, 0).Pending() != 0 {
		t.Error("fresh batched pending")
	}
}

func TestMergeAccessors(t *testing.T) {
	m := New(3, PA, &recorder{})
	if m.ID() != "merge:3" {
		t.Errorf("ID = %q", m.ID())
	}
	if m.Algorithm() != PA {
		t.Errorf("Algorithm = %v", m.Algorithm())
	}
	if out := m.Handle("garbage", 0); out != nil {
		t.Errorf("garbage produced %v", out)
	}
	// CommitAck routes to the strategy.
	if out := m.Handle(msg.CommitAck{ID: 1}, 0); out != nil {
		t.Errorf("ack produced %v", out)
	}
}
