package merge

import (
	"fmt"
	"sort"

	"whips/internal/expr"
	"whips/internal/msg"
)

// Partition groups views such that views in different groups share no base
// relation (§6.1: "partition view managers into groups such that base
// relations used in the views of one group are disjoint with those used in
// the views of other groups"). Each group can then be coordinated by its
// own merge process with no cross-group consistency loss for single-group
// transactions.
//
// The returned map assigns each view a group number 0..n-1; group numbers
// are assigned in order of each group's smallest view id, so the result is
// deterministic.
func Partition(views map[msg.ViewID]expr.Expr) map[msg.ViewID]int {
	ids := make([]msg.ViewID, 0, len(views))
	for id := range views {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Union-find over views, merged through shared base relations.
	parent := make(map[msg.ViewID]msg.ViewID, len(ids))
	var find func(msg.ViewID) msg.ViewID
	find = func(v msg.ViewID) msg.ViewID {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	union := func(a, b msg.ViewID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, id := range ids {
		parent[id] = id
	}
	byRelation := make(map[string]msg.ViewID)
	for _, id := range ids {
		for _, rel := range views[id].BaseRelations() {
			if first, ok := byRelation[rel]; ok {
				union(first, id)
			} else {
				byRelation[rel] = id
			}
		}
	}
	groupOf := make(map[msg.ViewID]int, len(ids))
	next := 0
	rootGroup := make(map[msg.ViewID]int)
	for _, id := range ids {
		r := find(id)
		g, ok := rootGroup[r]
		if !ok {
			g = next
			next++
			rootGroup[r] = g
		}
		groupOf[id] = g
	}
	return groupOf
}

// CheckPartition verifies that an explicit view→group assignment is a
// legal §6.1 partition: no base relation is read by views in two groups.
func CheckPartition(views map[msg.ViewID]expr.Expr, groups map[msg.ViewID]int) error {
	owner := make(map[string]int)
	ownerView := make(map[string]msg.ViewID)
	ids := make([]msg.ViewID, 0, len(views))
	for id := range views {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		g, ok := groups[id]
		if !ok {
			return fmt.Errorf("merge: view %s has no group assignment", id)
		}
		for _, rel := range views[id].BaseRelations() {
			if prev, seen := owner[rel]; seen && prev != g {
				return fmt.Errorf("merge: base relation %q is read by view %s (group %d) and view %s (group %d); groups must have disjoint base relations",
					rel, ownerView[rel], prev, id, g)
			}
			owner[rel] = g
			ownerView[rel] = id
		}
	}
	return nil
}

// Groups returns the number of groups in an assignment.
func Groups(assignment map[msg.ViewID]int) int {
	seen := make(map[int]bool)
	for _, g := range assignment {
		seen[g] = true
	}
	return len(seen)
}
