package merge_test

import (
	"fmt"
	"testing"

	"whips/internal/msg"
	"whips/internal/sched"
	"whips/internal/system"
	"whips/internal/workload"
)

// This property test generalizes the paper's Example 4 — the schedule on
// which SPA breaks down when managers batch — beyond its single
// hand-written trace: under every explored interleaving of a batching
// fleet, PA must never apply a row that is white (a relevant view's
// action list has not arrived) or red-dependent (an earlier unapplied
// list from the same manager, or another row of the same intertwined
// batch, is left out of the transaction).
//
// The check needs no VUT internals: it is phrased entirely over the
// message streams crossing the merge process — a spy records the RELᵢ
// sets and action-list ranges flowing in, and a stub warehouse validates
// every transaction flowing out.

// mergeSpy wraps the merge process, recording its inputs.
type mergeSpy struct {
	inner msg.Node
	rels  map[msg.UpdateID][]msg.ViewID
	// alFrom maps (view, upto) to the list's From — msg.ViewWrite carries
	// no From, so transactions are joined back to ranges through this.
	alFrom map[viewUpto]msg.UpdateID
}

type viewUpto struct {
	view msg.ViewID
	upto msg.UpdateID
}

func (s *mergeSpy) ID() string { return s.inner.ID() }

func (s *mergeSpy) Handle(in any, now int64) []msg.Outbound {
	switch t := in.(type) {
	case msg.RelevantSet:
		s.rels[t.Seq] = append([]msg.ViewID(nil), t.Views...)
	case msg.ActionList:
		s.alFrom[viewUpto{t.View, t.Upto}] = t.From
	}
	return s.inner.Handle(in, now)
}

// checkerWarehouse stands in for the warehouse: it acks every transaction
// and validates the white/red-dependency property against the spy's
// record of what the merge process has seen.
type checkerWarehouse struct {
	spy     *mergeSpy
	applied map[msg.UpdateID]bool
	lastUp  map[msg.ViewID]msg.UpdateID
	errs    []error
}

func (c *checkerWarehouse) ID() string { return msg.NodeWarehouse }

func (c *checkerWarehouse) failf(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf(format, args...))
}

func (c *checkerWarehouse) Handle(in any, now int64) []msg.Outbound {
	st, ok := in.(msg.SubmitTxn)
	if !ok {
		return nil
	}
	txn := st.Txn
	inTxn := map[msg.UpdateID]bool{}
	for _, i := range txn.Rows {
		if c.applied[i] {
			c.failf("row %d applied twice (second time by WT%d)", i, txn.ID)
		}
		c.applied[i] = true
		inTxn[i] = true
	}
	// Property 1 (no white application): every row needs a covering action
	// list IN THIS transaction for each of its relevant views.
	for _, i := range txn.Rows {
		rel, known := c.spy.rels[i]
		if !known {
			c.failf("WT%d applies row %d before its REL reached the merge process", txn.ID, i)
			continue
		}
		for _, v := range rel {
			covered := false
			for _, w := range txn.Writes {
				if w.View != v {
					continue
				}
				from, ok := c.spy.alFrom[viewUpto{v, w.Upto}]
				if !ok {
					c.failf("WT%d carries write (%s,%d) for a list the merge never received", txn.ID, v, w.Upto)
					continue
				}
				if from <= i && i <= w.Upto {
					covered = true
				}
			}
			if !covered {
				c.failf("WT%d applies row %d while view %s's covering action list is missing (white application)", txn.ID, i, v)
			}
		}
	}
	for _, w := range txn.Writes {
		from, ok := c.spy.alFrom[viewUpto{w.View, w.Upto}]
		if !ok {
			c.failf("WT%d write (%s,%d) has no recorded action list", txn.ID, w.View, w.Upto)
			continue
		}
		// Property 2 (no red-dependency violation): one manager's lists
		// apply in generation order with no gaps — From is the list's first
		// covered row, so it must lie past the frontier, and no row relevant
		// to this view may fall in the gap between frontier and From.
		if from <= c.lastUp[w.View] {
			c.failf("WT%d re-applies %s rows: list [%d,%d] overlaps frontier %d",
				txn.ID, w.View, from, w.Upto, c.lastUp[w.View])
		}
		for j := c.lastUp[w.View] + 1; j < from; j++ {
			for _, v := range c.spy.rels[j] {
				if v == w.View {
					c.failf("WT%d applies %s's list [%d,%d] skipping earlier relevant row %d — an unapplied list was left behind",
						txn.ID, w.View, from, w.Upto, j)
				}
			}
		}
		c.lastUp[w.View] = w.Upto
		// Property 3 (intertwined batches are atomic): every update the
		// list covers and that is relevant to this view commits in the
		// same transaction.
		for i := from; i <= w.Upto; i++ {
			for _, v := range c.spy.rels[i] {
				if v == w.View && !inTxn[i] {
					c.failf("WT%d applies %s's batch [%d,%d] without row %d — batch split", txn.ID, w.View, from, w.Upto, i)
				}
			}
		}
	}
	return []msg.Outbound{msg.Send(st.From, msg.CommitAck{ID: txn.ID})}
}

// paPropertyFleet is the batching PA fleet with the warehouse replaced by
// the checker and the merge process wrapped by the spy.
func paPropertyFleet(updates int, dataSeed int64) sched.Factory {
	return func() (*sched.Harness, error) {
		views := workload.PaperViews(system.Batching)
		for i := range views {
			views[i].ComputeDelay = func(n int) int64 { return int64(n) }
		}
		sys, err := system.Build(system.Config{
			Sources: workload.PaperSources(),
			Views:   views,
			Commit:  system.Sequential,
		})
		if err != nil {
			return nil, err
		}
		spy := &mergeSpy{
			inner:  sys.Merges[0],
			rels:   map[msg.UpdateID][]msg.ViewID{},
			alFrom: map[viewUpto]msg.UpdateID{},
		}
		checker := &checkerWarehouse{
			spy:     spy,
			applied: map[msg.UpdateID]bool{},
			lastUp:  map[msg.ViewID]msg.UpdateID{},
		}
		var nodes []msg.Node
		for _, n := range sys.Nodes() {
			switch n.ID() {
			case msg.NodeMerge(0):
				nodes = append(nodes, spy)
			case msg.NodeWarehouse:
				nodes = append(nodes, checker)
			default:
				nodes = append(nodes, n)
			}
		}
		gen := workload.NewGenerator(dataSeed, workload.PaperSources())
		var inject []msg.Outbound
		for i := 0; i < updates; i++ {
			src, writes := gen.Txn()
			inject = append(inject, msg.Send(msg.NodeCluster, msg.ExecuteTxn{Source: src, Writes: writes}))
		}
		return &sched.Harness{
			Nodes:  nodes,
			Inject: inject,
			Check: func() error {
				if len(checker.errs) > 0 {
					return checker.errs[0]
				}
				for i := 1; i <= updates; i++ {
					if !checker.applied[msg.UpdateID(i)] {
						return fmt.Errorf("row %d never applied", i)
					}
				}
				return nil
			},
		}, nil
	}
}

// TestPANeverAppliesWhiteOrRedDependentRows explores randomized and
// systematic schedules of the batching fleet; the message-level property
// must hold on every one.
func TestPANeverAppliesWhiteOrRedDependentRows(t *testing.T) {
	seeds := 400
	if testing.Short() {
		seeds = 40
	}
	res, err := sched.Explore(paPropertyFleet(5, 21), sched.Options{Seed: 9000, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("random exploration: %v", res.Violation)
	}

	maxSchedules := 800
	if testing.Short() {
		maxSchedules = 80
	}
	res, err = sched.Explore(paPropertyFleet(3, 4), sched.Options{DFS: true, MaxSchedules: maxSchedules})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("DFS exploration: %v", res.Violation)
	}
	t.Logf("DFS explored %d schedules, %d deliveries", res.Schedules, res.Deliveries)
}
