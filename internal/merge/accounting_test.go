package merge

import (
	"testing"

	"whips/internal/msg"
	"whips/internal/relation"
)

// Regression: Pending must count the popped-but-unacknowledged transaction.
// A Sequential strategy with one txn in flight and an empty queue is not
// quiescent — reporting 0 under-reported merge_held_als accounting by one
// for the whole round trip.
func TestSequentialPendingCountsInflight(t *testing.T) {
	s := NewSequential("merge:0", 0)
	out := s.Submit(txnFor("V1"), 0)
	if len(submitted(out)) != 1 {
		t.Fatal("first submit must go out")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending with one txn in flight = %d, want 1", s.Pending())
	}
	s.OnAck(1, 0)
	if s.Pending() != 0 {
		t.Errorf("Pending after ack = %d, want 0", s.Pending())
	}
}

func TestBatchedPendingCountsInflight(t *testing.T) {
	b := NewBatched("merge:0", 0, 1, 0) // every submit flushes immediately
	out := submitted(b.Submit(txnFor("V1"), 0))
	if len(out) != 1 {
		t.Fatal("batch of 1 must flush")
	}
	if b.Pending() != 1 {
		t.Errorf("Pending with one BWT in flight = %d, want 1", b.Pending())
	}
	// Buffered + queued + in flight all count.
	b2 := NewBatched("merge:0", 0, 2, 0)
	b2.Submit(txnFor("V1"), 0)
	first := submitted(b2.Submit(txnFor("V1"), 0)) // flush → in flight
	if len(first) != 1 {
		t.Fatal("second txn must flush the batch")
	}
	b2.Submit(txnFor("V2"), 0)
	b2.Submit(txnFor("V2"), 0) // second BWT queues behind the in-flight one
	b2.Submit(txnFor("V3"), 0) // buffered below the batch boundary
	if b2.Pending() != 3 {
		t.Errorf("Pending = %d, want 3 (1 in flight + 1 queued + 1 buffered)", b2.Pending())
	}
}

// Regression: a stale or duplicate ack (wire retransmit, crash/restart
// rebuild) must not release the next transaction early — §4.3 sequential
// ordering allows at most one transaction outstanding.
func TestSequentialStaleAckIgnored(t *testing.T) {
	s := NewSequential("merge:0", 0)
	s.Submit(txnFor("V1"), 0) // id 1 in flight
	s.Submit(txnFor("V2"), 0) // id 2 queued
	s.Submit(txnFor("V3"), 0) // id 3 queued
	// An ack for a transaction that was never in flight is dropped.
	if got := submitted(s.OnAck(99, 0)); len(got) != 0 {
		t.Fatalf("unknown ack released %+v", got)
	}
	// The real ack releases id 2.
	got := submitted(s.OnAck(1, 0))
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after genuine ack: %+v", got)
	}
	// A duplicate of the old ack must not release id 3 while 2 is in flight.
	if got := submitted(s.OnAck(1, 0)); len(got) != 0 {
		t.Fatalf("duplicate ack released %+v while txn 2 was in flight", got)
	}
	if got := submitted(s.OnAck(2, 0)); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("after second genuine ack: %+v", got)
	}
	// An ack with nothing in flight is also dropped.
	s.OnAck(3, 0)
	if got := submitted(s.OnAck(3, 0)); len(got) != 0 {
		t.Fatalf("idle duplicate ack released %+v", got)
	}
}

func TestBatchedStaleAckIgnored(t *testing.T) {
	b := NewBatched("merge:0", 0, 1, 0)
	first := submitted(b.Submit(txnFor("V1"), 0))
	if len(first) != 1 {
		t.Fatal("first BWT must go out")
	}
	b.Submit(txnFor("V2"), 0) // queues behind the in-flight BWT
	if got := submitted(b.OnAck(first[0].ID+7, 0)); len(got) != 0 {
		t.Fatalf("mismatched ack released %+v", got)
	}
	second := submitted(b.OnAck(first[0].ID, 0))
	if len(second) != 1 {
		t.Fatal("matching ack must release the queued BWT")
	}
	if got := submitted(b.OnAck(first[0].ID, 0)); len(got) != 0 {
		t.Fatalf("duplicate ack released %+v while a BWT was in flight", got)
	}
}

// mergeDeltas accumulates same-view writes into a single clone; the deltas
// of the incoming action lists must never be mutated, and the accumulation
// must be linear (clone-once), not clone-per-write.
func TestMergeDeltasDoesNotMutateInputs(t *testing.T) {
	mk := func(v int) msg.ViewWrite {
		return msg.ViewWrite{View: "V1", Upto: msg.UpdateID(v),
			Delta: relation.InsertDelta(alSchema, relation.T(v))}
	}
	writes := []msg.ViewWrite{mk(1), mk(2), mk(3), mk(4)}
	out := mergeDeltas(writes)
	if len(out) != 1 {
		t.Fatalf("merged writes = %d, want 1", len(out))
	}
	if out[0].Upto != 4 {
		t.Errorf("merged Upto = %d, want 4", out[0].Upto)
	}
	for v := 1; v <= 4; v++ {
		if out[0].Delta.Count(relation.T(v)) != 1 {
			t.Errorf("merged delta missing tuple %d: %v", v, out[0].Delta)
		}
	}
	// The originals each still hold exactly their own tuple.
	for i, w := range writes {
		if w.Delta.Distinct() != 1 || w.Delta.Count(relation.T(i+1)) != 1 {
			t.Errorf("input write %d mutated: %v", i, w.Delta)
		}
	}
	// Staged writes break mergeability and are passed through untouched.
	staged := msg.ViewWrite{View: "V1", Upto: 5, Staged: true}
	out = mergeDeltas([]msg.ViewWrite{mk(1), staged, mk(2), mk(3)})
	if len(out) != 3 {
		t.Fatalf("staged split: %d writes, want 3", len(out))
	}
	if out[2].Delta.Count(relation.T(2)) != 1 || out[2].Delta.Count(relation.T(3)) != 1 {
		t.Errorf("post-staged accumulation wrong: %v", out[2].Delta)
	}
}

// Regression: submitRows must take the CommitAt minimum over the rows still
// present in the VUT. Anchored to rows[0], a purged first row left CommitAt
// at 0 and the warehouse's CommitAt > 0 guard dropped the freshness sample.
func TestSubmitRowsCommitAtSkipsPurgedFirstRow(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	// Row 1 was purged; rows 2 and 3 are live with known commit stamps.
	m.rows[2] = &row{seq: 2, commitAt: 70}
	m.rows[3] = &row{seq: 3, commitAt: 40}
	held := []heldAL{{al: al("V1", 2, 3)}}
	m.submitRows(0, []msg.UpdateID{1, 2, 3}, held, "V1")
	if len(rec.txns) != 1 {
		t.Fatalf("submitted %d txns, want 1", len(rec.txns))
	}
	if got := rec.txns[0].CommitAt; got != 40 {
		t.Errorf("CommitAt = %d, want 40 (min over present rows)", got)
	}
}
