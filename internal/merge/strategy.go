package merge

import (
	"sort"

	"whips/internal/msg"
)

// Strategy decides how ready warehouse transactions are submitted and how
// their commit order is controlled (§4.3). The merge process hands every
// ready transaction (a WTᵢ, or an ApplyRows set under PA) to Submit; the
// strategy fills in the transaction id and dependency information and
// decides when the warehouse actually sees it.
//
// A Strategy instance belongs to exactly one merge process.
type Strategy interface {
	// Submit accepts a ready transaction (ID unset) and returns the
	// messages to send now.
	Submit(txn msg.WarehouseTxn, now int64) []msg.Outbound
	// OnAck records a warehouse commit and may release queued work.
	OnAck(id msg.TxnID, now int64) []msg.Outbound
	// OnTimer handles a self-scheduled timer message.
	OnTimer(t strategyTimer, now int64) []msg.Outbound
	// Pending reports how many accepted transactions have not yet been
	// sent to the warehouse (queueing = merge-side backlog).
	Pending() int
	// Name identifies the strategy in reports.
	Name() string
	// MarshalState/RestoreState capture the strategy's in-flight state —
	// id allocator, queued and unacknowledged transactions — for durable
	// snapshots (see internal/durable).
	MarshalState() ([]byte, error)
	RestoreState([]byte) error
}

// strategyTimer is the self-message strategies use for delayed flushes.
type strategyTimer struct {
	gen int64
}

// txnIDBase spaces transaction ids so that ids from different merge
// processes never collide at the warehouse.
const txnIDBase = 1_000_000_000

type idAlloc struct {
	next msg.TxnID
}

func newIDAlloc(group int) idAlloc {
	return idAlloc{next: msg.TxnID(group)*txnIDBase + 1}
}

func (a *idAlloc) take() msg.TxnID {
	id := a.next
	a.next++
	return id
}

// ---------------------------------------------------------------- Sequential

// Sequential submits one transaction at a time, waiting for the previous
// commit acknowledgment — §4.3's "most straightforward way". Correct with
// no warehouse support, at the cost of a full round trip per transaction.
type Sequential struct {
	self  string
	ids   idAlloc
	queue []msg.WarehouseTxn
	// inflight is the id of the submitted-but-unacknowledged transaction
	// (0 = none; real ids are always positive). Keeping the id rather than
	// a flag lets OnAck reject stale or duplicate acknowledgments, which
	// wire retransmits and crash/restart rebuilds can produce.
	inflight msg.TxnID
}

// NewSequential builds the strategy for the merge process with node id
// self in the given group.
func NewSequential(self string, group int) *Sequential {
	return &Sequential{self: self, ids: newIDAlloc(group)}
}

// Name implements Strategy.
func (s *Sequential) Name() string { return "sequential" }

// Submit implements Strategy.
func (s *Sequential) Submit(txn msg.WarehouseTxn, now int64) []msg.Outbound {
	txn.ID = s.ids.take()
	s.queue = append(s.queue, txn)
	return s.pump()
}

// OnAck implements Strategy. An ack that does not match the in-flight
// transaction is stale (retransmit, rebuild) and must not release the next
// transaction early — doing so would break §4.3 sequential ordering.
func (s *Sequential) OnAck(id msg.TxnID, now int64) []msg.Outbound {
	if s.inflight == 0 || id != s.inflight {
		return nil
	}
	s.inflight = 0
	return s.pump()
}

// OnTimer implements Strategy.
func (s *Sequential) OnTimer(strategyTimer, int64) []msg.Outbound { return nil }

// Pending implements Strategy. The in-flight transaction has been accepted
// but not yet acknowledged, so it counts toward the merge-side backlog.
func (s *Sequential) Pending() int {
	n := len(s.queue)
	if s.inflight != 0 {
		n++
	}
	return n
}

func (s *Sequential) pump() []msg.Outbound {
	if s.inflight != 0 || len(s.queue) == 0 {
		return nil
	}
	txn := s.queue[0]
	s.queue = s.queue[1:]
	s.inflight = txn.ID
	return []msg.Outbound{msg.Send(msg.NodeWarehouse, msg.SubmitTxn{Txn: txn, From: s.self})}
}

// ---------------------------------------------------------------- Callback

// Callback is a Strategy that hands each ready transaction to a function
// and sends nothing itself. Tools (tracers, tests) use it to observe the
// merge process's output without a warehouse.
type Callback struct {
	ids idAlloc
	fn  func(msg.WarehouseTxn)
}

// NewCallback builds the strategy.
func NewCallback(fn func(msg.WarehouseTxn)) *Callback {
	return &Callback{ids: newIDAlloc(0), fn: fn}
}

// Name implements Strategy.
func (c *Callback) Name() string { return "callback" }

// Submit implements Strategy.
func (c *Callback) Submit(txn msg.WarehouseTxn, now int64) []msg.Outbound {
	txn.ID = c.ids.take()
	c.fn(txn)
	return nil
}

// OnAck implements Strategy.
func (c *Callback) OnAck(msg.TxnID, int64) []msg.Outbound { return nil }

// OnTimer implements Strategy.
func (c *Callback) OnTimer(strategyTimer, int64) []msg.Outbound { return nil }

// Pending implements Strategy.
func (c *Callback) Pending() int { return 0 }

// ---------------------------------------------------------------- Immediate

// Immediate submits every transaction as soon as it is ready, with no
// dependency information and no waiting. It is the §4.3 hazard made
// concrete: a warehouse DBMS that schedules transactions in its own order
// may then commit WT₃ before WT₁ and expose an invalid view state. It
// exists as a baseline and for demonstrating why commit-order control is
// needed; production configurations use Sequential, Dependency or Batched.
type Immediate struct {
	self string
	ids  idAlloc
}

// NewImmediate builds the strategy.
func NewImmediate(self string, group int) *Immediate {
	return &Immediate{self: self, ids: newIDAlloc(group)}
}

// Name implements Strategy.
func (s *Immediate) Name() string { return "immediate" }

// Submit implements Strategy.
func (s *Immediate) Submit(txn msg.WarehouseTxn, now int64) []msg.Outbound {
	txn.ID = s.ids.take()
	return []msg.Outbound{msg.Send(msg.NodeWarehouse, msg.SubmitTxn{Txn: txn, From: s.self})}
}

// OnAck implements Strategy.
func (s *Immediate) OnAck(msg.TxnID, int64) []msg.Outbound { return nil }

// OnTimer implements Strategy.
func (s *Immediate) OnTimer(strategyTimer, int64) []msg.Outbound { return nil }

// Pending implements Strategy.
func (s *Immediate) Pending() int { return 0 }

// ---------------------------------------------------------------- Dependency

// Dependency submits every transaction immediately, annotated with the
// uncommitted transactions it depends on (overlapping view sets, §4.3);
// the warehouse enforces commit order, so independent transactions commit
// in parallel.
type Dependency struct {
	self        string
	ids         idAlloc
	uncommitted map[msg.TxnID][]msg.ViewID
}

// NewDependency builds the strategy.
func NewDependency(self string, group int) *Dependency {
	return &Dependency{self: self, ids: newIDAlloc(group), uncommitted: make(map[msg.TxnID][]msg.ViewID)}
}

// Name implements Strategy.
func (d *Dependency) Name() string { return "dependency" }

// Submit implements Strategy.
func (d *Dependency) Submit(txn msg.WarehouseTxn, now int64) []msg.Outbound {
	txn.ID = d.ids.take()
	views := txn.Views()
	vset := make(map[msg.ViewID]bool, len(views))
	for _, v := range views {
		vset[v] = true
	}
	var deps []msg.TxnID
	for id, vs := range d.uncommitted {
		for _, v := range vs {
			if vset[v] {
				deps = append(deps, id)
				break
			}
		}
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	txn.DependsOn = deps
	d.uncommitted[txn.ID] = views
	return []msg.Outbound{msg.Send(msg.NodeWarehouse, msg.SubmitTxn{Txn: txn, From: d.self})}
}

// OnAck implements Strategy.
func (d *Dependency) OnAck(id msg.TxnID, now int64) []msg.Outbound {
	delete(d.uncommitted, id)
	return nil
}

// OnTimer implements Strategy.
func (d *Dependency) OnTimer(strategyTimer, int64) []msg.Outbound { return nil }

// Pending implements Strategy.
func (d *Dependency) Pending() int { return 0 }

// ---------------------------------------------------------------- Batched

// Batched accumulates ready transactions into batched warehouse
// transactions (BWTs, §4.3): per-view deltas are merged, one commit covers
// many WTs. Batches are submitted sequentially, since BWTs depend on each
// other exactly as their constituent WTs did. Batching trades completeness
// for throughput: the warehouse skips intermediate states, so the result
// is strong (not complete) MVC even under SPA.
type Batched struct {
	self       string
	ids        idAlloc
	maxSize    int
	flushAfter int64 // ns; 0 disables the timer
	buf        []msg.WarehouseTxn
	queue      []msg.WarehouseTxn
	// inflight is the id of the submitted-but-unacknowledged BWT (0 =
	// none), kept so stale or duplicate acks cannot release the next batch
	// early; BWTs depend on each other exactly as their constituent WTs.
	inflight   msg.TxnID
	timerGen   int64
	timerArmed bool
}

// NewBatched builds the strategy: a batch is flushed when it contains
// maxSize transactions or flushAfter nanoseconds after its first one
// arrived, whichever comes first.
func NewBatched(self string, group int, maxSize int, flushAfter int64) *Batched {
	if maxSize < 1 {
		maxSize = 1
	}
	return &Batched{self: self, ids: newIDAlloc(group), maxSize: maxSize, flushAfter: flushAfter}
}

// Name implements Strategy.
func (b *Batched) Name() string { return "batched" }

// Submit implements Strategy.
func (b *Batched) Submit(txn msg.WarehouseTxn, now int64) []msg.Outbound {
	b.buf = append(b.buf, txn)
	if len(b.buf) >= b.maxSize {
		return b.flush()
	}
	if b.flushAfter > 0 && !b.timerArmed {
		b.timerArmed = true
		b.timerGen++
		return []msg.Outbound{{To: b.self, Msg: strategyTimer{gen: b.timerGen}, Delay: b.flushAfter}}
	}
	return nil
}

// OnTimer implements Strategy.
func (b *Batched) OnTimer(t strategyTimer, now int64) []msg.Outbound {
	if t.gen != b.timerGen || !b.timerArmed {
		return nil
	}
	return b.flush()
}

// OnAck implements Strategy. Acks not matching the in-flight BWT are
// stale and dropped (see Sequential.OnAck).
func (b *Batched) OnAck(id msg.TxnID, now int64) []msg.Outbound {
	if b.inflight == 0 || id != b.inflight {
		return nil
	}
	b.inflight = 0
	return b.pump()
}

// Pending implements Strategy: buffered transactions, queued batches, and
// the in-flight batch are all accepted-but-uncommitted backlog.
func (b *Batched) Pending() int {
	n := len(b.buf) + len(b.queue)
	if b.inflight != 0 {
		n++
	}
	return n
}

func (b *Batched) flush() []msg.Outbound {
	b.timerArmed = false
	if len(b.buf) == 0 {
		return nil
	}
	bwt := msg.WarehouseTxn{ID: b.ids.take(), CommitAt: b.buf[0].CommitAt}
	var writes []msg.ViewWrite
	for _, t := range b.buf {
		bwt.Rows = append(bwt.Rows, t.Rows...)
		writes = append(writes, t.Writes...)
		if t.CommitAt < bwt.CommitAt {
			bwt.CommitAt = t.CommitAt
		}
		bwt.Trace = betterCtx(bwt.Trace, t.Trace)
	}
	bwt.Writes = mergeDeltas(writes)
	b.buf = b.buf[:0]
	b.queue = append(b.queue, bwt)
	return b.pump()
}

func (b *Batched) pump() []msg.Outbound {
	if b.inflight != 0 || len(b.queue) == 0 {
		return nil
	}
	t := b.queue[0]
	b.queue = b.queue[1:]
	b.inflight = t.ID
	return []msg.Outbound{msg.Send(msg.NodeWarehouse, msg.SubmitTxn{Txn: t, From: b.self})}
}
