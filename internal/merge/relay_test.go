package merge

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"whips/internal/msg"
)

// These tests exercise the merge-process changes needed for §3.2's
// alternative REL routing, where RELᵢ travels with one view manager's
// traffic and may therefore trail other managers' action lists — arrival
// orders the direct-routing model can never produce.

// SPA: an earlier action list buffered without its REL must block later
// rows of the same column, or the view would see lists out of order.
func TestRelaySPABufferedEarlierALBlocksLaterRow(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec, WithRelayedRELs())
	// AL^V1_1 arrives with no REL1 (the relayer is slow).
	feed(t, m, al("V1", 1, 1))
	// REL2 and AL^V1_2 arrive: row 2 is all-red but must wait.
	feed(t, m, rel(2, "V1"), al("V1", 2, 2))
	if len(rec.txns) != 0 {
		t.Fatalf("row 2 must wait behind buffered AL^V1_1: %v", rowsOf(rec))
	}
	// REL1 lands: both rows apply, in order.
	feed(t, m, rel(1, "V1"))
	if !reflect.DeepEqual(rowsOf(rec), [][]msg.UpdateID{{1}, {2}}) {
		t.Errorf("apply order = %v", rowsOf(rec))
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT not drained:\n%s", got)
	}
}

// PA: a batched list covering rows whose RELs have not all arrived; the
// late REL must join the still-live batch row and the whole closure must
// apply together.
func TestRelayPALateRELJoinsLiveBatch(t *testing.T) {
	rec := &recorder{}
	m := New(0, PA, rec, WithRelayedRELs())
	// REL2 arrives (relayer for U2), REL1 is still in flight.
	feed(t, m, rel(2, "V1", "V2"))
	// V1's batched list covers U1..U2; row 1 does not exist yet.
	feed(t, m, al("V1", 1, 2))
	// V2's list for U2 arrives. Row 2 looks all-red, but the REL frontier
	// is still 0 (REL1 missing): update 1's full relevant-view set is
	// unknown, so nothing may commit.
	feed(t, m, al("V2", 2, 2))
	if len(rec.txns) != 0 {
		t.Fatalf("frontier guard must hold row 2: %v", rowsOf(rec))
	}
	// Late REL1 arrives: row 1's V1 entry joins the live batch (red,
	// state 2); its V2 entry is white until V2's list for U1 lands.
	feed(t, m, rel(1, "V1", "V2"))
	if len(rec.txns) != 0 {
		t.Fatalf("row 1 still owes V2's list: %v", rowsOf(rec))
	}
	feed(t, m, al("V2", 1, 1))
	// Now the whole closure {1,2} applies as one transaction.
	if len(rec.txns) != 1 || !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{1, 2}) {
		t.Fatalf("joint apply expected: %v", rowsOf(rec))
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT not drained:\n%s", got)
	}
}

// PA: a batch reaching past the REL frontier holds until the late REL
// arrives; the late row then joins the batch and both apply together.
func TestRelayPAFrontierHoldsBatch(t *testing.T) {
	rec := &recorder{}
	m := New(0, PA, rec, WithRelayedRELs())
	feed(t, m, rel(2, "V1"))
	feed(t, m, al("V1", 1, 2)) // covers U1,U2 — but REL1 is missing
	if len(rec.txns) != 0 {
		t.Fatalf("batch must hold behind the frontier: %v", rowsOf(rec))
	}
	feed(t, m, rel(1, "V1")) // late REL: row 1 joins the live batch
	if len(rec.txns) != 1 || !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{1, 2}) {
		t.Fatalf("joint apply expected: %v", rowsOf(rec))
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT not drained:\n%s", got)
	}
}

// PA: the late REL joins a LIVE batch (batch blocked on another column),
// and the batch then applies with the late row included.
func TestRelayPALateRELJoinsBlockedBatch(t *testing.T) {
	rec := &recorder{}
	m := New(0, PA, rec, WithRelayedRELs())
	feed(t, m, rel(2, "V1", "V2"))
	feed(t, m, al("V1", 1, 2)) // batch covering U1,U2; V2's list missing → row 2 blocked
	if len(rec.txns) != 0 {
		t.Fatalf("row 2 must wait for V2: %v", rowsOf(rec))
	}
	// Late REL1: relevant to V1 only. Covered by the live batch → red
	// tied to row 2.
	feed(t, m, rel(1, "V1"))
	if len(rec.txns) != 0 {
		t.Fatalf("closure still blocked on V2: %v", rowsOf(rec))
	}
	// V2's list arrives: rows 1 and 2 apply together.
	feed(t, m, al("V2", 2, 2))
	if len(rec.txns) != 1 || !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{1, 2}) {
		t.Fatalf("joint apply expected: %v", rowsOf(rec))
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT not drained:\n%s", got)
	}
}

// PA: buffered earlier AL blocks a later closure until its REL lands.
func TestRelayPABufferedEarlierALBlocks(t *testing.T) {
	rec := &recorder{}
	m := New(0, PA, rec, WithRelayedRELs())
	feed(t, m, al("V1", 1, 1)) // buffered: REL1 in flight
	feed(t, m, rel(2, "V1"), al("V1", 2, 2))
	if len(rec.txns) != 0 {
		t.Fatalf("row 2 must wait behind buffered AL^V1_1: %v", rowsOf(rec))
	}
	feed(t, m, rel(1, "V1"))
	if !reflect.DeepEqual(rowsOf(rec), [][]msg.UpdateID{{1}, {2}}) {
		t.Errorf("apply order = %v", rowsOf(rec))
	}
}

// relayInterleave produces a message sequence where each update's REL is
// emitted on the carrier view manager's channel (before that manager's
// covering AL), instead of on a dedicated integrator channel.
func (s scenario) relayInterleave(rng *rand.Rand) []any {
	type channel struct {
		msgs []any
		pos  int
	}
	chans := map[msg.ViewID]*channel{}
	for v := range s.alsByVM {
		chans[v] = &channel{}
	}
	// Assign each REL to its first relevant view's channel, in seq order,
	// interleaved correctly with that channel's ALs: the REL for update i
	// must precede the AL covering i (managers relay on receipt).
	relOf := map[msg.ViewID][]msg.RelevantSet{}
	for _, r := range s.rels {
		carrier := r.Views[0]
		relOf[carrier] = append(relOf[carrier], r)
	}
	var viewIDs []msg.ViewID
	for v := range chans {
		viewIDs = append(viewIDs, v)
	}
	sort.Slice(viewIDs, func(i, j int) bool { return viewIDs[i] < viewIDs[j] })
	for _, v := range viewIDs {
		ch := chans[v]
		rels := relOf[v]
		ri := 0
		for _, al := range s.alsByVM[v] {
			for ri < len(rels) && rels[ri].Seq <= al.Upto {
				ch.msgs = append(ch.msgs, rels[ri])
				ri++
			}
			ch.msgs = append(ch.msgs, al)
		}
		for ; ri < len(rels); ri++ {
			ch.msgs = append(ch.msgs, rels[ri])
		}
	}
	var live []*channel
	for _, v := range viewIDs {
		live = append(live, chans[v])
	}
	var out []any
	for {
		var avail []*channel
		for _, c := range live {
			if c.pos < len(c.msgs) {
				avail = append(avail, c)
			}
		}
		if len(avail) == 0 {
			return out
		}
		c := avail[rng.Intn(len(avail))]
		out = append(out, c.msgs[c.pos])
		c.pos++
	}
}

func TestRelaySPARandomInterleavings(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genScenario(rng, false)
		rec := &recorder{}
		m := New(0, SPA, rec, WithRelayedRELs())
		for _, x := range s.relayInterleave(rng) {
			m.Handle(x, 0)
		}
		if !checkCoordination(t, s, m, rec) {
			return false
		}
		for _, txn := range rec.txns {
			if len(txn.Rows) != 1 {
				t.Errorf("SPA txn covers %v rows", txn.Rows)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRelayPARandomInterleavings(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genScenario(rng, true)
		rec := &recorder{}
		m := New(0, PA, rec, WithRelayedRELs())
		for _, x := range s.relayInterleave(rng) {
			m.Handle(x, 0)
		}
		return checkCoordination(t, s, m, rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
