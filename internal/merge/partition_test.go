package merge

import (
	"testing"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
)

var (
	prSchema = relation.MustSchema("A:int", "B:int")
	psSchema = relation.MustSchema("B:int", "C:int")
	ptSchema = relation.MustSchema("C:int", "D:int")
	pqSchema = relation.MustSchema("E:int")
)

func TestPartitionFigure3(t *testing.T) {
	// Figure 3: V1 = R, V2 = S⋈T share nothing with V3 = Q... in the figure
	// V1=R and V2=S⋈T are in one merge group only if they share relations;
	// they do not, so the partition splits all three apart — except the
	// figure groups V1,V2 under MP1. We reproduce the disjointness rule:
	// groups are connected components of the shared-base-relation graph.
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.Scan("R", prSchema),
		"V2": expr.MustJoin(expr.Scan("S", psSchema), expr.Scan("T", ptSchema)),
		"V3": expr.Scan("Q", pqSchema),
	}
	groups := Partition(views)
	if Groups(groups) != 3 {
		t.Errorf("disjoint views should form 3 groups: %v", groups)
	}
	if err := CheckPartition(views, groups); err != nil {
		t.Errorf("computed partition must validate: %v", err)
	}
}

func TestPartitionSharedRelationsMerge(t *testing.T) {
	// V1 = R⋈S and V2 = S⋈T share S; V3 = Q is alone.
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", prSchema), expr.Scan("S", psSchema)),
		"V2": expr.MustJoin(expr.Scan("S", psSchema), expr.Scan("T", ptSchema)),
		"V3": expr.Scan("Q", pqSchema),
	}
	groups := Partition(views)
	if groups["V1"] != groups["V2"] {
		t.Errorf("V1 and V2 share S and must be grouped: %v", groups)
	}
	if groups["V3"] == groups["V1"] {
		t.Errorf("V3 is disjoint and must be separate: %v", groups)
	}
	if Groups(groups) != 2 {
		t.Errorf("want 2 groups: %v", groups)
	}
}

func TestPartitionTransitiveClosure(t *testing.T) {
	// V1-R,S ; V2-S,T ; V3-T,Q : all connected through the chain.
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", prSchema), expr.Scan("S", psSchema)),
		"V2": expr.MustJoin(expr.Scan("S", psSchema), expr.Scan("T", ptSchema)),
		"V3": expr.Scan("T", ptSchema),
	}
	groups := Partition(views)
	if Groups(groups) != 1 {
		t.Errorf("chained views must collapse to one group: %v", groups)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.Scan("R", prSchema),
		"V2": expr.Scan("S", psSchema),
		"V3": expr.Scan("T", ptSchema),
	}
	first := Partition(views)
	for i := 0; i < 10; i++ {
		if got := Partition(views); !mapsEqual(got, first) {
			t.Fatalf("Partition is not deterministic: %v vs %v", got, first)
		}
	}
	// Group ids follow smallest view id order.
	if first["V1"] != 0 || first["V2"] != 1 || first["V3"] != 2 {
		t.Errorf("group numbering = %v", first)
	}
}

func TestCheckPartitionRejectsSharedRelationAcrossGroups(t *testing.T) {
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", prSchema), expr.Scan("S", psSchema)),
		"V2": expr.MustJoin(expr.Scan("S", psSchema), expr.Scan("T", ptSchema)),
	}
	bad := map[msg.ViewID]int{"V1": 0, "V2": 1}
	if err := CheckPartition(views, bad); err == nil {
		t.Error("partition splitting a shared relation must be rejected")
	}
	if err := CheckPartition(views, map[msg.ViewID]int{"V1": 0}); err == nil {
		t.Error("missing assignment must be rejected")
	}
	good := map[msg.ViewID]int{"V1": 3, "V2": 3}
	if err := CheckPartition(views, good); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}

func mapsEqual(a, b map[msg.ViewID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
