package merge

import (
	"reflect"
	"testing"

	"whips/internal/msg"
	"whips/internal/relation"
)

// recorder is a Strategy that captures submitted transactions.
type recorder struct {
	txns []msg.WarehouseTxn
}

func (r *recorder) Submit(t msg.WarehouseTxn, now int64) []msg.Outbound {
	t.ID = msg.TxnID(len(r.txns) + 1)
	r.txns = append(r.txns, t)
	return nil
}
func (r *recorder) OnAck(msg.TxnID, int64) []msg.Outbound       { return nil }
func (r *recorder) OnTimer(strategyTimer, int64) []msg.Outbound { return nil }
func (r *recorder) Pending() int                                { return 0 }
func (r *recorder) Name() string                                { return "recorder" }
func (r *recorder) MarshalState() ([]byte, error)               { return nil, nil }
func (r *recorder) RestoreState([]byte) error                   { return nil }

var alSchema = relation.MustSchema("X:int")

func al(view msg.ViewID, from, upto msg.UpdateID) msg.ActionList {
	return msg.ActionList{
		View:  view,
		From:  from,
		Upto:  upto,
		Delta: relation.InsertDelta(alSchema, relation.T(int(upto))),
		Level: msg.Complete,
	}
}

func rel(seq msg.UpdateID, views ...msg.ViewID) msg.RelevantSet {
	return msg.RelevantSet{Seq: seq, Views: views}
}

func feed(t *testing.T, m *Merge, msgs ...any) {
	t.Helper()
	for _, x := range msgs {
		m.Handle(x, 0)
	}
}

// rowsOf extracts the Rows field of each recorded transaction.
func rowsOf(r *recorder) [][]msg.UpdateID {
	out := make([][]msg.UpdateID, len(r.txns))
	for i, t := range r.txns {
		out[i] = t.Rows
	}
	return out
}

// writesOf renders each transaction's writes as view@upto strings.
func writesOf(r *recorder) [][]string {
	out := make([][]string, len(r.txns))
	for i, t := range r.txns {
		for _, w := range t.Writes {
			out[i] = append(out[i], string(w.View)+"@"+string(rune('0'+w.Upto)))
		}
	}
	return out
}

// --- Paper Example 2: VUT construction under SPA -------------------------

func TestExample2VUTConstruction(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	// Views: V1 = R⋈S, V2 = S⋈T⋈Q, V3 = Q. Updates: U1 on S, U2 on Q.
	feed(t, m, rel(1, "V1", "V2"), rel(2, "V2", "V3"))
	want := "U1: w w b |WT|=0\nU2: b w w |WT|=0\n"
	if got := m.RenderVUT(); got != want {
		t.Errorf("initial VUT:\n%s\nwant:\n%s", got, want)
	}
	// AL^2_1 arrives: entry turns red, list saved in WT1, nothing applies.
	feed(t, m, al("V2", 1, 1))
	want = "U1: w r b |WT|=1\nU2: b w w |WT|=0\n"
	if got := m.RenderVUT(); got != want {
		t.Errorf("after AL21:\n%s\nwant:\n%s", got, want)
	}
	if len(rec.txns) != 0 {
		t.Errorf("nothing should be applied yet, got %d txns", len(rec.txns))
	}
	// AL^1_1 completes row 1: both views update together in one txn.
	feed(t, m, al("V1", 1, 1))
	if len(rec.txns) != 1 {
		t.Fatalf("row 1 should apply, got %d txns", len(rec.txns))
	}
	if got := writesOf(rec)[0]; !reflect.DeepEqual(got, []string{"V1@1", "V2@1"}) {
		t.Errorf("txn writes = %v", got)
	}
}

// --- Paper Example 3: full SPA trace --------------------------------------

func TestExample3SPATrace(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	// Views: V1 = R⋈S, V2 = S⋈T, V3 = Q (disjoint from the others).
	// Updates: U1 on S, U2 on Q, U3 on T.
	// Arrival order from the paper: REL1, AL21, REL2, REL3, AL32, AL23, AL11.
	feed(t, m, rel(1, "V1", "V2"))
	feed(t, m, al("V2", 1, 1)) // t1: saved, row 1 blocked on V1
	feed(t, m, rel(2, "V3"))
	feed(t, m, rel(3, "V2"))
	if len(rec.txns) != 0 {
		t.Fatalf("premature application: %v", rowsOf(rec))
	}
	// t4/t5: AL32 arrives; row 2 applies even though row 1 is still waiting,
	// because U1 is irrelevant (black) to V3.
	feed(t, m, al("V3", 2, 2))
	if len(rec.txns) != 1 || !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{2}) {
		t.Fatalf("after AL32 want row 2 applied, got %v", rowsOf(rec))
	}
	// t6: row 2 purged.
	want := "U1: w r b |WT|=1\nU3: b w b |WT|=0\n"
	if got := m.RenderVUT(); got != want {
		t.Errorf("VUT after row-2 purge:\n%s\nwant:\n%s", got, want)
	}
	// t7: AL23 arrives; row 3 blocked — an earlier red exists in V2's column.
	feed(t, m, al("V2", 3, 3))
	if len(rec.txns) != 1 {
		t.Fatalf("row 3 must wait for row 1, got %v", rowsOf(rec))
	}
	// t8-t11: AL11 arrives; row 1 applies, unblocking row 3.
	feed(t, m, al("V1", 1, 1))
	if len(rec.txns) != 3 {
		t.Fatalf("want 3 txns, got %v", rowsOf(rec))
	}
	if !reflect.DeepEqual(rowsOf(rec), [][]msg.UpdateID{{2}, {1}, {3}}) {
		t.Errorf("apply order = %v, want [[2] [1] [3]]", rowsOf(rec))
	}
	if got := writesOf(rec)[1]; !reflect.DeepEqual(got, []string{"V1@1", "V2@1"}) {
		t.Errorf("WT1 writes = %v", got)
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT should be empty at the end, got:\n%s", got)
	}
	st := m.Stats()
	if st.RELsReceived != 3 || st.ALsReceived != 4 || st.TxnsSubmitted != 3 || st.RowsLive != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// --- AL before REL buffering (§4: "may receive ALxj without RELj") --------

func TestSPAActionListBeforeREL(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	feed(t, m, al("V1", 1, 1)) // buffered
	if len(rec.txns) != 0 {
		t.Fatal("AL without REL must be buffered")
	}
	if st := m.Stats(); st.HeldALs != 1 {
		t.Errorf("HeldALs = %d", st.HeldALs)
	}
	feed(t, m, rel(1, "V1"))
	if len(rec.txns) != 1 || !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{1}) {
		t.Fatalf("buffered AL should apply on REL arrival: %v", rowsOf(rec))
	}
	if st := m.Stats(); st.HeldALs != 0 {
		t.Errorf("HeldALs after = %d", st.HeldALs)
	}
}

// --- Paper Example 4: the scenario where SPA breaks, handled by PA --------

func TestExample4IntertwinedBatch(t *testing.T) {
	rec := &recorder{}
	m := New(0, PA, rec)
	// Views: V1 = R⋈S, V2 = S⋈T⋈Q, V3 = Q.
	// Updates: U1 on S, U2 on Q, U3 on S.
	feed(t, m, rel(1, "V1", "V2"), rel(2, "V2", "V3"), rel(3, "V1", "V2"))
	// AL^1_3 covers U1 and U3 for V1 (intertwined batch).
	feed(t, m, al("V1", 1, 3))
	// All remaining ALs for U1 and U2 arrive.
	feed(t, m, al("V2", 1, 1), al("V2", 2, 2), al("V3", 2, 2))
	// SPA would now (incorrectly) apply rows 1 and 2; PA must hold
	// everything because AL^2_3 is missing and row 1 is tied to row 3.
	if len(rec.txns) != 0 {
		t.Fatalf("PA must hold intertwined rows, got %v", rowsOf(rec))
	}
	// The missing list arrives: all three rows apply as one transaction.
	feed(t, m, al("V2", 3, 3))
	if len(rec.txns) != 1 {
		t.Fatalf("want a single joint txn, got %v", rowsOf(rec))
	}
	if !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{1, 2, 3}) {
		t.Errorf("joint txn rows = %v", rec.txns[0].Rows)
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT should be empty, got:\n%s", got)
	}
}

// --- Paper Example 5: full PA trace ----------------------------------------

func TestExample5PATrace(t *testing.T) {
	rec := &recorder{}
	m := New(0, PA, rec)
	// Views: V1 = R⋈S, V2 = S⋈T⋈Q, V3 = Q.
	// Updates: U1 on S, U2 on Q, U3 on Q.
	// Arrival: REL1, REL2, REL3, AL21, AL23, AL32, AL11, AL33.
	feed(t, m, rel(1, "V1", "V2"), rel(2, "V2", "V3"), rel(3, "V2", "V3"))
	want := "U1: (w,0) (w,0) b |WT|=0\nU2: b (w,0) (w,0) |WT|=0\nU3: b (w,0) (w,0) |WT|=0\n"
	if got := m.RenderVUT(); got != want {
		t.Errorf("t0 VUT:\n%s\nwant:\n%s", got, want)
	}
	// t1: AL^2_1.
	feed(t, m, al("V2", 1, 1))
	want = "U1: (w,0) (r,1) b |WT|=1\nU2: b (w,0) (w,0) |WT|=0\nU3: b (w,0) (w,0) |WT|=0\n"
	if got := m.RenderVUT(); got != want {
		t.Errorf("t1 VUT:\n%s\nwant:\n%s", got, want)
	}
	// t2: AL^2_3 covers U2 and U3 for V2: both entries red with state 3.
	feed(t, m, al("V2", 2, 3))
	want = "U1: (w,0) (r,1) b |WT|=1\nU2: b (r,3) (w,0) |WT|=0\nU3: b (r,3) (w,0) |WT|=1\n"
	if got := m.RenderVUT(); got != want {
		t.Errorf("t2 VUT:\n%s\nwant:\n%s", got, want)
	}
	// t3: AL^3_2; ProcessRow(2) recurses into row 1, which fails (V1 white).
	feed(t, m, al("V3", 2, 2))
	if len(rec.txns) != 0 {
		t.Fatalf("nothing may apply before AL11, got %v", rowsOf(rec))
	}
	// t4/t5: AL^1_1 arrives; row 1 applies alone; row 3 attempted and fails.
	feed(t, m, al("V1", 1, 1))
	if len(rec.txns) != 1 || !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{1}) {
		t.Fatalf("after AL11 want row 1 applied, got %v", rowsOf(rec))
	}
	want = "U2: b (r,3) (r,2) |WT|=1\nU3: b (r,3) (w,0) |WT|=1\n"
	if got := m.RenderVUT(); got != want {
		t.Errorf("t5 VUT:\n%s\nwant:\n%s", got, want)
	}
	// t6/t7: AL^3_3 arrives; rows 2 and 3 apply together in one transaction
	// (the recursive ProcessRow(3)→ProcessRow(2)→ProcessRow(3) case).
	feed(t, m, al("V3", 3, 3))
	if len(rec.txns) != 2 {
		t.Fatalf("want joint txn for rows 2,3, got %v", rowsOf(rec))
	}
	if !reflect.DeepEqual(rec.txns[1].Rows, []msg.UpdateID{2, 3}) {
		t.Errorf("joint rows = %v", rec.txns[1].Rows)
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT should be empty, got:\n%s", got)
	}
}

// --- SPA with multiple views sharing columns: out-of-order independence ---

func TestSPAIndependentRowsApplyOutOfOrder(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	feed(t, m, rel(1, "V1"), rel(2, "V2"))
	// Row 2's AL arrives first; rows touch disjoint views, so row 2 applies
	// before row 1 (the paper's prompt behaviour, Example 3 t5).
	feed(t, m, al("V2", 2, 2))
	feed(t, m, al("V1", 1, 1))
	if !reflect.DeepEqual(rowsOf(rec), [][]msg.UpdateID{{2}, {1}}) {
		t.Errorf("apply order = %v", rowsOf(rec))
	}
}

func TestSPADependentRowsApplyInOrder(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	feed(t, m, rel(1, "V1"), rel(2, "V1"))
	// Same column: row 2's AL arrives first but must wait for row 1.
	feed(t, m, al("V1", 1, 1), al("V1", 2, 2))
	if !reflect.DeepEqual(rowsOf(rec), [][]msg.UpdateID{{1}, {2}}) {
		t.Errorf("apply order = %v", rowsOf(rec))
	}
}

func TestSPAEmptyRelevantSetAppliesEmptyTxn(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	feed(t, m, msg.RelevantSet{Seq: 1})
	if len(rec.txns) != 1 || len(rec.txns[0].Writes) != 0 || !reflect.DeepEqual(rec.txns[0].Rows, []msg.UpdateID{1}) {
		t.Errorf("empty REL should become an empty txn: %+v", rec.txns)
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT should be empty, got %q", got)
	}
}

func TestSPARejectsProtocolViolations(t *testing.T) {
	rec := &recorder{}
	m := New(0, SPA, rec)
	feed(t, m, rel(1, "V1"))
	// An AL for a view not in RELi is a protocol violation.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AL for irrelevant view should panic")
			}
		}()
		feed(t, m, al("V2", 1, 1))
	}()
	// A batched AL under SPA is a protocol violation.
	rec2 := &recorder{}
	m2 := New(0, SPA, rec2)
	feed(t, m2, rel(1, "V1"), rel(2, "V1"))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("batched AL under SPA should panic")
			}
		}()
		feed(t, m2, al("V1", 1, 2))
	}()
	// Duplicate REL is a protocol violation.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate REL should panic")
			}
		}()
		feed(t, m, rel(1, "V1"))
	}()
}

func TestForwardModePassesThrough(t *testing.T) {
	rec := &recorder{}
	m := New(0, Forward, rec)
	feed(t, m, rel(1, "V1")) // ignored
	feed(t, m, al("V1", 1, 1), al("V2", 1, 1))
	if len(rec.txns) != 2 {
		t.Fatalf("forward mode should pass ALs through, got %d txns", len(rec.txns))
	}
	if rec.txns[0].Writes[0].View != "V1" || rec.txns[1].Writes[0].View != "V2" {
		t.Errorf("forward txns = %+v", rec.txns)
	}
}

func TestForLevel(t *testing.T) {
	cases := []struct {
		levels []msg.Level
		want   Algorithm
	}{
		{[]msg.Level{msg.Complete, msg.Complete}, SPA},
		{[]msg.Level{msg.Complete, msg.Strong}, PA},
		{[]msg.Level{msg.Strong}, PA},
		{[]msg.Level{msg.Strong, msg.Convergent}, Forward},
		{nil, SPA},
	}
	for _, c := range cases {
		if got := ForLevel(c.levels...); got != c.want {
			t.Errorf("ForLevel(%v) = %v, want %v", c.levels, got, c.want)
		}
	}
}

func TestAlgorithmAndColorStrings(t *testing.T) {
	if SPA.String() != "SPA" || PA.String() != "PA" || Forward.String() != "forward" {
		t.Error("Algorithm.String mismatch")
	}
	if White.String() != "w" || Red.String() != "r" || Gray.String() != "g" {
		t.Error("Color.String mismatch")
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	var events []TraceEvent
	rec := &recorder{}
	m := New(0, SPA, rec, WithTrace(func(e TraceEvent) { events = append(events, e) }))
	feed(t, m, rel(1, "V1"), al("V1", 1, 1))
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	if !reflect.DeepEqual(kinds, []string{"rel", "al", "apply", "purge"}) {
		t.Errorf("trace kinds = %v", kinds)
	}
}

func TestPAHoldLatencyStats(t *testing.T) {
	rec := &recorder{}
	m := New(0, PA, rec)
	m.Handle(rel(1, "V1", "V2"), 0)
	m.Handle(al("V1", 1, 1), 10)
	m.Handle(al("V2", 1, 1), 50)
	st := m.Stats()
	if st.HoldCount != 2 || st.HoldMax != 40 || st.HoldSum != 40 {
		t.Errorf("hold stats = %+v", st)
	}
}
