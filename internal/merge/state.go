// state.go gives the merge process and its commit strategies durable
// snapshots (internal/durable): the full VUT — rows, colors, held action
// lists, per-view columns — plus relay bookkeeping, counters, and the
// strategy's in-flight transactions. All slices are sorted so identical
// states encode to identical bytes.
package merge

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"whips/internal/msg"
	"whips/internal/wire"
)

// encodeTxn round-trips a WarehouseTxn through its wire form.
func encodeTxn(t msg.WarehouseTxn) (wire.SubmitTxn, error) {
	wm, err := wire.Encode(msg.SubmitTxn{Txn: t})
	if err != nil {
		return wire.SubmitTxn{}, err
	}
	return wm.(wire.SubmitTxn), nil
}

func decodeTxn(w wire.SubmitTxn) (msg.WarehouseTxn, error) {
	m, err := wire.Decode(w)
	if err != nil {
		return msg.WarehouseTxn{}, err
	}
	return m.(msg.SubmitTxn).Txn, nil
}

func encodeTxns(ts []msg.WarehouseTxn) ([]wire.SubmitTxn, error) {
	out := make([]wire.SubmitTxn, 0, len(ts))
	for _, t := range ts {
		w, err := encodeTxn(t)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func decodeTxns(ws []wire.SubmitTxn) ([]msg.WarehouseTxn, error) {
	var out []msg.WarehouseTxn
	for _, w := range ws {
		t, err := decodeTxn(w)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobFrom(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// ---------------------------------------------------------------- strategies

type sequentialState struct {
	Next     int64
	Queue    []wire.SubmitTxn
	Inflight int64
}

// MarshalState implements Strategy.
func (s *Sequential) MarshalState() ([]byte, error) {
	q, err := encodeTxns(s.queue)
	if err != nil {
		return nil, err
	}
	return gobBytes(sequentialState{Next: int64(s.ids.next), Queue: q, Inflight: int64(s.inflight)})
}

// RestoreState implements Strategy.
func (s *Sequential) RestoreState(b []byte) error {
	var st sequentialState
	if err := gobFrom(b, &st); err != nil {
		return err
	}
	q, err := decodeTxns(st.Queue)
	if err != nil {
		return err
	}
	s.ids.next = msg.TxnID(st.Next)
	s.queue = q
	s.inflight = msg.TxnID(st.Inflight)
	return nil
}

type idOnlyState struct{ Next int64 }

// MarshalState implements Strategy.
func (c *Callback) MarshalState() ([]byte, error) { return gobBytes(idOnlyState{Next: int64(c.ids.next)}) }

// RestoreState implements Strategy.
func (c *Callback) RestoreState(b []byte) error {
	var st idOnlyState
	if err := gobFrom(b, &st); err != nil {
		return err
	}
	c.ids.next = msg.TxnID(st.Next)
	return nil
}

// MarshalState implements Strategy.
func (s *Immediate) MarshalState() ([]byte, error) { return gobBytes(idOnlyState{Next: int64(s.ids.next)}) }

// RestoreState implements Strategy.
func (s *Immediate) RestoreState(b []byte) error {
	var st idOnlyState
	if err := gobFrom(b, &st); err != nil {
		return err
	}
	s.ids.next = msg.TxnID(st.Next)
	return nil
}

type dependencyState struct {
	Next        int64
	Uncommitted []depEntryState
}

type depEntryState struct {
	ID    int64
	Views []string
}

// MarshalState implements Strategy.
func (d *Dependency) MarshalState() ([]byte, error) {
	st := dependencyState{Next: int64(d.ids.next)}
	for id, vs := range d.uncommitted {
		e := depEntryState{ID: int64(id)}
		for _, v := range vs {
			e.Views = append(e.Views, string(v))
		}
		st.Uncommitted = append(st.Uncommitted, e)
	}
	sort.Slice(st.Uncommitted, func(i, j int) bool { return st.Uncommitted[i].ID < st.Uncommitted[j].ID })
	return gobBytes(st)
}

// RestoreState implements Strategy.
func (d *Dependency) RestoreState(b []byte) error {
	var st dependencyState
	if err := gobFrom(b, &st); err != nil {
		return err
	}
	d.ids.next = msg.TxnID(st.Next)
	d.uncommitted = make(map[msg.TxnID][]msg.ViewID, len(st.Uncommitted))
	for _, e := range st.Uncommitted {
		var vs []msg.ViewID
		for _, v := range e.Views {
			vs = append(vs, msg.ViewID(v))
		}
		d.uncommitted[msg.TxnID(e.ID)] = vs
	}
	return nil
}

type batchedState struct {
	Next       int64
	Buf        []wire.SubmitTxn
	Queue      []wire.SubmitTxn
	Inflight   int64
	TimerGen   int64
	TimerArmed bool
}

// MarshalState implements Strategy.
func (b *Batched) MarshalState() ([]byte, error) {
	buf, err := encodeTxns(b.buf)
	if err != nil {
		return nil, err
	}
	q, err := encodeTxns(b.queue)
	if err != nil {
		return nil, err
	}
	return gobBytes(batchedState{
		Next: int64(b.ids.next), Buf: buf, Queue: q,
		Inflight: int64(b.inflight), TimerGen: b.timerGen, TimerArmed: b.timerArmed,
	})
}

// RestoreState implements Strategy.
func (b *Batched) RestoreState(bs []byte) error {
	var st batchedState
	if err := gobFrom(bs, &st); err != nil {
		return err
	}
	buf, err := decodeTxns(st.Buf)
	if err != nil {
		return err
	}
	q, err := decodeTxns(st.Queue)
	if err != nil {
		return err
	}
	b.ids.next = msg.TxnID(st.Next)
	b.buf, b.queue = buf, q
	b.inflight = msg.TxnID(st.Inflight)
	b.timerGen, b.timerArmed = st.TimerGen, st.TimerArmed
	return nil
}

// ---------------------------------------------------------------- merge

type heldALState struct {
	AL         wire.ActionList
	ReceivedAt int64
}

func encodeHeld(hs []heldAL) ([]heldALState, error) {
	var out []heldALState
	for _, h := range hs {
		wm, err := wire.Encode(h.al)
		if err != nil {
			return nil, err
		}
		out = append(out, heldALState{AL: wm.(wire.ActionList), ReceivedAt: h.receivedAt})
	}
	return out, nil
}

func decodeHeld(ws []heldALState) ([]heldAL, error) {
	var out []heldAL
	for _, w := range ws {
		m, err := wire.Decode(w.AL)
		if err != nil {
			return nil, err
		}
		out = append(out, heldAL{al: m.(msg.ActionList), receivedAt: w.ReceivedAt})
	}
	return out, nil
}

type entryState struct {
	View  string
	Color uint8
	State int64
}

type rowState struct {
	Seq       int64
	CommitAt  int64
	Entries   []entryState
	WT        []heldALState
	CreatedAt int64
	ReadyAt   int64
	UnblockAt int64
}

type colState struct {
	View    string
	Whites  []int64
	Reds    []int64
	Waiting []heldALState
	Covered [][2]int64
}

type mergeState struct {
	Rows        []rowState
	Cols        []colState
	RelSeen     []int64
	RelFrontier int64
	Stats       Stats
	Strategy    []byte
}

func seqsOut(s []msg.UpdateID) []int64 {
	out := make([]int64, len(s))
	for i, v := range s {
		out[i] = int64(v)
	}
	return out
}

func seqsIn(s []int64) []msg.UpdateID {
	var out []msg.UpdateID
	for _, v := range s {
		out = append(out, msg.UpdateID(v))
	}
	return out
}

// MarshalState implements durable.Durable. The transient PA apply-set is
// excluded: it is built and reset within a single Handle call.
func (m *Merge) MarshalState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := mergeState{RelFrontier: int64(m.relFrontier), Stats: m.stats}
	for _, seq := range m.rowSeqs {
		r := m.rows[seq]
		rs := rowState{
			Seq: int64(r.seq), CommitAt: r.commitAt,
			CreatedAt: r.createdAt, ReadyAt: r.readyAt, UnblockAt: r.unblockAt,
		}
		for _, v := range r.views {
			e := r.entries[v]
			rs.Entries = append(rs.Entries, entryState{View: string(v), Color: uint8(e.color), State: int64(e.state)})
		}
		wt, err := encodeHeld(r.wt)
		if err != nil {
			return nil, err
		}
		rs.WT = wt
		st.Rows = append(st.Rows, rs)
	}
	views := make([]string, 0, len(m.cols))
	for v := range m.cols {
		views = append(views, string(v))
	}
	sort.Strings(views)
	for _, v := range views {
		c := m.cols[msg.ViewID(v)]
		cs := colState{View: v, Whites: seqsOut(c.whites), Reds: seqsOut(c.reds)}
		w, err := encodeHeld(c.waiting)
		if err != nil {
			return nil, err
		}
		cs.Waiting = w
		for _, cr := range c.covered {
			cs.Covered = append(cs.Covered, [2]int64{int64(cr.from), int64(cr.upto)})
		}
		st.Cols = append(st.Cols, cs)
	}
	for seq := range m.relSeen {
		st.RelSeen = append(st.RelSeen, int64(seq))
	}
	sort.Slice(st.RelSeen, func(i, j int) bool { return st.RelSeen[i] < st.RelSeen[j] })
	sb, err := m.strategy.MarshalState()
	if err != nil {
		return nil, err
	}
	st.Strategy = sb
	return gobBytes(st)
}

// RestoreState implements durable.Durable. The merge must have been built
// with the same algorithm, group, and strategy kind as the one that
// marshaled the state.
func (m *Merge) RestoreState(b []byte) error {
	var st mergeState
	if err := gobFrom(b, &st); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = make(map[msg.UpdateID]*row, len(st.Rows))
	m.rowSeqs = nil
	for _, rs := range st.Rows {
		r := &row{
			seq: msg.UpdateID(rs.Seq), commitAt: rs.CommitAt,
			entries:   make(map[msg.ViewID]*entry, len(rs.Entries)),
			createdAt: rs.CreatedAt, readyAt: rs.ReadyAt, unblockAt: rs.UnblockAt,
		}
		for _, es := range rs.Entries {
			v := msg.ViewID(es.View)
			r.entries[v] = &entry{color: Color(es.Color), state: msg.UpdateID(es.State)}
			r.views = append(r.views, v)
		}
		wt, err := decodeHeld(rs.WT)
		if err != nil {
			return err
		}
		r.wt = wt
		m.rows[r.seq] = r
		m.rowSeqs = append(m.rowSeqs, r.seq)
	}
	m.cols = make(map[msg.ViewID]*column, len(st.Cols))
	for _, cs := range st.Cols {
		c := &column{whites: seqsIn(cs.Whites), reds: seqsIn(cs.Reds)}
		w, err := decodeHeld(cs.Waiting)
		if err != nil {
			return err
		}
		c.waiting = w
		for _, cr := range cs.Covered {
			c.covered = append(c.covered, coveredRange{from: msg.UpdateID(cr[0]), upto: msg.UpdateID(cr[1])})
		}
		m.cols[msg.ViewID(cs.View)] = c
	}
	if m.relayMode {
		m.relSeen = make(map[msg.UpdateID]bool, len(st.RelSeen))
		for _, s := range st.RelSeen {
			m.relSeen[msg.UpdateID(s)] = true
		}
	}
	m.relFrontier = msg.UpdateID(st.RelFrontier)
	m.stats = st.Stats
	m.applySet = make(map[msg.UpdateID]bool)
	m.applyList = nil
	if err := m.strategy.RestoreState(st.Strategy); err != nil {
		return fmt.Errorf("merge: restore strategy %q: %w", m.strategy.Name(), err)
	}
	return nil
}
