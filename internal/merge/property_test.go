package merge

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"whips/internal/msg"
)

// scenario generates a random workload for the merge process: nViews views,
// nUpdates updates with random non-empty relevant sets, and (for PA) random
// batching of each column's relevant rows. It then produces all messages on
// their channels: one REL channel (in seq order) and one AL channel per
// view (in Upto order), and interleaves the channels randomly — exactly the
// reordering freedom the paper's model allows (§4: "no restrictions on
// message arrival order, except that messages from the same process must
// arrive in the order sent").
type scenario struct {
	nViews   int
	rels     []msg.RelevantSet
	alsByVM  map[msg.ViewID][]msg.ActionList
	relevant map[msg.ViewID][]msg.UpdateID
}

func genScenario(rng *rand.Rand, batching bool) scenario {
	nViews := 1 + rng.Intn(4)
	nUpdates := 1 + rng.Intn(12)
	s := scenario{
		nViews:   nViews,
		alsByVM:  make(map[msg.ViewID][]msg.ActionList),
		relevant: make(map[msg.ViewID][]msg.UpdateID),
	}
	views := make([]msg.ViewID, nViews)
	for v := range views {
		views[v] = msg.ViewID(fmt.Sprintf("V%d", v+1))
	}
	for i := 1; i <= nUpdates; i++ {
		var rs []msg.ViewID
		for _, v := range views {
			if rng.Intn(2) == 0 {
				rs = append(rs, v)
				s.relevant[v] = append(s.relevant[v], msg.UpdateID(i))
			}
		}
		if len(rs) == 0 {
			v := views[rng.Intn(nViews)]
			rs = append(rs, v)
			s.relevant[v] = append(s.relevant[v], msg.UpdateID(i))
		}
		s.rels = append(s.rels, msg.RelevantSet{Seq: msg.UpdateID(i), Views: rs})
	}
	for _, v := range views {
		rows := s.relevant[v]
		k := 0
		for k < len(rows) {
			size := 1
			if batching && rng.Intn(2) == 0 {
				size = 1 + rng.Intn(len(rows)-k)
			}
			batch := rows[k : k+size]
			s.alsByVM[v] = append(s.alsByVM[v], msg.ActionList{
				View: v, From: batch[0], Upto: batch[len(batch)-1],
				Delta: nil, Level: msg.Strong,
			})
			k += size
		}
	}
	return s
}

// interleave merges the channels into one random-but-FIFO-per-channel
// message sequence.
func (s scenario) interleave(rng *rand.Rand) []any {
	type channel struct {
		msgs []any
		pos  int
	}
	var chans []*channel
	relc := &channel{}
	for _, r := range s.rels {
		relc.msgs = append(relc.msgs, r)
	}
	chans = append(chans, relc)
	for _, als := range s.alsByVM {
		c := &channel{}
		for _, al := range als {
			c.msgs = append(c.msgs, al)
		}
		chans = append(chans, c)
	}
	var out []any
	for {
		var live []*channel
		for _, c := range chans {
			if c.pos < len(c.msgs) {
				live = append(live, c)
			}
		}
		if len(live) == 0 {
			return out
		}
		c := live[rng.Intn(len(live))]
		out = append(out, c.msgs[c.pos])
		c.pos++
	}
}

// checkCoordination asserts the invariants both painting algorithms share:
// every row applied exactly once, per-view action lists applied in
// generation order, rows co-covered by one action list applied in one
// transaction, and an empty VUT at the end (promptness: nothing is held
// once everything arrived).
func checkCoordination(t *testing.T, s scenario, m *Merge, rec *recorder) bool {
	t.Helper()
	appliedIn := make(map[msg.UpdateID]int) // row -> txn index
	for ti, txn := range rec.txns {
		for _, r := range txn.Rows {
			if _, dup := appliedIn[r]; dup {
				t.Errorf("row %d applied twice", r)
				return false
			}
			appliedIn[r] = ti
		}
	}
	for _, r := range s.rels {
		if _, ok := appliedIn[r.Seq]; !ok {
			t.Errorf("row %d never applied; VUT:\n%s", r.Seq, m.RenderVUT())
			return false
		}
	}
	// Per view: action lists applied in Upto order, and all rows of one
	// batched list land in the same transaction.
	for v, als := range s.alsByVM {
		lastTxn := -1
		for _, al := range als {
			txn := appliedIn[al.Upto]
			if txn < lastTxn {
				t.Errorf("view %s: list upto %d applied before an earlier list", v, al.Upto)
				return false
			}
			lastTxn = txn
			// Atomicity of a batch: every covered relevant row applies in
			// the same transaction as the list itself.
			for _, row := range s.relevant[v] {
				if row >= al.From && row <= al.Upto && appliedIn[row] != txn {
					t.Errorf("view %s: batch %d..%d split across txns %d and %d",
						v, al.From, al.Upto, txn, appliedIn[row])
					return false
				}
			}
		}
	}
	if got := m.RenderVUT(); got != "" {
		t.Errorf("VUT not empty after quiescence:\n%s", got)
		return false
	}
	return true
}

func TestSPARandomInterleavings(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genScenario(rng, false)
		rec := &recorder{}
		m := New(0, SPA, rec)
		for _, x := range s.interleave(rng) {
			m.Handle(x, 0)
		}
		if !checkCoordination(t, s, m, rec) {
			return false
		}
		// SPA is complete: one transaction per row, in a per-view ascending
		// order; moreover each txn covers exactly one row.
		for _, txn := range rec.txns {
			if len(txn.Rows) != 1 {
				t.Errorf("SPA txn covers %v rows", txn.Rows)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPARandomInterleavings(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genScenario(rng, true)
		rec := &recorder{}
		m := New(0, PA, rec)
		for _, x := range s.interleave(rng) {
			m.Handle(x, 0)
		}
		return checkCoordination(t, s, m, rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// PA must also preserve per-view row order across transactions: for any
// view, the sequence of its rows ordered by commit is ascending.
func TestPAViewOrderPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := genScenario(rng, true)
		rec := &recorder{}
		m := New(0, PA, rec)
		for _, x := range s.interleave(rng) {
			m.Handle(x, 0)
		}
		for v := range s.alsByVM {
			var lastUpto msg.UpdateID
			for _, txn := range rec.txns {
				for _, w := range txn.Writes {
					if w.View != v {
						continue
					}
					if w.Upto < lastUpto {
						t.Errorf("view %s saw upto %d after %d", v, w.Upto, lastUpto)
						return false
					}
					lastUpto = w.Upto
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMergeDeterminism: the same message sequence must produce the same
// transaction sequence (rows and write order), for both algorithms — the
// property the deterministic simulator's reproducibility rests on.
func TestMergeDeterminism(t *testing.T) {
	for _, alg := range []Algorithm{SPA, PA} {
		rng := rand.New(rand.NewSource(99))
		s := genScenario(rng, alg == PA)
		msgs := s.interleave(rng)
		run := func() []string {
			rec := &recorder{}
			m := New(0, alg, rec)
			for _, x := range msgs {
				m.Handle(x, 0)
			}
			var sig []string
			for _, txn := range rec.txns {
				line := fmt.Sprint(txn.Rows)
				for _, w := range txn.Writes {
					line += fmt.Sprintf("|%s@%d", w.View, w.Upto)
				}
				sig = append(sig, line)
			}
			return sig
		}
		first := run()
		for i := 0; i < 5; i++ {
			if got := run(); !reflect.DeepEqual(got, first) {
				t.Fatalf("%v non-deterministic:\n%v\nvs\n%v", alg, got, first)
			}
		}
	}
}
