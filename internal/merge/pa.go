package merge

import (
	"sort"

	"whips/internal/msg"
)

// paTryRow runs one painting attempt of PA's ProcessRow(i): it verifies the
// dependency closure of row i (accumulating the paper's ApplyRows set), and
// if the whole closure is applicable, applies it as a single warehouse
// transaction and cascades to newly unblocked rows (line 9).
//
// A note on fidelity: Algorithm 2 as printed lets a recursive call reach
// lines 6–8 and apply ApplyRows while an outer call is still verifying its
// own row's remaining columns. With the arrival order of Example 4
// (AL¹₃ before AL²₂ and AL²₃) that would apply AL²₃ before AL²₂ —
// reordering one view manager's lists. We therefore implement the reading
// consistent with the paper's own Example 5 narrative and with Theorem 5.1:
// lines 1–5 are pure verification (no state change other than ApplyRows),
// and lines 6–10 run once, after the closure fully verifies. The applied
// transactions are identical on every trace the paper works out.
func (m *Merge) paTryRow(i msg.UpdateID, now int64) ([]msg.Outbound, bool) {
	if r := m.rows[i]; r != nil {
		// Promptness bookkeeping: the attempt itself marks the newest
		// enabling state change for this row's dependency set.
		r.unblockAt = now
	}
	m.resetApplyRows()
	if !m.paVerify(i) {
		m.resetApplyRows()
		return nil, false
	}
	if len(m.applyList) == 0 {
		// The row was already applied and purged; nothing to do.
		return nil, true
	}
	return m.paApply(now), true
}

func (m *Merge) resetApplyRows() {
	for k := range m.applySet {
		delete(m.applySet, k)
	}
	m.applyList = m.applyList[:0]
}

// paVerify is lines 1–5 of Algorithm 2: can row i — together with every
// row its action lists are tied to — be applied now?
func (m *Merge) paVerify(i msg.UpdateID) bool {
	// Line 1: already part of the closure being verified.
	if m.applySet[i] {
		return true
	}
	r := m.rows[i]
	if r == nil {
		// Applied and purged earlier; imposes no further requirement.
		return true
	}
	// Frontier guard (§3.2 relayed routing): beyond the contiguous-REL
	// frontier, a batched list may cover updates whose other affected
	// views are not yet known; applying it would split their atomic unit.
	if i > m.relFrontier {
		return false
	}
	// Line 2: a white entry means a covering action list is missing.
	for _, v := range r.views {
		if r.entries[v].color == White {
			return false
		}
	}
	// Line 3.
	m.applySet[i] = true
	m.applyList = append(m.applyList, i)
	// Line 4: lists from one view manager must apply in generation order,
	// so every earlier unapplied (red) row in each red entry's column joins
	// the closure. An earlier list still buffered awaiting its relayed
	// RELᵢ (§3.2 alternative routing) blocks outright.
	for _, v := range r.views {
		if r.entries[v].color != Red {
			continue
		}
		col := m.col(v)
		if col.hasBufferedBefore(i) {
			return false
		}
		for _, i2 := range col.redsBefore(i) {
			if !m.paVerify(i2) {
				return false
			}
		}
	}
	// Line 5: an entry that jumps to a later state (intertwined batch)
	// drags that later row in: its actions must apply in the same
	// transaction.
	for _, v := range r.views {
		e := r.entries[v]
		if e.color == Red && e.state > i {
			if !m.paVerify(e.state) {
				return false
			}
		}
	}
	return true
}

// paApply is lines 6–10 of Algorithm 2, applied to the verified closure.
func (m *Merge) paApply(now int64) []msg.Outbound {
	applied := append([]msg.UpdateID(nil), m.applyList...)
	sort.Slice(applied, func(a, b int) bool { return applied[a] < applied[b] })
	// Line 6: paint red entries of the closure gray.
	var held []heldAL
	for _, j := range applied {
		rj := m.rows[j]
		for _, v := range rj.views {
			e := rj.entries[v]
			if e.color != Red {
				continue
			}
			e.color = Gray
			m.mo.paintRG.Inc()
			m.col(v).removeRed(j)
		}
		held = append(held, rj.wt...)
	}
	// Line 9's nextRed targets, computed after every red of the closure is
	// consumed so the scan cannot point back into the transaction itself.
	var next []msg.UpdateID
	for _, j := range applied {
		rj := m.rows[j]
		for _, v := range rj.views {
			if rj.entries[v].color != Gray {
				continue
			}
			if n := m.col(v).nextRedAfter(j); n != 0 {
				next = append(next, n)
			}
		}
	}
	// Line 7: one warehouse transaction for the whole closure.
	out := m.submitRows(now, applied, held, "")
	// Line 8.
	m.resetApplyRows()
	// Line 10 (purging first keeps line 9's fresh attempts on a clean
	// table; every purged row is all-gray/black by construction).
	for _, j := range applied {
		m.purgeRow(j)
	}
	// Line 9: each unblocked row gets a fresh painting attempt with its own
	// ApplyRows.
	seen := make(map[msg.UpdateID]bool, len(next))
	for _, n := range next {
		if seen[n] {
			continue
		}
		seen[n] = true
		o, _ := m.paTryRow(n, now)
		out = append(out, o...)
	}
	return out
}
