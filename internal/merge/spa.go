package merge

import "whips/internal/msg"

// spaProcessRow is Procedure ProcessRow(i) of Algorithm 1 (the Simple
// Painting Algorithm). Line numbers follow the paper.
func (m *Merge) spaProcessRow(i msg.UpdateID, now int64) []msg.Outbound {
	r := m.rows[i]
	if r == nil {
		return nil
	}
	// Every painting attempt is triggered by a state change at `now` in the
	// row's dependency set; the promptness gap measures submission time
	// against the LAST such enabling change.
	r.unblockAt = now
	// Frontier guard (§3.2 relayed routing): beyond the contiguous-REL
	// frontier, an update's full relevant-view set may be unknown, so
	// nothing there may commit yet.
	if i > m.relFrontier {
		return nil
	}
	// Line 1: if any entry is white, some action list has not arrived; the
	// row cannot be applied yet.
	for _, v := range r.views {
		if r.entries[v].color == White {
			return nil
		}
	}
	// Line 2: if an earlier red exists in the column of any red entry,
	// earlier lists from that view manager have not been applied; applying
	// row i now would reorder a view manager's actions. An earlier list
	// still buffered awaiting its relayed RELᵢ (§3.2 alternative routing)
	// blocks for the same reason.
	for _, v := range r.views {
		if r.entries[v].color != Red {
			continue
		}
		col := m.col(v)
		if first, ok := col.firstRed(); ok && first < i {
			return nil
		}
		if col.hasBufferedBefore(i) {
			return nil
		}
	}
	// Line 3: paint the row's red entries gray.
	var next []msg.UpdateID
	for _, v := range r.views {
		e := r.entries[v]
		if e.color != Red {
			continue
		}
		e.color = Gray
		m.mo.paintRG.Inc()
		col := m.col(v)
		col.removeRed(i)
		// Precompute line 5's nextRed(i, x) now, while the column state is
		// fresh.
		if n := col.nextRedAfter(i); n != 0 {
			next = append(next, n)
		}
	}
	// Line 4: apply all actions in WTᵢ as a single warehouse transaction.
	out := m.submitRows(now, []msg.UpdateID{i}, r.wt, "")
	// Line 6 (purging before the line-5 recursion is safe: every entry of
	// row i is now gray or black, so no later check can need it).
	m.purgeRow(i)
	// Line 5: applying this row may unblock later rows in the same columns.
	seen := make(map[msg.UpdateID]bool, len(next))
	for _, n := range next {
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, m.spaProcessRow(n, now)...)
	}
	return out
}
