package integrator

import (
	"reflect"
	"testing"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
	tSchema = relation.MustSchema("C:int", "D:int")
)

func testViews() []ViewInfo {
	return []ViewInfo{
		{ID: "V1", Expr: expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)), MergeGroup: 0},
		{ID: "V2", Expr: expr.MustJoin(expr.Scan("S", sSchema), expr.Scan("T", tSchema)), MergeGroup: 0},
	}
}

func upd(seq msg.UpdateID, rel string, s *relation.Schema, vals ...any) msg.Update {
	return msg.Update{
		Seq:    seq,
		Source: "src",
		Writes: []msg.Write{{Relation: rel, Delta: relation.InsertDelta(s, relation.T(vals...))}},
	}
}

func destinations(out []msg.Outbound) []string {
	var ds []string
	for _, o := range out {
		ds = append(ds, o.To)
	}
	return ds
}

func TestIntegratorRoutesRelAndUpdates(t *testing.T) {
	in := New(testViews())
	if in.ID() != msg.NodeIntegrator {
		t.Errorf("id = %q", in.ID())
	}
	// An S update is relevant to both views.
	out := in.Handle(upd(1, "S", sSchema, 2, 3), 0)
	want := []string{"merge:0", "vm:V1", "vm:V2"}
	if !reflect.DeepEqual(destinations(out), want) {
		t.Fatalf("destinations = %v, want %v", destinations(out), want)
	}
	rel := out[0].Msg.(msg.RelevantSet)
	if rel.Seq != 1 || !reflect.DeepEqual(rel.Views, []msg.ViewID{"V1", "V2"}) {
		t.Errorf("REL = %+v", rel)
	}
	u1 := out[1].Msg.(msg.Update)
	if u1.Seq != 1 || len(u1.Writes) != 1 || u1.Writes[0].Relation != "S" {
		t.Errorf("forwarded update = %+v", u1)
	}
	if in.Received() != 1 {
		t.Errorf("received = %d", in.Received())
	}
}

func TestIntegratorSingleRelevantView(t *testing.T) {
	in := New(testViews())
	out := in.Handle(upd(1, "R", rSchema, 1, 2), 0)
	if !reflect.DeepEqual(destinations(out), []string{"merge:0", "vm:V1"}) {
		t.Fatalf("destinations = %v", destinations(out))
	}
	rel := out[0].Msg.(msg.RelevantSet)
	if !reflect.DeepEqual(rel.Views, []msg.ViewID{"V1"}) {
		t.Errorf("REL = %+v", rel)
	}
}

func TestIntegratorIrrelevantUpdateDropped(t *testing.T) {
	in := New(testViews())
	q := relation.MustSchema("Z:int")
	out := in.Handle(upd(1, "Q", q, 5), 0)
	if len(out) != 0 {
		t.Errorf("update to unreferenced relation should route nowhere: %v", out)
	}
	// With WithEmptyRelevantSets it becomes an empty REL to every group.
	in2 := New(testViews(), WithEmptyRelevantSets())
	out = in2.Handle(upd(1, "Q", q, 5), 0)
	if len(out) != 1 {
		t.Fatalf("want empty REL, got %v", out)
	}
	rel := out[0].Msg.(msg.RelevantSet)
	if rel.Seq != 1 || len(rel.Views) != 0 {
		t.Errorf("empty REL = %+v", rel)
	}
}

func TestIntegratorRelevanceFilter(t *testing.T) {
	views := []ViewInfo{{
		ID:   "V1",
		Expr: expr.MustJoin(expr.MustSelect(expr.Scan("R", rSchema), expr.Cmp("A", Eq, 1)), expr.Scan("S", sSchema)),
	}}
	in := New(views, WithRelevanceFilter())
	// A=9 is provably irrelevant: nothing routed.
	if out := in.Handle(upd(1, "R", rSchema, 9, 2), 0); len(out) != 0 {
		t.Errorf("filtered update routed: %v", out)
	}
	// A=1 passes.
	out := in.Handle(upd(2, "R", rSchema, 1, 2), 0)
	if len(out) != 2 {
		t.Fatalf("relevant update should route: %v", out)
	}
	// Mixed delta: only the passing tuple is forwarded.
	d := relation.NewDelta(rSchema)
	d.Add(relation.T(1, 5), 1)
	d.Add(relation.T(7, 5), 1)
	out = in.Handle(msg.Update{Seq: 3, Writes: []msg.Write{{Relation: "R", Delta: d}}}, 0)
	fw := out[1].Msg.(msg.Update)
	if fw.Writes[0].Delta.Count(relation.T(1, 5)) != 1 || fw.Writes[0].Delta.Count(relation.T(7, 5)) != 0 {
		t.Errorf("forwarded delta = %v", fw.Writes[0].Delta)
	}
}

// Eq is re-declared to avoid importing the whole expr constant set.
const Eq = expr.Eq

func TestIntegratorMultiWriteTransaction(t *testing.T) {
	in := New(testViews())
	u := msg.Update{Seq: 1, Writes: []msg.Write{
		{Relation: "R", Delta: relation.InsertDelta(rSchema, relation.T(1, 2))},
		{Relation: "T", Delta: relation.InsertDelta(tSchema, relation.T(3, 4))},
	}}
	out := in.Handle(u, 0)
	if !reflect.DeepEqual(destinations(out), []string{"merge:0", "vm:V1", "vm:V2"}) {
		t.Fatalf("destinations = %v", destinations(out))
	}
	// Each view manager receives only its own relation's writes.
	u1 := out[1].Msg.(msg.Update)
	u2 := out[2].Msg.(msg.Update)
	if len(u1.Writes) != 1 || u1.Writes[0].Relation != "R" {
		t.Errorf("V1 writes = %+v", u1.Writes)
	}
	if len(u2.Writes) != 1 || u2.Writes[0].Relation != "T" {
		t.Errorf("V2 writes = %+v", u2.Writes)
	}
}

func TestIntegratorDistributedGroups(t *testing.T) {
	q := relation.MustSchema("Z:int")
	views := []ViewInfo{
		{ID: "V1", Expr: expr.Scan("R", rSchema), MergeGroup: 0},
		{ID: "V3", Expr: expr.Scan("Q", q), MergeGroup: 1},
	}
	in := New(views)
	out := in.Handle(upd(1, "Q", q, 5), 0)
	if !reflect.DeepEqual(destinations(out), []string{"merge:1", "vm:V3"}) {
		t.Errorf("destinations = %v", destinations(out))
	}
	rel := out[0].Msg.(msg.RelevantSet)
	if !reflect.DeepEqual(rel.Views, []msg.ViewID{"V3"}) {
		t.Errorf("group REL = %+v", rel)
	}
}

func TestIntegratorPanicsOnReorderedUpdates(t *testing.T) {
	in := New(testViews())
	in.Handle(upd(2, "S", sSchema, 1, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order update must panic")
		}
	}()
	in.Handle(upd(1, "S", sSchema, 2, 2), 0)
}

func TestIntegratorIgnoresUnknownMessages(t *testing.T) {
	in := New(testViews())
	if out := in.Handle("garbage", 0); out != nil {
		t.Errorf("garbage produced %v", out)
	}
}

func TestMatcherGroupOf(t *testing.T) {
	m := NewMatcher([]ViewInfo{{ID: "V1", Expr: expr.Scan("R", rSchema), MergeGroup: 3}}, false)
	if m.GroupOf("V1") != 3 || m.GroupOf("nope") != 0 {
		t.Error("GroupOf mismatch")
	}
	if len(m.Views()) != 1 {
		t.Error("Views mismatch")
	}
}

func TestIntegratorCommitAtPropagates(t *testing.T) {
	in := New(testViews())
	u := upd(1, "S", sSchema, 2, 3)
	u.CommitAt = 77
	out := in.Handle(u, 0)
	if rel := out[0].Msg.(msg.RelevantSet); rel.CommitAt != 77 {
		t.Errorf("REL CommitAt = %d", rel.CommitAt)
	}
	if fw := out[1].Msg.(msg.Update); fw.CommitAt != 77 {
		t.Errorf("forwarded CommitAt = %d", fw.CommitAt)
	}
}

func TestIntegratorRelayedRelevantSets(t *testing.T) {
	in := New(testViews(), WithRelayedRelevantSets())
	if in.Matcher() == nil {
		t.Fatal("Matcher accessor")
	}
	// An S update is relevant to both views: the REL rides with the first
	// relevant view's update copy; no direct merge message.
	out := in.Handle(upd(1, "S", sSchema, 2, 3), 0)
	if !reflect.DeepEqual(destinations(out), []string{"vm:V1", "vm:V2"}) {
		t.Fatalf("destinations = %v", destinations(out))
	}
	u1 := out[0].Msg.(msg.Update)
	if u1.Rel == nil || u1.Rel.Seq != 1 || len(u1.Rel.Views) != 2 {
		t.Errorf("carrier update = %+v", u1.Rel)
	}
	u2 := out[1].Msg.(msg.Update)
	if u2.Rel != nil {
		t.Errorf("non-carrier update must not carry the REL: %+v", u2.Rel)
	}
	// An update relevant to no view yields an empty direct REL so the merge
	// frontier stays gap-free.
	q := relation.MustSchema("Z:int")
	out = in.Handle(upd(2, "Q", q, 5), 0)
	if len(out) != 1 || out[0].To != "merge:0" {
		t.Fatalf("gapless empty REL expected: %v", destinations(out))
	}
	rel := out[0].Msg.(msg.RelevantSet)
	if rel.Seq != 2 || len(rel.Views) != 0 {
		t.Errorf("empty REL = %+v", rel)
	}
}
