package integrator

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"whips/internal/msg"
)

// integratorState is the durable form of an Integrator. The matcher and
// routing tables are pure functions of the view definitions, rebuilt from
// configuration on restart; the FIFO watermark, the received count, and —
// in shared-plans mode — the maintenance-plan DAG's materialized contents
// are state. The DAG must ride in the same snapshot as the watermark:
// recovery replays only post-snapshot inputs, so the plan's relations
// have to be captured at exactly the watermark's state.
type integratorState struct {
	LastSeq  int64
	Received int64
	Plan     []byte // nil when shared plans are off
}

// MarshalState implements durable.Durable.
func (in *Integrator) MarshalState() ([]byte, error) {
	st := integratorState{LastSeq: int64(in.lastSeq), Received: in.received}
	if in.dag != nil {
		p, err := in.dag.MarshalState()
		if err != nil {
			return nil, err
		}
		st.Plan = p
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// RestoreState implements durable.Durable.
func (in *Integrator) RestoreState(b []byte) error {
	var st integratorState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if len(st.Plan) > 0 {
		if in.dag == nil {
			return fmt.Errorf("integrator: state carries a maintenance plan but shared plans are off")
		}
		if err := in.dag.RestoreState(st.Plan); err != nil {
			return err
		}
	}
	in.lastSeq = msg.UpdateID(st.LastSeq)
	in.received = st.Received
	return nil
}
