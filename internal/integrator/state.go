package integrator

import (
	"bytes"
	"encoding/gob"

	"whips/internal/msg"
)

// integratorState is the durable form of an Integrator. The matcher and
// routing tables are pure functions of the view definitions, rebuilt from
// configuration on restart; only the FIFO watermark and the received
// count are state.
type integratorState struct {
	LastSeq  int64
	Received int64
}

// MarshalState implements durable.Durable.
func (in *Integrator) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(integratorState{LastSeq: int64(in.lastSeq), Received: in.received})
	return buf.Bytes(), err
}

// RestoreState implements durable.Durable.
func (in *Integrator) RestoreState(b []byte) error {
	var st integratorState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	in.lastSeq = msg.UpdateID(st.LastSeq)
	in.received = st.Received
	return nil
}
