// Package integrator implements the integrator process (paper §3.2): it
// receives numbered source updates, determines the relevant view set RELᵢ
// for each, forwards RELᵢ to the merge process(es), and forwards a copy of
// the update to each relevant view manager.
package integrator

import (
	"fmt"
	"sort"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/plan"
	"whips/internal/relation"
)

// ViewInfo describes one registered view from the integrator's perspective.
type ViewInfo struct {
	ID         msg.ViewID
	Expr       expr.Expr
	MergeGroup int // which merge process coordinates this view (§6.1)
}

// Integrator is the update router. It implements msg.Node.
type Integrator struct {
	matcher *Matcher
	// sendEmptyRel, when set, forwards RELᵢ even when no view is relevant,
	// so the warehouse state sequence gets an (empty) transaction for every
	// source state. Default is to drop them.
	sendEmptyRel bool
	// relayRel enables §3.2's alternative: RELᵢ rides with one designated
	// view manager's update copy instead of going to the merge process
	// directly, saving one message per update per group.
	relayRel bool
	// dag, when set, is the shared maintenance-plan DAG (internal/plan):
	// the integrator hands each update to it once, and attaches the
	// resulting per-view deltas to the manager copies it routes.
	dag      *plan.DAG
	groups   map[int]bool
	lastSeq  msg.UpdateID
	received int64

	obsp     *obs.Pipeline
	updates  *obs.Counter
	emptyRel *obs.Counter
	fanout   *obs.Histogram
}

// Option configures the integrator.
type Option func(*opts)

type opts struct {
	filter       bool
	sendEmptyRel bool
	relayRel     bool
	dag          *plan.DAG
	obsp         *obs.Pipeline
}

// WithRelevanceFilter enables per-tuple irrelevance filtering (paper's
// reference [7] optimization).
func WithRelevanceFilter() Option { return func(o *opts) { o.filter = true } }

// WithEmptyRelevantSets forwards empty RELᵢ rows instead of dropping them.
func WithEmptyRelevantSets() Option { return func(o *opts) { o.sendEmptyRel = true } }

// WithRelayedRelevantSets enables §3.2's alternative REL routing.
func WithRelayedRelevantSets() Option { return func(o *opts) { o.relayRel = true } }

// WithObs attaches the observability pipeline.
func WithObs(p *obs.Pipeline) Option { return func(o *opts) { o.obsp = p } }

// WithSharedPlans routes every update through the shared maintenance-plan
// DAG: common subexpressions are evaluated once and each relevant view
// manager's update copy carries its precomputed ViewDelta. The integrator
// owns the DAG's mutable state from then on.
func WithSharedPlans(d *plan.DAG) Option { return func(o *opts) { o.dag = d } }

// New builds an integrator for the given views.
func New(views []ViewInfo, options ...Option) *Integrator {
	var o opts
	for _, apply := range options {
		apply(&o)
	}
	in := &Integrator{
		matcher:      NewMatcher(views, o.filter),
		sendEmptyRel: o.sendEmptyRel,
		relayRel:     o.relayRel,
		dag:          o.dag,
		groups:       make(map[int]bool),
	}
	for _, v := range views {
		in.groups[v.MergeGroup] = true
	}
	if o.obsp != nil {
		in.obsp = o.obsp
		r := o.obsp.Reg()
		in.updates = r.Counter("integrator_updates_total")
		in.emptyRel = r.Counter("integrator_empty_rel_total")
		in.fanout = r.Histogram("integrator_fanout", obs.SizeBuckets())
	}
	return in
}

// Matcher exposes the integrator's relevance logic.
func (in *Integrator) Matcher() *Matcher { return in.matcher }

// ID implements msg.Node.
func (in *Integrator) ID() string { return msg.NodeIntegrator }

// Received returns how many updates the integrator has processed.
func (in *Integrator) Received() int64 { return in.received }

// Handle implements msg.Node.
func (in *Integrator) Handle(m any, now int64) []msg.Outbound {
	u, ok := m.(msg.Update)
	if !ok {
		return nil
	}
	// §3.2 step 1: updates are numbered by arrival order. Our cluster
	// already stamps commit order and the channel is FIFO, so arrival order
	// must agree; a violation means the transport broke its contract.
	if u.Seq <= in.lastSeq {
		panic(fmt.Sprintf("integrator: update %d arrived after %d — FIFO transport violated", u.Seq, in.lastSeq))
	}
	in.lastSeq = u.Seq
	in.received++

	// Shared-plans mode: advance the DAG through this update exactly once
	// — even when every view is filtered out, the base replicas and node
	// contents must track the source state. The resulting per-view deltas
	// ride on the manager copies routed below. A DAG failure is as fatal
	// as a FIFO violation: the plan state can no longer be trusted.
	var viewDeltas map[msg.ViewID]*relation.Delta
	if in.dag != nil {
		var err error
		viewDeltas, err = in.dag.Apply(u)
		if err != nil {
			panic(fmt.Sprintf("integrator: shared maintenance plan: %v", err))
		}
	}

	// §3.2 step 2: determine RELᵢ, with optional irrelevance filtering.
	relevant := in.matcher.Match(u)
	ids := make([]msg.ViewID, 0, len(relevant))
	for id := range relevant {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	in.updates.Inc()
	in.fanout.Observe(int64(len(ids)))
	if len(ids) == 0 {
		in.emptyRel.Inc()
	}
	// Advance the causal context one hop: the integrator's own events and
	// everything it forwards are one process hop past the source commit.
	// Nil when the committing cluster had tracing off.
	fwd := u.Trace.Next(now)
	if in.obsp.Tracing() {
		views := make([]string, len(ids))
		for i, id := range ids {
			views[i] = string(id)
		}
		in.obsp.Trace(obs.Event{
			TS: now, Node: in.ID(), Stage: obs.StageRoute,
			Seq: int64(u.Seq), Views: views,
		}.Ctx(fwd))
	}

	// §3.2 step 3: send RELᵢ to each merge process coordinating a relevant
	// view, restricted to that group's views.
	byGroup := make(map[int][]msg.ViewID)
	for _, id := range ids {
		g := in.matcher.GroupOf(id)
		byGroup[g] = append(byGroup[g], id)
	}
	var out []msg.Outbound
	// Relay mode needs gap-free REL numbering at every merge process (the
	// frontier guard depends on it), so groups with no relevant view get
	// an empty REL directly.
	if in.relayRel {
		for g := range in.groups {
			if _, ok := byGroup[g]; !ok {
				out = append(out, msg.Send(msg.NodeMerge(g), msg.RelevantSet{Seq: u.Seq, CommitAt: u.CommitAt, Trace: fwd}))
			}
		}
	}
	if len(byGroup) == 0 {
		if in.sendEmptyRel && !in.relayRel {
			for g := range in.groups {
				out = append(out, msg.Send(msg.NodeMerge(g), msg.RelevantSet{Seq: u.Seq, CommitAt: u.CommitAt, Trace: fwd}))
			}
		}
		sortOutbound(out)
		return out
	}
	// carrier[v] holds the group REL that view v's update copy relays
	// (§3.2 alternative); the designated carrier is the group's first
	// relevant view.
	carrier := make(map[msg.ViewID]*msg.RelevantSet)
	for g, views := range byGroup {
		rel := msg.RelevantSet{Seq: u.Seq, Views: views, CommitAt: u.CommitAt, Trace: fwd}
		if in.relayRel {
			rel := rel
			carrier[views[0]] = &rel
			continue
		}
		out = append(out, msg.Send(msg.NodeMerge(g), rel))
	}
	// §3.2 step 4: send each relevant view manager its (filtered) copy.
	for _, id := range ids {
		out = append(out, msg.Send(msg.NodeViewManager(id), msg.Update{
			Seq:       u.Seq,
			Source:    u.Source,
			Writes:    relevant[id],
			CommitAt:  u.CommitAt,
			Rel:       carrier[id],
			Trace:     fwd,
			ViewDelta: viewDeltas[id],
		}))
	}
	sortOutbound(out)
	return out
}

// sortOutbound orders messages deterministically by destination, keeping
// per-destination order stable. Determinism matters for the simulator and
// for golden traces; correctness never depends on cross-channel order.
func sortOutbound(out []msg.Outbound) {
	sort.SliceStable(out, func(i, j int) bool { return out[i].To < out[j].To })
}
