package integrator

import (
	"whips/internal/expr"
	"whips/internal/msg"
)

// Matcher is the pure relevance logic of the integrator (§3.2 step 2),
// reusable by drivers that need to predict which views an update reaches
// (e.g. to compute per-view freshness targets). It is immutable after
// construction and safe for concurrent use.
type Matcher struct {
	views      []ViewInfo
	byRelation map[string][]int
	filter     bool
}

// NewMatcher builds a matcher over the given views.
func NewMatcher(views []ViewInfo, filter bool) *Matcher {
	m := &Matcher{
		views:      append([]ViewInfo(nil), views...),
		byRelation: make(map[string][]int),
		filter:     filter,
	}
	for idx, v := range m.views {
		for _, rel := range v.Expr.BaseRelations() {
			m.byRelation[rel] = append(m.byRelation[rel], idx)
		}
	}
	return m
}

// Match returns, for each relevant view, the update's writes filtered down
// to the possibly-relevant tuples. Views for which every tuple is provably
// irrelevant are absent.
func (m *Matcher) Match(u msg.Update) map[msg.ViewID][]msg.Write {
	out := make(map[msg.ViewID][]msg.Write)
	for _, w := range u.Writes {
		for _, vi := range m.byRelation[w.Relation] {
			v := m.views[vi]
			d := w.Delta
			if m.filter {
				d = expr.RelevantDelta(v.Expr, w.Relation, d)
				if d.Empty() {
					continue
				}
			}
			out[v.ID] = append(out[v.ID], msg.Write{Relation: w.Relation, Delta: d})
		}
	}
	return out
}

// Views returns the registered views.
func (m *Matcher) Views() []ViewInfo { return m.views }

// GroupOf returns the merge group of a view (0 if unknown).
func (m *Matcher) GroupOf(id msg.ViewID) int {
	for _, v := range m.views {
		if v.ID == id {
			return v.MergeGroup
		}
	}
	return 0
}
