// equivalence_test.go is the shared-plans correctness battery: explored
// schedules — including crash/stall fault schedules — must drive the
// warehouse through a fingerprint-identical state sequence whether views
// are maintained per-view (baseline) or through the shared
// maintenance-plan DAG. The DAG changes how action-list deltas are
// computed, never what they contain, so every epoch of every schedule must
// hash equal across the two modes.
package sched

import (
	"fmt"
	"testing"

	"whips/internal/repl"
	"whips/internal/system"
	"whips/internal/viewmgr"
)

// epochFingerprints hashes every published warehouse epoch of a quiesced
// system with the replication judge's canonical fingerprint.
func epochFingerprints(sys *system.System) []string {
	head := sys.Warehouse.Snapshot().Epoch
	out := make([]string, 0, head+1)
	for i := int64(0); i <= head; i++ {
		snap, err := sys.Warehouse.SnapshotAt(int(i))
		if err != nil {
			panic(fmt.Sprintf("equivalence: snapshot at %d: %v", i, err))
		}
		out = append(out, repl.Fingerprint(snap))
	}
	return out
}

// exploreFingerprints runs the given fleet configuration over a fixed
// schedule budget, capturing each schedule's terminal epoch-fingerprint
// sequence via the Inspect hook.
func exploreFingerprints(t *testing.T, cfg FleetConfig, opts Options) [][]string {
	t.Helper()
	var logs [][]string
	cfg.Inspect = func(sys *system.System) {
		logs = append(logs, epochFingerprints(sys))
	}
	res, err := Explore(Fleet(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%v", res.Violation)
	}
	if len(logs) != res.Schedules {
		t.Fatalf("inspected %d schedules of %d", len(logs), res.Schedules)
	}
	return logs
}

// requireIdentical compares per-schedule fingerprint sequences from the
// two modes and reports the first diverging schedule and epoch.
func requireIdentical(t *testing.T, base, shared [][]string) {
	t.Helper()
	if len(base) != len(shared) {
		t.Fatalf("schedule counts differ: baseline %d, shared %d", len(base), len(shared))
	}
	for s := range base {
		if len(base[s]) != len(shared[s]) {
			t.Fatalf("schedule %d: epoch counts differ: baseline %d, shared %d",
				s, len(base[s]), len(shared[s]))
		}
		for e := range base[s] {
			if base[s][e] != shared[s][e] {
				t.Fatalf("schedule %d epoch %d: warehouse states diverge:\n baseline %s\n shared   %s",
					s, e, base[s][e], shared[s][e])
			}
		}
	}
}

// TestSharedPlansEquivalence runs seeded random schedules of both theorem
// fleets with and without the shared DAG. The schedules consume identical
// randomness in both modes (the DAG adds no messages — deltas ride the
// existing update fan-out), so schedule s is the same interleaving in both
// runs and the warehouse state sequences must match epoch for epoch.
func TestSharedPlansEquivalence(t *testing.T) {
	for _, algo := range []string{"spa", "pa"} {
		t.Run(algo, func(t *testing.T) {
			cfg := FleetConfig{Algo: algo, Updates: 5, Seed: 3}
			opts := Options{Seed: 100, Seeds: scale(t, 40)}
			base := exploreFingerprints(t, cfg, opts)
			cfg.SharedPlans = true
			shared := exploreFingerprints(t, cfg, opts)
			requireIdentical(t, base, shared)
		})
	}
}

// TestSharedPlansEquivalenceUnderFaults repeats the comparison with
// crash/restart and stall faults drawn per step, in both recovery models:
// input-log replay and durable state snapshots (which carry the restored
// managers' shared-mode configuration through Rebuild).
func TestSharedPlansEquivalenceUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name         string
		stateRestore bool
	}{
		{"replay", false},
		{"state-restore", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := FleetConfig{Algo: "pa", Updates: 4, Seed: 9, Crashable: true, StateRestore: tc.stateRestore}
			opts := Options{Seed: 500, Seeds: scale(t, 30), FaultRate: 0.05}
			base := exploreFingerprints(t, cfg, opts)
			cfg.SharedPlans = true
			shared := exploreFingerprints(t, cfg, opts)
			requireIdentical(t, base, shared)
		})
	}
}

// TestSharedPlansDFSEquivalence drives systematic enumeration: every
// DFS-enumerated interleaving (same lexicographic order in both modes)
// must land on identical state sequences.
func TestSharedPlansDFSEquivalence(t *testing.T) {
	cfg := FleetConfig{Algo: "spa", Updates: 2, Seed: 11}
	opts := Options{DFS: true, MaxSchedules: scale(t, 400)}
	base := exploreFingerprints(t, cfg, opts)
	cfg.SharedPlans = true
	shared := exploreFingerprints(t, cfg, opts)
	requireIdentical(t, base, shared)
}

// TestSharedPlansPooledWorkers runs shared-DAG fleets with a view-manager
// worker pool attached; under -race this is the data-race check for the
// DAG fan-out path (managers apply precomputed deltas inside pool workers
// while the integrator owns the DAG).
func TestSharedPlansPooledWorkers(t *testing.T) {
	pool := viewmgr.NewPool(4)
	defer pool.Close()
	cfg := FleetConfig{Algo: "pa", Updates: 5, Seed: 3, Pool: pool, SharedPlans: true}
	opts := Options{Seed: 200, Seeds: scale(t, 30)}
	res, err := Explore(Fleet(cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%v", res.Violation)
	}
}
