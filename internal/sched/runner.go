package sched

import (
	"fmt"
	"sort"

	"whips/internal/msg"
)

// pending is one undelivered message.
type pending struct {
	from, to string
	m        any
}

// edgeQ is one FIFO edge queue.
type edgeQ struct {
	key   string
	to    string
	queue []pending
	// stalledUntil pauses the edge (delay-spike fault) until the step.
	stalledUntil int
	// flipped marks the FlipEdge hook as spent.
	flipped bool
}

// delivered records one delivery into a node's input log, for crash
// replay. now is the logical time the node saw.
type delivered struct {
	m   any
	now int64
}

// runner executes one schedule.
type runner struct {
	h     *Harness
	opts  Options
	nodes map[string]msg.Node

	edges   map[string]*edgeQ
	edgeIDs []string // sorted keys of edges that ever existed
	timerN  int

	crashed      map[string]bool
	stalledUntil map[string]int
	history      map[string][]delivered
	snapshots    map[string][]byte // StateRestore: state captured at crash

	chooser   func(nChoices int) int
	faults    []Fault // planned faults, fired by step
	faultDraw func(*runner) []Fault

	step           int
	choices        []int
	branching      []int
	recordedFaults []Fault
	keepTrace      bool
	trace          []string
}

func newRunner(h *Harness, opts Options) *runner {
	r := &runner{
		h:            h,
		opts:         opts,
		nodes:        make(map[string]msg.Node, len(h.Nodes)),
		edges:        make(map[string]*edgeQ),
		crashed:      make(map[string]bool),
		stalledUntil: make(map[string]int),
		history:      make(map[string][]delivered),
		snapshots:    make(map[string][]byte),
	}
	for _, n := range h.Nodes {
		if _, dup := r.nodes[n.ID()]; dup {
			panic(fmt.Sprintf("sched: duplicate node id %q", n.ID()))
		}
		r.nodes[n.ID()] = n
	}
	for _, o := range h.Inject {
		r.enqueue("driver", o.To, o.Msg)
	}
	return r
}

func (r *runner) nodeIDs() []string {
	ids := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// activeEdges returns the sorted keys of edges with pending messages.
func (r *runner) activeEdges() []string {
	var keys []string
	for _, k := range r.edgeIDs {
		if len(r.edges[k].queue) > 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

func (r *runner) enqueue(from, to string, m any) {
	key := from + "→" + to
	e := r.edges[key]
	if e == nil {
		e = &edgeQ{key: key, to: to}
		r.edges[key] = e
		r.edgeIDs = insertSorted(r.edgeIDs, key)
	}
	e.queue = append(e.queue, pending{from: from, to: to, m: m})
}

// enqueueTimer models Outbound.Delay > 0: in the runtime a timer bypasses
// every edge, so here it becomes its own singleton edge, deliverable at
// any later point.
func (r *runner) enqueueTimer(from, to string, m any) {
	r.timerN++
	key := fmt.Sprintf("timer#%04d:%s", r.timerN, to)
	e := &edgeQ{key: key, to: to}
	e.queue = append(e.queue, pending{from: from, to: to, m: m})
	r.edges[key] = e
	r.edgeIDs = insertSorted(r.edgeIDs, key)
}

func insertSorted(s []string, k string) []string {
	n := sort.SearchStrings(s, k)
	s = append(s, "")
	copy(s[n+1:], s[n:])
	s[n] = k
	return s
}

// enabled returns the sorted keys of edges whose head message can be
// delivered now: non-empty queue, target alive and not stalled, edge not
// stalled.
func (r *runner) enabled() []string {
	var keys []string
	for _, k := range r.edgeIDs {
		e := r.edges[k]
		if len(e.queue) == 0 || e.stalledUntil > r.step {
			continue
		}
		if r.crashed[e.to] || r.stalledUntil[e.to] > r.step {
			continue
		}
		keys = append(keys, k)
	}
	return keys
}

// blocked reports whether undelivered messages exist at all (used to
// distinguish quiescence from a fault-induced block).
func (r *runner) pendingCount() int {
	n := 0
	for _, e := range r.edges {
		n += len(e.queue)
	}
	return n
}

// applyFaults fires every planned fault scheduled at or before the current
// step, then draws random faults.
func (r *runner) applyFaults() error {
	fire := func(f Fault) error {
		switch f.Kind {
		case Crash:
			if r.crashed[f.Node] {
				return nil
			}
			if r.h.Rebuild[f.Node] == nil {
				return fmt.Errorf("sched: crash of %q but no Rebuild registered", f.Node)
			}
			delete(r.snapshots, f.Node)
			if r.h.StateRestore {
				// A crash loses nothing durable: the WAL holds every
				// delivered input, so the state at the crash instant is
				// exactly what recovery reconstructs. Capture it here; a
				// failed capture (busy node) falls back to input replay.
				if sn, ok := r.nodes[f.Node].(StateNode); ok {
					if b, err := sn.MarshalState(); err == nil {
						r.snapshots[f.Node] = b
					} else {
						r.tracef("@%d crash %s: state capture failed (%v); will replay input log", r.step, f.Node, err)
					}
				}
			}
			r.crashed[f.Node] = true
			r.tracef("@%d crash %s", r.step, f.Node)
		case Restart:
			if !r.crashed[f.Node] {
				return nil
			}
			node := r.h.Rebuild[f.Node]()
			if node.ID() != f.Node {
				return fmt.Errorf("sched: Rebuild(%q) returned node %q", f.Node, node.ID())
			}
			if b, ok := r.snapshots[f.Node]; ok {
				// Checkpoint restore: rebuild and load the captured state.
				sn, ok2 := node.(StateNode)
				if !ok2 {
					return fmt.Errorf("sched: Rebuild(%q) node does not implement StateNode", f.Node)
				}
				if err := sn.RestoreState(b); err != nil {
					return fmt.Errorf("sched: restore %q: %v", f.Node, err)
				}
				delete(r.snapshots, f.Node)
				r.tracef("@%d restart %s (restored checkpoint state)", r.step, f.Node)
			} else {
				// Input replay: the recovered process re-reads its durable
				// input log; outputs are suppressed (already routed live).
				for _, d := range r.history[f.Node] {
					node.Handle(d.m, d.now)
				}
				r.tracef("@%d restart %s (replayed %d inputs)", r.step, f.Node, len(r.history[f.Node]))
			}
			r.nodes[f.Node] = node
			r.crashed[f.Node] = false
		case Stall:
			until := f.Step + f.Dur
			if until > r.stalledUntil[f.Node] {
				r.stalledUntil[f.Node] = until
			}
			r.tracef("@%d stall %s until %d", r.step, f.Node, until)
		case EdgeStall:
			if e := r.edges[f.Edge]; e != nil {
				until := f.Step + f.Dur
				if until > e.stalledUntil {
					e.stalledUntil = until
				}
				r.tracef("@%d edge-stall %s until %d", r.step, f.Edge, f.Step+f.Dur)
			}
		}
		r.recordedFaults = append(r.recordedFaults, Fault{
			Step: r.step, Kind: f.Kind, Node: f.Node, Edge: f.Edge, Dur: f.Dur,
		})
		return nil
	}
	rest := r.faults[:0]
	for _, f := range r.faults {
		if f.Step <= r.step {
			if err := fire(f); err != nil {
				return err
			}
			continue
		}
		rest = append(rest, f)
	}
	r.faults = rest
	if r.faultDraw != nil {
		for _, f := range r.faultDraw(r) {
			if f.Step <= r.step {
				if err := fire(f); err != nil {
					return err
				}
			} else {
				r.faults = append(r.faults, f)
			}
		}
	}
	return nil
}

// forceEarliestRecovery fires the earliest pending Restart/stall expiry
// when every edge is blocked by faults, so fault plans cannot deadlock the
// run. It reports whether anything was unblocked.
func (r *runner) forceEarliestRecovery() bool {
	best := -1
	for _, f := range r.faults {
		if f.Kind == Restart && (best < 0 || f.Step < best) {
			best = f.Step
		}
	}
	for _, until := range r.stalledUntil {
		if until > r.step && (best < 0 || until < best) {
			best = until
		}
	}
	for _, e := range r.edges {
		if len(e.queue) > 0 && e.stalledUntil > r.step && (best < 0 || e.stalledUntil < best) {
			best = e.stalledUntil
		}
	}
	if best < 0 {
		return false
	}
	// Advance logical time to the recovery point.
	if best > r.step {
		r.step = best
	}
	return true
}

func (r *runner) tracef(format string, args ...any) {
	if r.keepTrace {
		r.trace = append(r.trace, fmt.Sprintf(format, args...))
	}
}

// run executes the schedule to quiescence and returns the first invariant
// violation (or nil). Panics inside node handlers — the merge process
// asserts protocol invariants with panics — are converted to violations.
func (r *runner) run() (verr error) {
	defer func() {
		if p := recover(); p != nil {
			verr = fmt.Errorf("node panic at step %d: %v", r.step, p)
		}
	}()
	for ; r.step < r.opts.maxSteps(); r.step++ {
		if err := r.applyFaults(); err != nil {
			return err
		}
		enabled := r.enabled()
		if len(enabled) == 0 {
			if r.pendingCount() == 0 && len(r.faults) == 0 {
				break // quiescent
			}
			if r.forceEarliestRecovery() {
				r.step-- // re-enter the loop at the advanced step
				continue
			}
			if r.pendingCount() == 0 {
				break // only unreachable faults remain
			}
			return fmt.Errorf("deadlock at step %d: %d messages pending, no enabled edge", r.step, r.pendingCount())
		}
		c := r.chooser(len(enabled))
		if c < 0 || c >= len(enabled) {
			c = 0
		}
		r.choices = append(r.choices, c)
		r.branching = append(r.branching, len(enabled))
		e := r.edges[enabled[c]]
		p := r.pop(e)
		node := r.nodes[p.to]
		if node == nil {
			return fmt.Errorf("message from %q to unknown node %q: %T", p.from, p.to, p.m)
		}
		now := int64(r.step + 1)
		r.tracef("@%d %s→%s %s", r.step, p.from, p.to, renderMsg(p.m))
		r.history[p.to] = append(r.history[p.to], delivered{m: p.m, now: now})
		for _, o := range node.Handle(p.m, now) {
			if o.Delay > 0 {
				r.enqueueTimer(p.to, o.To, o.Msg)
				continue
			}
			r.enqueue(p.to, o.To, o.Msg)
		}
	}
	if r.pendingCount() > 0 {
		return fmt.Errorf("schedule did not quiesce within %d steps (%d messages pending)",
			r.opts.maxSteps(), r.pendingCount())
	}
	if r.h.Check != nil {
		if err := r.h.Check(); err != nil {
			return err
		}
	}
	return nil
}

// pop removes the edge's head — or, once, its second message when the
// FlipEdge ordering-bug hook targets this edge and two messages are
// queued.
func (r *runner) pop(e *edgeQ) pending {
	if r.opts.FlipEdge == e.key && !e.flipped && len(e.queue) >= 2 {
		e.flipped = true
		p := e.queue[1]
		e.queue = append(e.queue[:1], e.queue[2:]...)
		r.tracef("@%d FLIP on %s: delivering out of order", r.step, e.key)
		return p
	}
	p := e.queue[0]
	e.queue = e.queue[1:]
	return p
}

// renderMsg renders a message compactly for schedule traces.
func renderMsg(m any) string {
	switch t := m.(type) {
	case msg.Update:
		return fmt.Sprintf("U%d", t.Seq)
	case msg.RelevantSet:
		return fmt.Sprintf("REL%d%s", t.Seq, msg.ViewList(t.Views))
	case msg.ActionList:
		return t.String()
	case msg.SubmitTxn:
		return fmt.Sprintf("WT%d rows=%v", t.Txn.ID, t.Txn.Rows)
	case msg.CommitAck:
		return fmt.Sprintf("ack(WT%d)", t.ID)
	case msg.ExecuteTxn:
		return fmt.Sprintf("exec@%s", t.Source)
	case msg.StageDelta:
		return fmt.Sprintf("stage(%s,%d)", t.View, t.Upto)
	default:
		return fmt.Sprintf("%T", m)
	}
}
