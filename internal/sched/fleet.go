// fleet.go assembles explorable harnesses for the paper's two theorem
// fleets — complete managers under SPA (Thm 4.1) and batching managers
// under PA (Thm 5.1) — with the full invariant check battery from DESIGN.md
// §5 wired into Harness.Check.
package sched

import (
	"fmt"
	"sort"

	"whips/internal/consistency"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/system"
	"whips/internal/viewmgr"
	"whips/internal/warehouse"
	"whips/internal/workload"
)

// FleetConfig parameterizes a paper-schema fleet.
type FleetConfig struct {
	// Algo selects the theorem under test: "spa" (complete managers,
	// complete MVC required) or "pa" (batching managers, strong MVC
	// required).
	Algo string
	// Updates is the number of source transactions to inject.
	Updates int
	// Seed drives the workload generator. Schedule nondeterminism has its
	// own seed (Options.Seed); this one fixes the data.
	Seed int64
	// Crashable registers Rebuild hooks for the view managers and the
	// merge process, enabling crash/restart faults.
	Crashable bool
	// StateRestore recovers crashed nodes from checkpointed state
	// (MarshalState at crash, RestoreState on restart) instead of input-log
	// replay — the durable-snapshot recovery model. Requires Crashable.
	StateRestore bool
	// Pool shares a view-manager worker pool across fleets, so the
	// explorer can exercise the parallel delta path under every schedule.
	// The pool stays unbound (Map mode only): Handle still returns each
	// manager's finished work synchronously, so schedules remain
	// deterministic and replayable. The caller owns and closes it.
	Pool *viewmgr.Pool
	// Obs attaches an observability pipeline to the fleet's processes.
	// Rebuilt (post-crash) nodes share the same pipeline, so counters
	// accumulate across incarnations.
	Obs *obs.Pipeline
	// Replicate attaches an in-process read replica to each fleet, so
	// explored fault schedules produce the same repl_pub/repl_apply span
	// chains as live replicated runs (and the quiescence check verifies the
	// replica converged to the warehouse head).
	Replicate bool
	// SharedPlans maintains the fleet's views through the shared
	// maintenance-plan DAG (internal/plan) instead of per-view trees, so
	// explored schedules judge the DAG path against the same invariant
	// battery as the baseline.
	SharedPlans bool
	// SelfMaintain runs the fleet's complete managers as SelfMaintaining
	// (auxiliary-relation maintenance, zero source queries on the covered
	// path), so explored schedules judge self-maintenance against the same
	// invariant battery — and, in the equivalence tests, the same
	// fingerprints — as the replica-based baseline. spa only.
	SelfMaintain bool
	// MaxAuxRows bounds the self-maintaining managers' auxiliaries,
	// forcing the degraded/repair fallback path onto explored schedules.
	MaxAuxRows int
	// Inspect, when set, runs at the end of every schedule's quiescence
	// check after all invariants passed — equivalence tests use it to
	// fingerprint the terminal warehouse state sequence.
	Inspect func(*system.System)
}

// Fleet returns a Factory building fresh paper-schema fleets.
func Fleet(cfg FleetConfig) Factory {
	return func() (*Harness, error) {
		return buildFleet(cfg)
	}
}

func buildFleet(cfg FleetConfig) (*Harness, error) {
	var kind system.ManagerKind
	var wantLevel msg.Level
	switch cfg.Algo {
	case "spa":
		kind = system.Complete
		wantLevel = msg.Complete
	case "pa":
		kind = system.Batching
		wantLevel = msg.Strong
	default:
		return nil, fmt.Errorf("sched: unknown fleet algo %q (use spa or pa)", cfg.Algo)
	}
	views := workload.PaperViews(kind)
	if cfg.Algo == "pa" {
		// Any positive compute cost makes the manager "busy", so updates
		// arriving meanwhile batch into one intertwined action list — the
		// §5 scenario. The explorer schedules the completion timer freely,
		// so batch boundaries themselves are explored.
		for i := range views {
			views[i].ComputeDelay = func(n int) int64 { return int64(n) }
		}
	}
	if cfg.SelfMaintain && cfg.Algo != "spa" {
		return nil, fmt.Errorf("sched: self-maintenance applies to the spa fleet only")
	}
	sys, err := system.Build(system.Config{
		Sources:      workload.PaperSources(),
		Views:        views,
		Commit:       system.Sequential,
		LogStates:    true,
		Pool:         cfg.Pool,
		Obs:          cfg.Obs,
		Replicate:    cfg.Replicate,
		SharedPlans:  cfg.SharedPlans,
		SelfMaintain: cfg.SelfMaintain,
		MaxAuxRows:   cfg.MaxAuxRows,
	})
	if err != nil {
		return nil, err
	}

	n := cfg.Updates
	if n <= 0 {
		n = 4
	}
	gen := workload.NewGenerator(cfg.Seed, workload.PaperSources())
	inject := make([]msg.Outbound, 0, n)
	for i := 0; i < n; i++ {
		src, writes := gen.Txn()
		inject = append(inject, msg.Send(msg.NodeCluster, msg.ExecuteTxn{Source: src, Writes: writes}))
	}

	// live tracks the current incarnation of each crash-restartable
	// process, so the quiescence check inspects the rebuilt instance
	// rather than the pre-crash one.
	live := &liveNodes{merge: sys.Merges[0]}
	h := &Harness{
		Nodes:        sys.Nodes(),
		Inject:       inject,
		Check:        fleetCheck(cfg.Algo, wantLevel, sys, live, cfg.Inspect),
		StateRestore: cfg.StateRestore,
	}
	if cfg.Crashable {
		h.Rebuild = map[string]func() msg.Node{}
		initDB := sys.Cluster.DatabaseAt(0)
		for _, v := range views {
			v := v
			mc := viewmgr.Config{
				View:         v.ID,
				Expr:         v.Expr,
				Merge:        msg.NodeMerge(0),
				ComputeDelay: v.ComputeDelay,
				Pool:         cfg.Pool,
				Obs:          cfg.Obs,
				SharedDeltas: cfg.SharedPlans,
				MaxAuxRows:   cfg.MaxAuxRows,
			}
			h.Rebuild[msg.NodeViewManager(v.ID)] = func() msg.Node {
				var m viewmgr.Manager
				var err error
				switch {
				case cfg.Algo == "spa" && cfg.SelfMaintain:
					m, err = viewmgr.NewSelfMaintaining(mc, initDB)
				case cfg.Algo == "spa":
					m, err = viewmgr.NewComplete(mc, initDB)
				default:
					m, err = viewmgr.NewBatching(mc, initDB)
				}
				if err != nil {
					panic(fmt.Sprintf("sched: rebuilding manager %s: %v", v.ID, err))
				}
				return m
			}
		}
		algo := sys.Algorithm
		h.Rebuild[msg.NodeMerge(0)] = func() msg.Node {
			var mopts []merge.Option
			if cfg.Obs != nil {
				mopts = append(mopts, merge.WithObs(cfg.Obs))
			}
			m := merge.New(0, algo, merge.NewSequential(msg.NodeMerge(0), 0), mopts...)
			live.merge = m
			return m
		}
	}
	return h, nil
}

// liveNodes tracks current process incarnations across crash/restart.
type liveNodes struct {
	merge *merge.Merge
}

// fleetCheck is the terminal-trace invariant battery: the §2 consistency
// level required by the fleet's theorem, plus the §5 structural invariants
// — column order, atomic VUT-row commit, purge safety, and promptness.
func fleetCheck(algo string, wantLevel msg.Level, sys *system.System, live *liveNodes, inspect func(*system.System)) func() error {
	return func() error {
		log := sys.Warehouse.Log()
		rep, err := consistency.Check(sys.Cluster, sys.Views, log)
		if err != nil {
			return err
		}
		switch wantLevel {
		case msg.Complete:
			if !rep.Complete {
				return fmt.Errorf("SPA fleet not complete (Thm 4.1): %s", rep.Violation)
			}
		case msg.Strong:
			if !rep.Strong {
				return fmt.Errorf("PA fleet not strongly consistent (Thm 5.1): %s", rep.Violation)
			}
		}
		if err := checkColumnOrder(log); err != nil {
			return err
		}
		if err := checkAtomicRows(algo, sys, log); err != nil {
			return err
		}
		// Purge safety + promptness: at quiescence nothing may remain held
		// anywhere — every action list left the VUT, every row was purged,
		// and the warehouse parked nothing.
		st := live.merge.Stats()
		if st.HeldALs != 0 {
			return fmt.Errorf("promptness: %d action lists still held at quiescence", st.HeldALs)
		}
		if st.RowsLive != 0 {
			return fmt.Errorf("purge safety: %d VUT rows live at quiescence", st.RowsLive)
		}
		if p := sys.Warehouse.PendingCount(); p != 0 {
			return fmt.Errorf("promptness: %d transactions parked at the warehouse at quiescence", p)
		}
		// Replica convergence: the synchronously fed in-process replica must
		// serve exactly the warehouse's head epoch at quiescence.
		if sys.Replica != nil {
			if got, want := sys.Replica.Epoch(), sys.Warehouse.Snapshot().Epoch; got != want {
				return fmt.Errorf("replication: replica at epoch %d, warehouse at %d at quiescence", got, want)
			}
		}
		if inspect != nil {
			inspect(sys)
		}
		return nil
	}
}

// checkColumnOrder verifies §5 invariant 5: each view's applied frontier
// is nondecreasing across the warehouse state sequence — action lists from
// one view manager commit in generation order.
func checkColumnOrder(log []warehouse.StateRecord) error {
	last := map[msg.ViewID]msg.UpdateID{}
	for j, rec := range log {
		for v, upto := range rec.Upto {
			if upto < last[v] {
				return fmt.Errorf("column order: view %s regressed from %d to %d at warehouse state %d",
					v, last[v], upto, j)
			}
			last[v] = upto
		}
	}
	return nil
}

// checkAtomicRows verifies §5 invariant 7 (atomic VUT-row commit): every
// committed source update's actions are applied by exactly one warehouse
// transaction — never split, never duplicated, never dropped — and under
// SPA each transaction applies exactly one row (the warehouse visits every
// source state).
func checkAtomicRows(algo string, sys *system.System, log []warehouse.StateRecord) error {
	applied := map[msg.UpdateID]int{}
	for j, rec := range log {
		if j == 0 {
			continue // the initial-state record applies no rows
		}
		if algo == "spa" && len(rec.Rows) != 1 {
			return fmt.Errorf("atomicity: SPA transaction %d applied rows %v (want exactly one row)",
				j, rec.Rows)
		}
		for _, u := range rec.Rows {
			if prev, dup := applied[u]; dup {
				return fmt.Errorf("atomicity: update %d applied by warehouse states %d and %d", u, prev, j)
			}
			applied[u] = j
		}
	}
	var missing []msg.UpdateID
	for _, u := range sys.Cluster.Log() {
		if _, ok := applied[u.Seq]; !ok {
			missing = append(missing, u.Seq)
		}
	}
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		return fmt.Errorf("atomicity: committed updates %v never applied by any warehouse transaction", missing)
	}
	return nil
}
