package sched

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func scale(t *testing.T, full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

// TestDFSSPAComplete enumerates interleavings systematically: every
// explored schedule of a complete-manager fleet must satisfy Thm 4.1 and
// the §5 invariants.
func TestDFSSPAComplete(t *testing.T) {
	res, err := Explore(Fleet(FleetConfig{Algo: "spa", Updates: 2, Seed: 11}), Options{
		DFS:          true,
		MaxSchedules: scale(t, 1500),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("DFS found a violation:\n%v", res.Violation)
	}
	if res.Schedules < 10 {
		t.Fatalf("DFS explored only %d schedules", res.Schedules)
	}
	t.Logf("DFS: %d schedules, %d deliveries", res.Schedules, res.Deliveries)
}

// TestDFSPAStrong does the same for the batching fleet under PA (Thm 5.1).
func TestDFSPAStrong(t *testing.T) {
	res, err := Explore(Fleet(FleetConfig{Algo: "pa", Updates: 2, Seed: 7}), Options{
		DFS:          true,
		MaxSchedules: scale(t, 1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("DFS found a violation:\n%v", res.Violation)
	}
	t.Logf("DFS: %d schedules, %d deliveries", res.Schedules, res.Deliveries)
}

// TestRandomSchedules runs seed-randomized interleavings for both fleets.
func TestRandomSchedules(t *testing.T) {
	for _, algo := range []string{"spa", "pa"} {
		res, err := Explore(Fleet(FleetConfig{Algo: algo, Updates: 5, Seed: 3}), Options{
			Seed:  1000,
			Seeds: scale(t, 300),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: %v", algo, res.Violation)
		}
	}
}

// TestCrashRestartFaults injects crash/restart (with input-log replay),
// node stalls and edge delay spikes; consistency must survive every one.
func TestCrashRestartFaults(t *testing.T) {
	for _, algo := range []string{"spa", "pa"} {
		res, err := Explore(Fleet(FleetConfig{Algo: algo, Updates: 4, Seed: 9, Crashable: true}), Options{
			Seed:      5000,
			Seeds:     scale(t, 200),
			FaultRate: 0.08,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s with faults: %v", algo, res.Violation)
		}
	}
}

// TestStateRestoreTransparent holds checkpoint recovery to the replay
// standard: recovering a crashed node by RestoreState(MarshalState()) must
// be indistinguishable from replaying its delivered-input log. Both modes
// run the same seeds and fault draws; every schedule must satisfy the
// invariant battery, and the two explorations must make delivery-for-
// delivery identical progress (recovery mode consumes no randomness, so
// any divergence means restored state differs from replayed state).
func TestStateRestoreTransparent(t *testing.T) {
	for _, algo := range []string{"spa", "pa"} {
		opts := Options{Seed: 7100, Seeds: scale(t, 150), FaultRate: 0.08}
		replay, err := Explore(Fleet(FleetConfig{Algo: algo, Updates: 4, Seed: 9, Crashable: true}), opts)
		if err != nil {
			t.Fatal(err)
		}
		if replay.Violation != nil {
			t.Fatalf("%s replay mode: %v", algo, replay.Violation)
		}
		restore, err := Explore(Fleet(FleetConfig{Algo: algo, Updates: 4, Seed: 9, Crashable: true, StateRestore: true}), opts)
		if err != nil {
			t.Fatal(err)
		}
		if restore.Violation != nil {
			t.Fatalf("%s state-restore mode: %v", algo, restore.Violation)
		}
		if replay.Schedules != restore.Schedules || replay.Deliveries != restore.Deliveries {
			t.Fatalf("%s: recovery modes diverged: replay %d schedules/%d deliveries, restore %d/%d",
				algo, replay.Schedules, replay.Deliveries, restore.Schedules, restore.Deliveries)
		}
	}
}

// TestStateRestoreExplicitPlan crashes each rebuildable node at a fixed
// point under checkpoint recovery (deterministic DFS, no randomness).
func TestStateRestoreExplicitPlan(t *testing.T) {
	for _, node := range []string{"vm:V1", "vm:V2", "merge:0"} {
		res, err := Explore(Fleet(FleetConfig{Algo: "pa", Updates: 3, Seed: 2, Crashable: true, StateRestore: true}), Options{
			DFS:          true,
			MaxSchedules: scale(t, 200),
			Faults: []Fault{
				{Step: 5, Kind: Crash, Node: node},
				{Step: 12, Kind: Restart, Node: node},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("checkpoint recovery of %s: %v", node, res.Violation)
		}
	}
}

// TestExplicitFaultPlan crashes each rebuildable node at a fixed point of
// a DFS exploration (deterministic plans, no randomness).
func TestExplicitFaultPlan(t *testing.T) {
	for _, node := range []string{"vm:V1", "vm:V2", "merge:0"} {
		res, err := Explore(Fleet(FleetConfig{Algo: "spa", Updates: 3, Seed: 2, Crashable: true}), Options{
			DFS:          true,
			MaxSchedules: scale(t, 300),
			Faults: []Fault{
				{Step: 5, Kind: Crash, Node: node},
				{Step: 12, Kind: Restart, Node: node},
				{Step: 3, Kind: Stall, Node: "warehouse", Dur: 6},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("crash of %s: %v", node, res.Violation)
		}
	}
}

// TestFlipEdgeBugCaught proves the harness catches ordering bugs: a single
// deliberate FIFO violation on a view manager's channel must surface as an
// invariant violation with a replayable seed and a minimized schedule.
func TestFlipEdgeBugCaught(t *testing.T) {
	opts := Options{
		Seed:     42,
		Seeds:    100,
		FlipEdge: "vm:V1→merge:0",
	}
	res, err := Explore(Fleet(FleetConfig{Algo: "spa", Updates: 4, Seed: 1}), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("deliberate FIFO violation was not caught")
	}
	v := res.Violation
	if v.Seed < opts.Seed || v.Seed >= opts.Seed+int64(opts.Seeds) {
		t.Fatalf("violation seed %d outside explored range", v.Seed)
	}
	if len(v.Trace) == 0 || v.Minimized == 0 {
		t.Fatalf("violation carries no minimized schedule: %+v", v)
	}
	if !strings.Contains(v.String(), "replay seed") {
		t.Fatalf("violation report does not name the seed:\n%v", v)
	}
	// Replayability: the recorded decision sequence must reproduce the
	// failure deterministically.
	h, err := Fleet(FleetConfig{Algo: "spa", Updates: 4, Seed: 1})()
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(h, opts)
	choices := v.Choices
	r.chooser = func(n int) int {
		if s := len(r.choices); s < len(choices) {
			if choices[s] < n {
				return choices[s]
			}
			return n - 1
		}
		return 0
	}
	r.faults = v.Faults
	if err := r.run(); err == nil {
		t.Fatal("minimized schedule did not reproduce the violation")
	}
	t.Logf("caught and minimized to %d deliveries:\n%v", v.Minimized, v)
}

// TestSeedDeterminism: identical seeds must produce identical schedules,
// decision by decision — the property every failure report relies on.
func TestSeedDeterminism(t *testing.T) {
	run := func() ([]int, []string) {
		h, err := Fleet(FleetConfig{Algo: "pa", Updates: 3, Seed: 5, Crashable: true})()
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{FaultRate: 0.05}
		r := newRunner(h, opts)
		rng := rand.New(rand.NewSource(777))
		r.chooser = func(n int) int { return rng.Intn(n) }
		r.faultDraw = randomFaults(rng, opts.FaultRate, h)
		r.keepTrace = true
		if err := r.run(); err != nil {
			t.Fatalf("unexpected violation: %v", err)
		}
		return r.choices, r.trace
	}
	c1, t1 := run()
	c2, t2 := run()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("choices diverged:\n%v\n%v", c1, c2)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("traces diverged:\n%v\n%v", t1, t2)
	}
}
