package sched

import (
	"fmt"
	"testing"

	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/relation"
)

// ackFaultWarehouse is a faulty warehouse: for every submitted transaction
// it immediately sends a bogus acknowledgment for a transaction id that was
// never issued (a stale retransmit, as a crash/rebuild or wire duplicate
// can produce), then acknowledges the real id later — twice. A §4.3
// sequential strategy that matches acks against its in-flight id shrugs
// all of that off; one that treats any ack as "the warehouse is free"
// releases the next transaction while the previous one is still
// uncommitted, which this stub observes as outstanding > 1.
type ackFaultWarehouse struct {
	outstanding int
	maxOut      int
	submissions map[msg.TxnID]int
	rowsSeen    map[msg.UpdateID]int
}

// ackDue is the stub's self-scheduled timer carrying the genuine ack; the
// Delay turns it into its own schedule edge, so the explorer interleaves
// it freely with the stale ack and later submissions.
type ackDue struct {
	id   msg.TxnID
	from string
}

func newAckFaultWarehouse() *ackFaultWarehouse {
	return &ackFaultWarehouse{
		submissions: make(map[msg.TxnID]int),
		rowsSeen:    make(map[msg.UpdateID]int),
	}
}

func (w *ackFaultWarehouse) ID() string { return msg.NodeWarehouse }

func (w *ackFaultWarehouse) Handle(in any, now int64) []msg.Outbound {
	switch t := in.(type) {
	case msg.SubmitTxn:
		w.outstanding++
		if w.outstanding > w.maxOut {
			w.maxOut = w.outstanding
		}
		w.submissions[t.Txn.ID]++
		for _, row := range t.Txn.Rows {
			w.rowsSeen[row]++
		}
		return []msg.Outbound{
			// Stale ack for an id that was never issued, racing ahead of
			// the real commit.
			msg.Send(t.From, msg.CommitAck{ID: t.Txn.ID + 997}),
			{To: msg.NodeWarehouse, Msg: ackDue{id: t.Txn.ID, from: t.From}, Delay: 1},
		}
	case ackDue:
		w.outstanding--
		// Genuine ack, duplicated — the second must be dropped too.
		return []msg.Outbound{
			msg.Send(t.from, msg.CommitAck{ID: t.id}),
			msg.Send(t.from, msg.CommitAck{ID: t.id}),
		}
	default:
		return nil
	}
}

// ackFaultFleet wires one merge process against the faulty warehouse and
// feeds it updates relevant to a single view, so ready transactions stream
// out in sequence and the strategy's in-flight discipline carries the
// whole §4.3 ordering guarantee.
func ackFaultFleet(updates int, strat func() merge.Strategy, algo merge.Algorithm) Factory {
	schema := relation.MustSchema("X:int")
	return func() (*Harness, error) {
		wh := newAckFaultWarehouse()
		// live tracks the current merge instance: a crash fault replaces
		// the node via Rebuild, and Check must inspect the replacement.
		live := struct{ m *merge.Merge }{merge.New(0, algo, strat())}
		m := live.m
		var inject []msg.Outbound
		for i := 1; i <= updates; i++ {
			seq := msg.UpdateID(i)
			inject = append(inject,
				msg.Send(m.ID(), msg.RelevantSet{Seq: seq, Views: []msg.ViewID{"V1"}}),
				msg.Send(m.ID(), msg.ActionList{
					View:  "V1",
					From:  seq,
					Upto:  seq,
					Delta: relation.InsertDelta(schema, relation.T(i)),
					Level: msg.Complete,
				}),
			)
		}
		return &Harness{
			Nodes: []msg.Node{m, wh},
			Rebuild: map[string]func() msg.Node{
				m.ID(): func() msg.Node {
					live.m = merge.New(0, algo, strat())
					return live.m
				},
			},
			Inject: inject,
			Check: func() error {
				if wh.maxOut > 1 {
					return fmt.Errorf("sequential ordering broken: %d transactions in flight at once (a stale or duplicate ack released the next transaction early)", wh.maxOut)
				}
				if wh.outstanding != 0 {
					return fmt.Errorf("%d transactions never acknowledged", wh.outstanding)
				}
				for id, n := range wh.submissions {
					if n != 1 {
						return fmt.Errorf("transaction %d submitted %d times", id, n)
					}
				}
				for i := 1; i <= updates; i++ {
					if n := wh.rowsSeen[msg.UpdateID(i)]; n != 1 {
						return fmt.Errorf("update %d applied %d times at the warehouse", i, n)
					}
				}
				st := live.m.Stats()
				if st.HeldALs != 0 || st.RowsLive != 0 {
					return fmt.Errorf("merge not drained: %d ALs held, %d rows live", st.HeldALs, st.RowsLive)
				}
				return nil
			},
		}, nil
	}
}

func exploreAckFault(t *testing.T, f Factory) {
	t.Helper()
	// Systematic: every interleaving of stale acks, genuine acks,
	// duplicates, and fresh submissions, up to the schedule budget.
	res, err := Explore(f, Options{DFS: true, MaxSchedules: scale(t, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("DFS:\n%s", res.Violation)
	}
	// Randomized with injected process faults on top: merge crashes with
	// input-log replay regenerate exactly the retransmit storms the
	// in-flight id matching exists to survive.
	res, err = Explore(f, Options{Seed: 7, Seeds: scale(t, 400), FaultRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("random+faults:\n%s", res.Violation)
	}
}

func TestSequentialSurvivesStaleAndDuplicateAcks(t *testing.T) {
	exploreAckFault(t, ackFaultFleet(3, func() merge.Strategy {
		return merge.NewSequential(msg.NodeMerge(0), 0)
	}, merge.SPA))
}

func TestBatchedSurvivesStaleAndDuplicateAcks(t *testing.T) {
	exploreAckFault(t, ackFaultFleet(4, func() merge.Strategy {
		return merge.NewBatched(msg.NodeMerge(0), 0, 2, 0)
	}, merge.SPA))
}
