package sched

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/repl"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

// The promotion-race scenarios live beside the schedule explorer because
// they are the same methodology applied to the replication tree: one seed
// derives the whole schedule — workload values, partition point, kill
// point, reconnect jitter — so a failing race replays exactly, and the
// terminal check is the paper's consistency judge (repl.Fingerprint
// equality of every surviving epoch against the pre-crash primary) plus
// the §12 fence invariant (no stale-term epoch ever applies).

var failoverSchema = relation.MustSchema("X:int")

func failoverViews() map[msg.ViewID]*relation.Relation {
	return map[msg.ViewID]*relation.Relation{
		"V1": relation.New(failoverSchema),
		"V2": relation.FromTuples(failoverSchema, relation.T(0)),
	}
}

func failoverCommit(w *warehouse.Warehouse, id, val int) {
	w.Handle(msg.SubmitTxn{
		Txn: msg.WarehouseTxn{
			ID:   msg.TxnID(id),
			Rows: []msg.UpdateID{msg.UpdateID(id)},
			Writes: []msg.ViewWrite{
				{View: "V1", Upto: msg.UpdateID(id), Delta: relation.InsertDelta(failoverSchema, relation.T(val))},
				{View: "V2", Upto: msg.UpdateID(id), Delta: relation.InsertDelta(failoverSchema, relation.T(-val))},
			},
		},
		From: "merge:0",
	}, int64(id))
}

// raceNode is one failover participant: a replica re-exported as a feed
// (every node is a candidate), plus the follower streaming into it.
type raceNode struct {
	name string
	rep  *warehouse.Replica
	p    *repl.Primary
	f    *repl.Follower
	ln   net.Listener
}

func newRaceNode(t *testing.T, name, upstream string, seed int64) *raceNode {
	t.Helper()
	n := &raceNode{name: name}
	n.rep = warehouse.NewReplica(warehouse.WithReplicaFeed(64))
	n.p = repl.NewPrimary(repl.PrimaryConfig{Source: n.rep, Relay: true, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.ln = ln
	go n.p.Serve(ln)
	n.f = repl.NewFollower(repl.FollowerConfig{
		Name:    name,
		Dial:    dial(upstream),
		Replica: n.rep,
		Relay:   n.p,
		Backoff: wire.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Seed: seed},
		Logf:    t.Logf,
	})
	t.Cleanup(func() {
		n.f.Close()
		ln.Close()
		n.p.Close()
	})
	return n
}

func (n *raceNode) addr() string { return n.ln.Addr().String() }

func (n *raceNode) status() repl.PeerStatus {
	return repl.PeerStatus{
		Name: n.name, Role: "relay",
		Term: n.rep.Term(), Leader: n.rep.Leader(),
		Epoch: n.rep.Epoch(), Addr: n.addr(),
	}
}

func dial(addr string) func() (io.ReadWriteCloser, error) {
	return func() (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) }
}

// deadAddr returns a loopback address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// judgeEpochs requires every epoch the replica retains to be
// fingerprint-identical to the authoritative warehouse's same epoch.
func judgeEpochs(t *testing.T, w *warehouse.Warehouse, rep *warehouse.Replica, label string) {
	t.Helper()
	fs := rep.Snapshot()
	if fs == nil {
		t.Fatalf("%s: no state", label)
	}
	ws, err := w.SnapshotAt(int(fs.Epoch))
	if err != nil {
		t.Fatalf("%s: authority lost epoch %d: %v", label, fs.Epoch, err)
	}
	if got, want := repl.Fingerprint(fs), repl.Fingerprint(ws); got != want {
		t.Fatalf("%s: epoch %d diverged: %s vs %s", label, fs.Epoch, got, want)
	}
	for e := int64(0); e <= fs.Epoch; e++ {
		hs, err := rep.SnapshotAt(e)
		if err != nil {
			continue
		}
		ws, err := w.SnapshotAt(int(e))
		if err != nil {
			continue // evicted from the authority's capped state log
		}
		if got, want := repl.Fingerprint(hs), repl.Fingerprint(ws); got != want {
			t.Fatalf("%s: historical epoch %d diverged", label, e)
		}
	}
}

// TestPromotionRaceSchedules replays seeded promotion races: two candidate
// relays stream from one root, one candidate's feed is partitioned
// mid-run (so the candidates hold different durable epochs), the root is
// killed, and both candidates run an election round concurrently. Exactly
// one — the one holding the newest epoch — may promote; the loser and the
// orphaned leaf must converge onto the winner's term-2 feed with every
// epoch byte-identical to the pre-crash primary. A resurrected stale root
// must then be unable to feed anyone (no stale-term epoch ever applies).
func TestPromotionRaceSchedules(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runPromotionRace(t, seed)
		})
	}
}

func runPromotionRace(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const updates = 40
	vals := make([]int, updates)
	for i := range vals {
		vals[i] = rng.Intn(1000)
	}
	partitionAt := 10 + rng.Intn(10)
	killAt := partitionAt + 5 + rng.Intn(10)

	// Root primary (term 1) with a retained feed.
	var rootPrim *repl.Primary
	root := warehouse.New(failoverViews(), warehouse.WithStateLog(),
		warehouse.WithReplFeed(64, func(e msg.ReplEpoch) { rootPrim.OnCommit(e) }))
	rootPrim = repl.NewPrimary(repl.PrimaryConfig{Source: root, Logf: t.Logf})
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rootPrim.Serve(rootLn)
	t.Cleanup(func() { rootLn.Close(); rootPrim.Close() })

	c0 := newRaceNode(t, "c0", rootLn.Addr().String(), seed*10+1)
	c1 := newRaceNode(t, "c1", rootLn.Addr().String(), seed*10+2)
	leafRep := warehouse.NewReplica()
	leaf := repl.NewFollower(repl.FollowerConfig{
		Name: "leaf", Dial: dial(c0.addr()), Replica: leafRep,
		Backoff: wire.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Seed: seed*10 + 3},
		Logf:    t.Logf,
	})
	t.Cleanup(func() { leaf.Close() })

	committed := 0
	for i := 1; i <= updates; i++ {
		committed++
		failoverCommit(root, i, vals[i-1])
		switch i {
		case partitionAt:
			// c1's feed partitions: it keeps its state but stops advancing,
			// so the two candidates will hold different durable epochs.
			waitCond(t, "c1 pre-partition sync", func() bool { return c1.rep.Epoch() >= int64(partitionAt)/2 })
			c1.f.Retarget(dial(deadAddr(t)))
		case killAt:
			// kill -9 the root mid-stream: c0 (and the leaf behind it) may
			// still be catching up on in-flight epochs.
			waitCond(t, "c0 within catch-up range", func() bool { return c0.rep.Epoch() >= 0 })
			rootLn.Close()
			rootPrim.Close()
		}
		if rng.Intn(3) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	// Whatever the root managed to publish before dying is the authority.
	waitCond(t, "c0 drains the surviving feed", func() bool {
		return c0.f.DisconnectedFor() > 30*time.Millisecond
	})
	preCrashHead := c0.rep.Epoch()
	if c1.rep.Epoch() > preCrashHead {
		// The partition schedule can only leave c1 behind, never ahead.
		t.Fatalf("partitioned candidate ahead of live one: %d > %d", c1.rep.Epoch(), preCrashHead)
	}

	// Both candidates run an election concurrently over in-process status
	// probes. The deterministic rule (newest epoch, then smallest name)
	// must crown exactly one leader — c0.
	var promotedW *warehouse.Warehouse
	mkCoord := func(self, peer *raceNode) *repl.Coordinator {
		return repl.NewCoordinator(repl.CoordinatorConfig{
			Self:         self.status,
			Peers:        map[string]func() (repl.PeerStatus, error){peer.name: func() (repl.PeerStatus, error) { return peer.status(), nil }},
			Suspect:      self.f.DisconnectedFor,
			SuspectAfter: 30 * time.Millisecond,
			Interval:     time.Hour, // ElectOnce-driven
			Promote: func(term int64) error {
				snap := self.rep.Snapshot()
				if snap == nil {
					return fmt.Errorf("no state")
				}
				w := warehouse.NewFromSnapshot(snap, warehouse.WithStateLog(),
					warehouse.WithReplFeed(64, func(e msg.ReplEpoch) { self.p.OnCommit(e) }))
				self.p.Promote(w, term, self.name)
				self.f.Close() // stop redialing the dead root
				if promotedW != nil {
					return fmt.Errorf("double promotion")
				}
				promotedW = w
				return nil
			},
			Follow: func(p repl.PeerStatus) error {
				self.f.Retarget(dial(p.Addr))
				return nil
			},
			Logf: t.Logf,
		})
	}
	co0, co1 := mkCoord(c0, c1), mkCoord(c1, c0)
	// The losing candidate elects first — the racier order: it must follow
	// the future winner on epoch comparison alone, not observe a promotion.
	if _, err := co1.ElectOnce(); err != nil {
		t.Fatalf("c1 election: %v", err)
	}
	if _, err := co0.ElectOnce(); err != nil {
		t.Fatalf("c0 election: %v", err)
	}
	co0.Close()
	co1.Close()
	if promotedW == nil {
		t.Fatal("no candidate promoted")
	}
	if got := c0.p.Term(); got != 2 {
		t.Fatalf("winner's term = %d, want 2", got)
	}
	// No committed epoch lost at the handover.
	if got, want := repl.Fingerprint(promotedW.Snapshot()), int64(preCrashHead); promotedW.Snapshot().Epoch != want {
		t.Fatalf("promotion moved the head: %d (fp %s), want %d", promotedW.Snapshot().Epoch, got, want)
	}

	// Post-failover traffic on the winner; the loser and the orphaned leaf
	// must converge through the re-fenced feed.
	for i := updates + 1; i <= updates+10; i++ {
		failoverCommit(promotedW, i, rng.Intn(1000))
	}
	head := promotedW.Snapshot().Epoch
	waitCond(t, "fleet convergence on the winner", func() bool {
		return c1.rep.Epoch() == head && leafRep.Epoch() == head
	})
	judgeEpochs(t, promotedW, c0.rep, "winner replica")
	judgeEpochs(t, promotedW, c1.rep, "losing candidate")
	judgeEpochs(t, promotedW, leafRep, "leaf")
	// The winner's own replica froze at promotion; everything downstream of
	// the new feed must carry the term-2 fence.
	if c1.rep.Term() != 2 || c1.rep.Leader() != "c0" {
		t.Fatalf("c1 fence = (%d, %q), want (2, c0)", c1.rep.Term(), c1.rep.Leader())
	}
	if leafRep.Term() != 2 || leafRep.Leader() != "c0" {
		t.Fatalf("leaf fence = (%d, %q), want (2, c0)", leafRep.Term(), leafRep.Leader())
	}

	// Resurrect the dead root at its stale term and point the loser at it:
	// the fence must hold — not one stale-term epoch may apply.
	stalePrim := repl.NewPrimary(repl.PrimaryConfig{Source: root, Logf: t.Logf})
	staleLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go stalePrim.Serve(staleLn)
	t.Cleanup(func() { staleLn.Close(); stalePrim.Close() })
	c1.f.Retarget(dial(staleLn.Addr().String()))
	failoverCommit(root, updates+11, 1) // stale primary keeps committing
	time.Sleep(50 * time.Millisecond)
	if got := c1.rep.Epoch(); got != head {
		t.Fatalf("stale-term feed moved the loser: epoch %d, want %d", got, head)
	}
	if c1.rep.Term() != 2 || c1.rep.Leader() != "c0" {
		t.Fatalf("stale-term feed re-fenced the loser: (%d, %q)", c1.rep.Term(), c1.rep.Leader())
	}
	// Rejoining the winner resumes cleanly.
	c1.f.Retarget(dial(c0.addr()))
	failoverCommit(promotedW, updates+11, rng.Intn(1000))
	waitCond(t, "loser rejoins the winner", func() bool { return c1.rep.Epoch() == head+1 })
	judgeEpochs(t, promotedW, c1.rep, "loser after stale detour")
}

// TestRelayCrashOrphansSubtree replays the orphaned-subtree schedule: a
// root → relay → leaf chain where the relay dies. The leaf is not a
// candidate (it exports no feed); its election round must discover the
// still-live root primary and retarget the stream there, converging with
// no epoch lost.
func TestRelayCrashOrphansSubtree(t *testing.T) {
	for _, seed := range []int64{3, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOrphanedSubtree(t, seed)
		})
	}
}

func runOrphanedSubtree(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const updates = 30
	killAt := 10 + rng.Intn(10)

	var rootPrim *repl.Primary
	root := warehouse.New(failoverViews(), warehouse.WithStateLog(),
		warehouse.WithReplFeed(64, func(e msg.ReplEpoch) { rootPrim.OnCommit(e) }))
	rootPrim = repl.NewPrimary(repl.PrimaryConfig{Source: root, Logf: t.Logf})
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rootPrim.Serve(rootLn)
	t.Cleanup(func() { rootLn.Close(); rootPrim.Close() })

	relay := newRaceNode(t, "relay", rootLn.Addr().String(), seed*10+1)
	leafRep := warehouse.NewReplica()
	leaf := repl.NewFollower(repl.FollowerConfig{
		Name: "leaf", Dial: dial(relay.addr()), Replica: leafRep,
		Backoff: wire.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Seed: seed*10 + 2},
		Logf:    t.Logf,
	})
	t.Cleanup(func() { leaf.Close() })

	rootStatus := func() (repl.PeerStatus, error) {
		return repl.PeerStatus{
			Name: "root", Role: "primary",
			Term: rootPrim.Term(), Leader: rootPrim.Leader(),
			Epoch: root.Snapshot().Epoch, Addr: rootLn.Addr().String(),
		}, nil
	}
	coord := repl.NewCoordinator(repl.CoordinatorConfig{
		Self: func() repl.PeerStatus {
			return repl.PeerStatus{Name: "leaf", Role: "follower", Term: leafRep.Term(),
				Leader: leafRep.Leader(), Epoch: leafRep.Epoch()} // Addr empty: not a candidate
		},
		Peers:        map[string]func() (repl.PeerStatus, error){"root": rootStatus},
		Suspect:      leaf.DisconnectedFor,
		SuspectAfter: 30 * time.Millisecond,
		Interval:     time.Hour, // ElectOnce-driven
		Follow: func(p repl.PeerStatus) error {
			leaf.Retarget(dial(p.Addr))
			return nil
		},
		Logf: t.Logf,
	})
	t.Cleanup(func() { coord.Close() })

	for i := 1; i <= updates; i++ {
		failoverCommit(root, i, rng.Intn(1000))
		if i == killAt {
			// The relay dies, orphaning the leaf mid-stream.
			relay.f.Close()
			relay.ln.Close()
			relay.p.Close()
		}
		if rng.Intn(3) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	waitCond(t, "orphan suspicion", func() bool { return leaf.DisconnectedFor() > 30*time.Millisecond })
	outcome, err := coord.ElectOnce()
	if err != nil {
		t.Fatalf("leaf election: %v", err)
	}
	t.Logf("leaf election: %s", outcome)

	waitCond(t, "orphan re-homed on the root", func() bool {
		return leafRep.Epoch() == root.Snapshot().Epoch
	})
	judgeEpochs(t, root, leafRep, "re-homed leaf")
	if leafRep.Term() != 1 {
		t.Fatalf("leaf term = %d, want 1 (root never deposed)", leafRep.Term())
	}
}
