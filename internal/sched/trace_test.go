package sched

import (
	"testing"

	"whips/internal/obs"
)

// TestExploredSchedulesTraceReplication is the trace-parity check: explored
// fault schedules must produce the same span chains as live replicated runs
// — every committed update's chain is complete (commit..wh_commit) and
// extends through repl_pub to the replica's repl_apply, in causal hop order.
func TestExploredSchedulesTraceReplication(t *testing.T) {
	const updates = 3
	pipe := obs.NewPipeline()
	var mem *obs.MemorySink
	var all [][]obs.Event
	inner := Fleet(FleetConfig{Algo: "spa", Updates: updates, Seed: 5, Obs: pipe, Replicate: true})
	factory := func() (*Harness, error) {
		if mem != nil {
			all = append(all, mem.Events())
		}
		mem = &obs.MemorySink{}
		pipe.Tracer = obs.NewTracer(mem.Sink())
		return inner()
	}
	res, err := Explore(factory, Options{Seed: 42, Seeds: scale(t, 50), FaultRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	all = append(all, mem.Events())

	for si, events := range all {
		spans := obs.EndToEnd(events)
		if len(spans) != updates {
			t.Fatalf("schedule %d: traced %d updates, want %d", si, len(spans), updates)
		}
		chains := obs.Chains(events)
		for _, sp := range spans {
			if !sp.Complete {
				t.Errorf("schedule %d seq %d: chain incomplete", si, sp.Seq)
			}
			if !sp.ReplApplied {
				t.Errorf("schedule %d seq %d: update never reached the replica", si, sp.Seq)
			}
			chain := chains[sp.Seq]
			for i, e := range chain {
				if i > 0 && e.Hop < chain[i-1].Hop {
					t.Errorf("schedule %d seq %d: hop regressed %d→%d at %s",
						si, sp.Seq, chain[i-1].Hop, e.Hop, e.Stage)
				}
			}
			if last := chain[len(chain)-1]; last.Stage != obs.StageReplApply {
				t.Errorf("schedule %d seq %d: chain ends at %s, want repl_apply", si, sp.Seq, last.Stage)
			}
		}
	}
}

// TestExploredReplicationUnderFaults keeps the replica attached while
// crash/restart faults fire: the quiescence check in fleetCheck requires
// the replica to converge to the warehouse head on every explored schedule.
func TestExploredReplicationUnderFaults(t *testing.T) {
	res, err := Explore(Fleet(FleetConfig{
		Algo: "spa", Updates: 3, Seed: 9, Crashable: true, Replicate: true,
	}), Options{Seed: 7, Seeds: scale(t, 150), FaultRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("replicated fleet under faults: %v", res.Violation)
	}
}
