// Package sched is a deterministic schedule explorer for the pure
// msg.Node state machines: it drives the same process implementations the
// goroutine runtime and the discrete-event simulator execute through
// systematically enumerated (bounded DFS) and seed-randomized message
// interleavings, and checks every terminal trace against the paper's
// theorems — SPA completeness (Thm 4.1), PA strong consistency (Thm 5.1)
// — and the §5 invariants.
//
// The delivery model is exactly the one the paper's algorithms assume:
// messages on one sender→receiver edge arrive in send order (FIFO per
// edge), and nothing else is guaranteed. The explorer's nondeterminism is
// therefore a single repeated choice: which edge's head message to deliver
// next. Self-scheduled timers (Outbound.Delay > 0) bypass edges in the
// real runtime, so each becomes its own singleton "edge" that can fire at
// any point — a strictly larger behaviour space than any real clock.
//
// Fault injection rides on the same choice sequence: node crashes with
// input-log replay on restart, view-manager stalls, and per-edge delay
// spikes are schedule events, so a failing run — faults included — replays
// exactly from its recorded decisions. Every random draw flows from one
// explicit seed, and that seed is part of every failure report.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"whips/internal/msg"
)

// Harness is one explorable fleet: the nodes, the driver's initial
// messages, an invariant check to run at quiescence, and (optionally) a
// way to rebuild crashed nodes from their initial state.
type Harness struct {
	// Nodes are the processes. Handle must be deterministic in the
	// delivered message sequence (the msg.Node contract).
	Nodes []msg.Node
	// Rebuild returns a fresh, initial-state instance of a node; only
	// nodes present here are eligible for crash faults. The explorer
	// restores a restarted node by replaying its full delivered-input log
	// (with outputs suppressed — they were already routed), modelling a
	// process that recovers its state from a durable input log.
	Rebuild map[string]func() msg.Node
	// Inject is the driver's initial message sequence, delivered FIFO per
	// driver→destination edge, interleaved freely with everything else.
	Inject []msg.Outbound
	// Check runs at quiescence (all queues empty) and returns nil if the
	// terminal trace satisfies every invariant.
	Check func() error
	// StateRestore switches crash recovery from input-log replay to
	// checkpoint restore: at the crash the live node's state is captured via
	// StateNode.MarshalState, and the restart rebuilds the node and calls
	// RestoreState instead of replaying its delivered-input history. Nodes
	// that do not implement StateNode — or whose capture fails (e.g. a busy
	// batcher) — fall back to input-log replay for that crash. Running the
	// same schedule in both modes must be indistinguishable; the
	// transparency test holds the durable snapshot path to that.
	StateRestore bool
}

// StateNode is the optional checkpoint interface a node implements to
// support StateRestore recovery (structurally identical to
// system.StateNode).
type StateNode interface {
	MarshalState() ([]byte, error)
	RestoreState([]byte) error
}

// Factory builds a fresh harness for one schedule. Explorers run many
// schedules; each needs untouched node state.
type Factory func() (*Harness, error)

// FaultKind enumerates the injectable failures.
type FaultKind uint8

// Injectable failure kinds.
const (
	// Crash removes the node; its pending and future inbound messages
	// queue up (reliable channels). A matching Restart rebuilds the node
	// and replays its input log.
	Crash FaultKind = iota
	// Restart recovers a crashed node via Harness.Rebuild + input replay.
	Restart
	// Stall pauses a node for Dur delivery steps without losing state —
	// the "view manager stalls" scenario.
	Stall
	// EdgeStall pauses one edge (Edge field) for Dur delivery steps — a
	// message-delay spike that still preserves the edge's FIFO order.
	EdgeStall
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Stall:
		return "stall"
	case EdgeStall:
		return "edge-stall"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is one schedule-time failure event.
type Fault struct {
	Step int // delivery step before which the fault fires
	Kind FaultKind
	Node string // Crash / Restart / Stall target
	Edge string // EdgeStall target ("from→to")
	Dur  int    // Stall / EdgeStall duration in delivery steps
}

// String renders the fault for traces.
func (f Fault) String() string {
	switch f.Kind {
	case EdgeStall:
		return fmt.Sprintf("@%d %v %s for %d", f.Step, f.Kind, f.Edge, f.Dur)
	case Stall:
		return fmt.Sprintf("@%d %v %s for %d", f.Step, f.Kind, f.Node, f.Dur)
	default:
		return fmt.Sprintf("@%d %v %s", f.Step, f.Kind, f.Node)
	}
}

// Options configures an exploration.
type Options struct {
	// Seed is the base seed for randomized scheduling and fault drawing.
	// Schedule s uses Seed+s. Every failure report names the exact seed.
	Seed int64
	// Seeds is the number of randomized schedules to run (random mode).
	Seeds int
	// DFS switches to systematic enumeration of interleavings in
	// lexicographic order, up to MaxSchedules schedules.
	DFS bool
	// MaxSchedules bounds DFS enumeration (default 2000).
	MaxSchedules int
	// MaxSteps bounds one schedule's deliveries (default 100000); hitting
	// the bound is reported as a liveness violation.
	MaxSteps int
	// FaultRate is the per-step probability of drawing a fault in random
	// mode (crashes, stalls, edge stalls). Zero disables faults.
	FaultRate float64
	// Faults is an explicit fault plan, applied in every schedule (useful
	// with DFS, which draws no random faults).
	Faults []Fault
	// FlipEdge is a test-only ordering-bug hook: the first time the named
	// edge holds two or more messages, the second is delivered before the
	// first — a single FIFO violation. Used to prove the explorer catches
	// ordering bugs.
	FlipEdge string
	// Progress, when set, is called after every schedule.
	Progress func(done int)
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 100000
	}
	return o.MaxSteps
}

func (o Options) maxSchedules() int {
	if o.MaxSchedules <= 0 {
		return 2000
	}
	return o.MaxSchedules
}

// Violation describes one failing schedule, with everything needed to
// replay it: the seed it was drawn from, the concrete decision sequence,
// and the fault plan.
type Violation struct {
	Err     error
	Seed    int64   // seed of the failing schedule (random mode; -1 for DFS)
	Choices []int   // decision sequence (index into sorted enabled edges)
	Faults  []Fault // concrete faults of the failing schedule
	// Trace is the minimized failing schedule's delivery log.
	Trace []string
	// Minimized reports how many deliveries the minimized schedule has.
	Minimized int
}

func (v *Violation) String() string {
	if v == nil {
		return "no violation"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant violation: %v\n", v.Err)
	if v.Seed >= 0 {
		fmt.Fprintf(&b, "replay seed: %d\n", v.Seed)
	} else {
		fmt.Fprintf(&b, "found by DFS enumeration\n")
	}
	fmt.Fprintf(&b, "decision sequence (%d choices): %v\n", len(v.Choices), v.Choices)
	if len(v.Faults) > 0 {
		fmt.Fprintf(&b, "faults:\n")
		for _, f := range v.Faults {
			fmt.Fprintf(&b, "  %v\n", f)
		}
	}
	fmt.Fprintf(&b, "minimal failing schedule (%d deliveries):\n", v.Minimized)
	for _, l := range v.Trace {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String()
}

// Result summarizes an exploration.
type Result struct {
	Schedules  int
	Deliveries int64
	Violation  *Violation
}

// Explore runs schedules from the factory until the budget is exhausted or
// a violation is found. The first violation is minimized and returned.
func Explore(f Factory, opts Options) (Result, error) {
	if opts.DFS {
		return exploreDFS(f, opts)
	}
	return exploreRandom(f, opts)
}

func exploreRandom(f Factory, opts Options) (Result, error) {
	var res Result
	n := opts.Seeds
	if n <= 0 {
		n = 1
	}
	for s := 0; s < n; s++ {
		seed := opts.Seed + int64(s)
		h, err := f()
		if err != nil {
			return res, err
		}
		r := newRunner(h, opts)
		rng := rand.New(rand.NewSource(seed))
		r.chooser = func(nChoices int) int { return rng.Intn(nChoices) }
		if opts.FaultRate > 0 {
			r.faultDraw = randomFaults(rng, opts.FaultRate, h)
		}
		r.faults = append(r.faults, opts.Faults...)
		verr := r.run()
		res.Schedules++
		res.Deliveries += int64(r.step)
		if opts.Progress != nil {
			opts.Progress(res.Schedules)
		}
		if verr != nil {
			res.Violation = minimize(f, opts, r, verr, seed)
			return res, nil
		}
	}
	return res, nil
}

// exploreDFS enumerates decision vectors in lexicographic order: run with
// the current prefix (zero-extended), record the branching factor at every
// step, then advance the deepest advanceable digit. This visits every
// interleaving of the (finite) message set, up to MaxSchedules.
func exploreDFS(f Factory, opts Options) (Result, error) {
	var res Result
	prefix := []int{}
	for res.Schedules < opts.maxSchedules() {
		h, err := f()
		if err != nil {
			return res, err
		}
		r := newRunner(h, opts)
		r.chooser = prefixChooser(r, prefix)
		r.faults = append(r.faults, opts.Faults...)
		verr := r.run()
		res.Schedules++
		res.Deliveries += int64(r.step)
		if opts.Progress != nil {
			opts.Progress(res.Schedules)
		}
		if verr != nil {
			res.Violation = minimize(f, opts, r, verr, -1)
			return res, nil
		}
		// Advance to the next decision vector.
		next := append([]int(nil), r.choices...)
		i := len(next) - 1
		for i >= 0 && next[i]+1 >= r.branching[i] {
			i--
		}
		if i < 0 {
			return res, nil // space exhausted
		}
		next[i]++
		prefix = next[:i+1]
	}
	return res, nil
}

func prefixChooser(r *runner, prefix []int) func(int) int {
	return func(nChoices int) int {
		if s := len(r.choices); s < len(prefix) {
			c := prefix[s]
			if c >= nChoices {
				c = nChoices - 1
			}
			return c
		}
		return 0
	}
}

// randomFaults draws faults from the schedule's rng: crash a rebuildable
// node (restart drawn a few steps later), stall a node, or stall an edge.
func randomFaults(rng *rand.Rand, rate float64, h *Harness) func(r *runner) []Fault {
	var rebuildable []string
	for id := range h.Rebuild {
		rebuildable = append(rebuildable, id)
	}
	sort.Strings(rebuildable)
	return func(r *runner) []Fault {
		if rng.Float64() >= rate {
			return nil
		}
		dur := 1 + rng.Intn(20)
		switch rng.Intn(3) {
		case 0:
			if len(rebuildable) == 0 {
				return nil
			}
			id := rebuildable[rng.Intn(len(rebuildable))]
			if r.crashed[id] {
				return nil
			}
			return []Fault{
				{Step: r.step, Kind: Crash, Node: id},
				{Step: r.step + dur, Kind: Restart, Node: id},
			}
		case 1:
			ids := r.nodeIDs()
			id := ids[rng.Intn(len(ids))]
			if r.crashed[id] {
				return nil
			}
			return []Fault{{Step: r.step, Kind: Stall, Node: id, Dur: dur}}
		default:
			keys := r.activeEdges()
			if len(keys) == 0 {
				return nil
			}
			return []Fault{{Step: r.step, Kind: EdgeStall, Edge: keys[rng.Intn(len(keys))], Dur: dur}}
		}
	}
}

// minimize shrinks a failing schedule by canonicalizing decisions: each
// nonzero choice is tried at zero (the first-enabled-edge schedule), then
// the fault list is pruned, greedily keeping every simplification that
// still fails. The result is replayed once more to produce the trace.
func minimize(f Factory, opts Options, failed *runner, verr error, seed int64) *Violation {
	choices := append([]int(nil), failed.choices...)
	faults := append([]Fault(nil), failed.recordedFaults...)

	replay := func(ch []int, fs []Fault, wantTrace bool) (*runner, error) {
		h, err := f()
		if err != nil {
			return nil, nil
		}
		r := newRunner(h, opts)
		r.chooser = func(nChoices int) int {
			if s := len(r.choices); s < len(ch) {
				c := ch[s]
				if c >= nChoices {
					c = nChoices - 1
				}
				return c
			}
			return 0
		}
		r.faults = fs
		r.keepTrace = wantTrace
		return r, r.run()
	}

	// Drop faults one at a time. A Crash is always dropped together with
	// its matching Restart — keeping an unmatched Crash would manufacture
	// a spurious never-quiesces violation; a Restart is never dropped
	// alone for the same reason.
	for i := 0; i < len(faults); {
		if faults[i].Kind == Restart {
			i++
			continue
		}
		drop := map[int]bool{i: true}
		if faults[i].Kind == Crash {
			for j := i + 1; j < len(faults); j++ {
				if faults[j].Kind == Restart && faults[j].Node == faults[i].Node {
					drop[j] = true
					break
				}
			}
		}
		trial := make([]Fault, 0, len(faults)-len(drop))
		for j, f := range faults {
			if !drop[j] {
				trial = append(trial, f)
			}
		}
		if _, err := replay(choices, trial, false); err != nil {
			faults = trial
			continue
		}
		i++
	}
	// Canonicalize choices back-to-front; a zero suffix then truncates.
	for i := len(choices) - 1; i >= 0; i-- {
		if choices[i] == 0 {
			continue
		}
		trial := append([]int(nil), choices...)
		trial[i] = 0
		if _, err := replay(trial, faults, false); err != nil {
			choices = trial
		}
	}
	for len(choices) > 0 && choices[len(choices)-1] == 0 {
		choices = choices[:len(choices)-1]
	}

	r, err := replay(choices, faults, true)
	v := &Violation{Seed: seed, Choices: choices, Faults: faults}
	if r == nil || err == nil {
		// Defensive: minimization lost the failure (a flaky invariant);
		// fall back to the original schedule.
		v.Err = verr
		v.Choices = failed.choices
		v.Faults = failed.recordedFaults
		r2, err2 := replay(failed.choices, failed.recordedFaults, true)
		if r2 != nil && err2 != nil {
			v.Trace, v.Minimized = r2.trace, r2.step
		}
		return v
	}
	v.Err = err
	v.Trace = r.trace
	v.Minimized = r.step
	return v
}
