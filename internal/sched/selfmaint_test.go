// selfmaint_test.go is the self-maintenance correctness battery: explored
// schedules — including crash/stall fault schedules — must drive the
// warehouse through a fingerprint-identical state sequence whether the spa
// fleet's complete managers maintain full base replicas (baseline) or
// auxiliary relations (SelfMaintain). On the covered path the
// self-maintaining manager emits exactly the same message multiset (one
// Complete action list per update, no source traffic), so schedule s is
// the same interleaving in both modes and every epoch must hash equal.
package sched

import "testing"

// TestSelfMaintainEquivalence runs seeded random schedules of the spa
// fleet with and without auxiliary-relation maintenance and compares the
// warehouse state sequences epoch for epoch.
func TestSelfMaintainEquivalence(t *testing.T) {
	cfg := FleetConfig{Algo: "spa", Updates: 5, Seed: 3}
	opts := Options{Seed: 100, Seeds: scale(t, 40)}
	base := exploreFingerprints(t, cfg, opts)
	cfg.SelfMaintain = true
	self := exploreFingerprints(t, cfg, opts)
	requireIdentical(t, base, self)
}

// TestSelfMaintainEquivalenceUnderFaults repeats the comparison with
// crash/restart and stall faults drawn per step, in both recovery models:
// input-log replay and durable state snapshots (which carry the auxiliary
// relations — including the degraded set — through Rebuild).
func TestSelfMaintainEquivalenceUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name         string
		stateRestore bool
	}{
		{"replay", false},
		{"state-restore", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := FleetConfig{Algo: "spa", Updates: 4, Seed: 9, Crashable: true, StateRestore: tc.stateRestore}
			opts := Options{Seed: 500, Seeds: scale(t, 30), FaultRate: 0.05}
			base := exploreFingerprints(t, cfg, opts)
			cfg.SelfMaintain = true
			self := exploreFingerprints(t, cfg, opts)
			requireIdentical(t, base, self)
		})
	}
}

// TestSelfMaintainDFSEquivalence drives systematic enumeration: every
// DFS-enumerated interleaving must land on identical state sequences.
func TestSelfMaintainDFSEquivalence(t *testing.T) {
	cfg := FleetConfig{Algo: "spa", Updates: 2, Seed: 11}
	opts := Options{DFS: true, MaxSchedules: scale(t, 400)}
	base := exploreFingerprints(t, cfg, opts)
	cfg.SelfMaintain = true
	self := exploreFingerprints(t, cfg, opts)
	requireIdentical(t, base, self)
}

// TestSelfMaintainBoundedFallback bounds the auxiliaries to one row, so
// explored schedules constantly degrade and repair them through source
// query rounds. The fallback adds query/response messages, so the message
// multiset — and hence the interleaving per seed — differs from the
// baseline: no fingerprint comparison, but every schedule must still pass
// the full invariant battery (complete MVC, column order, atomicity,
// promptness), proving the repaired path emits correct action lists under
// every interleaving, including fault schedules.
func TestSelfMaintainBoundedFallback(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		cfg  FleetConfig
	}{
		{"random",
			Options{Seed: 100, Seeds: scale(t, 40)},
			FleetConfig{Algo: "spa", Updates: 5, Seed: 3, SelfMaintain: true, MaxAuxRows: 1}},
		{"faults",
			Options{Seed: 500, Seeds: scale(t, 30), FaultRate: 0.05},
			FleetConfig{Algo: "spa", Updates: 4, Seed: 9, SelfMaintain: true, MaxAuxRows: 1, Crashable: true}},
		{"faults-state-restore",
			Options{Seed: 700, Seeds: scale(t, 30), FaultRate: 0.05},
			FleetConfig{Algo: "spa", Updates: 4, Seed: 9, SelfMaintain: true, MaxAuxRows: 1, Crashable: true, StateRestore: true}},
		{"dfs",
			Options{DFS: true, MaxSchedules: scale(t, 400)},
			FleetConfig{Algo: "spa", Updates: 2, Seed: 11, SelfMaintain: true, MaxAuxRows: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Explore(Fleet(tc.cfg), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation:\n%v", res.Violation)
			}
		})
	}
}

// TestSelfMaintainRequiresSPA: the flag applies to complete managers only.
func TestSelfMaintainRequiresSPA(t *testing.T) {
	_, err := buildFleet(FleetConfig{Algo: "pa", SelfMaintain: true})
	if err == nil {
		t.Error("pa fleet with SelfMaintain must fail to build")
	}
}
