package workload

import (
	"fmt"
	"testing"

	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/source"
	"whips/internal/system"
)

func TestPaperSourcesAndViews(t *testing.T) {
	srcs := PaperSources()
	if len(srcs) != 2 {
		t.Fatalf("sources = %d", len(srcs))
	}
	views := PaperViews(system.Complete)
	if len(views) != 2 || views[0].ID != "V1" || views[1].ID != "V2" {
		t.Fatalf("views = %+v", views)
	}
	bases := views[0].Expr.BaseRelations()
	if len(bases) != 2 || bases[0] != "R" || bases[1] != "S" {
		t.Errorf("V1 bases = %v", bases)
	}
}

func TestSharedAndDisjointViews(t *testing.T) {
	_, shared := SharedViews(5, system.Complete, nil)
	if len(shared) != 5 {
		t.Fatalf("shared = %d", len(shared))
	}
	for _, v := range shared {
		if got := v.Expr.BaseRelations(); len(got) != 1 || got[0] != "S" {
			t.Errorf("%s bases = %v", v.ID, got)
		}
	}
	srcs, disjoint := DisjointViews(4, system.Complete, nil)
	if len(disjoint) != 4 || len(srcs[0].Relations) != 4 {
		t.Fatalf("disjoint = %d over %d relations", len(disjoint), len(srcs[0].Relations))
	}
	seen := map[string]bool{}
	for _, v := range disjoint {
		b := v.Expr.BaseRelations()[0]
		if seen[b] {
			t.Errorf("relation %s reused", b)
		}
		seen[b] = true
	}
}

// TestGeneratorProducesValidTransactions replays a long generated stream
// against a real cluster: every transaction must commit (deletes always
// hit existing tuples).
func TestGeneratorProducesValidTransactions(t *testing.T) {
	srcs := PaperSources()
	c := source.NewCluster(nil)
	for _, s := range srcs {
		c.AddSource(s.ID)
		for name, rel := range s.Relations {
			if err := c.LoadRelation(s.ID, name, rel); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := NewGenerator(99, srcs)
	g.DeleteFraction = 0.45
	for i := 0; i < 500; i++ {
		src, writes := g.Txn()
		if _, err := c.Execute(src, writes...); err != nil {
			t.Fatalf("generated txn %d rejected: %v", i, err)
		}
	}
	if c.Seq() != 500 {
		t.Errorf("committed = %d", c.Seq())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	run := func() []string {
		g := NewGenerator(7, PaperSources())
		var out []string
		for i := 0; i < 50; i++ {
			src, writes := g.Txn()
			out = append(out, fmt.Sprintf("%s:%s:%s", src, writes[0].Relation, writes[0].Delta))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGeneratorMultiWrite(t *testing.T) {
	g := NewGenerator(3, PaperSources())
	g.MultiWriteFraction = 1.0
	multi := 0
	for i := 0; i < 100; i++ {
		src, writes := g.Txn()
		if len(writes) == 2 {
			multi++
			// §2: both writes must belong to the same source.
			for _, w := range writes {
				owner := ownerOf(t, w.Relation)
				if owner != src {
					t.Fatalf("write on %s (source %s) in txn of source %s", w.Relation, owner, src)
				}
			}
		}
	}
	if multi == 0 {
		t.Error("no multi-write transactions generated")
	}
}

func ownerOf(t *testing.T, rel string) msg.SourceID {
	t.Helper()
	for _, s := range PaperSources() {
		if _, ok := s.Relations[rel]; ok {
			return s.ID
		}
	}
	t.Fatalf("unknown relation %s", rel)
	return ""
}

func TestGeneratorCoversAllValueTypes(t *testing.T) {
	// A schema with all four types exercises every tuple-generation arm.
	sch := relation.MustSchema("I:int", "S:string", "F:float", "B:bool")
	g := NewGenerator(1, []system.SourceDef{{ID: "s", Relations: map[string]*relation.Relation{
		"Mixed": relation.New(sch),
	}}})
	for i := 0; i < 20; i++ {
		src, writes := g.Txn()
		if src != "s" || len(writes) == 0 {
			t.Fatal("bad txn")
		}
		writes[0].Delta.Each(func(tu relation.Tuple, n int64) bool {
			if err := tu.CheckSchema(sch); err != nil {
				t.Fatalf("generated tuple invalid: %v", err)
			}
			return true
		})
	}
}

func TestViewBuilders(t *testing.T) {
	srcs, sel := SelectiveViews(4, system.Complete, func(int) int64 { return 1 })
	if len(sel) != 4 || len(srcs) != 1 {
		t.Fatalf("selective = %d views", len(sel))
	}
	for i, v := range sel {
		if v.ComputeDelay == nil || v.ComputeDelay(1) != 1 {
			t.Errorf("view %d delay not wired", i)
		}
	}
	// Each selective view matches a different C value.
	seen := map[string]bool{}
	for _, v := range sel {
		s := v.Expr.String()
		if seen[s] {
			t.Errorf("duplicate selective view %s", s)
		}
		seen[s] = true
	}
}

func TestGeneratorRestrict(t *testing.T) {
	g := NewGenerator(5, PaperSources())
	g.Restrict("S")
	for i := 0; i < 50; i++ {
		src, writes := g.Txn()
		if src != "src1" || writes[0].Relation != "S" {
			t.Fatalf("restricted generator produced %s/%s", src, writes[0].Relation)
		}
	}
}
