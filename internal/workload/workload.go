// Package workload generates source-update workloads for experiments and
// randomized tests: the paper's running R/S/T schema, scalable many-view
// configurations (shared-relation and disjoint-group variants), and an
// update-stream generator that tracks live contents so deletions always
// hit existing tuples.
package workload

import (
	"fmt"
	"math/rand"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/system"
)

// Paper schema: R(A,B) on src1, S(B,C) on src1, T(C,D) on src2.
var (
	RSchema = relation.MustSchema("A:int", "B:int")
	SSchema = relation.MustSchema("B:int", "C:int")
	TSchema = relation.MustSchema("C:int", "D:int")
)

// PaperSources returns the paper's two sources with R preloaded as in
// Table 1 ([1 2]), S empty and T preloaded ([3 4]).
func PaperSources() []system.SourceDef {
	return []system.SourceDef{
		{ID: "src1", Relations: map[string]*relation.Relation{
			"R": relation.FromTuples(RSchema, relation.T(1, 2)),
			"S": relation.New(SSchema),
		}},
		{ID: "src2", Relations: map[string]*relation.Relation{
			"T": relation.FromTuples(TSchema, relation.T(3, 4)),
		}},
	}
}

// PaperViews returns V1 = R⋈S and V2 = S⋈T with the given manager kind.
func PaperViews(kind system.ManagerKind) []system.ViewDef {
	return []system.ViewDef{
		{ID: "V1", Expr: expr.MustJoin(expr.Scan("R", RSchema), expr.Scan("S", SSchema)), Manager: kind},
		{ID: "V2", Expr: expr.MustJoin(expr.Scan("S", SSchema), expr.Scan("T", TSchema)), Manager: kind},
	}
}

// SharedViews builds k views that all read the shared relation S (each
// with a different selection), so every S update is relevant to every
// view — the worst case for the merge process.
func SharedViews(k int, kind system.ManagerKind, delay func(int) int64) ([]system.SourceDef, []system.ViewDef) {
	src := []system.SourceDef{{ID: "src1", Relations: map[string]*relation.Relation{
		"S": relation.New(SSchema),
	}}}
	views := make([]system.ViewDef, k)
	for i := 0; i < k; i++ {
		views[i] = system.ViewDef{
			ID:           msg.ViewID(fmt.Sprintf("V%d", i+1)),
			Expr:         expr.MustSelect(expr.Scan("S", SSchema), expr.Cmp("C", expr.Ge, i%3)),
			Manager:      kind,
			ComputeDelay: delay,
		}
	}
	return src, views
}

// DisjointViews builds k views over k disjoint relations S1..Sk — the
// §6.1 configuration where distributed merge partitions perfectly.
func DisjointViews(k int, kind system.ManagerKind, delay func(int) int64) ([]system.SourceDef, []system.ViewDef) {
	rels := make(map[string]*relation.Relation, k)
	views := make([]system.ViewDef, k)
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("S%d", i+1)
		rels[name] = relation.New(SSchema)
		views[i] = system.ViewDef{
			ID:           msg.ViewID(fmt.Sprintf("V%d", i+1)),
			Expr:         expr.Scan(name, SSchema),
			Manager:      kind,
			ComputeDelay: delay,
		}
	}
	return []system.SourceDef{{ID: "src1", Relations: rels}}, views
}

// SelectiveViews builds k views over the shared relation S, each with a
// highly selective predicate (C = i), so most updates are provably
// irrelevant to most views — the configuration where the ref-[7]
// irrelevance filter pays off.
func SelectiveViews(k int, kind system.ManagerKind, delay func(int) int64) ([]system.SourceDef, []system.ViewDef) {
	src := []system.SourceDef{{ID: "src1", Relations: map[string]*relation.Relation{
		"S": relation.New(SSchema),
	}}}
	views := make([]system.ViewDef, k)
	for i := 0; i < k; i++ {
		views[i] = system.ViewDef{
			ID:           msg.ViewID(fmt.Sprintf("V%d", i+1)),
			Expr:         expr.MustSelect(expr.Scan("S", SSchema), expr.Cmp("C", expr.Eq, i)),
			Manager:      kind,
			ComputeDelay: delay,
		}
	}
	return src, views
}

// Generator produces a stream of valid source transactions. It mirrors the
// contents of the relations it writes so deletions always target existing
// tuples.
type Generator struct {
	rng  *rand.Rand
	rels []genRel
	// DeleteFraction is the probability a generated write is a deletion
	// (when a tuple exists to delete).
	DeleteFraction float64
	// MultiWriteFraction is the probability a transaction carries two
	// writes (§6.2).
	MultiWriteFraction float64
	// KeyRange bounds generated attribute values.
	KeyRange int
}

type genRel struct {
	name   string
	schema *relation.Schema
	source msg.SourceID
	live   *relation.Relation
}

// NewGenerator builds a generator over the given relations. initial, when
// non-nil, seeds the live mirror (must match the cluster's initial load).
func NewGenerator(seed int64, sources []system.SourceDef) *Generator {
	g := &Generator{rng: rand.New(rand.NewSource(seed)), DeleteFraction: 0.3, KeyRange: 6}
	for _, s := range sources {
		for name, rel := range s.Relations {
			g.rels = append(g.rels, genRel{name: name, schema: rel.Schema(), source: s.ID, live: rel.Clone()})
		}
	}
	// Deterministic order regardless of map iteration.
	for i := 1; i < len(g.rels); i++ {
		for j := i; j > 0 && g.rels[j].name < g.rels[j-1].name; j-- {
			g.rels[j], g.rels[j-1] = g.rels[j-1], g.rels[j]
		}
	}
	return g
}

// Restrict limits generated writes to the named relations (views may still
// read others, which then never change — useful for boundary-aligned
// workloads).
func (g *Generator) Restrict(names ...string) {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	var rels []genRel
	for _, r := range g.rels {
		if keep[r.name] {
			rels = append(rels, r)
		}
	}
	g.rels = rels
}

// Txn generates the next transaction: a source plus one or two writes.
func (g *Generator) Txn() (msg.SourceID, []msg.Write) {
	r := &g.rels[g.rng.Intn(len(g.rels))]
	writes := []msg.Write{g.write(r)}
	if g.rng.Float64() < g.MultiWriteFraction {
		// Second write on a relation of the same source (§2 restricts a
		// transaction to one source; ExecuteGlobal callers may ignore it).
		for tries := 0; tries < 4; tries++ {
			r2 := &g.rels[g.rng.Intn(len(g.rels))]
			if r2.source == r.source {
				writes = append(writes, g.write(r2))
				break
			}
		}
	}
	return r.source, writes
}

func (g *Generator) write(r *genRel) msg.Write {
	if g.rng.Float64() < g.DeleteFraction && !r.live.Empty() {
		tuples := r.live.Tuples()
		t := tuples[g.rng.Intn(len(tuples))]
		if err := r.live.Delete(t, 1); err != nil {
			panic(err)
		}
		return msg.Write{Relation: r.name, Delta: relation.DeleteDelta(r.schema, t)}
	}
	t := g.tuple(r.schema)
	if err := r.live.Insert(t, 1); err != nil {
		panic(err)
	}
	return msg.Write{Relation: r.name, Delta: relation.InsertDelta(r.schema, t)}
}

func (g *Generator) tuple(s *relation.Schema) relation.Tuple {
	t := make(relation.Tuple, s.Len())
	for i := 0; i < s.Len(); i++ {
		switch s.Attr(i).Type {
		case relation.Int:
			t[i] = relation.IntVal(int64(g.rng.Intn(g.KeyRange)))
		case relation.String:
			t[i] = relation.StringVal(fmt.Sprintf("k%d", g.rng.Intn(g.KeyRange)))
		case relation.Float:
			t[i] = relation.FloatVal(float64(g.rng.Intn(g.KeyRange)))
		case relation.Bool:
			t[i] = relation.BoolVal(g.rng.Intn(2) == 0)
		}
	}
	return t
}
