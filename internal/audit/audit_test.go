package audit

import (
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/relation"
	"whips/internal/warehouse"
)

var xSchema = relation.MustSchema("X:int")

func newWarehouse(epochs int) *warehouse.Warehouse {
	w := warehouse.New(map[msg.ViewID]*relation.Relation{
		"V1": relation.New(xSchema),
		"V2": relation.FromTuples(xSchema, relation.T(0)),
	}, warehouse.WithStateLog())
	for i := 1; i <= epochs; i++ {
		w.Handle(msg.SubmitTxn{
			Txn: msg.WarehouseTxn{
				ID:   msg.TxnID(i),
				Rows: []msg.UpdateID{msg.UpdateID(i)},
				Writes: []msg.ViewWrite{
					{View: "V1", Upto: msg.UpdateID(i), Delta: relation.InsertDelta(xSchema, relation.T(i))},
					{View: "V2", Upto: msg.UpdateID(i), Delta: relation.InsertDelta(xSchema, relation.T(-i))},
				},
			},
			From: "merge:0",
		}, int64(i))
	}
	return w
}

// localFP builds the Local fingerprint func a follower site uses: the
// current snapshot when the epoch matches, a retained historical one
// otherwise.
func localFP(w *warehouse.Warehouse) func(epoch int64) (FP, bool) {
	return func(epoch int64) (FP, bool) {
		if s := w.Snapshot(); s.Epoch == epoch {
			return SnapshotFP(s), true
		}
		s, err := w.SnapshotAt(int(epoch))
		if err != nil {
			return FP{}, false
		}
		return SnapshotFP(s), true
	}
}

// newTestAuditor builds an auditor whose wall-clock loop never fires (the
// interval is an hour), so tests drive ticks through RunOnce.
func newTestAuditor(t *testing.T, cfg Config) (*Auditor, *obs.Pipeline) {
	t.Helper()
	pipe := obs.NewPipeline()
	cfg.Interval = time.Hour
	cfg.Obs = pipe
	cfg.Logf = t.Logf
	a := New(cfg)
	t.Cleanup(func() { a.Close() })
	return a, pipe
}

func TestAuditHealthy(t *testing.T) {
	w := newWarehouse(5)
	local := localFP(w)
	a, pipe := newTestAuditor(t, Config{
		Head:    func() int64 { return w.Snapshot().Epoch },
		Local:   local,
		Remote:  func(e int64) (FP, bool, error) { fp, ok := local(e); return fp, ok, nil },
		History: 4,
		Seed:    1,
	})
	for i := 0; i < 10; i++ {
		a.RunOnce()
	}
	if v := a.Violations(); v != 0 {
		t.Fatalf("healthy audit found %d violations, witness %+v", v, a.LastWitness())
	}
	// Head + one sampled historical epoch per tick.
	if c := a.Checks(); c != 20 {
		t.Fatalf("audit ran %d checks, want 20", c)
	}
	if got := pipe.Reg().Snapshot().Counters["audit_checks_total"]; got != 20 {
		t.Fatalf("audit_checks_total = %d, want 20", got)
	}
}

func TestAuditDetectsCorruption(t *testing.T) {
	w := newWarehouse(3)
	local := localFP(w)
	// The corruption hook from the acceptance criteria: the follower's V2
	// silently diverges at every epoch.
	corrupt := func(epoch int64) (FP, bool) {
		fp, ok := local(epoch)
		if !ok {
			return fp, ok
		}
		views := make(map[msg.ViewID]string, len(fp.Views))
		for k, v := range fp.Views {
			views[k] = v
		}
		views["V2"] = "deadbeef"
		return FP{Epoch: fp.Epoch, Fingerprint: fp.Fingerprint + "-corrupt", Views: views}, true
	}
	a, _ := newTestAuditor(t, Config{
		Head:   func() int64 { return w.Snapshot().Epoch },
		Local:  corrupt,
		Remote: func(e int64) (FP, bool, error) { fp, ok := local(e); return fp, ok, nil },
	})
	a.RunOnce()
	if v := a.Violations(); v != 1 {
		t.Fatalf("corrupted replica produced %d violations, want 1", v)
	}
	wit := a.LastWitness()
	if wit == nil {
		t.Fatal("no witness recorded")
	}
	if wit.Epoch != 3 {
		t.Fatalf("witness names epoch %d, want 3", wit.Epoch)
	}
	// Minimization: only the diverged view appears.
	if len(wit.Views) != 1 || wit.Views[0].View != "V2" {
		t.Fatalf("witness views = %+v, want exactly V2", wit.Views)
	}
	if wit.Views[0].Local != "deadbeef" || wit.Views[0].Remote == "deadbeef" {
		t.Fatalf("witness did not carry both sides: %+v", wit.Views[0])
	}
}

func TestAuditDetectsCorruptionWithinOneInterval(t *testing.T) {
	w := newWarehouse(2)
	local := localFP(w)
	pipe := obs.NewPipeline()
	a := New(Config{
		Interval: 10 * time.Millisecond,
		Head:     func() int64 { return w.Snapshot().Epoch },
		Local: func(e int64) (FP, bool) {
			fp, ok := local(e)
			fp.Fingerprint = "corrupt-" + fp.Fingerprint
			return fp, ok
		},
		Remote: func(e int64) (FP, bool, error) { fp, ok := local(e); return fp, ok, nil },
		Obs:    pipe,
		Logf:   t.Logf,
	})
	defer a.Close()
	deadline := time.Now().Add(5 * time.Second)
	for a.Violations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("live audit loop never flagged the corrupted epoch")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAuditSkips(t *testing.T) {
	w := newWarehouse(1)
	local := localFP(w)
	a, pipe := newTestAuditor(t, Config{
		Head:   func() int64 { return w.Snapshot().Epoch },
		Local:  local,
		Remote: func(e int64) (FP, bool, error) { return FP{}, false, nil }, // peer evicted everything
	})
	a.RunOnce()
	if v := a.Violations(); v != 0 {
		t.Fatalf("unretained remote epoch counted as %d violations", v)
	}
	if c := a.Checks(); c != 0 {
		t.Fatalf("skipped comparison still counted %d checks", c)
	}
	if got := pipe.Reg().Snapshot().Counters["audit_skips_total"]; got != 1 {
		t.Fatalf("audit_skips_total = %d, want 1", got)
	}

	// A node serving nothing yet also skips rather than erroring.
	b, bpipe := newTestAuditor(t, Config{
		Head:   func() int64 { return -1 },
		Local:  local,
		Remote: func(e int64) (FP, bool, error) { fp, ok := local(e); return fp, ok, nil },
	})
	b.RunOnce()
	if got := bpipe.Reg().Snapshot().Counters["audit_skips_total"]; got != 1 {
		t.Fatalf("headless audit_skips_total = %d, want 1", got)
	}
}

func TestAuditPromptnessGauge(t *testing.T) {
	w := newWarehouse(1)
	local := localFP(w)
	// Synthetic merge-side events: everything for update 1 was on hand at
	// 5ms but the submit only happened at 12ms — a 7ms §4.4 gap.
	events := []obs.Event{
		{TS: 1_000_000, Node: "merge:0", Stage: obs.StageREL, Seq: 1},
		{TS: 5_000_000, Node: "merge:0", Stage: obs.StageALRecv, Seq: 1},
		{TS: 12_000_000, Node: "merge:0", Stage: obs.StageSubmit, Rows: []int64{1}},
	}
	a, pipe := newTestAuditor(t, Config{
		Head:   func() int64 { return w.Snapshot().Epoch },
		Local:  local,
		Remote: func(e int64) (FP, bool, error) { fp, ok := local(e); return fp, ok, nil },
		Events: func() []obs.Event { return events },
	})
	a.RunOnce()
	if got := pipe.Reg().Snapshot().Gauges["audit_promptness_gap_max_ms"]; got != 7 {
		t.Fatalf("audit_promptness_gap_max_ms = %d, want 7", got)
	}
}

func TestFingerprintEndpointRoundTrip(t *testing.T) {
	w := newWarehouse(4)
	srv := httptest.NewServer(FingerprintHandler(
		func() *warehouse.Snapshot { return w.Snapshot() },
		func(epoch int64) (*warehouse.Snapshot, error) { return w.SnapshotAt(int(epoch)) },
	))
	defer srv.Close()
	remote := HTTPRemote(srv.URL)

	head := w.Snapshot()
	for _, epoch := range []int64{head.Epoch, 2} {
		fp, ok, err := remote(epoch)
		if err != nil || !ok {
			t.Fatalf("epoch %d: ok=%v err=%v", epoch, ok, err)
		}
		s, err := w.SnapshotAt(int(epoch))
		if err != nil {
			t.Fatal(err)
		}
		want := SnapshotFP(s)
		if fp.Epoch != want.Epoch || fp.Fingerprint != want.Fingerprint {
			t.Fatalf("epoch %d round-trip mismatch: got %+v want %+v", epoch, fp, want)
		}
		if len(fp.Views) != len(want.Views) || fp.Views["V1"] != want.Views["V1"] {
			t.Fatalf("epoch %d per-view hashes did not survive HTTP: %+v", epoch, fp.Views)
		}
	}
	// Unknown epochs are found=false (auditor skip), never an error.
	if _, ok, err := remote(999); ok || err != nil {
		t.Fatalf("evicted epoch: ok=%v err=%v, want found=false nil", ok, err)
	}
}

func TestHTTPRemoteAddsScheme(t *testing.T) {
	w := newWarehouse(1)
	srv := httptest.NewServer(FingerprintHandler(func() *warehouse.Snapshot { return w.Snapshot() }, nil))
	defer srv.Close()
	hostport := strings.TrimPrefix(srv.URL, "http://")
	if _, ok, err := HTTPRemote(hostport)(1); !ok || err != nil {
		t.Fatalf("bare host:port base failed: ok=%v err=%v", ok, err)
	}
}

// TestAuditSurvivesFailover is the failover regression: a follower audit
// pinned (via HTTPRemoteResolver) to whatever address currently resolves
// as the primary keeps passing across a promotion — ticks against the dead
// old primary count as skips, never violations, and once the resolver
// points at the new primary's /fingerprint the checks resume and agree.
func TestAuditSurvivesFailover(t *testing.T) {
	// Old and new primaries hold the same committed history (the promotion
	// seeded the new one from the replicated snapshot).
	oldPrim := newWarehouse(4)
	newPrim := newWarehouse(4)

	oldSrv := httptest.NewServer(FingerprintHandler(
		func() *warehouse.Snapshot { return oldPrim.Snapshot() },
		func(epoch int64) (*warehouse.Snapshot, error) { return oldPrim.SnapshotAt(int(epoch)) },
	))
	newSrv := httptest.NewServer(FingerprintHandler(
		func() *warehouse.Snapshot { return newPrim.Snapshot() },
		func(epoch int64) (*warehouse.Snapshot, error) { return newPrim.SnapshotAt(int(epoch)) },
	))
	defer newSrv.Close()

	// The follower being audited mirrors the shared history.
	follower := newWarehouse(4)
	var primaryAddr atomic.Value
	primaryAddr.Store(oldSrv.URL)
	a, _ := newTestAuditor(t, Config{
		Head:  func() int64 { return follower.Snapshot().Epoch },
		Local: localFP(follower),
		Remote: HTTPRemoteResolver(func() string {
			v, _ := primaryAddr.Load().(string)
			return v
		}),
		History: 3,
		Seed:    1,
	})
	a.RunOnce()
	if a.Violations() != 0 || a.Checks() == 0 {
		t.Fatalf("pre-failover audit: checks=%d violations=%d", a.Checks(), a.Violations())
	}
	preChecks := a.Checks()

	// The primary dies. Ticks now fail to reach it: skips, not violations.
	oldSrv.Close()
	a.RunOnce()
	if a.Violations() != 0 {
		t.Fatalf("audit against a dead primary produced %d violations, want skips", a.Violations())
	}
	if a.Checks() != preChecks {
		t.Fatalf("audit completed checks against a dead primary: %d -> %d", preChecks, a.Checks())
	}

	// Failover: the resolver re-resolves to the promoted primary, and the
	// audit resumes cleanly without restarting the auditor.
	primaryAddr.Store(newSrv.URL)
	a.RunOnce()
	if a.Checks() <= preChecks {
		t.Fatalf("audit did not resume after re-resolving: checks still %d", a.Checks())
	}
	if v := a.Violations(); v != 0 {
		t.Fatalf("post-failover audit found %d violations, witness %+v", v, a.LastWitness())
	}

	// An empty resolution ("no primary known yet") is also a skip.
	primaryAddr.Store("")
	before := a.Checks()
	a.RunOnce()
	if a.Checks() != before || a.Violations() != 0 {
		t.Fatalf("unresolved-primary tick: checks %d -> %d, violations %d",
			before, a.Checks(), a.Violations())
	}
}
