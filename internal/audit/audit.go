// Package audit implements the always-on MVC audit: a sampling auditor
// that periodically fingerprints served epochs on a node and compares them
// against an authoritative peer (normally: a follower auditing itself
// against its primary). The paper's multiple view consistency guarantee is
// only as good as the states actually served — the auditor turns the
// replication consistency check that previously lived in offline test
// judges (repl.Fingerprint) into a continuously exported pair of counters:
//
//	audit_checks_total      epochs compared
//	audit_violations_total  fingerprint mismatches (must stay 0)
//	audit_skips_total       comparisons abandoned (epoch evicted, peer away)
//
// On a mismatch the auditor minimizes the witness: it diffs the per-view
// fingerprints (repl.FingerprintViews) so the log names the specific
// diverged views, not just "epoch E differs".
//
// The auditor also recomputes the §4.4 promptness gap from live trace
// events when given an event source, exporting the worst currently
// observable merge-side sit time as audit_promptness_gap_max_ms.
package audit

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/repl"
	"whips/internal/warehouse"
)

// FP is one epoch's consistency fingerprint: the whole-state hash the
// comparison runs on, plus per-view hashes for witness minimization. It is
// also the JSON body of the /fingerprint debug endpoint.
type FP struct {
	Epoch       int64                       `json:"epoch"`
	Fingerprint string                      `json:"fingerprint"`
	Views       map[msg.ViewID]string       `json:"views"`
	Upto        map[msg.ViewID]msg.UpdateID `json:"upto,omitempty"`
}

// SnapshotFP fingerprints a served snapshot.
func SnapshotFP(s *warehouse.Snapshot) FP {
	upto := make(map[msg.ViewID]msg.UpdateID, len(s.Views()))
	for _, id := range s.Views() {
		upto[id] = s.Upto(id)
	}
	return FP{Epoch: s.Epoch, Fingerprint: repl.Fingerprint(s), Views: repl.FingerprintViews(s), Upto: upto}
}

// Config configures an Auditor.
type Config struct {
	// Interval between audit ticks (default 2s).
	Interval time.Duration
	// Head returns the newest locally served epoch, or a negative value
	// when the node serves nothing yet.
	Head func() int64
	// Local fingerprints a locally served epoch; ok=false when the epoch is
	// no longer retained. Tests wrap this to inject corruption.
	Local func(epoch int64) (FP, bool)
	// Remote fetches the authoritative fingerprint for an epoch (normally
	// HTTPRemote pointed at the primary's debug address); ok=false when the
	// peer no longer retains it.
	Remote func(epoch int64) (FP, bool, error)
	// History is the window of past epochs behind head that each tick
	// samples one of (0 = audit only the currently served epoch).
	History int64
	// Seed makes the historical sampling deterministic.
	Seed int64
	// Events, when set, supplies live trace events for the §4.4 promptness
	// recompute (typically RingSink.Since wrapped to return everything).
	Events func() []obs.Event
	// Obs receives the audit counters.
	Obs *obs.Pipeline
	// Logf, when set, receives violation witnesses and lifecycle notes.
	Logf func(format string, args ...any)
}

// ViewDiff names one diverged view inside a witness.
type ViewDiff struct {
	View   msg.ViewID `json:"view"`
	Local  string     `json:"local"`
	Remote string     `json:"remote"`
}

// Witness is the minimized evidence of one audit violation.
type Witness struct {
	Epoch  int64      `json:"epoch"`
	Local  string     `json:"local"`
	Remote string     `json:"remote"`
	Views  []ViewDiff `json:"views"`
}

// Auditor runs the sampling audit loop.
type Auditor struct {
	cfg  Config
	rng  *rand.Rand
	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	last *Witness

	checks     *obs.Counter
	violations *obs.Counter
	skips      *obs.Counter
	promptG    *obs.Gauge
}

// New builds an auditor and starts its loop. Head, Local and Remote are
// required.
func New(cfg Config) *Auditor {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	a := &Auditor{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.Obs != nil {
		r := cfg.Obs.Reg()
		a.checks = r.Counter("audit_checks_total")
		a.violations = r.Counter("audit_violations_total")
		a.skips = r.Counter("audit_skips_total")
		if cfg.Events != nil {
			a.promptG = r.Gauge("audit_promptness_gap_max_ms")
		}
	}
	go a.run()
	return a
}

func (a *Auditor) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func (a *Auditor) run() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.RunOnce()
		}
	}
}

// Close stops the audit loop.
func (a *Auditor) Close() error {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
	return nil
}

// Violations returns the number of mismatches detected so far.
func (a *Auditor) Violations() int64 { return a.violations.Value() }

// Checks returns the number of comparisons completed so far.
func (a *Auditor) Checks() int64 { return a.checks.Value() }

// LastWitness returns the most recent violation's minimized witness, or
// nil when the audit has never failed.
func (a *Auditor) LastWitness() *Witness {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last
}

// RunOnce performs one audit tick synchronously: the currently served
// epoch is always compared, and when History > 0 one randomly sampled
// older epoch is too. Exposed so tests drive the auditor without waiting
// out wall-clock intervals.
func (a *Auditor) RunOnce() {
	head := a.cfg.Head()
	if head < 0 {
		a.skips.Inc()
		a.promptness()
		return
	}
	a.auditEpoch(head)
	if a.cfg.History > 0 && head > 0 {
		window := a.cfg.History
		if window > head {
			window = head
		}
		a.auditEpoch(head - 1 - a.rng.Int63n(window))
	}
	a.promptness()
}

func (a *Auditor) auditEpoch(epoch int64) {
	local, ok := a.cfg.Local(epoch)
	if !ok {
		a.skips.Inc()
		return
	}
	remote, ok, err := a.cfg.Remote(epoch)
	if err != nil {
		a.skips.Inc()
		a.logf("audit: epoch %d: remote fingerprint: %v", epoch, err)
		return
	}
	if !ok {
		a.skips.Inc()
		return
	}
	a.checks.Inc()
	if local.Fingerprint == remote.Fingerprint {
		return
	}
	a.violations.Inc()
	w := &Witness{Epoch: epoch, Local: local.Fingerprint, Remote: remote.Fingerprint}
	w.Views = diffViews(local.Views, remote.Views)
	a.mu.Lock()
	a.last = w
	a.mu.Unlock()
	wj, _ := json.Marshal(w)
	a.logf("audit: VIOLATION epoch %d: %s", epoch, wj)
}

// diffViews minimizes a witness to the diverged views, sorted by name.
// Views present on only one side diff against "".
func diffViews(local, remote map[msg.ViewID]string) []ViewDiff {
	names := map[msg.ViewID]bool{}
	for v := range local {
		names[v] = true
	}
	for v := range remote {
		names[v] = true
	}
	var out []ViewDiff
	for v := range names {
		if local[v] != remote[v] {
			out = append(out, ViewDiff{View: v, Local: local[v], Remote: remote[v]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].View < out[j].View })
	return out
}

// promptness recomputes the §4.4 gap from live events and exports the
// worst currently observable one.
func (a *Auditor) promptness() {
	if a.cfg.Events == nil {
		return
	}
	var max int64
	for _, gap := range obs.PromptnessGaps(a.cfg.Events()) {
		if gap > max {
			max = gap
		}
	}
	a.promptG.Set(max / int64(time.Millisecond))
}

// ---------------------------------------------------------------- plumbing

// FingerprintHandler serves /fingerprint: the current snapshot's FP by
// default, a retained historical epoch's with ?epoch=N. current returns
// nil before the node serves anything; at returns an error for evicted or
// unknown epochs (served as found=false, HTTP 404, which the auditor
// counts as a skip, not a violation).
func FingerprintHandler(current func() *warehouse.Snapshot, at func(epoch int64) (*warehouse.Snapshot, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var snap *warehouse.Snapshot
		if v := r.URL.Query().Get("epoch"); v != "" {
			epoch, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad epoch", http.StatusBadRequest)
				return
			}
			if cur := current(); cur != nil && cur.Epoch == epoch {
				snap = cur
			} else if at != nil {
				snap, _ = at(epoch)
			}
		} else {
			snap = current()
		}
		w.Header().Set("Content-Type", "application/json")
		if snap == nil {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]any{"found": false})
			return
		}
		fp := SnapshotFP(snap)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"found":       true,
			"epoch":       fp.Epoch,
			"fingerprint": fp.Fingerprint,
			"views":       fp.Views,
			"upto":        fp.Upto,
		})
	}
}

// HTTPRemote builds a Remote fetcher polling a peer's /fingerprint debug
// endpoint. base is the peer's debug address ("host:port" or a full URL).
func HTTPRemote(base string) func(epoch int64) (FP, bool, error) {
	return HTTPRemoteResolver(func() string { return base })
}

// HTTPRemoteResolver is HTTPRemote with the peer address resolved per
// request instead of captured once — the failover path: after a promotion
// the audited primary is a different process at a different address, and
// an auditor pinned to the dead root would fail every interval forever.
// resolve returns the current primary's debug address ("" when unknown,
// which surfaces as an error and counts as an audit skip, not a
// violation).
func HTTPRemoteResolver(resolve func() string) func(epoch int64) (FP, bool, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	return func(epoch int64) (FP, bool, error) {
		base := resolve()
		if base == "" {
			return FP{}, false, fmt.Errorf("fingerprint: no primary address resolved")
		}
		if !hasScheme(base) {
			base = "http://" + base
		}
		u := fmt.Sprintf("%s/fingerprint?epoch=%s", base, url.QueryEscape(strconv.FormatInt(epoch, 10)))
		resp, err := client.Get(u)
		if err != nil {
			return FP{}, false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return FP{}, false, nil
		}
		if resp.StatusCode != http.StatusOK {
			return FP{}, false, fmt.Errorf("fingerprint: %s", resp.Status)
		}
		var body struct {
			Found       bool                        `json:"found"`
			Epoch       int64                       `json:"epoch"`
			Fingerprint string                      `json:"fingerprint"`
			Views       map[msg.ViewID]string       `json:"views"`
			Upto        map[msg.ViewID]msg.UpdateID `json:"upto"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return FP{}, false, err
		}
		if !body.Found {
			return FP{}, false, nil
		}
		return FP{Epoch: body.Epoch, Fingerprint: body.Fingerprint, Views: body.Views, Upto: body.Upto}, true, nil
	}
}

func hasScheme(s string) bool {
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == ':':
			return i+2 < len(s) && s[i+1] == '/' && s[i+2] == '/'
		case s[i] == '/' || s[i] == '?':
			return false
		}
	}
	return false
}
