// Package plan builds and drives a shared maintenance-plan DAG for
// multi-query optimization of view maintenance (Mistry et al., PAPERS.md):
// the common subexpressions of many view definitions become materialized
// interior nodes that are maintained once per source update, with their
// deltas fanned out to every dependent view.
//
// Structure. Each view expression is Optimized, then rewritten bottom-up:
// any non-leaf subexpression whose canonical form (expr.CanonicalKey —
// structural hashing over the optimized tree, renames normalized) occurs
// at least twice across the view set becomes a DAG node. A node stores a
// shallow expression in which nested shared subtrees are themselves scans
// of earlier nodes ("@plan/N" names, distinct from any base relation), and
// materializes its contents as an ordinary relation. The DAG therefore
// implements expr.Database over base-relation replicas plus node contents,
// and node N's delta is computed with the same counting-algorithm
// machinery (expr.Delta over a StepDB) the per-view managers use — just
// once, instead of once per view that mentions the subexpression.
//
// Maintenance. Apply treats a source transaction's writes as a sequence;
// every node in topological order contributes its own signed delta as a
// further "virtual write" against its node name. Because each write —
// base or virtual — targets exactly one relation, a node's inputs evolve
// identically under the subsequence of writes relevant to it, and the
// telescoping sum over any write order lands on the same final state; so
// each node delta equals exactly (node contents at post-transaction
// state) − (node contents at pre-transaction state), and each per-view
// root delta equals what that view's manager would have computed from its
// own private tree. The DAG changes how action-list deltas are computed,
// never what they contain: MVC guarantees downstream are untouched.
package plan

import (
	"fmt"
	"sort"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
)

// NamePrefix prefixes every interior-node relation name, keeping the node
// namespace disjoint from base relations (which come from source schemas
// and never contain '@').
const NamePrefix = "@plan/"

// View pairs a view with its definition, the unit of DAG construction.
type View struct {
	ID   msg.ViewID
	Expr expr.Expr
}

// node is one materialized shared subexpression.
type node struct {
	name   string    // "@plan/N" relation name
	e      expr.Expr // shallow: nested shared subtrees appear as Scans of earlier nodes
	reads  []string  // relation names e reads (base names and earlier node names)
	schema *relation.Schema
	key    string // canonical key of the subexpression (diagnostics)
}

// Stats reports DAG shape and work counters.
type Stats struct {
	Nodes      int   // materialized shared subexpressions
	Views      int   // views fanned out from the DAG
	Applies    int64 // source updates applied
	NodeDeltas int64 // interior-node delta evaluations performed
	ViewDeltas int64 // per-view root delta evaluations performed
}

// DAG is a shared maintenance plan over a set of views. It is built once
// from the view definitions and then advanced update by update; Apply is
// single-threaded (the integrator owns it), while the expression
// evaluation inside one Apply may fan out through a worker pool upstream.
type DAG struct {
	nodes     []*node                  // topological order (children first)
	rels      map[string]*relation.Relation // base replicas + node contents
	baseNames []string                 // sorted distinct base relations
	roots     map[msg.ViewID]expr.Expr // rewritten view expressions
	rootReads map[msg.ViewID]map[string]bool // base relations of the ORIGINAL view expr
	viewOrder []msg.ViewID             // sorted, for deterministic iteration
	stats     Stats
}

// Build constructs the DAG for views over the initial database state.
// Every base relation any view mentions is cloned out of init, and every
// shared node is materialized at that state. View expressions are
// Optimized before canonicalization, mirroring what the per-view baseline
// evaluates, so sharing decisions see the same trees the managers would.
func Build(views []View, init expr.Database) (*DAG, error) {
	g := &DAG{
		rels:      map[string]*relation.Relation{},
		roots:     map[msg.ViewID]expr.Expr{},
		rootReads: map[msg.ViewID]map[string]bool{},
	}
	optimized := make([]expr.Expr, len(views))
	for i, v := range views {
		if _, dup := g.roots[v.ID]; dup {
			return nil, fmt.Errorf("plan: duplicate view %s", v.ID)
		}
		g.roots[v.ID] = nil // reserve; filled after rewrite
		optimized[i] = expr.Optimize(v.Expr)
	}

	// Pass 1: count canonical keys of every non-leaf subexpression across
	// the whole view set. A key seen twice — across views or within one
	// (self-join) — marks a shared subexpression.
	counts := map[string]int{}
	var count func(e expr.Expr)
	count = func(e expr.Expr) {
		kids := expr.Children(e)
		if len(kids) == 0 {
			return
		}
		if key, ok := expr.CanonicalKey(e); ok {
			counts[key]++
		}
		for _, c := range kids {
			count(c)
		}
	}
	for _, e := range optimized {
		count(e)
	}

	// Pass 2: rewrite each view bottom-up, creating one node per shared
	// key on first encounter. Children are rewritten before their parent,
	// so g.nodes ends up in topological order.
	byKey := map[string]*node{}
	var rewrite func(e expr.Expr) (expr.Expr, error)
	rewrite = func(e expr.Expr) (expr.Expr, error) {
		kids := expr.Children(e)
		if len(kids) == 0 {
			return e, nil
		}
		rw := make([]expr.Expr, len(kids))
		for i, c := range kids {
			var err error
			if rw[i], err = rewrite(c); err != nil {
				return nil, err
			}
		}
		re, err := expr.Rebuild(e, rw)
		if err != nil {
			return nil, fmt.Errorf("plan: rebuilding %T: %w", e, err)
		}
		key, ok := expr.CanonicalKey(e)
		if !ok || counts[key] < 2 {
			return re, nil
		}
		n := byKey[key]
		if n == nil {
			n = &node{
				name:   fmt.Sprintf("%s%d", NamePrefix, len(g.nodes)),
				e:      re,
				reads:  re.BaseRelations(),
				schema: e.Schema(),
				key:    key,
			}
			byKey[key] = n
			g.nodes = append(g.nodes, n)
		}
		return expr.Scan(n.name, n.schema), nil
	}
	for i, v := range views {
		root, err := rewrite(optimized[i])
		if err != nil {
			return nil, fmt.Errorf("plan: view %s: %w", v.ID, err)
		}
		g.roots[v.ID] = root
		// Relevance uses the base relations of the expression AS GIVEN —
		// the same set the integrator's matcher routes on — so every
		// manager copy of an update is guaranteed a delta, even when
		// further optimization here pruned a base the matcher still sees.
		reads := map[string]bool{}
		for _, b := range v.Expr.BaseRelations() {
			reads[b] = true
		}
		g.rootReads[v.ID] = reads
		g.viewOrder = append(g.viewOrder, v.ID)
	}
	sort.Slice(g.viewOrder, func(i, j int) bool { return g.viewOrder[i] < g.viewOrder[j] })

	// Replicate every base relation the optimized views mention, then
	// materialize node contents in topological order (each node may read
	// earlier nodes through g's Database view of itself).
	baseSeen := map[string]bool{}
	for i := range views {
		for _, b := range optimized[i].BaseRelations() {
			if baseSeen[b] {
				continue
			}
			baseSeen[b] = true
			r, err := init.Relation(b)
			if err != nil {
				return nil, fmt.Errorf("plan: base relation %q: %w", b, err)
			}
			g.rels[b] = r.Clone()
			g.baseNames = append(g.baseNames, b)
		}
	}
	sort.Strings(g.baseNames)
	for _, n := range g.nodes {
		r, err := expr.Eval(n.e, g)
		if err != nil {
			return nil, fmt.Errorf("plan: materializing %s (%s): %w", n.name, n.key, err)
		}
		g.rels[n.name] = r
	}
	g.stats.Nodes = len(g.nodes)
	g.stats.Views = len(views)
	return g, nil
}

// Relation implements expr.Database over base replicas and node contents.
func (g *DAG) Relation(name string) (*relation.Relation, error) {
	r, ok := g.rels[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown relation %q", name)
	}
	return r, nil
}

// Apply advances the DAG through one committed source transaction and
// returns the maintenance delta of every view whose definition mentions a
// written relation — a superset of the integrator's (possibly filtered)
// relevant set, so every manager copy of the update can carry its delta.
// Returned deltas are fresh objects the caller owns. Apply must be called
// in global sequence order; on error the DAG is unusable (the integrator
// treats that as fatal, like a FIFO violation).
func (g *DAG) Apply(u msg.Update) (map[msg.ViewID]*relation.Delta, error) {
	// ext is the transaction's write sequence, extended with one virtual
	// write per affected node as deltas are computed in topological order.
	ext := make([]expr.Write, 0, len(u.Writes)+len(g.nodes))
	written := make(map[string]bool, len(u.Writes))
	for _, w := range u.Writes {
		ext = append(ext, expr.Write{Relation: w.Relation, Delta: w.Delta})
		written[w.Relation] = true
	}
	for _, n := range g.nodes {
		d, evaluated, err := g.deltaOver(n.e, n.schema, n.reads, ext)
		if err != nil {
			return nil, fmt.Errorf("plan: delta of %s (%s): %w", n.name, n.key, err)
		}
		if evaluated {
			g.stats.NodeDeltas++
		}
		if !d.Empty() {
			ext = append(ext, expr.Write{Relation: n.name, Delta: d})
			written[n.name] = true
		}
	}

	out := make(map[msg.ViewID]*relation.Delta)
	for _, id := range g.viewOrder {
		reads := g.rootReads[id]
		relevant := false
		for _, w := range u.Writes {
			if reads[w.Relation] {
				relevant = true
				break
			}
		}
		if !relevant {
			continue
		}
		root := g.roots[id]
		d, evaluated, err := g.deltaOver(root, root.Schema(), root.BaseRelations(), ext)
		if err != nil {
			return nil, fmt.Errorf("plan: delta of view %s: %w", id, err)
		}
		if evaluated {
			g.stats.ViewDeltas++
		}
		out[id] = d
	}

	// Only after every delta is computed against the pre-transaction state
	// does the DAG advance: base writes and node deltas alike.
	for _, w := range ext {
		r, ok := g.rels[w.Relation]
		if !ok {
			// A base relation no view mentions: writes to it are irrelevant.
			continue
		}
		if err := r.Apply(w.Delta); err != nil {
			return nil, fmt.Errorf("plan: applying write to %q: %w", w.Relation, err)
		}
	}
	g.stats.Applies++
	return out, nil
}

// deltaOver computes the signed delta of expression e (output schema sch,
// reading relation set reads) across the write sequence ext, evaluated
// against g's current (pre-transaction) state. Writes to relations e does
// not read cannot change its inputs and are skipped entirely; each
// relevant write's delta rule runs at the state produced by its relevant
// predecessors. The StepDB clone after the final relevant write is
// skipped — in the common one-relevant-write case no relation is cloned
// at all.
func (g *DAG) deltaOver(e expr.Expr, sch *relation.Schema, reads []string, ext []expr.Write) (*relation.Delta, bool, error) {
	var idx []int
	for i, w := range ext {
		for _, r := range reads {
			if r == w.Relation {
				idx = append(idx, i)
				break
			}
		}
	}
	if len(idx) == 0 {
		return relation.NewDelta(sch), false, nil
	}
	total := relation.NewDelta(sch)
	sdb := expr.NewStepDB(g)
	for k, i := range idx {
		step, err := expr.Delta(e, ext[i].Relation, ext[i].Delta, sdb)
		if err != nil {
			return nil, false, err
		}
		if err := total.Merge(step); err != nil {
			return nil, false, err
		}
		if k < len(idx)-1 {
			if err := sdb.Advance(ext[i].Relation, ext[i].Delta); err != nil {
				return nil, false, err
			}
		}
	}
	return total, true, nil
}

// Stats returns a snapshot of the DAG's shape and work counters.
func (g *DAG) Stats() Stats { return g.stats }

// Nodes returns the shared-node names with their canonical keys, in
// topological order — for diagnostics and tests.
func (g *DAG) Nodes() map[string]string {
	out := make(map[string]string, len(g.nodes))
	for _, n := range g.nodes {
		out[n.name] = n.key
	}
	return out
}

// Root returns the rewritten (DAG-subscribing) expression of a view, or
// nil if the view is unknown.
func (g *DAG) Root(id msg.ViewID) expr.Expr { return g.roots[id] }
