package plan

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"whips/internal/wire"
)

// dagState is the durable form of a DAG: only the materialized contents —
// base replicas and node relations — are state; the node structure and
// rewritten roots are pure functions of the view definitions, rebuilt by
// Build on restart. Names are sorted so identical states marshal to
// identical bytes (the durable-recovery determinism property).
type dagState struct {
	Names []string
	Rels  []wire.Rel
}

// MarshalState implements durable.Durable.
func (g *DAG) MarshalState() ([]byte, error) {
	st := dagState{Names: make([]string, 0, len(g.rels))}
	for name := range g.rels {
		st.Names = append(st.Names, name)
	}
	sort.Strings(st.Names)
	st.Rels = make([]wire.Rel, len(st.Names))
	for i, name := range st.Names {
		st.Rels[i] = wire.EncodeRelation(g.rels[name])
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(st)
	return buf.Bytes(), err
}

// RestoreState implements durable.Durable. The DAG must have been Built
// from the same view definitions that produced the snapshot.
func (g *DAG) RestoreState(b []byte) error {
	var st dagState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	if len(st.Names) != len(st.Rels) {
		return fmt.Errorf("plan: corrupt state: %d names, %d relations", len(st.Names), len(st.Rels))
	}
	for i, name := range st.Names {
		if _, ok := g.rels[name]; !ok {
			return fmt.Errorf("plan: state holds relation %q the plan does not", name)
		}
		r, err := wire.DecodeRelation(st.Rels[i])
		if err != nil {
			return fmt.Errorf("plan: restoring %q: %w", name, err)
		}
		g.rels[name] = r
	}
	if len(st.Names) != len(g.rels) {
		return fmt.Errorf("plan: state holds %d relations, plan has %d", len(st.Names), len(g.rels))
	}
	return nil
}
