// plan_test.go checks the shared maintenance-plan DAG against the
// recompute oracle: every per-view delta Apply hands out must equal the
// difference between evaluating the view's original expression after and
// before the transaction, over randomized multi-write workloads including
// aggregates and deletions.
package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
	tSchema = relation.MustSchema("C:int", "D:int")
)

func initDB(t *testing.T) expr.MapDB {
	t.Helper()
	r := relation.FromTuples(rSchema, relation.T(1, 10), relation.T(2, 10), relation.T(7, 20))
	s := relation.FromTuples(sSchema, relation.T(10, 100), relation.T(20, 200), relation.T(20, 300))
	tt := relation.FromTuples(tSchema, relation.T(100, 1), relation.T(200, 2))
	return expr.MapDB{"R": r, "S": s, "T": tt}
}

// mustJoin etc. keep the view-definition table terse.
func mustJoin(t *testing.T, l, r expr.Expr) expr.Expr {
	t.Helper()
	j, err := expr.Join(l, r)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func mustSelect(t *testing.T, e expr.Expr, p expr.Pred) expr.Expr {
	t.Helper()
	sel, err := expr.Select(e, p)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func mustAgg(t *testing.T, e expr.Expr, groupBy []string, aggs []expr.AggSpec) expr.Expr {
	t.Helper()
	a, err := expr.Aggregate(e, groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// testViews builds a view set with deliberate sharing: V1, V2, and V4 all
// contain the R⋈S join (V4 is identical to V1 — whole-tree sharing), V3
// joins S⋈T (no overlap with R⋈S), and V5 is a bare scan.
func testViews(t *testing.T) []View {
	t.Helper()
	scanR := expr.Scan("R", rSchema)
	scanS := expr.Scan("S", sSchema)
	scanT := expr.Scan("T", tSchema)
	rs := mustJoin(t, scanR, scanS)
	// CmpAttrs selections do not push below the join, so the shared join
	// survives Optimize in every tree.
	v1 := mustSelect(t, rs, expr.CmpAttrs("A", expr.Lt, "C"))
	v2 := mustAgg(t, mustJoin(t, scanR, scanS), []string{"B"},
		[]expr.AggSpec{{Op: expr.Sum, Attr: "C", As: "SC"}, {Op: expr.Count, As: "N"}})
	v3 := mustSelect(t, mustJoin(t, scanS, scanT), expr.CmpAttrs("B", expr.Lt, "D"))
	v4 := mustSelect(t, mustJoin(t, scanR, scanS), expr.CmpAttrs("A", expr.Lt, "C"))
	return []View{
		{ID: "V1", Expr: v1},
		{ID: "V2", Expr: v2},
		{ID: "V3", Expr: v3},
		{ID: "V4", Expr: v4},
		{ID: "V5", Expr: expr.Scan("R", rSchema)},
	}
}

func TestDAGSharesCommonSubexpressions(t *testing.T) {
	g, err := Build(testViews(t), initDB(t))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Views != 5 {
		t.Fatalf("views = %d", st.Views)
	}
	// At minimum the R⋈S join (V1, V2, V4) and the whole σ[A<C](R⋈S) tree
	// (V1, V4) are shared.
	if st.Nodes < 2 {
		t.Fatalf("nodes = %d, want >= 2 (join + identical selection)", st.Nodes)
	}
	nodes := g.Nodes()
	var sawJoin bool
	for name, key := range nodes {
		if !strings.HasPrefix(name, NamePrefix) {
			t.Errorf("node name %q lacks prefix %q", name, NamePrefix)
		}
		if strings.HasPrefix(key, "join(") && strings.Contains(key, `scan("R"`) {
			sawJoin = true
		}
	}
	if !sawJoin {
		t.Errorf("no R⋈S join node among %v", nodes)
	}
	// Identical views rewrite to scans of the same node.
	r1, r4 := g.Root("V1"), g.Root("V4")
	k1, ok1 := expr.CanonicalKey(r1)
	k4, ok4 := expr.CanonicalKey(r4)
	if !ok1 || !ok4 || k1 != k4 {
		t.Errorf("identical views rewrote differently: %q vs %q", k1, k4)
	}
	// V3's S⋈T node must not be the same as the R⋈S node, and V5 stays a
	// plain base scan (leaves are never nodes).
	if _, isScan := g.Root("V5").(*expr.ScanExpr); !isScan {
		t.Errorf("V5 root = %T, want bare scan", g.Root("V5"))
	}
}

// applyOracle mirrors one transaction on the baseline database and returns
// each view's recompute delta (post − pre evaluation of the ORIGINAL tree).
func applyOracle(t *testing.T, views []View, db expr.MapDB, u msg.Update) map[msg.ViewID]*relation.Delta {
	t.Helper()
	pre := map[msg.ViewID]*relation.Relation{}
	for _, v := range views {
		r, err := expr.Eval(v.Expr, db)
		if err != nil {
			t.Fatal(err)
		}
		pre[v.ID] = r
	}
	for _, w := range u.Writes {
		if err := db[w.Relation].Apply(w.Delta); err != nil {
			t.Fatalf("oracle apply %s: %v", w.Relation, err)
		}
	}
	out := map[msg.ViewID]*relation.Delta{}
	for _, v := range views {
		post, err := expr.Eval(v.Expr, db)
		if err != nil {
			t.Fatal(err)
		}
		out[v.ID] = post.DiffFrom(pre[v.ID])
	}
	return out
}

// randomTxn builds a 1–3 write transaction: weighted inserts plus deletes
// of currently present tuples. Victims are drawn from a per-transaction
// scratch state that tracks the transaction's own earlier writes, so a
// multi-write transaction never deletes more copies than exist at the
// point its write applies (and deterministic EachSorted order keeps runs
// reproducible).
func randomTxn(rng *rand.Rand, db expr.MapDB, seq msg.UpdateID) msg.Update {
	names := []string{"R", "S", "T"}
	schemas := map[string]*relation.Schema{"R": rSchema, "S": sSchema, "T": tSchema}
	scratch := map[string]*relation.Relation{}
	cur := func(name string) *relation.Relation {
		if r, ok := scratch[name]; ok {
			return r
		}
		r := db[name].Clone()
		scratch[name] = r
		return r
	}
	nw := 1 + rng.Intn(3)
	u := msg.Update{Seq: seq}
	for i := 0; i < nw; i++ {
		name := names[rng.Intn(len(names))]
		live := cur(name)
		d := relation.NewDelta(schemas[name])
		if rng.Intn(3) == 0 && live.Cardinality() > 0 {
			// Delete one existing tuple.
			var victim relation.Tuple
			k := rng.Intn(live.Distinct())
			live.EachSorted(func(tp relation.Tuple, n int64) bool {
				if k == 0 {
					victim = tp
					return false
				}
				k--
				return true
			})
			d.Add(victim, -1)
		} else {
			// Insert 1–2 tuples drawn from a small key domain so joins and
			// groups collide often.
			for j := 0; j < 1+rng.Intn(2); j++ {
				switch name {
				case "R":
					d.Add(relation.T(int64(rng.Intn(10)), int64(10*(1+rng.Intn(3)))), 1)
				case "S":
					d.Add(relation.T(int64(10*(1+rng.Intn(3))), int64(100*(1+rng.Intn(4)))), 1)
				case "T":
					d.Add(relation.T(int64(100*(1+rng.Intn(4))), int64(rng.Intn(8))), 1)
				}
			}
		}
		if err := live.Apply(d); err != nil {
			panic(fmt.Sprintf("plan_test: scratch apply: %v", err))
		}
		u.Writes = append(u.Writes, msg.Write{Relation: name, Delta: d})
	}
	return u
}

func TestDAGApplyMatchesRecomputeOracle(t *testing.T) {
	views := testViews(t)
	g, err := Build(views, initDB(t))
	if err != nil {
		t.Fatal(err)
	}
	oracle := initDB(t) // independent mutable copy
	rng := rand.New(rand.NewSource(42))
	for seq := msg.UpdateID(1); seq <= 120; seq++ {
		u := randomTxn(rng, oracle, seq)
		got, err := g.Apply(u)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		want := applyOracle(t, views, oracle, u)
		for _, v := range views {
			wd := want[v.ID]
			gd, ok := got[v.ID]
			if !ok {
				// Apply omits views none of whose base relations were
				// written; their oracle delta must be empty.
				if !wd.Empty() {
					t.Fatalf("seq %d: view %s delta omitted but oracle has %v", seq, v.ID, wd)
				}
				continue
			}
			if !gd.Equal(wd) {
				t.Fatalf("seq %d: view %s\n dag    = %v\n oracle = %v", seq, v.ID, gd, wd)
			}
		}
		// DAG-internal state tracks the oracle exactly.
		for _, name := range []string{"R", "S", "T"} {
			r, err := g.Relation(name)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Equal(oracle[name]) {
				t.Fatalf("seq %d: DAG replica %s diverged", seq, name)
			}
		}
	}
	st := g.Stats()
	if st.Applies != 120 {
		t.Fatalf("applies = %d", st.Applies)
	}
	// Sharing must actually save work: the whole point. With V1, V2, V4
	// all over R⋈S, the join delta is computed once per R/S write instead
	// of three times.
	if st.NodeDeltas == 0 || st.ViewDeltas == 0 {
		t.Fatalf("work counters never moved: %+v", st)
	}
}

func TestDAGIrrelevantWriteProducesNoDeltas(t *testing.T) {
	g, err := Build(testViews(t), initDB(t))
	if err != nil {
		t.Fatal(err)
	}
	d := relation.NewDelta(relation.MustSchema("Z:int"))
	d.Add(relation.T(1), 1)
	out, err := g.Apply(msg.Update{Seq: 1, Writes: []msg.Write{{Relation: "ZZZ", Delta: d}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("irrelevant write produced deltas for %v", out)
	}
}

func TestDAGMarshalRestoreRoundTrip(t *testing.T) {
	views := testViews(t)
	g, err := Build(views, initDB(t))
	if err != nil {
		t.Fatal(err)
	}
	oracle := initDB(t)
	rng := rand.New(rand.NewSource(7))
	var history []msg.Update
	for seq := msg.UpdateID(1); seq <= 20; seq++ {
		u := randomTxn(rng, oracle, seq)
		for _, w := range u.Writes {
			if err := oracle[w.Relation].Apply(w.Delta); err != nil {
				t.Fatal(err)
			}
		}
		history = append(history, u)
		if _, err := g.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := g.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// A freshly built DAG (initial state) restored from the snapshot must
	// behave identically to the original from here on.
	g2, err := Build(views, initDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	u := randomTxn(rng, oracle, 21)
	d1, err := g.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g2.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("delta sets differ: %d vs %d views", len(d1), len(d2))
	}
	for id, d := range d1 {
		if !d.Equal(d2[id]) {
			t.Fatalf("view %s deltas diverge after restore", id)
		}
	}
	if err := g2.RestoreState([]byte("garbage")); err == nil {
		t.Fatal("garbage state restored without error")
	}
}

func TestDAGDuplicateViewRejected(t *testing.T) {
	vs := []View{
		{ID: "V", Expr: expr.Scan("R", rSchema)},
		{ID: "V", Expr: expr.Scan("S", sSchema)},
	}
	if _, err := Build(vs, initDB(t)); err == nil {
		t.Fatal("duplicate view accepted")
	}
}
