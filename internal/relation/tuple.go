package relation

import (
	"fmt"
	"strings"
)

// Tuple is an ordered list of values conforming to some schema. Tuples are
// treated as immutable; operations that derive new tuples allocate.
type Tuple []Value

// T builds a tuple from native Go literals via V.
func T(vals ...any) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = V(v)
	}
	return t
}

// Key returns an injective string encoding of the tuple, suitable as a map
// key. Two tuples have equal keys exactly when they are Equal.
func (t Tuple) Key() string {
	buf := make([]byte, 0, len(t)*10)
	for _, v := range t {
		buf = v.appendEncoded(buf)
	}
	return string(buf)
}

// Equal reports value-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare; shorter tuples
// order first on a tie.
func (t Tuple) Compare(o Tuple) int {
	n := min(len(t), len(o))
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(o)
}

// AppendProjectedKey appends the injective key encoding of the tuple's
// projection onto idx to buf and returns the extended slice. It is
// equivalent to t.Project(idx).Key() without materializing the projected
// tuple — hot join and index paths reuse one buffer across many tuples.
func (t Tuple) AppendProjectedKey(buf []byte, idx []int) []byte {
	for _, j := range idx {
		buf = t[j].appendEncoded(buf)
	}
	return buf
}

// Project returns the tuple restricted to the given positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Concat returns t followed by o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	return append(out, o...)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// CheckSchema verifies that the tuple's arity and value kinds match s.
func (t Tuple) CheckSchema(s *Schema) error {
	if len(t) != s.Len() {
		return fmt.Errorf("relation: tuple arity %d does not match schema %s", len(t), s)
	}
	for i, v := range t {
		if v.Kind() != s.Attr(i).Type {
			return fmt.Errorf("relation: attribute %q expects %v, got %v",
				s.Attr(i).Name, s.Attr(i).Type, v.Kind())
		}
	}
	return nil
}

// String renders the tuple as [v1 v2 ...], matching the paper's notation.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range t {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	b.WriteByte(']')
	return b.String()
}
