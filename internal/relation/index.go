package relation

import (
	"fmt"
	"sort"
	"strings"
)

// index is a hash index over a projection of the relation's columns. It is
// created lazily on first lookup and maintained by every mutation until
// the relation is cloned (clones start index-free and rebuild on demand).
type index struct {
	cols []int
	// buckets: projection key -> tuple key -> entry.
	buckets map[string]map[string]*bagEntry
}

func indexName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

func (ix *index) add(e *bagEntry, scratch []byte) []byte {
	scratch = e.tuple.AppendProjectedKey(scratch[:0], ix.cols)
	b := ix.buckets[string(scratch)]
	if b == nil {
		b = make(map[string]*bagEntry)
		ix.buckets[string(scratch)] = b
	}
	b[e.tuple.Key()] = e
	return scratch
}

func (ix *index) remove(e *bagEntry, scratch []byte) []byte {
	scratch = e.tuple.AppendProjectedKey(scratch[:0], ix.cols)
	if b := ix.buckets[string(scratch)]; b != nil {
		delete(b, e.tuple.Key())
		if len(b) == 0 {
			delete(ix.buckets, string(scratch))
		}
	}
	return scratch
}

// EnsureIndex builds (if absent) a persistent hash index over the given
// column positions and keeps it maintained across mutations. Cloning drops
// indexes; they rebuild lazily on the clone's first lookup.
//
// EnsureIndex (and the Lookup methods that call it) may be invoked from
// several goroutines at once, as happens when a view-manager worker pool
// probes shared base replicas concurrently; index creation is guarded so
// concurrent READERS are safe with each other. Mutations remain exclusive
// to the relation's owner, exactly as documented on Relation.
func (r *Relation) EnsureIndex(cols []int) {
	name := indexName(cols)
	r.imu.RLock()
	_, ok := r.indexes[name]
	r.imu.RUnlock()
	if ok {
		return
	}
	r.imu.Lock()
	defer r.imu.Unlock()
	if r.indexes == nil {
		r.indexes = make(map[string]*index)
	}
	if _, ok := r.indexes[name]; ok {
		return
	}
	ix := &index{cols: append([]int(nil), cols...), buckets: make(map[string]map[string]*bagEntry)}
	var scratch []byte
	for _, e := range r.data.entries {
		scratch = ix.add(e, scratch)
	}
	r.indexes[name] = ix
}

// lookupIndex returns the (built) index over cols.
func (r *Relation) lookupIndex(cols []int) *index {
	r.EnsureIndex(cols)
	r.imu.RLock()
	defer r.imu.RUnlock()
	return r.indexes[indexName(cols)]
}

// LookupEach calls fn for every tuple whose projection onto cols equals
// key, with its multiplicity. It builds the index on first use. Iteration
// stops early if fn returns false. fn must not mutate the relation.
func (r *Relation) LookupEach(cols []int, key Tuple, fn func(t Tuple, n int64) bool) {
	r.LookupKeyEach(cols, key.Key(), fn)
}

// LookupKeyEach is LookupEach with the probe key already encoded (via
// Tuple.AppendProjectedKey), so a caller probing many times can reuse one
// key buffer instead of materializing a projected tuple per probe.
func (r *Relation) LookupKeyEach(cols []int, key string, fn func(t Tuple, n int64) bool) {
	ix := r.lookupIndex(cols)
	for _, e := range ix.buckets[key] {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// LookupSorted is LookupEach in deterministic (sorted-tuple) order; golden
// tests and traces use it where iteration order matters.
func (r *Relation) LookupSorted(cols []int, key Tuple, fn func(t Tuple, n int64) bool) {
	ix := r.lookupIndex(cols)
	b := ix.buckets[key.Key()]
	entries := make([]*bagEntry, 0, len(b))
	for _, e := range b {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].tuple.Compare(entries[j].tuple) < 0 })
	for _, e := range entries {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// Indexed reports whether an index exists on the given columns (for tests
// and observability).
func (r *Relation) Indexed(cols []int) bool {
	r.imu.RLock()
	defer r.imu.RUnlock()
	_, ok := r.indexes[indexName(cols)]
	return ok
}

// indexUpdate maintains all indexes after a bag mutation. prev is the
// entry pointer before the change (nil if the tuple was absent), cur the
// pointer after (nil if removed). When prev == cur the count changed in
// place and the indexes, which store entry pointers, need no update.
func (r *Relation) indexUpdate(prev, cur *bagEntry) {
	if r.indexes == nil || prev == cur {
		return
	}
	var scratch []byte
	for _, ix := range r.indexes {
		if prev != nil {
			scratch = ix.remove(prev, scratch)
		}
		if cur != nil {
			scratch = ix.add(cur, scratch)
		}
	}
}

// mutate applies a signed count change to one tuple, maintaining indexes
// and cardinality. Callers have already validated the change.
func (r *Relation) mutate(t Tuple, n int64) {
	k := t.Key()
	prev := r.data.entries[k]
	r.data.add(t, n)
	r.indexUpdate(prev, r.data.entries[k])
	r.card += n
}
