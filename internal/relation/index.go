package relation

import (
	"fmt"
	"sort"
	"strings"
)

// index is a hash index over a projection of the relation's columns. It is
// created lazily on first lookup and maintained by every mutation until
// the relation is cloned (clones start index-free and rebuild on demand).
type index struct {
	cols []int
	// buckets: projection key -> tuple key -> entry.
	buckets map[string]map[string]*bagEntry
}

func indexName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

func (ix *index) add(e *bagEntry) {
	k := e.tuple.Project(ix.cols).Key()
	b := ix.buckets[k]
	if b == nil {
		b = make(map[string]*bagEntry)
		ix.buckets[k] = b
	}
	b[e.tuple.Key()] = e
}

func (ix *index) remove(e *bagEntry) {
	k := e.tuple.Project(ix.cols).Key()
	if b := ix.buckets[k]; b != nil {
		delete(b, e.tuple.Key())
		if len(b) == 0 {
			delete(ix.buckets, k)
		}
	}
}

// EnsureIndex builds (if absent) a persistent hash index over the given
// column positions and keeps it maintained across mutations. Cloning drops
// indexes; they rebuild lazily on the clone's first lookup.
func (r *Relation) EnsureIndex(cols []int) {
	name := indexName(cols)
	if r.indexes == nil {
		r.indexes = make(map[string]*index)
	}
	if _, ok := r.indexes[name]; ok {
		return
	}
	ix := &index{cols: append([]int(nil), cols...), buckets: make(map[string]map[string]*bagEntry)}
	for _, e := range r.data.entries {
		ix.add(e)
	}
	r.indexes[name] = ix
}

// LookupEach calls fn for every tuple whose projection onto cols equals
// key, with its multiplicity. It builds the index on first use. Iteration
// stops early if fn returns false. fn must not mutate the relation.
func (r *Relation) LookupEach(cols []int, key Tuple, fn func(t Tuple, n int64) bool) {
	r.EnsureIndex(cols)
	ix := r.indexes[indexName(cols)]
	for _, e := range ix.buckets[key.Key()] {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// LookupSorted is LookupEach in deterministic (sorted-tuple) order; golden
// tests and traces use it where iteration order matters.
func (r *Relation) LookupSorted(cols []int, key Tuple, fn func(t Tuple, n int64) bool) {
	r.EnsureIndex(cols)
	ix := r.indexes[indexName(cols)]
	b := ix.buckets[key.Key()]
	entries := make([]*bagEntry, 0, len(b))
	for _, e := range b {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].tuple.Compare(entries[j].tuple) < 0 })
	for _, e := range entries {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// Indexed reports whether an index exists on the given columns (for tests
// and observability).
func (r *Relation) Indexed(cols []int) bool {
	_, ok := r.indexes[indexName(cols)]
	return ok
}

// indexUpdate maintains all indexes after a bag mutation. prev is the
// entry pointer before the change (nil if the tuple was absent), cur the
// pointer after (nil if removed). When prev == cur the count changed in
// place and the indexes, which store entry pointers, need no update.
func (r *Relation) indexUpdate(prev, cur *bagEntry) {
	if r.indexes == nil || prev == cur {
		return
	}
	for _, ix := range r.indexes {
		if prev != nil {
			ix.remove(prev)
		}
		if cur != nil {
			ix.add(cur)
		}
	}
}

// mutate applies a signed count change to one tuple, maintaining indexes
// and cardinality. Callers have already validated the change.
func (r *Relation) mutate(t Tuple, n int64) {
	k := t.Key()
	prev := r.data.entries[k]
	r.data.add(t, n)
	r.indexUpdate(prev, r.data.entries[k])
	r.card += n
}
