package relation

import (
	"errors"
	"sync"
	"testing"
)

func TestFreezeRejectsMutation(t *testing.T) {
	s := MustSchema("A:int", "B:int")
	r := FromTuples(s, T(1, 2), T(3, 4))
	r.Freeze()
	if !r.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	if err := r.Insert(T(5, 6), 1); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Insert on frozen: err = %v, want ErrFrozen", err)
	}
	if err := r.Delete(T(1, 2), 1); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Delete on frozen: err = %v, want ErrFrozen", err)
	}
	d := NewDelta(s)
	d.Add(T(7, 8), 1)
	if err := r.Apply(d); !errors.Is(err, ErrFrozen) {
		t.Fatalf("Apply on frozen: err = %v, want ErrFrozen", err)
	}
	if err := r.Apply(nil); err != nil {
		t.Fatalf("Apply(nil) on frozen: err = %v, want nil (no-op)", err)
	}
	if r.Cardinality() != 2 || r.Count(T(1, 2)) != 1 {
		t.Fatalf("frozen relation changed: %v", r)
	}
}

func TestMutableCopyIsolatesFrozenParent(t *testing.T) {
	s := MustSchema("A:int", "B:int")
	r := FromTuples(s, T(1, 2), T(3, 4))
	if err := r.Insert(T(3, 4), 2); err != nil { // count 3
		t.Fatal(err)
	}
	r.Freeze()

	m := r.MutableCopy()
	if m.Frozen() {
		t.Fatal("MutableCopy returned a frozen relation")
	}
	// Mutate every kind of shared state: bump a shared count, delete a
	// shared tuple entirely, insert a fresh tuple.
	if err := m.Insert(T(3, 4), 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(T(1, 2), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(T(9, 9), 1); err != nil {
		t.Fatal(err)
	}

	// Parent must be byte-for-byte what it was.
	if got := r.Count(T(3, 4)); got != 3 {
		t.Fatalf("frozen parent count(3,4) = %d, want 3 (copy-on-write leaked)", got)
	}
	if !r.Contains(T(1, 2)) || r.Contains(T(9, 9)) {
		t.Fatalf("frozen parent contents changed: %v", r)
	}
	if r.Cardinality() != 4 {
		t.Fatalf("frozen parent cardinality = %d, want 4", r.Cardinality())
	}
	// Copy sees its own edits.
	if got := m.Count(T(3, 4)); got != 8 {
		t.Fatalf("copy count(3,4) = %d, want 8", got)
	}
	if m.Contains(T(1, 2)) || !m.Contains(T(9, 9)) {
		t.Fatalf("copy contents wrong: %v", m)
	}
	if m.Cardinality() != 9 {
		t.Fatalf("copy cardinality = %d, want 9", m.Cardinality())
	}
}

func TestMutableCopyChainAndDelta(t *testing.T) {
	s := MustSchema("X:int")
	r := FromTuples(s, T(0))
	// Simulate the warehouse commit loop: repeatedly derive the next
	// version by COW, apply a delta, freeze, publish.
	versions := []*Relation{r.Freeze()}
	for i := 1; i <= 10; i++ {
		next := versions[len(versions)-1].MutableCopy()
		d := NewDelta(s)
		d.Add(T(int64(i)), 1)
		d.Add(T(int64(i-1)), -1)
		if err := next.Apply(d); err != nil {
			t.Fatalf("version %d: %v", i, err)
		}
		versions = append(versions, next.Freeze())
	}
	// Every historical version still holds exactly its own tuple.
	for i, v := range versions {
		if v.Cardinality() != 1 || !v.Contains(T(int64(i))) {
			t.Fatalf("version %d corrupted: %v", i, v)
		}
	}
}

func TestMutableCopyIndexMaintenance(t *testing.T) {
	s := MustSchema("A:int", "B:int")
	r := FromTuples(s, T(1, 10), T(2, 10), T(3, 30))
	r.Freeze()
	m := r.MutableCopy()
	// Build the copy's index, then mutate a shared entry: the COW entry
	// replacement must rehome the index pointer, not leave it aliasing the
	// frozen parent's entry.
	m.EnsureIndex([]int{1})
	if err := m.Insert(T(1, 10), 4); err != nil {
		t.Fatal(err)
	}
	var total int64
	m.LookupEach([]int{1}, T(0, 10).Project([]int{1}), func(tp Tuple, n int64) bool {
		total += n
		return true
	})
	if total != 6 { // (1,10)x5 + (2,10)x1
		t.Fatalf("index lookup after COW mutation = %d, want 6", total)
	}
	if r.Count(T(1, 10)) != 1 {
		t.Fatalf("frozen parent mutated through indexed copy: %v", r)
	}
}

func TestFrozenConcurrentReaders(t *testing.T) {
	s := MustSchema("A:int", "B:int")
	r := New(s)
	for i := 0; i < 64; i++ {
		if err := r.Insert(T(int64(i), int64(i%7)), int64(i%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	want := r.Cardinality()
	r.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var card int64
				r.Each(func(_ Tuple, n int64) bool { card += n; return true })
				if card != want {
					t.Errorf("concurrent read saw cardinality %d, want %d", card, want)
					return
				}
				// Lazy index build races with other readers by design.
				var hits int
				r.LookupEach([]int{1}, T(0, 3).Project([]int{1}), func(Tuple, int64) bool {
					hits++
					return true
				})
				_ = hits
			}
		}()
	}
	wg.Wait()
}
