package relation

import (
	"fmt"
	"sort"
	"strings"
)

// bag is a counted multiset of tuples keyed by Tuple.Key. Relation restricts
// counts to be positive; Delta allows any non-zero signed count.
type bag struct {
	entries map[string]*bagEntry
	// cow marks a copy-on-write bag: its entry pointers are shared with a
	// frozen parent, so add must replace an entry before changing its count
	// rather than mutating it in place.
	cow bool
}

type bagEntry struct {
	tuple Tuple
	count int64
}

func newBag() bag { return bag{entries: make(map[string]*bagEntry)} }

// newBagCap is newBag with a capacity hint, for hot paths that know how
// many distinct tuples they are about to produce.
func newBagCap(n int) bag { return bag{entries: make(map[string]*bagEntry, n)} }

// add adjusts the count of t by n, removing the entry if it reaches zero.
// It returns the new count.
func (b *bag) add(t Tuple, n int64) int64 {
	if n == 0 {
		if e := b.entries[t.Key()]; e != nil {
			return e.count
		}
		return 0
	}
	k := t.Key()
	e := b.entries[k]
	if e == nil {
		e = &bagEntry{tuple: t.Clone()}
		b.entries[k] = e
	} else if b.cow {
		// The entry may be shared with a frozen snapshot: replace it so the
		// count change cannot be observed through the parent. Index
		// maintenance sees prev != cur and rehomes the pointer.
		e = &bagEntry{tuple: e.tuple, count: e.count}
		b.entries[k] = e
	}
	e.count += n
	if e.count == 0 {
		delete(b.entries, k)
		return 0
	}
	return e.count
}

func (b *bag) count(t Tuple) int64 {
	if e := b.entries[t.Key()]; e != nil {
		return e.count
	}
	return 0
}

func (b *bag) clone() bag {
	out := bag{entries: make(map[string]*bagEntry, len(b.entries))}
	for k, e := range b.entries {
		out.entries[k] = &bagEntry{tuple: e.tuple, count: e.count}
	}
	return out
}

// cloneCOW returns a copy-on-write copy: the map is fresh but the entry
// pointers are shared with the receiver, which the caller promises is (or
// is about to become) immutable. O(distinct) map copy, zero entry allocs.
func (b *bag) cloneCOW() bag {
	out := bag{entries: make(map[string]*bagEntry, len(b.entries)), cow: true}
	for k, e := range b.entries {
		out.entries[k] = e
	}
	return out
}

func (b *bag) equal(o *bag) bool {
	if len(b.entries) != len(o.entries) {
		return false
	}
	for k, e := range b.entries {
		oe := o.entries[k]
		if oe == nil || oe.count != e.count {
			return false
		}
	}
	return true
}

// sorted returns the entries ordered by tuple, for deterministic iteration
// and rendering.
func (b *bag) sorted() []*bagEntry {
	out := make([]*bagEntry, 0, len(b.entries))
	for _, e := range b.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tuple.Compare(out[j].tuple) < 0 })
	return out
}

func (b *bag) render(schema *Schema) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, e := range b.sorted() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.tuple.String())
		if e.count != 1 {
			fmt.Fprintf(&sb, "x%d", e.count)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
