package relation

import (
	"fmt"
	"sync"
)

// Relation is a bag-semantics (counted multiset) relation instance with a
// fixed schema. Counts are strictly positive; applying a Delta that would
// drive a count negative is an error, because it means incremental
// maintenance diverged from the base data.
//
// Relation is not safe for concurrent mutation; the processes that own
// relations (sources, warehouse) serialize access. Concurrent READERS are
// safe with each other — including the Lookup methods, which may lazily
// build an index under imu — so a worker pool may probe a shared relation
// from many goroutines as long as nobody mutates it meanwhile.
type Relation struct {
	schema *Schema
	data   bag
	card   int64 // total multiplicity
	frozen bool  // immutable: mutators fail, sharing is safe

	// imu guards the indexes map so concurrent lookups can race on the
	// lazy index build; see EnsureIndex.
	imu     sync.RWMutex
	indexes map[string]*index
}

// New returns an empty relation over schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema, data: newBag()}
}

// FromTuples builds a relation from tuples, each with multiplicity one.
// It panics if a tuple does not match the schema; it is intended for tests
// and example setup where data is literal.
func FromTuples(schema *Schema, tuples ...Tuple) *Relation {
	r := New(schema)
	for _, t := range tuples {
		if err := r.Insert(t, 1); err != nil {
			panic(err)
		}
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// ErrFrozen is returned by mutators invoked on a frozen relation.
var ErrFrozen = fmt.Errorf("relation: frozen (published snapshots are immutable; use MutableCopy or Clone)")

// Freeze marks the relation immutable. After Freeze, Insert/Delete/Apply
// return ErrFrozen, so the relation may be shared freely across goroutines
// and snapshots. Freezing is one-way; derive a writable relation with
// MutableCopy (copy-on-write) or Clone (deep). Freeze returns r.
func (r *Relation) Freeze() *Relation {
	r.frozen = true
	return r
}

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen }

// MutableCopy returns an unfrozen copy that shares tuple storage with r via
// copy-on-write: only the entries a later mutation touches are duplicated.
// The receiver must be (or be about to become) immutable — the warehouse
// freezes every published relation, then derives the next version from it
// with MutableCopy. Indexes are not copied; they rebuild lazily.
func (r *Relation) MutableCopy() *Relation {
	return &Relation{schema: r.schema, data: r.data.cloneCOW(), card: r.card}
}

// Insert adds n (>0) copies of t.
func (r *Relation) Insert(t Tuple, n int64) error {
	if r.frozen {
		return ErrFrozen
	}
	if n <= 0 {
		return fmt.Errorf("relation: Insert multiplicity must be positive, got %d", n)
	}
	if err := t.CheckSchema(r.schema); err != nil {
		return err
	}
	r.mutate(t, n)
	return nil
}

// Delete removes n (>0) copies of t. It is an error to remove more copies
// than present.
func (r *Relation) Delete(t Tuple, n int64) error {
	if r.frozen {
		return ErrFrozen
	}
	if n <= 0 {
		return fmt.Errorf("relation: Delete multiplicity must be positive, got %d", n)
	}
	if err := t.CheckSchema(r.schema); err != nil {
		return err
	}
	if have := r.data.count(t); have < n {
		return fmt.Errorf("relation: cannot delete %d copies of %v, only %d present", n, t, have)
	}
	r.mutate(t, -n)
	return nil
}

// Apply applies a signed delta to the relation. Every resulting count must
// remain non-negative; on violation the relation is left unchanged and an
// error is returned.
func (r *Relation) Apply(d *Delta) error {
	if d == nil {
		return nil
	}
	if r.frozen {
		return ErrFrozen
	}
	if !r.schema.Equal(d.schema) {
		return fmt.Errorf("relation: delta schema %s does not match relation schema %s", d.schema, r.schema)
	}
	// Validate first so failure cannot leave a partial application.
	for _, e := range d.data.entries {
		if e.count < 0 && r.data.count(e.tuple) < -e.count {
			return fmt.Errorf("relation: delta deletes %d copies of %v, only %d present",
				-e.count, e.tuple, r.data.count(e.tuple))
		}
	}
	for _, e := range d.data.entries {
		r.mutate(e.tuple, e.count)
	}
	return nil
}

// Count returns the multiplicity of t (zero if absent).
func (r *Relation) Count(t Tuple) int64 { return r.data.count(t) }

// Contains reports whether t occurs at least once.
func (r *Relation) Contains(t Tuple) bool { return r.data.count(t) > 0 }

// Distinct returns the number of distinct tuples.
func (r *Relation) Distinct() int { return len(r.data.entries) }

// Cardinality returns the total multiplicity.
func (r *Relation) Cardinality() int64 { return r.card }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.data.entries) == 0 }

// Each calls fn for every distinct tuple with its multiplicity, in
// unspecified order. fn must not mutate the tuple. Iteration stops early if
// fn returns false.
func (r *Relation) Each(fn func(t Tuple, n int64) bool) {
	for _, e := range r.data.entries {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// EachSorted is Each in deterministic (sorted-tuple) order.
func (r *Relation) EachSorted(fn func(t Tuple, n int64) bool) {
	for _, e := range r.data.sorted() {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// Tuples returns the distinct tuples in sorted order, ignoring counts.
func (r *Relation) Tuples() []Tuple {
	es := r.data.sorted()
	out := make([]Tuple, len(es))
	for i, e := range es {
		out[i] = e.tuple
	}
	return out
}

// Clone returns a deep copy. Indexes are not copied; a clone rebuilds them
// lazily on its first lookup.
func (r *Relation) Clone() *Relation {
	return &Relation{schema: r.schema, data: r.data.clone(), card: r.card}
}

// Equal reports whether two relations have equal schemas and contents
// (including multiplicities).
func (r *Relation) Equal(o *Relation) bool {
	if r == o {
		return true
	}
	if r == nil || o == nil {
		return false
	}
	return r.schema.Equal(o.schema) && r.data.equal(&o.data)
}

// DiffFrom returns the delta that transforms old into r, i.e. r - old.
func (r *Relation) DiffFrom(old *Relation) *Delta {
	d := NewDeltaCap(r.schema, r.Distinct()+old.Distinct())
	for _, e := range r.data.entries {
		d.Add(e.tuple, e.count)
	}
	for _, e := range old.data.entries {
		d.Add(e.tuple, -e.count)
	}
	return d
}

// AsDelta returns the relation's contents as an all-positive delta
// (useful for "insert everything" refresh action lists).
func (r *Relation) AsDelta() *Delta {
	d := NewDeltaCap(r.schema, r.Distinct())
	for _, e := range r.data.entries {
		d.Add(e.tuple, e.count)
	}
	return d
}

// String renders the relation's contents deterministically.
func (r *Relation) String() string { return r.data.render(r.schema) }
