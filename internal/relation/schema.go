package relation

import (
	"fmt"
	"strings"
)

// Attr is a named, typed attribute of a schema.
type Attr struct {
	Name string
	Type Type
}

// Schema is an ordered list of attributes with unique names. Schemas are
// immutable after construction and may be shared freely.
type Schema struct {
	attrs  []Attr
	byName map[string]int
}

// NewSchema builds a schema from attributes. It panics if two attributes
// share a name; schema construction errors are programming errors, not
// runtime conditions.
func NewSchema(attrs ...Attr) *Schema {
	s := &Schema{attrs: append([]Attr(nil), attrs...), byName: make(map[string]int, len(attrs))}
	for i, a := range s.attrs {
		if _, dup := s.byName[a.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q in schema", a.Name))
		}
		s.byName[a.Name] = i
	}
	return s
}

// MustSchema builds a schema from "name:type" strings, e.g.
// MustSchema("A:int", "B:string"). It panics on malformed input.
func MustSchema(cols ...string) *Schema {
	attrs := make([]Attr, len(cols))
	for i, c := range cols {
		name, typ, ok := strings.Cut(c, ":")
		if !ok {
			panic(fmt.Sprintf("relation: malformed column spec %q", c))
		}
		var t Type
		switch typ {
		case "int":
			t = Int
		case "string":
			t = String
		case "float":
			t = Float
		case "bool":
			t = Bool
		default:
			panic(fmt.Sprintf("relation: unknown type %q in column spec", typ))
		}
		attrs[i] = Attr{Name: name, Type: t}
	}
	return NewSchema(attrs...)
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attr { return append([]Attr(nil), s.attrs...) }

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// Project returns the schema restricted to the named attributes, in the
// given order, together with the source positions of each kept attribute.
func (s *Schema) Project(names ...string) (*Schema, []int, error) {
	attrs := make([]Attr, len(names))
	idx := make([]int, len(names))
	for i, n := range names {
		j, ok := s.byName[n]
		if !ok {
			return nil, nil, fmt.Errorf("relation: schema has no attribute %q", n)
		}
		attrs[i] = s.attrs[j]
		idx[i] = j
	}
	return NewSchema(attrs...), idx, nil
}

// NaturalJoin returns the merged schema of a natural join: all attributes of
// s followed by the attributes of o that are not shared. It also returns the
// shared attribute names (the join key) and an error if a shared name has
// conflicting types.
func (s *Schema) NaturalJoin(o *Schema) (*Schema, []string, error) {
	merged := append([]Attr(nil), s.attrs...)
	var shared []string
	for _, a := range o.attrs {
		if j, ok := s.byName[a.Name]; ok {
			if s.attrs[j].Type != a.Type {
				return nil, nil, fmt.Errorf("relation: join attribute %q has conflicting types %v and %v",
					a.Name, s.attrs[j].Type, a.Type)
			}
			shared = append(shared, a.Name)
		} else {
			merged = append(merged, a)
		}
	}
	return NewSchema(merged...), shared, nil
}

// String renders the schema as (A:int, B:string).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(':')
		b.WriteString(a.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}
