package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lookupAll(r *Relation, cols []int, key Tuple) map[string]int64 {
	out := map[string]int64{}
	r.LookupEach(cols, key, func(t Tuple, n int64) bool {
		out[t.Key()] = n
		return true
	})
	return out
}

func TestIndexLookup(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 10), T(2, 10), T(3, 20))
	got := lookupAll(r, []int{1}, T(10))
	if len(got) != 2 || got[T(1, 10).Key()] != 1 || got[T(2, 10).Key()] != 1 {
		t.Errorf("lookup B=10 = %v", got)
	}
	if !r.Indexed([]int{1}) {
		t.Error("index should persist after first lookup")
	}
	if len(lookupAll(r, []int{1}, T(99))) != 0 {
		t.Error("missing key should match nothing")
	}
}

func TestIndexMaintainedAcrossMutations(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 10))
	_ = lookupAll(r, []int{1}, T(10)) // build index
	if err := r.Insert(T(2, 10), 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(T(1, 10), 1); err != nil {
		t.Fatal(err)
	}
	got := lookupAll(r, []int{1}, T(10))
	if len(got) != 1 || got[T(2, 10).Key()] != 3 {
		t.Errorf("after mutations = %v", got)
	}
	// Apply-based mutation maintains the index too.
	d := NewDelta(rsSchema)
	d.Add(T(2, 10), -3)
	d.Add(T(5, 10), 2)
	if err := r.Apply(d); err != nil {
		t.Fatal(err)
	}
	got = lookupAll(r, []int{1}, T(10))
	if len(got) != 1 || got[T(5, 10).Key()] != 2 {
		t.Errorf("after apply = %v", got)
	}
}

func TestIndexCountChangeInPlace(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 10))
	_ = lookupAll(r, []int{1}, T(10))
	// Increasing multiplicity keeps the same entry; the index must report
	// the live count.
	if err := r.Insert(T(1, 10), 4); err != nil {
		t.Fatal(err)
	}
	got := lookupAll(r, []int{1}, T(10))
	if got[T(1, 10).Key()] != 5 {
		t.Errorf("live count = %v", got)
	}
}

func TestIndexCloneDropsAndRebuilds(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 10))
	_ = lookupAll(r, []int{1}, T(10))
	c := r.Clone()
	if c.Indexed([]int{1}) {
		t.Error("clone must start index-free")
	}
	if err := c.Insert(T(2, 10), 1); err != nil {
		t.Fatal(err)
	}
	got := lookupAll(c, []int{1}, T(10))
	if len(got) != 2 {
		t.Errorf("clone lookup = %v", got)
	}
	// Original unaffected by clone's mutations.
	if len(lookupAll(r, []int{1}, T(10))) != 1 {
		t.Error("original index polluted by clone")
	}
}

func TestIndexMultiColumnAndSorted(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 10), T(1, 20), T(2, 10))
	got := lookupAll(r, []int{0, 1}, T(1, 10))
	if len(got) != 1 {
		t.Errorf("composite lookup = %v", got)
	}
	var order []Tuple
	r.LookupSorted([]int{1}, T(10), func(tu Tuple, n int64) bool {
		order = append(order, tu)
		return true
	})
	if len(order) != 2 || !order[0].Equal(T(1, 10)) || !order[1].Equal(T(2, 10)) {
		t.Errorf("sorted lookup = %v", order)
	}
	// Early stop.
	count := 0
	r.LookupEach([]int{1}, T(10), func(Tuple, int64) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
	count = 0
	r.LookupSorted([]int{1}, T(10), func(Tuple, int64) bool { count++; return false })
	if count != 1 {
		t.Errorf("sorted early stop visited %d", count)
	}
}

// Property: indexed lookup equals scanning with a filter, across random
// mutation histories.
func TestIndexEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(rsSchema)
		_ = lookupAll(r, []int{1}, T(0)) // index from the start
		for i := 0; i < 40; i++ {
			tu := T(rng.Intn(4), rng.Intn(4))
			if rng.Intn(3) == 0 && r.Count(tu) > 0 {
				_ = r.Delete(tu, 1)
			} else {
				_ = r.Insert(tu, int64(1+rng.Intn(2)))
			}
		}
		for key := 0; key < 4; key++ {
			got := lookupAll(r, []int{1}, T(key))
			want := map[string]int64{}
			r.Each(func(tu Tuple, n int64) bool {
				if tu[1].Int() == int64(key) {
					want[tu.Key()] = n
				}
				return true
			})
			if len(got) != len(want) {
				return false
			}
			for k, n := range want {
				if got[k] != n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
