package relation

import "fmt"

// Delta is a signed counted multiset over a schema: positive counts are
// insertions, negative counts deletions. A tuple modification is represented
// as a deletion of the old tuple plus an insertion of the new one, which is
// exact under bag semantics.
//
// Deltas compose by addition, which is what makes the counting algorithm for
// incremental view maintenance work: Δ(V) of a composed update sequence is
// the sum of per-update Δ(V)s evaluated at the right states.
type Delta struct {
	schema *Schema
	data   bag
}

// NewDelta returns an empty delta over schema.
func NewDelta(schema *Schema) *Delta {
	return &Delta{schema: schema, data: newBag()}
}

// NewDeltaCap is NewDelta with a capacity hint: the delta preallocates room
// for n distinct tuples. Join and diff hot paths use it to avoid rehashing
// while accumulating large results.
func NewDeltaCap(schema *Schema, n int) *Delta {
	if n < 0 {
		n = 0
	}
	return &Delta{schema: schema, data: newBagCap(n)}
}

// InsertDelta builds a delta inserting each tuple once.
func InsertDelta(schema *Schema, tuples ...Tuple) *Delta {
	d := NewDelta(schema)
	for _, t := range tuples {
		d.Add(t, 1)
	}
	return d
}

// DeleteDelta builds a delta deleting each tuple once.
func DeleteDelta(schema *Schema, tuples ...Tuple) *Delta {
	d := NewDelta(schema)
	for _, t := range tuples {
		d.Add(t, -1)
	}
	return d
}

// ModifyDelta builds a delta replacing old with new.
func ModifyDelta(schema *Schema, oldT, newT Tuple) *Delta {
	d := NewDelta(schema)
	d.Add(oldT, -1)
	d.Add(newT, 1)
	return d
}

// Schema returns the delta's schema.
func (d *Delta) Schema() *Schema { return d.schema }

// Add adjusts the signed count of t by n. Opposite-signed adjustments cancel.
func (d *Delta) Add(t Tuple, n int64) {
	d.data.add(t, n)
}

// AddChecked is Add with schema validation, for deltas built from
// external/unchecked input.
func (d *Delta) AddChecked(t Tuple, n int64) error {
	if err := t.CheckSchema(d.schema); err != nil {
		return err
	}
	d.data.add(t, n)
	return nil
}

// Merge adds every entry of o into d. Schemas must match.
func (d *Delta) Merge(o *Delta) error {
	if o == nil {
		return nil
	}
	if !d.schema.Equal(o.schema) {
		return fmt.Errorf("relation: cannot merge delta over %s into delta over %s", o.schema, d.schema)
	}
	for _, e := range o.data.entries {
		d.data.add(e.tuple, e.count)
	}
	return nil
}

// Negate returns a new delta with all counts negated.
func (d *Delta) Negate() *Delta {
	out := NewDelta(d.schema)
	for _, e := range d.data.entries {
		out.Add(e.tuple, -e.count)
	}
	return out
}

// Count returns the signed count of t.
func (d *Delta) Count(t Tuple) int64 { return d.data.count(t) }

// Empty reports whether the delta is a no-op.
func (d *Delta) Empty() bool { return d == nil || len(d.data.entries) == 0 }

// Distinct returns the number of distinct tuples mentioned.
func (d *Delta) Distinct() int {
	if d == nil {
		return 0
	}
	return len(d.data.entries)
}

// Size returns the total absolute multiplicity |Δ| — the natural measure of
// how much work applying the delta is.
func (d *Delta) Size() int64 {
	if d == nil {
		return 0
	}
	var s int64
	for _, e := range d.data.entries {
		if e.count < 0 {
			s -= e.count
		} else {
			s += e.count
		}
	}
	return s
}

// Each calls fn for every (tuple, signed count) pair in unspecified order.
func (d *Delta) Each(fn func(t Tuple, n int64) bool) {
	if d == nil {
		return
	}
	for _, e := range d.data.entries {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// EachSorted is Each in deterministic (sorted-tuple) order.
func (d *Delta) EachSorted(fn func(t Tuple, n int64) bool) {
	if d == nil {
		return
	}
	for _, e := range d.data.sorted() {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// Split partitions the delta into its insertion part (positive counts) and
// deletion part (negative counts, returned with positive sign as a delete
// set). Used by convergent view managers and by refresh action lists.
func (d *Delta) Split() (inserts, deletes *Delta) {
	inserts, deletes = NewDelta(d.schema), NewDelta(d.schema)
	for _, e := range d.data.entries {
		if e.count > 0 {
			inserts.Add(e.tuple, e.count)
		} else {
			deletes.Add(e.tuple, e.count)
		}
	}
	return inserts, deletes
}

// Clone returns a deep copy.
func (d *Delta) Clone() *Delta {
	if d == nil {
		return nil
	}
	return &Delta{schema: d.schema, data: d.data.clone()}
}

// Equal reports entry-wise equality.
func (d *Delta) Equal(o *Delta) bool {
	if d == nil || o == nil {
		return d.Empty() && o.Empty()
	}
	return d.schema.Equal(o.schema) && d.data.equal(&o.data)
}

// String renders the delta deterministically with signed counts, e.g.
// {+[1 2], -[3 4]x2}.
func (d *Delta) String() string {
	if d == nil {
		return "{}"
	}
	var out []byte
	out = append(out, '{')
	for i, e := range d.data.sorted() {
		if i > 0 {
			out = append(out, ", "...)
		}
		if e.count > 0 {
			out = append(out, '+')
		} else {
			out = append(out, '-')
		}
		out = append(out, e.tuple.String()...)
		n := e.count
		if n < 0 {
			n = -n
		}
		if n != 1 {
			out = append(out, fmt.Sprintf("x%d", n)...)
		}
	}
	out = append(out, '}')
	return string(out)
}
