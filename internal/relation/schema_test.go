package relation

import "testing"

func TestMustSchema(t *testing.T) {
	s := MustSchema("A:int", "B:string", "C:float", "D:bool")
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	want := []Attr{{"A", Int}, {"B", String}, {"C", Float}, {"D", Bool}}
	for i, w := range want {
		if s.Attr(i) != w {
			t.Errorf("Attr(%d) = %v, want %v", i, s.Attr(i), w)
		}
	}
	if i, ok := s.Index("C"); !ok || i != 2 {
		t.Errorf("Index(C) = %d, %v", i, ok)
	}
	if _, ok := s.Index("Z"); ok {
		t.Error("Index(Z) should be absent")
	}
	if !s.Has("A") || s.Has("Z") {
		t.Error("Has mismatch")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	for _, bad := range []string{"A", "A:complex"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustSchema(%q) should panic", bad)
				}
			}()
			MustSchema(bad)
		}()
	}
}

func TestNewSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute should panic")
		}
	}()
	NewSchema(Attr{"A", Int}, Attr{"A", String})
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("A:int", "B:string")
	b := MustSchema("A:int", "B:string")
	c := MustSchema("A:int", "B:int")
	d := MustSchema("A:int")
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(c) || a.Equal(d) || a.Equal(nil) {
		t.Error("distinct schemas reported Equal")
	}
	if !a.Equal(a) {
		t.Error("schema not Equal to itself")
	}
}

func TestSchemaProject(t *testing.T) {
	s := MustSchema("A:int", "B:string", "C:float")
	p, idx, err := s.Project("C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Attr(0).Name != "C" || p.Attr(1).Name != "A" {
		t.Errorf("projected schema = %s", p)
	}
	if idx[0] != 2 || idx[1] != 0 {
		t.Errorf("projection positions = %v", idx)
	}
	if _, _, err := s.Project("Z"); err == nil {
		t.Error("projecting missing attribute should fail")
	}
}

func TestSchemaNaturalJoin(t *testing.T) {
	r := MustSchema("A:int", "B:int")
	s := MustSchema("B:int", "C:int")
	j, shared, err := r.NaturalJoin(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.String(); got != "(A:int, B:int, C:int)" {
		t.Errorf("joined schema = %s", got)
	}
	if len(shared) != 1 || shared[0] != "B" {
		t.Errorf("shared = %v", shared)
	}

	// Disjoint schemas: cross product, no shared attributes.
	q := MustSchema("D:int")
	j2, shared2, err := r.NaturalJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 3 || len(shared2) != 0 {
		t.Errorf("disjoint join schema = %s shared = %v", j2, shared2)
	}

	// Conflicting type on the shared name is an error.
	bad := MustSchema("B:string")
	if _, _, err := r.NaturalJoin(bad); err == nil {
		t.Error("conflicting join types should fail")
	}
}

func TestSchemaNamesAndAttrsAreCopies(t *testing.T) {
	s := MustSchema("A:int", "B:string")
	names := s.Names()
	names[0] = "Z"
	if s.Attr(0).Name != "A" {
		t.Error("Names() must return a copy")
	}
	attrs := s.Attrs()
	attrs[0].Name = "Z"
	if s.Attr(0).Name != "A" {
		t.Error("Attrs() must return a copy")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema("A:int", "B:string")
	if got := s.String(); got != "(A:int, B:string)" {
		t.Errorf("String = %q", got)
	}
}
