package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var rsSchema = MustSchema("A:int", "B:int")

func TestTupleBasics(t *testing.T) {
	tp := T(1, "x", 2.5, true)
	if len(tp) != 4 {
		t.Fatalf("len = %d", len(tp))
	}
	if !tp.Equal(T(1, "x", 2.5, true)) {
		t.Error("Equal failed on identical tuples")
	}
	if tp.Equal(T(1, "x", 2.5)) || tp.Equal(T(1, "y", 2.5, true)) {
		t.Error("Equal matched distinct tuples")
	}
	if got := tp.String(); got != "[1 x 2.5 true]" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleCompare(t *testing.T) {
	if T(1, 2).Compare(T(1, 3)) >= 0 {
		t.Error("lexicographic order broken")
	}
	if T(1).Compare(T(1, 0)) >= 0 {
		t.Error("shorter tuple should order first")
	}
	if T(2).Compare(T(1, 9)) <= 0 {
		t.Error("first position dominates")
	}
	if T(1, 2).Compare(T(1, 2)) != 0 {
		t.Error("equal tuples should compare 0")
	}
}

func TestTupleProjectConcatClone(t *testing.T) {
	tp := T(10, 20, 30)
	if got := tp.Project([]int{2, 0}); !got.Equal(T(30, 10)) {
		t.Errorf("Project = %v", got)
	}
	if got := T(1).Concat(T(2, 3)); !got.Equal(T(1, 2, 3)) {
		t.Errorf("Concat = %v", got)
	}
	c := tp.Clone()
	c[0] = V(99)
	if tp[0] != V(10) {
		t.Error("Clone must not alias")
	}
}

func TestTupleCheckSchema(t *testing.T) {
	s := MustSchema("A:int", "B:string")
	if err := T(1, "x").CheckSchema(s); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := T(1).CheckSchema(s); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := T("x", "y").CheckSchema(s); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestRelationInsertDelete(t *testing.T) {
	r := New(rsSchema)
	if err := r.Insert(T(1, 2), 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(T(1, 2), 2); err != nil {
		t.Fatal(err)
	}
	if got := r.Count(T(1, 2)); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if r.Cardinality() != 3 || r.Distinct() != 1 {
		t.Errorf("Cardinality=%d Distinct=%d", r.Cardinality(), r.Distinct())
	}
	if err := r.Delete(T(1, 2), 2); err != nil {
		t.Fatal(err)
	}
	if got := r.Count(T(1, 2)); got != 1 {
		t.Errorf("after delete Count = %d", got)
	}
	if err := r.Delete(T(1, 2), 5); err == nil {
		t.Error("over-delete must fail")
	}
	if err := r.Delete(T(9, 9), 1); err == nil {
		t.Error("deleting absent tuple must fail")
	}
	if err := r.Insert(T(1, 2), 0); err == nil {
		t.Error("zero multiplicity insert must fail")
	}
	if err := r.Delete(T(1, 2), -1); err == nil {
		t.Error("negative multiplicity delete must fail")
	}
	if err := r.Insert(T("x", "y"), 1); err == nil {
		t.Error("schema-mismatched insert must fail")
	}
}

func TestRelationApplyDeltaAtomicity(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 1), T(2, 2))
	d := NewDelta(rsSchema)
	d.Add(T(1, 1), -1)
	d.Add(T(3, 3), 1)
	d.Add(T(2, 2), -2) // over-delete: only one copy present
	before := r.Clone()
	if err := r.Apply(d); err == nil {
		t.Fatal("over-deleting delta must fail")
	}
	if !r.Equal(before) {
		t.Error("failed Apply must leave relation unchanged")
	}

	ok := NewDelta(rsSchema)
	ok.Add(T(1, 1), -1)
	ok.Add(T(3, 3), 2)
	if err := r.Apply(ok); err != nil {
		t.Fatal(err)
	}
	if r.Count(T(1, 1)) != 0 || r.Count(T(3, 3)) != 2 || r.Cardinality() != 3 {
		t.Errorf("after Apply: %v card=%d", r, r.Cardinality())
	}
	if err := r.Apply(nil); err != nil {
		t.Errorf("Apply(nil) should be a no-op, got %v", err)
	}
	bad := NewDelta(MustSchema("Z:int"))
	if err := r.Apply(bad); err == nil {
		t.Error("schema-mismatched delta must fail")
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 2))
	c := r.Clone()
	if err := c.Insert(T(3, 4), 1); err != nil {
		t.Fatal(err)
	}
	if r.Contains(T(3, 4)) {
		t.Error("Clone aliases original")
	}
	if !r.Equal(r) || !r.Equal(r.Clone()) {
		t.Error("Equal reflexivity broken")
	}
	if r.Equal(nil) {
		t.Error("Equal(nil) should be false")
	}
}

func TestRelationDiffFrom(t *testing.T) {
	old := FromTuples(rsSchema, T(1, 1), T(2, 2))
	cur := FromTuples(rsSchema, T(2, 2), T(3, 3))
	d := cur.DiffFrom(old)
	if d.Count(T(1, 1)) != -1 || d.Count(T(3, 3)) != 1 || d.Count(T(2, 2)) != 0 {
		t.Errorf("DiffFrom = %v", d)
	}
	// old + diff == cur
	reconstructed := old.Clone()
	if err := reconstructed.Apply(d); err != nil {
		t.Fatal(err)
	}
	if !reconstructed.Equal(cur) {
		t.Errorf("old+diff = %v, want %v", reconstructed, cur)
	}
}

func TestRelationTuplesSortedAndString(t *testing.T) {
	r := FromTuples(rsSchema, T(2, 1), T(1, 2), T(1, 1))
	ts := r.Tuples()
	if len(ts) != 3 || !ts[0].Equal(T(1, 1)) || !ts[1].Equal(T(1, 2)) || !ts[2].Equal(T(2, 1)) {
		t.Errorf("Tuples() = %v", ts)
	}
	if got := r.String(); got != "{[1 1], [1 2], [2 1]}" {
		t.Errorf("String = %q", got)
	}
	var seen int
	r.EachSorted(func(Tuple, int64) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Errorf("EachSorted early stop failed, seen=%d", seen)
	}
}

func TestDeltaBasics(t *testing.T) {
	d := NewDelta(rsSchema)
	if !d.Empty() {
		t.Error("new delta should be empty")
	}
	d.Add(T(1, 1), 1)
	d.Add(T(1, 1), -1)
	if !d.Empty() {
		t.Error("cancelling adds should empty the delta")
	}
	d.Add(T(1, 1), 2)
	d.Add(T(2, 2), -3)
	if d.Size() != 5 || d.Distinct() != 2 {
		t.Errorf("Size=%d Distinct=%d", d.Size(), d.Distinct())
	}
	n := d.Negate()
	if n.Count(T(1, 1)) != -2 || n.Count(T(2, 2)) != 3 {
		t.Errorf("Negate = %v", n)
	}
	ins, del := d.Split()
	if ins.Count(T(1, 1)) != 2 || !del.Empty() == false || del.Count(T(2, 2)) != -3 {
		t.Errorf("Split = %v / %v", ins, del)
	}
	if got := d.String(); got != "{+[1 1]x2, -[2 2]x3}" {
		t.Errorf("String = %q", got)
	}
}

func TestDeltaMergeAndEqual(t *testing.T) {
	a := InsertDelta(rsSchema, T(1, 1))
	b := DeleteDelta(rsSchema, T(1, 1))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Empty() {
		t.Error("merge of inverse deltas should cancel")
	}
	if err := a.Merge(NewDelta(MustSchema("Z:int"))); err == nil {
		t.Error("merging mismatched schemas must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Error("Merge(nil) should be a no-op")
	}
	var nilD *Delta
	if !nilD.Empty() || nilD.Size() != 0 || nilD.Distinct() != 0 {
		t.Error("nil delta should behave as empty")
	}
	if nilD.String() != "{}" {
		t.Error("nil delta String")
	}
	if !nilD.Equal(NewDelta(rsSchema)) {
		t.Error("nil delta should Equal empty delta")
	}
}

func TestModifyDelta(t *testing.T) {
	d := ModifyDelta(rsSchema, T(1, 1), T(1, 2))
	r := FromTuples(rsSchema, T(1, 1))
	if err := r.Apply(d); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(FromTuples(rsSchema, T(1, 2))) {
		t.Errorf("modify produced %v", r)
	}
}

func TestDeltaAddChecked(t *testing.T) {
	d := NewDelta(rsSchema)
	if err := d.AddChecked(T(1, 2), 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddChecked(T("x", "y"), 1); err == nil {
		t.Error("AddChecked must reject mismatched tuples")
	}
}

// Property: applying a random sequence of insert/delete deltas one at a time
// equals applying their merged sum, whenever both are legal.
func TestDeltaCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := New(rsSchema)
		for i := 0; i < 10; i++ {
			_ = base.Insert(T(rng.Intn(4), rng.Intn(4)), int64(1+rng.Intn(3)))
		}
		seq := base.Clone()
		sum := NewDelta(rsSchema)
		for i := 0; i < 20; i++ {
			d := NewDelta(rsSchema)
			tu := T(rng.Intn(4), rng.Intn(4))
			if rng.Intn(2) == 0 || seq.Count(tu) == 0 {
				d.Add(tu, int64(1+rng.Intn(2)))
			} else {
				d.Add(tu, -1)
			}
			if err := seq.Apply(d); err != nil {
				return false
			}
			_ = sum.Merge(d)
		}
		batch := base.Clone()
		if err := batch.Apply(sum); err != nil {
			return false
		}
		return batch.Equal(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: DiffFrom is exact for random relation pairs.
func TestDiffFromProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Relation {
			r := New(rsSchema)
			for i := 0; i < rng.Intn(12); i++ {
				_ = r.Insert(T(rng.Intn(3), rng.Intn(3)), int64(1+rng.Intn(3)))
			}
			return r
		}
		a, b := mk(), mk()
		got := a.Clone()
		if err := got.Apply(b.DiffFrom(a)); err != nil {
			return false
		}
		return got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAsDelta(t *testing.T) {
	r := FromTuples(rsSchema, T(1, 1), T(2, 2))
	d := r.AsDelta()
	empty := New(rsSchema)
	if err := empty.Apply(d); err != nil {
		t.Fatal(err)
	}
	if !empty.Equal(r) {
		t.Errorf("AsDelta round-trip = %v", empty)
	}
}
