// Package relation implements the relational substrate used throughout the
// WHIPS reproduction: typed values, schemas, tuples, and bag-semantics
// (counted multiset) relations and deltas.
//
// The MVC algorithms themselves are data-model independent (paper §3.1); the
// relational model here is the concrete model used by the paper's examples
// (project-select-join views such as V1 = R ⋈ S) and by our view managers'
// incremental delta computation. Bag semantics with signed counts is what
// makes incremental maintenance exact under projection (the classic counting
// algorithm), so relations and deltas share one counted representation.
package relation

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type enumerates the value types supported by the engine.
type Type uint8

// Supported value types.
const (
	Int Type = iota
	String
	Float
	Bool
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case String:
		return "string"
	case Float:
		return "float"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a single typed attribute value. The zero Value is the Int 0.
//
// Value is a small comparable struct (no interfaces) so tuples can be
// encoded cheaply and compared deterministically.
type Value struct {
	kind Type
	i    int64 // Int, and Bool (0/1)
	f    float64
	s    string
}

// IntVal returns an Int value.
func IntVal(v int64) Value { return Value{kind: Int, i: v} }

// StringVal returns a String value.
func StringVal(v string) Value { return Value{kind: String, s: v} }

// FloatVal returns a Float value.
func FloatVal(v float64) Value { return Value{kind: Float, f: v} }

// BoolVal returns a Bool value.
func BoolVal(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// V converts a native Go value to a Value. It accepts int, int64, string,
// float64 and bool, and panics on any other type; it is a convenience for
// tests and examples where literals dominate.
func V(v any) Value {
	switch x := v.(type) {
	case int:
		return IntVal(int64(x))
	case int64:
		return IntVal(x)
	case string:
		return StringVal(x)
	case float64:
		return FloatVal(x)
	case bool:
		return BoolVal(x)
	case Value:
		return x
	default:
		panic(fmt.Sprintf("relation.V: unsupported literal type %T", v))
	}
}

// Kind reports the value's type.
func (v Value) Kind() Type { return v.kind }

// Int returns the value as int64. It panics unless Kind is Int.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic("relation: Int() on " + v.kind.String())
	}
	return v.i
}

// Str returns the value as string. It panics unless Kind is String.
func (v Value) Str() string {
	if v.kind != String {
		panic("relation: Str() on " + v.kind.String())
	}
	return v.s
}

// Float returns the value as float64. It panics unless Kind is Float.
func (v Value) Float() float64 {
	if v.kind != Float {
		panic("relation: Float() on " + v.kind.String())
	}
	return v.f
}

// Bool returns the value as bool. It panics unless Kind is Bool.
func (v Value) Bool() bool {
	if v.kind != Bool {
		panic("relation: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// Equal reports whether two values have the same type and content.
func (v Value) Equal(o Value) bool { return v == o }

// Compare orders values: first by kind, then by content. It returns a
// negative, zero, or positive number. Float NaNs order before all other
// floats so sorting is total.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case Int, Bool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case String:
		return strings.Compare(v.s, o.s)
	case Float:
		a, b := v.f, o.f
		an, bn := math.IsNaN(a), math.IsNaN(b)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	return 0
}

// String renders the value for debugging and golden traces.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return strconv.FormatInt(v.i, 10)
	case String:
		return v.s
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		return strconv.FormatBool(v.i != 0)
	}
	return "?"
}

// appendEncoded appends a self-delimiting byte encoding of v to dst. The
// encoding is injective per kind, so encoded tuples compare equal exactly
// when the tuples do.
func (v Value) appendEncoded(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case Int, Bool:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i))
		dst = append(dst, buf[:]...)
	case Float:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		dst = append(dst, buf[:]...)
	case String:
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(len(v.s)))
		dst = append(dst, buf[:]...)
		dst = append(dst, v.s...)
	}
	return dst
}
