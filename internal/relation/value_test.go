package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if got := IntVal(42).Int(); got != 42 {
		t.Errorf("IntVal(42).Int() = %d", got)
	}
	if got := StringVal("abc").Str(); got != "abc" {
		t.Errorf("StringVal(abc).Str() = %q", got)
	}
	if got := FloatVal(2.5).Float(); got != 2.5 {
		t.Errorf("FloatVal(2.5).Float() = %v", got)
	}
	if !BoolVal(true).Bool() || BoolVal(false).Bool() {
		t.Error("BoolVal round-trip failed")
	}
}

func TestValueKind(t *testing.T) {
	cases := []struct {
		v    Value
		want Type
	}{
		{IntVal(1), Int},
		{StringVal("x"), String},
		{FloatVal(1), Float},
		{BoolVal(true), Bool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.want {
			t.Errorf("Kind(%v) = %v, want %v", c.v, c.v.Kind(), c.want)
		}
	}
}

func TestValueAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic calling Int() on a String value")
		}
	}()
	_ = StringVal("x").Int()
}

func TestVConversion(t *testing.T) {
	if V(7) != IntVal(7) {
		t.Error("V(int) mismatch")
	}
	if V(int64(7)) != IntVal(7) {
		t.Error("V(int64) mismatch")
	}
	if V("s") != StringVal("s") {
		t.Error("V(string) mismatch")
	}
	if V(1.5) != FloatVal(1.5) {
		t.Error("V(float64) mismatch")
	}
	if V(true) != BoolVal(true) {
		t.Error("V(bool) mismatch")
	}
	if V(IntVal(3)) != IntVal(3) {
		t.Error("V(Value) should be identity")
	}
}

func TestVPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported literal")
		}
	}()
	_ = V(struct{}{})
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int // sign
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{StringVal("a"), StringVal("b"), -1},
		{StringVal("b"), StringVal("b"), 0},
		{FloatVal(1.5), FloatVal(2.5), -1},
		{FloatVal(math.NaN()), FloatVal(0), -1},
		{FloatVal(math.NaN()), FloatVal(math.NaN()), 0},
		{BoolVal(false), BoolVal(true), -1},
		{IntVal(100), StringVal("a"), -1}, // kinds order Int < String
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
		if sign(c.b.Compare(c.a)) != -c.want {
			t.Errorf("Compare(%v, %v) not antisymmetric", c.b, c.a)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(-3), "-3"},
		{StringVal("hi"), "hi"},
		{FloatVal(0.5), "0.5"},
		{BoolVal(true), "true"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestEncodingInjective(t *testing.T) {
	// Strings that could collide under naive concatenation must not collide
	// under the length-prefixed encoding.
	a := T("ab", "c")
	b := T("a", "bc")
	if a.Key() == b.Key() {
		t.Error("length-prefixed encoding collided on string split")
	}
	// Int vs Float with same bits must differ by kind byte.
	c := T(0)
	d := T(0.0)
	if c.Key() == d.Key() {
		t.Error("encoding collided across kinds")
	}
}

func TestEncodingInjectiveProperty(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		t1 := T(a1, a2)
		t2 := T(b1, b2)
		return (t1.Key() == t2.Key()) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if Int.String() != "int" || String.String() != "string" ||
		Float.String() != "float" || Bool.String() != "bool" {
		t.Error("Type.String mismatch")
	}
	if Type(99).String() == "" {
		t.Error("unknown type should render non-empty")
	}
}
