// mqo.go is experiment W4: update throughput versus view count with and
// without the shared maintenance-plan DAG (internal/plan). The workload is
// the multi-query-optimization sweet spot — many views defined over the
// same aggregate-over-join subexpression, each distinguished only by a
// selection over the aggregate's output. Baseline maintenance re-derives
// the join and aggregate delta once per view per update; the DAG computes
// each shared node's delta once and fans it out, so the per-update cost of
// the shared part stops scaling with the view count.
package harness

import (
	"fmt"
	"time"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/runtime"
	"whips/internal/system"
	"whips/internal/workload"
)

// mqoSources builds one source carrying the R/S/T chain, preloaded inside
// the generator's key domain so join probes and group collisions are
// plentiful from the first update.
func mqoSources() []system.SourceDef {
	r := relation.New(workload.RSchema)
	s := relation.New(workload.SSchema)
	t := relation.New(workload.TSchema)
	for a := 0; a < 60; a++ {
		r.Insert(relation.T(int64(a), int64(a%6)), 1)
	}
	for b := 0; b < 6; b++ {
		for c := 0; c < 6; c += 2 {
			s.Insert(relation.T(int64(b), int64(c)), 1)
		}
	}
	for c := 0; c < 6; c++ {
		t.Insert(relation.T(int64(c), int64(c*3%6)), 1)
	}
	return []system.SourceDef{{ID: "src", Relations: map[string]*relation.Relation{
		"R": r, "S": s, "T": t,
	}}}
}

// mqoViews builds k views σ[SD ≥ tᵢ](γ[B; sum(D) as SD, count as N](R⋈S⋈T)):
// identical join+aggregate core (shared by every view), distinct selection
// thresholds (each view keeps its own root). The selection reads the
// aggregate's output column, so it cannot push below the aggregate and the
// shared core survives optimization in both modes.
func mqoViews(k int) []system.ViewDef {
	core := expr.JoinAll(
		expr.Scan("R", workload.RSchema),
		expr.Scan("S", workload.SSchema),
		expr.Scan("T", workload.TSchema),
	)
	agg, err := expr.Aggregate(core, []string{"B"}, []expr.AggSpec{
		{Op: expr.Sum, Attr: "D", As: "SD"},
		{Op: expr.Count, As: "N"},
	})
	if err != nil {
		panic(fmt.Sprintf("harness: mqo: %v", err))
	}
	views := make([]system.ViewDef, k)
	for i := 0; i < k; i++ {
		views[i] = system.ViewDef{
			ID:      msg.ViewID(fmt.Sprintf("V%02d", i+1)),
			Expr:    expr.MustSelect(agg, expr.Cmp("SD", expr.Ge, i)),
			Manager: system.Batching,
		}
	}
	return views
}

// MQO is experiment W4: wall-clock update throughput at 8 and 32
// overlapping views, baseline versus shared plans, on the goroutine
// runtime with no modeled compute — the measured work is the real delta
// evaluation, which is exactly what the DAG deduplicates.
func MQO(seed int64, updates int) Table {
	t := Table{
		ID:      "W4",
		Title:   "update throughput vs view count: per-view maintenance vs shared-plan DAG (wall clock)",
		Columns: []string{"views", "mode", "duration", "tput/s", "speedup", "plan nodes", "node deltas", "view deltas"},
		Notes:   "batching managers, no modeled compute; views share one γ(R⋈S⋈T) core; speedup is shared vs baseline at the same view count",
	}
	if updates <= 0 {
		updates = 200
	}
	for _, views := range []int{8, 32} {
		var base float64
		for _, shared := range []bool{false, true} {
			r := runMQO(seed, updates, views, shared)
			tput := float64(updates) / (float64(r.duration) / 1e9)
			mode, speedup := "baseline", "1.00x"
			if shared {
				mode = "shared"
				if base > 0 {
					speedup = fmt.Sprintf("%.2fx", tput/base)
				}
			} else {
				base = tput
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(views),
				mode,
				fmt.Sprintf("%.1fms", float64(r.duration)/1e6),
				fmt.Sprintf("%.0f", tput),
				speedup,
				fmt.Sprint(r.nodes),
				fmt.Sprint(r.nodeDeltas),
				fmt.Sprint(r.viewDeltas),
			})
		}
	}
	return t
}

type mqoResult struct {
	duration   int64 // wall ns from first inject to full freshness
	nodes      int
	nodeDeltas int64
	viewDeltas int64
}

func runMQO(seed int64, updates, views int, shared bool) mqoResult {
	srcs := mqoSources()
	sys, err := system.Build(system.Config{
		Sources:     srcs,
		Views:       mqoViews(views),
		Commit:      system.Sequential,
		SharedPlans: shared,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: mqo: %v", err))
	}
	net := runtime.New(sys.Nodes())
	net.Start()
	defer func() {
		net.Stop()
		sys.Close()
	}()

	gen := workload.NewGenerator(seed, srcs)
	start := time.Now()
	for i := 0; i < updates; i++ {
		_, writes := gen.Txn()
		u, err := sys.Cluster.Execute("src", writes...)
		if err != nil {
			panic(fmt.Sprintf("harness: mqo: %v", err))
		}
		sys.TrackUpdate(u)
		net.Inject(msg.NodeIntegrator, u)
	}
	if !runtime.WaitUntil(time.Minute, sys.Fresh) {
		panic("harness: mqo: system failed to reach freshness within 1m")
	}
	res := mqoResult{duration: time.Since(start).Nanoseconds()}
	if sys.Plan != nil {
		st := sys.Plan.Stats()
		res.nodes = st.Nodes
		res.nodeDeltas = st.NodeDeltas
		res.viewDeltas = st.ViewDeltas
	}
	return res
}
