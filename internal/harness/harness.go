// Package harness runs the performance study the paper defers to future
// work (§7): the effect of merging on view freshness, and the update loads
// under which the merge process becomes a bottleneck. Experiments run on
// the deterministic simulator, so every number is reproducible.
package harness

import (
	"fmt"
	"sort"

	"whips/internal/baseline"
	"whips/internal/consistency"
	"whips/internal/expr"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/sim"
	"whips/internal/source"
	"whips/internal/system"
	"whips/internal/warehouse"
	"whips/internal/workload"
)

// Arch selects the middle-tier architecture.
type Arch uint8

// Architectures under test.
const (
	// Concurrent is the paper's architecture: integrator + one view
	// manager per view + merge process(es).
	Concurrent Arch = iota
	// SequentialBaseline is §1.1's single sequential integrator process.
	SequentialBaseline
)

// String names the architecture.
func (a Arch) String() string {
	if a == SequentialBaseline {
		return "sequential-baseline"
	}
	return "concurrent"
}

// Params configures one experiment run.
type Params struct {
	Name    string
	Sources []system.SourceDef
	Views   []system.ViewDef
	Arch    Arch

	Commit           system.CommitKind
	BatchSize        int
	FlushAfter       int64
	DistributedMerge bool
	Algorithm        *merge.Algorithm

	// Updates is the number of source transactions to run.
	Updates int
	// Interval is the virtual time between source transactions (ns); the
	// update rate is 1e9/Interval per second.
	Interval int64
	// NetLatency is the [min,max) random edge latency (ns).
	NetLatency [2]int64
	// WarehouseDelay is the warehouse's per-transaction service time;
	// WarehousePerWrite adds a per-view-write cost, so wide transactions
	// (many views per update) take proportionally longer.
	WarehouseDelay    int64
	WarehousePerWrite int64
	// Seed drives the workload generator and latency model.
	Seed int64
	// DeleteFraction configures the generator.
	DeleteFraction float64
	// RelevanceFilter enables ref-[7] irrelevant-update filtering at the
	// integrator (Concurrent architecture only).
	RelevanceFilter bool
	// RelayRelevantSets enables §3.2's alternative REL routing.
	RelayRelevantSets bool
	// RestrictWrites, when non-empty, limits generated updates to these
	// relations.
	RestrictWrites []string
	// SourceQueryDelay adds a fixed service time (ns) to every source
	// snapshot-query answer, modeling slow or distant sources. Updates are
	// unaffected — only managers that query (CompleteQuery, QueryBatching,
	// degraded SelfMaintaining) pay it.
	SourceQueryDelay int64
	// CheckConsistency records warehouse states and judges the run.
	CheckConsistency bool
}

// Result is the measured outcome of one run.
type Result struct {
	Name    string
	Arch    Arch
	Updates int
	Txns    int64

	// Duration is the virtual time until full drain; DrainLag is the time
	// from the last source commit to the last warehouse commit.
	Duration int64
	DrainLag int64

	// Freshness: commit-to-apply lag per covered update.
	LagMean int64
	LagP95  int64
	LagMax  int64

	// Merge-side pressure.
	MaxVUT        int
	HoldMean      int64
	HoldMax       int64
	TxnsSubmitted int64
	ALsReceived   int64
	// DeltaTuples counts tuple changes that flowed THROUGH the merge
	// process (§6.3 staged lists bypass it).
	DeltaTuples int64
	// ViewWrites counts per-view deltas applied at the warehouse — the
	// warehouse-side work measure.
	ViewWrites int64

	// Messages counts every delivered message in the run (network traffic).
	Messages int64
	// SourceQueries counts snapshot queries the managers sent to the
	// sources — the round-trips self-maintenance exists to eliminate.
	SourceQueries int64

	// Level is the consistency verdict (CheckConsistency only);
	// Convergent reports whether the run even converged (a run that fails
	// to drain all views is not).
	Level      msg.Level
	Convergent bool
	Checked    bool
}

// LevelString names the verdict, distinguishing non-convergent runs.
func (r Result) LevelString() string {
	if r.Checked && !r.Convergent && r.Level == msg.Convergent {
		return "none"
	}
	return r.Level.String()
}

// Throughput returns drained updates per virtual second.
func (r Result) Throughput() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.Updates) / (float64(r.Duration) / 1e9)
}

// Run executes one experiment.
func Run(p Params) (Result, error) {
	res := Result{Name: p.Name, Arch: p.Arch, Updates: p.Updates}

	var simulator *sim.Sim
	clock := func() int64 {
		if simulator == nil {
			return 0
		}
		return simulator.Now()
	}

	type commitRec struct {
		rows []msg.UpdateID
		now  int64
	}
	var commits []commitRec
	var viewWrites int64
	observer := func(info warehouse.CommitInfo) {
		commits = append(commits, commitRec{rows: info.Txn.Rows, now: info.Now})
		viewWrites += int64(len(info.Txn.Writes))
	}

	var nodes []msg.Node
	var cluster *source.Cluster
	var wh *warehouse.Warehouse
	var sys *system.System

	switch p.Arch {
	case Concurrent:
		cfg := system.Config{
			Sources:           p.Sources,
			Views:             p.Views,
			Commit:            p.Commit,
			BatchSize:         p.BatchSize,
			FlushAfter:        p.FlushAfter,
			DistributedMerge:  p.DistributedMerge,
			RelevanceFilter:   p.RelevanceFilter,
			RelayRelevantSets: p.RelayRelevantSets,
			Algorithm:         p.Algorithm,
			LogStates:         p.CheckConsistency,
			Clock:             clock,
			CommitObserver:    observer,
		}
		if d := warehouseDelay(p); d != nil {
			cfg.WarehouseExecDelay = d
		}
		var err error
		sys, err = system.Build(cfg)
		if err != nil {
			return res, err
		}
		cluster, wh = sys.Cluster, sys.Warehouse
		nodes = sys.Nodes()
	case SequentialBaseline:
		cluster = source.NewCluster(clock)
		for _, s := range p.Sources {
			cluster.AddSource(s.ID)
			for name, rel := range s.Relations {
				if err := cluster.LoadRelation(s.ID, name, rel); err != nil {
					return res, err
				}
			}
		}
		bviews := make([]baseline.View, len(p.Views))
		initial := make(map[msg.ViewID]*relation.Relation, len(p.Views))
		for i, v := range p.Views {
			bviews[i] = baseline.View{ID: v.ID, Expr: v.Expr, ComputeDelay: v.ComputeDelay}
			val, err := evalAt0(cluster, v)
			if err != nil {
				return res, err
			}
			initial[v.ID] = val
		}
		integ, err := baseline.New(bviews, cluster.DatabaseAt(0))
		if err != nil {
			return res, err
		}
		whOpts := []warehouse.Option{warehouse.WithCommitObserver(observer)}
		if p.CheckConsistency {
			whOpts = append(whOpts, warehouse.WithStateLog())
		}
		if d := warehouseDelay(p); d != nil {
			whOpts = append(whOpts, warehouse.WithExecDelay(d))
		}
		wh = warehouse.New(initial, whOpts...)
		nodes = []msg.Node{source.NewNode(cluster), integ, wh}
	default:
		return res, fmt.Errorf("harness: unknown architecture %v", p.Arch)
	}

	// Wrap the source-cluster node so the run counts manager→source
	// snapshot queries and, with SourceQueryDelay set, answers them slowly.
	var srcQueries int64
	for i, n := range nodes {
		if n.ID() == msg.NodeCluster {
			nodes[i] = &delayQueries{inner: n, delay: p.SourceQueryDelay, queries: &srcQueries}
		}
	}

	var latency sim.Latency
	if p.NetLatency[1] > p.NetLatency[0] {
		latency = sim.UniformLatency(p.Seed+1, p.NetLatency[0], p.NetLatency[1])
	} else {
		latency = sim.ConstantLatency(p.NetLatency[0])
	}
	simulator = sim.New(nodes, latency)

	gen := workload.NewGenerator(p.Seed, p.Sources)
	if p.DeleteFraction > 0 {
		gen.DeleteFraction = p.DeleteFraction
	}
	if len(p.RestrictWrites) > 0 {
		gen.Restrict(p.RestrictWrites...)
	}
	interval := p.Interval
	if interval <= 0 {
		interval = 1
	}
	for i := 0; i < p.Updates; i++ {
		src, writes := gen.Txn()
		simulator.InjectAt(int64(i)*interval, msg.NodeCluster, msg.ExecuteTxn{Source: src, Writes: writes})
	}
	res.Duration = simulator.Run()
	res.Messages = simulator.Delivered()
	res.SourceQueries = srcQueries

	// Freshness: per covered update, warehouse-commit time minus source
	// commit time.
	commitAt := make(map[msg.UpdateID]int64)
	var lastSource int64
	for _, u := range cluster.Log() {
		commitAt[u.Seq] = u.CommitAt
		if u.CommitAt > lastSource {
			lastSource = u.CommitAt
		}
	}
	var lags []int64
	var lastCommit int64
	for _, c := range commits {
		if c.now > lastCommit {
			lastCommit = c.now
		}
		for _, row := range c.rows {
			if t, ok := commitAt[row]; ok {
				lags = append(lags, c.now-t)
			}
		}
	}
	res.Txns = int64(len(commits))
	res.ViewWrites = viewWrites
	res.DrainLag = lastCommit - lastSource
	if len(lags) > 0 {
		sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
		var sum int64
		for _, l := range lags {
			sum += l
		}
		res.LagMean = sum / int64(len(lags))
		res.LagP95 = lags[(len(lags)*95)/100]
		res.LagMax = lags[len(lags)-1]
	}

	if sys != nil {
		for _, m := range sys.Merges {
			st := m.Stats()
			if st.MaxRowsLive > res.MaxVUT {
				res.MaxVUT = st.MaxRowsLive
			}
			res.TxnsSubmitted += st.TxnsSubmitted
			res.ALsReceived += st.ALsReceived
			res.DeltaTuples += st.DeltaTuples
			if st.HoldMax > res.HoldMax {
				res.HoldMax = st.HoldMax
			}
			if st.HoldCount > 0 {
				res.HoldMean += st.HoldSum / st.HoldCount
			}
		}
		if len(sys.Merges) > 0 {
			res.HoldMean /= int64(len(sys.Merges))
		}
	}

	if p.CheckConsistency {
		rep, err := consistency.Check(cluster, viewExprs(p.Views), wh.Log())
		if err != nil {
			return res, err
		}
		res.Level = rep.Level()
		res.Convergent = rep.Convergent
		res.Checked = true
	}
	return res, nil
}

// delayQueries wraps the source-cluster node: it counts incoming snapshot
// queries and defers their answers by a fixed service time, so experiments
// can make source round-trips expensive without touching update latency.
type delayQueries struct {
	inner   msg.Node
	delay   int64
	queries *int64
}

// ID implements msg.Node.
func (d *delayQueries) ID() string { return d.inner.ID() }

// Handle implements msg.Node.
func (d *delayQueries) Handle(m any, now int64) []msg.Outbound {
	if _, ok := m.(msg.QueryRequest); ok {
		*d.queries++
	}
	out := d.inner.Handle(m, now)
	if d.delay > 0 {
		for i := range out {
			if _, ok := out[i].Msg.(msg.QueryResponse); ok {
				out[i].Delay += d.delay
			}
		}
	}
	return out
}

func warehouseDelay(p Params) func(msg.WarehouseTxn) int64 {
	if p.WarehouseDelay <= 0 && p.WarehousePerWrite <= 0 {
		return nil
	}
	base, per := p.WarehouseDelay, p.WarehousePerWrite
	return func(t msg.WarehouseTxn) int64 { return base + per*int64(len(t.Writes)) }
}

func viewExprs(views []system.ViewDef) map[msg.ViewID]expr.Expr {
	out := make(map[msg.ViewID]expr.Expr, len(views))
	for _, v := range views {
		out[v.ID] = v.Expr
	}
	return out
}

func evalAt0(cluster *source.Cluster, v system.ViewDef) (*relation.Relation, error) {
	return expr.Eval(v.Expr, cluster.DatabaseAt(0))
}
