// throughput.go is the one wall-clock experiment in the harness: it runs
// the real goroutine runtime (not the simulator) to measure how the view
// managers' shared worker pool converts compute concurrency into update
// throughput and freshness. Every other experiment is deterministic; this
// one measures actual elapsed time, so its absolute numbers vary across
// machines while the scaling shape (more workers → more overlap) is stable.
package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/runtime"
	"whips/internal/system"
	"whips/internal/warehouse"
	"whips/internal/workload"
)

// throughputCost is the modeled per-update compute cost (ns). It dominates
// the real evaluation work by orders of magnitude, so the measurement
// exercises latency overlap — the thing worker count governs — rather than
// raw CPU, and scales the same on any machine.
const throughputCost = 200_000

// Throughput is experiment W1: updates/sec and p99 freshness versus worker
// count and view count, on the goroutine runtime. Every update fans out to
// every view (all views read the shared relation S) and every view models
// 200µs of compute per update, so total modeled work per update grows with
// the view count. With one worker all busy periods serialize; with W
// workers up to W views compute at once, so throughput scales toward W
// until the view count (or the merge/warehouse path) caps it.
func Throughput(seed int64, updates int) Table {
	t := Table{
		ID:      "W1",
		Title:   "update throughput and p99 freshness vs worker-pool size (wall clock)",
		Columns: []string{"views", "workers", "duration", "tput/s", "speedup", "p99 lag"},
		Notes: fmt.Sprintf("goroutine runtime, batching managers, %dµs modeled compute per update per view; speedup is vs the 1-worker row",
			throughputCost/1000),
	}
	if updates <= 0 {
		updates = 200
	}
	for _, views := range []int{4, 8} {
		var base float64
		for _, workers := range []int{1, 2, 4} {
			r := runThroughput(seed, updates, views, workers)
			tput := float64(updates) / (float64(r.duration) / 1e9)
			if workers == 1 {
				base = tput
			}
			speedup := "1.00x"
			if base > 0 {
				speedup = fmt.Sprintf("%.2fx", tput/base)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(views),
				fmt.Sprint(workers),
				fmt.Sprintf("%.1fms", float64(r.duration)/1e6),
				fmt.Sprintf("%.0f", tput),
				speedup,
				fmt.Sprintf("%.1fms", float64(r.p99)/1e6),
			})
		}
	}
	return t
}

type throughputResult struct {
	duration int64 // wall ns from first inject to full freshness
	p99      int64 // wall ns commit→apply lag, 99th percentile
}

func runThroughput(seed int64, updates, views, workers int) throughputResult {
	ss := relation.MustSchema("B:int", "C:int")
	src := system.SourceDef{ID: "src", Relations: map[string]*relation.Relation{
		"S": relation.FromTuples(ss, relation.T(1, 10), relation.T(2, 20)),
	}}
	vdefs := make([]system.ViewDef, views)
	for i := range vdefs {
		vdefs[i] = system.ViewDef{
			ID:           msg.ViewID(fmt.Sprintf("V%d", i+1)),
			Expr:         expr.Scan("S", ss),
			Manager:      system.Batching,
			ComputeDelay: func(n int) int64 { return int64(n) * throughputCost },
		}
	}

	type commitRec struct {
		rows []msg.UpdateID
		now  int64
	}
	var cmu sync.Mutex
	var commits []commitRec
	sys, err := system.Build(system.Config{
		Sources: []system.SourceDef{src},
		Views:   vdefs,
		Commit:  system.Sequential,
		Workers: workers,
		Clock:   func() int64 { return time.Now().UnixNano() },
		CommitObserver: func(info warehouse.CommitInfo) {
			cmu.Lock()
			commits = append(commits, commitRec{rows: info.Txn.Rows, now: info.Now})
			cmu.Unlock()
		},
	})
	if err != nil {
		panic(fmt.Sprintf("harness: throughput: %v", err))
	}
	net := runtime.New(sys.Nodes())
	sys.Pool.Bind(net.Inject, net.Reserve)
	net.Start()
	defer func() {
		net.Stop()
		sys.Close()
	}()

	gen := workload.NewGenerator(seed, []system.SourceDef{src})
	start := time.Now()
	for i := 0; i < updates; i++ {
		_, writes := gen.Txn()
		u, err := sys.Cluster.Execute("src", writes...)
		if err != nil {
			panic(fmt.Sprintf("harness: throughput: %v", err))
		}
		sys.TrackUpdate(u)
		net.Inject(msg.NodeIntegrator, u)
	}
	if !runtime.WaitUntil(time.Minute, sys.Fresh) {
		panic("harness: throughput: system failed to reach freshness within 1m")
	}
	res := throughputResult{duration: time.Since(start).Nanoseconds()}

	commitAt := make(map[msg.UpdateID]int64)
	for _, u := range sys.Cluster.Log() {
		commitAt[u.Seq] = u.CommitAt
	}
	var lags []int64
	cmu.Lock()
	defer cmu.Unlock()
	for _, c := range commits {
		for _, row := range c.rows {
			if at, ok := commitAt[row]; ok {
				lags = append(lags, c.now-at)
			}
		}
	}
	if len(lags) > 0 {
		sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
		res.p99 = lags[(len(lags)*99)/100]
	}
	return res
}
