package harness

import (
	"fmt"
	"strings"

	"whips/internal/merge"
	"whips/internal/relation"
	"whips/internal/system"
	"whips/internal/workload"
)

// Table is one experiment's rendered result: the rows EXPERIMENTS.md and
// cmd/mvcbench report.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Render prints the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.Notes)
	}
	return b.String()
}

// RenderCSV prints the table as comma-separated values (header comment,
// column row, data rows) for plotting pipelines.
func (t Table) RenderCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func us(ns int64) string { return fmt.Sprintf("%.1fµs", float64(ns)/1e3) }

// delay returns a constant compute-delay model.
func delay(ns int64) func(int) int64 { return func(int) int64 { return ns } }

// mustRun panics on error; experiment configurations are static.
func mustRun(p Params) Result {
	r, err := Run(p)
	if err != nil {
		panic(fmt.Sprintf("harness: %s: %v", p.Name, err))
	}
	return r
}

// FreshnessVsLoad is experiment S1: mean and max view staleness as the
// update rate grows, for the concurrent architecture under SPA (complete
// managers), under PA (batching managers), and for the §1.1 sequential
// baseline. Expected shape: the baseline's lag explodes once the
// per-update service time (two view computations + a warehouse round
// trip) exceeds the arrival interval; the concurrent architecture stays
// flat far longer, and PA's batching absorbs overload by amortizing many
// updates per action list.
func FreshnessVsLoad(seed int64, updates int) Table {
	t := Table{
		ID:      "S1",
		Title:   "view freshness (commit→apply lag) vs update rate",
		Columns: []string{"interval", "rate/s", "SPA mean", "SPA max", "PA mean", "PA max", "base mean", "base max"},
		Notes:   "compute delay 200µs/view, net latency 20-50µs, warehouse 50µs/txn",
	}
	compute := delay(200_000)
	for _, interval := range []int64{2_000_000, 1_000_000, 500_000, 250_000, 125_000} {
		base := Params{
			Updates:        updates,
			Interval:       interval,
			NetLatency:     [2]int64{20_000, 50_000},
			WarehouseDelay: 50_000,
			Seed:           seed,
		}
		spa := base
		spa.Name = "spa"
		spa.Sources = workload.PaperSources()
		spa.Views = withDelay(workload.PaperViews(system.Complete), compute)
		rSPA := mustRun(spa)

		pa := base
		pa.Name = "pa"
		pa.Sources = workload.PaperSources()
		pa.Views = withDelay(workload.PaperViews(system.Batching), compute)
		rPA := mustRun(pa)

		bl := base
		bl.Name = "baseline"
		bl.Arch = SequentialBaseline
		bl.Sources = workload.PaperSources()
		bl.Views = withDelay(workload.PaperViews(system.Complete), compute)
		rBL := mustRun(bl)

		t.Rows = append(t.Rows, []string{
			us(interval),
			fmt.Sprintf("%.0f", 1e9/float64(interval)),
			us(rSPA.LagMean), us(rSPA.LagMax),
			us(rPA.LagMean), us(rPA.LagMax),
			us(rBL.LagMean), us(rBL.LagMax),
		})
	}
	return t
}

// MergeBottleneck is experiment S2: merge-process pressure as the number
// of views sharing one base relation grows. Every update fans out to every
// view, so the VUT widens and the sequential commit strategy serializes
// one transaction per update behind warehouse round trips. Expected
// shape: throughput degrades and VUT occupancy grows with view count;
// drain lag grows superlinearly once the merge+warehouse path saturates.
func MergeBottleneck(seed int64, updates int) Table {
	t := Table{
		ID:      "S2",
		Title:   "merge/warehouse pressure vs number of views over one shared relation",
		Columns: []string{"views", "drainLag", "lagMean", "lagMax", "maxVUT", "txns", "tput/s"},
		Notes:   "SPA; every update fans out to every view, warehouse pays 40µs/view-write; 250µs interval",
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		srcs, views := workload.SharedViews(k, system.Complete, delay(100_000))
		r := mustRun(Params{
			Name:              fmt.Sprintf("views=%d", k),
			Sources:           srcs,
			Views:             views,
			Updates:           updates,
			Interval:          250_000,
			NetLatency:        [2]int64{10_000, 10_000},
			WarehouseDelay:    20_000,
			WarehousePerWrite: 40_000,
			Seed:              seed,
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			us(r.DrainLag), us(r.LagMean), us(r.LagMax),
			fmt.Sprintf("%d", r.MaxVUT),
			fmt.Sprintf("%d", r.Txns),
			fmt.Sprintf("%.0f", r.Throughput()),
		})
	}
	return t
}

// StragglerVUT is experiment S2b, the paper's §4.2 observation made
// quantitative: "the total number of rows in the VUT could be as many as
// the total number of updates [but] the actual number is small in a system
// where no view manager is a bottleneck." One of the two view managers is
// made progressively slower than the arrival rate; the VUT's high-water
// mark tracks the straggler's backlog.
func StragglerVUT(seed int64, updates int) Table {
	t := Table{
		ID:      "S2b",
		Title:   "VUT occupancy with a straggler view manager (250µs arrivals)",
		Columns: []string{"straggler compute", "maxVUT", "drainLag", "lagMax"},
		Notes:   "two views over S; the fast manager computes in 20µs",
	}
	for _, slow := range []int64{100_000, 250_000, 500_000, 1_000_000} {
		srcs, views := workload.SharedViews(2, system.Complete, nil)
		views[0].ComputeDelay = delay(20_000)
		views[1].ComputeDelay = delay(slow)
		r := mustRun(Params{
			Name:       fmt.Sprintf("slow=%d", slow),
			Sources:    srcs,
			Views:      views,
			Updates:    updates,
			Interval:   250_000,
			NetLatency: [2]int64{10_000, 10_000},
			Seed:       seed,
		})
		t.Rows = append(t.Rows, []string{
			us(slow),
			fmt.Sprintf("%d", r.MaxVUT),
			us(r.DrainLag), us(r.LagMax),
		})
	}
	return t
}

// CommitStrategies is experiment S3 (§4.3): the three commit strategies
// under a slow warehouse. Expected shape: sequential pays one round trip
// per transaction; dependency overlaps independent transactions; batching
// collapses many transactions into few (cutting per-transaction overhead)
// at the cost of completeness — the consistency level drops to strong.
func CommitStrategies(seed int64, updates int) Table {
	t := Table{
		ID:      "S3",
		Title:   "commit strategies under 300µs warehouse transactions",
		Columns: []string{"strategy", "txns", "drainLag", "lagMean", "lagMax", "level"},
		Notes:   "SPA over the paper schema; batched: size 8, 500µs flush",
	}
	for _, c := range []struct {
		kind system.CommitKind
		name string
	}{
		{system.Sequential, "sequential"},
		{system.Dependency, "dependency"},
		{system.Batched, "batched(8)"},
	} {
		r := mustRun(Params{
			Name:             c.name,
			Sources:          workload.PaperSources(),
			Views:            workload.PaperViews(system.Complete),
			Commit:           c.kind,
			BatchSize:        8,
			FlushAfter:       500_000,
			Updates:          updates,
			Interval:         100_000,
			NetLatency:       [2]int64{10_000, 10_000},
			WarehouseDelay:   300_000,
			Seed:             seed,
			CheckConsistency: true,
		})
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", r.Txns),
			us(r.DrainLag), us(r.LagMean), us(r.LagMax),
			r.LevelString(),
		})
	}
	return t
}

// DistributedMergeScaling is experiment S4 (§6.1): k views over k disjoint
// relations coordinated by one merge process versus one merge process per
// group. Expected shape: with a single merge, the sequential commit
// strategy serializes all groups' transactions through one in-flight
// window; partitioned merges pipeline commits in parallel and lag drops
// accordingly.
func DistributedMergeScaling(seed int64, updates int) Table {
	t := Table{
		ID:      "S4",
		Title:   "distributed merge: 1 merge process vs one per disjoint group",
		Columns: []string{"views", "merges", "drainLag", "lagMean", "lagMax", "tput/s"},
		Notes:   "disjoint relations, SPA, sequential commits, 200µs warehouse",
	}
	for _, k := range []int{4, 8} {
		for _, dist := range []bool{false, true} {
			srcs, views := workload.DisjointViews(k, system.Complete, delay(50_000))
			r := mustRun(Params{
				Name:             fmt.Sprintf("k=%d dist=%v", k, dist),
				Sources:          srcs,
				Views:            views,
				DistributedMerge: dist,
				Updates:          updates,
				Interval:         100_000,
				NetLatency:       [2]int64{10_000, 10_000},
				WarehouseDelay:   200_000,
				Seed:             seed,
			})
			merges := 1
			if dist {
				merges = k
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", merges),
				us(r.DrainLag), us(r.LagMean), us(r.LagMax),
				fmt.Sprintf("%.0f", r.Throughput()),
			})
		}
	}
	return t
}

// Promptness is experiment S5 (§4.4): SPA applies action lists as soon as
// consistency allows; an algorithm that defers work (here: unbounded
// batching with a long flush window) is equally consistent eventually but
// far less fresh. Expected shape: hold/lag times an order of magnitude
// apart.
func Promptness(seed int64, updates int) Table {
	t := Table{
		ID:      "S5",
		Title:   "promptness: SPA vs defer-everything strawman",
		Columns: []string{"variant", "lagMean", "lagMax", "holdMean", "holdMax"},
		Notes:   "strawman = batched commits, batch size ≫ updates, 20ms flush",
	}
	// Asymmetric view managers (V1 fast, V2 slow) make the consistency-
	// required hold visible: V1's lists wait for V2's, ~180µs — that much
	// holding is *necessary*. The strawman holds everything until a 20ms
	// flush — that much is not.
	asymViews := func() []system.ViewDef {
		vs := workload.PaperViews(system.Complete)
		vs[0].ComputeDelay = delay(20_000)
		vs[1].ComputeDelay = delay(200_000)
		return vs
	}
	prompt := mustRun(Params{
		Name:       "SPA (prompt)",
		Sources:    workload.PaperSources(),
		Views:      asymViews(),
		Updates:    updates,
		Interval:   400_000,
		NetLatency: [2]int64{10_000, 10_000},
		Seed:       seed,
	})
	lazy := mustRun(Params{
		Name:       "defer-all strawman",
		Sources:    workload.PaperSources(),
		Views:      asymViews(),
		Commit:     system.Batched,
		BatchSize:  updates * 2,
		FlushAfter: 20_000_000,
		Updates:    updates,
		Interval:   400_000,
		NetLatency: [2]int64{10_000, 10_000},
		Seed:       seed,
	})
	for _, r := range []Result{prompt, lazy} {
		t.Rows = append(t.Rows, []string{
			r.Name, us(r.LagMean), us(r.LagMax), us(r.HoldMean), us(r.HoldMax),
		})
	}
	return t
}

// AlgorithmOverhead is experiment S6: SPA vs PA vs uncoordinated Forward
// on the same complete-manager workload, plus the consistency level each
// achieves — coordination costs essentially nothing in lag and buys the
// consistency level.
func AlgorithmOverhead(seed int64, updates int) Table {
	t := Table{
		ID:      "S6",
		Title:   "coordination overhead and achieved consistency level",
		Columns: []string{"merge", "lagMean", "lagMax", "txns", "level"},
		Notes:   "same workload and managers; only the merge algorithm differs",
	}
	for _, c := range []struct {
		name string
		alg  merge.Algorithm
		kind system.ManagerKind
	}{
		{"SPA", merge.SPA, system.Complete},
		{"PA", merge.PA, system.Complete},
		{"forward", merge.Forward, system.Complete},
	} {
		alg := c.alg
		r := mustRun(Params{
			Name:             c.name,
			Sources:          workload.PaperSources(),
			Views:            workload.PaperViews(c.kind),
			Algorithm:        &alg,
			Updates:          updates,
			Interval:         100_000,
			NetLatency:       [2]int64{10_000, 30_000},
			Seed:             seed,
			CheckConsistency: true,
		})
		t.Rows = append(t.Rows, []string{
			c.name, us(r.LagMean), us(r.LagMax),
			fmt.Sprintf("%d", r.Txns), r.LevelString(),
		})
	}
	return t
}

// FilterAblation is experiment S7, the §3.2 optimization the paper cites
// from Blakeley et al. [7]: discarding updates whose tuples provably
// cannot affect a view. With six highly selective views (C = 0..5) over
// values drawn from 0..5, each update matters to roughly one view; the
// filter cuts view-manager work, action lists, and warehouse writes by
// ~6× at identical consistency.
func FilterAblation(seed int64, updates int) Table {
	t := Table{
		ID:      "S7",
		Title:   "irrelevant-update filtering (ref [7]) ablation, 6 selective views",
		Columns: []string{"filter", "ALs", "viewWrites", "lagMean", "lagMax", "level"},
		Notes:   "views σ_{C=i}(S); every update touches S but matters to ~1 view",
	}
	for _, filter := range []bool{false, true} {
		srcs, views := workload.SelectiveViews(6, system.Complete, delay(100_000))
		r := mustRun(Params{
			Name:              fmt.Sprintf("filter=%v", filter),
			Sources:           srcs,
			Views:             views,
			Updates:           updates,
			Interval:          250_000,
			NetLatency:        [2]int64{10_000, 10_000},
			WarehousePerWrite: 40_000,
			Seed:              seed,
			RelevanceFilter:   filter,
			CheckConsistency:  true,
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", filter),
			fmt.Sprintf("%d", r.ALsReceived),
			fmt.Sprintf("%d", r.ViewWrites),
			us(r.LagMean), us(r.LagMax),
			r.LevelString(),
		})
	}
	return t
}

// RelayAblation is experiment S8, the §3.2 alternative the paper sketches:
// instead of the integrator sending RELᵢ to the merge process directly, it
// attaches it to one designated view manager's copy of the update. "This
// reduces the number of messages and may be more efficient." The table
// measures total network messages and confirms the consistency level is
// unchanged.
func RelayAblation(seed int64, updates int) Table {
	t := Table{
		ID:      "S8",
		Title:   "§3.2 alternative REL routing (relay via view managers)",
		Columns: []string{"routing", "managers", "messages", "lagMean", "level"},
		Notes:   "paper schema, SPA/PA; relay saves one integrator→merge message per update",
	}
	for _, c := range []struct {
		name  string
		kind  system.ManagerKind
		relay bool
	}{
		{"direct", system.Complete, false},
		{"relayed", system.Complete, true},
		{"direct", system.Batching, false},
		{"relayed", system.Batching, true},
	} {
		views := workload.PaperViews(c.kind)
		if c.kind == system.Batching {
			views = withDelay(views, delay(300_000))
		}
		r := mustRun(Params{
			Name:              fmt.Sprintf("%s/%s", c.name, c.kind),
			Sources:           workload.PaperSources(),
			Views:             views,
			Updates:           updates,
			Interval:          100_000,
			NetLatency:        [2]int64{10_000, 30_000},
			Seed:              seed,
			RelayRelevantSets: c.relay,
			CheckConsistency:  true,
		})
		t.Rows = append(t.Rows, []string{
			c.name, c.kind.String(),
			fmt.Sprintf("%d", r.Messages),
			us(r.LagMean), r.LevelString(),
		})
	}
	return t
}

// StagedTransfer is experiment S9, §6.3's closing remark: "If the amount
// of data passing from the view manager to the warehouse is large, the MP
// can be modified to coordinate transaction commit only, instead of
// handling all data transfer." Both views refresh every 5 updates; one run
// ships diffs through the merge process, the other stages them directly at
// the warehouse. The data volume through the merge drops to zero while
// consistency and freshness are unchanged.
func StagedTransfer(seed int64, updates int) Table {
	t := Table{
		ID:      "S9",
		Title:   "§6.3 coordinate-commit-only transfer for refresh views",
		Columns: []string{"transfer", "mergeDeltaTuples", "txns", "lagMean", "level"},
		Notes:   "two batching views (400µs compute) over the paper schema",
	}
	for _, staged := range []bool{false, true} {
		views := workload.PaperViews(system.Batching)
		for i := range views {
			views[i].ComputeDelay = delay(400_000)
			views[i].StageData = staged
		}
		name := "through-merge"
		if staged {
			name = "staged"
		}
		r := mustRun(Params{
			Name:             name,
			Sources:          workload.PaperSources(),
			Views:            views,
			Updates:          updates,
			Interval:         100_000,
			NetLatency:       [2]int64{10_000, 30_000},
			Seed:             seed,
			CheckConsistency: true,
		})
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", r.DeltaTuples),
			fmt.Sprintf("%d", r.Txns),
			us(r.LagMean), r.LevelString(),
		})
	}
	return t
}

// ManagerComparison is experiment S10: the same workload maintained by
// each view-manager kind, comparing freshness, action-list counts and the
// achieved consistency level — the §6.3 menu quantified. Expected shape:
// per-update managers (complete, complete-query) are freshest and
// complete; batching variants trade lag spikes for fewer lists; refresh
// and complete-N lag by design (their boundary holds tails); convergent
// gives up ordering entirely.
func ManagerComparison(seed int64, updates int) Table {
	t := Table{
		ID:      "S10",
		Title:   "view-manager kinds on one workload (200µs compute, 250µs arrivals)",
		Columns: []string{"manager", "ALs", "txns", "lagMean", "lagMax", "level"},
		Notes:   "S-only updates, count aligned to boundary 4; query kinds model cost as source round-trips rather than ComputeDelay",
	}
	kinds := []system.ManagerKind{
		system.Complete, system.CompleteQuery, system.Batching,
		system.QueryBatching, system.Refresh, system.CompleteN, system.Convergent,
	}
	// Align the workload so boundary managers drain: make every update hit
	// S (both views), and run a multiple of 4 of them.
	n := (updates / 4) * 4
	for _, k := range kinds {
		views := workload.PaperViews(k)
		for i := range views {
			views[i].Param = 4
			views[i].ComputeDelay = delay(200_000)
		}
		srcs := []system.SourceDef{{ID: "src1", Relations: map[string]*relation.Relation{
			"R": relation.FromTuples(workload.RSchema, relation.T(1, 2)),
			"S": relation.New(workload.SSchema),
			"T": relation.FromTuples(workload.TSchema, relation.T(3, 4)),
		}}}
		p := Params{
			Name:             k.String(),
			Sources:          srcs,
			Views:            views,
			Updates:          n,
			Interval:         250_000,
			NetLatency:       [2]int64{10_000, 10_000},
			Seed:             seed,
			RestrictWrites:   []string{"S"},
			CheckConsistency: true,
		}
		r := mustRun(p)
		t.Rows = append(t.Rows, []string{
			k.String(),
			fmt.Sprintf("%d", r.ALsReceived),
			fmt.Sprintf("%d", r.Txns),
			us(r.LagMean), us(r.LagMax),
			r.LevelString(),
		})
	}
	return t
}

// SelfMaint is experiment W6: freshness under source latency, query-based
// maintenance (CompleteQuery: two snapshot round-trips per update) versus
// auxiliary-relation self-maintenance (zero source messages). Expected
// shape: the query manager's lag tracks the injected source delay almost
// linearly — every update waits for a round trip, and at high delays
// updates pile up behind the in-flight round — while self-maintenance is
// flat across the whole sweep, with srcQ/upd pinned at 0.
func SelfMaint(seed int64, updates int) Table {
	t := Table{
		ID:      "W6",
		Title:   "self-maintenance vs query-based maintenance under source latency",
		Columns: []string{"srcDelay", "manager", "lagMean", "lagP95", "drainLag", "msgs/upd", "srcQ/upd", "level"},
		Notes:   "paper schema, SPA, 250µs arrivals; srcDelay is added to every source snapshot-query answer",
	}
	for _, d := range []int64{0, 200_000, 1_000_000, 5_000_000, 20_000_000} {
		for _, k := range []system.ManagerKind{system.CompleteQuery, system.SelfMaintaining} {
			r := mustRun(Params{
				Name:             fmt.Sprintf("%s/delay=%d", k, d),
				Sources:          workload.PaperSources(),
				Views:            workload.PaperViews(k),
				Updates:          updates,
				Interval:         250_000,
				NetLatency:       [2]int64{10_000, 10_000},
				SourceQueryDelay: d,
				Seed:             seed,
				CheckConsistency: true,
			})
			t.Rows = append(t.Rows, []string{
				us(d), k.String(),
				us(r.LagMean), us(r.LagP95), us(r.DrainLag),
				fmt.Sprintf("%.1f", float64(r.Messages)/float64(updates)),
				fmt.Sprintf("%.1f", float64(r.SourceQueries)/float64(updates)),
				r.LevelString(),
			})
		}
	}
	return t
}

// AllExperiments runs the full study.
func AllExperiments(seed int64, updates int) []Table {
	return []Table{
		FreshnessVsLoad(seed, updates),
		MergeBottleneck(seed, updates),
		StragglerVUT(seed, updates),
		CommitStrategies(seed, updates),
		DistributedMergeScaling(seed, updates),
		Promptness(seed, updates),
		AlgorithmOverhead(seed, updates),
		FilterAblation(seed, updates),
		RelayAblation(seed, updates),
		StagedTransfer(seed, updates),
		ManagerComparison(seed, updates),
		SelfMaint(seed, updates),
	}
}

func withDelay(views []system.ViewDef, d func(int) int64) []system.ViewDef {
	for i := range views {
		views[i].ComputeDelay = d
	}
	return views
}
