// failover.go is the fifth wall-clock experiment: crash failover latency.
// A primary → relay → leaf replication chain runs over loopback TCP with
// live commits; the primary is severed mid-stream and the relay's
// coordinator detects the death, wins a deterministic election, promotes
// itself (seeding a fresh warehouse from its replica's exact committed
// snapshot), and resumes the feed for the leaf. Each cell sweeps the
// suspicion threshold — the dominant failover cost — and splits the total
// into detect / elect / resume, with repl.Fingerprint equality across the
// survivors proving no committed epoch was lost or rewritten.
package harness

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/repl"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

// failoverCard is the seeded view cardinality of the chain's catch-up
// checkpoint.
const failoverCard = 1000

// Failover is experiment W5: failover latency (detect / elect / resume)
// versus the suspicion threshold, on a primary → relay → leaf chain.
func Failover(seed int64, updates int) Table {
	t := Table{
		ID:      "W5",
		Title:   "crash failover latency vs suspicion threshold (wall clock)",
		Columns: []string{"suspect after", "epochs", "detect ms", "elect ms", "resume ms", "total ms", "fingerprints"},
		Notes: fmt.Sprintf("%d-tuple seed view on a primary→relay→leaf loopback chain with live commits; the primary is severed, the relay detects via connection death, elects deterministically (newest durable epoch wins), promotes at a bumped term, and the leaf resumes streaming from it. detect is bounded below by the threshold; fingerprints compares relay vs leaf over every surviving epoch after convergence",
			failoverCard),
	}
	for _, suspect := range []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		r := runFailover(seed, suspect)
		fp := "MISMATCH"
		if r.fingerprintOK {
			fp = "identical"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(suspect),
			fmt.Sprint(r.epochs),
			fmt.Sprintf("%.1f", float64(r.detect)/1e6),
			fmt.Sprintf("%.1f", float64(r.elect)/1e6),
			fmt.Sprintf("%.1f", float64(r.resume)/1e6),
			fmt.Sprintf("%.1f", float64(r.detect+r.elect+r.resume)/1e6),
			fp,
		})
	}
	_ = updates
	return t
}

type failoverResult struct {
	epochs        int64 // epochs committed before the crash
	detect        int64 // ns from sever to suspicion trip
	elect         int64 // ns for the election + promotion
	resume        int64 // ns from promotion until the leaf applies a new epoch
	fingerprintOK bool
}

func runFailover(seed int64, suspect time.Duration) failoverResult {
	sch := relation.MustSchema("A:int", "B:int")
	tuples := make([]relation.Tuple, failoverCard)
	for i := range tuples {
		tuples[i] = relation.T(i, i%13)
	}
	var prim *repl.Primary
	w := warehouse.New(map[msg.ViewID]*relation.Relation{
		"V": relation.FromTuples(sch, tuples...),
	}, warehouse.WithStateLogCap(64), warehouse.WithReplFeed(1024, func(e msg.ReplEpoch) {
		prim.OnCommit(e)
	}))
	prim = repl.NewPrimary(repl.PrimaryConfig{Source: w})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go prim.Serve(ln)

	// Relay: replica with a retained delta ring re-exported as its own feed.
	relayRep := warehouse.NewReplica(warehouse.WithReplicaFeed(1024))
	relay := repl.NewPrimary(repl.PrimaryConfig{Source: relayRep, Relay: true})
	defer relay.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer rln.Close()
	go relay.Serve(rln)
	relayFol := repl.NewFollower(repl.FollowerConfig{
		Name:    "relay",
		Dial:    func() (io.ReadWriteCloser, error) { return net.Dial("tcp", ln.Addr().String()) },
		Replica: relayRep,
		Relay:   relay,
		Backoff: wire.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: seed},
	})
	defer relayFol.Close()

	var leafApplied atomic.Int64
	leafRep := warehouse.NewReplica()
	leafFol := repl.NewFollower(repl.FollowerConfig{
		Name:    "leaf",
		Dial:    func() (io.ReadWriteCloser, error) { return net.Dial("tcp", rln.Addr().String()) },
		Replica: leafRep,
		Backoff: wire.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: seed + 1},
		OnApply: func(applied, head int64) { leafApplied.Store(applied) },
	})
	defer leafFol.Close()

	// Commit a pre-crash burst and wait for full-chain convergence.
	var epochs int64
	commit := func(wh *warehouse.Warehouse, id int) {
		wh.Handle(msg.SubmitTxn{Txn: msg.WarehouseTxn{
			ID:   msg.TxnID(id),
			Rows: []msg.UpdateID{msg.UpdateID(id)},
			Writes: []msg.ViewWrite{{
				View:  "V",
				Upto:  msg.UpdateID(id),
				Delta: relation.InsertDelta(sch, relation.T(failoverCard+id, id%13)),
			}},
		}}, time.Now().UnixNano())
	}
	for i := 1; i <= 20; i++ {
		commit(w, i)
		epochs++
	}
	head := w.Snapshot().Epoch
	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				panic("harness: failover: timeout waiting for " + what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(func() bool { return leafRep.Epoch() == head && relayRep.Epoch() == head }, "chain convergence")

	// Sever the primary: close its listener and feed, killing every live
	// connection — the transport-level death the relay's suspicion watches.
	sever := time.Now()
	ln.Close()
	prim.Close()
	waitFor(func() bool { return relayFol.DisconnectedFor() >= suspect }, "suspicion")
	detect := time.Since(sever)

	// One deterministic election round on the relay: only reachable node,
	// newest durable epoch, so it promotes itself.
	electStart := time.Now()
	coord := repl.NewCoordinator(repl.CoordinatorConfig{
		Self: func() repl.PeerStatus {
			return repl.PeerStatus{
				Name: "relay", Role: "relay",
				Term: relayRep.Term(), Leader: relayRep.Leader(),
				Epoch: relayRep.Epoch(), Addr: rln.Addr().String(),
			}
		},
		Suspect:      relayFol.DisconnectedFor,
		SuspectAfter: suspect,
		Interval:     time.Hour, // ElectOnce below drives the round; the loop must not race it
		Promote: func(term int64) error {
			snap := relayRep.Snapshot()
			if snap == nil {
				return fmt.Errorf("nothing replicated")
			}
			promoted := warehouse.NewFromSnapshot(snap,
				warehouse.WithStateLogCap(64),
				warehouse.WithReplFeed(1024, func(e msg.ReplEpoch) { relay.OnCommit(e) }))
			relay.Promote(promoted, term, "relay")
			w = promoted
			return nil
		},
		Follow: func(p repl.PeerStatus) error { return fmt.Errorf("unexpected follow of %q", p.Name) },
	})
	if _, err := coord.ElectOnce(); err != nil {
		panic("harness: failover: election: " + err.Error())
	}
	coord.Close()
	elect := time.Since(electStart)

	// Resume: the promoted relay commits a new epoch; failover is complete
	// when the leaf applies it through the re-fenced feed.
	resumeStart := time.Now()
	commit(w, 21)
	epochs++
	waitFor(func() bool { return leafApplied.Load() == head+1 }, "leaf resume")
	resume := time.Since(resumeStart)

	// Judge: every surviving epoch must fingerprint identically between the
	// promoted relay and the leaf.
	ok := repl.Fingerprint(w.Snapshot()) == repl.Fingerprint(leafRep.Snapshot())
	for e := head; e >= head-4 && ok; e-- {
		ls, lerr := leafRep.SnapshotAt(e)
		rs, rerr := w.SnapshotAt(int(e))
		if lerr != nil || rerr != nil {
			continue // outside a retained window — nothing served to compare
		}
		ok = repl.Fingerprint(ls) == repl.Fingerprint(rs)
	}

	return failoverResult{
		epochs:        epochs,
		detect:        detect.Nanoseconds(),
		elect:         elect.Nanoseconds(),
		resume:        resume.Nanoseconds(),
		fingerprintOK: ok,
	}
}
