// readload.go is the second wall-clock experiment: it measures the
// warehouse's aggregate read throughput under live maintenance, comparing
// the lock-free epoch-snapshot read path against the retained mutex+clone
// baseline. Like Throughput (W1) it runs real goroutines and real elapsed
// time, so absolute numbers vary across machines while the shape — snapshot
// reads scale with reader count, clone reads serialize on the warehouse
// mutex and pay a deep copy per read — is stable.
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/warehouse"
)

// readLoadWindow is the wall-clock measurement window per cell. Long enough
// to amortize goroutine start/stop, short enough that the full experiment
// (2 modes × 3 reader counts) stays under a second.
const readLoadWindow = 120 * time.Millisecond

// readLoadCard is the seeded view cardinality. Big enough that the
// baseline's per-read deep clone costs real work (the regime the epoch
// snapshot is designed to eliminate), small enough to build instantly.
const readLoadCard = 2000

// ReadLoad is experiment W2: aggregate reads/sec versus reader-goroutine
// count for the two read paths, with a feeder goroutine committing
// maintenance transactions throughout. Each reader loops ReadAll (or
// ReadAllMutexClone) as fast as it can for a fixed window. The snapshot
// path is one atomic pointer load per read, so its aggregate throughput
// scales with cores and its commit latency is unaffected by readers; the
// clone path serializes readers and commits on one mutex and deep-copies
// every view per read.
func ReadLoad(seed int64, updates int) Table {
	t := Table{
		ID:      "W2",
		Title:   "warehouse read throughput vs reader count (wall clock)",
		Columns: []string{"mode", "readers", "reads/s", "speedup", "commit µs"},
		Notes: fmt.Sprintf("%d-tuple view, %v window per cell, live maintenance commits; speedup is vs mutex-clone at the same reader count",
			readLoadCard, readLoadWindow),
	}
	baseline := map[int]float64{}
	for _, mode := range []string{"mutex-clone", "snapshot"} {
		for _, readers := range []int{1, 2, 4} {
			r := runReadLoad(seed, mode, readers)
			rate := float64(r.reads) / (float64(r.elapsed) / 1e9)
			speedup := "1.00x"
			if mode == "mutex-clone" {
				baseline[readers] = rate
			} else if b := baseline[readers]; b > 0 {
				speedup = fmt.Sprintf("%.2fx", rate/b)
			}
			t.Rows = append(t.Rows, []string{
				mode,
				fmt.Sprint(readers),
				fmt.Sprintf("%.0f", rate),
				speedup,
				fmt.Sprintf("%.1f", float64(r.commitNS)/1e3),
			})
		}
	}
	return t
}

type readLoadResult struct {
	reads    int64 // total ReadAll calls completed across readers
	elapsed  int64 // wall ns of the measurement window
	commitNS int64 // mean ns per maintenance commit during the window
}

func runReadLoad(seed int64, mode string, readers int) readLoadResult {
	sch := relation.MustSchema("A:int", "B:int")
	tuples := make([]relation.Tuple, readLoadCard)
	for i := range tuples {
		tuples[i] = relation.T(i, i%17)
	}
	w := warehouse.New(map[msg.ViewID]*relation.Relation{
		"V": relation.FromTuples(sch, tuples...),
	}, warehouse.WithStateLogCap(64))

	read := w.ReadAll
	if mode == "mutex-clone" {
		read = w.ReadAllMutexClone
	}

	var (
		reads   atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		commits int64
		totalNS int64
	)
	// Feeder: a steady maintenance load of single-tuple commits, paced so
	// the commit rate itself (not reader interference) stays constant
	// across modes. The pace leaves the mutex mostly free, so any commit
	// slowdown in the table is reader-induced contention.
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := msg.TxnID(seed%1000 + 1)
		next := readLoadCard
		for !stop.Load() {
			t0 := time.Now()
			w.Handle(msg.SubmitTxn{Txn: msg.WarehouseTxn{
				ID:   id,
				Rows: []msg.UpdateID{msg.UpdateID(id)},
				Writes: []msg.ViewWrite{{
					View:  "V",
					Upto:  msg.UpdateID(id),
					Delta: relation.InsertDelta(sch, relation.T(next, next%17)),
				}},
			}}, t0.UnixNano())
			totalNS += time.Since(t0).Nanoseconds()
			commits++
			id++
			next++
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n int64
			for !stop.Load() {
				vs := read()
				if len(vs) != 1 {
					panic("harness: readload: wrong view count")
				}
				n++
			}
			reads.Add(n)
		}()
	}
	start := time.Now()
	time.Sleep(readLoadWindow)
	stop.Store(true)
	wg.Wait()
	res := readLoadResult{reads: reads.Load(), elapsed: time.Since(start).Nanoseconds()}
	if commits > 0 {
		res.commitNS = totalNS / commits
	}
	return res
}
