// replication.go is the third wall-clock experiment: read-replica scaling.
// A primary warehouse commits a live maintenance workload while 1→4
// followers stream its epochs over loopback TCP and serve reads from their
// own replicas. Aggregate read throughput should scale with follower count
// — every follower reads its own atomic snapshot pointer, no shared lock,
// no cross-process coordination — while the lag distribution shows how far
// behind the primary's head each served epoch was.
package harness

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/repl"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

// replWindow is the wall-clock measurement window per follower count.
const replWindow = 150 * time.Millisecond

// replCard is the seeded view cardinality shipped in the catch-up
// checkpoint — large enough that replication moves real data.
const replCard = 2000

// Replication is experiment W3: aggregate follower reads/sec and epoch lag
// versus follower count, with the primary committing throughout. Scaling
// is relative to the single-follower cell.
func Replication(seed int64, updates int) Table {
	t := Table{
		ID:      "W3",
		Title:   "read-replica throughput and epoch lag vs follower count (wall clock)",
		Columns: []string{"followers", "readers", "reads/s", "scaling", "epochs", "lag p50", "lag p95", "lag max"},
		Notes: fmt.Sprintf("%d-tuple seed view, %v window, 2 readers per follower, live commits streamed over loopback TCP; lag is primary head minus applied epoch at each apply. Aggregate reads/s is bounded by cores (followers share this machine): near-flat scaling means adding replicas costs nothing per replica, with each extra machine adding its own read capacity",
			replCard, replWindow),
	}
	var base float64
	for _, followers := range []int{1, 2, 4} {
		r := runReplication(seed, followers)
		rate := float64(r.reads) / (float64(r.elapsed) / 1e9)
		scaling := "1.00x"
		if followers == 1 {
			base = rate
		} else if base > 0 {
			scaling = fmt.Sprintf("%.2fx", rate/base)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(followers),
			fmt.Sprint(2 * followers),
			fmt.Sprintf("%.0f", rate),
			scaling,
			fmt.Sprint(r.epochs),
			fmt.Sprint(r.lagP50),
			fmt.Sprint(r.lagP95),
			fmt.Sprint(r.lagMax),
		})
	}
	_ = updates
	return t
}

type replResult struct {
	reads   int64 // snapshot reads served across all followers
	elapsed int64 // wall ns of the measurement window
	epochs  int64 // epochs the primary committed during the window
	lagP50  int64
	lagP95  int64
	lagMax  int64
}

func runReplication(seed int64, followers int) replResult {
	sch := relation.MustSchema("A:int", "B:int")
	tuples := make([]relation.Tuple, replCard)
	for i := range tuples {
		tuples[i] = relation.T(i, i%17)
	}
	var prim *repl.Primary
	w := warehouse.New(map[msg.ViewID]*relation.Relation{
		"V": relation.FromTuples(sch, tuples...),
	}, warehouse.WithStateLogCap(64), warehouse.WithReplFeed(1024, func(e msg.ReplEpoch) {
		prim.OnCommit(e)
	}))
	prim = repl.NewPrimary(repl.PrimaryConfig{Source: w})
	defer prim.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	go prim.Serve(ln)
	addr := ln.Addr().String()

	var (
		lagMu   sync.Mutex
		lags    []int64
		reads   atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		commits int64
	)
	reps := make([]*warehouse.Replica, followers)
	fols := make([]*repl.Follower, followers)
	for i := range reps {
		rep := warehouse.NewReplica()
		reps[i] = rep
		fols[i] = repl.NewFollower(repl.FollowerConfig{
			Name:    fmt.Sprintf("bench%d", i),
			Dial:    func() (io.ReadWriteCloser, error) { return net.Dial("tcp", addr) },
			Replica: rep,
			Backoff: wire.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Seed: seed + int64(i)},
			OnApply: func(applied, head int64) {
				lagMu.Lock()
				lags = append(lags, head-applied)
				lagMu.Unlock()
			},
		})
		defer fols[i].Close()
	}
	// Wait for every follower's catch-up checkpoint before the window
	// opens, so the cell measures steady-state streaming, not join cost.
	deadline := time.Now().Add(5 * time.Second)
	for _, rep := range reps {
		for !rep.Ready() {
			if time.Now().After(deadline) {
				panic("harness: replication: follower never caught up")
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Feeder: paced single-tuple commits, identical across cells so the
	// replication load (not the commit rate) is the variable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := msg.TxnID(seed%1000 + 1)
		next := replCard
		for !stop.Load() {
			w.Handle(msg.SubmitTxn{Txn: msg.WarehouseTxn{
				ID:   id,
				Rows: []msg.UpdateID{msg.UpdateID(id)},
				Writes: []msg.ViewWrite{{
					View:  "V",
					Upto:  msg.UpdateID(id),
					Delta: relation.InsertDelta(sch, relation.T(next, next%17)),
				}},
			}}, time.Now().UnixNano())
			commits++
			id++
			next++
			time.Sleep(300 * time.Microsecond)
		}
	}()
	for _, rep := range reps {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(rep *warehouse.Replica) {
				defer wg.Done()
				var n int64
				for !stop.Load() {
					s := rep.Snapshot()
					rel, ok := s.Relation("V")
					if !ok || rel.Cardinality() < replCard {
						panic("harness: replication: replica lost the view")
					}
					n++
				}
				reads.Add(n)
			}(rep)
		}
	}
	start := time.Now()
	time.Sleep(replWindow)
	stop.Store(true)
	wg.Wait()

	res := replResult{reads: reads.Load(), elapsed: time.Since(start).Nanoseconds(), epochs: commits}
	lagMu.Lock()
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	if n := len(lags); n > 0 {
		res.lagP50 = lags[n/2]
		res.lagP95 = lags[n*95/100]
		res.lagMax = lags[n-1]
	}
	lagMu.Unlock()
	return res
}
