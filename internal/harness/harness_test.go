package harness

import (
	"strconv"
	"strings"
	"testing"

	"whips/internal/msg"
	"whips/internal/system"
	"whips/internal/workload"
)

func smallParams(arch Arch, kind system.ManagerKind) Params {
	return Params{
		Name:             "test",
		Arch:             arch,
		Sources:          workload.PaperSources(),
		Views:            workload.PaperViews(kind),
		Updates:          30,
		Interval:         100_000,
		NetLatency:       [2]int64{10_000, 30_000},
		Seed:             42,
		CheckConsistency: true,
	}
}

func TestRunConcurrentCompleteIsComplete(t *testing.T) {
	r, err := Run(smallParams(Concurrent, system.Complete))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked || r.Level != msg.Complete {
		t.Errorf("level = %v (checked=%v)", r.Level, r.Checked)
	}
	if r.Updates != 30 || r.Txns == 0 || r.Duration == 0 {
		t.Errorf("result = %+v", r)
	}
	if r.LagMax < r.LagMean || r.LagMean <= 0 {
		t.Errorf("lag stats: mean=%d max=%d", r.LagMean, r.LagMax)
	}
	if r.Throughput() <= 0 {
		t.Error("throughput should be positive")
	}
}

func TestRunBaselineIsCompleteAndSlower(t *testing.T) {
	p := smallParams(SequentialBaseline, system.Complete)
	// Give the views a real compute cost so sequential summation shows.
	p.Views = withDelay(p.Views, delay(300_000))
	p.WarehouseDelay = 100_000
	rBase, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rBase.Level != msg.Complete {
		t.Errorf("baseline level = %v", rBase.Level)
	}
	q := smallParams(Concurrent, system.Complete)
	q.Views = withDelay(q.Views, delay(300_000))
	q.WarehouseDelay = 100_000
	rConc, err := Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if rBase.LagMean <= rConc.LagMean {
		t.Errorf("baseline should lag more: base=%d concurrent=%d", rBase.LagMean, rConc.LagMean)
	}
}

func TestRunBatchingManagersAreStrong(t *testing.T) {
	p := smallParams(Concurrent, system.Batching)
	p.Views = withDelay(p.Views, delay(400_000))
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Level < msg.Strong {
		t.Errorf("level = %v", r.Level)
	}
	// With 400µs compute and 100µs arrivals, batching must kick in: fewer
	// transactions than updates.
	if r.Txns >= int64(r.Updates) {
		t.Errorf("expected batching: %d txns for %d updates", r.Txns, r.Updates)
	}
}

func TestRunDeterminism(t *testing.T) {
	p := smallParams(Concurrent, system.Complete)
	first, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("non-deterministic result:\n%+v\n%+v", first, again)
		}
	}
}

func TestRunDistributedMerge(t *testing.T) {
	srcs, views := workload.DisjointViews(4, system.Complete, nil)
	r, err := Run(Params{
		Name:             "dist",
		Sources:          srcs,
		Views:            views,
		DistributedMerge: true,
		Updates:          40,
		Interval:         50_000,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Txns == 0 {
		t.Error("no transactions committed")
	}
}

func TestRunImmediateStrategyWithSlowWarehouseViolatesMVC(t *testing.T) {
	// §4.3 hazard: no commit-order control plus a warehouse that schedules
	// transactions with varying delays → dependent transactions commit out
	// of order. The checker must catch it.
	p := smallParams(Concurrent, system.Complete)
	p.Commit = system.Immediate
	p.Updates = 20
	p.Interval = 10_000
	// Varying service time reorders commits: make it depend on txn id.
	// (harness only exposes a constant; build the variation via latency.)
	p.NetLatency = [2]int64{0, 200_000}
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// The run must still converge (deltas all land) even when ordering
	// control is absent...
	if !r.Checked {
		t.Fatal("not checked")
	}
	// ...but completeness is not guaranteed. We don't assert a violation
	// (some interleavings survive); the deterministic hazard assertion
	// lives in TestImmediateHazardDeterministic.
	t.Logf("immediate strategy level: %v", r.Level)
}

func TestExperimentTablesRender(t *testing.T) {
	tb := FreshnessVsLoad(1, 40)
	out := tb.Render()
	for _, frag := range []string{"S1", "interval", "µs"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	if len(tb.Rows) != 5 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestFreshnessShapeBaselineWorstAtHighLoad(t *testing.T) {
	tb := FreshnessVsLoad(3, 60)
	// At the highest rate (last row), the baseline's mean lag must exceed
	// SPA's — the paper's core architectural claim.
	last := tb.Rows[len(tb.Rows)-1]
	spa := parseUS(t, last[2])
	base := parseUS(t, last[6])
	if base <= spa {
		t.Errorf("baseline (%v) should lag more than SPA (%v) at high load\n%s", base, spa, tb.Render())
	}
}

func TestBottleneckShapeVUTGrowsWithViews(t *testing.T) {
	tb := MergeBottleneck(3, 60)
	first := tb.Rows[0]
	lastRow := tb.Rows[len(tb.Rows)-1]
	if parseUS(t, lastRow[1]) < parseUS(t, first[1]) {
		t.Errorf("drain lag should grow with view count\n%s", tb.Render())
	}
}

func TestCommitStrategiesShape(t *testing.T) {
	tb := CommitStrategies(3, 40)
	// Batched commits fewer transactions and reports only strong.
	var seq, batched []string
	for _, r := range tb.Rows {
		switch r[0] {
		case "sequential":
			seq = r
		case "batched(8)":
			batched = r
		}
	}
	if seq == nil || batched == nil {
		t.Fatalf("rows missing:\n%s", tb.Render())
	}
	if batched[1] >= seq[1] && len(batched[1]) >= len(seq[1]) {
		t.Errorf("batched should commit fewer txns: %s vs %s", batched[1], seq[1])
	}
	if seq[5] != "complete" || batched[5] != "strong" {
		t.Errorf("levels: seq=%s batched=%s", seq[5], batched[5])
	}
}

func TestPromptnessShape(t *testing.T) {
	tb := Promptness(3, 40)
	prompt := parseUS(t, tb.Rows[0][2]) // lagMax of SPA
	lazy := parseUS(t, tb.Rows[1][2])
	if lazy <= prompt {
		t.Errorf("strawman must lag more: %v vs %v\n%s", lazy, prompt, tb.Render())
	}
}

func TestDistributedShapePartitionedFaster(t *testing.T) {
	tb := DistributedMergeScaling(3, 60)
	// For k=8 the partitioned variant (last row) must beat the single
	// merge (second-to-last) on mean lag.
	single := parseUS(t, tb.Rows[2][3])
	dist := parseUS(t, tb.Rows[3][3])
	if dist >= single {
		t.Errorf("partitioned merge should reduce lag: %v vs %v\n%s", dist, single, tb.Render())
	}
}

func TestAlgorithmOverheadShape(t *testing.T) {
	tb := AlgorithmOverhead(3, 40)
	levels := map[string]string{}
	for _, r := range tb.Rows {
		levels[r[0]] = r[4]
	}
	if levels["SPA"] != "complete" {
		t.Errorf("SPA level = %s", levels["SPA"])
	}
	if levels["PA"] == "convergent" {
		t.Errorf("PA level = %s", levels["PA"])
	}
}

func TestFilterAblationShape(t *testing.T) {
	tb := FilterAblation(3, 60)
	off, on := tb.Rows[0], tb.Rows[1]
	if off[5] != "complete" || on[5] != "complete" {
		t.Errorf("both runs must stay complete:\n%s", tb.Render())
	}
	offALs, _ := strconv.Atoi(off[1])
	onALs, _ := strconv.Atoi(on[1])
	if onALs*3 > offALs {
		t.Errorf("filter should cut ALs sharply: %d vs %d", onALs, offALs)
	}
}

func TestStragglerVUTShape(t *testing.T) {
	tb := StragglerVUT(3, 60)
	fast, _ := strconv.Atoi(tb.Rows[0][1])
	slow, _ := strconv.Atoi(tb.Rows[len(tb.Rows)-1][1])
	if slow <= fast*4 {
		t.Errorf("VUT should balloon behind a straggler: %d vs %d\n%s", slow, fast, tb.Render())
	}
}

func parseUS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "µs"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestManagerComparisonShape(t *testing.T) {
	tb := ManagerComparison(3, 40)
	rows := map[string][]string{}
	for _, r := range tb.Rows {
		rows[r[0]] = r
	}
	if rows["complete"][5] != "complete" || rows["complete-query"][5] != "complete" {
		t.Errorf("per-update kinds must be complete:\n%s", tb.Render())
	}
	if rows["refresh"][5] != "strong" || rows["complete-N"][5] != "strong" {
		t.Errorf("boundary kinds must be strong on aligned workloads:\n%s", tb.Render())
	}
	// Convergent managers only guarantee convergence; a light workload may
	// happen to achieve more, so assert the run at least converged.
	if rows["convergent"][5] == "none" {
		t.Errorf("convergent run must converge:\n%s", tb.Render())
	}
	// Boundary kinds send ~4x fewer lists.
	alsComplete, _ := strconv.Atoi(rows["complete"][1])
	alsRefresh, _ := strconv.Atoi(rows["refresh"][1])
	if alsRefresh*3 > alsComplete {
		t.Errorf("refresh should send far fewer lists: %d vs %d", alsRefresh, alsComplete)
	}
}

// TestStudyGoldenDeterminism pins a few exact table cells: the simulator
// and every algorithm on the path must stay bit-deterministic for a fixed
// seed, or reproducibility of EXPERIMENTS.md is broken.
func TestStudyGoldenDeterminism(t *testing.T) {
	tb := CommitStrategies(1, 200)
	want := map[string][]string{
		"sequential": {"200", "44120.0µs", "22230.0µs", "44120.0µs", "complete"},
		"dependency": {"200", "340.0µs", "340.0µs", "340.0µs", "complete"},
		"batched(8)": {"40", "440.0µs", "640.0µs", "840.0µs", "strong"},
	}
	for _, row := range tb.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected row %v", row)
		}
		for i, cell := range w {
			if row[i+1] != cell {
				t.Errorf("%s[%d] = %s, want %s (determinism drift — update EXPERIMENTS.md too)",
					row[0], i+1, row[i+1], cell)
			}
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := Table{
		ID: "SX", Title: "csv check",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	got := tb.RenderCSV()
	want := "# SX: csv check\na,b\n1,2\n3,4\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestRunRejectsUnknownArch(t *testing.T) {
	p := smallParams(Concurrent, system.Complete)
	p.Arch = Arch(99)
	if _, err := Run(p); err == nil {
		t.Error("unknown architecture must fail")
	}
	if Arch(0).String() != "concurrent" || SequentialBaseline.String() != "sequential-baseline" {
		t.Error("arch names")
	}
}
