package wire_test

import (
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"whips/internal/consistency"
	"whips/internal/expr"
	"whips/internal/integrator"
	"whips/internal/merge"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/runtime"
	"whips/internal/source"
	"whips/internal/viewmgr"
	"whips/internal/warehouse"
	. "whips/internal/wire"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
)

func TestCodecRoundTrips(t *testing.T) {
	d := relation.NewDelta(rSchema)
	d.Add(relation.T(1, 2), 3)
	d.Add(relation.T(4, 5), -1)

	cases := []any{
		msg.Update{Seq: 7, Source: "src", CommitAt: 42,
			Writes: []msg.Write{{Relation: "R", Delta: d}},
			Rel:    &msg.RelevantSet{Seq: 7, Views: []msg.ViewID{"V1", "V2"}, CommitAt: 42}},
		msg.RelevantSet{Seq: 9, Views: []msg.ViewID{"V1"}},
		msg.ActionList{View: "V1", From: 3, Upto: 5, Delta: d, Level: msg.Strong,
			Rels: []msg.RelevantSet{{Seq: 4, Views: []msg.ViewID{"V1"}}}},
		msg.ActionList{View: "V1", From: 1, Upto: 1, Staged: true}, // nil delta token
		msg.StageDelta{View: "V1", Upto: 5, Delta: d},
		msg.CommitAck{ID: 11},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%T): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%T): %v", in, err)
		}
		switch a := in.(type) {
		case msg.Update:
			b := out.(msg.Update)
			if b.Seq != a.Seq || b.Source != a.Source || b.CommitAt != a.CommitAt ||
				len(b.Writes) != len(a.Writes) || !b.Writes[0].Delta.Equal(a.Writes[0].Delta) ||
				b.Rel == nil || b.Rel.Seq != a.Rel.Seq || len(b.Rel.Views) != 2 {
				t.Errorf("update round trip: %+v vs %+v", a, b)
			}
		case msg.ActionList:
			b := out.(msg.ActionList)
			if b.View != a.View || b.From != a.From || b.Upto != a.Upto ||
				b.Level != a.Level || b.Staged != a.Staged || len(b.Rels) != len(a.Rels) {
				t.Errorf("AL round trip: %+v vs %+v", a, b)
			}
			if (a.Delta == nil) != (b.Delta == nil) {
				t.Errorf("AL delta nil-ness lost: %+v vs %+v", a, b)
			}
			if a.Delta != nil && !b.Delta.Equal(a.Delta) {
				t.Errorf("AL delta diverged: %v vs %v", a.Delta, b.Delta)
			}
		case msg.StageDelta:
			b := out.(msg.StageDelta)
			if b.View != a.View || b.Upto != a.Upto || !b.Delta.Equal(a.Delta) {
				t.Errorf("stage round trip: %+v vs %+v", a, b)
			}
		case msg.CommitAck:
			if out.(msg.CommitAck) != a {
				t.Errorf("ack round trip: %+v vs %+v", a, out)
			}
		case msg.RelevantSet:
			b := out.(msg.RelevantSet)
			if b.Seq != a.Seq || len(b.Views) != len(a.Views) {
				t.Errorf("rel round trip: %+v vs %+v", a, b)
			}
		}
	}
}

func TestCodecRejectsQueries(t *testing.T) {
	if _, err := Encode(msg.QueryRequest{Expr: expr.Scan("R", rSchema)}); err == nil {
		t.Error("query requests must be rejected")
	}
	if _, err := Decode("garbage"); err == nil {
		t.Error("unknown wire types must be rejected")
	}
}

// Property: deltas of every value type survive the wire.
func TestDeltaCodecProperty(t *testing.T) {
	sch := relation.MustSchema("I:int", "S:string", "F:float", "B:bool")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := relation.NewDelta(sch)
		for i := 0; i < rng.Intn(10); i++ {
			d.Add(relation.T(rng.Intn(5), "x", float64(rng.Intn(5))/2, rng.Intn(2) == 0),
				int64(rng.Intn(7)-3))
		}
		w := EncodeDelta(d)
		back, err := DecodeDelta(w)
		return err == nil && back.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// buildSplitSystem wires the paper scenario across TWO runtime networks
// joined by a Bridge: the "warehouse site" hosts cluster, integrator,
// merge and warehouse; the "manager site" hosts the two view managers.
func buildSplitSystem(t *testing.T, connA, connB net.Conn) (
	site1 *runtime.Network, site2 *runtime.Network,
	cluster *source.Cluster, wh *warehouse.Warehouse, views map[msg.ViewID]expr.Expr,
	inject func(u msg.Update), shutdown func()) {
	t.Helper()

	cluster = source.NewCluster(nil)
	cluster.AddSource("src1")
	cluster.AddSource("src2")
	if err := cluster.LoadRelation("src1", "R", relation.FromTuples(rSchema, relation.T(1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CreateRelation("src1", "S", sSchema); err != nil {
		t.Fatal(err)
	}
	views = map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)),
		"V2": expr.MustProject(expr.Scan("S", sSchema), "C"),
	}
	integ := integrator.New([]integrator.ViewInfo{
		{ID: "V1", Expr: views["V1"]},
		{ID: "V2", Expr: views["V2"]},
	})
	initial := map[msg.ViewID]*relation.Relation{}
	for id, e := range views {
		v, err := expr.Eval(e, cluster.DatabaseAt(0))
		if err != nil {
			t.Fatal(err)
		}
		initial[id] = v
	}
	wh = warehouse.New(initial, warehouse.WithStateLog())
	mp := merge.New(0, merge.SPA, merge.NewSequential(msg.NodeMerge(0), 0))

	bridgeA := NewBridge(connA)
	bridgeB := NewBridge(connB)

	site1 = runtime.New(
		[]msg.Node{source.NewNode(cluster), integ, mp, wh},
		runtime.WithRemote(func(to string, m any) {
			if err := bridgeA.Send(to, m); err != nil {
				t.Errorf("site1 send: %v", err)
			}
		}),
	)

	vm1, err := viewmgr.NewComplete(viewmgr.Config{View: "V1", Expr: views["V1"], Merge: msg.NodeMerge(0)}, cluster.DatabaseAt(0))
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := viewmgr.NewComplete(viewmgr.Config{View: "V2", Expr: views["V2"], Merge: msg.NodeMerge(0)}, cluster.DatabaseAt(0))
	if err != nil {
		t.Fatal(err)
	}
	site2 = runtime.New(
		[]msg.Node{vm1, vm2},
		runtime.WithRemote(func(to string, m any) {
			if err := bridgeB.Send(to, m); err != nil {
				t.Errorf("site2 send: %v", err)
			}
		}),
	)

	site1.Start()
	site2.Start()
	done1 := make(chan struct{})
	done2 := make(chan struct{})
	go func() {
		defer close(done1)
		_ = bridgeA.Pump(func(to string, m any) { site1.Inject(to, m) })
	}()
	go func() {
		defer close(done2)
		_ = bridgeB.Pump(func(to string, m any) { site2.Inject(to, m) })
	}()

	inject = func(u msg.Update) { site1.Inject(msg.NodeIntegrator, u) }
	shutdown = func() {
		_ = bridgeA.Close()
		_ = bridgeB.Close()
		site1.Stop()
		site2.Stop()
		<-done1
		<-done2
	}
	return site1, site2, cluster, wh, views, inject, shutdown
}

// TestSplitSitesOverPipe runs view managers on a separate network connected
// by an in-memory pipe; the run must be complete under MVC.
func TestSplitSitesOverPipe(t *testing.T) {
	connA, connB := net.Pipe()
	_, _, cluster, wh, views, inject, shutdown := buildSplitSystem(t, connA, connB)
	defer shutdown()

	rng := rand.New(rand.NewSource(5))
	want := map[msg.ViewID]msg.UpdateID{}
	for i := 0; i < 20; i++ {
		var w msg.Write
		onR := rng.Intn(2) == 0
		if onR {
			w = msg.Write{Relation: "R", Delta: relation.InsertDelta(rSchema, relation.T(rng.Intn(4), rng.Intn(4)))}
		} else {
			w = msg.Write{Relation: "S", Delta: relation.InsertDelta(sSchema, relation.T(rng.Intn(4), rng.Intn(4)))}
		}
		u, err := cluster.Execute("src1", w)
		if err != nil {
			t.Fatal(err)
		}
		if onR {
			want["V1"] = u.Seq
		} else {
			want["V1"], want["V2"] = u.Seq, u.Seq
		}
		inject(u)
	}
	if !runtime.WaitUntil(10*time.Second, func() bool {
		up := wh.Upto()
		for id, w := range want {
			if up[id] < w {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("remote managers did not drain: upto=%v want=%v", wh.Upto(), want)
	}
	rep, err := consistency.Check(cluster, views, wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("cross-process run must be complete: %+v (%s)", rep, rep.Violation)
	}
}

func allAt(up map[msg.ViewID]msg.UpdateID, want msg.UpdateID) bool {
	for _, u := range up {
		if u < want {
			return false
		}
	}
	return len(up) > 0
}

// TestSplitSitesOverTCP is the same split across a real localhost TCP
// connection.
func TestSplitSitesOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	connB, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	connA := <-accepted

	_, _, cluster, wh, views, inject, shutdown := buildSplitSystem(t, connA, connB)
	defer shutdown()

	for i := 0; i < 15; i++ {
		u, err := cluster.Execute("src1", msg.Write{
			Relation: "S", Delta: relation.InsertDelta(sSchema, relation.T(i%3, i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		inject(u)
	}
	if !runtime.WaitUntil(10*time.Second, func() bool { return allAt(wh.Upto(), 15) }) {
		t.Fatalf("TCP-remote managers did not drain: upto=%v", wh.Upto())
	}
	rep, err := consistency.Check(cluster, views, wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("TCP run must be complete: %+v (%s)", rep, rep.Violation)
	}
}

func TestSubmitTxnRoundTrip(t *testing.T) {
	d := relation.InsertDelta(rSchema, relation.T(1, 2))
	in := msg.SubmitTxn{
		From: "merge:0",
		Txn: msg.WarehouseTxn{
			ID: 9, Rows: []msg.UpdateID{3, 4}, DependsOn: []msg.TxnID{7}, CommitAt: 55,
			Writes: []msg.ViewWrite{
				{View: "V1", Upto: 4, Delta: d},
				{View: "V2", Upto: 4, Staged: true},
			},
		},
	}
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	outAny, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	out := outAny.(msg.SubmitTxn)
	if out.From != in.From || out.Txn.ID != in.Txn.ID || out.Txn.CommitAt != 55 ||
		len(out.Txn.Rows) != 2 || len(out.Txn.DependsOn) != 1 || len(out.Txn.Writes) != 2 {
		t.Fatalf("round trip: %+v", out)
	}
	if !out.Txn.Writes[0].Delta.Equal(d) || out.Txn.Writes[1].Delta != nil || !out.Txn.Writes[1].Staged {
		t.Errorf("writes round trip: %+v", out.Txn.Writes)
	}
}

// TestRemoteMergeSite places the MERGE PROCESS and view managers on the
// remote site: the warehouse site keeps only cluster, integrator and
// warehouse. Warehouse transactions and commit acks cross the wire.
func TestRemoteMergeSite(t *testing.T) {
	connA, connB := net.Pipe()
	cluster := source.NewCluster(nil)
	cluster.AddSource("src1")
	if err := cluster.LoadRelation("src1", "R", relation.FromTuples(rSchema, relation.T(1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CreateRelation("src1", "S", sSchema); err != nil {
		t.Fatal(err)
	}
	views := map[msg.ViewID]expr.Expr{
		"V1": expr.MustJoin(expr.Scan("R", rSchema), expr.Scan("S", sSchema)),
		"V2": expr.MustProject(expr.Scan("S", sSchema), "C"),
	}
	integ := integrator.New([]integrator.ViewInfo{
		{ID: "V1", Expr: views["V1"]},
		{ID: "V2", Expr: views["V2"]},
	})
	initial := map[msg.ViewID]*relation.Relation{}
	for id, e := range views {
		v, err := expr.Eval(e, cluster.DatabaseAt(0))
		if err != nil {
			t.Fatal(err)
		}
		initial[id] = v
	}
	wh := warehouse.New(initial, warehouse.WithStateLog())

	bridgeA, bridgeB := NewBridge(connA), NewBridge(connB)
	site1 := runtime.New(
		[]msg.Node{source.NewNode(cluster), integ, wh},
		runtime.WithRemote(func(to string, m any) {
			if err := bridgeA.Send(to, m); err != nil {
				t.Errorf("site1 send: %v", err)
			}
		}),
	)
	vm1, _ := viewmgr.NewComplete(viewmgr.Config{View: "V1", Expr: views["V1"], Merge: msg.NodeMerge(0)}, cluster.DatabaseAt(0))
	vm2, _ := viewmgr.NewComplete(viewmgr.Config{View: "V2", Expr: views["V2"], Merge: msg.NodeMerge(0)}, cluster.DatabaseAt(0))
	mp := merge.New(0, merge.SPA, merge.NewSequential(msg.NodeMerge(0), 0))
	site2 := runtime.New(
		[]msg.Node{vm1, vm2, mp},
		runtime.WithRemote(func(to string, m any) {
			if err := bridgeB.Send(to, m); err != nil {
				t.Errorf("site2 send: %v", err)
			}
		}),
	)
	site1.Start()
	site2.Start()
	done1, done2 := make(chan struct{}), make(chan struct{})
	go func() { defer close(done1); _ = bridgeA.Pump(func(to string, m any) { site1.Inject(to, m) }) }()
	go func() { defer close(done2); _ = bridgeB.Pump(func(to string, m any) { site2.Inject(to, m) }) }()
	defer func() {
		_ = bridgeA.Close()
		_ = bridgeB.Close()
		site1.Stop()
		site2.Stop()
		<-done1
		<-done2
	}()

	for i := 0; i < 15; i++ {
		u, err := cluster.Execute("src1", msg.Write{
			Relation: "S", Delta: relation.InsertDelta(sSchema, relation.T(i%3, i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		site1.Inject(msg.NodeIntegrator, u)
	}
	if !runtime.WaitUntil(10*time.Second, func() bool { return allAt(wh.Upto(), 15) }) {
		t.Fatalf("remote merge did not drain: upto=%v", wh.Upto())
	}
	rep, err := consistency.Check(cluster, views, wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("remote-merge run must be complete: %+v (%s)", rep, rep.Violation)
	}
}
