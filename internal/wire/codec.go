// Package wire serializes the maintenance protocol so parts of the
// architecture can run in separate OS processes connected by TCP — the
// paper's "view managers may reside on different machines".
//
// The codec covers the messages remote replica-based view managers and
// remote merge processes exchange: updates and RELᵢ sets in, action lists
// (with piggybacked RELᵢ sets), staged deltas and warehouse transactions
// out, commit acks back. Query expressions (msg.QueryRequest) are not
// serialized — query-based managers are control-plane-adjacent and run
// next to the sources; encoding an expression tree is possible but out of
// scope here, and Encode rejects such messages loudly instead of silently
// dropping them.
package wire

import (
	"fmt"

	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/relation"
)

// Value is the wire form of relation.Value.
type Value struct {
	Kind uint8
	I    int64
	F    float64
	S    string
	B    bool
}

// Tuple is the wire form of relation.Tuple.
type Tuple []Value

// Attr is the wire form of a schema attribute.
type Attr struct {
	Name string
	Kind uint8
}

// Schema is the wire form of relation.Schema.
type Schema []Attr

// Entry is one signed counted tuple of a Delta.
type Entry struct {
	Tuple Tuple
	Count int64
}

// Delta is the wire form of relation.Delta.
type Delta struct {
	Schema  Schema
	Entries []Entry
}

// Rel is the wire form of a whole relation.Relation — used by durable
// snapshots, which persist materialized state (replicas, warehouse views)
// alongside the protocol messages above.
type Rel struct {
	Schema  Schema
	Entries []Entry
}

// Write is the wire form of msg.Write.
type Write struct {
	Relation string
	Delta    Delta
}

// TraceCtx is the wire form of obs.TraceCtx — the causal trace context
// that rides inside protocol messages so span chains survive process
// boundaries. A nil pointer means "tracing off at the sender".
type TraceCtx struct {
	Origin   string
	Seq      int64
	Hop      int64
	CommitTS int64
	SentAt   int64
}

// RelevantSet is the wire form of msg.RelevantSet.
type RelevantSet struct {
	Seq      int64
	Views    []string
	CommitAt int64
	Trace    *TraceCtx
}

// Update is the wire form of msg.Update. HasViewDelta distinguishes a
// per-view-mode update (nil ViewDelta) from a shared-plans update whose
// precomputed delta happens to be empty.
type Update struct {
	Seq          int64
	Source       string
	Writes       []Write
	CommitAt     int64
	Rel          *RelevantSet
	Trace        *TraceCtx
	HasViewDelta bool
	ViewDelta    Delta
}

// ActionList is the wire form of msg.ActionList. HasDelta distinguishes a
// staged token (nil delta) from an empty delta.
type ActionList struct {
	View      string
	From      int64
	Upto      int64
	HasDelta  bool
	Delta     Delta
	Level     uint8
	Rels      []RelevantSet
	Staged    bool
	EmittedAt int64
	Trace     *TraceCtx
}

// StageDelta is the wire form of msg.StageDelta.
type StageDelta struct {
	View  string
	Upto  int64
	Delta Delta
}

// CommitAck is the wire form of msg.CommitAck.
type CommitAck struct {
	ID int64
}

// ViewWrite is the wire form of msg.ViewWrite.
type ViewWrite struct {
	View     string
	Upto     int64
	HasDelta bool
	Delta    Delta
	Staged   bool
}

// SubmitTxn is the wire form of msg.SubmitTxn, so merge processes can run
// remotely from the warehouse.
type SubmitTxn struct {
	ID        int64
	Rows      []int64
	Writes    []ViewWrite
	DependsOn []int64
	CommitAt  int64
	From      string
	Trace     *TraceCtx
}

// ReplSubscribe is the wire form of msg.ReplSubscribe.
type ReplSubscribe struct {
	Follower string
	Epoch    int64
	Term     int64
}

// ReplView is the wire form of msg.ReplView.
type ReplView struct {
	View string
	Rel  Rel
	Upto int64
}

// ReplSnapshot is the wire form of msg.ReplSnapshot.
type ReplSnapshot struct {
	Epoch    int64
	Txn      int64
	CommitAt int64
	Head     int64
	Term     int64
	Leader   string
	Views    []ReplView
	Trace    *TraceCtx
}

// ReplWrite is the wire form of msg.ReplWrite. HasDelta distinguishes a
// structurally absent delta (rejected on decode — replication writes
// always carry data) from an empty one.
type ReplWrite struct {
	View     string
	Upto     int64
	HasDelta bool
	Delta    Delta
}

// ReplEpoch is the wire form of msg.ReplEpoch.
type ReplEpoch struct {
	Epoch    int64
	Txn      int64
	CommitAt int64
	Head     int64
	Term     int64
	Leader   string
	Writes   []ReplWrite
	Rows     []int64
	Trace    *TraceCtx
}

// Envelope is one routed message on the wire.
type Envelope struct {
	To  string
	Msg any
}

// ---------------------------------------------------------------- values

func encodeValue(v relation.Value) Value {
	w := Value{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case relation.Int:
		w.I = v.Int()
	case relation.Float:
		w.F = v.Float()
	case relation.String:
		w.S = v.Str()
	case relation.Bool:
		w.B = v.Bool()
	}
	return w
}

func decodeValue(w Value) (relation.Value, error) {
	switch relation.Type(w.Kind) {
	case relation.Int:
		return relation.IntVal(w.I), nil
	case relation.Float:
		return relation.FloatVal(w.F), nil
	case relation.String:
		return relation.StringVal(w.S), nil
	case relation.Bool:
		return relation.BoolVal(w.B), nil
	default:
		return relation.Value{}, fmt.Errorf("wire: unknown value kind %d", w.Kind)
	}
}

func encodeTuple(t relation.Tuple) Tuple {
	out := make(Tuple, len(t))
	for i, v := range t {
		out[i] = encodeValue(v)
	}
	return out
}

func decodeTuple(w Tuple) (relation.Tuple, error) {
	out := make(relation.Tuple, len(w))
	for i, v := range w {
		dv, err := decodeValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = dv
	}
	return out, nil
}

// EncodeSchema converts a schema to wire form.
func EncodeSchema(s *relation.Schema) Schema {
	out := make(Schema, s.Len())
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		out[i] = Attr{Name: a.Name, Kind: uint8(a.Type)}
	}
	return out
}

// DecodeSchema converts a wire schema back. Schemas are interned per
// decoder elsewhere; here each call allocates.
func DecodeSchema(w Schema) (*relation.Schema, error) {
	attrs := make([]relation.Attr, len(w))
	for i, a := range w {
		if a.Kind > uint8(relation.Bool) {
			return nil, fmt.Errorf("wire: unknown attribute kind %d", a.Kind)
		}
		attrs[i] = relation.Attr{Name: a.Name, Type: relation.Type(a.Kind)}
	}
	return relation.NewSchema(attrs...), nil
}

// EncodeDelta converts a delta to wire form with deterministic entry order.
func EncodeDelta(d *relation.Delta) Delta {
	out := Delta{Schema: EncodeSchema(d.Schema())}
	d.EachSorted(func(t relation.Tuple, n int64) bool {
		out.Entries = append(out.Entries, Entry{Tuple: encodeTuple(t), Count: n})
		return true
	})
	return out
}

// DecodeDelta converts a wire delta back.
func DecodeDelta(w Delta) (*relation.Delta, error) {
	sch, err := DecodeSchema(w.Schema)
	if err != nil {
		return nil, err
	}
	d := relation.NewDelta(sch)
	for _, e := range w.Entries {
		t, err := decodeTuple(e.Tuple)
		if err != nil {
			return nil, err
		}
		if err := d.AddChecked(t, e.Count); err != nil {
			return nil, fmt.Errorf("wire: corrupt delta entry: %w", err)
		}
	}
	return d, nil
}

// EncodeRelation converts a full relation to wire form with deterministic
// entry order (tuples sorted), so identical relations encode to identical
// bytes — the property durable-recovery determinism tests rely on.
func EncodeRelation(r *relation.Relation) Rel {
	out := Rel{Schema: EncodeSchema(r.Schema())}
	r.EachSorted(func(t relation.Tuple, n int64) bool {
		out.Entries = append(out.Entries, Entry{Tuple: encodeTuple(t), Count: n})
		return true
	})
	return out
}

// DecodeRelation converts a wire relation back.
func DecodeRelation(w Rel) (*relation.Relation, error) {
	sch, err := DecodeSchema(w.Schema)
	if err != nil {
		return nil, err
	}
	r := relation.New(sch)
	for _, e := range w.Entries {
		t, err := decodeTuple(e.Tuple)
		if err != nil {
			return nil, err
		}
		if err := r.Insert(t, e.Count); err != nil {
			return nil, fmt.Errorf("wire: corrupt relation entry: %w", err)
		}
	}
	return r, nil
}

// ---------------------------------------------------------------- messages

func encodeTrace(c *obs.TraceCtx) *TraceCtx {
	if c == nil {
		return nil
	}
	return &TraceCtx{Origin: c.Origin, Seq: c.Seq, Hop: c.Hop, CommitTS: c.CommitTS, SentAt: c.SentAt}
}

func decodeTrace(w *TraceCtx) *obs.TraceCtx {
	if w == nil {
		return nil
	}
	return &obs.TraceCtx{Origin: w.Origin, Seq: w.Seq, Hop: w.Hop, CommitTS: w.CommitTS, SentAt: w.SentAt}
}

func encodeRel(r msg.RelevantSet) RelevantSet {
	views := make([]string, len(r.Views))
	for i, v := range r.Views {
		views[i] = string(v)
	}
	return RelevantSet{Seq: int64(r.Seq), Views: views, CommitAt: r.CommitAt, Trace: encodeTrace(r.Trace)}
}

func decodeRel(w RelevantSet) msg.RelevantSet {
	views := make([]msg.ViewID, len(w.Views))
	for i, v := range w.Views {
		views[i] = msg.ViewID(v)
	}
	return msg.RelevantSet{Seq: msg.UpdateID(w.Seq), Views: views, CommitAt: w.CommitAt, Trace: decodeTrace(w.Trace)}
}

// Encode converts a protocol message to its wire form. Unsupported message
// types (notably query traffic) return an error.
func Encode(m any) (any, error) {
	switch t := m.(type) {
	case msg.Update:
		out := Update{Seq: int64(t.Seq), Source: string(t.Source), CommitAt: t.CommitAt, Trace: encodeTrace(t.Trace)}
		for _, w := range t.Writes {
			out.Writes = append(out.Writes, Write{Relation: w.Relation, Delta: EncodeDelta(w.Delta)})
		}
		if t.Rel != nil {
			r := encodeRel(*t.Rel)
			out.Rel = &r
		}
		if t.ViewDelta != nil {
			out.HasViewDelta = true
			out.ViewDelta = EncodeDelta(t.ViewDelta)
		}
		return out, nil
	case msg.RelevantSet:
		return encodeRel(t), nil
	case msg.ActionList:
		out := ActionList{
			View: string(t.View), From: int64(t.From), Upto: int64(t.Upto),
			Level: uint8(t.Level), Staged: t.Staged, EmittedAt: t.EmittedAt,
			Trace: encodeTrace(t.Trace),
		}
		if t.Delta != nil {
			out.HasDelta = true
			out.Delta = EncodeDelta(t.Delta)
		}
		for _, r := range t.Rels {
			out.Rels = append(out.Rels, encodeRel(r))
		}
		return out, nil
	case msg.StageDelta:
		return StageDelta{View: string(t.View), Upto: int64(t.Upto), Delta: EncodeDelta(t.Delta)}, nil
	case msg.CommitAck:
		return CommitAck{ID: int64(t.ID)}, nil
	case msg.SubmitTxn:
		out := SubmitTxn{ID: int64(t.Txn.ID), CommitAt: t.Txn.CommitAt, From: t.From, Trace: encodeTrace(t.Txn.Trace)}
		for _, r := range t.Txn.Rows {
			out.Rows = append(out.Rows, int64(r))
		}
		for _, d := range t.Txn.DependsOn {
			out.DependsOn = append(out.DependsOn, int64(d))
		}
		for _, w := range t.Txn.Writes {
			vw := ViewWrite{View: string(w.View), Upto: int64(w.Upto), Staged: w.Staged}
			if w.Delta != nil {
				vw.HasDelta = true
				vw.Delta = EncodeDelta(w.Delta)
			}
			out.Writes = append(out.Writes, vw)
		}
		return out, nil
	case msg.ReplSubscribe:
		return ReplSubscribe{Follower: t.Follower, Epoch: t.Epoch, Term: t.Term}, nil
	case msg.ReplSnapshot:
		out := ReplSnapshot{Epoch: t.Epoch, Txn: int64(t.Txn), CommitAt: t.CommitAt, Head: t.Head, Term: t.Term, Leader: t.Leader, Trace: encodeTrace(t.Trace)}
		for _, v := range t.Views {
			out.Views = append(out.Views, ReplView{View: string(v.View), Rel: EncodeRelation(v.Rel), Upto: int64(v.Upto)})
		}
		return out, nil
	case msg.ReplEpoch:
		out := ReplEpoch{Epoch: t.Epoch, Txn: int64(t.Txn), CommitAt: t.CommitAt, Head: t.Head, Term: t.Term, Leader: t.Leader, Trace: encodeTrace(t.Trace)}
		for _, r := range t.Rows {
			out.Rows = append(out.Rows, int64(r))
		}
		for _, w := range t.Writes {
			rw := ReplWrite{View: string(w.View), Upto: int64(w.Upto)}
			if w.Delta != nil {
				rw.HasDelta = true
				rw.Delta = EncodeDelta(w.Delta)
			}
			out.Writes = append(out.Writes, rw)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wire: message type %T is not serializable", m)
	}
}

// Decode converts a wire message back to its protocol form.
func Decode(m any) (any, error) {
	switch t := m.(type) {
	case Update:
		out := msg.Update{Seq: msg.UpdateID(t.Seq), Source: msg.SourceID(t.Source), CommitAt: t.CommitAt, Trace: decodeTrace(t.Trace)}
		for _, w := range t.Writes {
			d, err := DecodeDelta(w.Delta)
			if err != nil {
				return nil, err
			}
			out.Writes = append(out.Writes, msg.Write{Relation: w.Relation, Delta: d})
		}
		if t.Rel != nil {
			r := decodeRel(*t.Rel)
			out.Rel = &r
		}
		if t.HasViewDelta {
			d, err := DecodeDelta(t.ViewDelta)
			if err != nil {
				return nil, err
			}
			out.ViewDelta = d
		}
		return out, nil
	case RelevantSet:
		return decodeRel(t), nil
	case ActionList:
		out := msg.ActionList{
			View: msg.ViewID(t.View), From: msg.UpdateID(t.From), Upto: msg.UpdateID(t.Upto),
			Level: msg.Level(t.Level), Staged: t.Staged, EmittedAt: t.EmittedAt,
			Trace: decodeTrace(t.Trace),
		}
		if t.HasDelta {
			d, err := DecodeDelta(t.Delta)
			if err != nil {
				return nil, err
			}
			out.Delta = d
		}
		for _, r := range t.Rels {
			out.Rels = append(out.Rels, decodeRel(r))
		}
		return out, nil
	case StageDelta:
		d, err := DecodeDelta(t.Delta)
		if err != nil {
			return nil, err
		}
		return msg.StageDelta{View: msg.ViewID(t.View), Upto: msg.UpdateID(t.Upto), Delta: d}, nil
	case CommitAck:
		return msg.CommitAck{ID: msg.TxnID(t.ID)}, nil
	case SubmitTxn:
		out := msg.SubmitTxn{From: t.From, Txn: msg.WarehouseTxn{ID: msg.TxnID(t.ID), CommitAt: t.CommitAt, Trace: decodeTrace(t.Trace)}}
		for _, r := range t.Rows {
			out.Txn.Rows = append(out.Txn.Rows, msg.UpdateID(r))
		}
		for _, d := range t.DependsOn {
			out.Txn.DependsOn = append(out.Txn.DependsOn, msg.TxnID(d))
		}
		for _, w := range t.Writes {
			vw := msg.ViewWrite{View: msg.ViewID(w.View), Upto: msg.UpdateID(w.Upto), Staged: w.Staged}
			if w.HasDelta {
				d, err := DecodeDelta(w.Delta)
				if err != nil {
					return nil, err
				}
				vw.Delta = d
			}
			out.Txn.Writes = append(out.Txn.Writes, vw)
		}
		return out, nil
	case ReplSubscribe:
		return msg.ReplSubscribe{Follower: t.Follower, Epoch: t.Epoch, Term: t.Term}, nil
	case ReplSnapshot:
		out := msg.ReplSnapshot{Epoch: t.Epoch, Txn: msg.TxnID(t.Txn), CommitAt: t.CommitAt, Head: t.Head, Term: t.Term, Leader: t.Leader, Trace: decodeTrace(t.Trace)}
		for _, v := range t.Views {
			r, err := DecodeRelation(v.Rel)
			if err != nil {
				return nil, err
			}
			out.Views = append(out.Views, msg.ReplView{View: msg.ViewID(v.View), Rel: r, Upto: msg.UpdateID(v.Upto)})
		}
		return out, nil
	case ReplEpoch:
		out := msg.ReplEpoch{Epoch: t.Epoch, Txn: msg.TxnID(t.Txn), CommitAt: t.CommitAt, Head: t.Head, Term: t.Term, Leader: t.Leader, Trace: decodeTrace(t.Trace)}
		for _, r := range t.Rows {
			out.Rows = append(out.Rows, msg.UpdateID(r))
		}
		for _, w := range t.Writes {
			if !w.HasDelta {
				return nil, fmt.Errorf("wire: replication write for view %q carries no delta", w.View)
			}
			d, err := DecodeDelta(w.Delta)
			if err != nil {
				return nil, err
			}
			out.Writes = append(out.Writes, msg.ReplWrite{View: msg.ViewID(w.View), Upto: msg.UpdateID(w.Upto), Delta: d})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("wire: unknown wire message type %T", m)
	}
}
