package wire

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"whips/internal/obs"
)

func init() {
	// Frame.Msg holds the wire forms registered in bridge.go; the packet
	// wrapper itself is concrete, so only it needs registering here.
	gob.Register(packet{})
}

// Frame is one sequence-numbered protocol message on a Session. The FIFO
// unit is the channel — the From→To pair — and Seq numbers frames per
// channel starting at 1, so a receiver can drop duplicates and reorder
// across reconnects without ever violating per-channel FIFO.
type Frame struct {
	From string
	To   string
	Seq  uint64
	Msg  any // wire form (see codec.go)
}

func (f Frame) chanKey() string { return f.From + "→" + f.To }

// Hello opens (and re-opens) a session. Each side announces the highest
// frame sequence it has received per channel; the peer retransmits every
// retained frame above that. A freshly restarted process sends an empty
// LastRecv and is replayed from sequence 1.
type Hello struct {
	Name     string
	LastRecv map[string]uint64
}

// Ack tells the peer which frame sequences this side has made durable
// (checkpointed) per channel. The peer drops retained frames at or below
// the acked sequence: once a frame is inside the receiver's snapshot or
// WAL it can never be asked for again, so retaining it only burns memory.
type Ack struct {
	LastRecv map[string]uint64
}

// packet is the one value type framed on a session stream.
type packet struct {
	Hello *Hello
	Frame *Frame
	Ack   *Ack
}

// Backoff shapes the dialer's reconnect schedule. All randomness (the
// jitter) flows from the explicit Seed, so connection behavior is
// reproducible given the seed.
type Backoff struct {
	Base time.Duration // first retry delay (default 50ms)
	Max  time.Duration // delay cap (default 2s)
	Seed int64         // jitter seed
}

func (b Backoff) base() time.Duration {
	if b.Base <= 0 {
		return 50 * time.Millisecond
	}
	return b.Base
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 2 * time.Second
	}
	return b.Max
}

// Next returns the delay before retry number attempt (0-based) using
// capped exponential backoff with full jitter: a uniform draw from
// (0, min(Max, Base<<attempt)]. Full jitter decorrelates peers that
// crashed in lockstep — a subtree of followers orphaned by one relay
// crash would otherwise march through identical backoff ladders and
// stampede the replacement upstream on every rung. The draw is never
// zero so a retry can't spin, and the exponent saturates at Max rather
// than overflowing for large attempt counts.
func (b Backoff) Next(rng *rand.Rand, attempt int) time.Duration {
	ceil := b.base()
	for i := 0; i < attempt; i++ {
		if ceil >= b.max() {
			break
		}
		ceil *= 2
	}
	if ceil > b.max() {
		ceil = b.max()
	}
	return time.Duration(1 + rng.Int63n(int64(ceil)))
}

// SessionConfig configures a Session.
type SessionConfig struct {
	// Name identifies this site in Hello packets and log lines.
	Name string
	// Deliver receives each in-order, deduplicated protocol message.
	// It runs on the session's reader goroutine and may call Send.
	Deliver func(from, to string, m any)
	// DeliverSeq, when set, is used instead of Deliver and additionally
	// receives the frame's channel sequence number — durable hosts log
	// the (channel, seq) pair so recovery can dedupe retransmits. The
	// implementation owns the received watermark: it must call
	// SetLastRecv(from, to, seq) once the frame is durably logged (and
	// treat a failed log append as fatal), otherwise the frame is
	// redelivered after the next reconnect.
	DeliverSeq func(from, to string, seq uint64, m any)
	// RetainLimit, when positive, caps the retained outbound frames per
	// channel: the oldest unacknowledged frames beyond the cap are
	// dropped (counted by wire_retained_dropped_total). A dropped frame
	// can no longer be retransmitted, so a peer replaying from below the
	// cap loses it — use only when peers checkpoint durably or replay
	// from their own logs. Zero keeps the seed behavior: full retention.
	RetainLimit int
	// Dial, when set, makes this the active side: the session dials,
	// and redials with exponential backoff + jitter whenever the
	// connection drops. When nil the session is passive and connections
	// are handed in via Attach (e.g. from an accept loop).
	Dial func() (io.ReadWriteCloser, error)
	// Backoff shapes the active side's reconnect schedule.
	Backoff Backoff
	// SendTimeout bounds each frame write when the connection supports
	// write deadlines (default 5s). A timed-out write drops the
	// connection; the frame is retained and retransmitted on resume.
	SendTimeout time.Duration
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
	// Obs, when set, attaches transport metrics (connects, dial
	// failures, frames sent/received, retransmits, duplicate drops,
	// write failures, retained/held frame gauges) to its registry.
	Obs *obs.Pipeline
}

// sessObs holds the session's pre-resolved instruments. All fields are
// nil-safe no-ops when no pipeline is attached.
type sessObs struct {
	connects   *obs.Counter
	dialFails  *obs.Counter
	sent       *obs.Counter
	recvd      *obs.Counter
	retransmit *obs.Counter
	dupDrops   *obs.Counter
	writeFails *obs.Counter
	retDrops   *obs.Counter
	retained   *obs.Gauge
	held       *obs.Gauge
}

func newSessObs(p *obs.Pipeline, name string) sessObs {
	if p == nil {
		return sessObs{}
	}
	r := p.Reg()
	l := []string{"site", name}
	return sessObs{
		connects:   r.Counter("wire_connects_total", l...),
		dialFails:  r.Counter("wire_dial_failures_total", l...),
		sent:       r.Counter("wire_frames_sent_total", l...),
		recvd:      r.Counter("wire_frames_recv_total", l...),
		retransmit: r.Counter("wire_retransmits_total", l...),
		dupDrops:   r.Counter("wire_dup_drops_total", l...),
		writeFails: r.Counter("wire_write_failures_total", l...),
		retDrops:   r.Counter("wire_retained_dropped_total", l...),
		retained:   r.Gauge("wire_retained_frames", l...),
		held:       r.Gauge("wire_held_frames", l...),
	}
}

// Session is a resumable, reconnecting message stream. Every outbound
// frame is retained (full retention), so a peer that lost state — or the
// whole process — can be replayed from any sequence number its Hello
// names, including zero. Duplicate frames regenerated by a restarted
// deterministic peer are dropped by sequence number on receive.
type Session struct {
	cfg SessionConfig
	ob  sessObs

	mu       sync.Mutex
	conn     io.ReadWriteCloser
	enc      *gob.Encoder
	out      map[string][]Frame          // retained outbound frames per channel
	nextSeq  map[string]uint64           // next outbound seq per channel
	lastRecv map[string]uint64           // highest contiguously received seq per channel
	peerLast map[string]uint64           // peer's announced LastRecv (skip live writes below it)
	hold     map[string]map[uint64]Frame // out-of-order frames awaiting their gap
	closed   bool

	writeMu sync.Mutex // serializes stream writes
	delMu   sync.Mutex // serializes Deliver across reconnect reader handoff

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewSession builds a session. When cfg.Dial is set the connector
// goroutine starts immediately.
func NewSession(cfg SessionConfig) *Session {
	s := &Session{
		cfg:      cfg,
		ob:       newSessObs(cfg.Obs, cfg.Name),
		out:      map[string][]Frame{},
		nextSeq:  map[string]uint64{},
		lastRecv: map[string]uint64{},
		peerLast: map[string]uint64{},
		hold:     map[string]map[uint64]Frame{},
		stop:     make(chan struct{}),
	}
	if s.cfg.SendTimeout <= 0 {
		s.cfg.SendTimeout = 5 * time.Second
	}
	if cfg.Dial != nil {
		s.wg.Add(1)
		go s.dialLoop()
	}
	return s
}

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Send encodes and transmits one protocol message on the from→to channel.
// Transport failures are not errors: the frame is retained and will be
// retransmitted after the next successful Hello exchange. Only
// non-serializable messages return an error.
func (s *Session) Send(from, to string, m any) error {
	wm, err := Encode(m)
	if err != nil {
		return err
	}
	key := from + "→" + to
	s.mu.Lock()
	s.nextSeq[key]++
	f := Frame{From: from, To: to, Seq: s.nextSeq[key], Msg: wm}
	s.out[key] = append(s.out[key], f)
	s.ob.retained.Add(1)
	if lim := s.cfg.RetainLimit; lim > 0 && len(s.out[key]) > lim {
		drop := len(s.out[key]) - lim
		s.out[key] = append([]Frame(nil), s.out[key][drop:]...)
		s.ob.retDrops.Add(int64(drop))
		s.ob.retained.Add(int64(-drop))
	}
	conn, enc := s.conn, s.enc
	// The peer already holds everything at or below its announced
	// LastRecv — a restarted sender regenerating its deterministic
	// output stream need not put those bytes on the wire again.
	skip := f.Seq <= s.peerLast[key]
	s.mu.Unlock()
	if conn == nil || skip {
		return nil
	}
	s.ob.sent.Inc()
	s.write(conn, enc, packet{Frame: &f})
	return nil
}

// Attach hands a freshly established connection to a passive session
// (or is used internally by the dialer). Any previous connection is
// closed. It returns a channel closed when this connection dies.
func (s *Session) Attach(conn io.ReadWriteCloser) <-chan struct{} {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		dead := make(chan struct{})
		close(dead)
		return dead
	}
	old := s.conn
	s.conn, s.enc = conn, enc
	// Until the peer's Hello arrives we don't know what it still has:
	// assume nothing, write everything.
	s.peerLast = map[string]uint64{}
	hello := Hello{Name: s.cfg.Name, LastRecv: make(map[string]uint64, len(s.lastRecv))}
	for k, v := range s.lastRecv {
		hello.LastRecv[k] = v
	}
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}
	// Our Hello is the first thing on every new stream: the peer needs
	// LastRecv before it can retransmit.
	s.write(conn, enc, packet{Hello: &hello})
	dead := make(chan struct{})
	s.wg.Add(1)
	go s.reader(conn, dec, dead)
	return dead
}

// Close shuts the session down. Retained frames are discarded.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conn := s.conn
	s.conn, s.enc = nil, nil
	s.mu.Unlock()
	close(s.stop)
	if conn != nil {
		conn.Close()
	}
	s.wg.Wait()
	return nil
}

// LastRecv reports the highest contiguously received sequence for a
// from→to channel — what this side would announce in its next Hello.
func (s *Session) LastRecv(from, to string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRecv[from+"→"+to]
}

// Retained reports how many outbound frames the session holds for
// retransmission across all channels.
func (s *Session) Retained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, fs := range s.out {
		n += len(fs)
	}
	return n
}

// ---------------------------------------------------------------- internals

func (s *Session) dialLoop() {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Backoff.Seed))
	attempt := 0
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		conn, err := s.cfg.Dial()
		if err != nil {
			s.ob.dialFails.Inc()
			d := s.cfg.Backoff.Next(rng, attempt)
			attempt++
			s.logf("wire: dial failed: %v (retry in %v)", err, d)
			select {
			case <-time.After(d):
			case <-s.stop:
				return
			}
			continue
		}
		attempt = 0
		s.ob.connects.Inc()
		s.logf("wire: connected")
		dead := s.Attach(conn)
		select {
		case <-dead:
			s.logf("wire: connection lost; reconnecting")
		case <-s.stop:
			conn.Close()
			return
		}
	}
}

func (s *Session) reader(conn io.ReadWriteCloser, dec *gob.Decoder, dead chan struct{}) {
	defer s.wg.Done()
	defer close(dead)
	for {
		var p packet
		if err := dec.Decode(&p); err != nil {
			s.dropConn(conn)
			return
		}
		switch {
		case p.Hello != nil:
			s.onHello(conn, *p.Hello)
		case p.Frame != nil:
			s.onFrame(*p.Frame)
		case p.Ack != nil:
			s.onAck(*p.Ack)
		}
	}
}

// onHello retransmits every retained frame the peer has not confirmed,
// per channel in sequence order (channels themselves in sorted order for
// determinism).
func (s *Session) onHello(conn io.ReadWriteCloser, h Hello) {
	s.mu.Lock()
	s.peerLast = make(map[string]uint64, len(h.LastRecv))
	for k, v := range h.LastRecv {
		s.peerLast[k] = v
	}
	var resend []Frame
	keys := make([]string, 0, len(s.out))
	for k := range s.out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, f := range s.out[k] {
			if f.Seq > h.LastRecv[k] {
				resend = append(resend, f)
			}
		}
	}
	enc := s.enc
	if s.conn != conn {
		enc = nil // superseded connection; the new one will handshake itself
	}
	s.mu.Unlock()
	if enc == nil {
		return
	}
	s.logf("wire: hello from %s: resending %d frames", h.Name, len(resend))
	s.ob.retransmit.Add(int64(len(resend)))
	for i := range resend {
		s.write(conn, enc, packet{Frame: &resend[i]})
	}
}

// onFrame dedups by sequence, restores per-channel order across
// retransmits, and delivers contiguous runs.
func (s *Session) onFrame(f Frame) {
	s.delMu.Lock()
	defer s.delMu.Unlock()
	key := f.chanKey()
	s.ob.recvd.Inc()
	s.mu.Lock()
	last := s.lastRecv[key]
	if f.Seq <= last {
		s.mu.Unlock()
		s.ob.dupDrops.Inc()
		return // duplicate (retransmit overlap or restarted peer replay)
	}
	if f.Seq != last+1 {
		h := s.hold[key]
		if h == nil {
			h = map[uint64]Frame{}
			s.hold[key] = h
		}
		h[f.Seq] = f
		s.ob.held.Add(1)
		s.mu.Unlock()
		return // gap: an older frame is still in flight on another path
	}
	// Collect the contiguous run without committing lastRecv yet. The
	// watermark advances per frame at delivery: a durable receiver
	// (DeliverSeq) advances it via SetLastRecv inside its WAL-append
	// critical section, so a checkpointed (and acked) sequence is never
	// ahead of what the WAL actually holds.
	ready := []Frame{f}
	cursor := f.Seq
	for {
		nxt, ok := s.hold[key][cursor+1]
		if !ok {
			break
		}
		delete(s.hold[key], nxt.Seq)
		s.ob.held.Add(-1)
		cursor = nxt.Seq
		ready = append(ready, nxt)
	}
	s.mu.Unlock()
	for _, fr := range ready {
		m, err := Decode(fr.Msg)
		if err != nil {
			s.logf("wire: dropping undecodable frame on %s seq %d: %v", key, fr.Seq, err)
			s.SetLastRecv(fr.From, fr.To, fr.Seq)
			continue
		}
		switch {
		case s.cfg.DeliverSeq != nil:
			s.cfg.DeliverSeq(fr.From, fr.To, fr.Seq, m)
		case s.cfg.Deliver != nil:
			s.SetLastRecv(fr.From, fr.To, fr.Seq)
			s.cfg.Deliver(fr.From, fr.To, m)
		default:
			s.SetLastRecv(fr.From, fr.To, fr.Seq)
		}
	}
}

// onAck prunes retained frames the peer has made durable: anything at or
// below the acked sequence is inside the peer's snapshot or WAL and will
// never be requested again.
func (s *Session) onAck(a Ack) {
	s.mu.Lock()
	dropped := 0
	for key, upto := range a.LastRecv {
		fs := s.out[key]
		n := 0
		for n < len(fs) && fs[n].Seq <= upto {
			n++
		}
		if n == 0 {
			continue
		}
		dropped += n
		if n == len(fs) {
			delete(s.out, key)
		} else {
			s.out[key] = append([]Frame(nil), fs[n:]...)
		}
	}
	s.mu.Unlock()
	if dropped > 0 {
		s.ob.retDrops.Add(int64(dropped))
		s.ob.retained.Add(int64(-dropped))
		s.logf("wire: durable ack pruned %d retained frames", dropped)
	}
}

// AckDurable tells the peer which sequences this side has checkpointed —
// everything contiguously received so far — so the peer can free its
// retained-frame buffer. Call after a successful durable checkpoint. A
// lost ack is harmless (the peer just retains longer); the next
// checkpoint's ack covers it.
func (s *Session) AckDurable() {
	s.mu.Lock()
	if len(s.lastRecv) == 0 {
		s.mu.Unlock()
		return
	}
	a := Ack{LastRecv: make(map[string]uint64, len(s.lastRecv))}
	for k, v := range s.lastRecv {
		a.LastRecv[k] = v
	}
	conn, enc := s.conn, s.enc
	s.mu.Unlock()
	if conn == nil {
		return
	}
	s.write(conn, enc, packet{Ack: &a})
}

// SetLastRecv advances the highest contiguously received sequence for a
// channel without delivering anything — recovery uses it while replaying
// WAL-logged frames, so the post-restart Hello asks the peer only for the
// un-logged suffix and replayed frames are deduplicated like live ones.
func (s *Session) SetLastRecv(from, to string, seq uint64) {
	key := from + "→" + to
	s.mu.Lock()
	if seq > s.lastRecv[key] {
		s.lastRecv[key] = seq
	}
	for hseq := range s.hold[key] {
		if hseq <= s.lastRecv[key] {
			delete(s.hold[key], hseq)
			s.ob.held.Add(-1)
		}
	}
	s.mu.Unlock()
}

// sessChan is one channel's entry in the marshaled session state; slices
// sorted by Key keep the encoding deterministic (gob maps are not).
type sessChan struct {
	Key    string
	Seq    uint64
	Frames []Frame
}

// sessionState is the durable form of a Session's resume state.
type sessionState struct {
	NextSeq  []sessChan // Seq used
	LastRecv []sessChan // Seq used
	Out      []sessChan // Frames used
}

// MarshalState captures the session's resume state — outbound sequence
// counters, received watermarks, and retained frames — for inclusion in a
// durable snapshot. The encoding is deterministic.
func (s *Session) MarshalState() ([]byte, error) {
	s.mu.Lock()
	st := sessionState{}
	for k, v := range s.nextSeq {
		st.NextSeq = append(st.NextSeq, sessChan{Key: k, Seq: v})
	}
	for k, v := range s.lastRecv {
		st.LastRecv = append(st.LastRecv, sessChan{Key: k, Seq: v})
	}
	for k, fs := range s.out {
		st.Out = append(st.Out, sessChan{Key: k, Frames: append([]Frame(nil), fs...)})
	}
	s.mu.Unlock()
	sort.Slice(st.NextSeq, func(i, j int) bool { return st.NextSeq[i].Key < st.NextSeq[j].Key })
	sort.Slice(st.LastRecv, func(i, j int) bool { return st.LastRecv[i].Key < st.LastRecv[j].Key })
	sort.Slice(st.Out, func(i, j int) bool { return st.Out[i].Key < st.Out[j].Key })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState restores resume state captured by MarshalState. Call
// before Attach/dial so the first Hello announces the restored watermarks.
func (s *Session) RestoreState(b []byte) error {
	var st sessionState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	retained := 0
	for _, fs := range s.out {
		retained -= len(fs)
	}
	s.out = map[string][]Frame{}
	s.nextSeq = map[string]uint64{}
	s.lastRecv = map[string]uint64{}
	for _, c := range st.NextSeq {
		s.nextSeq[c.Key] = c.Seq
	}
	for _, c := range st.LastRecv {
		s.lastRecv[c.Key] = c.Seq
	}
	for _, c := range st.Out {
		if len(c.Frames) > 0 {
			s.out[c.Key] = append([]Frame(nil), c.Frames...)
			retained += len(c.Frames)
		}
	}
	s.ob.retained.Add(int64(retained))
	return nil
}

func (s *Session) write(conn io.ReadWriteCloser, enc *gob.Encoder, p packet) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if d, ok := conn.(interface{ SetWriteDeadline(time.Time) error }); ok {
		d.SetWriteDeadline(time.Now().Add(s.cfg.SendTimeout))
	}
	if err := enc.Encode(p); err != nil {
		s.ob.writeFails.Inc()
		s.logf("wire: write failed: %v", err)
		s.dropConn(conn)
	}
}

func (s *Session) dropConn(conn io.ReadWriteCloser) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn, s.enc = nil, nil
	}
	s.mu.Unlock()
	conn.Close()
}
