package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

func init() {
	gob.Register(Update{})
	gob.Register(RelevantSet{})
	gob.Register(ActionList{})
	gob.Register(StageDelta{})
	gob.Register(CommitAck{})
	gob.Register(SubmitTxn{})
	gob.Register(ReplSubscribe{})
	gob.Register(ReplSnapshot{})
	gob.Register(ReplEpoch{})
}

// Bridge carries protocol messages over one byte stream (a TCP connection,
// a net.Pipe in tests) using gob framing. Writes are serialized, so the
// stream preserves per-sender order — the FIFO property the merge
// algorithms require.
type Bridge struct {
	mu  sync.Mutex
	enc *gob.Encoder
	dec *gob.Decoder
	c   io.ReadWriteCloser
}

// NewBridge wraps a connection.
func NewBridge(c io.ReadWriteCloser) *Bridge {
	return &Bridge{enc: gob.NewEncoder(c), dec: gob.NewDecoder(c), c: c}
}

// Send encodes one protocol message addressed to a node on the far side.
func (b *Bridge) Send(to string, m any) error {
	wm, err := Encode(m)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.enc.Encode(Envelope{To: to, Msg: wm}); err != nil {
		return fmt.Errorf("wire: send to %s: %w", to, err)
	}
	return nil
}

// Receive blocks for the next message from the far side.
func (b *Bridge) Receive() (to string, m any, err error) {
	var env Envelope
	if err := b.dec.Decode(&env); err != nil {
		return "", nil, err
	}
	dm, err := Decode(env.Msg)
	if err != nil {
		return "", nil, err
	}
	return env.To, dm, nil
}

// Pump decodes messages until the stream ends, delivering each via fn.
// io.EOF (and closed-connection errors after Close) end the loop silently;
// other errors are returned.
func (b *Bridge) Pump(fn func(to string, m any)) error {
	for {
		to, m, err := b.Receive()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			if ne, ok := err.(net.Error); ok && !ne.Timeout() {
				return nil
			}
			return err
		}
		fn(to, m)
	}
}

// Close closes the underlying stream.
func (b *Bridge) Close() error { return b.c.Close() }
