package wire

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffNextCaps proves the exponential ceiling saturates at Max:
// every draw for a huge attempt number stays in (0, Max], with no
// overflow from the repeated doubling.
func TestBackoffNextCaps(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	rng := rand.New(rand.NewSource(1))
	for _, attempt := range []int{0, 1, 5, 30, 63, 200} {
		for i := 0; i < 100; i++ {
			d := b.Next(rng, attempt)
			if d <= 0 {
				t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
			}
			if d > b.Max {
				t.Fatalf("attempt %d: delay %v above cap %v", attempt, d, b.Max)
			}
			ceil := b.Base << attempt
			if attempt < 30 && ceil < b.Max && d > ceil {
				t.Fatalf("attempt %d: delay %v above exponential ceiling %v", attempt, d, ceil)
			}
		}
	}
}

// TestBackoffNextSpread proves the jitter is full (uniform over the
// whole window), not a narrow band above the deterministic ladder: over
// many draws at the cap, delays land in both the bottom and the top
// quartile. The old schedule (delay + jitter in [0, delay/2]) kept
// every orphaned follower inside the same 50% band, so a subtree killed
// by one relay crash reconnected as a stampede.
func TestBackoffNextSpread(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	rng := rand.New(rand.NewSource(7))
	min, max := time.Duration(1<<62), time.Duration(0)
	for i := 0; i < 200; i++ {
		d := b.Next(rng, 30) // far past the cap: window is (0, Max]
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min >= b.Max/4 {
		t.Fatalf("min delay %v never entered the bottom quartile of %v", min, b.Max)
	}
	if max <= 3*b.Max/4 {
		t.Fatalf("max delay %v never entered the top quartile of %v", max, b.Max)
	}
}

// TestBackoffNextSeedDeterminism: same seed, same schedule — reconnect
// behavior stays replayable from one seed, as the sched harness relies
// on.
func TestBackoffNextSeedDeterminism(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second}
	a := rand.New(rand.NewSource(42))
	c := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		if da, dc := b.Next(a, i), b.Next(c, i); da != dc {
			t.Fatalf("attempt %d: %v != %v with equal seeds", i, da, dc)
		}
	}
}

// TestBackoffNextDefaults: the zero value is usable and respects the
// documented 50ms/2s defaults.
func TestBackoffNextDefaults(t *testing.T) {
	var b Backoff
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		d := b.Next(rng, i)
		if d <= 0 || d > 2*time.Second {
			t.Fatalf("attempt %d: delay %v outside (0, 2s]", i, d)
		}
	}
}
