//go:build ignore

// Regenerates the checked-in seed corpus for FuzzEncodeDecode:
//
//	cd internal/wire && go run gen_corpus.go
//
// Each corpus file is one gob-framed Envelope in the "go test fuzz v1"
// encoding, covering every serializable protocol message kind.
package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/wire"
)

func main() {
	rs := relation.MustSchema("A:int", "B:int")
	mixed := relation.MustSchema("I:int", "S:string", "F:float", "B:bool")
	d := relation.NewDelta(rs)
	d.Add(relation.T(1, 2), 3)
	d.Add(relation.T(4, 5), -1)
	dm := relation.NewDelta(mixed)
	dm.Add(relation.T(7, "x", 1.5, true), 2)

	seeds := map[string]any{
		"update": msg.Update{Seq: 7, Source: "src1", CommitAt: 42,
			Writes: []msg.Write{{Relation: "R", Delta: d}},
			Rel:    &msg.RelevantSet{Seq: 7, Views: []msg.ViewID{"V1", "V2"}, CommitAt: 42}},
		"relevant-set": msg.RelevantSet{Seq: 9, Views: []msg.ViewID{"V1"}, CommitAt: 3},
		"action-list": msg.ActionList{View: "V1", From: 3, Upto: 5, Delta: dm, Level: msg.Strong,
			Rels: []msg.RelevantSet{{Seq: 4, Views: []msg.ViewID{"V1"}}}},
		"action-list-staged": msg.ActionList{View: "V2", From: 1, Upto: 1, Staged: true},
		"stage-delta":        msg.StageDelta{View: "V1", Upto: 5, Delta: d},
		"commit-ack":         msg.CommitAck{ID: 11},
		"warehouse-txn": msg.SubmitTxn{From: "merge:0", Txn: msg.WarehouseTxn{
			ID: 9, Rows: []msg.UpdateID{3, 4}, DependsOn: []msg.TxnID{7}, CommitAt: 55,
			Writes: []msg.ViewWrite{
				{View: "V1", Upto: 4, Delta: d},
				{View: "V2", Upto: 4, Staged: true},
			}}},
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzEncodeDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, m := range seeds {
		w, err := wire.Encode(m)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(wire.Envelope{To: "vm:V1", Msg: w}); err != nil {
			panic(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(buf.String()))
		path := filepath.Join(dir, "seed-"+name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", path)
	}
}
