package wire

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"

	"whips/internal/msg"
	"whips/internal/relation"
)

// seedEnvelopes returns one valid gob-framed envelope per protocol message
// kind — the fuzz seeds (also checked in under testdata/fuzz).
func seedEnvelopes() [][]byte {
	rs := relation.MustSchema("A:int", "B:int")
	mixed := relation.MustSchema("I:int", "S:string", "F:float", "B:bool")
	d := relation.NewDelta(rs)
	d.Add(relation.T(1, 2), 3)
	d.Add(relation.T(4, 5), -1)
	dm := relation.NewDelta(mixed)
	dm.Add(relation.T(7, "x", 1.5, true), 2)

	msgs := []any{
		msg.Update{Seq: 7, Source: "src1", CommitAt: 42,
			Writes: []msg.Write{{Relation: "R", Delta: d}},
			Rel:    &msg.RelevantSet{Seq: 7, Views: []msg.ViewID{"V1", "V2"}, CommitAt: 42}},
		msg.RelevantSet{Seq: 9, Views: []msg.ViewID{"V1"}, CommitAt: 3},
		msg.ActionList{View: "V1", From: 3, Upto: 5, Delta: dm, Level: msg.Strong,
			Rels: []msg.RelevantSet{{Seq: 4, Views: []msg.ViewID{"V1"}}}},
		msg.ActionList{View: "V2", From: 1, Upto: 1, Staged: true}, // nil-delta token
		msg.StageDelta{View: "V1", Upto: 5, Delta: d},
		msg.CommitAck{ID: 11},
		msg.SubmitTxn{From: "merge:0", Txn: msg.WarehouseTxn{
			ID: 9, Rows: []msg.UpdateID{3, 4}, DependsOn: []msg.TxnID{7}, CommitAt: 55,
			Writes: []msg.ViewWrite{
				{View: "V1", Upto: 4, Delta: d},
				{View: "V2", Upto: 4, Staged: true},
			}}},
		msg.ReplSubscribe{Follower: "f1", Epoch: -1},
		msg.ReplSnapshot{Epoch: 12, Txn: 9, CommitAt: 77, Head: 15, Views: []msg.ReplView{
			{View: "V1", Rel: relation.FromTuples(rs, relation.T(1, 2)), Upto: 12},
			{View: "V2", Rel: relation.FromTuples(mixed, relation.T(7, "x", 1.5, true)), Upto: 11},
		}},
		msg.ReplEpoch{Epoch: 13, Txn: 10, CommitAt: 78, Head: 15, Writes: []msg.ReplWrite{
			{View: "V1", Upto: 13, Delta: d},
			{View: "V2", Upto: 13, Delta: dm},
		}},
	}
	var out [][]byte
	for _, m := range msgs {
		w, err := Encode(m)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(Envelope{To: "vm:V1", Msg: w}); err != nil {
			panic(err)
		}
		out = append(out, buf.Bytes())
	}
	// Torn frames: prefixes of valid replication envelopes, as left by a
	// connection severed mid-write. They must be rejected cleanly, never
	// decoded into a partial message.
	n := len(out)
	for _, full := range out[n-3:] {
		out = append(out, full[:len(full)/2], full[:len(full)-1])
	}
	return out
}

// hasNaN reports whether any float value in a wire message is NaN — such
// messages round-trip fine but defeat reflect.DeepEqual.
func hasNaN(w any) bool {
	nanDelta := func(d Delta) bool {
		for _, e := range d.Entries {
			for _, v := range e.Tuple {
				if math.IsNaN(v.F) {
					return true
				}
			}
		}
		return false
	}
	switch t := w.(type) {
	case Update:
		for _, wr := range t.Writes {
			if nanDelta(wr.Delta) {
				return true
			}
		}
	case ActionList:
		return t.HasDelta && nanDelta(t.Delta)
	case StageDelta:
		return nanDelta(t.Delta)
	case SubmitTxn:
		for _, wr := range t.Writes {
			if wr.HasDelta && nanDelta(wr.Delta) {
				return true
			}
		}
	case ReplSnapshot:
		for _, v := range t.Views {
			for _, e := range v.Rel.Entries {
				for _, val := range e.Tuple {
					if math.IsNaN(val.F) {
						return true
					}
				}
			}
		}
	case ReplEpoch:
		for _, wr := range t.Writes {
			if wr.HasDelta && nanDelta(wr.Delta) {
				return true
			}
		}
	}
	return false
}

// FuzzEncodeDecode feeds arbitrary bytes through the full wire path: gob
// frame → wire form → protocol message → wire form → protocol message.
// Invalid input must be rejected with an error (never a panic); anything
// that decodes must round-trip losslessly.
func FuzzEncodeDecode(f *testing.F) {
	for _, seed := range seedEnvelopes() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
			return // not a gob frame: rejected cleanly
		}
		m, err := Decode(env.Msg)
		if err != nil {
			return // structurally invalid message: rejected cleanly
		}
		w2, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded %T failed to re-encode: %v", m, err)
		}
		m2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded %T failed to decode: %v", m, err)
		}
		w3, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode of %T failed: %v", m2, err)
		}
		if hasNaN(w2) {
			return // NaN breaks DeepEqual but carries no ordering meaning
		}
		// After one decode the message is canonical: a second round trip
		// must be a fixed point.
		if !reflect.DeepEqual(w2, w3) {
			t.Fatalf("round trip not a fixed point:\n%#v\nvs\n%#v", w2, w3)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("protocol round trip diverged:\n%#v\nvs\n%#v", m, m2)
		}
	})
}
