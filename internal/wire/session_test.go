package wire

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whips/internal/msg"
	"whips/internal/obs"
)

// recorder collects delivered messages per channel, in arrival order.
type recorder struct {
	mu   sync.Mutex
	got  map[string][]int64 // chan key -> ack IDs in delivery order
	seen int
}

func newRecorder() *recorder { return &recorder{got: map[string][]int64{}} }

func (r *recorder) deliver(from, to string, m any) {
	ack, ok := m.(msg.CommitAck)
	if !ok {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got[from+"→"+to] = append(r.got[from+"→"+to], int64(ack.ID))
	r.seen++
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

func (r *recorder) channel(key string) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.got[key]))
	copy(out, r.got[key])
	return out
}

// tcpPair returns the two ends of a fresh localhost TCP connection.
func tcpPair(t *testing.T) (server net.Conn, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return <-accepted, client
}

func waitCount(t *testing.T, r *recorder, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: delivered %d of %d", r.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func wantOrdered(t *testing.T, got []int64, n int64) {
	t.Helper()
	if int64(len(got)) != n {
		t.Fatalf("delivered %d messages, want %d: %v", len(got), n, got)
	}
	for i, id := range got {
		if id != int64(i)+1 {
			t.Fatalf("channel order broken at %d: %v", i, got)
		}
	}
}

// TestSessionResumeAcrossConnDrop kills the underlying TCP connection
// mid-stream; after reattach, every frame — including those sent while
// disconnected — arrives exactly once, in per-channel order.
func TestSessionResumeAcrossConnDrop(t *testing.T) {
	recA, recB := newRecorder(), newRecorder()
	sa := NewSession(SessionConfig{Name: "a", Deliver: recA.deliver})
	sb := NewSession(SessionConfig{Name: "b", Deliver: recB.deliver})
	defer sa.Close()
	defer sb.Close()

	ca, cb := tcpPair(t)
	sa.Attach(ca)
	sb.Attach(cb)

	for i := 1; i <= 10; i++ {
		if err := sa.Send("integrator", "vm:V1", msg.CommitAck{ID: msg.TxnID(i)}); err != nil {
			t.Fatal(err)
		}
		if err := sa.Send("integrator", "vm:V2", msg.CommitAck{ID: msg.TxnID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, recB, 20)

	// Sever the transport; keep sending into the void.
	ca.Close()
	cb.Close()
	for i := 11; i <= 20; i++ {
		if err := sa.Send("integrator", "vm:V1", msg.CommitAck{ID: msg.TxnID(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Reattach over a new connection: Hello exchange resumes both sides.
	ca2, cb2 := tcpPair(t)
	sa.Attach(ca2)
	sb.Attach(cb2)
	waitCount(t, recB, 30)

	wantOrdered(t, recB.channel("integrator→vm:V1"), 20)
	wantOrdered(t, recB.channel("integrator→vm:V2"), 10)
}

// TestSessionReplaysRestartedPeerFromZero rebuilds one side from scratch
// (a killed process): its empty Hello makes the surviving side replay the
// full retained stream, and the survivor dedups the restarted peer's
// regenerated frames by sequence number.
func TestSessionReplaysRestartedPeerFromZero(t *testing.T) {
	recA, recB := newRecorder(), newRecorder()
	sa := NewSession(SessionConfig{Name: "a", Deliver: recA.deliver})
	sb := NewSession(SessionConfig{Name: "b", Deliver: recB.deliver})
	defer sa.Close()

	ca, cb := tcpPair(t)
	sa.Attach(ca)
	sb.Attach(cb)

	for i := 1; i <= 8; i++ {
		sa.Send("integrator", "vm:V1", msg.CommitAck{ID: msg.TxnID(i)})
	}
	// b answers each input deterministically (a stand-in view manager).
	for i := 1; i <= 5; i++ {
		sb.Send("vm:V1", "merge:0", msg.CommitAck{ID: msg.TxnID(i)})
	}
	waitCount(t, recB, 8)
	waitCount(t, recA, 5)

	// Kill site b entirely.
	sb.Close()

	// Restart: a brand-new session with no state dials in. Its Hello
	// carries an empty LastRecv, so a replays all 8 inputs from seq 1.
	recB2 := newRecorder()
	sb2 := NewSession(SessionConfig{Name: "b2", Deliver: recB2.deliver})
	defer sb2.Close()
	ca2, cb2 := tcpPair(t)
	sa.Attach(ca2)
	sb2.Attach(cb2)
	waitCount(t, recB2, 8)
	wantOrdered(t, recB2.channel("integrator→vm:V1"), 8)

	// The restarted peer regenerates its deterministic output stream from
	// scratch — seqs 1..5 must be dropped as duplicates by a, then new
	// frames flow normally.
	for i := 1; i <= 7; i++ {
		sb2.Send("vm:V1", "merge:0", msg.CommitAck{ID: msg.TxnID(i)})
	}
	waitCount(t, recA, 7)
	time.Sleep(20 * time.Millisecond) // would surface late duplicates
	wantOrdered(t, recA.channel("vm:V1→merge:0"), 7)
}

// TestAckDurablePrunesRetained exercises the checkpoint-ack path: once the
// receiver reports its watermarks durable, the sender's retained-frame
// buffer shrinks to the unacked suffix and the drop counter records it.
func TestAckDurablePrunesRetained(t *testing.T) {
	pipe := obs.NewPipeline()
	rec := newRecorder()
	sa := NewSession(SessionConfig{Name: "a", Obs: pipe})
	sb := NewSession(SessionConfig{Name: "b", Deliver: rec.deliver})
	defer sa.Close()
	defer sb.Close()

	ca, cb := tcpPair(t)
	sa.Attach(ca)
	sb.Attach(cb)

	for i := 1; i <= 12; i++ {
		if err := sa.Send("integrator", "vm:V1", msg.CommitAck{ID: msg.TxnID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, rec, 12)
	if got := sa.Retained(); got != 12 {
		t.Fatalf("retained %d frames before ack, want 12 (full retention)", got)
	}

	// The receiver checkpoints: everything received so far is durable.
	sb.AckDurable()
	deadline := time.Now().Add(5 * time.Second)
	for sa.Retained() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("retained frames not pruned by durable ack: %d left", sa.Retained())
		}
		time.Sleep(time.Millisecond)
	}
	drops := pipe.Reg().Counter("wire_retained_dropped_total", "site", "a").Value()
	if drops != 12 {
		t.Fatalf("wire_retained_dropped_total = %d, want 12", drops)
	}

	// Later frames are retained afresh; a second checkpoint prunes them too.
	for i := 13; i <= 15; i++ {
		sa.Send("integrator", "vm:V1", msg.CommitAck{ID: msg.TxnID(i)})
	}
	waitCount(t, rec, 15)
	sb.AckDurable()
	deadline = time.Now().Add(5 * time.Second)
	for sa.Retained() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("second durable ack did not prune: %d left", sa.Retained())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetainLimitCapsDeadPeer bounds memory against a peer that never
// comes back: with RetainLimit set, a disconnected sender's per-channel
// buffer stays capped and the overflow is counted, not accumulated.
func TestRetainLimitCapsDeadPeer(t *testing.T) {
	pipe := obs.NewPipeline()
	sa := NewSession(SessionConfig{Name: "a", Obs: pipe, RetainLimit: 5})
	defer sa.Close()

	// No connection ever: the peer is dead. Send far past the cap.
	for i := 1; i <= 40; i++ {
		if err := sa.Send("integrator", "vm:V1", msg.CommitAck{ID: msg.TxnID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sa.Retained(); got != 5 {
		t.Fatalf("retained %d frames, want cap 5", got)
	}
	drops := pipe.Reg().Counter("wire_retained_dropped_total", "site", "a").Value()
	if drops != 35 {
		t.Fatalf("wire_retained_dropped_total = %d, want 35", drops)
	}
	// The cap is per channel: a second channel gets its own window.
	for i := 1; i <= 7; i++ {
		sa.Send("integrator", "vm:V2", msg.CommitAck{ID: msg.TxnID(i)})
	}
	if got := sa.Retained(); got != 10 {
		t.Fatalf("retained %d frames across two channels, want 10", got)
	}
}

// TestSessionDialBackoff exercises the active side: dial fails several
// times (exponential backoff with seeded jitter), then succeeds, and the
// stream flows.
func TestSessionDialBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	rec := newRecorder()
	passive := NewSession(SessionConfig{Name: "passive", Deliver: rec.deliver})
	defer passive.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			passive.Attach(c)
		}
	}()

	var attempts atomic.Int32
	active := NewSession(SessionConfig{
		Name: "active",
		Dial: func() (io.ReadWriteCloser, error) {
			if attempts.Add(1) <= 3 {
				return nil, io.ErrClosedPipe
			}
			return net.Dial("tcp", ln.Addr().String())
		},
		Backoff: Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: 42},
	})
	defer active.Close()

	for i := 1; i <= 5; i++ {
		active.Send("vm:V1", "merge:0", msg.CommitAck{ID: msg.TxnID(i)})
	}
	waitCount(t, rec, 5)
	wantOrdered(t, rec.channel("vm:V1→merge:0"), 5)
	if got := attempts.Load(); got < 4 {
		t.Fatalf("expected at least 4 dial attempts (3 failures + success), got %d", got)
	}
	if passive.LastRecv("vm:V1", "merge:0") != 5 {
		t.Fatalf("passive LastRecv = %d, want 5", passive.LastRecv("vm:V1", "merge:0"))
	}
	if active.Retained() != 5 {
		t.Fatalf("active retained %d frames, want 5", active.Retained())
	}
}
