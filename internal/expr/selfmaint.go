package expr

import "fmt"

// Self-maintenance analysis (Quass/Gupta-style auxiliary relations, per the
// self-maintainable-views literature in PAPERS.md): given a view expression,
// derive the minimal auxiliary relations a view manager must keep so that
// every base-relation delta can be turned into an exact view delta with NO
// source queries. Each auxiliary relation is a select/project/rename chain
// over a single base-relation occurrence — exactly the join-key projections
// and semijoin-style filters that Optimize has already pushed to the leaves —
// so an aux holds only the columns and rows the view can ever need from that
// occurrence.
//
// The derivation rewrites the optimized view tree: every maximal linear
// chain (Select/Project/Rename over one Scan) becomes one AuxRelation, and
// the chain is replaced by a Scan of the auxiliary name. The rewritten tree
// then evaluates — and, crucially, delta-evaluates — purely over auxiliary
// state. Because the chain operators are linear in their input delta, the
// auxiliary relations themselves are maintained from the update stream alone
// (AuxWrites), with no database reads at all.

// AuxRelation is one auxiliary relation the self-maintaining manager keeps.
// Expr is a linear chain (Select/Project/Rename) over a single Scan of Base;
// it is also the exact bounded query to re-issue against a versioned source
// when the auxiliary copy must be repaired.
type AuxRelation struct {
	// Name is the auxiliary relation's name inside the rewritten tree. It
	// contains a ':' so it can never collide with a real base relation name.
	Name string
	// Base is the base relation this auxiliary derives from.
	Base string
	// Expr is the derivation chain over Scan(Base).
	Expr Expr
}

// SelfMaintPlan is the result of AnalyzeSelfMaint: the view rewritten over
// auxiliary relations, plus the auxiliary definitions in left-to-right
// occurrence order.
type SelfMaintPlan struct {
	// Rewritten is the view expression with every maximal base-relation
	// chain replaced by a Scan of the corresponding auxiliary relation.
	Rewritten Expr
	// Aux lists the auxiliary relations in the order their occurrences
	// appear in the (optimized) view tree.
	Aux []AuxRelation

	byBase map[string][]int // base relation name -> indexes into Aux
}

// AnalyzeSelfMaint optimizes view and derives its self-maintenance plan.
// Optimize pushes selections and prunes projections first, so each auxiliary
// chain carries only the columns the view needs from that occurrence
// (join keys plus output columns) and only the rows passing its pushed-down
// predicate — the "minimal auxiliary columns/keys" of the literature.
func AnalyzeSelfMaint(view Expr) (*SelfMaintPlan, error) {
	p := &SelfMaintPlan{byBase: make(map[string][]int)}
	rw, err := p.rewrite(Optimize(view))
	if err != nil {
		return nil, err
	}
	if len(p.Aux) == 0 {
		return nil, fmt.Errorf("expr: self-maintenance analysis of %s found no base relation occurrences", view)
	}
	p.Rewritten = rw
	return p, nil
}

// chainBase reports whether e is a linear chain — Select/Project/Rename
// nodes over exactly one Scan — and if so, which base relation it reads.
func chainBase(e Expr) (string, bool) {
	switch n := e.(type) {
	case *ScanExpr:
		return n.name, true
	case *SelectExpr:
		return chainBase(n.child)
	case *ProjectExpr:
		return chainBase(n.child)
	case *RenameExpr:
		return chainBase(n.child)
	default:
		return "", false
	}
}

// rewrite walks the tree top-down. A maximal chain becomes one auxiliary
// relation; every other node is rebuilt with rewritten children (the same
// structural-copy pattern as Substitute).
func (p *SelfMaintPlan) rewrite(e Expr) (Expr, error) {
	if base, ok := chainBase(e); ok {
		i := len(p.Aux)
		a := AuxRelation{Name: fmt.Sprintf("aux%d:%s", i, base), Base: base, Expr: e}
		p.Aux = append(p.Aux, a)
		p.byBase[base] = append(p.byBase[base], i)
		return Scan(a.Name, e.Schema()), nil
	}
	switch n := e.(type) {
	case *ConstExpr:
		return n, nil
	case *SelectExpr:
		c, err := p.rewrite(n.child)
		if err != nil {
			return nil, err
		}
		return &SelectExpr{child: c, pred: n.pred, compiled: n.compiled}, nil
	case *ProjectExpr:
		c, err := p.rewrite(n.child)
		if err != nil {
			return nil, err
		}
		return &ProjectExpr{child: c, schema: n.schema, idx: n.idx}, nil
	case *RenameExpr:
		c, err := p.rewrite(n.child)
		if err != nil {
			return nil, err
		}
		return &RenameExpr{child: c, schema: n.schema, mapping: n.mapping}, nil
	case *JoinExpr:
		l, err := p.rewrite(n.left)
		if err != nil {
			return nil, err
		}
		r, err := p.rewrite(n.right)
		if err != nil {
			return nil, err
		}
		return &JoinExpr{left: l, right: r, schema: n.schema, shared: n.shared, rightKeep: n.rightKeep}, nil
	case *UnionAllExpr:
		l, err := p.rewrite(n.left)
		if err != nil {
			return nil, err
		}
		r, err := p.rewrite(n.right)
		if err != nil {
			return nil, err
		}
		return &UnionAllExpr{left: l, right: r}, nil
	case *SetOpExpr:
		l, err := p.rewrite(n.left)
		if err != nil {
			return nil, err
		}
		r, err := p.rewrite(n.right)
		if err != nil {
			return nil, err
		}
		return &SetOpExpr{kind: n.kind, left: l, right: r}, nil
	case *AggregateExpr:
		c, err := p.rewrite(n.child)
		if err != nil {
			return nil, err
		}
		return &AggregateExpr{child: c, groupBy: n.groupBy, groupIdx: n.groupIdx, aggs: n.aggs, schema: n.schema}, nil
	default:
		return nil, fmt.Errorf("expr: self-maintenance analysis does not know node type %T", e)
	}
}

// AuxFor returns the auxiliary relations derived from base, in occurrence
// order. The slice is shared; callers must not mutate it.
func (p *SelfMaintPlan) AuxFor(base string) []AuxRelation {
	idx := p.byBase[base]
	if len(idx) == 0 {
		return nil
	}
	out := make([]AuxRelation, len(idx))
	for i, j := range idx {
		out[i] = p.Aux[j]
	}
	return out
}

// AuxWrites translates a transaction's base-relation writes into the
// corresponding auxiliary-relation writes. Because each auxiliary chain is
// linear (Select/Project/Rename only), its delta is the chain applied to the
// base delta — no database state is read. A single base write fanning out to
// several occurrences (a self-join) becomes several sequential auxiliary
// writes; evaluating them one at a time under DeltaWrites reproduces the
// join delta rule term for term, so the decomposition is exact.
func (p *SelfMaintPlan) AuxWrites(writes []Write) ([]Write, error) {
	var out []Write
	for _, w := range writes {
		for _, i := range p.byBase[w.Relation] {
			a := p.Aux[i]
			d, err := EvalSigned(Substitute(a.Expr, a.Base, w.Delta), MapDB{})
			if err != nil {
				return nil, fmt.Errorf("expr: auxiliary delta for %s: %w", a.Name, err)
			}
			out = append(out, Write{Relation: a.Name, Delta: d})
		}
	}
	return out, nil
}
