package expr

import (
	"strings"
	"testing"

	"whips/internal/relation"
)

var (
	rSchema = relation.MustSchema("A:int", "B:int")
	sSchema = relation.MustSchema("B:int", "C:int")
	tSchema = relation.MustSchema("C:int", "D:int")
)

func paperDB() MapDB {
	// Table 1 of the paper at time t1: R=[1 2], S=[2 3], T=[3 4].
	return MapDB{
		"R": relation.FromTuples(rSchema, relation.T(1, 2)),
		"S": relation.FromTuples(sSchema, relation.T(2, 3)),
		"T": relation.FromTuples(tSchema, relation.T(3, 4)),
	}
}

func mustEval(t *testing.T, e Expr, db Database) *relation.Relation {
	t.Helper()
	r, err := Eval(e, db)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return r
}

func TestScanEval(t *testing.T) {
	db := paperDB()
	r := mustEval(t, Scan("R", rSchema), db)
	if !r.Equal(db["R"]) {
		t.Errorf("scan = %v", r)
	}
	if _, err := Eval(Scan("Z", rSchema), db); err == nil {
		t.Error("scanning unknown relation should fail")
	}
	if _, err := Eval(Scan("R", sSchema), db); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestJoinEvalPaperV1(t *testing.T) {
	// V1 = R ⋈ S over Table 1 contents: expect [1 2 3].
	db := paperDB()
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	got := mustEval(t, v1, db)
	want := relation.FromTuples(v1.Schema(), relation.T(1, 2, 3))
	if !got.Equal(want) {
		t.Errorf("V1 = %v, want %v", got, want)
	}
	if v1.Schema().String() != "(A:int, B:int, C:int)" {
		t.Errorf("V1 schema = %s", v1.Schema())
	}
}

func TestJoinEvalPaperV2(t *testing.T) {
	// V2 = S ⋈ T: expect [2 3 4].
	db := paperDB()
	v2 := MustJoin(Scan("S", sSchema), Scan("T", tSchema))
	got := mustEval(t, v2, db)
	want := relation.FromTuples(v2.Schema(), relation.T(2, 3, 4))
	if !got.Equal(want) {
		t.Errorf("V2 = %v, want %v", got, want)
	}
}

func TestJoinMultiplicities(t *testing.T) {
	db := MapDB{
		"R": relation.New(rSchema),
		"S": relation.New(sSchema),
	}
	_ = db["R"].Insert(relation.T(1, 2), 2)
	_ = db["S"].Insert(relation.T(2, 3), 3)
	j := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	got := mustEval(t, j, db)
	if got.Count(relation.T(1, 2, 3)) != 6 {
		t.Errorf("bag join count = %d, want 6", got.Count(relation.T(1, 2, 3)))
	}
}

func TestCrossProduct(t *testing.T) {
	q := relation.MustSchema("X:int")
	db := MapDB{
		"R": relation.FromTuples(rSchema, relation.T(1, 2), relation.T(3, 4)),
		"Q": relation.FromTuples(q, relation.T(7), relation.T(8)),
	}
	j := MustJoin(Scan("R", rSchema), Scan("Q", q))
	got := mustEval(t, j, db)
	if got.Cardinality() != 4 {
		t.Errorf("cross product cardinality = %d", got.Cardinality())
	}
}

func TestSelectEval(t *testing.T) {
	db := MapDB{"R": relation.FromTuples(rSchema,
		relation.T(1, 10), relation.T(2, 20), relation.T(3, 30))}
	sel := MustSelect(Scan("R", rSchema), Cmp("B", Ge, 20))
	got := mustEval(t, sel, db)
	want := relation.FromTuples(rSchema, relation.T(2, 20), relation.T(3, 30))
	if !got.Equal(want) {
		t.Errorf("select = %v", got)
	}
}

func TestSelectCompileErrors(t *testing.T) {
	if _, err := Select(Scan("R", rSchema), Cmp("Z", Eq, 1)); err == nil {
		t.Error("missing attribute should fail at construction")
	}
	if _, err := Select(Scan("R", rSchema), Cmp("A", Eq, "str")); err == nil {
		t.Error("type mismatch should fail at construction")
	}
	if _, err := Select(Scan("R", rSchema), CmpAttrs("A", Eq, "Z")); err == nil {
		t.Error("missing rhs attribute should fail")
	}
}

func TestPredCombinators(t *testing.T) {
	db := MapDB{"R": relation.FromTuples(rSchema,
		relation.T(1, 1), relation.T(1, 2), relation.T(2, 2), relation.T(3, 1))}
	cases := []struct {
		pred Pred
		want int64
	}{
		{And(Cmp("A", Eq, 1), Cmp("B", Eq, 2)), 1},
		{Or(Cmp("A", Eq, 1), Cmp("B", Eq, 1)), 3},
		{Not(Cmp("A", Eq, 1)), 2},
		{True(), 4},
		{And(), 4},
		{Or(), 0},
		{CmpAttrs("A", Eq, "B"), 2},
		{CmpAttrs("A", Lt, "B"), 1},
		{Cmp("A", Ne, 1), 2},
		{Cmp("A", Le, 1), 2},
		{Cmp("A", Gt, 2), 1},
	}
	for _, c := range cases {
		sel := MustSelect(Scan("R", rSchema), c.pred)
		got := mustEval(t, sel, db)
		if got.Cardinality() != c.want {
			t.Errorf("select[%s] matched %d rows, want %d", c.pred, got.Cardinality(), c.want)
		}
	}
}

func TestProjectEvalCounting(t *testing.T) {
	db := MapDB{"R": relation.FromTuples(rSchema,
		relation.T(1, 10), relation.T(2, 10), relation.T(3, 20))}
	p := MustProject(Scan("R", rSchema), "B")
	got := mustEval(t, p, db)
	if got.Count(relation.T(10)) != 2 || got.Count(relation.T(20)) != 1 {
		t.Errorf("projection counts wrong: %v", got)
	}
}

func TestUnionAllEval(t *testing.T) {
	db := MapDB{
		"R1": relation.FromTuples(rSchema, relation.T(1, 1)),
		"R2": relation.FromTuples(rSchema, relation.T(1, 1), relation.T(2, 2)),
	}
	u := MustUnionAll(Scan("R1", rSchema), Scan("R2", rSchema))
	got := mustEval(t, u, db)
	if got.Count(relation.T(1, 1)) != 2 || got.Count(relation.T(2, 2)) != 1 {
		t.Errorf("union = %v", got)
	}
	if _, err := UnionAll(Scan("R1", rSchema), Scan("S", sSchema)); err == nil {
		t.Error("union of mismatched schemas should fail")
	}
}

func TestExprStringsAndBases(t *testing.T) {
	v := MustSelect(
		MustProject(MustJoin(Scan("R", rSchema), Scan("S", sSchema)), "A", "C"),
		Cmp("A", Gt, 0))
	s := v.String()
	for _, frag := range []string{"select", "project", "join", "R", "S"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	bases := v.BaseRelations()
	if len(bases) != 2 || bases[0] != "R" || bases[1] != "S" {
		t.Errorf("BaseRelations = %v", bases)
	}
	// Self-join mentions the base once.
	sj := MustJoin(Scan("R", rSchema), Scan("R", rSchema))
	if got := sj.BaseRelations(); len(got) != 1 || got[0] != "R" {
		t.Errorf("self-join bases = %v", got)
	}
}

func TestEvalRejectsNegativeConst(t *testing.T) {
	neg := relation.DeleteDelta(rSchema, relation.T(1, 1))
	if _, err := Eval(NewConst(rSchema, neg), MapDB{}); err == nil {
		t.Error("Eval over negative bag should fail")
	}
	if d, err := EvalSigned(NewConst(rSchema, neg), MapDB{}); err != nil || d.Count(relation.T(1, 1)) != -1 {
		t.Errorf("EvalSigned = %v, %v", d, err)
	}
}

func TestJoinAll(t *testing.T) {
	db := paperDB()
	v := JoinAll(Scan("R", rSchema), Scan("S", sSchema), Scan("T", tSchema))
	got := mustEval(t, v, db)
	want := relation.FromTuples(v.Schema(), relation.T(1, 2, 3, 4))
	if !got.Equal(want) {
		t.Errorf("R⋈S⋈T = %v", got)
	}
}
