package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"whips/internal/relation"
)

func TestOptimizePushesSelectionBelowJoin(t *testing.T) {
	// σ_{A>2}(R ⋈ S): A lives only in R, so the selection lands on R.
	v := MustSelect(MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Cmp("A", Gt, 2))
	opt := Optimize(v)
	if _, stillTop := opt.(*SelectExpr); stillTop {
		t.Fatalf("selection not pushed: %s", opt)
	}
	j, ok := opt.(*JoinExpr)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	if _, ok := j.left.(*SelectExpr); !ok {
		t.Errorf("selection should sit on the left input: %s", opt)
	}
	db := paperDB()
	a := mustEval(t, v, db)
	b := mustEval(t, opt, db)
	if !a.Equal(b) {
		t.Errorf("optimized result differs: %v vs %v", a, b)
	}
}

func TestOptimizeFusesSelections(t *testing.T) {
	v := MustSelect(MustSelect(Scan("R", rSchema), Cmp("A", Gt, 0)), Cmp("B", Lt, 9))
	opt := Optimize(v)
	sel, ok := opt.(*SelectExpr)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	if _, nested := sel.child.(*SelectExpr); nested {
		t.Errorf("selections not fused: %s", opt)
	}
	if !strings.Contains(sel.Pred().String(), "and") {
		t.Errorf("fused predicate = %s", sel.Pred())
	}
}

func TestOptimizePushesThroughUnionAndRename(t *testing.T) {
	u := MustUnionAll(Scan("R", rSchema), Scan("R", rSchema))
	v := MustSelect(u, Cmp("A", Eq, 1))
	opt := Optimize(v)
	ou, ok := opt.(*UnionAllExpr)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	if _, ok := ou.left.(*SelectExpr); !ok {
		t.Errorf("selection should push into union branches: %s", opt)
	}

	r := MustRename(Scan("R", rSchema), map[string]string{"A": "X"})
	v2 := MustSelect(r, Cmp("X", Eq, 1))
	opt2 := Optimize(v2)
	if _, ok := opt2.(*RenameExpr); !ok {
		t.Fatalf("selection should push through rename: %s", opt2)
	}
	db := MapDB{"R": relation.FromTuples(rSchema, relation.T(1, 1), relation.T(2, 2))}
	a := mustEval(t, v2, db)
	b := mustEval(t, opt2, db)
	if !a.Equal(b) {
		t.Errorf("rename pushdown changed semantics: %v vs %v", a, b)
	}
}

func TestOptimizePrunesJoinInputs(t *testing.T) {
	// π_A(R ⋈ S): S contributes only the join key B; its C column prunes.
	v := MustProject(MustJoin(Scan("R", rSchema), Scan("S", sSchema)), "A")
	opt := Optimize(v)
	p, ok := opt.(*ProjectExpr)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	j, ok := p.child.(*JoinExpr)
	if !ok {
		t.Fatalf("optimized = %s", opt)
	}
	if j.right.Schema().Len() != 1 || !j.right.Schema().Has("B") {
		t.Errorf("right input not pruned to the join key: %s", opt)
	}
	db := paperDB()
	if a, b := mustEval(t, v, db), mustEval(t, opt, db); !a.Equal(b) {
		t.Errorf("pruning changed semantics: %v vs %v", a, b)
	}
}

func TestOptimizeDropsIdentityProjection(t *testing.T) {
	v := MustProject(Scan("R", rSchema), "A", "B")
	if _, ok := Optimize(v).(*ScanExpr); !ok {
		t.Errorf("identity projection should vanish: %s", Optimize(v))
	}
	// Column reorder is NOT identity.
	v2 := MustProject(Scan("R", rSchema), "B", "A")
	if _, ok := Optimize(v2).(*ProjectExpr); !ok {
		t.Errorf("reordering projection must stay: %s", Optimize(v2))
	}
}

// randOptExpr builds random expressions mixing every operator the
// optimizer handles.
func randOptExpr(rng *rand.Rand) Expr {
	var e Expr
	switch rng.Intn(3) {
	case 0:
		e = MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	case 1:
		e = JoinAll(Scan("R", rSchema), Scan("S", sSchema), Scan("T", tSchema))
	default:
		e = MustUnionAll(Scan("S", sSchema), MustRename(Scan("T", tSchema),
			map[string]string{"C": "B", "D": "C"}))
	}
	for i := 0; i < rng.Intn(3); i++ {
		names := e.Schema().Names()
		attr := names[rng.Intn(len(names))]
		e = MustSelect(e, Cmp(attr, CmpOp(rng.Intn(6)), int64(rng.Intn(5))))
	}
	if rng.Intn(2) == 0 {
		names := e.Schema().Names()
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		e = MustProject(e, names[:1+rng.Intn(len(names))]...)
	}
	return e
}

// Property: Optimize preserves Eval and Delta semantics on random
// expressions, databases and updates.
func TestOptimizeEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randDB(rng)
		e := randOptExpr(rng)
		opt := Optimize(e)
		if !opt.Schema().Equal(e.Schema()) {
			t.Errorf("schema changed: %s vs %s", opt.Schema(), e.Schema())
			return false
		}
		a, errA := Eval(e, db)
		b, errB := Eval(opt, db)
		if (errA == nil) != (errB == nil) {
			t.Errorf("error divergence: %v vs %v", errA, errB)
			return false
		}
		if errA == nil && !a.Equal(b) {
			t.Errorf("eval divergence for %s:\n  %v\n  %v", e, a, b)
			return false
		}
		// Delta equivalence for a random single-relation update.
		bases := []string{"R", "S", "T"}
		base := bases[rng.Intn(3)]
		sch := map[string]*relation.Schema{"R": rSchema, "S": sSchema, "T": tSchema}[base]
		d := relation.InsertDelta(sch, relation.T(rng.Intn(5), rng.Intn(5)))
		da, errA := Delta(e, base, d, db)
		dbd, errB := Delta(opt, base, d, db)
		if (errA == nil) != (errB == nil) {
			t.Errorf("delta error divergence: %v vs %v", errA, errB)
			return false
		}
		if errA == nil && !da.Equal(dbd) {
			t.Errorf("delta divergence for %s:\n  %v\n  %v", e, da, dbd)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeLeavesAggregatesAndConsts(t *testing.T) {
	a := MustAggregate(MustSelect(Scan("R", rSchema), Cmp("A", Gt, 0)),
		[]string{"B"}, []AggSpec{{Op: Count, As: "N"}})
	opt := Optimize(a)
	if _, ok := opt.(*AggregateExpr); !ok {
		t.Fatalf("aggregate shape lost: %s", opt)
	}
	db := MapDB{"R": relation.FromTuples(rSchema, relation.T(1, 1), relation.T(-1, 1))}
	x, _ := Eval(a, db)
	y, _ := Eval(opt, db)
	if !x.Equal(y) {
		t.Errorf("aggregate optimize diverged: %v vs %v", x, y)
	}
	c := NewConst(rSchema, relation.InsertDelta(rSchema, relation.T(1, 1)))
	if Optimize(c) != c {
		t.Error("const should pass through untouched")
	}
}
