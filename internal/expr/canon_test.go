// canon_test.go covers the structural canonicalization the shared
// maintenance-plan DAG keys on: CanonicalKey must be injective over
// distinct expression structures (typed constants, adversarial strings),
// normalize rename maps, refuse Const subtrees, and Children/Rebuild must
// reconstruct every node kind.
package expr

import (
	"testing"

	"whips/internal/relation"
)

var (
	canonR = relation.MustSchema("A:int", "B:int")
	canonS = relation.MustSchema("B:int", "C:int")
	canonQ = relation.MustSchema("A:string", "B:int")
)

func sel(t *testing.T, e Expr, p Pred) Expr {
	t.Helper()
	s, err := Select(e, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCanonicalKeyTypedConstants(t *testing.T) {
	// σ[A=3] over an int column vs σ[A="3"] over a string column:
	// Value.String() renders both constants as `3`, so the key renders
	// values typed (Kind():Quote(String())) — and scan schemas typed — to
	// keep the two structures apart.
	intSel := sel(t, Scan("Q", relation.MustSchema("A:int", "B:int")), Cmp("A", Eq, 3))
	strSel := sel(t, Scan("Q", canonQ), Cmp("A", Eq, "3"))
	k1, ok1 := CanonicalKey(intSel)
	k2, ok2 := CanonicalKey(strSel)
	if !ok1 || !ok2 {
		t.Fatalf("keys not computed: %v %v", ok1, ok2)
	}
	if k1 == k2 {
		t.Fatalf("int-3 and string-\"3\" selections share key %q", k1)
	}
}

func TestCanonicalKeyAdversarialStrings(t *testing.T) {
	// A scan name containing the rendering's own delimiters must not
	// fabricate a different structure.
	a := Scan(`R",(`, canonR)
	b := Scan(`R`, canonR)
	ka, _ := CanonicalKey(sel(t, a, Cmp("A", Eq, 1)))
	kb, _ := CanonicalKey(sel(t, b, Cmp("A", Eq, 1)))
	if ka == kb {
		t.Fatalf("quoted scan names collide: %q", ka)
	}
	// String constants embedding predicate syntax.
	s1 := sel(t, Scan("Q", canonQ), Cmp("A", Eq, `x) and (B=1`))
	s2 := sel(t, Scan("Q", canonQ), Cmp("A", Eq, `x`))
	k1, _ := CanonicalKey(s1)
	k2, _ := CanonicalKey(s2)
	if k1 == k2 {
		t.Fatalf("adversarial constant collides: %q", k1)
	}
}

func TestCanonicalKeyRenameNormalization(t *testing.T) {
	// Map iteration order must not leak into the key, and no-op pairs
	// (A→A) must not distinguish otherwise-identical renames.
	r1, err := Rename(Scan("R", canonR), map[string]string{"A": "X", "B": "Y"})
	if err != nil {
		t.Fatal(err)
	}
	k1, ok := CanonicalKey(r1)
	if !ok {
		t.Fatal("rename key not computed")
	}
	for i := 0; i < 32; i++ {
		ri, err := Rename(Scan("R", canonR), map[string]string{"B": "Y", "A": "X"})
		if err != nil {
			t.Fatal(err)
		}
		ki, _ := CanonicalKey(ri)
		if ki != k1 {
			t.Fatalf("rename key unstable: %q vs %q", ki, k1)
		}
	}
	rn, err := Rename(Scan("R", canonR), map[string]string{"A": "X", "B": "Y"})
	if err != nil {
		t.Fatal(err)
	}
	kn, _ := CanonicalKey(rn)
	if kn != k1 {
		t.Fatalf("no-op pair changed key: %q vs %q", kn, k1)
	}
	// A genuinely different mapping must differ.
	r2, err := Rename(Scan("R", canonR), map[string]string{"A": "Z", "B": "Y"})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := CanonicalKey(r2)
	if k2 == k1 {
		t.Fatal("distinct renames share a key")
	}
}

func TestCanonicalKeyRefusesConst(t *testing.T) {
	d := relation.NewDelta(canonR)
	d.Add(relation.T(1, 2), 1)
	c := NewConst(canonR, d)
	u, err := UnionAll(Scan("R", canonR), c)
	if err != nil {
		t.Fatal(err)
	}
	if key, ok := CanonicalKey(u); ok {
		t.Fatalf("Const subtree got key %q — Const contents are not part of the structural key, sharing must be refused", key)
	}
}

func TestChildrenRebuildRoundTrip(t *testing.T) {
	scanR := Scan("R", canonR)
	scanS := Scan("S", canonS)
	join, err := Join(scanR, scanS)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := Project(join, "A", "C")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Aggregate(join, []string{"B"}, []AggSpec{{Op: Sum, Attr: "C", As: "SC"}})
	if err != nil {
		t.Fatal(err)
	}
	ren, err := Rename(scanR, map[string]string{"A": "X"})
	if err != nil {
		t.Fatal(err)
	}
	union, err := UnionAll(scanR, scanR)
	if err != nil {
		t.Fatal(err)
	}
	exc, err := Except(scanR, scanR)
	if err != nil {
		t.Fatal(err)
	}
	intr, err := Intersect(scanR, scanR)
	if err != nil {
		t.Fatal(err)
	}
	exprs := []Expr{
		sel(t, scanR, Cmp("A", Ge, 1)), proj, agg, ren, join, union, exc, intr,
	}
	db := MapDB{
		"R": relation.FromTuples(canonR, relation.T(1, 10), relation.T(2, 20)),
		"S": relation.FromTuples(canonS, relation.T(10, 5), relation.T(20, 6)),
	}
	for _, e := range exprs {
		kids := Children(e)
		rb, err := Rebuild(e, kids)
		if err != nil {
			t.Fatalf("%T: rebuild: %v", e, err)
		}
		k1, ok1 := CanonicalKey(e)
		k2, ok2 := CanonicalKey(rb)
		if ok1 != ok2 || k1 != k2 {
			t.Fatalf("%T: rebuild changed key: %q vs %q", e, k1, k2)
		}
		r1, err := Eval(e, db)
		if err != nil {
			t.Fatalf("%T: eval: %v", e, err)
		}
		r2, err := Eval(rb, db)
		if err != nil {
			t.Fatalf("%T: eval rebuilt: %v", e, err)
		}
		if !r1.Equal(r2) {
			t.Fatalf("%T: rebuilt expression evaluates differently", e)
		}
	}
	// Leaves have no children and rebuild to themselves.
	if len(Children(scanR)) != 0 {
		t.Fatal("scan has children")
	}
}
