package expr

import (
	"whips/internal/relation"
)

// Optimize rewrites a view expression into an equivalent one that is
// cheaper to evaluate and, more importantly for a warehouse, cheaper to
// maintain incrementally:
//
//   - adjacent selections fuse into one conjunction;
//   - selections push below joins, unions and renames toward the base
//     relations they constrain (so irrelevant tuples die before join work);
//   - projections prune join inputs down to the columns actually needed
//     (sound under bag semantics: join counts are bilinear, and the
//     counting projection is a group-sum that distributes over them);
//   - identity projections disappear.
//
// The rewrite is semantics-preserving for Eval and for Delta (verified by
// equivalence property tests); expressions containing Const nodes are
// returned unchanged.
func Optimize(e Expr) Expr {
	return pruneProjects(pushSelections(e))
}

// ---------------------------------------------------------------- selections

// pushSelections recursively pushes Select nodes toward the leaves.
func pushSelections(e Expr) Expr {
	switch n := e.(type) {
	case *SelectExpr:
		child := pushSelections(n.child)
		return pushOnePred(child, n.pred)
	case *ProjectExpr:
		return &ProjectExpr{child: pushSelections(n.child), schema: n.schema, idx: n.idx}
	case *JoinExpr:
		l, r := pushSelections(n.left), pushSelections(n.right)
		return rebuiltJoin(n, l, r)
	case *UnionAllExpr:
		return &UnionAllExpr{left: pushSelections(n.left), right: pushSelections(n.right)}
	case *RenameExpr:
		return &RenameExpr{child: pushSelections(n.child), schema: n.schema, mapping: n.mapping}
	case *AggregateExpr:
		c := pushSelections(n.child)
		return &AggregateExpr{child: c, groupBy: n.groupBy, groupIdx: n.groupIdx, aggs: n.aggs, schema: n.schema}
	case *SetOpExpr:
		return &SetOpExpr{kind: n.kind, left: pushSelections(n.left), right: pushSelections(n.right)}
	default:
		return e
	}
}

// pushOnePred places σ_p as deep as it can go over child (already pushed).
func pushOnePred(child Expr, p Pred) Expr {
	switch n := child.(type) {
	case *SelectExpr:
		// Fuse: σ_p(σ_q(e)) = σ_{p∧q}(e), then retry pushing the fusion.
		return pushOnePred(n.child, And(n.pred, p))
	case *JoinExpr:
		if attrsIn(p, n.left.Schema()) {
			return rebuiltJoin(n, pushOnePred(n.left, p), n.right)
		}
		if attrsIn(p, n.right.Schema()) {
			return rebuiltJoin(n, n.left, pushOnePred(n.right, p))
		}
	case *UnionAllExpr:
		return &UnionAllExpr{left: pushOnePred(n.left, p), right: pushOnePred(n.right, p)}
	case *RenameExpr:
		if q, ok := renamePred(p, invert(n.mapping)); ok {
			return &RenameExpr{child: pushOnePred(n.child, q), schema: n.schema, mapping: n.mapping}
		}
	}
	// Cannot push further: leave the selection here.
	out, err := Select(child, p)
	if err != nil {
		// The predicate compiled against this schema before the rewrite;
		// failure here would be an optimizer bug, surfaced loudly.
		panic("expr: optimizer produced uncompilable selection: " + err.Error())
	}
	return out
}

// rebuiltJoin rebuilds a join with new children, recomputing its metadata
// (schemas are unchanged by selection pushdown, but this keeps one code
// path for the projection rewrite too).
func rebuiltJoin(_ *JoinExpr, l, r Expr) *JoinExpr {
	j, err := Join(l, r)
	if err != nil {
		panic("expr: optimizer broke a join: " + err.Error())
	}
	return j
}

// attrsIn reports whether every attribute of p exists in s.
func attrsIn(p Pred, s *relation.Schema) bool {
	for _, a := range p.Attrs() {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// renamePred rewrites a predicate's attribute references through inv
// (post-rename name → pre-rename name). It reports false for predicate
// kinds it does not know.
func renamePred(p Pred, inv map[string]string) (Pred, bool) {
	ren := func(a string) string {
		if to, ok := inv[a]; ok {
			return to
		}
		return a
	}
	switch q := p.(type) {
	case cmpConst:
		return cmpConst{attr: ren(q.attr), op: q.op, value: q.value}, true
	case cmpCols:
		return cmpCols{a: ren(q.a), b: ren(q.b), op: q.op}, true
	case andPred:
		out := make([]Pred, len(q.ps))
		for i, sub := range q.ps {
			r, ok := renamePred(sub, inv)
			if !ok {
				return nil, false
			}
			out[i] = r
		}
		return andPred{ps: out}, true
	case orPred:
		out := make([]Pred, len(q.ps))
		for i, sub := range q.ps {
			r, ok := renamePred(sub, inv)
			if !ok {
				return nil, false
			}
			out[i] = r
		}
		return orPred{ps: out}, true
	case notPred:
		r, ok := renamePred(q.p, inv)
		if !ok {
			return nil, false
		}
		return notPred{p: r}, true
	case truePred:
		return q, true
	default:
		return nil, false
	}
}

// ---------------------------------------------------------------- projections

// pruneProjects pushes column pruning below joins and removes identity
// projections.
func pruneProjects(e Expr) Expr {
	switch n := e.(type) {
	case *ProjectExpr:
		child := pruneProjects(n.child)
		child = pruneJoinInputs(child, n.schema.Names())
		out, err := Project(child, n.schema.Names()...)
		if err != nil {
			panic("expr: optimizer broke a projection: " + err.Error())
		}
		if identityProject(out) {
			return out.child
		}
		return out
	case *SelectExpr:
		child := pruneProjects(n.child)
		sel, err := Select(child, n.pred)
		if err != nil {
			panic("expr: optimizer broke a selection: " + err.Error())
		}
		return sel
	case *JoinExpr:
		return rebuiltJoin(n, pruneProjects(n.left), pruneProjects(n.right))
	case *UnionAllExpr:
		return &UnionAllExpr{left: pruneProjects(n.left), right: pruneProjects(n.right)}
	case *RenameExpr:
		return &RenameExpr{child: pruneProjects(n.child), schema: n.schema, mapping: n.mapping}
	case *AggregateExpr:
		c := pruneProjects(n.child)
		return &AggregateExpr{child: c, groupBy: n.groupBy, groupIdx: n.groupIdx, aggs: n.aggs, schema: n.schema}
	case *SetOpExpr:
		return &SetOpExpr{kind: n.kind, left: pruneProjects(n.left), right: pruneProjects(n.right)}
	default:
		return e
	}
}

// pruneJoinInputs narrows a join's children to needed ∪ join-key columns.
// Sound under bag semantics: the join count is bilinear and the counting
// projection group-sums each side independently.
func pruneJoinInputs(e Expr, needed []string) Expr {
	j, ok := e.(*JoinExpr)
	if !ok {
		return e
	}
	keep := map[string]bool{}
	for _, a := range needed {
		keep[a] = true
	}
	for _, a := range j.shared {
		keep[a] = true
	}
	narrow := func(side Expr) Expr {
		s := side.Schema()
		var cols []string
		for i := 0; i < s.Len(); i++ {
			if keep[s.Attr(i).Name] {
				cols = append(cols, s.Attr(i).Name)
			}
		}
		if len(cols) == s.Len() {
			return side // nothing to prune
		}
		p, err := Project(side, cols...)
		if err != nil {
			panic("expr: optimizer broke input pruning: " + err.Error())
		}
		return p
	}
	return rebuiltJoin(j, narrow(j.left), narrow(j.right))
}

// identityProject reports whether a projection keeps every column of its
// child in order.
func identityProject(p *ProjectExpr) bool {
	cs := p.child.Schema()
	if p.schema.Len() != cs.Len() {
		return false
	}
	for i := range p.idx {
		if p.idx[i] != i {
			return false
		}
	}
	return true
}
