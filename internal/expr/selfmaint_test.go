package expr

import (
	"math/rand"
	"strings"
	"testing"

	"whips/internal/relation"
)

var (
	smR = relation.MustSchema("A:int", "B:int")
	smS = relation.MustSchema("B:int", "C:int")
)

// smView is π_{A,C}(σ_{C>0}(R ⋈ S)) — a join whose auxiliaries should carry
// only the join key plus output columns, with the predicate pushed into the
// S-side auxiliary.
func smView() Expr {
	j := MustJoin(Scan("R", smR), Scan("S", smS))
	sel := MustSelect(j, Cmp("C", Gt, 0))
	return MustProject(sel, "A", "C")
}

func TestAnalyzeSelfMaintMinimalAux(t *testing.T) {
	p, err := AnalyzeSelfMaint(smView())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Aux) != 2 {
		t.Fatalf("aux count = %d, want 2 (one per occurrence)", len(p.Aux))
	}
	byBase := map[string]AuxRelation{}
	for _, a := range p.Aux {
		if !strings.Contains(a.Name, ":") {
			t.Errorf("aux name %q must contain ':' to avoid base-name collisions", a.Name)
		}
		byBase[a.Base] = a
	}
	// The R occurrence needs A (output) and B (join key) — here that is all
	// of R, but the aux must still cover exactly those columns.
	ra, ok := byBase["R"]
	if !ok {
		t.Fatal("no auxiliary derived from R")
	}
	if got := ra.Expr.Schema().Names(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("R aux columns = %v, want [A B]", got)
	}
	// The S occurrence needs B (join key) and C (output + predicate), and
	// Optimize must have pushed σ_{C>0} into the chain so the aux holds only
	// qualifying rows.
	sa, ok := byBase["S"]
	if !ok {
		t.Fatal("no auxiliary derived from S")
	}
	db := MapDB{
		"R": relation.FromTuples(smR, relation.T(1, 2)),
		"S": relation.FromTuples(smS, relation.T(2, 5), relation.T(2, -1)),
	}
	sr, err := Eval(sa.Expr, db)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cardinality() != 1 {
		t.Errorf("S aux holds %d rows, want 1 — σ_{C>0} not pushed into the auxiliary", sr.Cardinality())
	}
	// AuxFor returns the occurrence-ordered definitions.
	if got := p.AuxFor("S"); len(got) != 1 || got[0].Name != sa.Name {
		t.Errorf("AuxFor(S) = %v", got)
	}
	if got := p.AuxFor("nope"); got != nil {
		t.Errorf("AuxFor(unknown) = %v", got)
	}
}

// TestSelfMaintRewriteEvaluates proves the rewritten tree over auxiliary
// contents equals the original view over base contents.
func TestSelfMaintRewriteEvaluates(t *testing.T) {
	views := []Expr{
		smView(),
		MustJoin(Scan("R", smR), Scan("S", smS)),
		MustUnionAll(MustProject(Scan("R", smR), "B"), MustProject(Scan("S", smS), "B")),
		MustExcept(MustProject(Scan("R", smR), "B"), MustProject(Scan("S", smS), "B")),
		MustAggregate(MustJoin(Scan("R", smR), Scan("S", smS)), []string{"A"},
			[]AggSpec{{Op: Count, As: "n"}}),
		// Self-join: two occurrences of R.
		MustJoin(MustProject(Scan("R", smR), "A", "B"),
			MustRename(MustProject(Scan("R", smR), "A", "B"), map[string]string{"A": "B", "B": "C"})),
	}
	db := MapDB{
		"R": relation.FromTuples(smR, relation.T(1, 2), relation.T(3, 4), relation.T(2, 1)),
		"S": relation.FromTuples(smS, relation.T(2, 5), relation.T(4, 7), relation.T(2, -3)),
	}
	for i, v := range views {
		p, err := AnalyzeSelfMaint(v)
		if err != nil {
			t.Fatalf("view %d: %v", i, err)
		}
		auxDB := MapDB{}
		for _, a := range p.Aux {
			r, err := Eval(a.Expr, db)
			if err != nil {
				t.Fatalf("view %d: seeding %s: %v", i, a.Name, err)
			}
			auxDB[a.Name] = r
		}
		got, err := Eval(p.Rewritten, auxDB)
		if err != nil {
			t.Fatalf("view %d: rewritten eval: %v", i, err)
		}
		want, err := Eval(v, db)
		if err != nil {
			t.Fatalf("view %d: base eval: %v", i, err)
		}
		if !got.Equal(want) {
			t.Errorf("view %d: rewritten = %v, want %v", i, got, want)
		}
	}
}

// TestAuxWritesMatchBaseDeltas is the randomized property: for a stream of
// random base writes, delta-evaluating the rewritten tree over auxiliary
// state with AuxWrites must equal delta-evaluating the original view over
// base state, update for update — including on a self-join, where one base
// write fans out into sequential per-occurrence auxiliary writes.
func TestAuxWritesMatchBaseDeltas(t *testing.T) {
	views := []Expr{
		smView(),
		MustJoin(MustProject(Scan("R", smR), "A", "B"),
			MustRename(MustProject(Scan("R", smR), "A", "B"), map[string]string{"A": "B", "B": "C"})),
	}
	for vi, view := range views {
		rng := rand.New(rand.NewSource(int64(42 + vi)))
		p, err := AnalyzeSelfMaint(view)
		if err != nil {
			t.Fatal(err)
		}
		base := MapDB{"R": relation.New(smR), "S": relation.New(smS)}
		aux := MapDB{}
		for _, a := range p.Aux {
			r, err := Eval(a.Expr, base)
			if err != nil {
				t.Fatal(err)
			}
			aux[a.Name] = r
		}
		opt := Optimize(view)
		for step := 0; step < 200; step++ {
			w := randWrite(rng, base)
			wantDelta, err := DeltaWrites(opt, []Write{w}, base)
			if err != nil {
				t.Fatalf("view %d step %d: base delta: %v", vi, step, err)
			}
			aw, err := p.AuxWrites([]Write{w})
			if err != nil {
				t.Fatalf("view %d step %d: aux writes: %v", vi, step, err)
			}
			gotDelta, err := DeltaWrites(p.Rewritten, aw, aux)
			if err != nil {
				t.Fatalf("view %d step %d: aux delta: %v", vi, step, err)
			}
			if !gotDelta.Equal(wantDelta) {
				t.Fatalf("view %d step %d (%v): aux delta %v, want %v", vi, step, w, gotDelta, wantDelta)
			}
			// Advance both worlds.
			if err := base[w.Relation].Apply(w.Delta); err != nil {
				t.Fatal(err)
			}
			for _, x := range aw {
				if err := aux[x.Relation].Apply(x.Delta); err != nil {
					t.Fatalf("view %d step %d: aux apply: %v", vi, step, err)
				}
			}
		}
	}
}

// randWrite produces an insert always applicable, or a delete of an
// existing tuple when one exists.
func randWrite(rng *rand.Rand, db MapDB) Write {
	rel := "R"
	sch := smR
	if rng.Intn(2) == 1 {
		rel = "S"
		sch = smS
	}
	cur := db[rel]
	if cur.Cardinality() > 0 && rng.Intn(3) == 0 {
		var tuples []relation.Tuple
		cur.Each(func(tu relation.Tuple, n int64) bool {
			tuples = append(tuples, tu)
			return true
		})
		return Write{Relation: rel, Delta: relation.DeleteDelta(sch, tuples[rng.Intn(len(tuples))])}
	}
	return Write{Relation: rel, Delta: relation.InsertDelta(sch,
		relation.T(rng.Intn(5)-1, rng.Intn(5)-1))}
}

func TestAnalyzeSelfMaintNoBase(t *testing.T) {
	c := NewConst(smR, relation.InsertDelta(smR, relation.T(1, 1)))
	if _, err := AnalyzeSelfMaint(c); err == nil {
		t.Error("a constant view has nothing to maintain; analysis must refuse")
	}
}
