package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whips/internal/relation"
)

// checkDelta verifies the fundamental incremental-maintenance identity:
// Eval(e, db+δ) == Eval(e, db) + Delta(e, base, δ, db).
func checkDelta(t *testing.T, e Expr, db MapDB, base string, d *relation.Delta) {
	t.Helper()
	pre, err := Eval(e, db)
	if err != nil {
		t.Fatalf("Eval pre: %v", err)
	}
	vd, err := Delta(e, base, d, db)
	if err != nil {
		t.Fatalf("Delta: %v", err)
	}
	incr := pre.Clone()
	if err := incr.Apply(vd); err != nil {
		t.Fatalf("applying view delta: %v", err)
	}
	post := MapDB{}
	for k, v := range db {
		post[k] = v.Clone()
	}
	if err := post[base].Apply(d); err != nil {
		t.Fatalf("applying base delta: %v", err)
	}
	recomputed, err := Eval(e, post)
	if err != nil {
		t.Fatalf("Eval post: %v", err)
	}
	if !incr.Equal(recomputed) {
		t.Errorf("incremental %v != recomputed %v for %s with δ%s on %s", incr, recomputed, e, d, base)
	}
}

func TestDeltaPaperExample1(t *testing.T) {
	// The paper's motivating update: insert [2 3] into S at t1.
	db := MapDB{
		"R": relation.FromTuples(rSchema, relation.T(1, 2)),
		"S": relation.New(sSchema),
		"T": relation.FromTuples(tSchema, relation.T(3, 4)),
	}
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	v2 := MustJoin(Scan("S", sSchema), Scan("T", tSchema))
	ins := relation.InsertDelta(sSchema, relation.T(2, 3))

	d1, err := Delta(v1, "S", ins, db)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Count(relation.T(1, 2, 3)) != 1 || d1.Distinct() != 1 {
		t.Errorf("ΔV1 = %v, want {+[1 2 3]}", d1)
	}
	d2, err := Delta(v2, "S", ins, db)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Count(relation.T(2, 3, 4)) != 1 || d2.Distinct() != 1 {
		t.Errorf("ΔV2 = %v, want {+[2 3 4]}", d2)
	}
	checkDelta(t, v1, db, "S", ins)
	checkDelta(t, v2, db, "S", ins)
}

func TestDeltaDelete(t *testing.T) {
	db := paperDB()
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	del := relation.DeleteDelta(sSchema, relation.T(2, 3))
	d, err := Delta(v1, "S", del, db)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count(relation.T(1, 2, 3)) != -1 {
		t.Errorf("delete delta = %v", d)
	}
	checkDelta(t, v1, db, "S", del)
}

func TestDeltaModify(t *testing.T) {
	db := paperDB()
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	mod := relation.ModifyDelta(sSchema, relation.T(2, 3), relation.T(2, 9))
	checkDelta(t, v1, db, "S", mod)
}

func TestDeltaIrrelevantBase(t *testing.T) {
	db := paperDB()
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	d, err := Delta(v1, "T", relation.InsertDelta(tSchema, relation.T(9, 9)), db)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("delta on unreferenced base = %v", d)
	}
	if d2, err := Delta(v1, "S", relation.NewDelta(sSchema), db); err != nil || !d2.Empty() {
		t.Errorf("empty base delta should give empty view delta: %v, %v", d2, err)
	}
}

func TestDeltaSelfJoin(t *testing.T) {
	// V = R ⋈ π_{B→?}... simplest self-join: R(A,B) ⋈ R'(B,C) is not
	// expressible without renaming, so use R ⋈ R (same schema: every tuple
	// joins with itself on both attributes).
	db := MapDB{"R": relation.FromTuples(rSchema, relation.T(1, 2))}
	v := MustJoin(Scan("R", rSchema), Scan("R", rSchema))
	checkDelta(t, v, db, "R", relation.InsertDelta(rSchema, relation.T(3, 4)))
	checkDelta(t, v, db, "R", relation.DeleteDelta(rSchema, relation.T(1, 2)))
	// Mixed insert+delete in one delta.
	mixed := relation.NewDelta(rSchema)
	mixed.Add(relation.T(1, 2), -1)
	mixed.Add(relation.T(5, 6), 1)
	mixed.Add(relation.T(7, 8), 2)
	checkDelta(t, v, db, "R", mixed)
}

func TestDeltaThroughSelectProject(t *testing.T) {
	db := MapDB{"R": relation.FromTuples(rSchema,
		relation.T(1, 10), relation.T(2, 10), relation.T(3, 20))}
	v := MustProject(MustSelect(Scan("R", rSchema), Cmp("B", Le, 10)), "B")
	// Delete one contributor of the collapsed group: count must drop 2→1,
	// which only the counting algorithm gets right.
	del := relation.DeleteDelta(rSchema, relation.T(1, 10))
	d, err := Delta(v, "R", del, db)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count(relation.T(10)) != -1 {
		t.Errorf("counting delta = %v", d)
	}
	checkDelta(t, v, db, "R", del)
}

func TestDeltaWritesMultiWriteTxn(t *testing.T) {
	// §6.2: one transaction updates both R and S; the view delta must be the
	// composition, each write evaluated at the state its predecessors left.
	db := paperDB()
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	writes := []Write{
		{Relation: "R", Delta: relation.InsertDelta(rSchema, relation.T(5, 6))},
		{Relation: "S", Delta: relation.InsertDelta(sSchema, relation.T(6, 7))},
	}
	total, err := DeltaWrites(v1, writes, db)
	if err != nil {
		t.Fatal(err)
	}
	pre := mustEval(t, v1, db)
	incr := pre.Clone()
	if err := incr.Apply(total); err != nil {
		t.Fatal(err)
	}
	post := MapDB{}
	for k, r := range db {
		post[k] = r.Clone()
	}
	for _, w := range writes {
		if err := post[w.Relation].Apply(w.Delta); err != nil {
			t.Fatal(err)
		}
	}
	want := mustEval(t, v1, post)
	if !incr.Equal(want) {
		t.Errorf("multi-write delta: %v, want %v", incr, want)
	}
	// The new R tuple joins the new S tuple: [5 6 7] must be in the delta.
	if total.Count(relation.T(5, 6, 7)) != 1 {
		t.Errorf("cross-write join missing: %v", total)
	}
}

func TestDeltaWritesSameRelationTwice(t *testing.T) {
	db := paperDB()
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	writes := []Write{
		{Relation: "S", Delta: relation.InsertDelta(sSchema, relation.T(2, 99))},
		{Relation: "S", Delta: relation.DeleteDelta(sSchema, relation.T(2, 99))},
	}
	total, err := DeltaWrites(v1, writes, db)
	if err != nil {
		t.Fatal(err)
	}
	if !total.Empty() {
		t.Errorf("insert-then-delete should cancel, got %v", total)
	}
}

func TestSubstituteDeltaExpression(t *testing.T) {
	// For a base occurring once, Eval(Substitute(e, base, δ)) at the
	// pre-state equals Delta(e, base, δ) at the pre-state.
	db := paperDB()
	v1 := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	d := relation.InsertDelta(sSchema, relation.T(2, 50))
	sub := Substitute(v1, "S", d)
	got, err := EvalSigned(sub, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Delta(v1, "S", d, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("substituted eval %v != delta %v", got, want)
	}
	// Substitution must not touch other scans.
	if len(sub.BaseRelations()) != 1 || sub.BaseRelations()[0] != "R" {
		t.Errorf("substituted bases = %v", sub.BaseRelations())
	}
}

func TestSubstituteDeepTree(t *testing.T) {
	db := paperDB()
	v := MustSelect(
		MustProject(JoinAll(Scan("R", rSchema), Scan("S", sSchema), Scan("T", tSchema)), "A", "C", "D"),
		Cmp("A", Ge, 0))
	d := relation.InsertDelta(sSchema, relation.T(2, 3))
	sub := Substitute(v, "S", d)
	got, err := EvalSigned(sub, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Delta(v, "S", d, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("deep substitute %v != %v", got, want)
	}
}

func TestOverlayDB(t *testing.T) {
	db := paperDB()
	o := &OverlayDB{Base: db, Deltas: map[string]*relation.Delta{
		"S": relation.InsertDelta(sSchema, relation.T(7, 7)),
	}}
	s1, err := o.Relation("S")
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Contains(relation.T(7, 7)) || !s1.Contains(relation.T(2, 3)) {
		t.Errorf("overlay S = %v", s1)
	}
	// Cached: same pointer on second access.
	s2, _ := o.Relation("S")
	if s1 != s2 {
		t.Error("overlay should cache materialized relations")
	}
	// Untouched relation passes through.
	r, _ := o.Relation("R")
	if r != db["R"] {
		t.Error("overlay must pass through relations without deltas")
	}
	// Base relation unchanged.
	if db["S"].Contains(relation.T(7, 7)) {
		t.Error("overlay mutated the base relation")
	}
	// Invalid overlay (over-delete) surfaces an error.
	bad := &OverlayDB{Base: db, Deltas: map[string]*relation.Delta{
		"S": relation.DeleteDelta(sSchema, relation.T(9, 9)),
	}}
	if _, err := bad.Relation("S"); err == nil {
		t.Error("invalid overlay should fail")
	}
}

// randExpr builds a random SPJ view over R, S, T.
func randExpr(rng *rand.Rand) Expr {
	var e Expr
	switch rng.Intn(4) {
	case 0:
		e = MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	case 1:
		e = MustJoin(Scan("S", sSchema), Scan("T", tSchema))
	case 2:
		e = JoinAll(Scan("R", rSchema), Scan("S", sSchema), Scan("T", tSchema))
	default:
		e = Scan("S", sSchema)
	}
	if rng.Intn(2) == 0 {
		e = MustSelect(e, Cmp("B", Le, int64(rng.Intn(6))))
	}
	if rng.Intn(2) == 0 {
		names := e.Schema().Names()
		e = MustProject(e, names[:1+rng.Intn(len(names))]...)
	}
	return e
}

func randDB(rng *rand.Rand) MapDB {
	mk := func(s *relation.Schema) *relation.Relation {
		r := relation.New(s)
		for i := 0; i < rng.Intn(8); i++ {
			_ = r.Insert(relation.T(rng.Intn(5), rng.Intn(5)), int64(1+rng.Intn(2)))
		}
		return r
	}
	return MapDB{"R": mk(rSchema), "S": mk(sSchema), "T": mk(tSchema)}
}

// Property: for random views, random databases and random single-relation
// updates, incremental maintenance equals recomputation.
func TestDeltaEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randDB(rng)
		e := randExpr(rng)
		bases := []string{"R", "S", "T"}
		base := bases[rng.Intn(len(bases))]
		sch := map[string]*relation.Schema{"R": rSchema, "S": sSchema, "T": tSchema}[base]
		d := relation.NewDelta(sch)
		for i := 0; i < 1+rng.Intn(4); i++ {
			tu := relation.T(rng.Intn(5), rng.Intn(5))
			if rng.Intn(2) == 0 {
				d.Add(tu, -1)
			} else {
				d.Add(tu, 1)
			}
		}
		// Make the delta legal against the base.
		legal := relation.NewDelta(sch)
		d.Each(func(tu relation.Tuple, n int64) bool {
			if n < 0 && db[base].Count(tu)+n < 0 {
				return true // drop illegal over-delete
			}
			legal.Add(tu, n)
			return true
		})

		pre, err := Eval(e, db)
		if err != nil {
			return false
		}
		vd, err := Delta(e, base, legal, db)
		if err != nil {
			return false
		}
		incr := pre.Clone()
		if err := incr.Apply(vd); err != nil {
			return false
		}
		if err := db[base].Apply(legal); err != nil {
			return false
		}
		re, err := Eval(e, db)
		if err != nil {
			return false
		}
		return incr.Equal(re)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
