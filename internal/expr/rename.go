package expr

import (
	"fmt"
	"sort"
	"strings"

	"whips/internal/relation"
)

// RenameExpr is ρ: it renames attributes of its child without touching the
// tuples. Because the natural join matches on attribute names, renaming is
// what makes meaningful self-joins expressible — e.g. joining an employee
// relation with itself along the manager edge.
type RenameExpr struct {
	child   Expr
	schema  *relation.Schema
	mapping map[string]string
}

// Rename returns ρ_mapping(child): every attribute named as a key of
// mapping is renamed to its value; others keep their names. Renames that
// would collide are rejected.
func Rename(child Expr, mapping map[string]string) (*RenameExpr, error) {
	cs := child.Schema()
	attrs := cs.Attrs()
	for from := range mapping {
		if !cs.Has(from) {
			return nil, fmt.Errorf("expr: rename of missing attribute %q in %s", from, cs)
		}
	}
	for i := range attrs {
		if to, ok := mapping[attrs[i].Name]; ok {
			attrs[i].Name = to
		}
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if seen[a.Name] {
			return nil, fmt.Errorf("expr: rename collides on attribute %q", a.Name)
		}
		seen[a.Name] = true
	}
	m := make(map[string]string, len(mapping))
	for k, v := range mapping {
		m[k] = v
	}
	return &RenameExpr{child: child, schema: relation.NewSchema(attrs...), mapping: m}, nil
}

// MustRename is Rename that panics on error.
func MustRename(child Expr, mapping map[string]string) *RenameExpr {
	r, err := Rename(child, mapping)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema implements Expr.
func (r *RenameExpr) Schema() *relation.Schema { return r.schema }

// BaseRelations implements Expr.
func (r *RenameExpr) BaseRelations() []string { return r.child.BaseRelations() }

// String implements Expr.
func (r *RenameExpr) String() string {
	pairs := make([]string, 0, len(r.mapping))
	for from, to := range r.mapping {
		pairs = append(pairs, from+"→"+to)
	}
	sort.Strings(pairs)
	return fmt.Sprintf("rename[%s](%s)", strings.Join(pairs, ","), r.child)
}

// reschema re-labels a signed bag under the renamed schema. Tuples are
// positionally unchanged and shared, not copied.
func (r *RenameExpr) reschema(in *relation.Delta) *relation.Delta {
	out := relation.NewDelta(r.schema)
	in.Each(func(t relation.Tuple, n int64) bool {
		out.Add(t, n)
		return true
	})
	return out
}

func (r *RenameExpr) evalSigned(db Database) (*relation.Delta, error) {
	in, err := r.child.evalSigned(db)
	if err != nil {
		return nil, err
	}
	return r.reschema(in), nil
}

func (r *RenameExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	in, err := r.child.deltaSigned(base, d, db)
	if err != nil {
		return nil, err
	}
	return r.reschema(in), nil
}
