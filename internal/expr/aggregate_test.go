package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whips/internal/relation"
)

var salesSchema = relation.MustSchema("Region:string", "Amount:int", "Price:float")

func salesDB() MapDB {
	return MapDB{"Sales": relation.FromTuples(salesSchema,
		relation.T("east", 10, 1.5),
		relation.T("east", 20, 2.5),
		relation.T("west", 5, 4.0),
	)}
}

func sumView() *AggregateExpr {
	return MustAggregate(Scan("Sales", salesSchema), []string{"Region"}, []AggSpec{
		{Op: Count, As: "N"},
		{Op: Sum, Attr: "Amount", As: "Total"},
		{Op: Min, Attr: "Amount", As: "Lo"},
		{Op: Max, Attr: "Amount", As: "Hi"},
		{Op: Avg, Attr: "Price", As: "AvgP"},
	})
}

func TestAggregateEval(t *testing.T) {
	v := sumView()
	got := mustEval(t, v, salesDB())
	if got.Cardinality() != 2 {
		t.Fatalf("groups = %d, want 2: %v", got.Cardinality(), got)
	}
	east := relation.T("east", 2, 30, 10, 20, 2.0)
	west := relation.T("west", 1, 5, 5, 5, 4.0)
	if !got.Contains(east) || !got.Contains(west) {
		t.Errorf("aggregate = %v", got)
	}
	if v.Schema().String() != "(Region:string, N:int, Total:int, Lo:int, Hi:int, AvgP:float)" {
		t.Errorf("schema = %s", v.Schema())
	}
}

func TestAggregateDeltaInsertNewGroup(t *testing.T) {
	v := sumView()
	db := salesDB()
	d, err := Delta(v, "Sales", relation.InsertDelta(salesSchema, relation.T("north", 7, 1.0)), db)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count(relation.T("north", 1, 7, 7, 7, 1.0)) != 1 || d.Distinct() != 1 {
		t.Errorf("new-group delta = %v", d)
	}
}

func TestAggregateDeltaModifyGroup(t *testing.T) {
	v := sumView()
	db := salesDB()
	d, err := Delta(v, "Sales", relation.InsertDelta(salesSchema, relation.T("east", 1, 3.5)), db)
	if err != nil {
		t.Fatal(err)
	}
	// Old east row deleted, new east row inserted; west untouched.
	if d.Count(relation.T("east", 2, 30, 10, 20, 2.0)) != -1 {
		t.Errorf("old group row not deleted: %v", d)
	}
	if d.Count(relation.T("east", 3, 31, 1, 20, 2.5)) != 1 {
		t.Errorf("new group row not inserted: %v", d)
	}
	if d.Distinct() != 2 {
		t.Errorf("delta touched extra groups: %v", d)
	}
}

func TestAggregateDeltaMinMaxDeletion(t *testing.T) {
	// Deleting the current minimum forces recomputing the group — the case
	// accumulator-based maintenance gets wrong.
	v := sumView()
	db := salesDB()
	del := relation.DeleteDelta(salesSchema, relation.T("east", 10, 1.5))
	d, err := Delta(v, "Sales", del, db)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count(relation.T("east", 1, 20, 20, 20, 2.5)) != 1 {
		t.Errorf("min recomputation wrong: %v", d)
	}
}

func TestAggregateDeltaGroupDisappears(t *testing.T) {
	v := sumView()
	db := salesDB()
	del := relation.DeleteDelta(salesSchema, relation.T("west", 5, 4.0))
	d, err := Delta(v, "Sales", del, db)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count(relation.T("west", 1, 5, 5, 5, 4.0)) != -1 || d.Distinct() != 1 {
		t.Errorf("group-disappears delta = %v", d)
	}
}

func TestAggregateConstructionErrors(t *testing.T) {
	s := Scan("Sales", salesSchema)
	if _, err := Aggregate(s, []string{"Nope"}, nil); err == nil {
		t.Error("missing group-by attribute should fail")
	}
	if _, err := Aggregate(s, []string{"Region"}, []AggSpec{{Op: Sum, Attr: "Region", As: "X"}}); err == nil {
		t.Error("sum over string should fail")
	}
	if _, err := Aggregate(s, []string{"Region"}, []AggSpec{{Op: Sum, Attr: "Zed", As: "X"}}); err == nil {
		t.Error("sum over missing attribute should fail")
	}
	if _, err := Aggregate(s, []string{"Region"}, []AggSpec{{Op: Count}}); err == nil {
		t.Error("unnamed aggregate column should fail")
	}
	if _, err := Aggregate(s, []string{"Region"}, []AggSpec{{Op: Avg, Attr: "Region", As: "X"}}); err == nil {
		t.Error("avg over string should fail")
	}
}

// Property: aggregate incremental maintenance equals recomputation.
func TestAggregateDeltaProperty(t *testing.T) {
	regions := []string{"e", "w", "n"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := MapDB{"Sales": relation.New(salesSchema)}
		for i := 0; i < 3+rng.Intn(8); i++ {
			_ = db["Sales"].Insert(relation.T(regions[rng.Intn(3)], rng.Intn(5), 1.0), 1)
		}
		v := MustAggregate(Scan("Sales", salesSchema), []string{"Region"}, []AggSpec{
			{Op: Count, As: "N"},
			{Op: Sum, Attr: "Amount", As: "S"},
			{Op: Min, Attr: "Amount", As: "Lo"},
			{Op: Max, Attr: "Amount", As: "Hi"},
		})
		d := relation.NewDelta(salesSchema)
		for i := 0; i < 1+rng.Intn(3); i++ {
			tu := relation.T(regions[rng.Intn(3)], rng.Intn(5), 1.0)
			if rng.Intn(2) == 0 && db["Sales"].Count(tu)+d.Count(tu) > 0 {
				d.Add(tu, -1)
			} else {
				d.Add(tu, 1)
			}
		}
		pre, err := Eval(v, db)
		if err != nil {
			return false
		}
		vd, err := Delta(v, "Sales", d, db)
		if err != nil {
			return false
		}
		incr := pre.Clone()
		if err := incr.Apply(vd); err != nil {
			return false
		}
		if err := db["Sales"].Apply(d); err != nil {
			return false
		}
		re, err := Eval(v, db)
		if err != nil {
			return false
		}
		return incr.Equal(re)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAggregateOverNegativeBagFails(t *testing.T) {
	neg := relation.DeleteDelta(salesSchema, relation.T("e", 1, 1.0))
	v := MustAggregate(NewConst(salesSchema, neg), nil, []AggSpec{{Op: Count, As: "N"}})
	if _, err := Eval(v, MapDB{}); err == nil {
		t.Error("aggregating a negative bag should fail")
	}
}

func TestAggregateNoGroupBy(t *testing.T) {
	// Global aggregate: single group with empty key.
	v := MustAggregate(Scan("Sales", salesSchema), nil, []AggSpec{
		{Op: Count, As: "N"},
		{Op: Sum, Attr: "Amount", As: "S"},
	})
	got := mustEval(t, v, salesDB())
	if !got.Contains(relation.T(3, 35)) || got.Cardinality() != 1 {
		t.Errorf("global aggregate = %v", got)
	}
}
