package expr

import (
	"fmt"
	"strings"

	"whips/internal/relation"
)

// AggOp enumerates aggregate functions.
type AggOp uint8

// Supported aggregates.
const (
	Count AggOp = iota
	Sum
	Min
	Max
	Avg
)

// String returns the lowercase name of the aggregate.
func (op AggOp) String() string {
	switch op {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", uint8(op))
}

// AggSpec is one aggregate output column: Op over Attr, named As. Count
// ignores Attr.
type AggSpec struct {
	Op   AggOp
	Attr string
	As   string
}

// AggregateExpr groups its child by a key and computes aggregates per
// group. Output schema: group-by attributes followed by aggregate columns.
//
// The delta rule re-evaluates only the affected groups (the group keys
// present in the child delta) against the pre- and post-states and emits
// modify deltas. This handles Min/Max deletions correctly, which a purely
// incremental accumulator cannot.
type AggregateExpr struct {
	child    Expr
	groupBy  []string
	groupIdx []int
	aggs     []AggSpec
	schema   *relation.Schema
}

// Aggregate returns γ_groupBy,aggs(child).
func Aggregate(child Expr, groupBy []string, aggs []AggSpec) (*AggregateExpr, error) {
	cs := child.Schema()
	keySchema, idx, err := cs.Project(groupBy...)
	if err != nil {
		return nil, err
	}
	attrs := keySchema.Attrs()
	for _, a := range aggs {
		if a.As == "" {
			return nil, fmt.Errorf("expr: aggregate column needs a name (As)")
		}
		var t relation.Type
		switch a.Op {
		case Count:
			t = relation.Int
		case Avg:
			t = relation.Float
		case Sum, Min, Max:
			i, ok := cs.Index(a.Attr)
			if !ok {
				return nil, fmt.Errorf("expr: aggregate over missing attribute %q", a.Attr)
			}
			at := cs.Attr(i).Type
			if a.Op == Sum && at != relation.Int && at != relation.Float {
				return nil, fmt.Errorf("expr: sum over non-numeric attribute %q", a.Attr)
			}
			t = at
		default:
			return nil, fmt.Errorf("expr: unknown aggregate op %v", a.Op)
		}
		attrs = append(attrs, relation.Attr{Name: a.As, Type: t})
	}
	for _, a := range aggs {
		if a.Op == Avg || a.Op == Min || a.Op == Max {
			if i, ok := cs.Index(a.Attr); !ok {
				return nil, fmt.Errorf("expr: aggregate over missing attribute %q", a.Attr)
			} else if a.Op == Avg {
				at := cs.Attr(i).Type
				if at != relation.Int && at != relation.Float {
					return nil, fmt.Errorf("expr: avg over non-numeric attribute %q", a.Attr)
				}
			}
		}
	}
	return &AggregateExpr{
		child:    child,
		groupBy:  append([]string(nil), groupBy...),
		groupIdx: idx,
		aggs:     append([]AggSpec(nil), aggs...),
		schema:   relation.NewSchema(attrs...),
	}, nil
}

// MustAggregate is Aggregate that panics on error.
func MustAggregate(child Expr, groupBy []string, aggs []AggSpec) *AggregateExpr {
	a, err := Aggregate(child, groupBy, aggs)
	if err != nil {
		panic(err)
	}
	return a
}

// Schema implements Expr.
func (a *AggregateExpr) Schema() *relation.Schema { return a.schema }

// BaseRelations implements Expr.
func (a *AggregateExpr) BaseRelations() []string { return a.child.BaseRelations() }

// String implements Expr.
func (a *AggregateExpr) String() string {
	parts := make([]string, len(a.aggs))
	for i, s := range a.aggs {
		if s.Op == Count {
			parts[i] = fmt.Sprintf("count as %s", s.As)
		} else {
			parts[i] = fmt.Sprintf("%s(%s) as %s", s.Op, s.Attr, s.As)
		}
	}
	return fmt.Sprintf("agg[%s; %s](%s)", strings.Join(a.groupBy, ","), strings.Join(parts, ","), a.child)
}

// groupAgg aggregates a non-negative bag into one output tuple per group.
func (a *AggregateExpr) groupAgg(in *relation.Delta) (*relation.Delta, error) {
	type acc struct {
		key   relation.Tuple
		count int64
		sumI  []int64
		sumF  []float64
		min   []relation.Value
		max   []relation.Value
		seen  bool
	}
	groups := make(map[string]*acc)
	cs := a.child.Schema()
	attrIdx := make([]int, len(a.aggs))
	for i, s := range a.aggs {
		if s.Op != Count {
			j, _ := cs.Index(s.Attr)
			attrIdx[i] = j
		}
	}
	var bad error
	in.Each(func(t relation.Tuple, n int64) bool {
		if n < 0 {
			bad = fmt.Errorf("expr: aggregate over negative multiplicity %d of %v", n, t)
			return false
		}
		key := t.Project(a.groupIdx)
		k := key.Key()
		g := groups[k]
		if g == nil {
			g = &acc{
				key:  key,
				sumI: make([]int64, len(a.aggs)),
				sumF: make([]float64, len(a.aggs)),
				min:  make([]relation.Value, len(a.aggs)),
				max:  make([]relation.Value, len(a.aggs)),
			}
			groups[k] = g
		}
		g.count += n
		for i, s := range a.aggs {
			if s.Op == Count {
				continue
			}
			v := t[attrIdx[i]]
			switch s.Op {
			case Sum, Avg:
				if v.Kind() == relation.Int {
					g.sumI[i] += n * v.Int()
					g.sumF[i] += float64(n) * float64(v.Int())
				} else {
					g.sumF[i] += float64(n) * v.Float()
				}
			case Min:
				if !g.seen || v.Compare(g.min[i]) < 0 {
					g.min[i] = v
				}
			case Max:
				if !g.seen || v.Compare(g.max[i]) > 0 {
					g.max[i] = v
				}
			}
		}
		g.seen = true
		return true
	})
	if bad != nil {
		return nil, bad
	}
	out := relation.NewDelta(a.schema)
	for _, g := range groups {
		row := g.key.Clone()
		for i, s := range a.aggs {
			switch s.Op {
			case Count:
				row = append(row, relation.IntVal(g.count))
			case Sum:
				j := attrIdx[i]
				if cs.Attr(j).Type == relation.Int {
					row = append(row, relation.IntVal(g.sumI[i]))
				} else {
					row = append(row, relation.FloatVal(g.sumF[i]))
				}
			case Avg:
				row = append(row, relation.FloatVal(g.sumF[i]/float64(g.count)))
			case Min:
				row = append(row, g.min[i])
			case Max:
				row = append(row, g.max[i])
			}
		}
		out.Add(row, 1)
	}
	return out, nil
}

func (a *AggregateExpr) evalSigned(db Database) (*relation.Delta, error) {
	in, err := a.child.evalSigned(db)
	if err != nil {
		return nil, err
	}
	return a.groupAgg(in)
}

func (a *AggregateExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	childDelta, err := a.child.deltaSigned(base, d, db)
	if err != nil {
		return nil, err
	}
	out := relation.NewDelta(a.schema)
	if childDelta.Empty() {
		return out, nil
	}
	// Groups whose contents change.
	affected := make(map[string]bool)
	childDelta.Each(func(t relation.Tuple, _ int64) bool {
		affected[t.Project(a.groupIdx).Key()] = true
		return true
	})
	pre, err := a.child.evalSigned(db)
	if err != nil {
		return nil, err
	}
	post := pre.Clone()
	if err := post.Merge(childDelta); err != nil {
		return nil, err
	}
	restrict := func(in *relation.Delta) *relation.Delta {
		r := relation.NewDelta(a.child.Schema())
		in.Each(func(t relation.Tuple, n int64) bool {
			if affected[t.Project(a.groupIdx).Key()] {
				r.Add(t, n)
			}
			return true
		})
		return r
	}
	oldAgg, err := a.groupAgg(restrict(pre))
	if err != nil {
		return nil, err
	}
	newAgg, err := a.groupAgg(restrict(post))
	if err != nil {
		return nil, err
	}
	if err := out.Merge(newAgg); err != nil {
		return nil, err
	}
	if err := out.Merge(oldAgg.Negate()); err != nil {
		return nil, err
	}
	return out, nil
}
