package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"whips/internal/relation"
)

func TestExceptEval(t *testing.T) {
	db := MapDB{
		"R1": relation.New(rSchema),
		"R2": relation.New(rSchema),
	}
	_ = db["R1"].Insert(relation.T(1, 1), 3)
	_ = db["R1"].Insert(relation.T(2, 2), 1)
	_ = db["R2"].Insert(relation.T(1, 1), 1)
	_ = db["R2"].Insert(relation.T(3, 3), 5)
	e := MustExcept(Scan("R1", rSchema), Scan("R2", rSchema))
	got := mustEval(t, e, db)
	// max(0, 3−1)=2 copies of [1 1]; [2 2] survives; [3 3] never appears.
	if got.Count(relation.T(1, 1)) != 2 || got.Count(relation.T(2, 2)) != 1 || got.Contains(relation.T(3, 3)) {
		t.Errorf("except = %v", got)
	}
	if !strings.Contains(e.String(), "except") {
		t.Errorf("String = %q", e.String())
	}
}

func TestIntersectEval(t *testing.T) {
	db := MapDB{
		"R1": relation.New(rSchema),
		"R2": relation.New(rSchema),
	}
	_ = db["R1"].Insert(relation.T(1, 1), 3)
	_ = db["R1"].Insert(relation.T(2, 2), 1)
	_ = db["R2"].Insert(relation.T(1, 1), 2)
	e := MustIntersect(Scan("R1", rSchema), Scan("R2", rSchema))
	got := mustEval(t, e, db)
	if got.Count(relation.T(1, 1)) != 2 || got.Contains(relation.T(2, 2)) {
		t.Errorf("intersect = %v", got)
	}
	if !strings.Contains(e.String(), "intersect") {
		t.Errorf("String = %q", e.String())
	}
}

func TestSetOpErrorsAndMeta(t *testing.T) {
	if _, err := Except(Scan("R", rSchema), Scan("S", sSchema)); err == nil {
		t.Error("mismatched except schemas must fail")
	}
	if _, err := Intersect(Scan("R", rSchema), Scan("S", sSchema)); err == nil {
		t.Error("mismatched intersect schemas must fail")
	}
	e := MustExcept(Scan("R1", rSchema), Scan("R2", rSchema))
	if got := e.BaseRelations(); len(got) != 2 {
		t.Errorf("bases = %v", got)
	}
	// Errors propagate from both children.
	if _, err := Eval(e, MapDB{}); err == nil {
		t.Error("missing relations must fail")
	}
	d := relation.InsertDelta(rSchema, relation.T(1, 1))
	if _, err := Delta(e, "R1", d, MapDB{}); err == nil {
		t.Error("delta over missing relations must fail")
	}
}

// Property: incremental maintenance of except/intersect equals
// recomputation, for random updates hitting either side (or a shared base
// via self-reference).
func TestSetOpDeltaProperty(t *testing.T) {
	f := func(seed int64, intersect bool) bool {
		rng := rand.New(rand.NewSource(seed))
		db := MapDB{"R1": relation.New(rSchema), "R2": relation.New(rSchema)}
		for i := 0; i < 10; i++ {
			_ = db["R1"].Insert(relation.T(rng.Intn(3), rng.Intn(3)), int64(1+rng.Intn(2)))
			_ = db["R2"].Insert(relation.T(rng.Intn(3), rng.Intn(3)), int64(1+rng.Intn(2)))
		}
		var e Expr
		if intersect {
			e = MustIntersect(Scan("R1", rSchema), Scan("R2", rSchema))
		} else {
			e = MustExcept(Scan("R1", rSchema), Scan("R2", rSchema))
		}
		base := "R1"
		if rng.Intn(2) == 0 {
			base = "R2"
		}
		d := relation.NewDelta(rSchema)
		for i := 0; i < 1+rng.Intn(3); i++ {
			tu := relation.T(rng.Intn(3), rng.Intn(3))
			if rng.Intn(2) == 0 && db[base].Count(tu)+d.Count(tu) > 0 {
				d.Add(tu, -1)
			} else {
				d.Add(tu, 1)
			}
		}
		pre, err := Eval(e, db)
		if err != nil {
			return false
		}
		vd, err := Delta(e, base, d, db)
		if err != nil {
			return false
		}
		incr := pre.Clone()
		if err := incr.Apply(vd); err != nil {
			t.Logf("seed %d: apply failed: %v (delta %v)", seed, err, vd)
			return false
		}
		if err := db[base].Apply(d); err != nil {
			return false
		}
		re, err := Eval(e, db)
		if err != nil {
			return false
		}
		if !incr.Equal(re) {
			t.Logf("seed %d: %v vs %v", seed, incr, re)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Except over a shared base on both sides (e.g. current minus a filtered
// copy of itself): both child deltas fire from one update.
func TestSetOpSharedBaseDelta(t *testing.T) {
	db := MapDB{"R": relation.FromTuples(rSchema, relation.T(1, 1), relation.T(2, 9))}
	// Rows of R that do NOT satisfy B<5: R − σ_{B<5}(R).
	e := MustExcept(Scan("R", rSchema), MustSelect(Scan("R", rSchema), Cmp("B", Lt, 5)))
	got := mustEval(t, e, db)
	if !got.Contains(relation.T(2, 9)) || got.Contains(relation.T(1, 1)) {
		t.Fatalf("anti-filter = %v", got)
	}
	checkDelta(t, e, db, "R", relation.InsertDelta(rSchema, relation.T(3, 2)))
	checkDelta(t, e, db, "R", relation.InsertDelta(rSchema, relation.T(4, 8)))
	checkDelta(t, e, db, "R", relation.DeleteDelta(rSchema, relation.T(2, 9)))
}

func TestSetOpSubstituteAndOptimize(t *testing.T) {
	e := MustExcept(Scan("R1", rSchema), Scan("R2", rSchema))
	d := relation.InsertDelta(rSchema, relation.T(5, 5))
	sub := Substitute(e, "R2", d)
	if len(sub.BaseRelations()) != 1 {
		t.Errorf("substituted bases = %v", sub.BaseRelations())
	}
	// The optimizer recurses into setop children but conservatively leaves
	// selections above the node (they would distribute, but the rewrite is
	// not implemented).
	v := MustSelect(e, Cmp("A", Gt, 0))
	opt := Optimize(v)
	if _, ok := opt.(*SelectExpr); !ok {
		t.Errorf("selection must stay above the setop: %s", opt)
	}
	db := MapDB{
		"R1": relation.FromTuples(rSchema, relation.T(1, 1), relation.T(-1, 1)),
		"R2": relation.FromTuples(rSchema, relation.T(1, 1)),
	}
	a := mustEval(t, v, db)
	b := mustEval(t, opt, db)
	if !a.Equal(b) {
		t.Errorf("optimize changed setop semantics: %v vs %v", a, b)
	}
}
