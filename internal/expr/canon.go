// canon.go gives expressions a canonical structural identity for
// multi-query optimization: a rendering under which two subexpressions
// compare equal exactly when they apply the same operator tree, with the
// same parameters, to the same inputs. The maintenance-plan DAG
// (internal/plan) keys its nodes by it, so a subexpression shared by many
// view definitions — after Optimize has normalized each tree — is
// recognized and computed once.
//
// The rendering is injective by construction: every string component is
// quoted, every value carries its type tag (Expr.String conflates int 3
// with string "3"), rename mappings are emitted in sorted order, and each
// operator's parameters are delimited. Hash is an FNV-1a digest of the
// key for cheap fingerprinting; equality decisions always use the key
// itself, so hash collisions cannot conflate expressions.
package expr

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"whips/internal/relation"
)

// Children returns e's direct subexpressions, outermost-parameter order
// (left before right). Leaves return nil.
func Children(e Expr) []Expr {
	switch n := e.(type) {
	case *ScanExpr, *ConstExpr:
		return nil
	case *SelectExpr:
		return []Expr{n.child}
	case *ProjectExpr:
		return []Expr{n.child}
	case *RenameExpr:
		return []Expr{n.child}
	case *AggregateExpr:
		return []Expr{n.child}
	case *JoinExpr:
		return []Expr{n.left, n.right}
	case *UnionAllExpr:
		return []Expr{n.left, n.right}
	case *SetOpExpr:
		return []Expr{n.left, n.right}
	default:
		panic(fmt.Sprintf("expr: Children does not know node type %T", e))
	}
}

// Rebuild returns e with its children replaced, re-deriving schemas and
// recompiling predicates through the public constructors so a replacement
// child with an incompatible schema is rejected rather than silently
// accepted. len(children) must match Children(e).
func Rebuild(e Expr, children []Expr) (Expr, error) {
	want := len(Children(e))
	if len(children) != want {
		return nil, fmt.Errorf("expr: Rebuild of %T got %d children, want %d", e, len(children), want)
	}
	switch n := e.(type) {
	case *ScanExpr, *ConstExpr:
		return e, nil
	case *SelectExpr:
		return rebuilt(Select(children[0], n.pred))
	case *ProjectExpr:
		return rebuilt(Project(children[0], n.schema.Names()...))
	case *RenameExpr:
		return rebuilt(Rename(children[0], n.mapping))
	case *AggregateExpr:
		return rebuilt(Aggregate(children[0], n.groupBy, n.aggs))
	case *JoinExpr:
		return rebuilt(Join(children[0], children[1]))
	case *UnionAllExpr:
		return rebuilt(UnionAll(children[0], children[1]))
	case *SetOpExpr:
		if n.kind == diffOp {
			return rebuilt(Except(children[0], children[1]))
		}
		return rebuilt(Intersect(children[0], children[1]))
	default:
		return nil, fmt.Errorf("expr: Rebuild does not know node type %T", e)
	}
}

// rebuilt adapts a concrete constructor result to (Expr, error), keeping
// the interface nil when the constructor failed.
func rebuilt(e Expr, err error) (Expr, error) {
	if err != nil {
		return nil, err
	}
	return e, nil
}

// CanonicalKey returns e's canonical structural identity, or ok == false
// when e has none (it contains a Const node, whose literal bag identity is
// not worth canonicalizing — Const appears only in compensation plumbing,
// never in shareable view definitions).
func CanonicalKey(e Expr) (key string, ok bool) {
	var b strings.Builder
	if !appendCanon(&b, e) {
		return "", false
	}
	return b.String(), true
}

// Hash returns a 64-bit FNV-1a digest of e's canonical key (0 when e has
// none). A fingerprint only: callers deciding equality compare keys.
func Hash(e Expr) uint64 {
	key, ok := CanonicalKey(e)
	if !ok {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

func appendCanon(b *strings.Builder, e Expr) bool {
	switch n := e.(type) {
	case *ScanExpr:
		b.WriteString("scan(")
		b.WriteString(strconv.Quote(n.name))
		b.WriteByte(',')
		canonSchema(b, n.schema)
		b.WriteByte(')')
	case *ConstExpr:
		return false
	case *SelectExpr:
		b.WriteString("sel[")
		canonPred(b, n.pred)
		b.WriteString("](")
		if !appendCanon(b, n.child) {
			return false
		}
		b.WriteByte(')')
	case *ProjectExpr:
		b.WriteString("proj[")
		canonNames(b, n.schema.Names())
		b.WriteString("](")
		if !appendCanon(b, n.child) {
			return false
		}
		b.WriteByte(')')
	case *RenameExpr:
		// Renames normalize by sorting the mapping pairs, so two Rename
		// nodes built from maps with different iteration histories — or
		// carrying no-op entries in different spots — canonicalize alike.
		pairs := make([]string, 0, len(n.mapping))
		for from, to := range n.mapping {
			if from == to {
				continue
			}
			pairs = append(pairs, strconv.Quote(from)+">"+strconv.Quote(to))
		}
		sort.Strings(pairs)
		b.WriteString("ren[")
		b.WriteString(strings.Join(pairs, ","))
		b.WriteString("](")
		if !appendCanon(b, n.child) {
			return false
		}
		b.WriteByte(')')
	case *AggregateExpr:
		b.WriteString("agg[")
		canonNames(b, n.groupBy)
		b.WriteByte(';')
		for i, a := range n.aggs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(a.Op.String())
			b.WriteByte('(')
			b.WriteString(strconv.Quote(a.Attr))
			b.WriteString(")as")
			b.WriteString(strconv.Quote(a.As))
		}
		b.WriteString("](")
		if !appendCanon(b, n.child) {
			return false
		}
		b.WriteByte(')')
	case *JoinExpr:
		return canonBinary(b, "join", n.left, n.right)
	case *UnionAllExpr:
		return canonBinary(b, "union", n.left, n.right)
	case *SetOpExpr:
		op := "except"
		if n.kind == intersectOp {
			op = "intersect"
		}
		return canonBinary(b, op, n.left, n.right)
	default:
		panic(fmt.Sprintf("expr: CanonicalKey does not know node type %T", e))
	}
	return true
}

func canonBinary(b *strings.Builder, op string, l, r Expr) bool {
	b.WriteString(op)
	b.WriteByte('(')
	if !appendCanon(b, l) {
		return false
	}
	b.WriteByte(',')
	if !appendCanon(b, r) {
		return false
	}
	b.WriteByte(')')
	return true
}

func canonSchema(b *strings.Builder, s *relation.Schema) {
	b.WriteByte('(')
	for i := 0; i < s.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		a := s.Attr(i)
		b.WriteString(strconv.Quote(a.Name))
		b.WriteByte(':')
		b.WriteString(a.Type.String())
	}
	b.WriteByte(')')
}

func canonNames(b *strings.Builder, names []string) {
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(n))
	}
}

// canonPred renders a predicate injectively: constants carry their type
// tag (Pred.String renders int 3 and string "3" identically), attribute
// names are quoted, and combinator structure is parenthesized.
func canonPred(b *strings.Builder, p Pred) {
	switch t := p.(type) {
	case cmpConst:
		b.WriteString("cmp(")
		b.WriteString(strconv.Quote(t.attr))
		b.WriteString(t.op.String())
		canonValue(b, t.value)
		b.WriteByte(')')
	case cmpCols:
		b.WriteString("cmpc(")
		b.WriteString(strconv.Quote(t.a))
		b.WriteString(t.op.String())
		b.WriteString(strconv.Quote(t.b))
		b.WriteByte(')')
	case andPred:
		canonPredList(b, "and", t.ps)
	case orPred:
		canonPredList(b, "or", t.ps)
	case notPred:
		b.WriteString("not(")
		canonPred(b, t.p)
		b.WriteByte(')')
	case truePred:
		b.WriteString("true")
	default:
		// A predicate kind this file does not know renders via its String;
		// distinct unknown kinds may then collide, which only costs a missed
		// (or refused) sharing opportunity for exotic predicates.
		b.WriteString("pred(")
		b.WriteString(strconv.Quote(p.String()))
		b.WriteByte(')')
	}
}

func canonPredList(b *strings.Builder, op string, ps []Pred) {
	b.WriteString(op)
	b.WriteByte('(')
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		canonPred(b, p)
	}
	b.WriteByte(')')
}

func canonValue(b *strings.Builder, v relation.Value) {
	b.WriteString(v.Kind().String())
	b.WriteByte(':')
	b.WriteString(strconv.Quote(v.String()))
}
