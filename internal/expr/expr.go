// Package expr implements the view-definition algebra used by the WHIPS
// reproduction: select-project-join expression trees over named base
// relations, plus bag union and group-by aggregation.
//
// Two operations matter for warehouse view maintenance:
//
//   - Eval computes the full contents of a view at a given database state
//     (used for initialization, periodic refresh, and the consistency
//     checker's oracle).
//   - Delta computes the incremental change to the view caused by a change
//     to one base relation, given the PRE-update database state. This is the
//     counting algorithm: all intermediate results are signed counted bags,
//     so maintenance is exact under duplicates and projection.
//
// Everything evaluates in "signed bag" space (*relation.Delta); a plain
// relation is just a signed bag with all-positive counts. This uniformity is
// what lets the Strobe-style view manager compensate for intertwined updates
// by substituting a delta for a base relation (see Substitute) and running
// the ordinary delta rules.
package expr

import (
	"fmt"

	"whips/internal/relation"
)

// Database resolves base relation names to their current contents. The
// returned relation must not be mutated by the caller.
type Database interface {
	Relation(name string) (*relation.Relation, error)
}

// MapDB is a trivial Database backed by a map.
type MapDB map[string]*relation.Relation

// Relation implements Database.
func (m MapDB) Relation(name string) (*relation.Relation, error) {
	r, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("expr: unknown base relation %q", name)
	}
	return r, nil
}

// OverlayDB presents a base Database with per-relation deltas applied on
// top. It materializes (and caches) each overlaid relation on first access.
// It is the pre/post-state plumbing for multi-write transactions.
type OverlayDB struct {
	Base   Database
	Deltas map[string]*relation.Delta
	cache  map[string]*relation.Relation
}

// Relation implements Database.
func (o *OverlayDB) Relation(name string) (*relation.Relation, error) {
	d, ok := o.Deltas[name]
	if !ok || d.Empty() {
		return o.Base.Relation(name)
	}
	if o.cache == nil {
		o.cache = make(map[string]*relation.Relation)
	}
	if r, ok := o.cache[name]; ok {
		return r, nil
	}
	base, err := o.Base.Relation(name)
	if err != nil {
		return nil, err
	}
	r := base.Clone()
	if err := r.Apply(d); err != nil {
		return nil, fmt.Errorf("expr: overlay of %q: %w", name, err)
	}
	o.cache[name] = r
	return r, nil
}

// Expr is a view-definition expression tree. Implementations are immutable
// and safe for concurrent use.
type Expr interface {
	// Schema is the output schema.
	Schema() *relation.Schema
	// BaseRelations returns the distinct base relation names referenced, in
	// first-appearance order.
	BaseRelations() []string
	// String renders the expression in algebra-ish notation.
	String() string

	// evalSigned computes the expression over db in signed-bag space.
	evalSigned(db Database) (*relation.Delta, error)
	// deltaSigned computes the change to the expression caused by applying
	// d to base, where db is the pre-update state.
	deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error)
}

// Eval computes the full view contents at db. It fails if the result has a
// negative count, which can only happen via a Const node holding a
// non-relation signed bag.
func Eval(e Expr, db Database) (*relation.Relation, error) {
	s, err := e.evalSigned(db)
	if err != nil {
		return nil, err
	}
	out := relation.New(e.Schema())
	var bad error
	s.Each(func(t relation.Tuple, n int64) bool {
		if n < 0 {
			bad = fmt.Errorf("expr: evaluation produced negative count %d for %v", n, t)
			return false
		}
		bad = out.Insert(t, n)
		return bad == nil
	})
	if bad != nil {
		return nil, bad
	}
	return out, nil
}

// EvalSigned computes the expression in signed-bag space.
func EvalSigned(e Expr, db Database) (*relation.Delta, error) { return e.evalSigned(db) }

// Delta computes the incremental change to view e caused by applying d to
// base relation base. db must be the PRE-update database state. The result
// is exact under bag semantics, including self-joins.
func Delta(e Expr, base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	if d.Empty() {
		return relation.NewDelta(e.Schema()), nil
	}
	return e.deltaSigned(base, d, db)
}

// Write names one base relation change; a transaction is a sequence of
// writes (paper §6.2 allows several per transaction).
type Write struct {
	Relation string
	Delta    *relation.Delta
}

// StepDB presents a base Database with a sequence of write-deltas applied
// on top, advancing one write at a time. Unlike chaining fresh OverlayDBs
// (which re-clones the base relation — dropping its indexes — and replays
// the whole accumulated delta at every step), a StepDB clones each written
// relation once and then applies only the marginal delta per step, so
// persistent indexes built by EnsureIndex survive across the incremental
// applies. It is the multi-write-transaction plumbing of DeltaWrites.
//
// A StepDB belongs to one evaluation on one goroutine; the base database
// is only ever read.
type StepDB struct {
	base Database
	rels map[string]*relation.Relation
}

// NewStepDB returns a StepDB over base with no writes applied yet.
func NewStepDB(base Database) *StepDB { return &StepDB{base: base} }

// Relation implements Database.
func (s *StepDB) Relation(name string) (*relation.Relation, error) {
	if r, ok := s.rels[name]; ok {
		return r, nil
	}
	return s.base.Relation(name)
}

// Advance applies one more write on top of the current state. A relation
// the base database cannot resolve is one no expression evaluated against
// this StepDB reads (view-manager replicas only hold the relations their
// view mentions), so its writes are irrelevant and skipped.
func (s *StepDB) Advance(name string, d *relation.Delta) error {
	if d.Empty() {
		return nil
	}
	r, ok := s.rels[name]
	if !ok {
		base, err := s.base.Relation(name)
		if err != nil {
			return nil
		}
		r = base.Clone()
		if s.rels == nil {
			s.rels = make(map[string]*relation.Relation)
		}
		s.rels[name] = r
	}
	if err := r.Apply(d); err != nil {
		return fmt.Errorf("expr: advancing overlay of %q: %w", name, err)
	}
	return nil
}

// DeltaWrites computes the view change for a whole transaction: writes are
// applied in order, each delta evaluated at the state produced by its
// predecessors. db is the state before the first write.
func DeltaWrites(e Expr, writes []Write, db Database) (*relation.Delta, error) {
	total := relation.NewDelta(e.Schema())
	cur := NewStepDB(db)
	for _, w := range writes {
		step, err := Delta(e, w.Relation, w.Delta, cur)
		if err != nil {
			return nil, err
		}
		if err := total.Merge(step); err != nil {
			return nil, err
		}
		if err := cur.Advance(w.Relation, w.Delta); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// Substitute returns a copy of e in which every Scan of base is replaced by
// a Const holding d. The result evaluates the "delta expression" used by
// compensating view managers: for a base relation appearing once, Eval of
// the substituted tree at state S equals Delta(e, base, d, S).
func Substitute(e Expr, base string, d *relation.Delta) Expr {
	switch n := e.(type) {
	case *ScanExpr:
		if n.name == base {
			return NewConst(n.schema, d)
		}
		return n
	case *ConstExpr:
		return n
	case *SelectExpr:
		return &SelectExpr{child: Substitute(n.child, base, d), pred: n.pred, compiled: n.compiled}
	case *ProjectExpr:
		return &ProjectExpr{child: Substitute(n.child, base, d), schema: n.schema, idx: n.idx}
	case *JoinExpr:
		l := Substitute(n.left, base, d)
		r := Substitute(n.right, base, d)
		return &JoinExpr{left: l, right: r, schema: n.schema, shared: n.shared, rightKeep: n.rightKeep}
	case *UnionAllExpr:
		return &UnionAllExpr{left: Substitute(n.left, base, d), right: Substitute(n.right, base, d)}
	case *RenameExpr:
		return &RenameExpr{child: Substitute(n.child, base, d), schema: n.schema, mapping: n.mapping}
	case *SetOpExpr:
		return &SetOpExpr{kind: n.kind, left: Substitute(n.left, base, d), right: Substitute(n.right, base, d)}
	case *AggregateExpr:
		c := Substitute(n.child, base, d)
		return &AggregateExpr{child: c, groupBy: n.groupBy, groupIdx: n.groupIdx, aggs: n.aggs, schema: n.schema}
	default:
		panic(fmt.Sprintf("expr: Substitute does not know node type %T", e))
	}
}

// occurrences counts how many Scan nodes of base appear in e.
func occurrences(e Expr, base string) int {
	switch n := e.(type) {
	case *ScanExpr:
		if n.name == base {
			return 1
		}
		return 0
	case *ConstExpr:
		return 0
	case *SelectExpr:
		return occurrences(n.child, base)
	case *ProjectExpr:
		return occurrences(n.child, base)
	case *JoinExpr:
		return occurrences(n.left, base) + occurrences(n.right, base)
	case *UnionAllExpr:
		return occurrences(n.left, base) + occurrences(n.right, base)
	case *RenameExpr:
		return occurrences(n.child, base)
	case *SetOpExpr:
		return occurrences(n.left, base) + occurrences(n.right, base)
	case *AggregateExpr:
		return occurrences(n.child, base)
	default:
		return 0
	}
}

func mergeBases(a, b []string) []string {
	out := append([]string(nil), a...)
	seen := make(map[string]bool, len(a))
	for _, n := range a {
		seen[n] = true
	}
	for _, n := range b {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
