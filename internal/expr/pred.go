package expr

import (
	"fmt"
	"strings"

	"whips/internal/relation"
)

// CmpOp enumerates comparison operators for selection predicates.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

func (op CmpOp) holds(c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// Pred is a selection predicate. Predicates are immutable; they are compiled
// against a concrete schema when a Select node is built.
type Pred interface {
	compile(s *relation.Schema) (func(relation.Tuple) bool, error)
	// Attrs returns the attribute names the predicate references.
	Attrs() []string
	String() string
}

// ---------------------------------------------------------------- leafs

type cmpConst struct {
	attr  string
	op    CmpOp
	value relation.Value
}

// Cmp compares an attribute against a constant (given as a native literal).
func Cmp(attr string, op CmpOp, value any) Pred {
	return cmpConst{attr: attr, op: op, value: relation.V(value)}
}

func (p cmpConst) compile(s *relation.Schema) (func(relation.Tuple) bool, error) {
	i, ok := s.Index(p.attr)
	if !ok {
		return nil, fmt.Errorf("expr: predicate references missing attribute %q in %s", p.attr, s)
	}
	if s.Attr(i).Type != p.value.Kind() {
		return nil, fmt.Errorf("expr: predicate compares %q (%v) against %v constant",
			p.attr, s.Attr(i).Type, p.value.Kind())
	}
	op, v := p.op, p.value
	return func(t relation.Tuple) bool { return op.holds(t[i].Compare(v)) }, nil
}

func (p cmpConst) Attrs() []string { return []string{p.attr} }

func (p cmpConst) String() string { return fmt.Sprintf("%s%s%s", p.attr, p.op, p.value) }

type cmpCols struct {
	a, b string
	op   CmpOp
}

// CmpAttrs compares two attributes of the input.
func CmpAttrs(a string, op CmpOp, b string) Pred { return cmpCols{a: a, b: b, op: op} }

func (p cmpCols) compile(s *relation.Schema) (func(relation.Tuple) bool, error) {
	i, ok := s.Index(p.a)
	if !ok {
		return nil, fmt.Errorf("expr: predicate references missing attribute %q in %s", p.a, s)
	}
	j, ok := s.Index(p.b)
	if !ok {
		return nil, fmt.Errorf("expr: predicate references missing attribute %q in %s", p.b, s)
	}
	if s.Attr(i).Type != s.Attr(j).Type {
		return nil, fmt.Errorf("expr: predicate compares %q (%v) with %q (%v)",
			p.a, s.Attr(i).Type, p.b, s.Attr(j).Type)
	}
	op := p.op
	return func(t relation.Tuple) bool { return op.holds(t[i].Compare(t[j])) }, nil
}

func (p cmpCols) Attrs() []string { return []string{p.a, p.b} }

func (p cmpCols) String() string { return fmt.Sprintf("%s%s%s", p.a, p.op, p.b) }

// ---------------------------------------------------------------- combinators

type andPred struct{ ps []Pred }

// And is the conjunction of predicates; with no arguments it is true.
func And(ps ...Pred) Pred { return andPred{ps: ps} }

func (p andPred) compile(s *relation.Schema) (func(relation.Tuple) bool, error) {
	fs := make([]func(relation.Tuple) bool, len(p.ps))
	for i, sub := range p.ps {
		f, err := sub.compile(s)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(t relation.Tuple) bool {
		for _, f := range fs {
			if !f(t) {
				return false
			}
		}
		return true
	}, nil
}

func (p andPred) Attrs() []string {
	var out []string
	for _, sub := range p.ps {
		out = append(out, sub.Attrs()...)
	}
	return out
}

func (p andPred) String() string { return joinPreds(p.ps, " and ") }

type orPred struct{ ps []Pred }

// Or is the disjunction of predicates; with no arguments it is false.
func Or(ps ...Pred) Pred { return orPred{ps: ps} }

func (p orPred) compile(s *relation.Schema) (func(relation.Tuple) bool, error) {
	fs := make([]func(relation.Tuple) bool, len(p.ps))
	for i, sub := range p.ps {
		f, err := sub.compile(s)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return func(t relation.Tuple) bool {
		for _, f := range fs {
			if f(t) {
				return true
			}
		}
		return false
	}, nil
}

func (p orPred) Attrs() []string {
	var out []string
	for _, sub := range p.ps {
		out = append(out, sub.Attrs()...)
	}
	return out
}

func (p orPred) String() string { return joinPreds(p.ps, " or ") }

type notPred struct{ p Pred }

// Not negates a predicate.
func Not(p Pred) Pred { return notPred{p: p} }

func (p notPred) compile(s *relation.Schema) (func(relation.Tuple) bool, error) {
	f, err := p.p.compile(s)
	if err != nil {
		return nil, err
	}
	return func(t relation.Tuple) bool { return !f(t) }, nil
}

func (p notPred) Attrs() []string { return p.p.Attrs() }

func (p notPred) String() string { return fmt.Sprintf("not(%s)", p.p) }

type truePred struct{}

// True is the always-true predicate.
func True() Pred { return truePred{} }

func (truePred) compile(*relation.Schema) (func(relation.Tuple) bool, error) {
	return func(relation.Tuple) bool { return true }, nil
}

func (truePred) Attrs() []string { return nil }

func (truePred) String() string { return "true" }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
