package expr

import (
	"testing"

	"whips/internal/relation"
)

func TestPossiblyRelevantSelection(t *testing.T) {
	// V = σ_{A=5}(R) ⋈ S — an R tuple with A≠5 is provably irrelevant.
	v := MustJoin(MustSelect(Scan("R", rSchema), Cmp("A", Eq, 5)), Scan("S", sSchema))
	if PossiblyRelevant(v, "R", relation.T(3, 2)) {
		t.Error("A=3 should be irrelevant to σ_{A=5}")
	}
	if !PossiblyRelevant(v, "R", relation.T(5, 2)) {
		t.Error("A=5 must stay relevant")
	}
	// S tuples: no usable predicate, always relevant.
	if !PossiblyRelevant(v, "S", relation.T(2, 3)) {
		t.Error("S tuples must stay relevant")
	}
	// A relation the view does not read is never relevant.
	if PossiblyRelevant(v, "T", relation.T(1, 1)) {
		t.Error("unreferenced relation must be irrelevant")
	}
}

func TestPossiblyRelevantSharedAttrConservative(t *testing.T) {
	// Predicate on B, which is the join attribute shared by R and S: the
	// implementation stays conservative and keeps the tuple.
	v := MustSelect(MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Cmp("B", Eq, 7))
	if !PossiblyRelevant(v, "R", relation.T(1, 3)) {
		t.Error("shared-attribute predicate must not be used to discard")
	}
}

func TestPossiblyRelevantSelectAboveJoin(t *testing.T) {
	// Predicate on A (only in R) above the join: usable against R deltas.
	v := MustSelect(MustJoin(Scan("R", rSchema), Scan("S", sSchema)), Cmp("A", Gt, 10))
	if PossiblyRelevant(v, "R", relation.T(1, 2)) {
		t.Error("A=1 fails A>10 and should be discarded")
	}
	if !PossiblyRelevant(v, "R", relation.T(11, 2)) {
		t.Error("A=11 passes A>10")
	}
	if !PossiblyRelevant(v, "S", relation.T(2, 3)) {
		t.Error("predicate on A must not discard S tuples")
	}
}

func TestPossiblyRelevantUnionConservative(t *testing.T) {
	r2 := relation.MustSchema("A:int", "B:int")
	left := MustSelect(Scan("R", rSchema), Cmp("A", Eq, 1))
	right := Scan("R", r2)
	v := MustUnionAll(left, right)
	// The tuple fails the left branch predicate but flows into the right
	// branch, so it must remain relevant.
	if !PossiblyRelevant(v, "R", relation.T(9, 9)) {
		t.Error("union branches must not discard")
	}
}

func TestRelevantDelta(t *testing.T) {
	v := MustJoin(MustSelect(Scan("R", rSchema), Cmp("A", Eq, 5)), Scan("S", sSchema))
	d := relation.NewDelta(rSchema)
	d.Add(relation.T(5, 1), 1)
	d.Add(relation.T(6, 1), 1)
	d.Add(relation.T(5, 2), -1)
	got := RelevantDelta(v, "R", d)
	if got.Count(relation.T(5, 1)) != 1 || got.Count(relation.T(5, 2)) != -1 || got.Distinct() != 2 {
		t.Errorf("RelevantDelta = %v", got)
	}
}

func TestPossiblyRelevantThroughAggregate(t *testing.T) {
	v := MustAggregate(
		MustSelect(Scan("R", rSchema), Cmp("A", Ge, 100)),
		[]string{"B"}, []AggSpec{{Op: Count, As: "N"}})
	if PossiblyRelevant(v, "R", relation.T(1, 1)) {
		t.Error("predicate below aggregate should discard")
	}
	if !PossiblyRelevant(v, "R", relation.T(100, 1)) {
		t.Error("passing tuple stays relevant")
	}
}
