package expr

import (
	"fmt"

	"whips/internal/relation"
)

// setOpKind distinguishes the two non-linear bag operators.
type setOpKind uint8

const (
	diffOp setOpKind = iota
	intersectOp
)

// SetOpExpr implements bag difference (EXCEPT ALL: count = max(0, a−b))
// and bag intersection (INTERSECT ALL: count = max(0, min(a, b))). Unlike
// the other operators these are not linear in their inputs, so the delta
// rule evaluates both children around the change and recomputes the output
// counts of exactly the affected tuples — the same technique the aggregate
// node uses for affected groups.
type SetOpExpr struct {
	kind        setOpKind
	left, right Expr
}

// Except returns left − right (bag monus). Schemas must match.
func Except(left, right Expr) (*SetOpExpr, error) {
	if !left.Schema().Equal(right.Schema()) {
		return nil, fmt.Errorf("expr: except children have schemas %s and %s",
			left.Schema(), right.Schema())
	}
	return &SetOpExpr{kind: diffOp, left: left, right: right}, nil
}

// MustExcept is Except that panics on error.
func MustExcept(left, right Expr) *SetOpExpr {
	e, err := Except(left, right)
	if err != nil {
		panic(err)
	}
	return e
}

// Intersect returns left ∩ right (bag intersection). Schemas must match.
func Intersect(left, right Expr) (*SetOpExpr, error) {
	if !left.Schema().Equal(right.Schema()) {
		return nil, fmt.Errorf("expr: intersect children have schemas %s and %s",
			left.Schema(), right.Schema())
	}
	return &SetOpExpr{kind: intersectOp, left: left, right: right}, nil
}

// MustIntersect is Intersect that panics on error.
func MustIntersect(left, right Expr) *SetOpExpr {
	e, err := Intersect(left, right)
	if err != nil {
		panic(err)
	}
	return e
}

// Schema implements Expr.
func (s *SetOpExpr) Schema() *relation.Schema { return s.left.Schema() }

// BaseRelations implements Expr.
func (s *SetOpExpr) BaseRelations() []string {
	return mergeBases(s.left.BaseRelations(), s.right.BaseRelations())
}

// String implements Expr.
func (s *SetOpExpr) String() string {
	op := "except"
	if s.kind == intersectOp {
		op = "intersect"
	}
	return fmt.Sprintf("(%s %s %s)", s.left, op, s.right)
}

// combine applies the operator to one tuple's child counts. Negative
// inputs (possible only through Const bags) clamp at zero.
func (s *SetOpExpr) combine(a, b int64) int64 {
	var n int64
	if s.kind == diffOp {
		n = a - b
	} else {
		n = a
		if b < n {
			n = b
		}
	}
	if n < 0 {
		return 0
	}
	return n
}

// apply computes the operator over two signed bags.
func (s *SetOpExpr) apply(l, r *relation.Delta) *relation.Delta {
	out := relation.NewDelta(s.Schema())
	l.Each(func(t relation.Tuple, a int64) bool {
		if n := s.combine(a, r.Count(t)); n != 0 {
			out.Add(t, n)
		}
		return true
	})
	if s.kind == intersectOp {
		return out // tuples absent from the left contribute nothing
	}
	return out
}

func (s *SetOpExpr) evalSigned(db Database) (*relation.Delta, error) {
	l, err := s.left.evalSigned(db)
	if err != nil {
		return nil, err
	}
	r, err := s.right.evalSigned(db)
	if err != nil {
		return nil, err
	}
	return s.apply(l, r), nil
}

func (s *SetOpExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	dl, err := deltaOrEmpty(s.left, base, d, db)
	if err != nil {
		return nil, err
	}
	dr, err := deltaOrEmpty(s.right, base, d, db)
	if err != nil {
		return nil, err
	}
	out := relation.NewDelta(s.Schema())
	if dl.Empty() && dr.Empty() {
		return out, nil
	}
	// Only tuples mentioned by either child delta can change output count.
	lPre, err := s.left.evalSigned(db)
	if err != nil {
		return nil, err
	}
	rPre, err := s.right.evalSigned(db)
	if err != nil {
		return nil, err
	}
	affected := make(map[string]relation.Tuple)
	dl.Each(func(t relation.Tuple, _ int64) bool { affected[t.Key()] = t; return true })
	dr.Each(func(t relation.Tuple, _ int64) bool { affected[t.Key()] = t; return true })
	for _, t := range affected {
		aPre, bPre := lPre.Count(t), rPre.Count(t)
		aPost, bPost := aPre+dl.Count(t), bPre+dr.Count(t)
		if change := s.combine(aPost, bPost) - s.combine(aPre, bPre); change != 0 {
			out.Add(t, change)
		}
	}
	return out, nil
}

// deltaOrEmpty computes a child delta, short-circuiting children that do
// not read base.
func deltaOrEmpty(e Expr, base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	if occurrences(e, base) == 0 {
		return relation.NewDelta(e.Schema()), nil
	}
	return e.deltaSigned(base, d, db)
}
