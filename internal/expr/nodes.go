package expr

import (
	"fmt"
	"strings"

	"whips/internal/relation"
)

// ---------------------------------------------------------------- Scan

// ScanExpr reads a named base relation.
type ScanExpr struct {
	name   string
	schema *relation.Schema
}

// Scan returns an expression reading base relation name with the given
// schema.
func Scan(name string, schema *relation.Schema) *ScanExpr {
	return &ScanExpr{name: name, schema: schema}
}

// Name returns the base relation name.
func (s *ScanExpr) Name() string { return s.name }

// Schema implements Expr.
func (s *ScanExpr) Schema() *relation.Schema { return s.schema }

// BaseRelations implements Expr.
func (s *ScanExpr) BaseRelations() []string { return []string{s.name} }

// String implements Expr.
func (s *ScanExpr) String() string { return s.name }

func (s *ScanExpr) evalSigned(db Database) (*relation.Delta, error) {
	r, err := db.Relation(s.name)
	if err != nil {
		return nil, err
	}
	if !r.Schema().Equal(s.schema) {
		return nil, fmt.Errorf("expr: relation %q has schema %s, expression expects %s",
			s.name, r.Schema(), s.schema)
	}
	return r.AsDelta(), nil
}

func (s *ScanExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	if s.name != base {
		return relation.NewDelta(s.schema), nil
	}
	if !d.Schema().Equal(s.schema) {
		return nil, fmt.Errorf("expr: delta for %q has schema %s, expression expects %s",
			base, d.Schema(), s.schema)
	}
	return d.Clone(), nil
}

// ---------------------------------------------------------------- Const

// ConstExpr is a literal signed bag. It appears in user expressions rarely;
// its real purpose is Substitute, which turns a view definition into its
// "delta expression" for compensating view managers.
type ConstExpr struct {
	schema *relation.Schema
	value  *relation.Delta
}

// NewConst returns a constant expression holding d.
func NewConst(schema *relation.Schema, d *relation.Delta) *ConstExpr {
	if d == nil {
		d = relation.NewDelta(schema)
	}
	return &ConstExpr{schema: schema, value: d}
}

// Schema implements Expr.
func (c *ConstExpr) Schema() *relation.Schema { return c.schema }

// BaseRelations implements Expr.
func (c *ConstExpr) BaseRelations() []string { return nil }

// String implements Expr.
func (c *ConstExpr) String() string { return "const" + c.value.String() }

func (c *ConstExpr) evalSigned(Database) (*relation.Delta, error) { return c.value.Clone(), nil }

func (c *ConstExpr) deltaSigned(string, *relation.Delta, Database) (*relation.Delta, error) {
	return relation.NewDelta(c.schema), nil
}

// ---------------------------------------------------------------- Select

// SelectExpr filters its child by a predicate.
type SelectExpr struct {
	child    Expr
	pred     Pred
	compiled func(relation.Tuple) bool
}

// Select returns σ_pred(child). The predicate is compiled against the
// child's schema once, here.
func Select(child Expr, pred Pred) (*SelectExpr, error) {
	f, err := pred.compile(child.Schema())
	if err != nil {
		return nil, err
	}
	return &SelectExpr{child: child, pred: pred, compiled: f}, nil
}

// MustSelect is Select for literal construction; it panics on error.
func MustSelect(child Expr, pred Pred) *SelectExpr {
	s, err := Select(child, pred)
	if err != nil {
		panic(err)
	}
	return s
}

// Pred returns the selection predicate.
func (s *SelectExpr) Pred() Pred { return s.pred }

// Schema implements Expr.
func (s *SelectExpr) Schema() *relation.Schema { return s.child.Schema() }

// BaseRelations implements Expr.
func (s *SelectExpr) BaseRelations() []string { return s.child.BaseRelations() }

// String implements Expr.
func (s *SelectExpr) String() string {
	return fmt.Sprintf("select[%s](%s)", s.pred, s.child)
}

func (s *SelectExpr) filter(in *relation.Delta) *relation.Delta {
	out := relation.NewDelta(s.Schema())
	in.Each(func(t relation.Tuple, n int64) bool {
		if s.compiled(t) {
			out.Add(t, n)
		}
		return true
	})
	return out
}

func (s *SelectExpr) evalSigned(db Database) (*relation.Delta, error) {
	in, err := s.child.evalSigned(db)
	if err != nil {
		return nil, err
	}
	return s.filter(in), nil
}

func (s *SelectExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	in, err := s.child.deltaSigned(base, d, db)
	if err != nil {
		return nil, err
	}
	return s.filter(in), nil
}

// ---------------------------------------------------------------- Project

// ProjectExpr projects its child onto a subset of attributes (bag
// semantics: multiplicities of collapsing tuples add — the counting
// algorithm's raison d'être).
type ProjectExpr struct {
	child  Expr
	schema *relation.Schema
	idx    []int
}

// Project returns π_attrs(child).
func Project(child Expr, attrs ...string) (*ProjectExpr, error) {
	sch, idx, err := child.Schema().Project(attrs...)
	if err != nil {
		return nil, err
	}
	return &ProjectExpr{child: child, schema: sch, idx: idx}, nil
}

// MustProject is Project that panics on error.
func MustProject(child Expr, attrs ...string) *ProjectExpr {
	p, err := Project(child, attrs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Schema implements Expr.
func (p *ProjectExpr) Schema() *relation.Schema { return p.schema }

// BaseRelations implements Expr.
func (p *ProjectExpr) BaseRelations() []string { return p.child.BaseRelations() }

// String implements Expr.
func (p *ProjectExpr) String() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(p.schema.Names(), ","), p.child)
}

func (p *ProjectExpr) apply(in *relation.Delta) *relation.Delta {
	out := relation.NewDelta(p.schema)
	in.Each(func(t relation.Tuple, n int64) bool {
		out.Add(t.Project(p.idx), n)
		return true
	})
	return out
}

func (p *ProjectExpr) evalSigned(db Database) (*relation.Delta, error) {
	in, err := p.child.evalSigned(db)
	if err != nil {
		return nil, err
	}
	return p.apply(in), nil
}

func (p *ProjectExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	in, err := p.child.deltaSigned(base, d, db)
	if err != nil {
		return nil, err
	}
	return p.apply(in), nil
}

// ---------------------------------------------------------------- Join

// JoinExpr is the natural join of its children: tuples match when all
// shared attribute names agree; shared attributes appear once in the
// output. With no shared attributes it is the cross product.
type JoinExpr struct {
	left, right Expr
	schema      *relation.Schema
	shared      []string
	rightKeep   []int // positions of right attrs appended to output
}

// Join returns left ⋈ right (natural join).
func Join(left, right Expr) (*JoinExpr, error) {
	sch, shared, err := left.Schema().NaturalJoin(right.Schema())
	if err != nil {
		return nil, err
	}
	var keep []int
	ls := left.Schema()
	rs := right.Schema()
	for i := 0; i < rs.Len(); i++ {
		if !ls.Has(rs.Attr(i).Name) {
			keep = append(keep, i)
		}
	}
	return &JoinExpr{left: left, right: right, schema: sch, shared: shared, rightKeep: keep}, nil
}

// MustJoin is Join that panics on error.
func MustJoin(left, right Expr) *JoinExpr {
	j, err := Join(left, right)
	if err != nil {
		panic(err)
	}
	return j
}

// JoinAll folds Join over several expressions left-to-right. It panics on
// error; it is a convenience for multiway views like R ⋈ S ⋈ T.
func JoinAll(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		panic("expr: JoinAll needs at least one expression")
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = MustJoin(out, e)
	}
	return out
}

// Schema implements Expr.
func (j *JoinExpr) Schema() *relation.Schema { return j.schema }

// BaseRelations implements Expr.
func (j *JoinExpr) BaseRelations() []string {
	return mergeBases(j.left.BaseRelations(), j.right.BaseRelations())
}

// String implements Expr.
func (j *JoinExpr) String() string { return fmt.Sprintf("(%s join %s)", j.left, j.right) }

// joinBags hash-joins two signed bags on the shared attributes; counts
// multiply (signed), which is exactly the bilinear behaviour the counting
// algorithm's join delta rule relies on.
func (j *JoinExpr) joinBags(l, r *relation.Delta) *relation.Delta {
	if l.Empty() || r.Empty() {
		return relation.NewDelta(j.schema)
	}
	out := relation.NewDeltaCap(j.schema, l.Distinct())
	lIdx, rIdx := j.sharedIdx()
	type rEntry struct {
		t relation.Tuple
		n int64
	}
	index := make(map[string][]rEntry, r.Distinct())
	var key []byte
	r.Each(func(t relation.Tuple, n int64) bool {
		key = t.AppendProjectedKey(key[:0], rIdx)
		index[string(key)] = append(index[string(key)], rEntry{t, n})
		return true
	})
	l.Each(func(lt relation.Tuple, ln int64) bool {
		key = lt.AppendProjectedKey(key[:0], lIdx)
		for _, re := range index[string(key)] {
			out.Add(lt.Concat(re.t.Project(j.rightKeep)), ln*re.n)
		}
		return true
	})
	return out
}

func (j *JoinExpr) evalSigned(db Database) (*relation.Delta, error) {
	l, err := j.left.evalSigned(db)
	if err != nil {
		return nil, err
	}
	r, err := j.right.evalSigned(db)
	if err != nil {
		return nil, err
	}
	return j.joinBags(l, r), nil
}

// deltaSigned implements the exact bag join delta rule:
//
//	Δ(L ⋈ R) = ΔL ⋈ R_pre  +  L_post ⋈ ΔR,   L_post = L_pre + ΔL
//
// which is correct even when base occurs on both sides (self-joins).
func (j *JoinExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	inLeft := occurrences(j.left, base) > 0
	inRight := occurrences(j.right, base) > 0
	out := relation.NewDelta(j.schema)
	if !inLeft && !inRight {
		return out, nil
	}
	var dl, dr *relation.Delta
	var err error
	if inLeft {
		if dl, err = j.left.deltaSigned(base, d, db); err != nil {
			return nil, err
		}
	} else {
		dl = relation.NewDelta(j.left.Schema())
	}
	if inRight {
		if dr, err = j.right.deltaSigned(base, d, db); err != nil {
			return nil, err
		}
	} else {
		dr = relation.NewDelta(j.right.Schema())
	}
	if !dl.Empty() {
		if fast, err := j.probeScanRight(db, dl, out); err != nil {
			return nil, err
		} else if !fast {
			rPre, err := j.right.evalSigned(db)
			if err != nil {
				return nil, err
			}
			if err := out.Merge(j.joinBags(dl, rPre)); err != nil {
				return nil, err
			}
		}
	}
	if !dr.Empty() {
		if dl.Empty() {
			if fast, err := j.probeScanLeft(db, dr, out); err != nil {
				return nil, err
			} else if fast {
				return out, nil
			}
		}
		lPost, err := j.left.evalSigned(db)
		if err != nil {
			return nil, err
		}
		lPost = lPost.Clone()
		if err := lPost.Merge(dl); err != nil {
			return nil, err
		}
		if err := out.Merge(j.joinBags(lPost, dr)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sharedIdx resolves the join key's positions in both child schemas.
func (j *JoinExpr) sharedIdx() (lIdx, rIdx []int) {
	lIdx = make([]int, len(j.shared))
	rIdx = make([]int, len(j.shared))
	for i, name := range j.shared {
		li, _ := j.left.Schema().Index(name)
		ri, _ := j.right.Schema().Index(name)
		lIdx[i], rIdx[i] = li, ri
	}
	return lIdx, rIdx
}

// unwrapScan peels Select and Rename layers above a Scan. Both preserve
// tuple positions, so the selections' compiled closures (and the join's
// positional metadata) apply directly to tuples probed from the scanned
// relation. filters come back outermost-first; a non-probeable shape
// returns ok == false.
func unwrapScan(e Expr) (scan *ScanExpr, filters []func(relation.Tuple) bool, ok bool) {
	for {
		switch n := e.(type) {
		case *ScanExpr:
			return n, filters, true
		case *SelectExpr:
			filters = append(filters, n.compiled)
			e = n.child
		case *RenameExpr:
			e = n.child
		default:
			return nil, nil, false
		}
	}
}

// probeSide probes one side's base relation index with each tuple of the
// other side's delta. side is the child being probed; sideIdx its join-key
// positions; otherIdx the key positions in the delta's tuples.
func (j *JoinExpr) probeSide(db Database, side Expr, sideIdx, otherIdx []int,
	d *relation.Delta, out *relation.Delta, combine func(probe, dt relation.Tuple) relation.Tuple) (bool, error) {
	scan, filters, ok := unwrapScan(side)
	if !ok || len(j.shared) == 0 {
		return false, nil
	}
	r, err := db.Relation(scan.name)
	if err != nil {
		return false, err
	}
	if !r.Schema().Equal(scan.schema) {
		return false, fmt.Errorf("expr: relation %q has schema %s, expression expects %s",
			scan.name, r.Schema(), scan.schema)
	}
	var key []byte
	d.Each(func(dt relation.Tuple, dn int64) bool {
		key = dt.AppendProjectedKey(key[:0], otherIdx)
		r.LookupKeyEach(sideIdx, string(key), func(pt relation.Tuple, pn int64) bool {
			for _, f := range filters {
				if !f(pt) {
					return true
				}
			}
			out.Add(combine(pt, dt), dn*pn)
			return true
		})
		return true
	})
	return true, nil
}

// probeScanRight computes ΔL ⋈ R into out by probing R's persistent hash
// index when the right child is a (possibly selected/renamed) base scan —
// O(|ΔL| × matches) instead of materializing R. It reports whether it ran.
func (j *JoinExpr) probeScanRight(db Database, dl *relation.Delta, out *relation.Delta) (bool, error) {
	lIdx, rIdx := j.sharedIdx()
	return j.probeSide(db, j.right, rIdx, lIdx, dl, out,
		func(probe, dt relation.Tuple) relation.Tuple {
			return dt.Concat(probe.Project(j.rightKeep))
		})
}

// probeScanLeft computes L ⋈ ΔR into out by probing L's persistent index
// when the left child is a (possibly selected/renamed) base scan and ΔL is
// empty (so L_post = L_pre). It reports whether it ran.
func (j *JoinExpr) probeScanLeft(db Database, dr *relation.Delta, out *relation.Delta) (bool, error) {
	lIdx, rIdx := j.sharedIdx()
	return j.probeSide(db, j.left, lIdx, rIdx, dr, out,
		func(probe, dt relation.Tuple) relation.Tuple {
			return probe.Concat(dt.Project(j.rightKeep))
		})
}

// ---------------------------------------------------------------- UnionAll

// UnionAllExpr is bag union: multiplicities add. Children must have equal
// schemas.
type UnionAllExpr struct {
	left, right Expr
}

// UnionAll returns left ⊎ right.
func UnionAll(left, right Expr) (*UnionAllExpr, error) {
	if !left.Schema().Equal(right.Schema()) {
		return nil, fmt.Errorf("expr: union children have schemas %s and %s",
			left.Schema(), right.Schema())
	}
	return &UnionAllExpr{left: left, right: right}, nil
}

// MustUnionAll is UnionAll that panics on error.
func MustUnionAll(left, right Expr) *UnionAllExpr {
	u, err := UnionAll(left, right)
	if err != nil {
		panic(err)
	}
	return u
}

// Schema implements Expr.
func (u *UnionAllExpr) Schema() *relation.Schema { return u.left.Schema() }

// BaseRelations implements Expr.
func (u *UnionAllExpr) BaseRelations() []string {
	return mergeBases(u.left.BaseRelations(), u.right.BaseRelations())
}

// String implements Expr.
func (u *UnionAllExpr) String() string { return fmt.Sprintf("(%s union %s)", u.left, u.right) }

func (u *UnionAllExpr) evalSigned(db Database) (*relation.Delta, error) {
	l, err := u.left.evalSigned(db)
	if err != nil {
		return nil, err
	}
	r, err := u.right.evalSigned(db)
	if err != nil {
		return nil, err
	}
	out := l.Clone()
	if err := out.Merge(r); err != nil {
		return nil, err
	}
	return out, nil
}

func (u *UnionAllExpr) deltaSigned(base string, d *relation.Delta, db Database) (*relation.Delta, error) {
	l, err := u.left.deltaSigned(base, d, db)
	if err != nil {
		return nil, err
	}
	r, err := u.right.deltaSigned(base, d, db)
	if err != nil {
		return nil, err
	}
	out := l.Clone()
	if err := out.Merge(r); err != nil {
		return nil, err
	}
	return out, nil
}
