package expr

import (
	"strings"
	"testing"

	"whips/internal/relation"
)

func TestPredStringsAndAttrs(t *testing.T) {
	cases := []struct {
		p     Pred
		str   string
		attrs []string
	}{
		{Cmp("A", Eq, 5), "A=5", []string{"A"}},
		{Cmp("A", Ne, 5), "A!=5", []string{"A"}},
		{Cmp("A", Lt, 5), "A<5", []string{"A"}},
		{Cmp("A", Le, 5), "A<=5", []string{"A"}},
		{Cmp("A", Gt, 5), "A>5", []string{"A"}},
		{Cmp("A", Ge, 5), "A>=5", []string{"A"}},
		{CmpAttrs("A", Eq, "B"), "A=B", []string{"A", "B"}},
		{And(Cmp("A", Eq, 1), Cmp("B", Eq, 2)), "(A=1 and B=2)", []string{"A", "B"}},
		{Or(Cmp("A", Eq, 1), Cmp("B", Eq, 2)), "(A=1 or B=2)", []string{"A", "B"}},
		{Not(Cmp("A", Eq, 1)), "not(A=1)", []string{"A"}},
		{True(), "true", nil},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
		got := c.p.Attrs()
		if len(got) != len(c.attrs) {
			t.Errorf("%s Attrs = %v, want %v", c.str, got, c.attrs)
			continue
		}
		for i := range got {
			if got[i] != c.attrs[i] {
				t.Errorf("%s Attrs = %v, want %v", c.str, got, c.attrs)
			}
		}
	}
	if CmpOp(99).String() != "?" {
		t.Error("unknown op should render ?")
	}
	// Combinators propagate compile errors from their children.
	for _, p := range []Pred{
		And(Cmp("Z", Eq, 1)),
		Or(Cmp("Z", Eq, 1)),
		Not(Cmp("Z", Eq, 1)),
	} {
		if _, err := Select(Scan("R", rSchema), p); err == nil {
			t.Errorf("compile of %s should fail", p)
		}
	}
}

func TestScanAndConstAccessors(t *testing.T) {
	s := Scan("R", rSchema)
	if s.Name() != "R" {
		t.Errorf("Name = %q", s.Name())
	}
	c := NewConst(rSchema, nil)
	if !strings.HasPrefix(c.String(), "const") {
		t.Errorf("Const String = %q", c.String())
	}
	if c.BaseRelations() != nil {
		t.Error("const has no base relations")
	}
	// Const deltas never change.
	d, err := Delta(c, "R", relation.InsertDelta(rSchema, relation.T(1, 1)), MapDB{})
	if err != nil || !d.Empty() {
		t.Errorf("const delta = %v, %v", d, err)
	}
	// Scan schema mismatch in deltaSigned.
	if _, err := Delta(Scan("R", rSchema), "R", relation.InsertDelta(sSchema, relation.T(1, 1)), MapDB{}); err == nil {
		t.Error("mismatched delta schema must fail")
	}
}

func TestSelectPredAccessor(t *testing.T) {
	p := Cmp("A", Eq, 1)
	sel := MustSelect(Scan("R", rSchema), p)
	if sel.Pred().String() != p.String() {
		t.Error("Pred accessor mismatch")
	}
}

func TestMustConstructorsPanic(t *testing.T) {
	panics := []func(){
		func() { MustSelect(Scan("R", rSchema), Cmp("Z", Eq, 1)) },
		func() { MustProject(Scan("R", rSchema), "Z") },
		func() { MustJoin(Scan("R", rSchema), Scan("X", relation.MustSchema("A:string"))) },
		func() { MustUnionAll(Scan("R", rSchema), Scan("S", sSchema)) },
		func() { MustAggregate(Scan("R", rSchema), []string{"Z"}, nil) },
		func() { JoinAll() },
		func() { Substitute(nil, "R", nil) },
	}
	for i, f := range panics {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestUnionAllDelta(t *testing.T) {
	// Base appearing in both branches: deltas add.
	u := MustUnionAll(Scan("R", rSchema), Scan("R", rSchema))
	db := MapDB{"R": relation.FromTuples(rSchema, relation.T(1, 1))}
	d, err := Delta(u, "R", relation.InsertDelta(rSchema, relation.T(2, 2)), db)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count(relation.T(2, 2)) != 2 {
		t.Errorf("union delta = %v", d)
	}
	checkDelta(t, u, db, "R", relation.InsertDelta(rSchema, relation.T(3, 3)))
	if got := u.BaseRelations(); len(got) != 1 {
		t.Errorf("union bases = %v", got)
	}
	if !strings.Contains(u.String(), "union") {
		t.Errorf("union String = %q", u.String())
	}
}

func TestAggregateStringAndBases(t *testing.T) {
	a := MustAggregate(Scan("R", rSchema), []string{"A"}, []AggSpec{
		{Op: Count, As: "N"},
		{Op: Sum, Attr: "B", As: "S"},
	})
	s := a.String()
	for _, frag := range []string{"agg[", "count as N", "sum(B) as S"} {
		if !strings.Contains(s, frag) {
			t.Errorf("aggregate String = %q missing %q", s, frag)
		}
	}
	if got := a.BaseRelations(); len(got) != 1 || got[0] != "R" {
		t.Errorf("aggregate bases = %v", got)
	}
	ops := map[AggOp]string{Count: "count", Sum: "sum", Min: "min", Max: "max", Avg: "avg"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v != %s", op, want)
		}
	}
	if AggOp(99).String() == "" {
		t.Error("unknown agg op should render")
	}
}

func TestSubstituteUnionAndAggregate(t *testing.T) {
	// Substitute must recurse through union and aggregate nodes.
	u := MustUnionAll(Scan("R", rSchema), Scan("R", rSchema))
	d := relation.InsertDelta(rSchema, relation.T(5, 5))
	sub := Substitute(u, "R", d)
	got, err := EvalSigned(sub, MapDB{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count(relation.T(5, 5)) != 2 {
		t.Errorf("substituted union = %v", got)
	}
	a := MustAggregate(Scan("R", rSchema), []string{"A"}, []AggSpec{{Op: Count, As: "N"}})
	subA := Substitute(a, "R", d)
	if len(subA.BaseRelations()) != 0 {
		t.Errorf("substituted aggregate still reads %v", subA.BaseRelations())
	}
	gotA, err := EvalSigned(subA, MapDB{})
	if err != nil {
		t.Fatal(err)
	}
	if gotA.Count(relation.T(5, 1)) != 1 {
		t.Errorf("substituted aggregate = %v", gotA)
	}
	// Substituting an unrelated base is the identity.
	same := Substitute(Scan("R", rSchema), "Q", d)
	if same.(*ScanExpr).Name() != "R" {
		t.Error("unrelated substitute should keep scan")
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	// Missing relation errors flow through every node type.
	missing := MapDB{}
	exprs := []Expr{
		MustSelect(Scan("R", rSchema), True()),
		MustProject(Scan("R", rSchema), "A"),
		MustJoin(Scan("R", rSchema), Scan("S", sSchema)),
		MustUnionAll(Scan("R", rSchema), Scan("R", rSchema)),
		MustAggregate(Scan("R", rSchema), []string{"A"}, []AggSpec{{Op: Count, As: "N"}}),
	}
	d := relation.InsertDelta(rSchema, relation.T(1, 1))
	for _, e := range exprs {
		if _, err := Eval(e, missing); err == nil {
			t.Errorf("Eval(%s) over empty db should fail", e)
		}
		if _, err := Delta(e, "R", d, missing); err == nil {
			// Join needs the other side's pre-state; select/project/union
			// don't touch the db. Only check the ones that must fail.
			switch e.(type) {
			case *JoinExpr, *AggregateExpr:
				t.Errorf("Delta(%s) over empty db should fail", e)
			}
		}
	}
	// Right-side join delta needs the left side's post-state.
	j := MustJoin(Scan("R", rSchema), Scan("S", sSchema))
	dS := relation.InsertDelta(sSchema, relation.T(1, 1))
	if _, err := Delta(j, "S", dS, missing); err == nil {
		t.Error("right-side delta needs left relation")
	}
}

func TestRenameEvalAndDelta(t *testing.T) {
	emp := relation.MustSchema("ID:int", "Mgr:int")
	db := MapDB{"Emp": relation.FromTuples(emp,
		relation.T(1, 0), // 1 reports to 0
		relation.T(2, 1), // 2 reports to 1
		relation.T(3, 2), // 3 reports to 2
	)}
	// Grand-manager pairs: Emp ⋈ ρ_{ID→Mgr, Mgr→GM}(Emp) joins e.Mgr = m.ID.
	rho := MustRename(Scan("Emp", emp), map[string]string{"ID": "Mgr", "Mgr": "GM"})
	if rho.Schema().String() != "(Mgr:int, GM:int)" {
		t.Fatalf("renamed schema = %s", rho.Schema())
	}
	v := MustJoin(Scan("Emp", emp), rho)
	got := mustEval(t, v, db)
	want := relation.FromTuples(v.Schema(),
		relation.T(2, 1, 0), // 2 → 1 → 0
		relation.T(3, 2, 1), // 3 → 2 → 1
	)
	if !got.Equal(want) {
		t.Errorf("grand-manager view = %v, want %v", got, want)
	}
	// Self-join-through-rename delta correctness: hire 4 under 3.
	checkDelta(t, v, db, "Emp", relation.InsertDelta(emp, relation.T(4, 3)))
	// Fire 2 (both sides of the join affected).
	checkDelta(t, v, db, "Emp", relation.DeleteDelta(emp, relation.T(2, 1)))
}

func TestRenameErrorsAndString(t *testing.T) {
	if _, err := Rename(Scan("R", rSchema), map[string]string{"Z": "Y"}); err == nil {
		t.Error("renaming a missing attribute must fail")
	}
	if _, err := Rename(Scan("R", rSchema), map[string]string{"A": "B"}); err == nil {
		t.Error("colliding rename must fail")
	}
	r := MustRename(Scan("R", rSchema), map[string]string{"A": "X"})
	if !strings.Contains(r.String(), "A→X") {
		t.Errorf("String = %q", r.String())
	}
	if got := r.BaseRelations(); len(got) != 1 || got[0] != "R" {
		t.Errorf("bases = %v", got)
	}
}

func TestRenameSubstituteAndRelevance(t *testing.T) {
	r := MustRename(Scan("R", rSchema), map[string]string{"A": "X"})
	d := relation.InsertDelta(rSchema, relation.T(5, 5))
	sub := Substitute(r, "R", d)
	got, err := EvalSigned(sub, MapDB{})
	if err != nil || got.Count(relation.T(5, 5)) != 1 {
		t.Errorf("substituted rename = %v, %v", got, err)
	}
	// Predicate below the rename still filters base tuples.
	v := MustRename(MustSelect(Scan("R", rSchema), Cmp("A", Eq, 1)), map[string]string{"A": "X"})
	if PossiblyRelevant(v, "R", relation.T(9, 9)) {
		t.Error("pre-rename predicate should discard")
	}
	if !PossiblyRelevant(v, "R", relation.T(1, 9)) {
		t.Error("passing tuple stays relevant")
	}
	// Predicate above the rename is skipped (conservative).
	v2 := MustSelect(r, Cmp("X", Eq, 1))
	if !PossiblyRelevant(v2, "R", relation.T(9, 9)) {
		t.Error("post-rename predicate must not discard")
	}
}
