package expr

import (
	"whips/internal/relation"
)

// PossiblyRelevant reports whether changing tuple t of base relation base
// can possibly change the value of e. It is the irrelevant-update detection
// of Blakeley et al. (paper ref [7]) in conservative form: it returns false
// only when some selection predicate provably rejects every derived tuple
// that t could contribute to.
//
// The check is sound under these conditions, which it verifies itself:
// a Select predicate is used only if every attribute it references belongs
// to base's schema and to no other base relation of e (so the predicate's
// inputs come unambiguously from t and survive the natural-join attribute
// merging).
func PossiblyRelevant(e Expr, base string, t relation.Tuple) bool {
	schemas := map[string]*relation.Schema{}
	collectScans(e, schemas)
	bs, ok := schemas[base]
	if !ok {
		return false // e does not read base at all
	}
	preds := collectPreds(e, base)
	for _, p := range preds {
		if !attrsOnlyFrom(p, base, bs, schemas) {
			continue
		}
		f, err := p.compile(bs)
		if err != nil {
			continue // predicate not evaluable over base alone; stay conservative
		}
		if !f(t) {
			return false
		}
	}
	return true
}

// RelevantDelta filters a base-relation delta down to the tuples that can
// possibly affect e; the integrator uses it so view managers never see
// provably irrelevant changes.
func RelevantDelta(e Expr, base string, d *relation.Delta) *relation.Delta {
	out := relation.NewDelta(d.Schema())
	d.Each(func(t relation.Tuple, n int64) bool {
		if PossiblyRelevant(e, base, t) {
			out.Add(t, n)
		}
		return true
	})
	return out
}

// ScanSchemas returns the schema each base relation is scanned with in e.
func ScanSchemas(e Expr) map[string]*relation.Schema {
	out := make(map[string]*relation.Schema)
	collectScans(e, out)
	return out
}

func collectScans(e Expr, into map[string]*relation.Schema) {
	switch n := e.(type) {
	case *ScanExpr:
		into[n.name] = n.schema
	case *SelectExpr:
		collectScans(n.child, into)
	case *ProjectExpr:
		collectScans(n.child, into)
	case *JoinExpr:
		collectScans(n.left, into)
		collectScans(n.right, into)
	case *UnionAllExpr:
		collectScans(n.left, into)
		collectScans(n.right, into)
	case *AggregateExpr:
		collectScans(n.child, into)
	case *RenameExpr:
		collectScans(n.child, into)
	case *SetOpExpr:
		collectScans(n.left, into)
		collectScans(n.right, into)
	}
}

// collectPreds gathers the predicates of Select nodes whose subtree reads
// base: those are the filters every contribution of a base tuple must pass.
func collectPreds(e Expr, base string) []Pred {
	switch n := e.(type) {
	case *SelectExpr:
		sub := collectPreds(n.child, base)
		if occurrences(n.child, base) > 0 {
			sub = append(sub, n.pred)
		}
		return sub
	case *ProjectExpr:
		return collectPreds(n.child, base)
	case *JoinExpr:
		return append(collectPreds(n.left, base), collectPreds(n.right, base)...)
	case *UnionAllExpr:
		// A tuple of base flows into whichever branches read base; a branch
		// predicate rejecting it does not make it irrelevant to the other
		// branch, so only predicates common to all reading branches would be
		// usable. Stay conservative: use none.
		return nil
	case *AggregateExpr:
		// Any child change can move an aggregate; predicates below the
		// aggregation still apply.
		return collectPreds(n.child, base)
	case *RenameExpr:
		// Predicates below the rename refer to pre-rename names and stay
		// usable; predicates above it won't match the base schema and are
		// skipped by attrsOnlyFrom — conservative and sound.
		return collectPreds(n.child, base)
	default:
		return nil
	}
}

func attrsOnlyFrom(p Pred, base string, bs *relation.Schema, all map[string]*relation.Schema) bool {
	for _, a := range p.Attrs() {
		if !bs.Has(a) {
			return false
		}
		for name, s := range all {
			if name != base && s.Has(a) {
				return false // shared join attribute: value may come from the other side
			}
		}
	}
	return true
}
