package baseline

import (
	"testing"

	"whips/internal/consistency"
	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
	"whips/internal/sim"
	"whips/internal/source"
	"whips/internal/warehouse"
	"whips/internal/workload"
)

func buildBaseline(t *testing.T, delay func(int) int64) (*Sequential, *source.Cluster, *warehouse.Warehouse, map[msg.ViewID]expr.Expr) {
	t.Helper()
	c := source.NewCluster(nil)
	for _, s := range workload.PaperSources() {
		c.AddSource(s.ID)
		for name, rel := range s.Relations {
			if err := c.LoadRelation(s.ID, name, rel); err != nil {
				t.Fatal(err)
			}
		}
	}
	defs := workload.PaperViews(0)
	views := make([]View, len(defs))
	exprs := make(map[msg.ViewID]expr.Expr)
	initial := make(map[msg.ViewID]*relation.Relation)
	for i, d := range defs {
		views[i] = View{ID: d.ID, Expr: d.Expr, ComputeDelay: delay}
		exprs[d.ID] = d.Expr
		v, err := expr.Eval(d.Expr, c.DatabaseAt(0))
		if err != nil {
			t.Fatal(err)
		}
		initial[d.ID] = v
	}
	integ, err := New(views, c.DatabaseAt(0))
	if err != nil {
		t.Fatal(err)
	}
	wh := warehouse.New(initial, warehouse.WithStateLog())
	return integ, c, wh, exprs
}

func TestBaselineSequentialProcessing(t *testing.T) {
	integ, c, wh, exprs := buildBaseline(t, nil)
	s := sim.New([]msg.Node{source.NewNode(c), integ, wh}, sim.ConstantLatency(1000))
	gen := workload.NewGenerator(11, workload.PaperSources())
	for i := 0; i < 40; i++ {
		src, writes := gen.Txn()
		s.InjectAt(int64(i)*500, msg.NodeCluster, msg.ExecuteTxn{Source: src, Writes: writes})
	}
	s.Run()
	rep, err := consistency.Check(c, exprs, wh.Log())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Errorf("baseline must be complete under MVC: %+v (%s)", rep, rep.Violation)
	}
	if integ.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", integ.QueueLen())
	}
}

func TestBaselineOneTxnPerAffectingUpdate(t *testing.T) {
	integ, c, wh, _ := buildBaseline(t, nil)
	s := sim.New([]msg.Node{source.NewNode(c), integ, wh}, nil)
	// One S update (affects both views), one R update (affects V1).
	s.InjectAt(0, msg.NodeCluster, msg.ExecuteTxn{Source: "src1", Writes: []msg.Write{{
		Relation: "S", Delta: relation.InsertDelta(workload.SSchema, relation.T(2, 3)),
	}}})
	s.InjectAt(1, msg.NodeCluster, msg.ExecuteTxn{Source: "src1", Writes: []msg.Write{{
		Relation: "R", Delta: relation.InsertDelta(workload.RSchema, relation.T(7, 2)),
	}}})
	s.Run()
	if got := wh.Applied(); got != 2 {
		t.Errorf("applied = %d, want 2", got)
	}
	log := wh.Log()
	// The first txn writes both views, atomically.
	if len(log[1].Rows) != 1 || log[1].Rows[0] != 1 {
		t.Errorf("txn rows = %v", log[1].Rows)
	}
}

func TestBaselineComputeDelaySerializes(t *testing.T) {
	// With a 1ms per-view delay and two views per update, each update's
	// computation takes 2ms sequentially — the baseline's defining cost.
	integ, c, wh, _ := buildBaseline(t, func(int) int64 { return 1_000_000 })
	s := sim.New([]msg.Node{source.NewNode(c), integ, wh}, nil)
	for i := 0; i < 3; i++ {
		s.InjectAt(int64(i), msg.NodeCluster, msg.ExecuteTxn{Source: "src1", Writes: []msg.Write{{
			Relation: "S", Delta: relation.InsertDelta(workload.SSchema, relation.T(i, i)),
		}}})
	}
	end := s.Run()
	if end < 6_000_000 {
		t.Errorf("3 updates × 2 views × 1ms should take ≥6ms, took %dns", end)
	}
	if wh.Applied() != 3 {
		t.Errorf("applied = %d", wh.Applied())
	}
}

func TestBaselineIgnoresIrrelevantUpdates(t *testing.T) {
	integ, c, wh, _ := buildBaseline(t, nil)
	// Add an extra relation no view reads.
	_ = c // cluster already built; inject an update for an unknown-to-views relation
	s := sim.New([]msg.Node{source.NewNode(c), integ, wh}, nil)
	// T update only affects V2; both views exist — use an R-only update and
	// verify only V1 advances.
	s.InjectAt(0, msg.NodeCluster, msg.ExecuteTxn{Source: "src2", Writes: []msg.Write{{
		Relation: "T", Delta: relation.InsertDelta(workload.TSchema, relation.T(9, 9)),
	}}})
	s.Run()
	if wh.Applied() != 1 {
		t.Fatalf("applied = %d", wh.Applied())
	}
	upto := wh.Upto()
	if upto["V2"] != 1 || upto["V1"] != 0 {
		t.Errorf("upto = %v", upto)
	}
}

func TestBaselineErrors(t *testing.T) {
	if _, err := New([]View{{ID: "V", Expr: expr.Scan("Ghost", workload.RSchema)}}, expr.MapDB{}); err == nil {
		t.Error("missing base relation must fail")
	}
	integ, _, _, _ := buildBaseline(t, nil)
	if out := integ.Handle("garbage", 0); out != nil {
		t.Errorf("garbage produced %v", out)
	}
	if _, err := integ.Relation("nope"); err == nil {
		t.Error("unknown replica must fail")
	}
}
