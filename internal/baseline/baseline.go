// Package baseline implements the §1.1 "simplest solution to the MVC
// problem": a single integrator process that handles updates sequentially —
// for each update it computes the changes to all affected views, submits
// one warehouse transaction, waits for the commit, and only then moves on.
// It is trivially correct (complete MVC) and is the comparison point the
// paper's concurrent architecture beats: it allows no concurrency at all,
// so per-update costs add up across views and updates queue behind the
// warehouse round trip.
package baseline

import (
	"fmt"
	"sort"

	"whips/internal/expr"
	"whips/internal/msg"
	"whips/internal/relation"
)

// View declares one view maintained by the sequential integrator.
type View struct {
	ID   msg.ViewID
	Expr expr.Expr
	// ComputeDelay models the per-batch delta computation cost, exactly as
	// viewmgr.Config.ComputeDelay does for the concurrent managers.
	ComputeDelay func(updates int) int64
}

// Sequential is the single-process integrator. It implements msg.Node with
// id "integrator" so it can replace the whole concurrent middle tier in a
// system assembly.
type Sequential struct {
	views    []View
	replicas map[string]*relation.Relation
	byRel    map[string][]int

	queue    []msg.Update
	inflight bool
	nextTxn  msg.TxnID
}

type workDone struct {
	txn msg.WarehouseTxn
}

// New builds the baseline over the views, seeding base-relation replicas
// from init (state 0).
func New(views []View, init expr.Database) (*Sequential, error) {
	s := &Sequential{
		views:    append([]View(nil), views...),
		replicas: make(map[string]*relation.Relation),
		byRel:    make(map[string][]int),
	}
	for vi, v := range s.views {
		for _, rel := range v.Expr.BaseRelations() {
			s.byRel[rel] = append(s.byRel[rel], vi)
			if _, ok := s.replicas[rel]; !ok {
				r, err := init.Relation(rel)
				if err != nil {
					return nil, fmt.Errorf("baseline: seeding %q: %w", rel, err)
				}
				s.replicas[rel] = r.Clone()
			}
		}
	}
	return s, nil
}

// ID implements msg.Node.
func (s *Sequential) ID() string { return msg.NodeIntegrator }

// Relation implements expr.Database over the replicas.
func (s *Sequential) Relation(name string) (*relation.Relation, error) {
	r, ok := s.replicas[name]
	if !ok {
		return nil, fmt.Errorf("baseline: no replica of %q", name)
	}
	return r, nil
}

// Handle implements msg.Node.
func (s *Sequential) Handle(m any, now int64) []msg.Outbound {
	switch t := m.(type) {
	case msg.Update:
		s.queue = append(s.queue, t)
		if s.inflight {
			return nil
		}
		return s.next()
	case workDone:
		// Delta computation finished; submit the transaction and wait for
		// the warehouse round trip.
		return []msg.Outbound{msg.Send(msg.NodeWarehouse, msg.SubmitTxn{Txn: t.txn, From: s.ID()})}
	case msg.CommitAck:
		s.inflight = false
		return s.next()
	default:
		return nil
	}
}

// next processes the head-of-queue update: sequentially computes every
// affected view's delta, then models the summed computation cost as a
// busy period before submission.
func (s *Sequential) next() []msg.Outbound {
	if len(s.queue) == 0 {
		return nil
	}
	u := s.queue[0]
	s.queue = s.queue[1:]
	s.inflight = true

	affected := map[int]bool{}
	for _, w := range u.Writes {
		for _, vi := range s.byRel[w.Relation] {
			affected[vi] = true
		}
	}
	vis := make([]int, 0, len(affected))
	for vi := range affected {
		vis = append(vis, vi)
	}
	sort.Ints(vis)

	s.nextTxn++
	txn := msg.WarehouseTxn{
		ID:       s.nextTxn,
		Rows:     []msg.UpdateID{u.Seq},
		CommitAt: u.CommitAt,
	}
	var totalDelay int64
	for _, vi := range vis {
		v := s.views[vi]
		d, err := expr.DeltaWrites(v.Expr, msg.ExprWrites(u.Writes), s)
		if err != nil {
			panic(fmt.Sprintf("baseline: delta of %s at update %d: %v", v.ID, u.Seq, err))
		}
		txn.Writes = append(txn.Writes, msg.ViewWrite{View: v.ID, Upto: u.Seq, Delta: d})
		if v.ComputeDelay != nil {
			totalDelay += v.ComputeDelay(1) // sequential: costs add
		}
	}
	for _, w := range u.Writes {
		if r, ok := s.replicas[w.Relation]; ok {
			if err := r.Apply(w.Delta); err != nil {
				panic(fmt.Sprintf("baseline: replica diverged at update %d: %v", u.Seq, err))
			}
		}
	}
	if len(txn.Writes) == 0 {
		// Nothing affected: no warehouse round trip needed.
		s.inflight = false
		return s.next()
	}
	if totalDelay > 0 {
		return []msg.Outbound{{To: s.ID(), Msg: workDone{txn: txn}, Delay: totalDelay}}
	}
	return []msg.Outbound{msg.Send(msg.NodeWarehouse, msg.SubmitTxn{Txn: txn, From: s.ID()})}
}

// QueueLen reports the backlog (observability for the bottleneck study).
func (s *Sequential) QueueLen() int { return len(s.queue) }
