// HTTP debug surface: /metrics (Prometheus text), /metrics.json and
// /debug/vars (expvar JSON), /healthz, /debug/vut (live ViewUpdateTable
// snapshot supplied by the host binary), and net/http/pprof.
package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// DebugServer configures NewDebugMux.
type DebugServer struct {
	Reg  *Registry
	Role string
	// VUT returns JSON-marshalable snapshots of the live ViewUpdateTables,
	// one per merge process. Nil disables /debug/vut.
	VUT func() any
	// Health, when set, supplies /healthz's status. ok=false (for example
	// while WAL replay is in progress) serves HTTP 503 so load balancers
	// hold traffic until recovery finishes; status is reported either way.
	Health func() (status string, ok bool)
	// Query, when set, serves /query — the host binary supplies a handler
	// that evaluates ad-hoc queries against its warehouse snapshots.
	Query http.HandlerFunc
	// Trace, when set, serves /trace: the node's retained trace events as
	// {"events":[...],"next":N}, with ?since=N for incremental polling.
	Trace *RingSink
	// Fingerprint, when set, serves /fingerprint — the host binary supplies
	// a handler returning the served snapshot's consistency fingerprint
	// (per-view, for witness minimization), with ?epoch=N for history.
	Fingerprint http.HandlerFunc
	// ReplStatus, when set, serves /replstatus — the node's replication
	// role, term, epoch, and upstream (repl.PeerStatus JSON), which the
	// failover coordinator polls to elect and mvcstat renders as the
	// fleet's replica topology.
	ReplStatus http.HandlerFunc

	start time.Time
}

var expvarOnce sync.Once

// NewDebugMux builds the debug handler tree. Safe to call more than once
// per process: the expvar publication of the registry is done once, with
// whichever registry came first (binaries run one registry per process).
func NewDebugMux(cfg DebugServer) *http.ServeMux {
	cfg.start = time.Now()
	expvarOnce.Do(func() {
		reg := cfg.Reg
		expvar.Publish("whips", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cfg.Reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status, ok := "serving", true
		if cfg.Health != nil {
			status, ok = cfg.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"ok":        ok,
			"status":    status,
			"role":      cfg.Role,
			"uptime_ns": time.Since(cfg.start).Nanoseconds(),
		})
	})
	if cfg.Query != nil {
		mux.HandleFunc("/query", cfg.Query)
	}
	if cfg.Trace != nil {
		ring := cfg.Trace
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			var since int64
			if v := r.URL.Query().Get("since"); v != "" {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					http.Error(w, "bad since", http.StatusBadRequest)
					return
				}
				since = n
			}
			events, next := ring.Since(since)
			if events == nil {
				events = []Event{}
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"events": events,
				"next":   next,
			})
		})
	}
	if cfg.Fingerprint != nil {
		mux.HandleFunc("/fingerprint", cfg.Fingerprint)
	}
	if cfg.ReplStatus != nil {
		mux.HandleFunc("/replstatus", cfg.ReplStatus)
	}
	if cfg.VUT != nil {
		mux.HandleFunc("/debug/vut", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(cfg.VUT())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug listens on addr and serves the debug mux in a background
// goroutine, returning the server for shutdown. An empty addr is a no-op.
func ServeDebug(addr string, cfg DebugServer) (*http.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv := &http.Server{Addr: addr, Handler: NewDebugMux(cfg)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
