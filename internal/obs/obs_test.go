package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// --- instruments under concurrency (run with -race) -----------------------

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	g := r.Gauge("depth")
	h := r.Histogram("lat_ns", LatencyBuckets())

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(int64(i))
				g.SetMax(int64(w*per + i))
				h.Observe(int64(i) * 1_000)
			}
		}()
	}
	// Snapshot and render concurrently with the writers: must not race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			r.WritePrometheus(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	hs := h.Snapshot()
	if hs.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", hs.Count, workers*per)
	}
	if hs.Max != (per-1)*1_000 {
		t.Errorf("histogram max = %d, want %d", hs.Max, (per-1)*1_000)
	}
}

// --- registry identity and snapshot determinism ---------------------------

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "view", "V1")
	b := r.Counter("x_total", "view", "V1")
	if a != b {
		t.Fatal("same name+labels must resolve to the same counter")
	}
	if r.Counter("x_total", "view", "V2") == a {
		t.Fatal("different labels must resolve to a different counter")
	}
	a.Add(3)
	r.Gauge("g").Set(7)
	r.Histogram("h", SizeBuckets()).Observe(5)

	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Error("back-to-back snapshots differ")
	}
	if s1.Counters[`x_total{view="V1"}`] != 3 {
		t.Errorf("snapshot counters = %v", s1.Counters)
	}
	// Snapshot must round-trip through JSON (the /metrics.json path).
	if _, err := json.Marshal(s1); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var p *Pipeline
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	g.Add(3)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read zero")
	}
	if p.Tracing() {
		t.Error("nil pipeline must not trace")
	}
	p.Trace(Event{Stage: StageCommit})
	if p.Reg() != nil {
		t.Error("nil pipeline registry must be nil (instruments stay nil-safe)")
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	hist := r.Histogram("d", []int64{10, 100, 1000})
	for _, v := range []int64{5, 15, 15, 500, 2000} {
		hist.Observe(v)
	}
	s := hist.Snapshot()
	if s.Count != 5 || s.Sum != 2535 || s.Max != 2000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if m := s.Mean(); m != 507 {
		t.Errorf("mean = %d", m)
	}
	if q := s.Quantile(0); q > 10 {
		t.Errorf("q0 = %d, want within first bucket", q)
	}
	if q := s.Quantile(1); q < 1000 {
		t.Errorf("q1 = %d, want in overflow bucket", q)
	}
}

// --- Prometheus text rendering --------------------------------------------

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "view", "V1").Add(2)
	r.Counter("reqs_total", "view", "V2").Add(4)
	r.Gauge("live").Set(11)
	h := r.Histogram("lat", []int64{100, 200})
	h.Observe(50)
	h.Observe(150)
	h.Observe(999)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{view="V1"} 2`,
		`reqs_total{view="V2"} 4`,
		"# TYPE live gauge",
		"live 11",
		"# TYPE lat histogram",
		`lat_bucket{le="100"} 1`,
		`lat_bucket{le="200"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 1199",
		"lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The TYPE line for a family must appear exactly once even with
	// multiple label sets.
	if n := strings.Count(out, "# TYPE reqs_total"); n != 1 {
		t.Errorf("TYPE reqs_total appears %d times", n)
	}
}

// --- tracing ---------------------------------------------------------------

func TestTracerSinksAndChains(t *testing.T) {
	var buf bytes.Buffer
	mem := &MemorySink{}
	tr := NewTracer(JSONLSink(&buf), mem.Sink())
	evs := []Event{
		{TS: 10, Node: "cluster", Stage: StageCommit, Seq: 1, N: 2},
		{TS: 12, Node: "integrator", Stage: StageRoute, Seq: 1, Views: []string{"V1"}},
		{TS: 13, Node: "merge:0", Stage: StageREL, Seq: 1},
		{TS: 14, Node: "vm:V1", Stage: StageAL, Seq: 1, View: "V1"},
		{TS: 15, Node: "merge:0", Stage: StageALRecv, Seq: 1, View: "V1"},
		{TS: 20, Node: "merge:0", Stage: StageSubmit, Txn: 1, Rows: []int64{1}},
		{TS: 30, Node: "warehouse", Stage: StageWHCommit, Txn: 1, Rows: []int64{1}},
	}
	for _, e := range evs {
		tr.Emit(e)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(evs) {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), len(evs))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Stage != StageCommit || first.Seq != 1 {
		t.Errorf("first JSONL event = %+v", first)
	}

	chains := Chains(mem.Events())
	if len(chains[1]) != len(evs) {
		t.Fatalf("chain for seq 1 has %d events, want %d", len(chains[1]), len(evs))
	}

	spans := EndToEnd(mem.Events())
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	sp := spans[0]
	if !sp.Complete || sp.CommitTS != 10 || sp.AppliedTS != 30 || sp.Freshness != 20 {
		t.Errorf("span = %+v", sp)
	}
	sum := Summarize(spans)
	if sum.Updates != 1 || sum.Complete != 1 || sum.Mean != 20 || sum.Max != 20 {
		t.Errorf("summary = %+v", sum)
	}
	if !strings.Contains(sum.String(), "1 complete chains") {
		t.Errorf("summary string = %q", sum.String())
	}
}

func TestEndToEndIncomplete(t *testing.T) {
	// An update that never reaches the warehouse: span present, not
	// complete, no applied timestamp.
	spans := EndToEnd([]Event{
		{TS: 1, Stage: StageCommit, Seq: 7},
		{TS: 2, Stage: StageRoute, Seq: 7},
	})
	if len(spans) != 1 || spans[0].Complete || spans[0].AppliedTS >= 0 {
		t.Fatalf("spans = %+v", spans)
	}
	sum := Summarize(spans)
	if sum.Updates != 1 || sum.Complete != 0 || sum.Mean != 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestFullNamePanicsOnOddLabels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list must panic")
		}
	}()
	NewRegistry().Counter("x", "k")
}
