package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRingSinkSince(t *testing.T) {
	r := NewRingSink(3)
	sink := r.Sink()
	for i := 1; i <= 5; i++ {
		sink(Event{Seq: int64(i)})
	}
	// Capacity 3, 5 appended: retention is [2,5); a stale cursor clamps.
	events, next := r.Since(0)
	if next != 5 || len(events) != 3 || events[0].Seq != 3 || events[2].Seq != 5 {
		t.Fatalf("Since(0) = %d events next=%d (first=%v)", len(events), next, events)
	}
	// A caught-up cursor yields nothing and keeps its position.
	if events, next = r.Since(5); len(events) != 0 || next != 5 {
		t.Fatalf("Since(5) = %d events next=%d, want 0/5", len(events), next)
	}
	sink(Event{Seq: 6})
	if events, next = r.Since(5); len(events) != 1 || events[0].Seq != 6 || next != 6 {
		t.Fatalf("incremental poll = %v next=%d", events, next)
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d, want 6", r.Total())
	}
}

// TestCollectorAggregatesStreams is the cross-process collection path under
// -race: several remote sinks ship concurrently into one collector, and
// every event must arrive exactly once.
func TestCollectorAggregatesStreams(t *testing.T) {
	ring := NewRingSink(4096)
	c, err := NewCollector("127.0.0.1:0", ring.Sink())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const senders, perSender = 4, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rs := NewRemoteSink(c.Addr(), 256)
			defer rs.Close()
			sink := rs.Sink()
			for i := 0; i < perSender; i++ {
				sink(Event{Node: "n", Stage: StageCommit, Seq: int64(s*perSender + i + 1)})
			}
			// The shipper drains asynchronously; wait for it before Close.
			deadline := time.Now().Add(5 * time.Second)
			for c.Received() < senders*perSender && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}(s)
	}
	wg.Wait()
	if got := c.Received(); got != senders*perSender {
		t.Fatalf("collector received %d events, want %d (dropped?)", got, senders*perSender)
	}
	events, _ := ring.Since(0)
	seen := map[int64]bool{}
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("seq %d delivered twice", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(seen) != senders*perSender {
		t.Fatalf("ring holds %d distinct seqs, want %d", len(seen), senders*perSender)
	}
}

// TestRemoteSinkNeverBlocks: with no collector listening, emitting far more
// events than the buffer holds must neither block nor panic — tracing can
// only ever drop, not stall the pipeline.
func TestRemoteSinkNeverBlocks(t *testing.T) {
	rs := NewRemoteSink("127.0.0.1:1", 16) // nothing listens on port 1
	sink := rs.Sink()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10_000; i++ {
			sink(Event{Seq: int64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("emitting with an unreachable collector blocked")
	}
	rs.Close()
	if rs.Dropped() == 0 {
		t.Fatal("unreachable collector dropped nothing")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.GaugeFunc("age_ms", func() int64 { return v }, "follower", "f0")
	if got := r.Snapshot().Gauges[`age_ms{follower="f0"}`]; got != 7 {
		t.Fatalf("computed gauge = %d, want 7", got)
	}
	v = 42 // evaluated at scrape, not registration
	if got := r.Snapshot().Gauges[`age_ms{follower="f0"}`]; got != 42 {
		t.Fatalf("computed gauge after change = %d, want 42", got)
	}
}
