// Trace collection across process boundaries: a Collector accepts TCP
// connections carrying one JSON trace event per line (the JSONLSink wire
// format) and fans the decoded events into local sinks, and a RemoteSink
// is the client half — a tracer sink that streams a node's events to a
// collector address, reconnecting with backoff and dropping events rather
// than ever blocking the pipeline.
package obs

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
	"time"
)

// Collector is a TCP server aggregating JSONL trace streams from many
// nodes into local sinks.
type Collector struct {
	ln    net.Listener
	sinks []func(Event)

	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	received int64

	wg sync.WaitGroup
}

// NewCollector listens on addr (host:port, ":0" for ephemeral) and decodes
// incoming event lines into the given sinks. Malformed lines are skipped.
func NewCollector(addr string, sinks ...func(Event)) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Collector{ln: ln, sinks: sinks, conns: map[net.Conn]struct{}{}}
	c.wg.Add(1)
	go c.serve()
	return c, nil
}

// Addr returns the bound listen address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Received returns the number of events decoded so far.
func (c *Collector) Received() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.received
}

// Close stops accepting, closes every live connection and waits for the
// handler goroutines to drain.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for conn := range c.conns {
		_ = conn.Close()
	}
	c.mu.Unlock()
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

func (c *Collector) serve() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.handle(conn)
	}
}

func (c *Collector) handle(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
		_ = conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		c.mu.Lock()
		c.received++
		c.mu.Unlock()
		for _, s := range c.sinks {
			s(e)
		}
	}
}

// RemoteSink streams trace events to a Collector address. Events are
// buffered in a bounded channel and shipped by a background goroutine that
// dials lazily and reconnects with backoff; when the buffer is full or the
// collector is unreachable, events are dropped (Dropped counts them) —
// tracing must never block or slow the pipeline.
type RemoteSink struct {
	addr string
	ch   chan Event
	done chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	nDrop int64
}

// NewRemoteSink builds a sink shipping to addr with the given buffer size
// (minimum 16).
func NewRemoteSink(addr string, buffer int) *RemoteSink {
	if buffer < 16 {
		buffer = 16
	}
	r := &RemoteSink{addr: addr, ch: make(chan Event, buffer), done: make(chan struct{})}
	r.wg.Add(1)
	go r.run()
	return r
}

// Sink returns the function to register with NewTracer.
func (r *RemoteSink) Sink() func(Event) {
	return func(e Event) {
		select {
		case r.ch <- e:
		default:
			r.mu.Lock()
			r.nDrop++
			r.mu.Unlock()
		}
	}
}

// Dropped returns how many events were discarded (buffer full or send
// failure mid-flight).
func (r *RemoteSink) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nDrop
}

// Close stops the shipper goroutine after draining what it can.
func (r *RemoteSink) Close() {
	close(r.done)
	r.wg.Wait()
}

func (r *RemoteSink) run() {
	defer r.wg.Done()
	var conn net.Conn
	var enc *json.Encoder
	backoff := 50 * time.Millisecond
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		var e Event
		select {
		case <-r.done:
			return
		case e = <-r.ch:
		}
		if conn == nil {
			c, err := net.DialTimeout("tcp", r.addr, time.Second)
			if err != nil {
				r.mu.Lock()
				r.nDrop++
				r.mu.Unlock()
				select {
				case <-r.done:
					return
				case <-time.After(backoff):
				}
				if backoff < 2*time.Second {
					backoff *= 2
				}
				continue
			}
			conn, enc = c, json.NewEncoder(c)
			backoff = 50 * time.Millisecond
		}
		_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
		if err := enc.Encode(e); err != nil {
			_ = conn.Close()
			conn, enc = nil, nil
			r.mu.Lock()
			r.nDrop++
			r.mu.Unlock()
		}
	}
}
