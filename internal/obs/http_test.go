package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestHealthzRecovering checks /healthz serves 503 + "recovering" while
// the host reports recovery in progress, and flips to 200 after.
func TestHealthzRecovering(t *testing.T) {
	var recovering atomic.Bool
	recovering.Store(true)
	mux := NewDebugMux(DebugServer{
		Reg:  NewRegistry(),
		Role: "warehouse",
		Health: func() (string, bool) {
			if recovering.Load() {
				return "recovering", false
			}
			return "serving", true
		},
	})

	get := func() (int, map[string]any) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return rec.Code, body
	}

	code, body := get()
	if code != 503 {
		t.Fatalf("recovering healthz code = %d, want 503", code)
	}
	if body["status"] != "recovering" || body["ok"] != false {
		t.Fatalf("recovering healthz body = %v", body)
	}

	recovering.Store(false)
	code, body = get()
	if code != 200 {
		t.Fatalf("healthy healthz code = %d, want 200", code)
	}
	if body["status"] != "serving" || body["ok"] != true {
		t.Fatalf("healthy healthz body = %v", body)
	}
}

// TestHealthzDefault keeps the no-hook behavior: 200 and ok=true.
func TestHealthzDefault(t *testing.T) {
	mux := NewDebugMux(DebugServer{Reg: NewRegistry(), Role: "x"})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz code = %d, want 200", rec.Code)
	}
}
