// Package obs is the zero-dependency observability layer for the WHIPS
// pipeline: counters, gauges and fixed-bucket histograms collected in a
// snapshot-able Registry, plus a structured trace sink (trace.go) keyed by
// the causal trace ID every protocol message already carries — the global
// update sequence number.
//
// Everything is built for unconditional instrumentation: all instrument
// methods are safe on nil receivers, so pipeline components can hold nil
// handles when observability is off and still call Inc/Observe on hot
// paths without branching. A nil *Registry returns nil instruments and a
// nil *Pipeline drops trace events, making the whole layer a no-op unless
// a driver opts in.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// SetMax raises the gauge to n if n is larger — a high-water mark.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= bounds[i] (and > bounds[i-1]); one extra
// overflow bucket counts v > bounds[len-1]. Observations are lock-free.
type Histogram struct {
	family string
	labels string // rendered label pairs without the le label, may be ""
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf
	sum    atomic.Int64
	count  atomic.Int64
	max    atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot returns a consistent-enough copy for reporting. (Individual
// fields are read atomically; the histogram keeps filling concurrently.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last bucket is +Inf
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
	Max    int64   `json:"max"`
}

// Mean returns the average observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the containing bucket. The overflow bucket reports Max.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		if seen+c < rank {
			seen += c
			continue
		}
		if i == len(s.Bounds) { // overflow bucket
			return s.Max
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-seen)/c
	}
	return s.Max
}

// LatencyBuckets are nanosecond bounds spanning 1µs..10s, suitable for
// every latency metric in the pipeline (virtual sim time uses the same
// int64 scale, so the buckets degrade gracefully there too).
func LatencyBuckets() []int64 {
	return []int64{
		1_000, 10_000, 100_000, 500_000, // 1µs..500µs
		1_000_000, 5_000_000, 10_000_000, 50_000_000, // 1ms..50ms
		100_000_000, 500_000_000, 1_000_000_000, 10_000_000_000, // 100ms..10s
	}
}

// SizeBuckets are count-valued bounds for batch sizes, fan-outs, txn
// write-sets and queue depths.
func SizeBuckets() []int64 {
	return []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
}

// Registry holds named instruments. Get-or-create lookups take a mutex;
// components should resolve handles once at construction and use the
// lock-free instruments on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// fullName renders name{k="v",...} from alternating key,value pairs.
func fullName(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %q: %v", name, labels))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the named counter, creating it on first use. Labels are
// alternating key,value pairs baked into the metric identity. Nil-safe:
// a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time by
// calling fn — for values like "age since last apply" that would go stale
// in a stored gauge. Re-registering the same name replaces the function.
// Nil-safe: a nil registry ignores the registration. fn must be safe to
// call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	key := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[key] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Bounds must be sorted ascending.
func (r *Registry) Histogram(name string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{
			family: name,
			labels: strings.TrimSuffix(strings.TrimPrefix(key[len(name):], "{"), "}"),
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[key] = h
	}
	return h
}

// Snapshot is a deterministic (sorted-key) copy of every instrument.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies all instruments. Map iteration order is irrelevant to
// determinism: consumers (JSON marshal, WritePrometheus) sort keys.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		gaugeFns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, fn := range gaugeFns {
		s.Gauges[k] = fn()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Counter keys already carrying {label="..."} pairs render as-is;
// histograms get cumulative _bucket{le="..."} series plus _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	typed := map[string]string{}
	famOf := func(key string) string {
		if i := strings.IndexByte(key, '{'); i >= 0 {
			return key[:i]
		}
		return key
	}
	writeType := func(fam, typ string) {
		if typed[fam] == "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
			typed[fam] = typ
		}
	}
	for _, key := range sortedKeys(s.Counters) {
		writeType(famOf(key), "counter")
		fmt.Fprintf(w, "%s %d\n", key, s.Counters[key])
	}
	for _, key := range sortedKeys(s.Gauges) {
		writeType(famOf(key), "gauge")
		fmt.Fprintf(w, "%s %d\n", key, s.Gauges[key])
	}
	for _, key := range sortedKeys(s.Histograms) {
		fam := famOf(key)
		labels := strings.TrimSuffix(strings.TrimPrefix(key[len(fam):], "{"), "}")
		writeType(fam, "histogram")
		hs := s.Histograms[key]
		var cum int64
		series := func(le string, n int64) {
			if labels == "" {
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fam, le, n)
			} else {
				fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", fam, labels, le, n)
			}
		}
		for i, b := range hs.Bounds {
			cum += hs.Counts[i]
			series(fmt.Sprintf("%d", b), cum)
		}
		if len(hs.Counts) > 0 {
			cum += hs.Counts[len(hs.Counts)-1]
		}
		series("+Inf", cum)
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", fam, suffix, hs.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, hs.Count)
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pipeline bundles the metrics registry and the trace sink handed to every
// pipeline component. A nil *Pipeline is fully inert.
type Pipeline struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewPipeline builds a pipeline with a fresh registry and no tracer.
func NewPipeline() *Pipeline { return &Pipeline{Registry: NewRegistry()} }

// Reg returns the registry (nil when the pipeline is nil).
func (p *Pipeline) Reg() *Registry {
	if p == nil {
		return nil
	}
	return p.Registry
}

// Tracing reports whether trace events should be constructed at all —
// callers guard Event literals with it to keep the off path allocation
// free.
func (p *Pipeline) Tracing() bool {
	return p != nil && p.Tracer != nil && p.Tracer.enabled()
}

// Trace emits one event; inert on a nil pipeline or absent tracer.
func (p *Pipeline) Trace(e Event) {
	if p == nil {
		return
	}
	p.Tracer.Emit(e)
}
