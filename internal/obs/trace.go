// Structured update tracing. Every protocol message in the pipeline
// already carries the global source-commit sequence number (msg.UpdateID),
// which doubles as the causal trace ID: each lifecycle stage emits one
// Event stamped with it, and an offline pass (Chains, EndToEnd) rebuilds a
// per-update journey source → integrator → view manager → merge →
// warehouse and computes end-to-end freshness on live runs.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Stage names, in causal order along the pipeline. A single update's
// complete chain visits every one of these at least once (an update
// relevant to no view stops after "route").
const (
	StageCommit      = "commit"     // source cluster committed the transaction
	StageRoute       = "route"      // integrator fanned the REL out
	StageAL          = "al"         // view manager emitted an action list
	StageREL         = "rel"        // merge received the relevant set (VUT row born)
	StageALRecv      = "al_recv"    // merge received an action list
	StageSubmit      = "submit"     // merge submitted VUT rows as a warehouse txn
	StageWHCommit    = "wh_commit"  // warehouse atomically applied the txn
	StageReplPublish = "repl_pub"   // warehouse recorded the epoch for replication
	StageReplApply   = "repl_apply" // a follower replica applied the epoch
	StageReplSnap    = "repl_snap"  // a follower installed a full checkpoint
)

// stageRank orders stages causally within one hop for sorting span chains;
// unknown stages sort last.
func stageRank(stage string) int {
	switch stage {
	case StageCommit:
		return 0
	case StageRoute:
		return 1
	case StageAL:
		return 2
	case StageREL:
		return 3
	case StageALRecv:
		return 4
	case StageSubmit:
		return 5
	case StageWHCommit:
		return 6
	case StageReplPublish:
		return 7
	case StageReplSnap:
		return 8
	case StageReplApply:
		return 9
	default:
		return 100
	}
}

// TraceCtx is the compact causal context carried inside wire frames so a
// span chain survives process hops. Origin and Seq identify the source
// commit the downstream work descends from; Hop counts process/stage hops
// since the commit, so events can be causally ordered even when the
// emitting nodes' clocks disagree. CommitTS is the origin's commit stamp
// and SentAt the sender's clock at the last hop — both only comparable
// within one clock domain.
type TraceCtx struct {
	Origin   string `json:"origin"`
	Seq      int64  `json:"seq"`
	Hop      int64  `json:"hop"`
	CommitTS int64  `json:"commit_ts"`
	SentAt   int64  `json:"sent_at"`
}

// Next returns a copy advanced one hop, stamped with the sender's clock.
// Nil-safe: forwarding a nil context yields nil.
func (c *TraceCtx) Next(now int64) *TraceCtx {
	if c == nil {
		return nil
	}
	n := *c
	n.Hop++
	n.SentAt = now
	return &n
}

// Event is one trace record. Seq carries the causal trace ID where a
// single update is concerned; Rows carries the full set of update IDs for
// batch-scoped stages (submit, wh_commit). TS is the emitting node's
// clock (time.Now().UnixNano() under internal/runtime, virtual time under
// internal/sim), so cross-stage deltas are only meaningful within one
// clock domain.
type Event struct {
	TS     int64    `json:"ts"`
	Node   string   `json:"node"`
	Stage  string   `json:"stage"`
	Seq    int64    `json:"seq,omitempty"`
	View   string   `json:"view,omitempty"`
	From   int64    `json:"from,omitempty"`
	Upto   int64    `json:"upto,omitempty"`
	Txn    int64    `json:"txn,omitempty"`
	Rows   []int64  `json:"rows,omitempty"`
	Views  []string `json:"views,omitempty"`
	N      int64    `json:"n,omitempty"`      // stage-specific size (writes, delta tuples, batch len)
	Origin string   `json:"origin,omitempty"` // TraceCtx: node that committed the source update
	Hop    int64    `json:"hop,omitempty"`    // TraceCtx: hops since the source commit
	Epoch  int64    `json:"epoch,omitempty"`  // warehouse/replica epoch (replication stages)
}

// Ctx stamps the event with a trace context's origin and hop. Nil-safe;
// returns the event for literal-style chaining.
func (e Event) Ctx(c *TraceCtx) Event {
	if c != nil {
		e.Origin = c.Origin
		e.Hop = c.Hop
	}
	return e
}

// Tracer serializes events to one or more sinks. Emit takes a mutex —
// tracing is a debugging tool, not a hot-path facility.
type Tracer struct {
	mu    sync.Mutex
	sinks []func(Event)
}

// NewTracer builds a tracer fanning out to the given sinks.
func NewTracer(sinks ...func(Event)) *Tracer { return &Tracer{sinks: sinks} }

func (t *Tracer) enabled() bool { return t != nil && len(t.sinks) > 0 }

// Emit delivers e to every sink. Nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil || len(t.sinks) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.sinks {
		s(e)
	}
}

// JSONLSink returns a sink writing one JSON object per line to w. The
// caller owns w's lifetime; Tracer.Emit serializes concurrent writes.
func JSONLSink(w io.Writer) func(Event) {
	enc := json.NewEncoder(w)
	return func(e Event) { _ = enc.Encode(e) }
}

// MemorySink accumulates events in order for offline analysis.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Sink returns the function to register with NewTracer.
func (m *MemorySink) Sink() func(Event) {
	return func(e Event) {
		m.mu.Lock()
		m.events = append(m.events, e)
		m.mu.Unlock()
	}
}

// Events copies the accumulated events.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Chains groups events by update ID. Batch-scoped events (submit,
// wh_commit, repl_pub) are attributed to every update ID in Rows. Events
// carrying only a Txn (follower repl_apply — the follower never learns the
// row set) are joined through any event that saw both the Txn and its Rows.
// Events with neither Seq, Rows nor a joinable Txn are dropped. Each chain
// is sorted causally — by hop, then pipeline stage rank, arrival order as
// the tiebreak — so chains assembled from multiple processes with
// disagreeing clocks still read in causal order.
func Chains(events []Event) map[int64][]Event {
	txnRows := map[int64][]int64{}
	for _, e := range events {
		if e.Txn != 0 && len(e.Rows) > 0 {
			if _, ok := txnRows[e.Txn]; !ok {
				txnRows[e.Txn] = e.Rows
			}
		}
	}
	out := map[int64][]Event{}
	for _, e := range events {
		switch {
		case len(e.Rows) > 0:
			for _, seq := range e.Rows {
				out[seq] = append(out[seq], e)
			}
		case e.Seq != 0:
			out[e.Seq] = append(out[e.Seq], e)
		case e.Txn != 0:
			for _, seq := range txnRows[e.Txn] {
				out[seq] = append(out[seq], e)
			}
		}
	}
	for _, chain := range out {
		sortCausal(chain)
	}
	return out
}

// sortCausal orders a chain by (hop, stage rank), keeping arrival order for
// ties. Events without a trace context (Hop 0) still order correctly: the
// stage rank alone is causal within one process.
func sortCausal(chain []Event) {
	sort.SliceStable(chain, func(i, j int) bool {
		if chain[i].Hop != chain[j].Hop {
			return chain[i].Hop < chain[j].Hop
		}
		return stageRank(chain[i].Stage) < stageRank(chain[j].Stage)
	})
}

// Span is one update's end-to-end timing.
type Span struct {
	Seq         int64 `json:"seq"`
	CommitTS    int64 `json:"commit_ts"`
	AppliedTS   int64 `json:"applied_ts"`
	Freshness   int64 `json:"freshness"`              // AppliedTS - CommitTS
	Complete    bool  `json:"complete"`               // saw every stage commit..wh_commit
	ReplApplied bool  `json:"repl_applied,omitempty"` // a follower applied the containing epoch
	MaxHop      int64 `json:"max_hop,omitempty"`      // deepest TraceCtx hop seen in the chain
}

// EndToEnd computes per-update spans from a trace. An update counts as
// Complete when its chain visits commit, route, al, rel, submit and
// wh_commit (al_recv is implied by submit). Freshness is the gap between
// the first wh_commit containing the update and its source commit —
// warehouse txns apply whole VUT rows atomically, so the first containing
// txn is the moment every view reflects the update.
func EndToEnd(events []Event) []Span {
	chains := Chains(events)
	seqs := make([]int64, 0, len(chains))
	for seq := range chains {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	spans := make([]Span, 0, len(seqs))
	for _, seq := range seqs {
		sp := Span{Seq: seq, AppliedTS: -1}
		stages := map[string]bool{}
		for _, e := range chains[seq] {
			stages[e.Stage] = true
			if e.Hop > sp.MaxHop {
				sp.MaxHop = e.Hop
			}
			switch e.Stage {
			case StageCommit:
				sp.CommitTS = e.TS
			case StageWHCommit:
				if sp.AppliedTS < 0 {
					sp.AppliedTS = e.TS
				}
			}
		}
		sp.ReplApplied = stages[StageReplApply]
		if sp.AppliedTS >= 0 {
			sp.Freshness = sp.AppliedTS - sp.CommitTS
		}
		sp.Complete = stages[StageCommit] && stages[StageRoute] &&
			stages[StageAL] && stages[StageREL] &&
			stages[StageSubmit] && stages[StageWHCommit]
		spans = append(spans, sp)
	}
	return spans
}

// FreshnessSummary aggregates spans for the end-of-run report.
type FreshnessSummary struct {
	Updates  int   `json:"updates"`
	Complete int   `json:"complete"`
	Mean     int64 `json:"mean_ns"`
	P50      int64 `json:"p50_ns"`
	P95      int64 `json:"p95_ns"`
	Max      int64 `json:"max_ns"`
}

// Summarize reduces spans (only those with an applied timestamp count
// toward latency statistics).
func Summarize(spans []Span) FreshnessSummary {
	s := FreshnessSummary{Updates: len(spans)}
	var lat []int64
	var sum int64
	for _, sp := range spans {
		if sp.Complete {
			s.Complete++
		}
		if sp.AppliedTS >= 0 {
			lat = append(lat, sp.Freshness)
			sum += sp.Freshness
		}
	}
	if len(lat) == 0 {
		return s
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	s.Mean = sum / int64(len(lat))
	s.P50 = lat[(len(lat)-1)/2]
	s.P95 = lat[(len(lat)-1)*95/100]
	s.Max = lat[len(lat)-1]
	return s
}

// String renders the summary for terminal output.
func (s FreshnessSummary) String() string {
	return fmt.Sprintf("traced %d updates (%d complete chains): freshness mean=%s p50=%s p95=%s max=%s",
		s.Updates, s.Complete, ns(s.Mean), ns(s.P50), ns(s.P95), ns(s.Max))
}

// PromptnessGaps recomputes the §4.4 promptness gap per update from raw
// trace events: the time between the moment the merge process held
// everything it needed for an update (its relevant set and the last action
// list covering it) and the moment it submitted the containing warehouse
// txn. Only events emitted by the submitting node count, so every delta is
// within one clock domain. Updates without a submit are skipped.
func PromptnessGaps(events []Event) map[int64]int64 {
	out := map[int64]int64{}
	for seq, chain := range Chains(events) {
		var submitTS int64 = -1
		var submitNode string
		for _, e := range chain {
			if e.Stage == StageSubmit {
				submitTS, submitNode = e.TS, e.Node
				break
			}
		}
		if submitTS < 0 {
			continue
		}
		var ready int64 = -1
		for _, e := range chain {
			if e.Node != submitNode {
				continue
			}
			if e.Stage == StageREL || e.Stage == StageALRecv {
				if e.TS > ready {
					ready = e.TS
				}
			}
		}
		if ready < 0 {
			continue
		}
		gap := submitTS - ready
		if gap < 0 {
			gap = 0
		}
		out[seq] = gap
	}
	return out
}

func ns(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}
