package obs

import "sync"

// RingSink retains the most recent trace events in a bounded ring and
// serves them by absolute cursor, so scrapers (the /trace debug endpoint,
// cmd/mvcstat) can poll incrementally with ?since=N and never re-read
// events they already saw. Older events are overwritten silently; the
// cursor jump in the response tells the scraper how many it missed.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	cap   int
	total int64 // events ever appended; buf holds [total-len(buf), total)
}

// NewRingSink builds a ring retaining up to capacity events (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Event, 0, capacity), cap: capacity}
}

// Sink returns the function to register with NewTracer.
func (r *RingSink) Sink() func(Event) {
	return func(e Event) {
		r.mu.Lock()
		if len(r.buf) == r.cap {
			copy(r.buf, r.buf[1:])
			r.buf[len(r.buf)-1] = e
		} else {
			r.buf = append(r.buf, e)
		}
		r.total++
		r.mu.Unlock()
	}
}

// Since returns every retained event with absolute index >= cursor, plus
// the cursor to pass next time. A cursor older than the retention window is
// clamped to the oldest retained event; a cursor at or past the newest
// returns an empty slice.
func (r *RingSink) Since(cursor int64) ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	base := r.total - int64(len(r.buf))
	if cursor < base {
		cursor = base
	}
	if cursor >= r.total {
		return nil, r.total
	}
	out := append([]Event(nil), r.buf[cursor-base:]...)
	return out, r.total
}

// Total returns the number of events ever appended.
func (r *RingSink) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
