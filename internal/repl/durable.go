package repl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"whips/internal/durable"
	"whips/internal/msg"
	"whips/internal/obs"
	"whips/internal/warehouse"
	"whips/internal/wire"
)

// DurableLogConfig configures a follower's replication WAL.
type DurableLogConfig struct {
	// Dir is the follower's data directory; created if absent.
	Dir string
	// Fsync controls when appended frames reach stable storage.
	Fsync durable.FsyncPolicy
	// CheckpointEvery compacts the WAL by snapshotting the replica's full
	// state every N recorded frames (default 256; the WAL between
	// checkpoints is what recovery replays).
	CheckpointEvery int
	// State renders the replica's current state as the checkpoint payload
	// — typically Snapshot().ReplMsg(epoch) with the replica's term and
	// leader stamped on, so the fence survives a restart.
	State func() (msg.ReplSnapshot, bool)
	// Logf, when set, receives recovery diagnostics.
	Logf func(format string, args ...any)
	// Obs, when set, attaches durability metrics.
	Obs *obs.Pipeline
}

// DurableLog makes a follower's applied replication stream crash-safe: every
// installed checkpoint and applied epoch frame is appended to a durable WAL
// (internal/durable — segmented, CRC'd, torn-tail tolerant), periodically
// compacted into a state snapshot. After kill -9, Recover replays the log
// into a fresh Replica, so a promotion candidate holds — durably — every
// epoch it ever acknowledged, which is what makes "the candidate with the
// newest durable epoch" a meaningful election criterion.
type DurableLog struct {
	cfg   DurableLogConfig
	store *durable.Store

	mu    sync.Mutex
	since int // frames recorded since the last checkpoint
}

// frameEnv wraps a wire-form frame for gob: the concrete repl wire types
// are gob-registered by package wire for session transport, so the WAL
// reuses the exact same encoding.
type frameEnv struct{ M any }

func encodeFrame(m any) ([]byte, error) {
	w, err := wire.Encode(m)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&frameEnv{M: w}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeFrame(b []byte) (any, error) {
	var env frameEnv
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, err
	}
	return wire.Decode(env.M)
}

// OpenDurableLog opens (or initializes) a follower WAL. Call Recover before
// starting the follower, then hand the log to FollowerConfig.Log.
func OpenDurableLog(cfg DurableLogConfig) (*DurableLog, error) {
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 256
	}
	store, err := durable.Open(durable.StoreConfig{Dir: cfg.Dir, Fsync: cfg.Fsync, Logf: cfg.Logf, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	return &DurableLog{cfg: cfg, store: store}, nil
}

// Record appends one applied frame (msg.ReplSnapshot or msg.ReplEpoch) and
// checkpoints every CheckpointEvery frames.
func (l *DurableLog) Record(m any) error {
	payload, err := encodeFrame(m)
	if err != nil {
		return err
	}
	if _, err := l.store.Append(payload); err != nil {
		return err
	}
	l.mu.Lock()
	l.since++
	due := l.since >= l.cfg.CheckpointEvery
	if due {
		l.since = 0
	}
	l.mu.Unlock()
	if due && l.cfg.State != nil {
		if snap, ok := l.cfg.State(); ok {
			state, err := encodeFrame(snap)
			if err != nil {
				return err
			}
			return l.store.Checkpoint(state)
		}
	}
	return nil
}

// Recover replays the WAL into rep: the newest valid checkpoint state (if
// any) installs first, then every logged frame after it re-applies.
// Duplicates are skipped by the replica's own apply discipline; a frame the
// replica cannot apply (a gap — possible only if the directory was
// hand-damaged, since frames are logged in apply order) stops the replay at
// the last consistent epoch, which is exactly what the node then announces
// in ReplSubscribe. Returns the recovered epoch (-1 when the log was
// empty).
func (l *DurableLog) Recover(rep *warehouse.Replica) (int64, error) {
	state, records := l.store.Recover()
	if state != nil {
		m, err := decodeFrame(state)
		if err != nil {
			return -1, fmt.Errorf("repl: wal checkpoint: %w", err)
		}
		snap, ok := m.(msg.ReplSnapshot)
		if !ok {
			return -1, fmt.Errorf("repl: wal checkpoint holds %T, want ReplSnapshot", m)
		}
		if err := rep.Install(snap); err != nil {
			return -1, fmt.Errorf("repl: wal checkpoint: %w", err)
		}
	}
	for _, rec := range records {
		m, err := decodeFrame(rec)
		if err != nil {
			// A torn tail is truncated by the store itself; a record that
			// decodes but is garbage stops replay at the last good epoch.
			l.logf("repl: wal: stopping replay at undecodable record: %v", err)
			break
		}
		switch t := m.(type) {
		case msg.ReplSnapshot:
			if err := rep.Install(t); err != nil {
				l.logf("repl: wal: skipping checkpoint epoch %d: %v", t.Epoch, err)
			}
		case msg.ReplEpoch:
			if err := rep.ApplyEpoch(t); err != nil && !fenced(err) {
				l.logf("repl: wal: stopping replay at epoch %d: %v", t.Epoch, err)
				return rep.Epoch(), nil
			}
		default:
			l.logf("repl: wal: ignoring logged %T", m)
		}
	}
	return rep.Epoch(), nil
}

func (l *DurableLog) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}

// Close closes the underlying store.
func (l *DurableLog) Close() error { return l.store.Close() }
